// The storage-tier equivalence pin: a cube served out of a segment
// file behind the buffer pool must answer every perspective query
// bit-identically to the same cube fully resident in memory. The round
// trip goes through the real daemon path — catalog write-back into a
// data directory, restart-style restore, engine faulting chunks back
// through the segment tier — so any encoding, checksum, ordering or
// fault-in bug shows up as a differing cell.
package olap_test

import (
	"math"
	"testing"

	"whatifolap/internal/core"
	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
	"whatifolap/internal/paperdata"
	"whatifolap/internal/perspective"
	"whatifolap/internal/server"
)

// segmentBackedCopy persists c through a catalog write-back and
// restores it from the data directory alone, returning the tier-backed
// twin.
func segmentBackedCopy(t *testing.T, c *cube.Cube) *cube.Cube {
	t.Helper()
	dir := t.TempDir()
	p, err := server.OpenPersister(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	cat := server.NewCatalog()
	cat.SetPersister(p)
	if err := cat.Register("pin", c); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	p2, err := server.OpenPersister(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	cat2 := server.NewCatalog()
	if _, err := p2.Restore(cat2); err != nil {
		t.Fatal(err)
	}
	snap, err := cat2.Acquire("pin")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(snap.Release)
	return snap.Cube
}

// assertViewsBitIdentical compares two engine views cell for cell —
// exact float bits, no tolerance — translating member identities via
// paths so the comparison is independent of internal ordinal layout.
func assertViewsBitIdentical(t *testing.T, mem, seg *core.View, mode perspective.Mode) {
	t.Helper()
	rm, rs := mem.Result(), seg.Result()
	count := func(c *cube.Cube) int {
		n := 0
		c.Store().NonNull(func([]int, float64) bool { n++; return true })
		return n
	}
	if nm, ns := count(rm), count(rs); nm != ns || nm == 0 {
		t.Fatalf("non-null cells: memory %d, segment %d", nm, ns)
	}
	rm.Store().NonNull(func(addr []int, want float64) bool {
		ids := make([]dimension.MemberID, len(addr))
		for i, o := range addr {
			p := rm.Dim(i).Path(rm.Dim(i).Leaf(o).ID)
			id, err := rs.Dim(i).Lookup(p)
			if err != nil {
				t.Fatalf("segment view lacks member %s: %v", p, err)
			}
			ids[i] = id
		}
		if got := rs.Value(ids); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("cell %v: segment %v, memory %v", addr, got, want)
		}
		return true
	})
	// Aggregates exercise the mode (visual re-aggregation vs retained
	// input aggregates); they must match bitwise too.
	for _, refs := range [][]string{
		{"FTE", "NY", "Qtr1", "Salary"},
		{"PTE", "NY", "Qtr2", "Salary"},
		{"Contractor", "East", "Time", "Salary"},
		{"Organization", "NY", "Qtr1", "Compensation"},
		{"Organization", "Location", "Time", "Measures"},
	} {
		mids := make([]dimension.MemberID, len(refs))
		sids := make([]dimension.MemberID, len(refs))
		for i, r := range refs {
			mids[i] = rm.Dim(i).MustLookup(r)
			sids[i] = rs.Dim(i).MustLookup(r)
		}
		want, err := mem.Cell(mids)
		if err != nil {
			t.Fatal(err)
		}
		got, err := seg.Cell(sids)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("aggregate %v (mode %v): segment %v, memory %v", refs, mode, got, want)
		}
	}
}

func TestSegmentTierEquivalenceAllSemantics(t *testing.T) {
	memCube := paperdata.ChunkedWarehouse(nil)
	segCube := segmentBackedCopy(t, memCube)

	memEng, err := core.New(memCube, "Organization")
	if err != nil {
		t.Fatal(err)
	}
	segEng, err := core.New(segCube, "Organization")
	if err != nil {
		t.Fatal(err)
	}

	sems := []perspective.Semantics{
		perspective.Static, perspective.Forward, perspective.ExtendedForward,
		perspective.Backward, perspective.ExtendedBackward,
	}
	modes := []perspective.Mode{perspective.NonVisual, perspective.Visual}
	for _, sem := range sems {
		for _, mode := range modes {
			q := core.PerspectiveQuery{
				Members:      []string{"Joe"},
				Perspectives: []int{paperdata.Feb, paperdata.Apr},
				Sem:          sem,
				Mode:         mode,
			}
			memView, err := memEng.ExecPerspective(q)
			if err != nil {
				t.Fatalf("%v/%v memory: %v", sem, mode, err)
			}
			segView, err := segEng.ExecPerspective(q)
			if err != nil {
				t.Fatalf("%v/%v segment: %v", sem, mode, err)
			}
			assertViewsBitIdentical(t, memView, segView, mode)

			// The compressed execution path reads chunks in a different
			// order; it must agree through the tier as well.
			segComp, err := segEng.ExecPerspectiveCompressed(q)
			if err != nil {
				t.Fatalf("%v/%v segment compressed: %v", sem, mode, err)
			}
			assertViewsBitIdentical(t, memView, segComp, mode)
		}
	}
}
