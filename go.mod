module whatifolap

go 1.22
