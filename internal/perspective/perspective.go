// Package perspective implements the Φ operator of the paper (§4.2): a
// pure metadata transformation that maps the validity sets of a varying
// dimension's member instances to the validity sets they have in the
// output of a what-if query with perspectives P.
//
// Φ is the semantic core of negative scenarios. Composed with selection,
// relocate and eval (package algebra), it captures every negative-
// scenario what-if query of the paper's extended MDX (Theorem 4.1).
//
// Reviewed for hotpathfmt: fmt here builds validation errors while
// perspectives are composed, before any chunk is scanned.
//
//lint:coldfmt validation-error construction at perspective build time only
package perspective

import (
	"fmt"
	"sort"

	"whatifolap/internal/bitset"
	"whatifolap/internal/dimension"
)

// Semantics selects how the structure at the perspective points is
// imposed on the rest of the parameter dimension (paper §3.3).
type Semantics int

const (
	// Static keeps only instances valid at some perspective point, with
	// their original validity sets and values.
	Static Semantics = iota
	// Forward imposes the structure at each perspective pᵢ onto the
	// interval [pᵢ, pᵢ₊₁) (pₖ₊₁ = +∞). Points before the first
	// perspective keep their original structure.
	Forward
	// ExtendedForward additionally imposes the structure at the first
	// perspective onto all points preceding it.
	ExtendedForward
	// Backward is the mirror image of Forward: the structure at pᵢ is
	// imposed onto (pᵢ₋₁, pᵢ] (p₀ = −∞); points after the last
	// perspective keep their original structure.
	Backward
	// ExtendedBackward additionally imposes the structure at the last
	// perspective onto all points following it.
	ExtendedBackward
)

// String returns the extended-MDX spelling of the semantics.
func (s Semantics) String() string {
	switch s {
	case Static:
		return "STATIC"
	case Forward:
		return "DYNAMIC FORWARD"
	case ExtendedForward:
		return "EXTENDED DYNAMIC FORWARD"
	case Backward:
		return "DYNAMIC BACKWARD"
	case ExtendedBackward:
		return "EXTENDED DYNAMIC BACKWARD"
	}
	return fmt.Sprintf("Semantics(%d)", int(s))
}

// Dynamic reports whether the semantics imposes structure beyond the
// perspective points themselves.
func (s Semantics) Dynamic() bool { return s != Static }

// Mode selects how non-leaf (derived) cells of the output cube are
// computed (paper §3.3).
type Mode int

const (
	// NonVisual retains the input cube's derived-cell values.
	NonVisual Mode = iota
	// Visual re-evaluates the rules defining derived cells on the
	// transformed cube.
	Visual
)

// String returns the extended-MDX spelling of the mode.
func (m Mode) String() string {
	switch m {
	case NonVisual:
		return "NONVISUAL"
	case Visual:
		return "VISUAL"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// NormalizePerspectives validates perspective ordinals against the
// parameter dimension and returns them sorted and deduplicated.
func NormalizePerspectives(param *dimension.Dimension, ps []int) ([]int, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("perspective: empty perspective set")
	}
	out := append([]int(nil), ps...)
	sort.Ints(out)
	dedup := out[:0]
	for i, p := range out {
		if p < 0 || p >= param.NumLeaves() {
			return nil, fmt.Errorf("perspective: ordinal %d outside parameter dimension %s (0..%d)",
				p, param.Name(), param.NumLeaves()-1)
		}
		if i > 0 && p == out[i-1] {
			continue
		}
		dedup = append(dedup, p)
	}
	return dedup, nil
}

// Result is the output of Φ: the transformed validity set of every leaf
// member instance of the varying dimension. Instances mapped to an empty
// set do not appear in the output cube (their sub-cubes are removed).
type Result struct {
	Binding *dimension.Binding
	// VSOut maps every leaf instance of the varying dimension to its
	// output validity set.
	VSOut map[dimension.MemberID]*bitset.Set
}

// Dropped returns the instances whose output validity set is empty, in
// leaf-ordinal order. Instances outside the result's scope (not present
// in VSOut) are not reported.
func (r *Result) Dropped() []dimension.MemberID {
	var out []dimension.MemberID
	for _, id := range r.Binding.Varying.Leaves() {
		if vs, ok := r.VSOut[id]; ok && vs.IsEmpty() {
			out = append(out, id)
		}
	}
	return out
}

// Apply computes Φ_sem(VSin, P) for every leaf instance of the binding's
// varying dimension. Perspectives are parameter-leaf ordinals; they are
// normalized internally. Dynamic semantics require an ordered parameter
// dimension (the paper defines forward/backward only for ordered
// parameters such as Time).
func Apply(sem Semantics, b *dimension.Binding, perspectives []int) (*Result, error) {
	return apply(sem, b, perspectives, b.Varying.Leaves())
}

// ApplyMembers computes Φ only for the instances of the given base
// members. The perspective-cube engine uses this to keep planning cost
// proportional to the query's scope (the paper's §6.3: "ensuring that
// the instance merge operation is confined to query result sections
// with varying members ensures efficient computation").
func ApplyMembers(sem Semantics, b *dimension.Binding, perspectives []int, baseNames []string) (*Result, error) {
	var ids []dimension.MemberID
	for _, name := range baseNames {
		inst := b.Varying.Instances(name)
		if len(inst) == 0 {
			return nil, fmt.Errorf("perspective: dimension %s has no member %q", b.Varying.Name(), name)
		}
		ids = append(ids, inst...)
	}
	return apply(sem, b, perspectives, ids)
}

func apply(sem Semantics, b *dimension.Binding, perspectives []int, ids []dimension.MemberID) (*Result, error) {
	ps, err := NormalizePerspectives(b.Param, perspectives)
	if err != nil {
		return nil, err
	}
	if sem.Dynamic() && !b.Param.Ordered() {
		return nil, fmt.Errorf("perspective: %v requires an ordered parameter dimension; %s is unordered",
			sem, b.Param.Name())
	}
	n := b.Param.NumLeaves()
	res := &Result{Binding: b, VSOut: make(map[dimension.MemberID]*bitset.Set, len(ids))}

	// existsFor caches, per base member, the union of the validity sets
	// of its instances: the moments t at which some instance d_t exists.
	// Def. 3.3/3.4 exclude moments with no instance from output validity
	// sets.
	existsCache := make(map[string]*bitset.Set)
	existsFor := func(base string) *bitset.Set {
		if s, ok := existsCache[base]; ok {
			return s
		}
		s := bitset.New(n)
		for _, inst := range b.Varying.Instances(base) {
			s.UnionWith(b.ValiditySet(inst))
		}
		existsCache[base] = s
		return s
	}

	for _, id := range ids {
		base := b.Varying.Member(id).Name
		vsin := b.ValiditySet(id)
		var out *bitset.Set
		switch sem {
		case Static:
			out = staticVS(vsin, ps, n)
		case Forward:
			out = forwardVS(vsin, ps, n, existsFor(base), false)
		case ExtendedForward:
			out = forwardVS(vsin, ps, n, existsFor(base), true)
		case Backward:
			out = backwardVS(vsin, ps, n, existsFor(base), false)
		case ExtendedBackward:
			out = backwardVS(vsin, ps, n, existsFor(base), true)
		default:
			return nil, fmt.Errorf("perspective: unknown semantics %v", sem)
		}
		res.VSOut[id] = out
	}
	return res, nil
}

// staticVS implements Φs (Definition 4.2 combined with the active-member
// rule of Definition 3.4): instances valid at some perspective keep
// their input validity set; others are dropped.
func staticVS(vsin *bitset.Set, ps []int, n int) *bitset.Set {
	for _, p := range ps {
		if vsin.Contains(p) {
			return vsin.Clone()
		}
	}
	return bitset.New(n)
}

// forwardVS implements Φf and Φe,f (Definition 4.3). Stretch(d) is the
// union of the intervals [pᵢ, pᵢ₊₁) over perspectives pᵢ at which d was
// valid in the input, with pₖ₊₁ = +∞. The stretch is intersected with
// the moments at which some instance of d's base member exists.
func forwardVS(vsin *bitset.Set, ps []int, n int, exists *bitset.Set, extended bool) *bitset.Set {
	stretch := bitset.New(n)
	for i, p := range ps {
		if !vsin.Contains(p) {
			continue
		}
		hi := n
		if i+1 < len(ps) {
			hi = ps[i+1]
		}
		stretch.AddRange(p, hi)
	}
	if stretch.IsEmpty() {
		return stretch
	}
	pmin := ps[0]
	out := stretch
	if extended {
		if vsin.Contains(pmin) {
			out.AddRange(0, pmin)
		}
	} else {
		// Original validity before the first perspective is retained.
		pre := vsin.Clone()
		for t := pmin; t < n; t++ {
			if pre.Contains(t) {
				pre.Remove(t)
			}
		}
		out.UnionWith(pre)
	}
	out.IntersectWith(exists)
	return out
}

// backwardVS mirrors forwardVS with the parameter axis reversed
// (paper §3.3: members of I are ordered in descending order).
func backwardVS(vsin *bitset.Set, ps []int, n int, exists *bitset.Set, extended bool) *bitset.Set {
	stretch := bitset.New(n)
	for i, p := range ps {
		if !vsin.Contains(p) {
			continue
		}
		lo := 0
		if i > 0 {
			lo = ps[i-1] + 1
		}
		stretch.AddRange(lo, p+1)
	}
	if stretch.IsEmpty() {
		return stretch
	}
	pmax := ps[len(ps)-1]
	out := stretch
	if extended {
		if vsin.Contains(pmax) {
			out.AddRange(pmax+1, n)
		}
	} else {
		post := vsin.Clone()
		for t := 0; t <= pmax; t++ {
			if post.Contains(t) {
				post.Remove(t)
			}
		}
		out.UnionWith(post)
	}
	out.IntersectWith(exists)
	return out
}

// Range is one perspective interval [Lo, Hi) used by dynamic semantics:
// the structure at perspective Lo is imposed on every moment of the
// range. The engine organizes perspectives into ranges (paper §6.1:
// "forward semantics is implemented directly by organizing perspectives
// into ranges").
type Range struct {
	Lo, Hi int // parameter leaf ordinals, half-open
}

// ForwardRanges returns the intervals [pᵢ, pᵢ₊₁) for normalized
// perspectives, with the final interval closed by the parameter extent.
func ForwardRanges(param *dimension.Dimension, ps []int) ([]Range, error) {
	norm, err := NormalizePerspectives(param, ps)
	if err != nil {
		return nil, err
	}
	out := make([]Range, len(norm))
	for i, p := range norm {
		hi := param.NumLeaves()
		if i+1 < len(norm) {
			hi = norm[i+1]
		}
		out[i] = Range{Lo: p, Hi: hi}
	}
	return out, nil
}

// BackwardRanges returns the mirror intervals: for each perspective pᵢ
// the range (pᵢ₋₁, pᵢ] expressed half-open as [pᵢ₋₁+1, pᵢ+1).
func BackwardRanges(param *dimension.Dimension, ps []int) ([]Range, error) {
	norm, err := NormalizePerspectives(param, ps)
	if err != nil {
		return nil, err
	}
	out := make([]Range, len(norm))
	for i, p := range norm {
		lo := 0
		if i > 0 {
			lo = norm[i-1] + 1
		}
		out[i] = Range{Lo: lo, Hi: p + 1}
	}
	return out, nil
}
