package perspective

import (
	"math/rand"
	"testing"
	"testing/quick"

	"whatifolap/internal/bitset"
	"whatifolap/internal/dimension"
	"whatifolap/internal/paperdata"
)

func joeBinding(t testing.TB) *dimension.Binding {
	t.Helper()
	c := paperdata.Warehouse()
	return c.BindingFor("Organization")
}

func vs(t *testing.T, r *Result, path string) *bitset.Set {
	t.Helper()
	id := r.Binding.Varying.MustLookup(path)
	s, ok := r.VSOut[id]
	if !ok {
		t.Fatalf("no VSOut entry for %s", path)
	}
	return s
}

func wantSet(t *testing.T, got *bitset.Set, want ...int) {
	t.Helper()
	w := bitset.FromSlice(got.Universe(), want)
	if !got.Equal(w) {
		t.Fatalf("VS = %v, want %v", got, w)
	}
}

// Paper §3.3: "In our example, consider perspective Jan. Under static
// semantics, instance FTE/Joe will have VSout = {Jan} ... Rows for
// PTE/Joe and Contractor/Joe are removed."
func TestStaticSinglePerspectivePaperExample(t *testing.T) {
	b := joeBinding(t)
	r, err := Apply(Static, b, []int{paperdata.Jan})
	if err != nil {
		t.Fatal(err)
	}
	wantSet(t, vs(t, r, "FTE/Joe"), paperdata.Jan)
	if !vs(t, r, "PTE/Joe").IsEmpty() || !vs(t, r, "Contractor/Joe").IsEmpty() {
		t.Fatal("PTE/Joe and Contractor/Joe should be dropped under static{Jan}")
	}
	// Non-varying members keep full validity.
	if got := vs(t, r, "FTE/Lisa"); got.Len() != 12 {
		t.Fatalf("Lisa VS = %v, want all 12 months", got)
	}
}

// Paper §3.3: "Under forward semantics, FTE/Joe will have
// VSout = {Jan, ..., Apr, Jun, ...}" — i.e. every month except May,
// where no instance of Joe exists.
func TestForwardSinglePerspectivePaperExample(t *testing.T) {
	b := joeBinding(t)
	r, err := Apply(Forward, b, []int{paperdata.Jan})
	if err != nil {
		t.Fatal(err)
	}
	wantSet(t, vs(t, r, "FTE/Joe"),
		paperdata.Jan, paperdata.Feb, paperdata.Mar, paperdata.Apr,
		paperdata.Jun, paperdata.Jul, paperdata.Aug, paperdata.Sep,
		paperdata.Oct, paperdata.Nov, paperdata.Dec)
	if !vs(t, r, "PTE/Joe").IsEmpty() {
		t.Fatal("PTE/Joe should be dropped (not valid at Jan)")
	}
}

// Paper Fig. 4 setting: P = {Feb, Apr}, forward. PTE/Joe covers
// [Feb, Apr) and Contractor/Joe covers [Apr, ∞) minus May; FTE/Joe is
// dropped.
func TestForwardMultiPerspectiveFig4(t *testing.T) {
	b := joeBinding(t)
	r, err := Apply(Forward, b, []int{paperdata.Feb, paperdata.Apr})
	if err != nil {
		t.Fatal(err)
	}
	wantSet(t, vs(t, r, "PTE/Joe"), paperdata.Feb, paperdata.Mar)
	wantSet(t, vs(t, r, "Contractor/Joe"),
		paperdata.Apr, paperdata.Jun, paperdata.Jul, paperdata.Aug,
		paperdata.Sep, paperdata.Oct, paperdata.Nov, paperdata.Dec)
	if !vs(t, r, "FTE/Joe").IsEmpty() {
		t.Fatal("FTE/Joe should be dropped under P={Feb,Apr}")
	}
	// Sue and other defaults are valid everywhere, so only FTE/Joe drops.
	if got := r.Dropped(); len(got) != 1 || r.Binding.Varying.Path(got[0]) != "FTE/Joe" {
		t.Fatalf("Dropped = %v, want [FTE/Joe]", got)
	}
}

func TestForwardPreservesPrePminValidity(t *testing.T) {
	// An instance valid both before Pmin and at a perspective keeps its
	// original pre-Pmin moments (Def. 4.3's second clause).
	varying := dimension.New("V", false)
	varying.MustAdd("", "A")
	varying.MustAdd("A", "x")
	varying.MustAdd("", "B")
	varying.MustAdd("B", "x")
	param := dimension.New("P", true)
	param.MustAdd("", "t0")
	param.MustAdd("", "t1")
	param.MustAdd("", "t2")
	param.MustAdd("", "t3")
	b := dimension.NewBinding(varying, param)
	b.SetVS(varying.MustLookup("A/x"), 0, 2) // interleaved validity
	b.SetVS(varying.MustLookup("B/x"), 1, 3)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	r, err := Apply(Forward, b, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	// A/x valid at perspective 2: stretch [2,4); plus original {0}.
	wantSet(t, vs(t, r, "A/x"), 0, 2, 3)
	if !vs(t, r, "B/x").IsEmpty() {
		t.Fatal("B/x not valid at the perspective; must be dropped")
	}
}

func TestExtendedForward(t *testing.T) {
	b := joeBinding(t)
	r, err := Apply(ExtendedForward, b, []int{paperdata.Mar})
	if err != nil {
		t.Fatal(err)
	}
	// Contractor/Joe valid at Mar: structure imposed on all of I,
	// minus May where no instance exists.
	wantSet(t, vs(t, r, "Contractor/Joe"),
		paperdata.Jan, paperdata.Feb, paperdata.Mar, paperdata.Apr,
		paperdata.Jun, paperdata.Jul, paperdata.Aug, paperdata.Sep,
		paperdata.Oct, paperdata.Nov, paperdata.Dec)
	if !vs(t, r, "FTE/Joe").IsEmpty() || !vs(t, r, "PTE/Joe").IsEmpty() {
		t.Fatal("other Joe instances should be dropped")
	}
}

func TestBackward(t *testing.T) {
	b := joeBinding(t)
	r, err := Apply(Backward, b, []int{paperdata.Apr})
	if err != nil {
		t.Fatal(err)
	}
	// Contractor/Joe valid at Apr: stretch (−∞, Apr] minus May (n/a);
	// post-Pmax original validity {Jun..Dec} retained.
	wantSet(t, vs(t, r, "Contractor/Joe"),
		paperdata.Jan, paperdata.Feb, paperdata.Mar, paperdata.Apr,
		paperdata.Jun, paperdata.Jul, paperdata.Aug, paperdata.Sep,
		paperdata.Oct, paperdata.Nov, paperdata.Dec)
	if !vs(t, r, "FTE/Joe").IsEmpty() {
		t.Fatal("FTE/Joe should be dropped under backward{Apr}")
	}
}

func TestBackwardMultiPerspective(t *testing.T) {
	b := joeBinding(t)
	r, err := Apply(Backward, b, []int{paperdata.Feb, paperdata.Jun})
	if err != nil {
		t.Fatal(err)
	}
	// PTE/Joe valid at Feb: covers (−∞, Feb] = {Jan, Feb}.
	wantSet(t, vs(t, r, "PTE/Joe"), paperdata.Jan, paperdata.Feb)
	// Contractor/Joe valid at Jun: covers (Feb, Jun] minus May, plus
	// original {Jul..Dec}.
	wantSet(t, vs(t, r, "Contractor/Joe"),
		paperdata.Mar, paperdata.Apr, paperdata.Jun,
		paperdata.Jul, paperdata.Aug, paperdata.Sep,
		paperdata.Oct, paperdata.Nov, paperdata.Dec)
}

func TestExtendedBackward(t *testing.T) {
	b := joeBinding(t)
	r, err := Apply(ExtendedBackward, b, []int{paperdata.Feb})
	if err != nil {
		t.Fatal(err)
	}
	// PTE/Joe valid at Pmax=Feb: covers everything except May.
	wantSet(t, vs(t, r, "PTE/Joe"),
		paperdata.Jan, paperdata.Feb, paperdata.Mar, paperdata.Apr,
		paperdata.Jun, paperdata.Jul, paperdata.Aug, paperdata.Sep,
		paperdata.Oct, paperdata.Nov, paperdata.Dec)
}

func TestDynamicRequiresOrderedParam(t *testing.T) {
	varying := dimension.New("V", false)
	varying.MustAdd("", "x")
	param := dimension.New("Location", false) // unordered
	param.MustAdd("", "NY")
	param.MustAdd("", "MA")
	b := dimension.NewBinding(varying, param)
	if _, err := Apply(Forward, b, []int{0}); err == nil {
		t.Fatal("forward over unordered parameter should fail")
	}
	// Static over an unordered parameter is fine (paper §3.1: changes can
	// vary by location).
	if _, err := Apply(Static, b, []int{0}); err != nil {
		t.Fatalf("static over unordered parameter: %v", err)
	}
}

func TestNormalizePerspectives(t *testing.T) {
	param := paperdata.Time()
	got, err := NormalizePerspectives(param, []int{5, 1, 5, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("normalized = %v, want [1 3 5]", got)
	}
	if _, err := NormalizePerspectives(param, nil); err == nil {
		t.Fatal("empty perspective set should fail")
	}
	if _, err := NormalizePerspectives(param, []int{12}); err == nil {
		t.Fatal("out-of-range perspective should fail")
	}
}

func TestRanges(t *testing.T) {
	param := paperdata.Time()
	fr, err := ForwardRanges(param, []int{paperdata.Jan, paperdata.Apr, paperdata.Jul, paperdata.Oct})
	if err != nil {
		t.Fatal(err)
	}
	want := []Range{{0, 3}, {3, 6}, {6, 9}, {9, 12}}
	for i := range want {
		if fr[i] != want[i] {
			t.Fatalf("ForwardRanges = %v, want %v", fr, want)
		}
	}
	br, err := BackwardRanges(param, []int{paperdata.Mar, paperdata.Jun})
	if err != nil {
		t.Fatal(err)
	}
	wantB := []Range{{0, 3}, {3, 6}}
	for i := range wantB {
		if br[i] != wantB[i] {
			t.Fatalf("BackwardRanges = %v, want %v", br, wantB)
		}
	}
}

func TestSemanticsAndModeStrings(t *testing.T) {
	if Static.String() != "STATIC" || Forward.String() != "DYNAMIC FORWARD" {
		t.Fatal("semantics String mismatch")
	}
	if Visual.String() != "VISUAL" || NonVisual.String() != "NONVISUAL" {
		t.Fatal("mode String mismatch")
	}
	if Static.Dynamic() || !Backward.Dynamic() {
		t.Fatal("Dynamic() mismatch")
	}
}

// randomBinding builds a varying dimension with one base member split
// into k instances whose validity sets partition a random subset of the
// parameter leaves.
func randomBinding(r *rand.Rand) *dimension.Binding {
	n := 4 + r.Intn(20)
	param := dimension.New("P", true)
	for i := 0; i < n; i++ {
		param.MustAdd("", "t"+string(rune('A'+i%26))+string(rune('0'+i/26)))
	}
	varying := dimension.New("V", false)
	k := 1 + r.Intn(4)
	for i := 0; i < k; i++ {
		parent := "g" + string(rune('0'+i))
		varying.MustAdd("", parent)
		varying.MustAdd(parent, "x")
	}
	b := dimension.NewBinding(varying, param)
	// Assign each moment to at most one instance.
	sets := make([][]int, k)
	for t := 0; t < n; t++ {
		pick := r.Intn(k + 1) // k means "no instance valid" (gap)
		if pick < k {
			sets[pick] = append(sets[pick], t)
		}
	}
	for i := 0; i < k; i++ {
		inst := varying.MustLookup("g" + string(rune('0'+i)) + "/x")
		b.SetVS(inst, sets[i]...)
	}
	return b
}

// Property: under every semantics, output validity sets of instances of
// the same member remain pairwise disjoint (the model invariant), and
// are always subsets of the moments at which some instance exists.
func TestQuickOutputDisjointness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := randomBinding(r)
		if err := b.Validate(); err != nil {
			return false
		}
		n := b.Param.NumLeaves()
		ps := []int{r.Intn(n)}
		if r.Intn(2) == 0 {
			ps = append(ps, r.Intn(n))
		}
		exists := bitset.New(n)
		for _, id := range b.Varying.Instances("x") {
			exists.UnionWith(b.ValiditySet(id))
		}
		for _, sem := range []Semantics{Static, Forward, ExtendedForward, Backward, ExtendedBackward} {
			res, err := Apply(sem, b, ps)
			if err != nil {
				return false
			}
			insts := b.Varying.Instances("x")
			for i := 0; i < len(insts); i++ {
				vi := res.VSOut[insts[i]]
				if !vi.Subtract(exists).IsEmpty() {
					return false // output validity outside existing moments
				}
				for j := i + 1; j < len(insts); j++ {
					if vi.Intersects(res.VSOut[insts[j]]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: static output equals input VS for surviving instances and is
// empty otherwise (Φs is the identity transformation, Def. 4.2).
func TestQuickStaticIsIdentityOnSurvivors(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := randomBinding(r)
		n := b.Param.NumLeaves()
		ps := []int{r.Intn(n)}
		res, err := Apply(Static, b, ps)
		if err != nil {
			return false
		}
		for _, id := range b.Varying.Instances("x") {
			in := b.ValiditySet(id)
			out := res.VSOut[id]
			if in.Contains(ps[0]) {
				if !out.Equal(in) {
					return false
				}
			} else if !out.IsEmpty() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: forward stretches of the instances of one member, restricted
// to [Pmin, ∞), tile exactly the moments ≥ Pmin whose most recent
// perspective had a valid instance — and every output moment ≥ Pmin has
// an existing instance.
func TestQuickForwardCoversFromValidPerspectives(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := randomBinding(r)
		n := b.Param.NumLeaves()
		ps, err := NormalizePerspectives(b.Param, []int{r.Intn(n), r.Intn(n)})
		if err != nil {
			return false
		}
		res, err := Apply(Forward, b, ps)
		if err != nil {
			return false
		}
		union := bitset.New(n)
		for _, id := range b.Varying.Instances("x") {
			union.UnionWith(res.VSOut[id])
		}
		exists := bitset.New(n)
		for _, id := range b.Varying.Instances("x") {
			exists.UnionWith(b.ValiditySet(id))
		}
		for tm := ps[0]; tm < n; tm++ {
			// most recent perspective at or before tm
			p := ps[0]
			for _, q := range ps {
				if q <= tm {
					p = q
				}
			}
			someValid := false
			for _, id := range b.Varying.Instances("x") {
				if b.ValiditySet(id).Contains(p) {
					someValid = true
				}
			}
			want := someValid && exists.Contains(tm)
			if union.Contains(tm) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkApplyForwardPaperCube(b *testing.B) {
	c := paperdata.Warehouse()
	bind := c.BindingFor("Organization")
	ps := []int{paperdata.Feb, paperdata.Apr}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Apply(Forward, bind, ps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyMembersScoped(b *testing.B) {
	c := paperdata.Warehouse()
	bind := c.BindingFor("Organization")
	ps := []int{paperdata.Feb, paperdata.Apr}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ApplyMembers(Forward, bind, ps, []string{"Joe"}); err != nil {
			b.Fatal(err)
		}
	}
}
