// Package dimension implements the dimension model of the paper: member
// hierarchies, leaf ordinals used for cell addressing, and — the paper's
// key extension — member instances of varying dimensions together with
// their validity sets over a parameter dimension.
//
// A member of a varying dimension that is reclassified under different
// parents (e.g. employee Joe moving between FTE, PTE and Contractor)
// appears as several leaf nodes with the same simple name but distinct
// root-to-leaf paths. Each such node is a member instance; all instances
// of a member share its base name. At any leaf of the parameter dimension
// at most one instance of a member is valid (paper §2, §3.1).
//
// Reviewed for hotpathfmt: fmt here builds errors while hierarchies and
// edit scripts are constructed, never on the per-cell scan path.
//
//lint:coldfmt error construction at hierarchy/edit build time only
package dimension

import (
	"fmt"
	"sort"
	"strings"

	"whatifolap/internal/bitset"
)

// MemberID identifies a member (or member instance) within one dimension.
// IDs are dense indices into the dimension's member table.
type MemberID int32

// None is the MemberID used where no member applies (e.g. the parent of
// the root).
const None MemberID = -1

// Member is a node in a dimension hierarchy.
type Member struct {
	ID       MemberID
	Name     string // simple name, e.g. "Joe"
	Parent   MemberID
	Children []MemberID
	// Depth is the distance from the hierarchy root (root = 0).
	Depth int
	// LeafOrdinal is the member's position in the dimension's leaf order,
	// or -1 for non-leaf members. Leaf ordinals address cube cells.
	LeafOrdinal int
}

// IsLeaf reports whether the member has no children.
func (m *Member) IsLeaf() bool { return len(m.Children) == 0 }

// Dimension is a named hierarchy of members. The root member carries the
// dimension's name and is not part of member paths.
type Dimension struct {
	name    string
	ordered bool
	measure bool

	members []*Member
	byPath  map[string]MemberID
	// instances maps a base name to all leaf members carrying it, in
	// insertion order. A member with len(instances[name]) > 1 is a
	// varying member with multiple instances.
	instances map[string][]MemberID
	leaves    []MemberID
}

// New creates a dimension with only a root member. Ordered marks the
// dimension as an ordered parameter dimension candidate (e.g. Time):
// its leaf ordinals are interpreted as a temporal order by forward and
// backward perspective semantics.
func New(name string, ordered bool) *Dimension {
	d := &Dimension{
		name:      name,
		ordered:   ordered,
		byPath:    make(map[string]MemberID),
		instances: make(map[string][]MemberID),
	}
	root := &Member{ID: 0, Name: name, Parent: None, Depth: 0, LeafOrdinal: -1}
	d.members = append(d.members, root)
	return d
}

// Name returns the dimension's name.
func (d *Dimension) Name() string { return d.name }

// Ordered reports whether the dimension is ordered (usable as an ordered
// parameter dimension).
func (d *Dimension) Ordered() bool { return d.ordered }

// Measure reports whether the dimension is a measures dimension.
func (d *Dimension) Measure() bool { return d.measure }

// MarkMeasure flags the dimension as a measures dimension; rules treat
// its members as computed quantities rather than aggregation targets.
func (d *Dimension) MarkMeasure() { d.measure = true }

// Root returns the ID of the hierarchy root.
func (d *Dimension) Root() MemberID { return 0 }

// Member returns the member with the given ID. It panics on an invalid
// ID, which indicates corrupted addressing.
func (d *Dimension) Member(id MemberID) *Member {
	if id < 0 || int(id) >= len(d.members) {
		panic(fmt.Sprintf("dimension %s: invalid member id %d", d.name, id))
	}
	return d.members[id]
}

// NumMembers returns the total number of members including the root.
func (d *Dimension) NumMembers() int { return len(d.members) }

// NumLeaves returns the number of leaf members (= the dimension's extent
// in cell addressing).
func (d *Dimension) NumLeaves() int { return len(d.leaves) }

// Leaves returns the leaf member IDs in ordinal order. The returned slice
// must not be modified.
func (d *Dimension) Leaves() []MemberID { return d.leaves }

// Leaf returns the leaf member at the given ordinal.
func (d *Dimension) Leaf(ordinal int) *Member {
	if ordinal < 0 || ordinal >= len(d.leaves) {
		panic(fmt.Sprintf("dimension %s: leaf ordinal %d out of range [0,%d)", d.name, ordinal, len(d.leaves)))
	}
	return d.members[d.leaves[ordinal]]
}

// Path returns the root-to-member path of a member, e.g. "FTE/Joe". The
// root itself has the empty path.
func (d *Dimension) Path(id MemberID) string {
	m := d.Member(id)
	if m.Parent == None {
		return ""
	}
	parts := []string{}
	for m.Parent != None {
		parts = append(parts, m.Name)
		m = d.Member(m.Parent)
	}
	// Reverse.
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, "/")
}

// Add appends a new member with the given simple name under the parent
// identified by parentPath ("" denotes the dimension root). It returns
// the new member's ID. Adding a child under a member that was previously
// a leaf promotes that member to non-leaf and renumbers leaf ordinals.
//
// Adding a leaf whose simple name already exists as a leaf elsewhere in
// the hierarchy creates a new instance of that (varying) member.
func (d *Dimension) Add(parentPath, name string) (MemberID, error) {
	if name == "" {
		return None, fmt.Errorf("dimension %s: empty member name", d.name)
	}
	if strings.Contains(name, "/") {
		return None, fmt.Errorf("dimension %s: member name %q must not contain '/'", d.name, name)
	}
	parent, err := d.lookupPath(parentPath)
	if err != nil {
		return None, err
	}
	path := name
	if parentPath != "" {
		path = parentPath + "/" + name
	}
	if _, dup := d.byPath[path]; dup {
		return None, fmt.Errorf("dimension %s: member path %q already exists", d.name, path)
	}
	p := d.Member(parent)
	id := MemberID(len(d.members))
	m := &Member{ID: id, Name: name, Parent: parent, Depth: p.Depth + 1, LeafOrdinal: -1}
	d.members = append(d.members, m)
	d.byPath[path] = id
	wasLeaf := p.IsLeaf() && p.Parent != None
	p.Children = append(p.Children, id)
	if wasLeaf {
		// Parent stops being a leaf; drop it from instance and leaf
		// bookkeeping and renumber.
		d.removeInstance(p.Name, p.ID)
	}
	d.instances[name] = append(d.instances[name], id)
	d.renumberLeaves()
	return id, nil
}

// MustAdd is Add that panics on error; it is intended for statically
// known hierarchies in tests and examples.
func (d *Dimension) MustAdd(parentPath, name string) MemberID {
	id, err := d.Add(parentPath, name)
	if err != nil {
		panic(err)
	}
	return id
}

func (d *Dimension) removeInstance(name string, id MemberID) {
	inst := d.instances[name]
	for i, x := range inst {
		if x == id {
			d.instances[name] = append(inst[:i:i], inst[i+1:]...)
			break
		}
	}
	if len(d.instances[name]) == 0 {
		delete(d.instances, name)
	}
}

// renumberLeaves recomputes the leaf list and ordinals in depth-first
// hierarchy order, which keeps siblings (and for ordered dimensions the
// insertion order of time points) adjacent in cell addressing.
func (d *Dimension) renumberLeaves() {
	d.leaves = d.leaves[:0]
	var walk func(id MemberID)
	walk = func(id MemberID) {
		m := d.members[id]
		if m.IsLeaf() && m.Parent != None {
			m.LeafOrdinal = len(d.leaves)
			d.leaves = append(d.leaves, id)
			return
		}
		m.LeafOrdinal = -1
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(0)
}

func (d *Dimension) lookupPath(path string) (MemberID, error) {
	if path == "" {
		return 0, nil
	}
	if id, ok := d.byPath[path]; ok {
		return id, nil
	}
	return None, fmt.Errorf("dimension %s: no member with path %q", d.name, path)
}

// Lookup resolves a member reference. It accepts a full path ("FTE/Joe"),
// a simple name when that name is unambiguous in the dimension ("Jane"),
// or the dimension name itself (the root). Ambiguous simple names (a
// varying member with several instances) are an error: the caller must
// qualify the instance or use Instances.
func (d *Dimension) Lookup(ref string) (MemberID, error) {
	if ref == d.name {
		return 0, nil
	}
	if id, ok := d.byPath[ref]; ok {
		return id, nil
	}
	if !strings.Contains(ref, "/") {
		// Simple-name resolution: unique across all members.
		var found []MemberID
		for _, m := range d.members[1:] {
			if m.Name == ref {
				found = append(found, m.ID)
			}
		}
		switch len(found) {
		case 1:
			return found[0], nil
		case 0:
			return None, fmt.Errorf("dimension %s: no member named %q", d.name, ref)
		default:
			return None, fmt.Errorf("dimension %s: member name %q is ambiguous (%d instances); qualify with a parent path", d.name, ref, len(found))
		}
	}
	return None, fmt.Errorf("dimension %s: no member with path %q", d.name, ref)
}

// MustLookup is Lookup that panics on error.
func (d *Dimension) MustLookup(ref string) MemberID {
	id, err := d.Lookup(ref)
	if err != nil {
		panic(err)
	}
	return id
}

// Instances returns the IDs of all leaf members sharing the given base
// name, in insertion order. For a non-varying member this is a single ID;
// for an unknown name it is nil.
func (d *Dimension) Instances(baseName string) []MemberID {
	return d.instances[baseName]
}

// VaryingMembers returns the base names that have more than one instance,
// sorted for determinism.
func (d *Dimension) VaryingMembers() []string {
	var names []string
	for name, ids := range d.instances {
		if len(ids) > 1 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// IsDescendant reports whether member id is a strict or non-strict
// descendant of ancestor (a member is its own descendant).
func (d *Dimension) IsDescendant(id, ancestor MemberID) bool {
	for id != None {
		if id == ancestor {
			return true
		}
		id = d.Member(id).Parent
	}
	return false
}

// LeafDescendants returns the leaf ordinals of all leaf members under the
// given member (the member itself if it is a leaf), in ordinal order.
func (d *Dimension) LeafDescendants(id MemberID) []int {
	var out []int
	var walk func(MemberID)
	walk = func(x MemberID) {
		m := d.Member(x)
		if m.IsLeaf() && m.Parent != None {
			out = append(out, m.LeafOrdinal)
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(id)
	sort.Ints(out)
	return out
}

// Height returns the number of edges on the longest root-to-leaf path of
// the member's subtree: leaves have height 0.
func (d *Dimension) Height(id MemberID) int {
	m := d.Member(id)
	if m.IsLeaf() {
		return 0
	}
	h := 0
	for _, c := range m.Children {
		if ch := d.Height(c) + 1; ch > h {
			h = ch
		}
	}
	return h
}

// LevelMembers returns all members at the given level counted from the
// leaves (Essbase convention: level 0 = leaf members), in hierarchy
// order. The root is excluded.
func (d *Dimension) LevelMembers(level int) []MemberID {
	var out []MemberID
	var walk func(MemberID)
	walk = func(x MemberID) {
		m := d.Member(x)
		if m.Parent != None && d.Height(x) == level {
			out = append(out, x)
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(0)
	return out
}

// GenerationMembers returns all members at the given depth from the root
// (generation 1 = children of the root), in hierarchy order.
func (d *Dimension) GenerationMembers(gen int) []MemberID {
	var out []MemberID
	var walk func(MemberID)
	walk = func(x MemberID) {
		m := d.Member(x)
		if m.Depth == gen && m.Parent != None {
			out = append(out, x)
		}
		if m.Depth < gen {
			for _, c := range m.Children {
				walk(c)
			}
		}
	}
	walk(0)
	return out
}

// Clone returns a deep copy of the dimension. Algebra operators that
// change hierarchy structure (split) clone before mutating so that input
// cubes remain untouched.
func (d *Dimension) Clone() *Dimension {
	c := &Dimension{
		name:      d.name,
		ordered:   d.ordered,
		measure:   d.measure,
		members:   make([]*Member, len(d.members)),
		byPath:    make(map[string]MemberID, len(d.byPath)),
		instances: make(map[string][]MemberID, len(d.instances)),
		leaves:    append([]MemberID(nil), d.leaves...),
	}
	for i, m := range d.members {
		mm := *m
		mm.Children = append([]MemberID(nil), m.Children...)
		c.members[i] = &mm
	}
	for k, v := range d.byPath {
		c.byPath[k] = v
	}
	for k, v := range d.instances {
		c.instances[k] = append([]MemberID(nil), v...)
	}
	return c
}

// Binding declares that varying dimension Varying changes as a function
// of parameter dimension Param, and records the validity set of every
// leaf member instance of Varying over the leaves of Param (paper
// Definition 2.1).
type Binding struct {
	Varying *Dimension
	Param   *Dimension
	// VS maps a leaf member (instance) of Varying to its validity set
	// over Param's leaf ordinals. Instances absent from the map are valid
	// everywhere (non-varying members need not be enumerated).
	VS map[MemberID]*bitset.Set
}

// NewBinding creates an empty binding between a varying and a parameter
// dimension.
func NewBinding(varying, param *Dimension) *Binding {
	return &Binding{Varying: varying, Param: param, VS: make(map[MemberID]*bitset.Set)}
}

// SetVS records the validity set of a member instance, given parameter
// leaf ordinals.
func (b *Binding) SetVS(instance MemberID, paramOrdinals ...int) {
	b.VS[instance] = bitset.FromSlice(b.Param.NumLeaves(), paramOrdinals)
}

// ValiditySet returns the validity set of the given leaf member instance.
// Members without an explicit entry are valid at every parameter leaf.
func (b *Binding) ValiditySet(instance MemberID) *bitset.Set {
	if vs, ok := b.VS[instance]; ok {
		return vs
	}
	all := bitset.New(b.Param.NumLeaves())
	all.AddRange(0, b.Param.NumLeaves())
	return all
}

// InstanceAt returns the instance of the given base name valid at the
// parameter leaf ordinal t, or None if no instance is valid there. This
// is the d_t of the paper's relocate semantics.
func (b *Binding) InstanceAt(baseName string, t int) MemberID {
	for _, id := range b.Varying.Instances(baseName) {
		if b.ValiditySet(id).Contains(t) {
			return id
		}
	}
	return None
}

// Validate checks the core invariant of the model: validity sets of
// different instances of the same member never overlap (paper §2).
func (b *Binding) Validate() error {
	for _, name := range b.Varying.VaryingMembers() {
		ids := b.Varying.Instances(name)
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				vi, vj := b.ValiditySet(ids[i]), b.ValiditySet(ids[j])
				if vi.Intersects(vj) {
					return fmt.Errorf("binding %s/%s: instances %q and %q of member %q have overlapping validity sets %v and %v",
						b.Varying.Name(), b.Param.Name(),
						b.Varying.Path(ids[i]), b.Varying.Path(ids[j]), name, vi, vj)
				}
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the binding rebased onto the given cloned
// dimensions (which must be clones of the binding's originals).
func (b *Binding) Clone(varying, param *Dimension) *Binding {
	c := NewBinding(varying, param)
	for id, vs := range b.VS {
		c.VS[id] = vs.Clone()
	}
	return c
}
