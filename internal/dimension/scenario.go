// Scenario-workspace extensions: hypothetical member introduction and
// validity-window edits. Both operate on a *clone* of the base
// dimension owned by one scenario — the base cube's hierarchies are
// never touched.
//
// The critical difference from Add is ordinal stability. Add renumbers
// leaf ordinals in depth-first hierarchy order, which would shift the
// addressing of every cell already stored in the base cube's chunks.
// A hypothetical member therefore takes the next ordinal at the END of
// the ordinal space — above the base ID space — so base chunks keep
// their layout and only the scenario's own layers (built on a wider
// geometry) hold the new member's cells.
package dimension

import (
	"fmt"
	"strings"

	"whatifolap/internal/bitset"
)

// AddHypothetical appends a hypothetical new leaf member under
// parentPath ("" = the dimension root) without renumbering existing
// leaf ordinals: the new member's ordinal is the previous leaf count.
// The parent must be the root or an existing non-leaf member — placing
// a child under a leaf would demote that leaf and force renumbering,
// which AddHypothetical exists to avoid. Rollup routes the new
// member's cells through the chosen parent exactly like any other
// child.
//
// A name that already exists as a leaf elsewhere creates a new
// instance of that (varying) member, to be given a validity window
// with Binding.SetWindow.
func (d *Dimension) AddHypothetical(parentPath, name string) (MemberID, error) {
	if name == "" {
		return None, fmt.Errorf("dimension %s: empty member name", d.name)
	}
	if strings.Contains(name, "/") {
		return None, fmt.Errorf("dimension %s: member name %q must not contain '/'", d.name, name)
	}
	parent, err := d.lookupPath(parentPath)
	if err != nil {
		return None, err
	}
	p := d.Member(parent)
	if p.IsLeaf() && p.Parent != None {
		return None, fmt.Errorf("dimension %s: hypothetical member %q needs a non-leaf parent, but %q is a leaf (adding under it would renumber base ordinals)", d.name, name, parentPath)
	}
	path := name
	if parentPath != "" {
		path = parentPath + "/" + name
	}
	if _, dup := d.byPath[path]; dup {
		return None, fmt.Errorf("dimension %s: member path %q already exists", d.name, path)
	}
	id := MemberID(len(d.members))
	m := &Member{
		ID:          id,
		Name:        name,
		Parent:      parent,
		Depth:       p.Depth + 1,
		LeafOrdinal: len(d.leaves),
	}
	d.members = append(d.members, m)
	d.byPath[path] = id
	p.Children = append(p.Children, id)
	d.instances[name] = append(d.instances[name], id)
	d.leaves = append(d.leaves, id)
	return id, nil
}

// SetWindow assigns the parameter-leaf window [lo, hi] (inclusive) to
// the instance's validity set and removes that window from every other
// instance of the same base member — SCD Type-2 takeover semantics:
// claiming an interval for one instance evicts its siblings from it,
// preserving the model invariant that at most one instance of a member
// is valid at any parameter point (paper §2). Ordinals outside the
// window keep their previous assignment.
func (b *Binding) SetWindow(instance MemberID, lo, hi int) error {
	n := b.Param.NumLeaves()
	if lo < 0 || hi >= n || lo > hi {
		return fmt.Errorf("binding %s/%s: validity window [%d,%d] out of parameter range [0,%d]", b.Varying.Name(), b.Param.Name(), lo, hi, n-1)
	}
	m := b.Varying.Member(instance)
	if m.LeafOrdinal < 0 {
		return fmt.Errorf("binding %s/%s: %q is not a leaf instance", b.Varying.Name(), b.Param.Name(), b.Varying.Path(instance))
	}
	window := bitset.New(n)
	window.AddRange(lo, hi+1)
	for _, sib := range b.Varying.Instances(m.Name) {
		if sib == instance {
			continue
		}
		vs := b.ValiditySet(sib).Clone()
		vs.SubtractWith(window)
		b.VS[sib] = vs
	}
	if vs, ok := b.VS[instance]; ok {
		vs = vs.Clone()
		vs.UnionWith(window)
		b.VS[instance] = vs
	} else {
		// First explicit claim: the instance is valid exactly in the
		// window (an implicit "valid everywhere" would overlap its
		// siblings and break the invariant).
		b.VS[instance] = window
	}
	return nil
}
