package dimension

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildTime builds the paper's Time dimension: Qtr1..Qtr4 over Jan..Dec.
func buildTime(t testing.TB) *Dimension {
	t.Helper()
	d := New("Time", true)
	months := [][2]string{
		{"Qtr1", "Jan"}, {"Qtr1", "Feb"}, {"Qtr1", "Mar"},
		{"Qtr2", "Apr"}, {"Qtr2", "May"}, {"Qtr2", "Jun"},
		{"Qtr3", "Jul"}, {"Qtr3", "Aug"}, {"Qtr3", "Sep"},
		{"Qtr4", "Oct"}, {"Qtr4", "Nov"}, {"Qtr4", "Dec"},
	}
	seen := map[string]bool{}
	for _, mq := range months {
		if !seen[mq[0]] {
			d.MustAdd("", mq[0])
			seen[mq[0]] = true
		}
		d.MustAdd(mq[0], mq[1])
	}
	return d
}

// buildOrg builds the paper's Organization dimension of Fig 1 with Joe as
// a varying member (instances under FTE, PTE and Contractor).
func buildOrg(t testing.TB) *Dimension {
	t.Helper()
	d := New("Organization", false)
	d.MustAdd("", "FTE")
	d.MustAdd("FTE", "Joe")
	d.MustAdd("FTE", "Lisa")
	d.MustAdd("FTE", "Sue")
	d.MustAdd("", "PTE")
	d.MustAdd("PTE", "Tom")
	d.MustAdd("PTE", "Dave")
	d.MustAdd("PTE", "Joe")
	d.MustAdd("", "Contractor")
	d.MustAdd("Contractor", "Jane")
	d.MustAdd("Contractor", "Joe")
	return d
}

func TestLeafOrdinalsFollowHierarchyOrder(t *testing.T) {
	d := buildTime(t)
	if d.NumLeaves() != 12 {
		t.Fatalf("NumLeaves = %d, want 12", d.NumLeaves())
	}
	wantOrder := []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
	for i, name := range wantOrder {
		if got := d.Leaf(i).Name; got != name {
			t.Fatalf("Leaf(%d) = %s, want %s", i, got, name)
		}
	}
}

func TestPathAndLookup(t *testing.T) {
	d := buildOrg(t)
	joeFTE := d.MustLookup("FTE/Joe")
	if got := d.Path(joeFTE); got != "FTE/Joe" {
		t.Fatalf("Path = %q, want FTE/Joe", got)
	}
	if _, err := d.Lookup("Joe"); err == nil {
		t.Fatal("simple-name lookup of varying member should be ambiguous")
	}
	jane, err := d.Lookup("Jane")
	if err != nil {
		t.Fatalf("Lookup(Jane): %v", err)
	}
	if d.Path(jane) != "Contractor/Jane" {
		t.Fatalf("Path(Jane) = %q", d.Path(jane))
	}
	if root, err := d.Lookup("Organization"); err != nil || root != d.Root() {
		t.Fatalf("Lookup(dimension name) = %v, %v", root, err)
	}
	if _, err := d.Lookup("Nobody"); err == nil {
		t.Fatal("Lookup of unknown member should fail")
	}
}

func TestInstances(t *testing.T) {
	d := buildOrg(t)
	inst := d.Instances("Joe")
	if len(inst) != 3 {
		t.Fatalf("Instances(Joe) = %d, want 3", len(inst))
	}
	paths := []string{}
	for _, id := range inst {
		paths = append(paths, d.Path(id))
	}
	if strings.Join(paths, ",") != "FTE/Joe,PTE/Joe,Contractor/Joe" {
		t.Fatalf("instance paths = %v", paths)
	}
	if vm := d.VaryingMembers(); len(vm) != 1 || vm[0] != "Joe" {
		t.Fatalf("VaryingMembers = %v, want [Joe]", vm)
	}
}

func TestAddErrors(t *testing.T) {
	d := New("D", false)
	if _, err := d.Add("", ""); err == nil {
		t.Fatal("empty name should fail")
	}
	if _, err := d.Add("", "a/b"); err == nil {
		t.Fatal("name with slash should fail")
	}
	d.MustAdd("", "A")
	if _, err := d.Add("", "A"); err == nil {
		t.Fatal("duplicate path should fail")
	}
	if _, err := d.Add("Missing", "B"); err == nil {
		t.Fatal("missing parent should fail")
	}
}

func TestLeafPromotion(t *testing.T) {
	d := New("D", false)
	d.MustAdd("", "A")
	if d.NumLeaves() != 1 {
		t.Fatalf("NumLeaves = %d, want 1", d.NumLeaves())
	}
	// A was a leaf (and an instance); adding a child promotes it.
	d.MustAdd("A", "B")
	if d.NumLeaves() != 1 {
		t.Fatalf("NumLeaves after promotion = %d, want 1", d.NumLeaves())
	}
	if d.Leaf(0).Name != "B" {
		t.Fatalf("Leaf(0) = %s, want B", d.Leaf(0).Name)
	}
	a := d.MustLookup("A")
	if d.Member(a).LeafOrdinal != -1 {
		t.Fatal("promoted member should have LeafOrdinal -1")
	}
	if got := d.Instances("A"); len(got) != 0 {
		t.Fatalf("Instances(A) after promotion = %v, want empty", got)
	}
}

func TestIsDescendantAndLeafDescendants(t *testing.T) {
	d := buildOrg(t)
	fte := d.MustLookup("FTE")
	joe := d.MustLookup("FTE/Joe")
	if !d.IsDescendant(joe, fte) {
		t.Fatal("FTE/Joe should be a descendant of FTE")
	}
	if !d.IsDescendant(joe, d.Root()) {
		t.Fatal("every member is a descendant of the root")
	}
	if d.IsDescendant(fte, joe) {
		t.Fatal("FTE is not a descendant of FTE/Joe")
	}
	got := d.LeafDescendants(fte)
	if len(got) != 3 {
		t.Fatalf("LeafDescendants(FTE) = %v, want 3 leaves", got)
	}
}

func TestHeightLevelsGenerations(t *testing.T) {
	d := buildTime(t)
	if h := d.Height(d.Root()); h != 2 {
		t.Fatalf("Height(root) = %d, want 2", h)
	}
	if got := d.LevelMembers(0); len(got) != 12 {
		t.Fatalf("LevelMembers(0) = %d, want 12", len(got))
	}
	if got := d.LevelMembers(1); len(got) != 4 {
		t.Fatalf("LevelMembers(1) = %d, want 4 quarters", len(got))
	}
	if got := d.GenerationMembers(1); len(got) != 4 {
		t.Fatalf("GenerationMembers(1) = %d, want 4 quarters", len(got))
	}
	if got := d.GenerationMembers(2); len(got) != 12 {
		t.Fatalf("GenerationMembers(2) = %d, want 12 months", len(got))
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := buildOrg(t)
	c := d.Clone()
	c.MustAdd("FTE", "NewGuy")
	if _, err := d.Lookup("FTE/NewGuy"); err == nil {
		t.Fatal("clone mutation leaked into original")
	}
	if d.NumLeaves() == c.NumLeaves() {
		t.Fatal("leaf counts should differ after clone mutation")
	}
}

func TestBindingValidityAndInstanceAt(t *testing.T) {
	org := buildOrg(t)
	tim := buildTime(t)
	b := NewBinding(org, tim)
	// Paper §2: VS(FTE/Joe) = {Jan}, VS(PTE/Joe) = {Feb},
	// VS(Contractor/Joe) = Mar onwards except May.
	b.SetVS(org.MustLookup("FTE/Joe"), 0)
	b.SetVS(org.MustLookup("PTE/Joe"), 1)
	b.SetVS(org.MustLookup("Contractor/Joe"), 2, 3, 5, 6, 7, 8, 9, 10, 11)
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := b.InstanceAt("Joe", 0); org.Path(got) != "FTE/Joe" {
		t.Fatalf("InstanceAt(Joe, Jan) = %s", org.Path(got))
	}
	if got := b.InstanceAt("Joe", 4); got != None {
		t.Fatalf("InstanceAt(Joe, May) = %v, want None (vacation)", got)
	}
	if got := b.InstanceAt("Joe", 7); org.Path(got) != "Contractor/Joe" {
		t.Fatalf("InstanceAt(Joe, Aug) = %s", org.Path(got))
	}
	// Non-varying member is valid everywhere by default.
	jane := org.MustLookup("Jane")
	if vs := b.ValiditySet(jane); vs.Len() != 12 {
		t.Fatalf("default VS len = %d, want 12", vs.Len())
	}
}

func TestBindingValidateOverlap(t *testing.T) {
	org := buildOrg(t)
	tim := buildTime(t)
	b := NewBinding(org, tim)
	b.SetVS(org.MustLookup("FTE/Joe"), 0, 1)
	b.SetVS(org.MustLookup("PTE/Joe"), 1, 2) // overlaps at Feb
	b.SetVS(org.MustLookup("Contractor/Joe"), 3)
	if err := b.Validate(); err == nil {
		t.Fatal("overlapping validity sets should fail validation")
	}
}

func TestBindingClone(t *testing.T) {
	org := buildOrg(t)
	tim := buildTime(t)
	b := NewBinding(org, tim)
	b.SetVS(org.MustLookup("FTE/Joe"), 0)
	org2, tim2 := org.Clone(), tim.Clone()
	c := b.Clone(org2, tim2)
	c.VS[org2.MustLookup("FTE/Joe")].Add(5)
	if b.ValiditySet(org.MustLookup("FTE/Joe")).Contains(5) {
		t.Fatal("binding clone mutation leaked")
	}
}

// Property: leaf ordinals are always a dense permutation 0..NumLeaves-1
// and every non-leaf member has ordinal -1, under random hierarchy
// construction.
func TestQuickLeafOrdinalsDense(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := New("R", false)
		paths := []string{""}
		for i := 0; i < 40; i++ {
			parent := paths[r.Intn(len(paths))]
			name := string(rune('a'+i%26)) + string(rune('0'+i/26))
			if _, err := d.Add(parent, name); err != nil {
				continue
			}
			p := name
			if parent != "" {
				p = parent + "/" + name
			}
			paths = append(paths, p)
		}
		seen := make([]bool, d.NumLeaves())
		for id := MemberID(0); int(id) < d.NumMembers(); id++ {
			m := d.Member(id)
			if m.IsLeaf() && m.Parent != None {
				if m.LeafOrdinal < 0 || m.LeafOrdinal >= d.NumLeaves() || seen[m.LeafOrdinal] {
					return false
				}
				seen[m.LeafOrdinal] = true
			} else if m.LeafOrdinal != -1 {
				return false
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Path and byPath lookup are mutually inverse.
func TestQuickPathRoundTrip(t *testing.T) {
	d := buildOrg(t)
	for id := MemberID(1); int(id) < d.NumMembers(); id++ {
		p := d.Path(id)
		got, err := d.Lookup(p)
		if err != nil || got != id {
			t.Fatalf("Lookup(Path(%d)=%q) = %v, %v", id, p, got, err)
		}
	}
}
