// Package trace is the pipeline's span recorder: a per-query tree of
// timed spans (parse → plan → scan → per-merge-group children → merge →
// assemble → project) with integer counter annotations, threaded
// through the engine by context propagation.
//
// The design goal is that tracing costs nothing when it is off and
// almost nothing when it is on:
//
//   - Off is the nil *Trace. Every method has a nil receiver fast path,
//     SpanRef is a two-word value, and no call allocates — the
//     instrumented hot paths (chunk scan, overlay writes) stay at zero
//     allocations per cell (pinned by BenchmarkTraceOff).
//   - On, spans live in one buffer preallocated at New; starting a span
//     claims a slot with one atomic add (safe for the parallel
//     merge-group scan workers), timestamps come from the monotonic
//     clock via a single time.Since against the trace epoch, and
//     attributes are fixed-size key/int64 pairs — no maps, no
//     interfaces, no formatting. When the buffer fills, further spans
//     are counted as dropped rather than grown.
//
// Formatting (Render, Tree) lives in render.go; this file must not
// import fmt — span *recording* is on the query hot path, span
// *formatting* happens only at exposition time (EXPLAIN ANALYZE, the
// slow-query log, whatif -trace). verify.sh enforces the split.
package trace

import (
	"context"
	"sync/atomic"
	"time"
)

// maxAttrs bounds the counter annotations per span. Fixed so a span is
// a flat value in the preallocated buffer.
const maxAttrs = 8

// DefaultMaxSpans is the span-buffer capacity New(0) allocates: enough
// for a deep merge graph (one span per merge group and per spill
// fault) without growing.
const DefaultMaxSpans = 512

// Attr is one integer annotation on a span. Keys must be static
// strings (no formatting on the hot path); values are raw counts, or
// microseconds for durations by convention (µs-suffixed keys).
type Attr struct {
	Key string
	Val int64
}

// span is the in-buffer representation. Fields are written only by the
// goroutine that started the span, before End publishes it; readers
// (Render, Spans) run after the traced execution has completed.
type span struct {
	name     string
	parent   int32
	startNs  int64 // monotonic offset from the trace epoch
	endNs    int64 // 0 while the span is open
	numAttrs int32
	attrs    [maxAttrs]Attr
}

// Trace records one query's span tree. Create with New, propagate with
// NewContext/FromContext, read with Spans/Tree/Render after the traced
// execution finishes. A nil *Trace is the disabled recorder: every
// method is a no-op, so instrumented code never branches on "is
// tracing on" itself.
//
// Concurrency: Start/Record are safe from concurrent goroutines (slot
// claims are atomic); a SpanRef must be ended and annotated only by
// the goroutine holding it. Reading APIs must not run concurrently
// with recording — the pipeline records while executing and exposes
// the trace only after the query returns.
type Trace struct {
	epoch   time.Time
	spans   []span
	next    atomic.Int32
	dropped atomic.Int32
}

// New creates a trace with a span buffer of the given capacity
// (DefaultMaxSpans when maxSpans <= 0). The buffer is the only
// allocation tracing ever makes; reuse traces across queries with
// Reset (the serving layer pools them).
func New(maxSpans int) *Trace {
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	return &Trace{epoch: time.Now(), spans: make([]span, maxSpans)}
}

// Reset rewinds the trace for reuse: the span buffer is kept, the
// epoch restarts now. Not safe concurrently with recording.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	n := int(t.next.Load())
	if n > len(t.spans) {
		n = len(t.spans)
	}
	for i := 0; i < n; i++ {
		t.spans[i] = span{}
	}
	t.next.Store(0)
	t.dropped.Store(0)
	t.epoch = time.Now()
}

// Enabled reports whether the trace records spans (false for nil).
func (t *Trace) Enabled() bool { return t != nil }

// Dropped reports spans discarded because the buffer was full.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	return int(t.dropped.Load())
}

// Now returns the monotonic offset from the trace epoch, or 0 when
// tracing is off. Instrumentation uses it to timestamp conditional
// spans (Record) without claiming a slot up front.
func (t *Trace) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.epoch))
}

// SpanRef addresses one recorded span. The zero SpanRef is both "no
// parent" (a root span) and the no-op ref returned when tracing is off
// or the buffer is full; all its methods do nothing.
type SpanRef struct {
	t  *Trace
	id int32
}

// Valid reports whether the ref addresses a recorded span.
func (s SpanRef) Valid() bool { return s.t != nil }

// Start claims a span named name under parent (the zero SpanRef makes
// a root span), open until End. On a nil trace, or when the buffer is
// full (counted in Dropped), the returned ref is a no-op.
func (t *Trace) Start(parent SpanRef, name string) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	id := t.next.Add(1) - 1
	if int(id) >= len(t.spans) {
		t.dropped.Add(1)
		return SpanRef{}
	}
	sp := &t.spans[id]
	sp.name = name
	sp.parent = parentID(parent)
	sp.startNs = int64(time.Since(t.epoch))
	return SpanRef{t: t, id: id}
}

// Record claims an already-timed span: startNs/endNs are offsets from
// the trace epoch as returned by Now. Instrumentation uses it for
// spans that exist only in hindsight — e.g. a chunk read turns into a
// "fault" span only if the buffer pool actually faulted.
func (t *Trace) Record(parent SpanRef, name string, startNs, endNs int64) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	id := t.next.Add(1) - 1
	if int(id) >= len(t.spans) {
		t.dropped.Add(1)
		return SpanRef{}
	}
	sp := &t.spans[id]
	sp.name = name
	sp.parent = parentID(parent)
	sp.startNs = startNs
	sp.endNs = endNs
	return SpanRef{t: t, id: id}
}

func parentID(parent SpanRef) int32 {
	if parent.t == nil {
		return -1
	}
	return parent.id
}

// End closes the span at the current monotonic offset. No-op on an
// invalid ref; ending twice keeps the first end.
func (s SpanRef) End() {
	if s.t == nil {
		return
	}
	sp := &s.t.spans[s.id]
	if sp.endNs == 0 {
		sp.endNs = int64(time.Since(s.t.epoch))
	}
}

// Int annotates the span with a key/value counter. Attributes beyond
// the span's fixed capacity are dropped silently (the caps are sized
// for the pipeline's instrumentation). Keys must be static strings.
func (s SpanRef) Int(key string, v int64) {
	if s.t == nil {
		return
	}
	sp := &s.t.spans[s.id]
	if sp.numAttrs >= maxAttrs {
		return
	}
	sp.attrs[sp.numAttrs] = Attr{Key: key, Val: v}
	sp.numAttrs++
}

// IntNonZero is Int that skips zero values, keeping rendered spans to
// the counters that actually moved.
func (s SpanRef) IntNonZero(key string, v int64) {
	if v != 0 {
		s.Int(key, v)
	}
}

// ctxKey is the context key type for trace propagation.
type ctxKey struct{}

// NewContext returns a context carrying the trace. A nil trace returns
// ctx unchanged, so callers can thread "maybe tracing" without
// branching.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, or nil (the disabled
// recorder) when ctx is nil or carries none. The nil result is usable:
// all recording methods no-op on it.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// spanCtxKey is the context key type for the current parent span.
type spanCtxKey struct{}

// WithSpan returns a context carrying sp as the current parent span, so
// a lower layer's spans nest under the caller's (the evaluator's "eval"
// span parents the engine's "plan"/"scan"/...). An invalid ref returns
// ctx unchanged.
func WithSpan(ctx context.Context, sp SpanRef) context.Context {
	if !sp.Valid() {
		return ctx
	}
	//lint:allocok context plumbing at query-setup boundaries, not per cell; WithValue allocates its own node anyway
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the context's current parent span, or the
// zero SpanRef (a root parent) when ctx is nil or carries none.
func SpanFromContext(ctx context.Context) SpanRef {
	if ctx == nil {
		return SpanRef{}
	}
	sp, _ := ctx.Value(spanCtxKey{}).(SpanRef)
	return sp
}
