package trace

// Exposition: snapshotting, tree reconstruction and text rendering.
// This file is the only place in the package allowed to import fmt —
// recording (trace.go) stays formatting-free; formatting happens once,
// when a human or an exporter asks for the trace.
//
//lint:coldfmt exposition-time rendering only; trace.go (the recording hot path) is fmt-free and hotpathfmt-checked

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Span is the exported read-only view of one recorded span.
type Span struct {
	// ID is the span's index in recording order; Parent is the parent
	// span's ID, or -1 for a root.
	ID     int
	Parent int
	Name   string
	// Start and End are monotonic offsets from the trace epoch. An
	// unfinished span (recording raced a panic or the buffer snapshot)
	// reports End == Start.
	Start time.Duration
	End   time.Duration
	Attrs []Attr
}

// Duration is the span's wall time.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Ms is the span's wall time in milliseconds.
func (s Span) Ms() float64 { return float64(s.End-s.Start) / float64(time.Millisecond) }

// Attr returns the value of the named attribute and whether it is set.
func (s Span) Attr(key string) (int64, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return 0, false
}

// Spans snapshots the recorded spans in recording order. Must not run
// concurrently with recording. Returns nil on a nil trace.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	n := int(t.next.Load())
	if n > len(t.spans) {
		n = len(t.spans)
	}
	out := make([]Span, n)
	for i := 0; i < n; i++ {
		sp := &t.spans[i]
		end := sp.endNs
		if end == 0 {
			end = sp.startNs
		}
		out[i] = Span{
			ID:     i,
			Parent: int(sp.parent),
			Name:   sp.name,
			Start:  time.Duration(sp.startNs),
			End:    time.Duration(end),
			Attrs:  append([]Attr(nil), sp.attrs[:sp.numAttrs]...),
		}
	}
	return out
}

// Node is one node of the reconstructed span tree.
type Node struct {
	Span
	Children []*Node
}

// Tree reconstructs the span forest (roots in start order, children in
// recording order). Spans whose parent was dropped become roots.
func (t *Trace) Tree() []*Node { return TreeOf(t.Spans()) }

// TreeOf reconstructs the span forest from an already-snapshotted span
// slice — the retained-trace path, where the recorder that produced
// the spans has long since been reset and pooled.
func TreeOf(spans []Span) []*Node {
	nodes := make([]*Node, len(spans))
	for i := range spans {
		nodes[i] = &Node{Span: spans[i]}
	}
	var roots []*Node
	for i, n := range nodes {
		p := spans[i].Parent
		if p >= 0 && p < len(nodes) && p != i {
			nodes[p].Children = append(nodes[p].Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sort.SliceStable(roots, func(i, j int) bool { return roots[i].Start < roots[j].Start })
	return roots
}

// Render prints the span tree, one span per line, indented by depth:
//
//	eval                      12.104ms
//	  plan                     0.412ms  merge_groups=4
//	  scan                     8.031ms  chunks_read=52 cells_relocated=10400
//	    group 0                 2.113ms  chunks_read=13
//
// Durations are milliseconds with µs resolution; attributes render in
// recording order.
func (t *Trace) Render() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	renderSpans(&b, t.Spans())
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(&b, "(+%d spans dropped: buffer full)\n", d)
	}
	return b.String()
}

// RenderSpans renders an already-snapshotted span slice in the same
// tree format — used by /debug/trace/{id}, whose spans outlive the
// pooled recorder they were captured from.
func RenderSpans(spans []Span) string {
	var b strings.Builder
	renderSpans(&b, spans)
	return b.String()
}

func renderSpans(b *strings.Builder, spans []Span) {
	for _, root := range TreeOf(spans) {
		renderNode(b, root, 0)
	}
}

func renderNode(b *strings.Builder, n *Node, depth int) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%-32s %9.3fms", indent+n.Name, n.Ms())
	for _, a := range n.Attrs {
		fmt.Fprintf(b, "  %s=%d", a.Key, a.Val)
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		renderNode(b, c, depth+1)
	}
}

// StageMs sums the durations of all spans with the given name — the
// per-stage total EXPLAIN ANALYZE reports and tests reconcile against
// core.Stats.
func (t *Trace) StageMs(name string) float64 {
	var ms float64
	for _, s := range t.Spans() {
		if s.Name == name {
			ms += s.Ms()
		}
	}
	return ms
}
