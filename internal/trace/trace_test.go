package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	sp := tr.Start(SpanRef{}, "root")
	if sp.Valid() {
		t.Fatal("nil trace returned a valid span")
	}
	sp.Int("k", 1)
	sp.End()
	tr.Record(sp, "x", 0, 1)
	if tr.Now() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil trace leaked state")
	}
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil trace Spans() = %v, want nil", got)
	}
	if tr.Render() != "" {
		t.Fatal("nil trace renders non-empty")
	}
	tr.Reset() // must not panic
}

func TestTraceZeroAllocsWhenOff(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Start(SpanRef{}, "scan")
		sp.Int("chunks_read", 3)
		_ = tr.Now()
		tr.Record(sp, "fault", 0, 10)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates: %v allocs/op", allocs)
	}
}

func TestTraceZeroAllocsWhenOn(t *testing.T) {
	tr := New(1024)
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Start(SpanRef{}, "scan")
		sp.Int("chunks_read", 3)
		sp.IntNonZero("cells", 0)
		tr.Record(sp, "fault", tr.Now(), tr.Now())
		sp.End()
		tr.Reset()
	})
	if allocs != 0 {
		t.Fatalf("active recording allocates: %v allocs/op (buffer should be reused)", allocs)
	}
}

func TestSpanTree(t *testing.T) {
	tr := New(0)
	root := tr.Start(SpanRef{}, "eval")
	plan := tr.Start(root, "plan")
	plan.Int("merge_groups", 4)
	plan.End()
	scan := tr.Start(root, "scan")
	g0 := tr.Start(scan, "group")
	g0.Int("chunks_read", 13)
	g0.End()
	scan.End()
	root.End()

	roots := tr.Tree()
	if len(roots) != 1 || roots[0].Name != "eval" {
		t.Fatalf("want one root 'eval', got %+v", roots)
	}
	if len(roots[0].Children) != 2 {
		t.Fatalf("want 2 children of eval, got %d", len(roots[0].Children))
	}
	scanNode := roots[0].Children[1]
	if scanNode.Name != "scan" || len(scanNode.Children) != 1 || scanNode.Children[0].Name != "group" {
		t.Fatalf("scan subtree wrong: %+v", scanNode)
	}
	if v, ok := scanNode.Children[0].Attr("chunks_read"); !ok || v != 13 {
		t.Fatalf("group attr chunks_read = %d,%v", v, ok)
	}
	out := tr.Render()
	for _, want := range []string{"eval", "plan", "scan", "group", "merge_groups=4", "chunks_read=13"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSpanDurations(t *testing.T) {
	tr := New(0)
	sp := tr.Start(SpanRef{}, "work")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("want 1 span, got %d", len(spans))
	}
	if d := spans[0].Duration(); d < 1*time.Millisecond || d > 500*time.Millisecond {
		t.Fatalf("span duration %v implausible for a 2ms sleep", d)
	}
	if ms := tr.StageMs("work"); ms < 1 {
		t.Fatalf("StageMs(work) = %v, want >= 1", ms)
	}
	if ms := tr.StageMs("absent"); ms != 0 {
		t.Fatalf("StageMs(absent) = %v, want 0", ms)
	}
}

func TestBufferFullDrops(t *testing.T) {
	tr := New(2)
	a := tr.Start(SpanRef{}, "a")
	b := tr.Start(a, "b")
	c := tr.Start(b, "c") // buffer full
	if c.Valid() {
		t.Fatal("span beyond capacity should be invalid")
	}
	c.Int("k", 1) // must not panic
	c.End()
	if tr.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", tr.Dropped())
	}
	b.End()
	a.End()
	if got := len(tr.Spans()); got != 2 {
		t.Fatalf("recorded %d spans, want 2", got)
	}
	if !strings.Contains(tr.Render(), "dropped") {
		t.Fatal("render does not note dropped spans")
	}
}

func TestAttrOverflowIgnored(t *testing.T) {
	tr := New(0)
	sp := tr.Start(SpanRef{}, "s")
	for i := 0; i < maxAttrs+4; i++ {
		sp.Int("k", int64(i))
	}
	sp.End()
	if n := len(tr.Spans()[0].Attrs); n != maxAttrs {
		t.Fatalf("attrs = %d, want capped at %d", n, maxAttrs)
	}
}

func TestContextPropagation(t *testing.T) {
	if FromContext(nil) != nil {
		t.Fatal("FromContext(nil) should be nil")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context should carry no trace")
	}
	tr := New(0)
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace not recovered from context")
	}
	// Nil trace leaves the context untouched.
	base := context.Background()
	if NewContext(base, nil) != base {
		t.Fatal("NewContext(nil trace) should return ctx unchanged")
	}
}

// TestConcurrentTraceStarts exercises the atomic slot claim from many
// goroutines (the parallel merge-group scan's usage); run under -race
// via the verify.sh Trace subset.
func TestConcurrentTraceStarts(t *testing.T) {
	tr := New(4096)
	root := tr.Start(SpanRef{}, "scan")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 256; i++ {
				sp := tr.Start(root, "group")
				sp.Int("worker", int64(w))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	spans := tr.Spans()
	if len(spans) != 1+8*256 {
		t.Fatalf("recorded %d spans, want %d", len(spans), 1+8*256)
	}
	for _, s := range spans[1:] {
		if s.Name != "group" || s.Parent != 0 {
			t.Fatalf("corrupt span under concurrency: %+v", s)
		}
	}
}

func TestReset(t *testing.T) {
	tr := New(4)
	for i := 0; i < 6; i++ { // overflow on purpose
		tr.Start(SpanRef{}, "s").End()
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	tr.Reset()
	if len(tr.Spans()) != 0 || tr.Dropped() != 0 {
		t.Fatal("reset did not clear the trace")
	}
	sp := tr.Start(SpanRef{}, "fresh")
	sp.End()
	if got := tr.Spans(); len(got) != 1 || got[0].Name != "fresh" {
		t.Fatalf("post-reset recording broken: %+v", got)
	}
}
