package simdisk

import (
	"testing"

	"whatifolap/internal/chunk"
)

// A store behind a simdisk Tier must answer exactly like a resident
// store, while the disk accounts every fault and write-back
// deterministically.
func TestTierPoolMatchesResident(t *testing.T) {
	g := chunk.MustGeometry([]int{64}, []int{4}) // 16 chunks of 4 cells
	plain := chunk.NewStore(g)
	tiered := chunk.NewStore(g)
	d := MustNew(DefaultModel())
	if err := tiered.AttachTier(NewTier(d), 70); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		plain.Set([]int{i}, float64(i+1))
		tiered.Set([]int{i}, float64(i+1))
	}
	if plain.Len() != tiered.Len() || plain.NumChunks() != tiered.NumChunks() {
		t.Fatalf("shape mismatch: Len %d/%d NumChunks %d/%d",
			plain.Len(), tiered.Len(), plain.NumChunks(), tiered.NumChunks())
	}
	for i := 0; i < 64; i++ {
		if a, b := plain.Get([]int{i}), tiered.Get([]int{i}); a != b {
			t.Fatalf("Get(%d): plain %v, tiered %v", i, a, b)
		}
	}
	st := tiered.SpillStats()
	if st.Evictions == 0 || st.Faults == 0 {
		t.Fatalf("expected pool traffic: %+v", st)
	}
	ds := d.Stats()
	if ds.Reads == 0 || ds.CostMs <= 0 {
		t.Fatalf("disk never charged: %+v", ds)
	}
}

// Faults through the tier surface the modeled cost in ReadInfo.CostMs,
// mirroring the cost-hook contract (per-read attribution, no global
// counter diffing).
func TestTierFaultCostAttribution(t *testing.T) {
	g := chunk.MustGeometry([]int{64}, []int{4})
	s := chunk.NewStore(g)
	d := MustNew(DefaultModel())
	ti := NewTier(d)
	for i := 0; i < 64; i++ {
		s.Set([]int{i}, float64(i+1))
	}
	if err := s.AttachTier(ti, 70); err != nil {
		t.Fatal(err)
	}
	// Evictions wrote most chunks to the tier; fault one back.
	var faulted bool
	for id := 0; id < 16; id++ {
		c, info := s.ReadChunkInfo(id)
		if c == nil {
			t.Fatalf("chunk %d lost", id)
		}
		if info.Faulted {
			faulted = true
			if info.CostMs <= 0 {
				t.Fatalf("fault of chunk %d carried no modeled cost: %+v", id, info)
			}
			if info.Durable {
				t.Fatalf("simdisk tier is not durable: %+v", info)
			}
		}
	}
	if !faulted {
		t.Fatal("no read faulted through the tier")
	}
}

// The tier isolates its copies: mutating a faulted-in chunk must not
// alter the tier's stored bytes until eviction writes it back.
func TestTierCopyIsolation(t *testing.T) {
	d := MustNew(DefaultModel())
	ti := NewTier(d)
	c := chunk.NewSparse(4)
	c.Set(0, 1)
	ti.Put(0, c)
	c.Set(0, 2) // caller mutates after Put
	got, _, err := ti.ReadChunkAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Get(0) != 1 {
		t.Fatalf("tier copy aliased caller's chunk: %v", got.Get(0))
	}
	got.Set(0, 3) // caller mutates the read result
	again, _, _ := ti.ReadChunkAt(0)
	if again.Get(0) != 1 {
		t.Fatalf("tier copy aliased read result: %v", again.Get(0))
	}
}
