package simdisk

import (
	"sync"

	"whatifolap/internal/chunk"
)

// Tier is the deterministic chunk.Tier: a RAM-held chunk map whose
// reads and writes are charged against a Disk's seek-cost model. It is
// the test double for the real storage tiers — pebbling and
// co-location experiments run against it to get reproducible modeled
// I/O costs with no filesystem in the loop, while the buffer pool
// exercises exactly the fault/evict protocol it uses against the
// segment store.
//
// Chunks are cloned on the way in and out, so a faulted-in chunk the
// store mutates never aliases the tier's copy (a real tier's decode
// step gives the same isolation).
type Tier struct {
	disk *Disk

	mu     sync.Mutex
	chunks map[int]*chunk.Chunk
}

// NewTier creates an empty deterministic tier charging reads and
// writes to the given disk.
func NewTier(d *Disk) *Tier {
	return &Tier{disk: d, chunks: make(map[int]*chunk.Chunk)}
}

// Disk returns the cost model the tier charges against.
func (t *Tier) Disk() *Disk { return t.disk }

// Put preloads a chunk without charging the disk (test setup).
func (t *Tier) Put(id int, c *chunk.Chunk) {
	t.mu.Lock()
	t.chunks[id] = c.Clone()
	t.mu.Unlock()
}

// ReadChunkAt implements chunk.Tier: the modeled cost of the read is
// returned for per-query attribution, exactly like Disk.Read through
// the cost hook.
func (t *Tier) ReadChunkAt(id int) (*chunk.Chunk, float64, error) {
	t.mu.Lock()
	c, ok := t.chunks[id]
	if ok {
		c = c.Clone()
	}
	t.mu.Unlock()
	if !ok {
		return nil, 0, nil
	}
	return c, t.disk.Read(id), nil
}

// WriteChunk implements chunk.Tier. Write-back charges the same seek
// model as a read: the head still has to travel to the slot.
func (t *Tier) WriteChunk(id int, c *chunk.Chunk) error {
	cl := c.Clone()
	t.disk.Read(id)
	t.mu.Lock()
	t.chunks[id] = cl
	t.mu.Unlock()
	return nil
}

// Remove implements chunk.Tier.
func (t *Tier) Remove(id int) error {
	t.mu.Lock()
	delete(t.chunks, id)
	t.mu.Unlock()
	return nil
}

// Contains implements chunk.Tier.
func (t *Tier) Contains(id int) bool {
	t.mu.Lock()
	_, ok := t.chunks[id]
	t.mu.Unlock()
	return ok
}

// IDs implements chunk.Tier.
func (t *Tier) IDs() []int {
	t.mu.Lock()
	ids := make([]int, 0, len(t.chunks))
	for id := range t.chunks {
		ids = append(ids, id)
	}
	t.mu.Unlock()
	return ids
}

// Cells implements chunk.Tier.
func (t *Tier) Cells(id int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.chunks[id]; ok {
		return c.Len()
	}
	return 0
}

// Len implements chunk.Tier.
func (t *Tier) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.chunks)
}

// Sync implements chunk.Tier. RAM needs no barrier.
func (t *Tier) Sync() error { return nil }

// Close implements chunk.Tier.
func (t *Tier) Close() error { return nil }

// ReadOnly implements chunk.Tier.
func (t *Tier) ReadOnly() bool { return false }

// CloneTier implements chunk.CloneableTier: a deep copy of the chunk
// map sharing the disk, so a cloned store keeps deterministic costs
// without forcing residency.
func (t *Tier) CloneTier() (chunk.Tier, bool) {
	t.mu.Lock()
	m := make(map[int]*chunk.Chunk, len(t.chunks))
	for id, c := range t.chunks {
		m[id] = c.Clone()
	}
	t.mu.Unlock()
	return &Tier{disk: t.disk, chunks: m}, true
}
