package simdisk

import (
	"testing"

	"whatifolap/internal/chunk"
)

func TestReadCostShape(t *testing.T) {
	m := Model{Base: 1, PerChunk: 0.1, SeekCap: 5, Transfer: 0.5}
	// Zero distance: base + transfer only.
	if got := m.ReadCost(10, 10); got != 1.5 {
		t.Fatalf("cost(0) = %v, want 1.5", got)
	}
	// Linear region.
	if got := m.ReadCost(0, 10); got != 1+1.0+0.5 {
		t.Fatalf("cost(10) = %v, want 2.5", got)
	}
	// Saturated region: distance 100 would cost 10 but caps at 5.
	if got := m.ReadCost(0, 100); got != 1+5+0.5 {
		t.Fatalf("cost(100) = %v, want 6.5", got)
	}
	// Symmetric in direction.
	if m.ReadCost(100, 0) != m.ReadCost(0, 100) {
		t.Fatal("seek cost should be symmetric")
	}
}

func TestCostMonotoneThenFlat(t *testing.T) {
	m := DefaultModel()
	prev := -1.0
	var flatAt float64
	for dist := 1; dist <= 1<<20; dist *= 2 {
		c := m.ReadCost(0, dist)
		if c < prev {
			t.Fatalf("cost decreased at distance %d", dist)
		}
		prev = c
		flatAt = c
	}
	// Far beyond the cap, doubling distance changes nothing.
	if m.ReadCost(0, 1<<21) != flatAt {
		t.Fatal("cost should be flat beyond the seek cap")
	}
}

func TestDiskAccumulation(t *testing.T) {
	d := MustNew(Model{Base: 1, PerChunk: 1, SeekCap: 100, Transfer: 0})
	d.Read(3) // head 0 -> 3: 1 + 3 = 4
	d.Read(1) // head 3 -> 1: 1 + 2 = 3
	s := d.Stats()
	if s.Reads != 2 {
		t.Fatalf("Reads = %d", s.Reads)
	}
	if s.SeekChunks != 5 {
		t.Fatalf("SeekChunks = %d, want 5", s.SeekChunks)
	}
	if s.CostMs != 7 {
		t.Fatalf("CostMs = %v, want 7", s.CostMs)
	}
	if d.Head() != 1 {
		t.Fatalf("Head = %d, want 1", d.Head())
	}
	d.Reset()
	if d.Stats().Reads != 0 || d.Head() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestValidate(t *testing.T) {
	if _, err := New(Model{Base: -1}); err == nil {
		t.Fatal("negative cost should fail validation")
	}
	if err := DefaultModel().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestStatsCostDuration(t *testing.T) {
	s := Stats{CostMs: 1.5}
	if got := s.Cost().Microseconds(); got != 1500 {
		t.Fatalf("Cost = %dµs, want 1500", got)
	}
}

func TestHookIntegrationWithChunkStore(t *testing.T) {
	g := chunk.MustGeometry([]int{100}, []int{10})
	st := chunk.NewStore(g)
	for i := 0; i < 100; i += 10 {
		st.Set([]int{i}, 1)
	}
	d := MustNew(Model{Base: 1, PerChunk: 1, SeekCap: 1000, Transfer: 0})
	st.SetCostHook(d.Hook())
	st.ReadChunk(0)
	st.ReadChunk(9) // long seek
	st.ReadChunk(9) // no seek
	s := d.Stats()
	if s.Reads != 3 {
		t.Fatalf("Reads = %d", s.Reads)
	}
	if s.SeekChunks != 9 {
		t.Fatalf("SeekChunks = %d, want 9", s.SeekChunks)
	}
	if s.CostMs != 3+9 {
		t.Fatalf("CostMs = %v, want 12", s.CostMs)
	}
}
