// Package simdisk models the disk behaviour of the paper's co-location
// experiment (§6.2) deterministically. The paper measures elapsed time
// of a merge query while the physical separation between related chunks
// grows; query time first rises with separation and then stabilizes
// "because disk seek time eventually becomes a constant overhead".
//
// We have no spinning disk, so we substitute an explicit cost model:
//
//	cost(read) = Base + min(distance·PerChunk, SeekCap) + Transfer
//
// where distance is the number of chunks between the head position and
// the target. The saturating min term reproduces the plateau; the linear
// term reproduces the initial growth. The model attaches to a
// chunk.Store through its read hook, so every engine chunk read is
// accounted without the engine knowing about disks.
package simdisk

import (
	"fmt"
	"math"
	"time"
)

// Model holds the seek-cost parameters. All costs are in milliseconds of
// modeled time.
type Model struct {
	// Base is the fixed per-read overhead (controller + rotational).
	Base float64
	// PerChunk is the seek cost per chunk of head travel.
	PerChunk float64
	// SeekCap bounds the seek term: beyond SeekCap/PerChunk chunks of
	// travel, seeking costs the same regardless of distance.
	SeekCap float64
	// Transfer is the per-chunk transfer cost.
	Transfer float64
}

// DefaultModel returns parameters shaped like a mid-2000s commodity
// drive (the paper's testbed era): ~8 ms full-stroke seek, sub-ms
// short seeks, small per-chunk transfer.
func DefaultModel() Model {
	return Model{Base: 0.05, PerChunk: 0.001, SeekCap: 8.0, Transfer: 0.02}
}

// Validate checks the model's parameters.
func (m Model) Validate() error {
	if m.Base < 0 || m.PerChunk < 0 || m.SeekCap < 0 || m.Transfer < 0 {
		return fmt.Errorf("simdisk: negative cost in model %+v", m)
	}
	return nil
}

// ReadCost returns the modeled cost of reading the chunk at position
// `to` with the head at position `from`.
func (m Model) ReadCost(from, to int) float64 {
	dist := math.Abs(float64(to - from))
	return m.Base + math.Min(dist*m.PerChunk, m.SeekCap) + m.Transfer
}

// Disk accumulates modeled I/O cost over a sequence of chunk reads. The
// zero value is not usable; create with New.
type Disk struct {
	model Model
	head  int
	stats Stats
}

// Stats summarizes the disk activity so far.
type Stats struct {
	// Reads is the number of chunk reads.
	Reads int
	// SeekChunks is the total head travel in chunks.
	SeekChunks int
	// CostMs is the total modeled time in milliseconds.
	CostMs float64
}

// Cost returns the modeled time as a duration.
func (s Stats) Cost() time.Duration {
	return time.Duration(s.CostMs * float64(time.Millisecond))
}

// New creates a disk with the head parked at position 0.
func New(model Model) (*Disk, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Disk{model: model}, nil
}

// MustNew is New that panics on error.
func MustNew(model Model) *Disk {
	d, err := New(model)
	if err != nil {
		panic(err)
	}
	return d
}

// Read models a read of the chunk at the given physical position and
// returns its cost.
func (d *Disk) Read(pos int) float64 {
	c := d.model.ReadCost(d.head, pos)
	if pos > d.head {
		d.stats.SeekChunks += pos - d.head
	} else {
		d.stats.SeekChunks += d.head - pos
	}
	d.head = pos
	d.stats.Reads++
	d.stats.CostMs += c
	return c
}

// Hook returns a function suitable for chunk.(*Store).SetReadHook.
func (d *Disk) Hook() func(id int) {
	return func(id int) { d.Read(id) }
}

// Stats returns a copy of the accumulated statistics.
func (d *Disk) Stats() Stats { return d.stats }

// Reset parks the head at 0 and clears statistics.
func (d *Disk) Reset() {
	d.head = 0
	d.stats = Stats{}
}

// Head returns the current head position.
func (d *Disk) Head() int { return d.head }
