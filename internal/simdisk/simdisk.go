// Package simdisk models the disk behaviour of the paper's co-location
// experiment (§6.2) deterministically. The paper measures elapsed time
// of a merge query while the physical separation between related chunks
// grows; query time first rises with separation and then stabilizes
// "because disk seek time eventually becomes a constant overhead".
//
// We have no spinning disk, so we substitute an explicit cost model:
//
//	cost(read) = Base + min(distance·PerChunk, SeekCap) + Transfer
//
// where distance is the number of chunks between the head position and
// the target. The saturating min term reproduces the plateau; the linear
// term reproduces the initial growth. The model attaches to a
// chunk.Store through its read hook, so every engine chunk read is
// accounted without the engine knowing about disks.
package simdisk

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Model holds the seek-cost parameters. All costs are in milliseconds of
// modeled time.
type Model struct {
	// Base is the fixed per-read overhead (controller + rotational).
	Base float64
	// PerChunk is the seek cost per chunk of head travel.
	PerChunk float64
	// SeekCap bounds the seek term: beyond SeekCap/PerChunk chunks of
	// travel, seeking costs the same regardless of distance.
	SeekCap float64
	// Transfer is the per-chunk transfer cost.
	Transfer float64
}

// DefaultModel returns parameters shaped like a mid-2000s commodity
// drive (the paper's testbed era): ~8 ms full-stroke seek, sub-ms
// short seeks, small per-chunk transfer.
func DefaultModel() Model {
	return Model{Base: 0.05, PerChunk: 0.001, SeekCap: 8.0, Transfer: 0.02}
}

// Validate checks the model's parameters.
func (m Model) Validate() error {
	if m.Base < 0 || m.PerChunk < 0 || m.SeekCap < 0 || m.Transfer < 0 {
		return fmt.Errorf("simdisk: negative cost in model %+v", m)
	}
	return nil
}

// ReadCost returns the modeled cost of reading the chunk at position
// `to` with the head at position `from`.
func (m Model) ReadCost(from, to int) float64 {
	dist := math.Abs(float64(to - from))
	return m.Base + math.Min(dist*m.PerChunk, m.SeekCap) + m.Transfer
}

// Disk accumulates modeled I/O cost over a sequence of chunk reads. The
// zero value is not usable; create with New.
//
// Concurrency: a Disk is safe for concurrent use. The head position
// and the counters update together under an internal mutex, so
// concurrent queries sharing one disk interleave reads exactly as a
// shared physical head would, and Stats always returns a consistent
// snapshot. Per-query cost attribution does NOT come from diffing
// Stats around an execution (two overlapping queries would each absorb
// the other's cost) — Read returns the cost of each individual read,
// and the engine sums the costs of its own reads into its per-query
// statistics (core.Stats.DiskCostMs) via the chunk store's cost hook.
type Disk struct {
	model Model

	mu    sync.Mutex
	head  int
	stats Stats
}

// Stats summarizes the disk activity so far.
type Stats struct {
	// Reads is the number of chunk reads.
	Reads int
	// SeekChunks is the total head travel in chunks.
	SeekChunks int
	// CostMs is the total modeled time in milliseconds.
	CostMs float64
}

// Cost returns the modeled time as a duration.
func (s Stats) Cost() time.Duration {
	return time.Duration(s.CostMs * float64(time.Millisecond))
}

// New creates a disk with the head parked at position 0.
func New(model Model) (*Disk, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Disk{model: model}, nil
}

// MustNew is New that panics on error.
func MustNew(model Model) *Disk {
	d, err := New(model)
	if err != nil {
		panic(err)
	}
	return d
}

// Read models a read of the chunk at the given physical position and
// returns its cost. Safe for concurrent use; the cost returned is the
// cost of exactly this read, so callers can attribute it to the query
// that issued it.
func (d *Disk) Read(pos int) float64 {
	d.mu.Lock()
	c := d.model.ReadCost(d.head, pos)
	if pos > d.head {
		d.stats.SeekChunks += pos - d.head
	} else {
		d.stats.SeekChunks += d.head - pos
	}
	d.head = pos
	d.stats.Reads++
	d.stats.CostMs += c
	d.mu.Unlock()
	return c
}

// Hook returns a cost hook suitable for chunk.(*Store).SetCostHook:
// every chunk read is charged against the disk model and the modeled
// cost flows back to the reader for per-query attribution.
func (d *Disk) Hook() func(id int) float64 {
	return d.Read
}

// Stats returns a consistent copy of the accumulated statistics.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Reset parks the head at 0 and clears statistics.
func (d *Disk) Reset() {
	d.mu.Lock()
	d.head = 0
	d.stats = Stats{}
	d.mu.Unlock()
}

// Head returns the current head position.
func (d *Disk) Head() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.head
}
