package lattice

import (
	"math/rand"
	"testing"
	"testing/quick"

	"whatifolap/internal/chunk"
)

// hruExample builds the worked example of Harinarayan, Rajaraman and
// Ullman (SIGMOD'96, Fig. 4): the part/supplier/customer lattice with
// the view sizes from the paper. Dimension bits: p=0, s=1, c=2.
func hruExample() (map[Mask]float64, Mask) {
	const (
		p   = Mask(0b001)
		s   = Mask(0b010)
		c   = Mask(0b100)
		ps  = p | s
		pc  = p | c
		sc  = s | c
		psc = p | s | c
	)
	return map[Mask]float64{
		psc:     6_000_000, // base
		pc:      6_000_000,
		ps:      800_000,
		sc:      6_000_000,
		p:       200_000,
		s:       12_000,
		c:       100_000,
		Mask(0): 1,
	}, psc
}

// TestHRUGreedyFirstPicks checks the selection order HRU's example
// produces: the first pick is ps (benefit 3 × 5.2M), then c, then p.
func TestHRUGreedyFirstPicks(t *testing.T) {
	sizes, full := hruExample()
	sel, err := GreedySelect(sizes, full, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Views) != 3 {
		t.Fatalf("picked %d views, want 3", len(sel.Views))
	}
	// Third pick: s beats p — s improves s (0.8M→12k) and the apex
	// (0.1M→12k) for ≈0.88M, while p only improves p for 0.6M.
	want := []Mask{0b011 /* ps */, 0b100 /* c */, 0b010 /* s */}
	for i, w := range want {
		if sel.Views[i] != w {
			t.Fatalf("pick %d = %v, want %v (selection %v)", i, sel.Views[i], w, sel.Views)
		}
	}
	// First benefit: ps improves ps, p, s and {} from 6M each to 0.8M:
	// 4 × 5.2M = 20.8M.
	if got := sel.Benefits[0]; got != 4*5_200_000 {
		t.Fatalf("first benefit = %v, want 20.8M", got)
	}
	// Benefits are non-increasing (submodularity).
	for i := 1; i < len(sel.Benefits); i++ {
		if sel.Benefits[i] > sel.Benefits[i-1] {
			t.Fatalf("benefits increased: %v", sel.Benefits)
		}
	}
	if sel.CostAfter >= sel.CostBefore {
		t.Fatalf("selection should reduce cost: %v -> %v", sel.CostBefore, sel.CostAfter)
	}
}

func TestGreedySelectWorkloadAware(t *testing.T) {
	sizes, full := hruExample()
	// A workload that only ever queries sc makes sc the first pick even
	// though its size equals the base (zero benefit)... sc never helps,
	// so instead weight c heavily: c should then be picked before ps.
	freq := map[Mask]float64{Mask(0b100): 1000}
	sel, err := GreedySelect(sizes, full, 1, freq)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Views) != 1 || sel.Views[0] != Mask(0b100) {
		t.Fatalf("workload-aware pick = %v, want c", sel.Views)
	}
}

func TestGreedySelectStopsWhenNoBenefit(t *testing.T) {
	sizes, full := hruExample()
	// Make every proper view as large as the base: nothing helps.
	for m := range sizes {
		sizes[m] = sizes[full]
	}
	sel, err := GreedySelect(sizes, full, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Views) != 0 {
		t.Fatalf("no-benefit lattice picked %v", sel.Views)
	}
	if sel.CostAfter != sel.CostBefore {
		t.Fatal("cost should be unchanged")
	}
}

func TestGreedySelectErrors(t *testing.T) {
	if _, err := GreedySelect(map[Mask]float64{1: 10}, 3, 1, nil); err == nil {
		t.Fatal("missing base view should fail")
	}
	if _, err := GreedySelect(map[Mask]float64{3: 10, 4: 1}, 3, 1, nil); err == nil {
		t.Fatal("view outside lattice should fail")
	}
}

func TestEstimateSizes(t *testing.T) {
	g := chunk.MustGeometry([]int{10, 20, 30}, []int{5, 5, 5})
	sizes := EstimateSizes(g, 500)
	if sizes[Mask(0)] != 1 {
		t.Fatalf("apex size = %v, want 1", sizes[Mask(0)])
	}
	if sizes[Mask(0b001)] != 10 || sizes[Mask(0b010)] != 20 {
		t.Fatalf("unary sizes wrong: %v", sizes)
	}
	// 10×20 = 200 < 500 kept; 20×30 = 600 capped at 500.
	if sizes[Mask(0b011)] != 200 {
		t.Fatalf("ps size = %v, want 200", sizes[Mask(0b011)])
	}
	if sizes[Mask(0b110)] != 500 {
		t.Fatalf("sc size = %v, want cap 500", sizes[Mask(0b110)])
	}
	if sizes[Mask(0b111)] != 500 {
		t.Fatalf("base size = %v, want cap 500", sizes[Mask(0b111)])
	}
}

func TestAnswerCostConsistency(t *testing.T) {
	sizes, full := hruExample()
	sel, err := GreedySelect(sizes, full, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := AnswerCost(sizes, full, nil, nil); got != sel.CostBefore {
		t.Fatalf("AnswerCost(base only) = %v, want %v", got, sel.CostBefore)
	}
	if got := AnswerCost(sizes, full, sel.Views, nil); got != sel.CostAfter {
		t.Fatalf("AnswerCost(selection) = %v, want %v", got, sel.CostAfter)
	}
}

// Property: on random lattices, greedy (1) never increases cost, (2)
// produces non-increasing benefits, (3) CostBefore − CostAfter equals
// the sum of benefits.
func TestQuickGreedyInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		full := Mask(1<<uint(n)) - 1
		base := float64(1000 + r.Intn(100000))
		sizes := map[Mask]float64{full: base}
		for m := Mask(0); m < full; m++ {
			sizes[m] = float64(1 + r.Intn(int(base)))
		}
		var freq map[Mask]float64
		if r.Intn(2) == 0 {
			freq = map[Mask]float64{}
			for m := Mask(0); m <= full; m++ {
				freq[m] = float64(r.Intn(10))
			}
		}
		k := 1 + r.Intn(int(full))
		sel, err := GreedySelect(sizes, full, k, freq)
		if err != nil {
			return false
		}
		if sel.CostAfter > sel.CostBefore {
			return false
		}
		sum := 0.0
		for i, b := range sel.Benefits {
			if i > 0 && b > sel.Benefits[i-1]+1e-9 {
				return false
			}
			sum += b
		}
		return abs(sel.CostBefore-sel.CostAfter-sum) < 1e-6*(1+sel.CostBefore)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: greedy with k = all views reaches the optimum where every
// view is answered from the cheapest of its ancestors' sizes.
func TestQuickGreedyFullMaterialization(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(3)
		full := Mask(1<<uint(n)) - 1
		base := float64(1000 + r.Intn(10000))
		sizes := map[Mask]float64{full: base}
		for m := Mask(0); m < full; m++ {
			sizes[m] = float64(1 + r.Intn(int(base)))
		}
		sel, err := GreedySelect(sizes, full, int(full)+1, nil)
		if err != nil {
			return false
		}
		// With everything beneficial materialized, each view costs
		// min over its ancestors (including itself, if beneficial).
		want := 0.0
		for m := Mask(0); m <= full; m++ {
			best := base
			for a := Mask(0); a <= full; a++ {
				if m&a == m && sizes[a] < best {
					best = sizes[a]
				}
			}
			want += best
		}
		return abs(sel.CostAfter-want) < 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
