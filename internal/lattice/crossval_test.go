package lattice

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"whatifolap/internal/chunk"
	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
)

// TestQuickLatticeMatchesRuleEngine cross-validates the two aggregation
// substrates: the simultaneous lattice computation and the rule
// engine's hierarchy rollup must agree on every group-by cell of flat
// (single-level) dimensions.
func TestQuickLatticeMatchesRuleEngine(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		extents := []int{2 + r.Intn(5), 2 + r.Intn(5), 2 + r.Intn(4)}
		dims := make([]*dimension.Dimension, 3)
		for i := range dims {
			d := dimension.New(string(rune('A'+i)), false)
			for j := 0; j < extents[i]; j++ {
				d.MustAdd("", string(rune('a'+i))+string(rune('0'+j)))
			}
			dims[i] = d
		}
		g, err := chunk.NewGeometry(extents, []int{2, 2, 2})
		if err != nil {
			return false
		}
		st := chunk.NewStore(g)
		c := cube.NewWithStore(st, dims...)
		for i := 0; i < 80; i++ {
			c.SetLeaf([]int{r.Intn(extents[0]), r.Intn(extents[1]), r.Intn(extents[2])},
				float64(1+r.Intn(9)))
		}
		plan, err := BuildMMST(g, []int{0, 1, 2})
		if err != nil {
			return false
		}
		results, _, err := Compute(st, plan, 0)
		if err != nil {
			return false
		}
		// Compare every cell of every group-by against the rule engine
		// evaluating the same cell with root members in dropped dims.
		for m, res := range results {
			dimsOf := m.DimsOf(3)
			coords := make([]int, len(dimsOf))
			var walk func(k int) bool
			walk = func(k int) bool {
				if k == len(dimsOf) {
					ids := []dimension.MemberID{dims[0].Root(), dims[1].Root(), dims[2].Root()}
					for kk, d := range dimsOf {
						ids[d] = dims[d].Leaf(coords[kk]).ID
					}
					want, err := c.Rules().EvalCell(c, c, ids)
					if err != nil {
						return false
					}
					got := res.Get(coords...)
					if math.IsNaN(want) != math.IsNaN(got) {
						return false
					}
					return math.IsNaN(want) || math.Abs(want-got) < 1e-9
				}
				for coords[k] = 0; coords[k] < res.Extents[k]; coords[k]++ {
					if !walk(k + 1) {
						return false
					}
				}
				return true
			}
			if !walk(0) {
				t.Logf("seed %d: group-by %v disagrees with rule engine", seed, m)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
