package lattice

import (
	"fmt"
	"math/bits"
	"sort"

	"whatifolap/internal/chunk"
)

// This file implements the paper's second future-work item (§8):
// "workload aware view selection (a la [7])" — the greedy view-
// materialization algorithm of Harinarayan, Rajaraman and Ullman
// (SIGMOD'96) over the group-by lattice, weighted by per-view query
// frequencies.
//
// Under the linear cost model, answering a query at view v costs the
// size of the smallest materialized ancestor (superset) of v. The base
// view (all dimensions) is always materialized; GreedySelect picks k
// further views, each maximizing the total weighted benefit, which is
// within (e−1)/e of optimal (HRU Theorem 1).

// EstimateSizes returns the standard cardinality estimate for every
// group-by: min(∏ extents of retained dims, baseCells), where baseCells
// is the number of non-empty cells in the base data.
func EstimateSizes(g *chunk.Geometry, baseCells int) map[Mask]float64 {
	n := g.NumDims()
	full := Mask(1<<uint(n)) - 1
	sizes := make(map[Mask]float64, 1<<uint(n))
	for m := Mask(0); m <= full; m++ {
		size := 1.0
		for d := 0; d < n; d++ {
			if m.Has(d) {
				size *= float64(g.Extents[d])
			}
		}
		if size > float64(baseCells) {
			size = float64(baseCells)
		}
		sizes[m] = size
	}
	return sizes
}

// Selection is the result of greedy view selection.
type Selection struct {
	// Views are the selected views in pick order (excluding the always-
	// materialized base view).
	Views []Mask
	// Benefits[i] is the weighted benefit of picking Views[i], in the
	// state where Views[:i] were already materialized. Benefits are
	// non-increasing (submodularity).
	Benefits []float64
	// CostBefore/CostAfter are the total weighted query costs with only
	// the base view and with the full selection.
	CostBefore, CostAfter float64
}

// GreedySelect runs HRU greedy selection: sizes maps every view of the
// lattice (with top element full) to its estimated size; k is the
// number of views to materialize beyond the base; freq optionally
// weights views by query frequency (nil = uniform). Views with zero
// frequency still reduce cost for their descendants.
func GreedySelect(sizes map[Mask]float64, full Mask, k int, freq map[Mask]float64) (Selection, error) {
	if _, ok := sizes[full]; !ok {
		return Selection{}, fmt.Errorf("lattice: sizes lack the base view %v", full)
	}
	views := make([]Mask, 0, len(sizes))
	for m := range sizes {
		if m&^full != 0 {
			return Selection{}, fmt.Errorf("lattice: view %v outside lattice of %v", m, full)
		}
		views = append(views, m)
	}
	sort.Slice(views, func(i, j int) bool { return views[i] < views[j] })
	weight := func(m Mask) float64 {
		if freq == nil {
			return 1
		}
		return freq[m]
	}

	// cost[m] = size of the cheapest materialized ancestor.
	cost := make(map[Mask]float64, len(views))
	for _, m := range views {
		cost[m] = sizes[full]
	}
	cost[full] = sizes[full]

	totalCost := func() float64 {
		t := 0.0
		for _, m := range views {
			t += weight(m) * cost[m]
		}
		return t
	}

	sel := Selection{CostBefore: totalCost()}
	materialized := map[Mask]bool{full: true}
	for pick := 0; pick < k; pick++ {
		bestBenefit := 0.0
		bestView := full
		found := false
		for _, v := range views {
			if materialized[v] {
				continue
			}
			benefit := 0.0
			for _, w := range views {
				// w can be answered from v iff v ⊇ w.
				if w&v == w && cost[w] > sizes[v] {
					benefit += weight(w) * (cost[w] - sizes[v])
				}
			}
			if !found || benefit > bestBenefit ||
				(benefit == bestBenefit && betterTie(v, bestView, sizes)) {
				bestBenefit, bestView, found = benefit, v, true
			}
		}
		if !found || bestBenefit <= 0 {
			break // no remaining view helps
		}
		materialized[bestView] = true
		sel.Views = append(sel.Views, bestView)
		sel.Benefits = append(sel.Benefits, bestBenefit)
		for _, w := range views {
			if w&bestView == w && sizes[bestView] < cost[w] {
				cost[w] = sizes[bestView]
			}
		}
	}
	sel.CostAfter = totalCost()
	return sel, nil
}

// betterTie prefers the smaller view, then the smaller mask, for
// deterministic output.
func betterTie(a, b Mask, sizes map[Mask]float64) bool {
	if sizes[a] != sizes[b] {
		return sizes[a] < sizes[b]
	}
	if bits.OnesCount32(uint32(a)) != bits.OnesCount32(uint32(b)) {
		return bits.OnesCount32(uint32(a)) < bits.OnesCount32(uint32(b))
	}
	return a < b
}

// AnswerCost returns the weighted total cost of the workload given a
// set of materialized views (the base view is implicit).
func AnswerCost(sizes map[Mask]float64, full Mask, materialized []Mask, freq map[Mask]float64) float64 {
	weight := func(m Mask) float64 {
		if freq == nil {
			return 1
		}
		return freq[m]
	}
	total := 0.0
	for m := range sizes {
		best := sizes[full]
		for _, v := range append(materialized, full) {
			if m&v == m && sizes[v] < best {
				best = sizes[v]
			}
		}
		total += weight(m) * best
	}
	return total
}
