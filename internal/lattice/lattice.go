// Package lattice implements the simultaneous multidimensional
// aggregation algorithm of Zhao, Deshpande and Naughton (SIGMOD'97),
// which the paper's perspective-cube evaluation builds on (§5): the
// group-by lattice over a chunked array, the per-group-by memory rule
// for a given chunk read order, the minimum memory spanning tree (MMST),
// and budget-driven multi-pass computation.
//
// A group-by is identified by a bitmask over dimensions: bit d set means
// dimension d is retained; cleared dimensions are aggregated away with
// sum (the paper's default rollup).
package lattice

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"whatifolap/internal/chunk"
)

// Mask identifies a group-by: bit d set retains dimension d.
type Mask uint32

// DimsOf returns the retained dimensions in ascending order.
func (m Mask) DimsOf(n int) []int {
	var out []int
	for d := 0; d < n; d++ {
		if m&(1<<uint(d)) != 0 {
			out = append(out, d)
		}
	}
	return out
}

// Has reports whether dimension d is retained.
func (m Mask) Has(d int) bool { return m&(1<<uint(d)) != 0 }

// String renders the mask as a dimension list, e.g. "{0,2}".
func (m Mask) String() string {
	s := "{"
	first := true
	for d := 0; d < 32; d++ {
		if m.Has(d) {
			if !first {
				s += ","
			}
			first = false
			s += fmt.Sprint(d)
		}
	}
	return s + "}"
}

// Node is one group-by in the MMST.
type Node struct {
	Mask Mask
	// Parent is the MMST parent (a superset with exactly one more
	// dimension); the full mask (base array) is its own parent.
	Parent Mask
	// MemChunks is the number of result chunks of this group-by that
	// must be resident while it is computed from Parent with the plan's
	// read order (the Zhao et al. memory rule).
	MemChunks int
	// MemBytes is MemChunks times the byte size of one result chunk.
	MemBytes int
}

// Plan is an MMST over the full group-by lattice for one chunk geometry
// and read order.
type Plan struct {
	Geom  *chunk.Geometry
	Order []int // read order; Order[0] varies fastest
	Nodes map[Mask]*Node
	Full  Mask // the base array's mask (all dimensions)
}

// memChunks applies the Zhao et al. rule: scanning parent P's chunks in
// the read order, the child G = P minus dimension m needs one result
// chunk for every combination of G's dimensions that precede m in the
// read order.
//
// In the paper's Fig. 6 example (order ABC, 4 chunks per dimension):
// BC needs 1 chunk, AC needs 4, AB needs 16.
func memChunks(g *chunk.Geometry, order []int, child Mask, missing int) int {
	mem := 1
	for _, d := range order {
		if d == missing {
			break
		}
		if child.Has(d) {
			mem *= g.ChunksPerDim(d)
		}
	}
	return mem
}

// chunkBytes returns the byte size of one result chunk of the group-by.
func chunkBytes(g *chunk.Geometry, m Mask) int {
	n := 1
	for d := 0; d < g.NumDims(); d++ {
		if m.Has(d) {
			n *= g.ChunkDims[d]
		}
	}
	return 8 * n
}

// BuildMMST constructs the minimum memory spanning tree for the given
// geometry and read order: every group-by picks the parent (superset
// with one extra dimension) minimizing its memory requirement, ties
// broken toward the smaller parent array.
func BuildMMST(g *chunk.Geometry, order []int) (*Plan, error) {
	n := g.NumDims()
	if n > 20 {
		return nil, fmt.Errorf("lattice: %d dimensions exceed the 20-dimension lattice limit", n)
	}
	if _, err := g.EnumerateOrder(order); err != nil {
		return nil, err
	}
	full := Mask(1<<uint(n)) - 1
	p := &Plan{Geom: g, Order: append([]int(nil), order...), Nodes: make(map[Mask]*Node), Full: full}
	p.Nodes[full] = &Node{Mask: full, Parent: full}
	arraySize := func(m Mask) int {
		sz := 1
		for d := 0; d < n; d++ {
			if m.Has(d) {
				sz *= g.Extents[d]
			}
		}
		return sz
	}
	// Walk masks from largest popcount down so parents exist first.
	masks := make([]Mask, 0, 1<<uint(n))
	for m := Mask(0); m < full; m++ {
		masks = append(masks, m)
	}
	sort.Slice(masks, func(i, j int) bool {
		return bits.OnesCount32(uint32(masks[i])) > bits.OnesCount32(uint32(masks[j]))
	})
	for _, m := range masks {
		bestMem, bestBytes := -1, 0
		var bestParent Mask
		for d := 0; d < n; d++ {
			if m.Has(d) {
				continue
			}
			parent := m | Mask(1<<uint(d))
			mem := memChunks(g, order, m, d)
			switch {
			case bestMem < 0, mem < bestMem,
				mem == bestMem && arraySize(parent) < arraySize(bestParent):
				bestMem, bestParent = mem, parent
				bestBytes = mem * chunkBytes(g, m)
			}
		}
		p.Nodes[m] = &Node{Mask: m, Parent: bestParent, MemChunks: bestMem, MemBytes: bestBytes}
	}
	return p, nil
}

// TotalMemBytes returns the summed memory requirement of all group-bys
// directly fed by the base array, i.e. what a single pass needs.
func (p *Plan) TotalMemBytes() int {
	total := 0
	for _, nd := range p.Nodes {
		if nd.Mask != p.Full && nd.Parent == p.Full {
			total += nd.MemBytes
		}
	}
	return total
}

// Children returns the MMST children of a node, sorted by mask.
func (p *Plan) Children(m Mask) []Mask {
	var out []Mask
	for _, nd := range p.Nodes {
		if nd.Parent == m && nd.Mask != m {
			out = append(out, nd.Mask)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Result is one computed group-by: a dense row-major array over the
// retained dimensions' full extents, with NaN for empty cells.
type Result struct {
	Mask    Mask
	Dims    []int
	Extents []int
	Data    []float64
}

func newResult(g *chunk.Geometry, m Mask) *Result {
	dims := m.DimsOf(g.NumDims())
	r := &Result{Mask: m, Dims: dims}
	size := 1
	for _, d := range dims {
		r.Extents = append(r.Extents, g.Extents[d])
		size *= g.Extents[d]
	}
	r.Data = make([]float64, size)
	for i := range r.Data {
		r.Data[i] = math.NaN()
	}
	return r
}

// index linearizes a full cell address onto the result's retained dims.
func (r *Result) index(addr []int) int {
	idx := 0
	for k, d := range r.Dims {
		idx = idx*r.Extents[k] + addr[d]
	}
	return idx
}

// Get returns the aggregate for the given coordinates over the retained
// dimensions (in ascending dimension order).
func (r *Result) Get(coords ...int) float64 {
	if len(coords) != len(r.Dims) {
		panic(fmt.Sprintf("lattice: result %v takes %d coords, got %d", r.Mask, len(r.Dims), len(coords)))
	}
	idx := 0
	for k, c := range coords {
		if c < 0 || c >= r.Extents[k] {
			panic(fmt.Sprintf("lattice: coord %d out of extent %d", c, r.Extents[k]))
		}
		idx = idx*r.Extents[k] + c
	}
	return r.Data[idx]
}

func (r *Result) add(addr []int, v float64) {
	if math.IsNaN(v) {
		return
	}
	i := r.index(addr)
	if math.IsNaN(r.Data[i]) {
		r.Data[i] = v
		return
	}
	r.Data[i] += v
}

// Stats reports how a Compute call executed.
type Stats struct {
	// Passes is the number of scans over the base array.
	Passes int
	// BaseChunkReads counts chunk reads of the base array.
	BaseChunkReads int
	// PeakMemBytes is the planned peak memory of concurrently computed
	// first-level group-bys (per the MMST rule), maximized over passes.
	PeakMemBytes int
}

// Compute evaluates every group-by of the lattice with sum aggregation.
// First-level group-bys (those the MMST attaches directly to the base
// array) are computed by scanning the base chunks in the plan's read
// order; if their combined memory requirement exceeds memBudgetBytes,
// they are greedily packed into multiple passes (Zhao et al.'s
// multi-pass organization). Deeper group-bys are then computed from
// their materialized MMST parents. A budget of 0 means unlimited.
func Compute(store *chunk.Store, p *Plan, memBudgetBytes int) (map[Mask]*Result, Stats, error) {
	if store.Geometry() != p.Geom {
		return nil, Stats{}, fmt.Errorf("lattice: store geometry differs from plan geometry")
	}
	g := p.Geom
	results := make(map[Mask]*Result)

	// Pack the base's children into passes under the budget.
	level1 := p.Children(p.Full)
	var passes [][]Mask
	var cur []Mask
	curBytes := 0
	for _, m := range level1 {
		nb := p.Nodes[m].MemBytes
		if memBudgetBytes > 0 && curBytes+nb > memBudgetBytes && len(cur) > 0 {
			passes = append(passes, cur)
			cur, curBytes = nil, 0
		}
		cur = append(cur, m)
		curBytes += nb
	}
	if len(cur) > 0 {
		passes = append(passes, cur)
	}
	stats := Stats{Passes: len(passes)}

	seq, err := g.EnumerateOrder(p.Order)
	if err != nil {
		return nil, Stats{}, err
	}
	addr := make([]int, g.NumDims())
	for _, targets := range passes {
		passBytes := 0
		for _, m := range targets {
			results[m] = newResult(g, m)
			passBytes += p.Nodes[m].MemBytes
		}
		if passBytes > stats.PeakMemBytes {
			stats.PeakMemBytes = passBytes
		}
		for _, cc := range seq {
			ch := store.ReadChunk(g.CanonicalID(cc))
			stats.BaseChunkReads++
			if ch == nil {
				continue
			}
			ch.ForEach(func(off int, v float64) bool {
				g.Join(cc, off, addr)
				for _, m := range targets {
					results[m].add(addr, v)
				}
				return true
			})
		}
	}

	// Deeper levels: compute each group-by from its materialized parent.
	// Process by descending popcount so parents are always ready.
	rest := make([]Mask, 0, len(p.Nodes))
	for m := range p.Nodes {
		if m == p.Full {
			continue
		}
		if _, done := results[m]; !done {
			rest = append(rest, m)
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		pi, pj := bits.OnesCount32(uint32(rest[i])), bits.OnesCount32(uint32(rest[j]))
		if pi != pj {
			return pi > pj
		}
		return rest[i] < rest[j]
	})
	for _, m := range rest {
		parent := results[p.Nodes[m].Parent]
		if parent == nil {
			return nil, Stats{}, fmt.Errorf("lattice: parent %v of %v not materialized", p.Nodes[m].Parent, m)
		}
		r := newResult(g, m)
		// Scan the parent array; project onto the child's dims.
		pAddr := make([]int, g.NumDims())
		for i, v := range parent.Data {
			if math.IsNaN(v) {
				continue
			}
			// Decode parent's linear index into a full address with
			// zeros in dropped dims.
			rem := i
			for k := len(parent.Dims) - 1; k >= 0; k-- {
				pAddr[parent.Dims[k]] = rem % parent.Extents[k]
				rem /= parent.Extents[k]
			}
			r.add(pAddr, v)
		}
		results[m] = r
	}
	return results, stats, nil
}
