package lattice

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"whatifolap/internal/chunk"
)

// fig6Geometry is the paper's Fig. 6 array: 3 dimensions, 4 chunks each.
func fig6Geometry() *chunk.Geometry {
	return chunk.MustGeometry([]int{16, 16, 16}, []int{4, 4, 4})
}

// TestZhaoMemoryRule checks the memory requirements the paper quotes for
// Fig. 6 with read order ABC: "for any BC group-by, we just need enough
// memory to hold one chunk ... we need to allocate 4 chunks for any AC
// group-by ... 16 chunks for any AB group-by."
func TestZhaoMemoryRule(t *testing.T) {
	g := fig6Geometry()
	p, err := BuildMMST(g, []int{0, 1, 2}) // A fastest
	if err != nil {
		t.Fatal(err)
	}
	const (
		bc = Mask(0b110) // B and C retained, A aggregated
		ac = Mask(0b101)
		ab = Mask(0b011)
	)
	if got := p.Nodes[bc].MemChunks; got != 1 {
		t.Errorf("mem(BC) = %d chunks, want 1", got)
	}
	if got := p.Nodes[ac].MemChunks; got != 4 {
		t.Errorf("mem(AC) = %d chunks, want 4", got)
	}
	if got := p.Nodes[ab].MemChunks; got != 16 {
		t.Errorf("mem(AB) = %d chunks, want 16", got)
	}
	// All three first-level group-bys hang off the base in the MMST.
	for _, m := range []Mask{bc, ac, ab} {
		if p.Nodes[m].Parent != p.Full {
			t.Errorf("parent of %v = %v, want full", m, p.Nodes[m].Parent)
		}
	}
}

// TestDimensionOrderReducesMemory reflects the basis of the paper's
// Lemma 5.1: an order whose first (fastest) dimension is D makes
// group-bys retaining D cheap. Reading in increasing cardinality order
// reduces total memory (Zhao et al.'s rule of thumb).
func TestDimensionOrderReducesMemory(t *testing.T) {
	g := chunk.MustGeometry([]int{4, 16, 64}, []int{2, 4, 8})
	small, err := BuildMMST(g, []int{0, 1, 2}) // smallest cardinality first
	if err != nil {
		t.Fatal(err)
	}
	large, err := BuildMMST(g, []int{2, 1, 0}) // largest first
	if err != nil {
		t.Fatal(err)
	}
	if small.TotalMemBytes() >= large.TotalMemBytes() {
		t.Fatalf("increasing-cardinality order should need less memory: %d vs %d",
			small.TotalMemBytes(), large.TotalMemBytes())
	}
}

func TestBuildMMSTErrors(t *testing.T) {
	g := fig6Geometry()
	if _, err := BuildMMST(g, []int{0, 1}); err == nil {
		t.Fatal("bad order should fail")
	}
	if _, err := BuildMMST(g, []int{0, 0, 1}); err == nil {
		t.Fatal("non-permutation should fail")
	}
}

func TestMaskHelpers(t *testing.T) {
	m := Mask(0b101)
	if !m.Has(0) || m.Has(1) || !m.Has(2) {
		t.Fatal("Has mismatch")
	}
	dims := m.DimsOf(3)
	if len(dims) != 2 || dims[0] != 0 || dims[1] != 2 {
		t.Fatalf("DimsOf = %v", dims)
	}
	if m.String() != "{0,2}" {
		t.Fatalf("String = %q", m.String())
	}
}

// fillRandom populates a store with deterministic pseudo-random data and
// returns a dense reference array.
func fillRandom(t testing.TB, g *chunk.Geometry, seed int64, density float64) (*chunk.Store, map[[3]int]float64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	st := chunk.NewStore(g)
	ref := map[[3]int]float64{}
	for a := 0; a < g.Extents[0]; a++ {
		for b := 0; b < g.Extents[1]; b++ {
			for c := 0; c < g.Extents[2]; c++ {
				if r.Float64() < density {
					v := float64(1 + r.Intn(9))
					st.Set([]int{a, b, c}, v)
					ref[[3]int{a, b, c}] = v
				}
			}
		}
	}
	return st, ref
}

func TestComputeMatchesNaiveAggregation(t *testing.T) {
	g := chunk.MustGeometry([]int{8, 6, 10}, []int{3, 2, 4})
	st, ref := fillRandom(t, g, 42, 0.3)
	p, err := BuildMMST(g, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	results, stats, err := Compute(st, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Passes != 1 {
		t.Fatalf("unlimited budget should take 1 pass, got %d", stats.Passes)
	}
	// Check every group-by against naive re-aggregation.
	for m, res := range results {
		naive := map[int]float64{}
		for a, v := range ref {
			idx := 0
			for k, d := range res.Dims {
				idx = idx*res.Extents[k] + a[d]
			}
			naive[idx] += v
		}
		for idx, want := range naive {
			if got := res.Data[idx]; math.Abs(got-want) > 1e-9 {
				t.Fatalf("group-by %v cell %d = %v, want %v", m, idx, got, want)
			}
		}
		// Empty cells stay NaN.
		for idx, v := range res.Data {
			if _, ok := naive[idx]; !ok && !math.IsNaN(v) {
				t.Fatalf("group-by %v cell %d = %v, want NaN", m, idx, v)
			}
		}
	}
	// The grand total (empty mask) is a single number.
	grand := results[0]
	if len(grand.Data) != 1 {
		t.Fatalf("grand total has %d cells", len(grand.Data))
	}
	sum := 0.0
	for _, v := range ref {
		sum += v
	}
	if math.Abs(grand.Data[0]-sum) > 1e-9 {
		t.Fatalf("grand total = %v, want %v", grand.Data[0], sum)
	}
}

func TestComputeMultiPassMatchesSinglePass(t *testing.T) {
	g := chunk.MustGeometry([]int{8, 6, 10}, []int{3, 2, 4})
	st, _ := fillRandom(t, g, 7, 0.4)
	p, err := BuildMMST(g, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	one, s1, err := Compute(st, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A tiny budget forces one pass per first-level group-by.
	multi, s2, err := Compute(st, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Passes <= s1.Passes {
		t.Fatalf("tiny budget should force multiple passes: %d vs %d", s2.Passes, s1.Passes)
	}
	if s2.PeakMemBytes >= s1.PeakMemBytes {
		t.Fatalf("multi-pass peak memory %d should be below single-pass %d", s2.PeakMemBytes, s1.PeakMemBytes)
	}
	for m, a := range one {
		b := multi[m]
		for i := range a.Data {
			an, bn := math.IsNaN(a.Data[i]), math.IsNaN(b.Data[i])
			if an != bn || (!an && math.Abs(a.Data[i]-b.Data[i]) > 1e-9) {
				t.Fatalf("group-by %v differs between single- and multi-pass at %d", m, i)
			}
		}
	}
}

func TestResultGet(t *testing.T) {
	g := chunk.MustGeometry([]int{4, 4, 4}, []int{2, 2, 2})
	st := chunk.NewStore(g)
	st.Set([]int{1, 2, 3}, 5)
	st.Set([]int{1, 0, 3}, 7)
	p, _ := BuildMMST(g, []int{0, 1, 2})
	results, _, err := Compute(st, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Group-by {0,2}: sum over dim 1.
	r := results[Mask(0b101)]
	if got := r.Get(1, 3); got != 12 {
		t.Fatalf("Get(1,3) = %v, want 12", got)
	}
	if !math.IsNaN(r.Get(0, 0)) {
		t.Fatal("empty aggregate should be NaN")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong coord arity should panic")
			}
		}()
		r.Get(1)
	}()
}

// Property: for random small cubes, every unary group-by (single
// retained dim) equals the naive per-slice sums, under random geometry
// and read order.
func TestQuickUnaryGroupBys(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, err := chunk.NewGeometry(
			[]int{2 + r.Intn(6), 2 + r.Intn(6), 2 + r.Intn(6)},
			[]int{1 + r.Intn(3), 1 + r.Intn(3), 1 + r.Intn(3)})
		if err != nil {
			return false
		}
		perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
		order := perms[r.Intn(len(perms))]
		st := chunk.NewStore(g)
		ref := map[[3]int]float64{}
		for i := 0; i < 100; i++ {
			a := [3]int{r.Intn(g.Extents[0]), r.Intn(g.Extents[1]), r.Intn(g.Extents[2])}
			v := float64(1 + r.Intn(5))
			st.Set(a[:], v)
			ref[a] = v
		}
		p, err := BuildMMST(g, order)
		if err != nil {
			return false
		}
		results, _, err := Compute(st, p, 0)
		if err != nil {
			return false
		}
		for d := 0; d < 3; d++ {
			res := results[Mask(1<<uint(d))]
			sums := make([]float64, g.Extents[d])
			for a, v := range ref {
				sums[a[d]] += v
			}
			for i, want := range sums {
				got := res.Data[i]
				if want == 0 {
					if !math.IsNaN(got) {
						return false
					}
				} else if math.Abs(got-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkComputeFig6(b *testing.B) {
	g := fig6Geometry()
	st, _ := fillRandom(b, g, 1, 0.5)
	p, err := BuildMMST(g, []int{0, 1, 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Compute(st, p, 0); err != nil {
			b.Fatal(err)
		}
	}
}
