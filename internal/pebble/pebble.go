// Package pebble implements the chunk-merge scheduling of the paper
// (§5.2): the merge dependency graph between chunks that hold instances
// of the same varying member, and the pebbling heuristic that orders
// chunk reads so the fewest chunks are simultaneously resident.
//
// Pebbling semantics (paper §5.2): an unbounded supply of pebbles; at
// most one pebble per node; a pebble may be removed from a node iff all
// its neighbors have been pebbled (at some point). The goal is to pebble
// every node while minimizing the peak number of pebbles in play — each
// pebble is a chunk held in memory, removal is "processing the chunk
// away".
package pebble

import (
	"fmt"
	"sort"
)

// Graph is an undirected merge-dependency graph over chunk identifiers.
type Graph struct {
	adj map[int]map[int]bool
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{adj: make(map[int]map[int]bool)}
}

// AddNode ensures a node exists (isolated nodes are legal: chunks with a
// single instance still need reading).
func (g *Graph) AddNode(x int) {
	if g.adj[x] == nil {
		g.adj[x] = make(map[int]bool)
	}
}

// AddEdge records that chunks x and y must be co-resident to merge.
// Self-loops are ignored.
func (g *Graph) AddEdge(x, y int) {
	if x == y {
		return
	}
	g.AddNode(x)
	g.AddNode(y)
	g.adj[x][y] = true
	g.adj[y][x] = true
}

// HasEdge reports whether x and y are adjacent.
func (g *Graph) HasEdge(x, y int) bool { return g.adj[x][y] }

// Nodes returns all node IDs in ascending order.
func (g *Graph) Nodes() []int {
	out := make([]int, 0, len(g.adj))
	for x := range g.adj {
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.adj) }

// Degree returns the number of neighbors of x.
func (g *Graph) Degree(x int) int { return len(g.adj[x]) }

// Neighbors returns x's neighbors in ascending order.
func (g *Graph) Neighbors(x int) []int {
	out := make([]int, 0, len(g.adj[x]))
	for y := range g.adj[x] {
		out = append(out, y)
	}
	sort.Ints(out)
	return out
}

// Components returns the connected components, each sorted, ordered by
// smallest member.
func (g *Graph) Components() [][]int {
	seen := make(map[int]bool)
	var comps [][]int
	for _, start := range g.Nodes() {
		if seen[start] {
			continue
		}
		var comp []int
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, x)
			for _, y := range g.Neighbors(x) {
				if !seen[y] {
					seen[y] = true
					stack = append(stack, y)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// cost is the paper's node cost: cost(x) = min over neighbors y of
// deg(y) − 1, i.e. the fewest other nodes that must be pebbled before a
// pebble on one of x's neighbors can be removed. Isolated nodes cost 0.
func (g *Graph) cost(x int) int {
	best := -1
	for y := range g.adj[x] {
		c := g.Degree(y) - 1
		if best < 0 || c < best {
			best = c
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// Schedule is the outcome of a pebbling run.
type Schedule struct {
	// Order is the sequence in which nodes were pebbled — the chunk
	// read order the engine should use.
	Order []int
	// Peak is the maximum number of pebbles simultaneously in play —
	// the number of chunk-sized memory slots the merge needs.
	Peak int
}

// HeuristicPebble runs the paper's heuristic on each connected component
// and returns the combined schedule. Peak is the maximum over
// components (slots are reused between components).
func HeuristicPebble(g *Graph) Schedule {
	var sched Schedule
	for _, comp := range g.Components() {
		s := pebbleComponent(g, comp)
		sched.Order = append(sched.Order, s.Order...)
		if s.Peak > sched.Peak {
			sched.Peak = s.Peak
		}
	}
	return sched
}

func pebbleComponent(g *Graph, comp []int) Schedule {
	inComp := make(map[int]bool, len(comp))
	for _, x := range comp {
		inComp[x] = true
	}
	pebbled := make(map[int]bool) // P: ever pebbled
	holding := make(map[int]bool) // Q: currently holding a pebble
	var order []int
	peak := 0

	canRemove := func(x int) bool {
		for y := range g.adj[x] {
			if !pebbled[y] {
				return false
			}
		}
		return true
	}
	removeAll := func() {
		for {
			removed := false
			for x := range holding {
				if canRemove(x) {
					delete(holding, x)
					removed = true
				}
			}
			if !removed {
				return
			}
		}
	}
	place := func(x int) {
		pebbled[x] = true
		holding[x] = true
		order = append(order, x)
		if len(holding) > peak {
			peak = len(holding)
		}
		removeAll()
	}

	// Start with the minimum-cost node (ties: smallest ID, matching the
	// paper's "breaking ties arbitrarily" deterministically).
	start, bestCost := -1, 0
	for _, x := range comp {
		c := g.cost(x)
		if start < 0 || c < bestCost || (c == bestCost && x < start) {
			start, bestCost = x, c
		}
	}
	place(start)

	for len(order) < len(comp) {
		// Candidates: unpebbled neighbors of P within the component.
		type cand struct {
			node    int
			enables bool // placing it lets some pebble be removed
			cost    int
		}
		var cands []cand
		for x := range pebbled {
			for y := range g.adj[x] {
				if pebbled[y] || !inComp[y] {
					continue
				}
				// Would placing y allow a removal from Q ∪ {y}?
				enables := false
				pebbled[y] = true
				for q := range holding {
					if canRemove(q) {
						enables = true
						break
					}
				}
				if !enables && canRemove(y) {
					enables = true
				}
				delete(pebbled, y)
				cands = append(cands, cand{node: y, enables: enables, cost: g.cost(y)})
			}
		}
		if len(cands) == 0 {
			// The component's remaining nodes are unreachable from P,
			// which cannot happen for a connected component; guard
			// against malformed input by picking the cheapest leftover.
			for _, x := range comp {
				if !pebbled[x] {
					place(x)
					break
				}
			}
			continue
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].enables != cands[j].enables {
				return cands[i].enables
			}
			if cands[i].cost != cands[j].cost {
				return cands[i].cost < cands[j].cost
			}
			return cands[i].node < cands[j].node
		})
		// Deduplicate (a node can be a neighbor of several P nodes).
		seen := make(map[int]bool)
		for _, c := range cands {
			if !seen[c.node] {
				place(c.node)
				break
			}
		}
	}
	return Schedule{Order: order, Peak: peak}
}

// OptimalPeak computes the minimum possible peak pebble count by
// exhaustive state search. It is exponential and intended for verifying
// the heuristic on small graphs (≤ maxOptimalNodes nodes).
const maxOptimalNodes = 14

// OptimalPeak returns the optimal peak for the graph, or an error when
// the graph is too large for exact search.
func OptimalPeak(g *Graph) (int, error) {
	nodes := g.Nodes()
	if len(nodes) > maxOptimalNodes {
		return 0, fmt.Errorf("pebble: %d nodes exceed exact-search limit %d", len(nodes), maxOptimalNodes)
	}
	idx := make(map[int]int, len(nodes))
	for i, x := range nodes {
		idx[x] = i
	}
	nbr := make([]uint32, len(nodes))
	for i, x := range nodes {
		for _, y := range g.Neighbors(x) {
			nbr[i] |= 1 << uint(idx[y])
		}
	}
	full := uint32(1)<<uint(len(nodes)) - 1

	// Search over states (pebbledSet, holdingSet) for the smallest k
	// such that the graph can be pebbled with peak ≤ k.
	type state struct{ p, q uint32 }
	feasible := func(k int) bool {
		start := state{0, 0}
		seen := map[state]bool{start: true}
		stack := []state{start}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			// Remove pebbles greedily: removal is never harmful since
			// it only frees capacity (P never shrinks).
			q := s.q
			for i := range nodes {
				if q&(1<<uint(i)) != 0 && nbr[i]&^s.p == 0 {
					q &^= 1 << uint(i)
				}
			}
			s.q = q
			if s.p == full {
				return true
			}
			if popcount(s.q) >= k {
				continue // no capacity to place; dead end
			}
			for i := range nodes {
				bit := uint32(1) << uint(i)
				if s.p&bit != 0 {
					continue
				}
				ns := state{s.p | bit, s.q | bit}
				if !seen[ns] {
					seen[ns] = true
					stack = append(stack, ns)
				}
			}
		}
		return false
	}
	for k := 1; k <= len(nodes); k++ {
		if feasible(k) {
			return k, nil
		}
	}
	return len(nodes), nil
}

func popcount(x uint32) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// MaxDegreeBound returns max degree + 1, the paper's upper bound on the
// pebbles needed.
func MaxDegreeBound(g *Graph) int {
	m := 0
	for x := range g.adj {
		if d := g.Degree(x); d > m {
			m = d
		}
	}
	return m + 1
}

// VerifySchedule checks that a schedule is a legal pebbling of the graph
// (every node pebbled exactly once) and returns the actual peak it
// achieves. Used by tests and by the engine as a sanity check.
func VerifySchedule(g *Graph, order []int) (int, error) {
	pebbled := make(map[int]bool)
	holding := make(map[int]bool)
	peak := 0
	for _, x := range order {
		if _, ok := g.adj[x]; !ok {
			return 0, fmt.Errorf("pebble: schedule names unknown node %d", x)
		}
		if pebbled[x] {
			return 0, fmt.Errorf("pebble: node %d pebbled twice", x)
		}
		pebbled[x] = true
		holding[x] = true
		if len(holding) > peak {
			peak = len(holding)
		}
		for {
			removed := false
			for q := range holding {
				ok := true
				for y := range g.adj[q] {
					if !pebbled[y] {
						ok = false
						break
					}
				}
				if ok {
					delete(holding, q)
					removed = true
				}
			}
			if !removed {
				break
			}
		}
	}
	if len(pebbled) != g.NumNodes() {
		return 0, fmt.Errorf("pebble: schedule covers %d of %d nodes", len(pebbled), g.NumNodes())
	}
	return peak, nil
}
