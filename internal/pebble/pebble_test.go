package pebble

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// fig9 builds the merge dependency graph of the paper's Fig. 9:
// product p occupies chunks 1, 5, 9, 10 (merged into 1); q links 3–5;
// r links 7–10; s links 6–9.
func fig9() *Graph {
	g := NewGraph()
	g.AddEdge(1, 5)
	g.AddEdge(1, 9)
	g.AddEdge(1, 10)
	g.AddEdge(3, 5)
	g.AddEdge(7, 10)
	g.AddEdge(6, 9)
	return g
}

func TestGraphBasics(t *testing.T) {
	g := fig9()
	if g.NumNodes() != 7 {
		t.Fatalf("NumNodes = %d, want 7", g.NumNodes())
	}
	if g.Degree(1) != 3 || g.Degree(3) != 1 {
		t.Fatalf("degrees wrong: deg(1)=%d deg(3)=%d", g.Degree(1), g.Degree(3))
	}
	if !g.HasEdge(1, 5) || !g.HasEdge(5, 1) || g.HasEdge(3, 9) {
		t.Fatal("adjacency wrong")
	}
	if got := g.Neighbors(1); len(got) != 3 || got[0] != 5 || got[1] != 9 || got[2] != 10 {
		t.Fatalf("Neighbors(1) = %v", got)
	}
	// Self-loops ignored.
	g.AddEdge(1, 1)
	if g.HasEdge(1, 1) {
		t.Fatal("self-loop should be ignored")
	}
}

func TestCostMatchesPaper(t *testing.T) {
	// Paper §5.2: cost(1)=cost(3)=cost(6)=cost(7)=1,
	// cost(5)=cost(9)=cost(10)=0.
	g := fig9()
	want := map[int]int{1: 1, 3: 1, 6: 1, 7: 1, 5: 0, 9: 0, 10: 0}
	for x, w := range want {
		if got := g.cost(x); got != w {
			t.Errorf("cost(%d) = %d, want %d", x, got, w)
		}
	}
}

// TestFig9Pebbling checks the paper's worked example: the graph of
// Fig. 9 can be pebbled with three pebbles but no fewer, and the
// heuristic achieves that optimum starting from node 5.
func TestFig9Pebbling(t *testing.T) {
	g := fig9()
	opt, err := OptimalPeak(g)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 3 {
		t.Fatalf("optimal peak = %d, want 3 (paper: 'three pebbles but no fewer')", opt)
	}
	s := HeuristicPebble(g)
	if s.Peak != 3 {
		t.Fatalf("heuristic peak = %d, want 3", s.Peak)
	}
	if s.Order[0] != 5 {
		t.Fatalf("heuristic should start at min-cost node 5, started at %d", s.Order[0])
	}
	// The schedule must be legal and achieve its claimed peak.
	peak, err := VerifySchedule(g, s.Order)
	if err != nil {
		t.Fatal(err)
	}
	if peak != s.Peak {
		t.Fatalf("VerifySchedule peak %d != schedule peak %d", peak, s.Peak)
	}
}

// TestFig9WithoutNode7 checks the paper's remark: "Suppose node 7 was
// not part of the graph. Then we could pebble it with just two pebbles."
func TestFig9WithoutNode7(t *testing.T) {
	g := NewGraph()
	g.AddEdge(1, 5)
	g.AddEdge(1, 9)
	g.AddEdge(1, 10)
	g.AddEdge(3, 5)
	g.AddEdge(6, 9)
	opt, err := OptimalPeak(g)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 2 {
		t.Fatalf("optimal peak without node 7 = %d, want 2", opt)
	}
}

// TestStarGraph checks the paper's remark that a star with center x and
// n leaves can be pebbled with two pebbles, well below the max-degree
// bound.
func TestStarGraph(t *testing.T) {
	g := NewGraph()
	for leaf := 1; leaf <= 8; leaf++ {
		g.AddEdge(0, leaf)
	}
	opt, err := OptimalPeak(g)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 2 {
		t.Fatalf("star optimal peak = %d, want 2", opt)
	}
	s := HeuristicPebble(g)
	if s.Peak != 2 {
		t.Fatalf("heuristic peak on star = %d, want 2", s.Peak)
	}
	if MaxDegreeBound(g) != 9 {
		t.Fatalf("MaxDegreeBound = %d, want 9", MaxDegreeBound(g))
	}
}

func TestCliqueNeedsSize(t *testing.T) {
	// Paper: a clique of size k needs at least k pebbles.
	g := NewGraph()
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j)
		}
	}
	opt, err := OptimalPeak(g)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 4 {
		t.Fatalf("K4 optimal peak = %d, want 4", opt)
	}
	if s := HeuristicPebble(g); s.Peak != 4 {
		t.Fatalf("heuristic on K4 = %d, want 4", s.Peak)
	}
}

func TestIsolatedNodesAndComponents(t *testing.T) {
	g := NewGraph()
	g.AddNode(100)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("Components = %v, want 3", comps)
	}
	s := HeuristicPebble(g)
	if len(s.Order) != 5 {
		t.Fatalf("schedule covers %d nodes, want 5", len(s.Order))
	}
	if s.Peak != 2 {
		t.Fatalf("peak = %d, want 2 (pairs need 2, isolated needs 1)", s.Peak)
	}
	if _, err := VerifySchedule(g, s.Order); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyScheduleErrors(t *testing.T) {
	g := NewGraph()
	g.AddEdge(1, 2)
	if _, err := VerifySchedule(g, []int{1, 1, 2}); err == nil {
		t.Fatal("double pebble should fail")
	}
	if _, err := VerifySchedule(g, []int{1}); err == nil {
		t.Fatal("incomplete schedule should fail")
	}
	if _, err := VerifySchedule(g, []int{1, 99}); err == nil {
		t.Fatal("unknown node should fail")
	}
}

func TestOptimalPeakTooLarge(t *testing.T) {
	g := NewGraph()
	for i := 0; i < maxOptimalNodes+1; i++ {
		g.AddNode(i)
	}
	if _, err := OptimalPeak(g); err == nil {
		t.Fatal("oversized exact search should fail")
	}
}

// randomGraph builds a random graph with n ≤ 10 nodes for exact
// verification.
func randomGraph(r *rand.Rand) *Graph {
	g := NewGraph()
	n := 2 + r.Intn(8)
	for i := 0; i < n; i++ {
		g.AddNode(i)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Intn(3) == 0 {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// Property: on random small graphs the heuristic produces a legal
// schedule whose peak lies between the optimum and the max-degree+1
// bound... except that the paper's bound applies per component; we check
// optimal ≤ heuristic ≤ nodes.
func TestQuickHeuristicBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r)
		s := HeuristicPebble(g)
		peak, err := VerifySchedule(g, s.Order)
		if err != nil || peak != s.Peak {
			return false
		}
		opt, err := OptimalPeak(g)
		if err != nil {
			return false
		}
		return opt <= s.Peak && s.Peak <= g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the heuristic is near-optimal on small graphs (within a
// factor of 2 or +2 pebbles) — a regression guard on schedule quality.
func TestQuickHeuristicQuality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r)
		s := HeuristicPebble(g)
		opt, err := OptimalPeak(g)
		if err != nil {
			return false
		}
		return s.Peak <= 2*opt+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHeuristicPebble(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	g := NewGraph()
	// A chain of small merge clusters, like many employees with few
	// moves each.
	for i := 0; i < 500; i++ {
		base := i * 4
		g.AddEdge(base, base+1)
		g.AddEdge(base, base+2)
		if r.Intn(2) == 0 {
			g.AddEdge(base+1, base+3)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HeuristicPebble(g)
	}
}
