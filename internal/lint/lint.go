// Package lint is whatiflint: a go/analysis suite that machine-checks
// the engine's hardest-won invariants — the ones previously enforced
// only by convention, a grep in verify.sh, and reviewer memory.
//
// The analyzers and the invariant each encodes:
//
//	hotpathfmt    declared hot-path files (per-chunk scan, span
//	              recording, overlay writes) must not import fmt,
//	              reflect or log — directly, or transitively through
//	              module-local packages that have not been reviewed as
//	              formatting only off the hot path (//lint:coldfmt) —
//	              and must not construct errors or format per call.
//	semexhaustive every switch over the paper's query-semantics and
//	              eval-mode enums (perspective.Semantics, the five
//	              semantics of §3; perspective.Mode, visual/non-visual)
//	              must cover all constants or carry //lint:semdefault
//	              with a reason, so adding a sixth semantics fails the
//	              build at every dispatch site.
//	ctxflow       library code in internal/core, internal/server and
//	              internal/mdx must not mint contexts with
//	              context.Background()/TODO() (cancellation must flow
//	              from the caller), and functions that loop over chunk
//	              reads must accept a context to observe between reads.
//	lockguard     no blocking operation — chunk fault-in I/O, channel
//	              sends/receives, simdisk reads, WaitGroup waits —
//	              while holding a chunk.Store / buffer-pool mutex
//	              (the "I/O outside the lock" rule from the pebbling
//	              buffer-pool work).
//	monotonic     span-recording paths timestamp with the monotonic
//	              clock (time.Since against an epoch); wall-clock
//	              extraction (Unix*, Format, Round, Truncate) is
//	              forbidden in files marked //lint:monotonic.
//
// Escape hatches are explicit //lint: directives that must carry a
// reason; see directives.go. cmd/whatiflint is the driver: it speaks
// the go vet -vettool protocol (unitchecker), so the suite composes
// with the standard vet pass, and has a standalone mode with -fix.
package lint

import "golang.org/x/tools/go/analysis"

// ModulePath is the import-path prefix of this repository's module.
// The analyzers use it to distinguish module-local imports (walked for
// transitive formatting reach) from standard-library ones.
const ModulePath = "whatifolap"

// Analyzers returns the whatiflint suite in a fixed order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		HotpathFmt,
		SemExhaustive,
		CtxFlow,
		LockGuard,
		Monotonic,
	}
}
