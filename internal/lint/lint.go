// Package lint is whatiflint: a go/analysis suite that machine-checks
// the engine's hardest-won invariants — the ones previously enforced
// only by convention, a grep in verify.sh, and reviewer memory.
//
// The analyzers and the invariant each encodes:
//
//	hotpathfmt    declared hot-path files (per-chunk scan, span
//	              recording, overlay writes) must not import fmt,
//	              reflect or log — directly, or transitively through
//	              module-local packages that have not been reviewed as
//	              formatting only off the hot path (//lint:coldfmt) —
//	              and must not construct errors or format per call.
//	semexhaustive every switch over the paper's query-semantics and
//	              eval-mode enums (perspective.Semantics, the five
//	              semantics of §3; perspective.Mode, visual/non-visual)
//	              must cover all constants or carry //lint:semdefault
//	              with a reason, so adding a sixth semantics fails the
//	              build at every dispatch site.
//	ctxflow       library code in internal/core, internal/server and
//	              internal/mdx must not mint contexts with
//	              context.Background()/TODO() (cancellation must flow
//	              from the caller), and functions that loop over chunk
//	              reads must accept a context to observe between reads.
//	lockguard     no blocking operation — chunk fault-in I/O, channel
//	              sends/receives, simdisk reads, WaitGroup waits —
//	              while holding a chunk.Store / buffer-pool mutex
//	              (the "I/O outside the lock" rule from the pebbling
//	              buffer-pool work).
//	monotonic     span-recording paths timestamp with the monotonic
//	              clock (time.Since against an epoch); wall-clock
//	              extraction (Unix*, Format, Round, Truncate) is
//	              forbidden in files marked //lint:monotonic.
//	allocguard    declared 0-alloc hot-path files must not contain
//	              heap-allocating SSA ops: interface boxing, capturing
//	              closures in loops, append without preallocation
//	              evidence, map makes in loops, string conversions,
//	              variadic slice builds — and must not call, from a
//	              loop, a function whose entry block provably
//	              allocates (the Allocates fact, cross-package).
//	releasepair   paired operations balance on every control-flow
//	              path including early returns and panics:
//	              Lock/Unlock, buffer-pool Pin/Unpin, segment
//	              CloneTier/Close, trace span Start/End, scenario
//	              layer NewLayer/Seal. Must-held leaks at explicit
//	              returns carry a suggested fix (make lint-fix).
//	atomicfield   a struct field accessed through sync/atomic anywhere
//	              must be accessed atomically everywhere; mixed
//	              plain/atomic access is reported at the plain site,
//	              with per-field object facts and an AtomicFieldSet
//	              package fact so cross-package accessors are caught.
//
// allocguard and releasepair share ssax, the suite's SSA-lite
// foundation (internal/lint/ssax): blocks, instructions, alloc sites
// and exit classification lowered from the ctrlflow CFGs.
//
// Escape hatches are explicit //lint: directives that must carry a
// reason; see directives.go. cmd/whatiflint is the driver: it speaks
// the go vet -vettool protocol (unitchecker), so the suite composes
// with the standard vet pass, and has a standalone mode with -fix.
package lint

import "golang.org/x/tools/go/analysis"

// ModulePath is the import-path prefix of this repository's module.
// The analyzers use it to distinguish module-local imports (walked for
// transitive formatting reach) from standard-library ones.
const ModulePath = "whatifolap"

// Analyzers returns the whatiflint suite in a fixed order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		HotpathFmt,
		SemExhaustive,
		CtxFlow,
		LockGuard,
		Monotonic,
		AllocGuard,
		ReleasePair,
		AtomicField,
	}
}
