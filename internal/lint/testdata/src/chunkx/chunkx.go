// Package chunkx mirrors the chunk store's read surface for ctxflow
// tests.
package chunkx

type Store struct{ cells []int }

func (s *Store) ReadChunk(id int) int {
	if id < len(s.cells) {
		return s.cells[id]
	}
	return 0
}
