package semx

import "persp"

func dispatch(s persp.Semantics, m persp.Mode, x int) int {
	// Exhaustive: all five semantics named.
	switch s {
	case persp.Static, persp.Forward, persp.ExtendedForward, persp.Backward, persp.ExtendedBackward:
		x++
	}

	switch s { // want `switch over persp.Semantics is not exhaustive: missing ExtendedBackward`
	case persp.Static, persp.Forward, persp.ExtendedForward, persp.Backward:
		x++
	}

	// A default clause is a guard, not an exemption.
	switch s { // want `switch over persp.Semantics is not exhaustive: missing Backward, ExtendedBackward, ExtendedForward, Forward`
	case persp.Static:
		x++
	default:
		x--
	}

	//lint:semdefault only the static perspective reaches this planner stage
	switch s {
	case persp.Static:
		x++
	}

	//lint:semdefault
	switch s { // want `//lint:semdefault on a switch over persp.Semantics needs a reason`
	case persp.Static:
		x++
	}

	switch m { // want `switch over persp.Mode is not exhaustive: missing Visual`
	case persp.NonVisual:
		x++
	}

	// Exhaustive mode switch.
	switch m {
	case persp.NonVisual, persp.Visual:
		x++
	}

	// A switch with a non-constant arm is left to the human.
	other := persp.Backward
	switch s {
	case other:
		x++
	}

	// Switches over unconfigured types are ignored.
	switch x {
	case 1:
		x++
	}
	return x
}
