// Package atomx is atomicfield's testdata: Counter.N is updated
// through sync/atomic, so every plain access to it — here or in
// importing packages — is a mixed-access data race.
package atomx

import "sync/atomic"

type Counter struct {
	N     int64
	plain int64
}

func (c *Counter) Inc() {
	atomic.AddInt64(&c.N, 1)
}

func (c *Counter) Load() int64 {
	return atomic.LoadInt64(&c.N)
}

func (c *Counter) Mixed() int64 {
	return c.N // want `mixed access is a data race`
}

// The value operand is a plain read even when the store is atomic.
func (c *Counter) StoreRace(v int64) {
	atomic.StoreInt64(&c.N, c.N+v) // want `mixed access is a data race`
}

func (c *Counter) PlainOnly() int64 {
	c.plain++
	return c.plain
}

func (c *Counter) InitOK() {
	//lint:atomicok pre-publication initialization, no concurrent readers yet
	c.N = 0
}

func (c *Counter) BareDirective() {
	//lint:atomicok
	c.N = 1 // want `needs a reason`
}
