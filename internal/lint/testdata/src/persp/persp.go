// Package persp mirrors the shape of internal/perspective for
// semexhaustive tests: the five query semantics plus the eval mode.
package persp

type Semantics int

const (
	Static Semantics = iota
	Forward
	ExtendedForward
	Backward
	ExtendedBackward
)

type Mode int

const (
	NonVisual Mode = iota
	Visual
)
