// Package shim wraps fmt without declaring //lint:coldfmt, so it
// carries a ReachesFormatting fact to its importers.
package shim

import "fmt"

func Wrap(v int) string { return fmt.Sprintf("%d", v) }
