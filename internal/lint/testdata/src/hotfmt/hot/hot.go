// Package hot simulates a hot-path file via the //lint:hotpath marker.
//
//lint:hotpath
package hot

import (
	"errors"
	"fmt" // want `hot-path file imports "fmt": reflection-based formatting on the per-chunk path`

	"hotfmt/cold"
	"hotfmt/shim" // want `hot-path file imports "hotfmt/shim", which reaches formatting \(reaches hotfmt/shim → fmt\)`

	//lint:hotpathok
	shim2 "hotfmt/shim" // want `//lint:hotpathok needs a reason`

	//lint:hotpathok wraps fmt for plan rendering only, never called per cell
	shim3 "hotfmt/shim"
)

// Package-level sentinel errors stay legal.
var errSentinel = errors.New("sentinel")

func use() string {
	err := errors.New("boom")   // want `errors.New allocates per call on a hot path`
	s := fmt.Sprintf("%v", err) // want `fmt.Sprintf on a hot path formats/reflects per call`
	s += shim.Wrap(1)
	s += shim2.Wrap(2)
	s += shim3.Wrap(3)
	s += cold.Describe(4)
	if errSentinel != nil {
		return s
	}
	return ""
}
