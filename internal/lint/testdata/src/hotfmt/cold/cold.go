// Package cold uses fmt but has been reviewed: its formatting runs at
// exposition time only, so the coldfmt declaration stops fact
// propagation and hot files may import it.
//
//lint:coldfmt formats only in Describe, which hot callers never invoke per cell
package cold

import "fmt"

func Describe(v int) string { return fmt.Sprintf("cell %d", v) }
