// Command ctxmain shows that package main may mint contexts.
package main

import "context"

func main() {
	_ = context.Background()
}
