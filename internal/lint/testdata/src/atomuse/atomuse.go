// Package atomuse contains no sync/atomic call of its own: the only
// way the diagnostic below can fire is through the AtomicallyAccessed
// object fact (and AtomicFieldSet package fact) exported by atomx —
// proving cross-package fact flow through the driver.
package atomuse

import "atomx"

func ReadRace(c *atomx.Counter) int64 {
	return c.N // want `mixed access is a data race`
}

func Fine(c *atomx.Counter) *atomx.Counter {
	return c
}
