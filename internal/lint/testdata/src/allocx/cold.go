package allocx

// This file carries no //lint:hotpath marker: the same allocating
// shapes are legal here.

var coldSink interface{}

func coldBox(p payload) {
	coldSink = p
}

func coldAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
