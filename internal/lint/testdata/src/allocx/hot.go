// Package allocx is allocguard's testdata: this file is marked
// //lint:hotpath, so every allocating SSA op below is policed; cold.go
// holds the same shapes unmarked and must stay silent.
package allocx

//lint:hotpath

import "allochelp"

type payload struct{ a, b int }

var sink interface{}

// Boxing a struct into an interface heap-escapes the value.
func boxStruct(p payload) {
	sink = p // want `interface boxing`
}

// Converting a pointer is free: the data word holds the pointer.
func boxPointer(p *payload) {
	sink = p
}

// nil carries no value to box.
func boxNil() {
	sink = nil
}

func convString(s string) int {
	b := []byte(s) // want `string conversion`
	return len(b)
}

func closureInLoop(xs []int) int {
	total := 0
	for _, x := range xs {
		x := x
		f := func() int { return total + x } // want `capturing closure`
		total = f()
	}
	return total
}

func closureHoisted(xs []int) int {
	total := 0
	f := func(x int) int { return total + x }
	for _, x := range xs {
		total = f(x)
	}
	return total
}

func mapInLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		m := make(map[int]int) // want `map/channel allocation`
		m[i] = i
		total += m[i]
	}
	return total
}

func mapOnce() map[int]int {
	return make(map[int]int)
}

func appendNoEvidence(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `append without preallocated-capacity evidence`
	}
	return out
}

func appendWithCap(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

func appendToParam(buf []int, x int) []int {
	buf = append(buf, x)
	return buf
}

func sum(xs ...int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

func callVariadic() int {
	return sum(1, 2, 3) // want `variadic`
}

func callSpread(xs []int) int {
	return sum(xs...)
}

// The Allocates fact crosses the package boundary: MakeThing's entry
// block allocates, so calling it from a hot loop is reported even
// though the allocation lives in allochelp.
func helperInLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		m := allochelp.MakeThing() // want `allocates`
		m[i] = i
		total += len(m) + allochelp.Cheap(i)
	}
	return total
}

func annotated(p payload) {
	//lint:allocok boxing here is reviewed per-query setup
	sink = p
}

func bareDirective(p payload) {
	//lint:allocok
	sink = p // want `needs a reason`
}
