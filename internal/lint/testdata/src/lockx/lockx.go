// Package lockx exercises lockguard's may-held dataflow.
package lockx

import (
	"io"
	"sync"

	"diskx"
	"obsx"
)

type pool struct {
	mu sync.Mutex
	ch chan int
	f  io.ReaderAt
	wg sync.WaitGroup
}

func (p *pool) recvUnderLock() int {
	p.mu.Lock()
	v := <-p.ch // want `channel receive while p.mu may be held`
	p.mu.Unlock()
	return v
}

func (p *pool) diskUnderDefer() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return diskx.Read(7) // want `diskx I/O \(diskx.Read\) while p.mu may be held`
}

// faultInCorrect is the spill.go fault-in shape: drop the lock around
// the blocking work, re-acquire to publish. Nothing is flagged.
func (p *pool) faultInCorrect(buf []byte) int {
	p.mu.Lock()
	busy := p.ch != nil
	p.mu.Unlock()
	if busy {
		<-p.ch
	}
	n, _ := p.f.ReadAt(buf, 0)
	p.mu.Lock()
	p.ch = nil
	p.mu.Unlock()
	return n
}

// branchRelease releases on one path before blocking there.
func (p *pool) branchRelease(done bool) {
	p.mu.Lock()
	if done {
		p.mu.Unlock()
		<-p.ch
		return
	}
	p.mu.Unlock()
}

func (p *pool) readAtUnderLock(buf []byte) int {
	p.mu.Lock()
	n, _ := p.f.ReadAt(buf, 0) // want `ReadAt I/O while p.mu may be held`
	p.mu.Unlock()
	return n
}

func (p *pool) waitUnderLock() {
	p.mu.Lock()
	p.wg.Wait() // want `sync.WaitGroup.Wait while p.mu may be held`
	p.mu.Unlock()
}

// tier mirrors chunk.Tier's read/write surface: fault-in and
// write-back are file I/O and must run outside the pool lock.
type tier interface {
	ReadChunkAt(id int) ([]byte, error)
	WriteChunk(id int, b []byte) error
}

type tiered struct {
	mu sync.Mutex
	t  tier
}

func (p *tiered) faultUnderLock(id int) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.t.ReadChunkAt(id) // want `ReadChunkAt tier I/O while p.mu may be held`
}

func (p *tiered) writebackUnderLock(id int, b []byte) error {
	p.mu.Lock()
	err := p.t.WriteChunk(id, b) // want `WriteChunk tier I/O while p.mu may be held`
	p.mu.Unlock()
	return err
}

// faultOutsideLock is the pool's real shape: drop the lock, fault in,
// re-acquire to publish. Nothing is flagged.
func (p *tiered) faultOutsideLock(id int) ([]byte, error) {
	p.mu.Lock()
	_ = p.t
	p.mu.Unlock()
	b, err := p.t.ReadChunkAt(id)
	p.mu.Lock()
	p.mu.Unlock()
	return b, err
}

// Observability sinks flush to their writers: emitting an event while
// holding the pool lock serializes readers behind the sink.
func (p *pool) emitUnderLock(l *obsx.Log) {
	p.mu.Lock()
	l.Emit("evict") // want `obsx I/O \(obsx.Emit\) while p.mu may be held`
	p.mu.Unlock()
}

func (p *pool) flushUnderLock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	obsx.Flush() // want `obsx I/O \(obsx.Flush\) while p.mu may be held`
}

// emitOutsideLock snapshots under the lock, emits after release.
func (p *pool) emitOutsideLock(l *obsx.Log) {
	p.mu.Lock()
	busy := p.ch != nil
	p.mu.Unlock()
	if busy {
		l.Emit("busy")
	}
}

func (p *pool) annotated() int {
	p.mu.Lock()
	//lint:lockok handshake channel is buffered with capacity 1; the send side never blocks
	v := <-p.ch
	p.mu.Unlock()
	return v
}

func (p *pool) annotatedNoReason() int {
	p.mu.Lock()
	//lint:lockok
	v := <-p.ch // want `//lint:lockok needs a reason`
	p.mu.Unlock()
	return v
}
