// Package allochelp provides a function whose entry block provably
// allocates, so allocguard's Allocates fact must flow across the
// package boundary to hot-path callers.
package allochelp

// MakeThing allocates a map unconditionally: every call pays it.
func MakeThing() map[int]int {
	m := make(map[int]int)
	return m
}

// Cheap allocates nothing on entry; calling it from a hot loop is fine.
func Cheap(x int) int { return x + 1 }
