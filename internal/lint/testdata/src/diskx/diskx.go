// Package diskx stands in for the simulated disk: every call is priced
// blocking I/O for lockguard tests.
package diskx

func Read(off int) int { return off * 2 }
