// Package ctxa exercises ctxflow's two rules.
package ctxa

import (
	"context"

	"chunkx"
)

func mint() {
	_ = context.Background() // want `context.Background\(\) in library code severs the caller's cancellation`
	_ = context.TODO()       // want `context.TODO\(\) in library code severs the caller's cancellation`
}

//lint:ctxok API-boundary shim: callers may pass a zero RunContext
func boundary() context.Context { return context.Background() }

func reasonless() {
	//lint:ctxok
	_ = context.Background() // want `//lint:ctxok needs a reason`
}

func loopNoCtx(s *chunkx.Store, ids []int) int {
	total := 0
	for _, id := range ids {
		total += s.ReadChunk(id) // want `Store.ReadChunk inside a loop in loopNoCtx`
	}
	return total
}

func loopCtx(ctx context.Context, s *chunkx.Store, ids []int) int {
	total := 0
	for _, id := range ids {
		if ctx.Err() != nil {
			return total
		}
		total += s.ReadChunk(id)
	}
	return total
}

type execCtx struct {
	Ctx     context.Context
	Workers int
}

// A parameter struct carrying a Context field counts as context access.
func loopExecCtx(ec execCtx, s *chunkx.Store, ids []int) int {
	total := 0
	for _, id := range ids {
		total += s.ReadChunk(id)
	}
	_ = ec
	return total
}

// A single read outside any loop needs no context.
func readOnce(s *chunkx.Store) int { return s.ReadChunk(0) }
