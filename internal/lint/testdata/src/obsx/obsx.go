// Package obsx stands in for internal/obs: its sinks flush to
// io.Writer targets and join collector goroutines, so calls into it
// are priced as blocking for lockguard tests.
package obsx

type Log struct{}

func (l *Log) Emit(typ string) {}

func Flush() {}
