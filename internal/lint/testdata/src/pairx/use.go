package pairx

func lockBalanced(m *Mu, c bool) {
	m.Lock()
	if c {
		m.Unlock()
		return
	}
	m.Unlock()
}

func lockLeak(m *Mu, c bool) {
	m.Lock()
	if c {
		return // want `not released on this return path`
	}
	m.Unlock()
}

func lockDefer(m *Mu, c bool) {
	m.Lock()
	defer m.Unlock()
	if c {
		return
	}
}

func lockDeferClosure(m *Mu, c bool) {
	m.Lock()
	defer func() { m.Unlock() }()
	if c {
		return
	}
}

func pinLeak(p *Pool, c bool) {
	p.Pin(3)
	if c {
		return // want `not released on this return path`
	}
	p.Unpin(3)
}

func pinBalanced(p *Pool, ids []int) {
	for _, id := range ids {
		p.Pin(id)
		p.Unpin(id)
	}
}

func pinKeyMismatch(p *Pool, a, b int) {
	p.Pin(a)
	p.Unpin(b)
} // want `not released on this return path`

func spanLeak(t *T, c bool) {
	sp := t.Start()
	sp.Note()
	if c {
		return // want `not released on this return path`
	}
	sp.End()
}

func spanBalanced(t *T, c bool) {
	sp := t.Start()
	defer sp.End()
	if c {
		return
	}
}

// Passing the span away transfers the release duty with it.
func spanEscapeArg(t *T, c bool) {
	sp := t.Start()
	record(sp)
	if c {
		return
	}
}

func record(Span) {}

// Returning the resource hands ownership to the caller.
func spanEscapeReturn(t *T) Span {
	return t.Start()
}

func spanDiscard(t *T) {
	t.Start() // want `discarded`
}

func resPanicLeak(c bool) {
	r := NewRes()
	if c {
		panic("boom") // want `not released on this panic path`
	}
	r.Seal()
}

func resOK(c bool) {
	r := NewRes()
	r.Seal()
	if c {
		panic("fine")
	}
}

func pairokJustified(m *Mu, c bool) {
	//lint:pairok handoff: the caller releases this lock
	m.Lock()
	if c {
		return
	}
	m.Unlock()
}

func pairokBare(m *Mu, c bool) {
	//lint:pairok
	m.Lock() // want `needs a reason`
	if c {
		return
	}
	m.Unlock()
}
