// Package pairx is releasepair's testdata: keyed pairs (Mu.Lock/Unlock,
// Pool.Pin/Unpin keyed by the chunk ID) and result pairs (T.Start/End
// spans, NewRes/Seal), plus callers that leak them on early returns,
// panics, and discarded results.
package pairx

type Mu struct{}

func (m *Mu) Lock()   {}
func (m *Mu) Unlock() {}

type Pool struct{}

func (p *Pool) Pin(id int)   {}
func (p *Pool) Unpin(id int) {}

type Span struct{ ok bool }

func (s Span) End()  {}
func (s Span) Note() {}

type T struct{}

func (t *T) Start() Span { return Span{ok: true} }

type Res struct{ sealed bool }

func NewRes() *Res { return &Res{} }

func (r *Res) Seal() { r.sealed = true }
