package mono

import "time"

// This file carries no //lint:monotonic marker, so wall-clock reads
// here are out of the analyzer's scope.
func wallclockOffPath() int64 { return time.Now().UnixNano() }
