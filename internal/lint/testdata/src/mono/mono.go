// Package mono exercises monotonic on a marked span-recording file.
//
//lint:monotonic
package mono

import "time"

type rec struct {
	epoch time.Time
}

// Monotonic-safe API: time.Since / Time.Sub offsets.
func (r *rec) stamp() int64 {
	return int64(time.Since(r.epoch))
}

func (r *rec) bad() int64 {
	return r.epoch.UnixNano() // want `time.Time.UnixNano reads the wall clock on a span-recording path`
}

func (r *rec) strip() time.Time {
	return r.epoch.Round(0) // want `time.Time.Round strips the monotonic reading on a span-recording path`
}

func (r *rec) format() string {
	return r.epoch.Format(time.RFC3339) // want `time.Time.Format formats the wall clock on a span-recording path`
}

func (r *rec) annotated() int64 {
	//lint:wallclock slow-log rows carry wall time by design
	return r.epoch.Unix()
}

func (r *rec) reasonless() int64 {
	//lint:wallclock
	return r.epoch.Unix() // want `//lint:wallclock needs a reason`
}
