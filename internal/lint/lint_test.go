package lint

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"whatifolap/internal/lint/driver"
	"whatifolap/internal/lint/linttest"
)

// override points a flag-backed configuration variable at testdata for
// the duration of one test.
func override(t *testing.T, p *string, v string) {
	t.Helper()
	old := *p
	*p = v
	t.Cleanup(func() { *p = old })
}

func TestLintHotpathFmt(t *testing.T) {
	linttest.Run(t, "testdata", HotpathFmt, "hotfmt/hot")
}

func TestLintSemExhaustive(t *testing.T) {
	override(t, &semEnums, "persp.Semantics,persp.Mode")
	linttest.Run(t, "testdata", SemExhaustive, "semx")
}

func TestLintCtxFlow(t *testing.T) {
	override(t, &ctxflowPkgs, "ctxa,ctxmain")
	override(t, &ctxflowReadCalls, "chunkx.Store.ReadChunk")
	linttest.Run(t, "testdata", CtxFlow, "ctxa", "ctxmain")
}

func TestLintLockGuard(t *testing.T) {
	override(t, &lockguardPkgs, "lockx")
	override(t, &lockguardBlockPkgs, "diskx")
	linttest.Run(t, "testdata", LockGuard, "lockx")
}

func TestLintMonotonic(t *testing.T) {
	linttest.Run(t, "testdata", Monotonic, "mono")
}

// TestLintMonotonicFix applies the Round(0)/Truncate(0) suggested fix
// on a scratch copy of the mono testdata and checks the result still
// parses with the stripping call removed.
func TestLintMonotonicFix(t *testing.T) {
	srcRoot := filepath.Join(t.TempDir(), "src")
	monoDir := filepath.Join(srcRoot, "mono")
	if err := os.MkdirAll(monoDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"mono.go", "off.go"} {
		data, err := os.ReadFile(filepath.Join("testdata", "src", "mono", name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(monoDir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	l := driver.NewTestdata(srcRoot)
	if _, err := l.Load("mono"); err != nil {
		t.Fatal(err)
	}
	diags, err := driver.Run(l.Fset, l.Order(), []*analysis.Analyzer{Monotonic})
	if err != nil {
		t.Fatal(err)
	}
	n, err := driver.ApplyFixes(l.Fset, diags)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("applied %d fixes, want 1 (only Round(0) carries a safe fix)", n)
	}
	fixed, err := os.ReadFile(filepath.Join(monoDir, "mono.go"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(fixed), "Round(0)") {
		t.Fatalf("Round(0) survived the fix:\n%s", fixed)
	}
	if _, err := parser.ParseFile(token.NewFileSet(), "mono.go", fixed, 0); err != nil {
		t.Fatalf("fixed file no longer parses: %v", err)
	}
}
