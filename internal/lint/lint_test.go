package lint

import (
	"bytes"
	"encoding/gob"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"whatifolap/internal/lint/driver"
	"whatifolap/internal/lint/linttest"
)

// override points a flag-backed configuration variable at testdata for
// the duration of one test.
func override(t *testing.T, p *string, v string) {
	t.Helper()
	old := *p
	*p = v
	t.Cleanup(func() { *p = old })
}

func TestLintHotpathFmt(t *testing.T) {
	linttest.Run(t, "testdata", HotpathFmt, "hotfmt/hot")
}

func TestLintSemExhaustive(t *testing.T) {
	override(t, &semEnums, "persp.Semantics,persp.Mode")
	linttest.Run(t, "testdata", SemExhaustive, "semx")
}

func TestLintCtxFlow(t *testing.T) {
	override(t, &ctxflowPkgs, "ctxa,ctxmain")
	override(t, &ctxflowReadCalls, "chunkx.Store.ReadChunk")
	linttest.Run(t, "testdata", CtxFlow, "ctxa", "ctxmain")
}

func TestLintLockGuard(t *testing.T) {
	override(t, &lockguardPkgs, "lockx")
	override(t, &lockguardBlockPkgs, "diskx,obsx")
	linttest.Run(t, "testdata", LockGuard, "lockx")
}

func TestLintMonotonic(t *testing.T) {
	linttest.Run(t, "testdata", Monotonic, "mono")
}

// TestLintMonotonicFix applies the Round(0)/Truncate(0) suggested fix
// on a scratch copy of the mono testdata and checks the result still
// parses with the stripping call removed.
func TestLintMonotonicFix(t *testing.T) {
	srcRoot := filepath.Join(t.TempDir(), "src")
	monoDir := filepath.Join(srcRoot, "mono")
	if err := os.MkdirAll(monoDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"mono.go", "off.go"} {
		data, err := os.ReadFile(filepath.Join("testdata", "src", "mono", name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(monoDir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	l := driver.NewTestdata(srcRoot)
	if _, err := l.Load("mono"); err != nil {
		t.Fatal(err)
	}
	diags, err := driver.Run(l.Fset, l.Order(), []*analysis.Analyzer{Monotonic})
	if err != nil {
		t.Fatal(err)
	}
	n, err := driver.ApplyFixes(l.Fset, diags)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("applied %d fixes, want 1 (only Round(0) carries a safe fix)", n)
	}
	fixed, err := os.ReadFile(filepath.Join(monoDir, "mono.go"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(fixed), "Round(0)") {
		t.Fatalf("Round(0) survived the fix:\n%s", fixed)
	}
	if _, err := parser.ParseFile(token.NewFileSet(), "mono.go", fixed, 0); err != nil {
		t.Fatalf("fixed file no longer parses: %v", err)
	}
}

func TestLintAllocGuard(t *testing.T) {
	// allocx/hot.go is marked //lint:hotpath; allochelp is the
	// fact-exporting dependency (Allocates flows through the driver).
	linttest.Run(t, "testdata", AllocGuard, "allocx")
}

func TestLintReleasePair(t *testing.T) {
	override(t, &releasepairPkgs, "pairx")
	override(t, &releasepairPairs,
		"pairx.Mu.Lock:Unlock,pairx.Pool.Pin:Unpin@1,pairx.T.Start:End,pairx.NewRes:Seal")
	linttest.Run(t, "testdata", ReleasePair, "pairx")
}

func TestLintAtomicField(t *testing.T) {
	// atomuse holds no sync/atomic call: its diagnostic only fires if
	// atomx's facts crossed the package boundary.
	linttest.Run(t, "testdata", AtomicField, "atomx", "atomuse")
}

// TestLintReleasePairFix applies releasepair's suggested fixes (insert
// the release before a must-held early return) on a scratch copy of the
// pairx testdata and checks the patched files still parse with the
// releases inserted.
func TestLintReleasePairFix(t *testing.T) {
	override(t, &releasepairPkgs, "pairx")
	override(t, &releasepairPairs,
		"pairx.Mu.Lock:Unlock,pairx.Pool.Pin:Unpin@1,pairx.T.Start:End,pairx.NewRes:Seal")
	srcRoot := filepath.Join(t.TempDir(), "src")
	pairDir := filepath.Join(srcRoot, "pairx")
	if err := os.MkdirAll(pairDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"api.go", "use.go"} {
		data, err := os.ReadFile(filepath.Join("testdata", "src", "pairx", name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(pairDir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	l := driver.NewTestdata(srcRoot)
	if _, err := l.Load("pairx"); err != nil {
		t.Fatal(err)
	}
	diags, err := driver.Run(l.Fset, l.Order(), []*analysis.Analyzer{ReleasePair})
	if err != nil {
		t.Fatal(err)
	}
	n, err := driver.ApplyFixes(l.Fset, diags)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("expected releasepair to offer at least one safe fix")
	}
	fixed, err := os.ReadFile(filepath.Join(pairDir, "use.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "m.Unlock(); ") {
		t.Fatalf("lockLeak's early return was not patched:\n%s", fixed)
	}
	if _, err := parser.ParseFile(token.NewFileSet(), "use.go", fixed, 0); err != nil {
		t.Fatalf("fixed file no longer parses: %v", err)
	}
}

// TestLintFactGobRoundTrip pins that every fact type the new analyzers
// export survives gob encoding — the serialization go vet's
// unitchecker uses to ship facts between packages — so the offline
// driver and the -vettool gate see identical cross-package behavior.
func TestLintFactGobRoundTrip(t *testing.T) {
	facts := []analysis.Fact{
		&Allocates{Why: "map/channel allocation in the entry block"},
		&AtomicallyAccessed{},
		&AtomicFieldSet{Fields: []string{"Counter.N"}},
	}
	for _, f := range facts {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(f); err != nil {
			t.Fatalf("encoding %T: %v", f, err)
		}
		out := reflect.New(reflect.TypeOf(f).Elem()).Interface()
		if err := gob.NewDecoder(&buf).Decode(out); err != nil {
			t.Fatalf("decoding %T: %v", f, err)
		}
		if !reflect.DeepEqual(f, out) {
			t.Fatalf("%T round-trip mismatch: %#v != %#v", f, f, out)
		}
	}
}
