package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"

	"whatifolap/internal/lint/ssax"
)

// ReleasePair proves paired acquire/release operations balance on every
// control-flow path, including early returns and panics — the leak
// class AllocsPerRun pins and race tests never see. Two pairing shapes:
//
//   - keyed pairs: the release is a method on the same receiver
//     (mu.Lock/mu.Unlock, store.Pin(id)/store.Unpin(id) — the key is
//     the rendered receiver plus the leading arguments named by the
//     spec). A deferred release holds to function exit by design and
//     clears the obligation.
//   - result pairs: the acquire returns the resource and the release
//     is a method on the result (sp := tr.Start(...) / sp.End(),
//     CloneTier/Close, NewLayer/Seal). Ownership transfer ends the
//     obligation: returning the resource, passing it as an argument,
//     storing it anywhere, or sending it on a channel all count as
//     handing the release duty to someone else. Plain method calls on
//     the resource (sp.Int(...)) do not.
//
// The analysis is a forward may-held dataflow over the CFG: a resource
// held at a return or panic exit is reported at that exit. When the
// resource is held on *every* path into an explicit return (must-held),
// the diagnostic carries a suggested fix inserting the release before
// the return — `make lint-fix` applies those. //lint:pairok <reason>
// on the acquire (or the exit) is the reviewed escape hatch.
var ReleasePair = &analysis.Analyzer{
	Name:     "releasepair",
	Doc:      "paired operations (Lock/Unlock, Pin/Unpin, CloneTier/Close, span Start/End, NewLayer/Seal) must balance on every path, including early returns and panics",
	Run:      runReleasePair,
	Requires: []*analysis.Analyzer{ssax.Analyzer},
}

var (
	releasepairPkgs = strings.Join([]string{
		ModulePath + "/internal/core",
		ModulePath + "/internal/chunk",
		ModulePath + "/internal/segment",
		ModulePath + "/internal/scenario",
		ModulePath + "/internal/trace",
	}, ",")
	releasepairPairs = strings.Join([]string{
		"sync.Mutex.Lock:Unlock",
		"sync.RWMutex.Lock:Unlock",
		"sync.RWMutex.RLock:RUnlock",
		ModulePath + "/internal/chunk.Store.Pin:Unpin@1",
		ModulePath + "/internal/trace.Trace.Start:End",
		ModulePath + "/internal/segment.File.CloneTier:Close",
		ModulePath + "/internal/chunk.CloneableTier.CloneTier:Close",
		ModulePath + "/internal/chunk.NewLayer:Seal",
	}, ",")
)

func init() {
	ReleasePair.Flags.StringVar(&releasepairPkgs, "pkgs",
		releasepairPkgs, "comma-separated package paths checked for balanced pairs")
	ReleasePair.Flags.StringVar(&releasepairPairs, "pairs",
		releasepairPairs, "comma-separated pair specs: pkgpath[.Type].Acquire:Release[@keyargs]")
}

// pairSpec is one acquire/release pairing. typ == "" means the acquire
// is a package-level function; keyArgs is how many leading acquire
// arguments join the receiver in the key (keyed mode only). Whether a
// spec is keyed or result-mode is decided by the acquire's signature:
// any results → the first result is the tracked resource.
type pairSpec struct {
	pkg, typ, acq, rel string
	keyArgs            int
}

func parsePairSpecs(s string) []pairSpec {
	var out []pairSpec
	for _, raw := range strings.Split(s, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		keyArgs := 0
		if at := strings.LastIndex(raw, "@"); at >= 0 {
			keyArgs, _ = strconv.Atoi(raw[at+1:])
			raw = raw[:at]
		}
		colon := strings.LastIndex(raw, ":")
		if colon < 0 {
			continue
		}
		qual, rel := raw[:colon], raw[colon+1:]
		dot := strings.LastIndex(qual, ".")
		if dot < 0 {
			continue
		}
		head, acq := qual[:dot], qual[dot+1:]
		sp := pairSpec{acq: acq, rel: rel, keyArgs: keyArgs}
		// A dot after head's last slash means its tail is a type name.
		if d := strings.LastIndex(head, "."); d > strings.LastIndex(head, "/") {
			sp.pkg, sp.typ = head[:d], head[d+1:]
		} else {
			sp.pkg = head
		}
		out = append(out, sp)
	}
	return out
}

func runReleasePair(pass *analysis.Pass) (interface{}, error) {
	if !pkgInList(pass.Pkg.Path(), releasepairPkgs) {
		return nil, nil
	}
	res := pass.ResultOf[ssax.Analyzer].(*ssax.Result)
	ra := &pairAnalysis{
		pass:     pass,
		ix:       newDirectiveIndex(pass),
		specs:    parsePairSpecs(releasepairPairs),
		reported: make(map[string]bool),
	}
	for _, fn := range res.All() {
		if isTestFile(pass.Fset, fn.Node.Pos()) {
			continue
		}
		ra.analyze(fn)
	}
	return nil, nil
}

type pairAnalysis struct {
	pass     *analysis.Pass
	ix       *directiveIndex
	specs    []pairSpec
	reported map[string]bool
}

// pairRes is one outstanding release obligation.
type pairRes struct {
	spec *pairSpec
	pos  token.Pos  // acquire position
	must bool       // held on every path into the current point
	key  string     // keyed mode: rendered receiver(+args)
	v    *types.Var // result mode: the local owning the resource
}

// pairState maps a resource identity to its obligation.
type pairState map[string]*pairRes

func (ra *pairAnalysis) keyedID(sp *pairSpec, key string) string {
	return "k|" + sp.acq + ":" + sp.rel + "|" + key
}

func varID(v *types.Var) string {
	return "v|" + strconv.Itoa(int(v.Pos()))
}

func clonePairState(s pairState) pairState {
	out := make(pairState, len(s))
	for k, v := range s {
		c := *v
		out[k] = &c
	}
	return out
}

// mergePair unions src into dst (may-held); an obligation missing from
// either side loses its must bit. Reports whether dst changed.
func mergePair(dst, src pairState) bool {
	changed := false
	for k, v := range src {
		if d, ok := dst[k]; !ok {
			c := *v
			c.must = false
			dst[k] = &c
			changed = true
		} else if d.must && !v.must {
			d.must = false
			changed = true
		}
	}
	for k, d := range dst {
		if _, ok := src[k]; !ok && d.must {
			d.must = false
			changed = true
		}
	}
	return changed
}

func (ra *pairAnalysis) analyze(fn *ssax.Func) {
	if len(fn.Blocks) == 0 {
		return
	}
	in := make([]pairState, len(fn.Blocks))
	in[0] = pairState{}
	work := []int{0}
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		blk := fn.Blocks[bi]
		out := clonePairState(in[bi])
		for _, instr := range blk.Instrs {
			ra.transfer(out, instr, false)
		}
		for _, succ := range blk.Succs {
			if in[succ] == nil {
				in[succ] = clonePairState(out)
				work = append(work, succ)
			} else if mergePair(in[succ], out) {
				work = append(work, succ)
			}
		}
	}
	// Reporting pass: re-run each reachable block's transfer with
	// reporting on, then flag obligations still open at its exit.
	for bi, blk := range fn.Blocks {
		if in[bi] == nil {
			continue
		}
		st := clonePairState(in[bi])
		for _, instr := range blk.Instrs {
			ra.transfer(st, instr, true)
		}
		if blk.Exit == ssax.ExitNone {
			continue
		}
		for _, r := range st {
			ra.reportLeak(blk, r)
		}
	}
}

// transfer interprets one instruction against the open obligations.
func (ra *pairAnalysis) transfer(st pairState, instr ssax.Instr, report bool) {
	switch instr.Kind {
	case ssax.KAssign:
		// Result-mode acquire bound to a simple local?
		if len(instr.Rhs) == 1 && len(instr.Lhs) >= 1 {
			if call, ok := ast.Unparen(instr.Rhs[0]).(*ast.CallExpr); ok {
				if sp, fn := ra.matchAcquire(call); sp != nil && resultMode(fn) {
					ra.escapeUses(st, call.Args)
					ra.overwrite(st, instr.Lhs)
					if v := ra.localVar(instr.Lhs[0]); v != nil {
						st[varID(v)] = &pairRes{spec: sp, pos: call.Pos(), must: true, v: v}
					}
					// Bound to a field/index/blank: ownership stored
					// elsewhere (or dropped deliberately); not tracked.
					return
				}
			}
		}
		ra.escapeUses(st, instr.Rhs)
		ra.overwrite(st, instr.Lhs)
	case ssax.KCall:
		ra.call(st, instr, report)
	case ssax.KDefer:
		ra.deferred(st, instr.Call)
	case ssax.KGo:
		// The goroutine body is analyzed as its own function; its
		// arguments are evaluated now and escape.
		ra.escapeUses(st, instr.Call.Args)
	case ssax.KReturn:
		ret := instr.Node.(*ast.ReturnStmt)
		ra.escapeUses(st, ret.Results)
	case ssax.KSend:
		send := instr.Node.(*ast.SendStmt)
		ra.escapeUses(st, []ast.Expr{send.Value})
	}
}

func (ra *pairAnalysis) call(st pairState, instr ssax.Instr, report bool) {
	call := instr.Call
	if sp, fn := ra.matchAcquire(call); sp != nil {
		if resultMode(fn) {
			// Reached as a bare or nested call: if it is a statement,
			// the resource is discarded and can never be released.
			if instr.Stmt && report {
				ra.reportDiscard(call, sp)
			}
			ra.escapeUses(st, call.Args)
			return
		}
		if key, ok := ra.keyFor(call, sp); ok {
			st[ra.keyedID(sp, key)] = &pairRes{spec: sp, pos: call.Pos(), must: true, key: key}
		}
		return
	}
	if sp, key, ok := ra.matchKeyedRelease(call); ok {
		delete(st, ra.keyedID(sp, key))
		return
	}
	// Release method on a tracked result? Receiver method calls on the
	// resource otherwise leave the obligation open (sp.Int(...) is not
	// an escape); every other use of the resource in the call escapes.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if v := ra.localVar(sel.X); v != nil {
			if r, held := st[varID(v)]; held {
				if sel.Sel.Name == r.spec.rel {
					delete(st, varID(v))
				}
				ra.escapeUses(st, call.Args)
				return
			}
		}
	}
	ra.escapeUses(st, append([]ast.Expr{call.Fun}, call.Args...))
}

// deferred handles `defer f(...)`: a deferred release runs at every
// exit and discharges the obligation; a deferred closure is scanned for
// the releases it performs.
func (ra *pairAnalysis) deferred(st pairState, call *ast.CallExpr) {
	if sp, key, ok := ra.matchKeyedRelease(call); ok {
		delete(st, ra.keyedID(sp, key))
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if v := ra.localVar(sel.X); v != nil {
			if r, held := st[varID(v)]; held && sel.Sel.Name == r.spec.rel {
				delete(st, varID(v))
				return
			}
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sp, key, ok := ra.matchKeyedRelease(inner); ok {
				delete(st, ra.keyedID(sp, key))
			} else if sel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr); ok {
				if v := ra.localVar(sel.X); v != nil {
					if r, held := st[varID(v)]; held && sel.Sel.Name == r.spec.rel {
						delete(st, varID(v))
					}
				}
			}
			return true
		})
		return
	}
	ra.escapeUses(st, call.Args)
}

// matchAcquire returns the spec whose acquire f matches, or nil.
func (ra *pairAnalysis) matchAcquire(call *ast.CallExpr) (*pairSpec, *types.Func) {
	fn := typeutilCallee(ra.pass, call)
	if fn == nil || fn.Pkg() == nil {
		return nil, nil
	}
	for i := range ra.specs {
		sp := &ra.specs[i]
		if fn.Name() == sp.acq && ra.matchesSpec(fn, sp) {
			return sp, fn
		}
	}
	return nil, nil
}

// matchKeyedRelease recognizes a call as the release of a keyed spec.
func (ra *pairAnalysis) matchKeyedRelease(call *ast.CallExpr) (*pairSpec, string, bool) {
	fn := typeutilCallee(ra.pass, call)
	if fn == nil || fn.Pkg() == nil {
		return nil, "", false
	}
	for i := range ra.specs {
		sp := &ra.specs[i]
		if fn.Name() != sp.rel || !ra.matchesSpec(fn, sp) {
			continue
		}
		if key, ok := ra.keyFor(call, sp); ok {
			return sp, key, true
		}
	}
	return nil, "", false
}

func (ra *pairAnalysis) matchesSpec(fn *types.Func, sp *pairSpec) bool {
	if fn.Pkg().Path() != sp.pkg {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sp.typ == "" {
		return sig.Recv() == nil
	}
	return sig.Recv() != nil && namedTypeName(sig.Recv().Type()) == sp.typ
}

func resultMode(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Results().Len() > 0
}

// keyFor renders the keyed identity: receiver plus the spec's leading
// arguments.
func (ra *pairAnalysis) keyFor(call *ast.CallExpr, sp *pairSpec) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	key := renderExpr(ra.pass.Fset, sel.X)
	if sp.keyArgs > 0 {
		if len(call.Args) < sp.keyArgs {
			return "", false
		}
		args := make([]string, 0, sp.keyArgs)
		for _, a := range call.Args[:sp.keyArgs] {
			args = append(args, renderExpr(ra.pass.Fset, a))
		}
		key += "(" + strings.Join(args, ",") + ")"
	}
	return key, true
}

// localVar resolves e to the local variable it names, or nil.
func (ra *pairAnalysis) localVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	var obj types.Object
	if d := ra.pass.TypesInfo.Defs[id]; d != nil {
		obj = d
	} else {
		obj = ra.pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil || v.Parent() == nil || v.Parent() == v.Pkg().Scope() {
		return nil
	}
	return v
}

// escapeUses drops result-mode obligations whose resource appears
// anywhere in exprs: the release duty went with the value.
func (ra *pairAnalysis) escapeUses(st pairState, exprs []ast.Expr) {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := ra.pass.TypesInfo.Uses[id].(*types.Var); ok {
				delete(st, varID(v))
			}
			return true
		})
	}
}

// overwrite drops obligations for result variables being reassigned:
// the old resource's identity is gone (reassignment before release is
// itself a leak, but an untrackable one — the acquire's exit report
// covers the common shapes).
func (ra *pairAnalysis) overwrite(st pairState, lhs []ast.Expr) {
	for _, e := range lhs {
		if v := ra.localVar(e); v != nil {
			delete(st, varID(v))
		}
	}
}

func (ra *pairAnalysis) reportLeak(blk *ssax.Block, r *pairRes) {
	exitPos := blk.ExitPos
	dedup := strconv.Itoa(int(r.pos)) + "@" + strconv.Itoa(int(exitPos))
	if ra.reported[dedup] {
		return
	}
	ra.reported[dedup] = true
	if ra.pairOK(r.pos) || ra.pairOK(exitPos) {
		return
	}
	kind := "return"
	if blk.Exit == ssax.ExitPanic {
		kind = "panic"
	}
	var what, release string
	if r.v != nil {
		what = r.v.Name() + " (acquired by " + r.spec.acq + " at " + ra.pos(r.pos) + ")"
		release = r.v.Name() + "." + r.spec.rel + "()"
	} else {
		what = r.key + "." + r.spec.acq + " (at " + ra.pos(r.pos) + ")"
		release = releaseCallText(r)
	}
	diag := analysis.Diagnostic{
		Pos: exitPos,
		Message: what + " is not released on this " + kind +
			" path; call " + release + " before the " + kind +
			" (or defer it at acquisition), or annotate //lint:pairok <reason>",
	}
	// Safe fix only when the obligation is must-held at an explicit
	// return: insert the release right before the return statement.
	if r.must && blk.Exit == ssax.ExitReturn && blk.Return != nil && blk.Return.Pos().IsValid() {
		diag.SuggestedFixes = []analysis.SuggestedFix{{
			Message: "insert " + release + " before the return",
			TextEdits: []analysis.TextEdit{{
				Pos:     blk.Return.Pos(),
				End:     blk.Return.Pos(),
				NewText: []byte(release + "; "),
			}},
		}}
	}
	ra.pass.Report(diag)
}

func (ra *pairAnalysis) reportDiscard(call *ast.CallExpr, sp *pairSpec) {
	dedup := "d" + strconv.Itoa(int(call.Pos()))
	if ra.reported[dedup] {
		return
	}
	ra.reported[dedup] = true
	if ra.pairOK(call.Pos()) {
		return
	}
	ra.pass.Reportf(call.Pos(),
		"result of %s is discarded: nothing can ever call %s on it; bind the result and release it, or annotate //lint:pairok <reason>",
		sp.acq, sp.rel)
}

// pairOK reports whether a justified //lint:pairok covers pos; a bare
// directive gets its own diagnostic.
func (ra *pairAnalysis) pairOK(pos token.Pos) bool {
	ok, present := ra.ix.justified(pos, "pairok")
	if ok {
		return true
	}
	if present {
		dedup := "j" + strconv.Itoa(int(pos))
		if !ra.reported[dedup] {
			ra.reported[dedup] = true
			ra.pass.Reportf(pos, "//lint:pairok needs a reason for leaving a paired resource unreleased")
		}
		return true
	}
	return false
}

func releaseCallText(r *pairRes) string {
	recv := r.key
	args := ""
	if i := strings.IndexByte(recv, '('); i >= 0 {
		args = recv[i+1 : len(recv)-1]
		recv = recv[:i]
	}
	return recv + "." + r.spec.rel + "(" + args + ")"
}

func (ra *pairAnalysis) pos(p token.Pos) string {
	pos := ra.pass.Fset.Position(p)
	return pos.Filename[strings.LastIndexByte(pos.Filename, '/')+1:] + ":" + strconv.Itoa(pos.Line)
}
