package lint

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestLintRepoClean builds cmd/whatiflint and runs it exactly the way
// verify.sh does — through go vet -vettool — over the whole repository,
// asserting the gate stays clean.
func TestLintRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets the whole repository")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "whatiflint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/whatiflint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building whatiflint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("whatiflint reported findings:\n%s", out)
	}
}
