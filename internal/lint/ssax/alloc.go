package ssax

// Heap-allocation site enumeration: the ssax equivalent of scanning an
// SSA function for MakeInterface / MakeClosure / MakeMap / Convert /
// Slice-of-variadic instructions. Detection is type-driven, so only
// ops that actually force a heap allocation are recorded — converting
// a pointer (or any other single-word, pointer-shaped value) to an
// interface builds the interface header inline and is not an
// allocation; boxing a struct, slice or string is.

import (
	"go/ast"
	"go/types"
)

// collectAllocs walks the function body (skipping nested function
// literals, which get their own Func) and records allocation sites.
func (b *builder) collectAllocs(f *Func, body *ast.BlockStmt) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if caps := b.captures(m); len(caps) > 0 && !immediatelyInvoked(body, m) {
					f.addAlloc(Alloc{Kind: AllocClosure, Pos: m.Pos(), Node: m})
				}
				return false
			case *ast.CallExpr:
				b.callAllocs(f, m)
			case *ast.CompositeLit:
				if t := b.pass.TypesInfo.TypeOf(m); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						f.addAlloc(Alloc{Kind: AllocMake, Pos: m.Pos(), Node: m})
					}
				}
				b.compositeBoxes(f, m)
			case *ast.AssignStmt:
				b.assignBoxes(f, m)
			case *ast.ValueSpec:
				b.specBoxes(f, m)
			case *ast.ReturnStmt:
				b.returnBoxes(f, m)
			case *ast.SendStmt:
				if ch := b.pass.TypesInfo.TypeOf(m.Chan); ch != nil {
					if c, ok := ch.Underlying().(*types.Chan); ok {
						b.boxAt(f, m.Value, c.Elem())
					}
				}
			}
			return true
		})
	}
	walk(body)
}

func (f *Func) addAlloc(a Alloc) {
	a.InLoop = f.InLoop(a.Pos)
	a.InEntry = f.InEntry(a.Pos)
	f.Allocs = append(f.Allocs, a)
}

// callAllocs records the allocations a call expression forces:
// conversions (string copies, boxing), append growth, map/chan makes,
// variadic slices, and boxing of interface-typed arguments.
func (b *builder) callAllocs(f *Func, call *ast.CallExpr) {
	info := b.pass.TypesInfo

	// Conversion T(x)?
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.TypeOf(call.Args[0])
		switch {
		case isStringCopyConv(dst, src):
			f.addAlloc(Alloc{Kind: AllocConvString, Pos: call.Pos(), Node: call, From: src})
		default:
			b.boxAt(f, call.Args[0], dst)
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if bi, ok := info.Uses[id].(*types.Builtin); ok {
			switch bi.Name() {
			case "append":
				a := Alloc{Kind: AllocAppend, Pos: call.Pos(), Node: call}
				if len(call.Args) > 0 {
					if tid, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
						if v, ok := info.Uses[tid].(*types.Var); ok && !v.IsField() {
							a.Target = v
						}
					}
				}
				f.addAlloc(a)
			case "make":
				if t := info.TypeOf(call); t != nil {
					switch t.Underlying().(type) {
					case *types.Map, *types.Chan:
						f.addAlloc(Alloc{Kind: AllocMake, Pos: call.Pos(), Node: call})
					}
				}
			}
			return
		}
	}

	// Ordinary call: variadic slice construction, and boxing of
	// arguments passed to interface-typed parameters.
	sigT := info.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	np := params.Len()
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= np {
		f.addAlloc(Alloc{Kind: AllocVariadic, Pos: call.Pos(), Node: call, Callee: staticCallee(info, call)})
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < np-1 || (i < np && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && !call.Ellipsis.IsValid():
			pt = params.At(np - 1).Type().(*types.Slice).Elem()
		case sig.Variadic() && call.Ellipsis.IsValid() && i == np-1:
			pt = params.At(np - 1).Type() // spread: slice passed through
		}
		if pt != nil {
			b.boxAt(f, arg, pt)
		}
	}
}

// assignBoxes records boxing conversions in assignments.
func (b *builder) assignBoxes(f *Func, m *ast.AssignStmt) {
	if len(m.Lhs) != len(m.Rhs) {
		return // multi-value call: result types already match targets
	}
	for i := range m.Lhs {
		if t := b.pass.TypesInfo.TypeOf(m.Lhs[i]); t != nil {
			b.boxAt(f, m.Rhs[i], t)
		}
	}
}

func (b *builder) specBoxes(f *Func, m *ast.ValueSpec) {
	if m.Type == nil || len(m.Values) == 0 {
		return
	}
	t := b.pass.TypesInfo.TypeOf(m.Type)
	for _, v := range m.Values {
		b.boxAt(f, v, t)
	}
}

// returnBoxes records boxing at return statements against the
// function's result types.
func (b *builder) returnBoxes(f *Func, m *ast.ReturnStmt) {
	if f.Sig == nil {
		return
	}
	res := f.Sig.Results()
	if res.Len() != len(m.Results) {
		return
	}
	for i, e := range m.Results {
		b.boxAt(f, e, res.At(i).Type())
	}
}

// compositeBoxes records boxing of composite-literal elements into
// interface-typed slots.
func (b *builder) compositeBoxes(f *Func, lit *ast.CompositeLit) {
	t := b.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		b.elementBoxes(f, lit, u.Elem())
	case *types.Array:
		b.elementBoxes(f, lit, u.Elem())
	case *types.Map:
		for _, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				b.boxAt(f, kv.Key, u.Key())
				b.boxAt(f, kv.Value, u.Elem())
			}
		}
	case *types.Struct:
		for i, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					for j := 0; j < u.NumFields(); j++ {
						if u.Field(j).Name() == id.Name {
							b.boxAt(f, kv.Value, u.Field(j).Type())
							break
						}
					}
				}
			} else if i < u.NumFields() {
				b.boxAt(f, el, u.Field(i).Type())
			}
		}
	}
}

func (b *builder) elementBoxes(f *Func, lit *ast.CompositeLit, elem types.Type) {
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			el = kv.Value
		}
		b.boxAt(f, el, elem)
	}
}

// boxAt records an AllocBox when assigning expr to a slot of type dst
// heap-allocates: dst is an interface, expr's concrete type is not
// pointer-shaped and not zero-sized, and expr is not nil or already an
// interface.
func (b *builder) boxAt(f *Func, expr ast.Expr, dst types.Type) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := b.pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	src := tv.Type
	if basic, ok := src.Underlying().(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return
	}
	if types.IsInterface(src) || pointerShaped(src) || zeroSized(b.pass.TypesSizes, src) {
		return
	}
	f.addAlloc(Alloc{Kind: AllocBox, Pos: expr.Pos(), Node: expr, From: src})
}

// pointerShaped reports whether values of t fit the interface data
// word directly (no heap copy when boxed).
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func zeroSized(sizes types.Sizes, t types.Type) bool {
	if sizes == nil {
		return false
	}
	if _, ok := t.(*types.TypeParam); ok {
		return true // generic: unknowable, stay quiet
	}
	// Sizeof panics on types it cannot size (deeply generic shapes);
	// treat those as not-provably-allocating rather than crashing vet.
	defer func() { recover() }()
	return sizes.Sizeof(t) == 0
}

// isStringCopyConv reports whether a conversion dst(src) copies string
// contents: string↔[]byte, string↔[]rune, rune/byte-slice fan-outs.
func isStringCopyConv(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	dstStr := isString(dst)
	srcStr := isString(src)
	switch {
	case dstStr && (isByteOrRuneSlice(src) || isRune(src)):
		return true
	case srcStr && isByteOrRuneSlice(dst):
		return true
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isRune(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Rune || b.Kind() == types.Int32 || b.Kind() == types.UntypedRune)
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// captures returns the variables a function literal captures from its
// enclosing function: non-field variables declared outside the
// literal's extent but not at package scope.
func (b *builder) captures(lit *ast.FuncLit) []*types.Var {
	info := b.pass.TypesInfo
	seen := make(map[*types.Var]bool)
	var out []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Parent() == nil || v.Parent() == b.pass.Pkg.Scope() || v.Parent().Parent() == types.Universe {
			return true // package-level or universe: accessed directly
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // the literal's own parameter or local
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}

// immediatelyInvoked reports whether lit is called in place
// (func(){...}()), which the compiler can keep off the heap.
func immediatelyInvoked(root ast.Node, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && ast.Unparen(call.Fun) == lit {
			found = true
			return false
		}
		return true
	})
	return found
}

// resolveAppendEvidence fills Alloc.Capacity for append sites: the
// target has preallocation evidence when it is a parameter (the caller
// provisions the buffer) or any definition is a three-argument make
// (explicit capacity). A closure appending to a captured variable
// inherits the enclosing function's evidence through the builder-wide
// definition and parameter records — the parent is always built before
// its literals.
func (b *builder) resolveAppendEvidence(f *Func) {
	for i := range f.Allocs {
		a := &f.Allocs[i]
		if a.Kind != AllocAppend || a.Target == nil {
			continue
		}
		if isParamOf(f.Sig, a.Target) || b.paramVars[a.Target] {
			a.Capacity = true
			continue
		}
		// allDefs spans the enclosing function too: a closure appending
		// to a captured variable sees the parent's make(T, 0, n).
		for _, def := range b.allDefs[a.Target] {
			if isMakeWithCap(b.pass.TypesInfo, def) {
				a.Capacity = true
				break
			}
		}
	}
}

func isParamOf(sig *types.Signature, v *types.Var) bool {
	if sig == nil {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if params.At(i) == v {
			return true
		}
	}
	if recv := sig.Recv(); recv != nil && recv == v {
		return true
	}
	return false
}

func isMakeWithCap(info *types.Info, def ast.Expr) bool {
	call, ok := ast.Unparen(def).(*ast.CallExpr)
	if !ok || len(call.Args) != 3 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	bi, ok := info.Uses[id].(*types.Builtin)
	return ok && bi.Name() == "make"
}
