// Package ssax is whatiflint's SSA-lite foundation: a per-function
// intermediate form built over the ctrlflow CFGs that the allocation
// and release-pairing analyzers share, in the role
// golang.org/x/tools/go/analysis/passes/buildssa plays for upstream
// analyzers.
//
// Why not go/ssa itself: this build environment has no module proxy,
// and the Go distribution's cmd/vendor tree — the offline source PR 5
// vendored the analysis framework from — carries only the x/tools
// subset the standard vet suite needs, which does not include go/ssa
// or buildssa. Rather than hand-porting a ~20k-line package, ssax
// lowers exactly the slice of SSA these analyzers consume:
//
//   - basic blocks (from golang.org/x/tools/go/cfg via ctrlflow) with
//     per-block instruction lists in approximate evaluation order:
//     calls (plain, deferred, go), assignments, channel operations;
//   - exit classification: every block with no successors is a
//     function exit, split into return exits (explicit and the
//     materialized implicit return) and panic exits — the paths a
//     must-release analysis has to prove balanced;
//   - heap-allocation sites with the reason the op allocates:
//     interface boxing of non-pointer-shaped values, capturing
//     closures, append calls with their capacity-evidence state,
//     map/channel makes, string conversions, and variadic calls that
//     build their argument slice;
//   - local definition sites (for capacity-evidence queries) and
//     loop extents (for per-iteration-allocation policies).
//
// The Result is position-addressable: consumers look functions up by
// their *ast.FuncDecl / *ast.FuncLit node, exactly like buildssa's
// SSA.Function lookup idiom.
package ssax

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"
)

// Analyzer builds the SSA-lite form for every function in the package.
// It reports nothing; its Result feeds allocguard and releasepair.
var Analyzer = &analysis.Analyzer{
	Name:       "whatifssa",
	Doc:        "build whatiflint's SSA-lite per-function form (blocks, instructions, alloc sites, exits) for the allocation and release-pairing analyzers",
	Run:        run,
	Requires:   []*analysis.Analyzer{ctrlflow.Analyzer},
	ResultType: reflect.TypeOf((*Result)(nil)),
}

// Result holds the package's lowered functions.
type Result struct {
	funcs map[ast.Node]*Func
	order []*Func
}

// Func returns the lowered form of a *ast.FuncDecl or *ast.FuncLit, or
// nil when the node has no body (or is not a function).
func (r *Result) Func(n ast.Node) *Func { return r.funcs[n] }

// All returns every lowered function in source order, function
// literals included.
func (r *Result) All() []*Func { return r.order }

// Func is one function body in SSA-lite form.
type Func struct {
	Node   ast.Node // *ast.FuncDecl or *ast.FuncLit
	Name   string   // declared name, or "func literal"
	Sig    *types.Signature
	Blocks []*Block
	Allocs []Alloc
	// Defs records, per local variable, the expressions assigned to it
	// anywhere in the function (declaration initializers and plain
	// assignments), in source order. Multi-value assignments from a
	// single call record the call for each variable.
	Defs map[*types.Var][]ast.Expr

	loops []span // extents of for/range bodies lexically in this function
	entry span   // extent of the entry block's nodes
}

// span is a half-open position interval.
type span struct{ lo, hi token.Pos }

func (s span) contains(p token.Pos) bool { return p >= s.lo && p < s.hi }

// InLoop reports whether pos lies inside a for/range body of this
// function (nested function literals have their own loop extents).
func (f *Func) InLoop(pos token.Pos) bool {
	for _, s := range f.loops {
		if s.contains(pos) {
			return true
		}
	}
	return false
}

// InEntry reports whether pos lies in the function's entry block — an
// operation there executes unconditionally on every call.
func (f *Func) InEntry(pos token.Pos) bool { return f.entry.contains(pos) }

// Block is one basic block with lowered instructions.
type Block struct {
	Index  int
	Instrs []Instr
	Succs  []int
	Exit   ExitKind
	// ExitPos is the return statement or panic call position for
	// Return/Panic exits.
	ExitPos token.Pos
	// Return is the explicit or materialized return statement of a
	// Return exit.
	Return *ast.ReturnStmt
}

// ExitKind classifies how a no-successor block leaves the function.
type ExitKind int

const (
	ExitNone   ExitKind = iota // not an exit block
	ExitReturn                 // explicit or implicit return
	ExitPanic                  // a panic(...) call cuts the flow
)

// InstrKind discriminates Instr.
type InstrKind int

const (
	KCall   InstrKind = iota // function or method call
	KDefer                   // deferred call (runs at function exit)
	KGo                      // goroutine launch
	KAssign                  // assignment or short variable declaration
	KSend                    // channel send
	KRecv                    // channel receive
	KReturn                  // return statement
)

// Instr is one lowered operation.
type Instr struct {
	Kind   InstrKind
	Node   ast.Node
	Call   *ast.CallExpr // KCall / KDefer / KGo
	Callee *types.Func   // static callee, nil for dynamic calls
	Lhs    []ast.Expr    // KAssign
	Rhs    []ast.Expr    // KAssign
	Define bool          // KAssign via :=
	// Stmt marks a KCall lowered from a standalone expression
	// statement: its results, if any, are discarded.
	Stmt bool
}

// AllocKind is the reason an operation heap-allocates.
type AllocKind int

const (
	// AllocBox converts a concrete non-pointer-shaped value to an
	// interface type; the value escapes to the heap.
	AllocBox AllocKind = iota
	// AllocClosure builds a closure over captured variables.
	AllocClosure
	// AllocAppend may grow its backing array. Capacity records whether
	// the function shows preallocation evidence for the target.
	AllocAppend
	// AllocMake makes a map or channel, or builds a map literal.
	AllocMake
	// AllocConvString converts string↔[]byte/[]rune (or rune→string),
	// copying the contents.
	AllocConvString
	// AllocVariadic calls a variadic function with non-spread
	// arguments, building the argument slice.
	AllocVariadic
)

func (k AllocKind) String() string {
	switch k {
	case AllocBox:
		return "interface boxing"
	case AllocClosure:
		return "capturing closure"
	case AllocAppend:
		return "append"
	case AllocMake:
		return "map/channel allocation"
	case AllocConvString:
		return "string conversion"
	case AllocVariadic:
		return "variadic slice"
	}
	return "allocation"
}

// Alloc is one heap-allocation site.
type Alloc struct {
	Kind AllocKind
	Pos  token.Pos
	Node ast.Node
	// From is the boxed operand type (AllocBox) or converted type
	// (AllocConvString).
	From types.Type
	// Target is the appended-to local variable, when it is a simple
	// local (AllocAppend).
	Target *types.Var
	// Capacity reports preallocation evidence for Target: a
	// make(T, len, cap) definition in the same function, or a
	// caller-provided parameter (AllocAppend).
	Capacity bool
	// Callee is the variadic callee (AllocVariadic).
	Callee *types.Func
	// InLoop and InEntry cache the containing function's placement
	// queries for this site.
	InLoop  bool
	InEntry bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	r := &Result{funcs: make(map[ast.Node]*Func)}
	b := &builder{
		pass:      pass,
		allDefs:   make(map[*types.Var][]ast.Expr),
		paramVars: make(map[*types.Var]bool),
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					r.add(b.build(n, n.Name.Name, cfgs.FuncDecl(n)))
				}
			case *ast.FuncLit:
				r.add(b.build(n, "func literal", cfgs.FuncLit(n)))
			}
			return true
		})
	}
	return r, nil
}

func (r *Result) add(f *Func) {
	if f == nil {
		return
	}
	r.funcs[f.Node] = f
	r.order = append(r.order, f)
}

type builder struct {
	pass *analysis.Pass
	// allDefs and paramVars span every function built so far, so
	// closures resolve capacity evidence for captured variables against
	// their enclosing function's definitions and parameters.
	allDefs   map[*types.Var][]ast.Expr
	paramVars map[*types.Var]bool
}

func (b *builder) build(node ast.Node, name string, g *cfg.CFG) *Func {
	if g == nil || len(g.Blocks) == 0 {
		return nil
	}
	var body *ast.BlockStmt
	var sig *types.Signature
	switch n := node.(type) {
	case *ast.FuncDecl:
		body = n.Body
		if fn, ok := b.pass.TypesInfo.Defs[n.Name].(*types.Func); ok {
			sig, _ = fn.Type().(*types.Signature)
		}
	case *ast.FuncLit:
		body = n.Body
		if tv, ok := b.pass.TypesInfo.Types[n]; ok {
			sig, _ = tv.Type.Underlying().(*types.Signature)
		}
	}
	f := &Func{
		Node: node,
		Name: name,
		Sig:  sig,
		Defs: make(map[*types.Var][]ast.Expr),
	}
	if sig != nil {
		for i := 0; i < sig.Params().Len(); i++ {
			b.paramVars[sig.Params().At(i)] = true
		}
		if recv := sig.Recv(); recv != nil {
			b.paramVars[recv] = true
		}
	}
	f.collectLoops(body)
	for _, cb := range g.Blocks {
		blk := &Block{Index: int(cb.Index)}
		for _, s := range cb.Succs {
			blk.Succs = append(blk.Succs, int(s.Index))
		}
		for _, n := range cb.Nodes {
			b.lower(f, blk, n)
		}
		if len(cb.Succs) == 0 && cb.Live {
			classifyExit(blk, cb)
		}
		f.Blocks = append(f.Blocks, blk)
	}
	if len(g.Blocks[0].Nodes) > 0 {
		f.entry = span{g.Blocks[0].Nodes[0].Pos(), g.Blocks[0].Nodes[len(g.Blocks[0].Nodes)-1].End()}
	}
	b.collectAllocs(f, body)
	b.resolveAppendEvidence(f)
	return f
}

// collectLoops records the extents of for/range bodies lexically inside
// the function (not descending into nested function literals), and the
// function's local definition sites.
func (f *Func) collectLoops(body *ast.BlockStmt) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt:
				if m.Body != nil {
					f.loops = append(f.loops, span{m.Body.Pos(), m.Body.End()})
				}
			case *ast.RangeStmt:
				if m.Body != nil {
					f.loops = append(f.loops, span{m.Body.Pos(), m.Body.End()})
				}
			}
			return true
		})
	}
	walk(body)
}

// classifyExit marks blk as a return or panic exit of its function.
func classifyExit(blk *Block, cb *cfg.Block) {
	for i := len(cb.Nodes) - 1; i >= 0; i-- {
		switch n := cb.Nodes[i].(type) {
		case *ast.ReturnStmt:
			blk.Exit, blk.ExitPos, blk.Return = ExitReturn, n.Pos(), n
			return
		}
	}
	// No return: the builder cut the edge after a no-return call
	// (panic, os.Exit, log.Fatal). Treat an explicit panic as a panic
	// exit; other no-return shapes (select{}, for{}) are not exits a
	// release analysis can do anything about.
	for i := len(cb.Nodes) - 1; i >= 0; i-- {
		if es, ok := cb.Nodes[i].(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					blk.Exit, blk.ExitPos = ExitPanic, call.Pos()
					return
				}
			}
		}
	}
}

// lower appends the instructions of one CFG node to blk, in approximate
// evaluation order, and records local definition sites.
func (b *builder) lower(f *Func, blk *Block, node ast.Node) {
	info := b.pass.TypesInfo
	stmtCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(node, func(m ast.Node) bool {
		if es, ok := m.(*ast.ExprStmt); ok {
			if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok {
				stmtCalls[call] = true
			}
		}
		return true
	})
	ast.Inspect(node, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false // its body is a separate Func
		case *ast.DeferStmt:
			for _, arg := range m.Call.Args {
				b.lower(f, blk, arg)
			}
			blk.Instrs = append(blk.Instrs, Instr{Kind: KDefer, Node: m, Call: m.Call, Callee: staticCallee(info, m.Call)})
			return false
		case *ast.GoStmt:
			for _, arg := range m.Call.Args {
				b.lower(f, blk, arg)
			}
			blk.Instrs = append(blk.Instrs, Instr{Kind: KGo, Node: m, Call: m.Call, Callee: staticCallee(info, m.Call)})
			return false
		case *ast.SendStmt:
			blk.Instrs = append(blk.Instrs, Instr{Kind: KSend, Node: m})
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				blk.Instrs = append(blk.Instrs, Instr{Kind: KRecv, Node: m})
			}
		case *ast.CallExpr:
			if tv, ok := info.Types[m.Fun]; ok && tv.IsType() {
				return true // conversion, not a call
			}
			blk.Instrs = append(blk.Instrs, Instr{Kind: KCall, Node: m, Call: m, Callee: staticCallee(info, m), Stmt: stmtCalls[m]})
		case *ast.AssignStmt:
			in := Instr{Kind: KAssign, Node: m, Lhs: m.Lhs, Rhs: m.Rhs, Define: m.Tok == token.DEFINE}
			blk.Instrs = append(blk.Instrs, in)
			b.recordDefs(f, m.Lhs, m.Rhs)
		case *ast.ValueSpec:
			if len(m.Values) > 0 {
				lhs := make([]ast.Expr, len(m.Names))
				for i, name := range m.Names {
					lhs[i] = name
				}
				blk.Instrs = append(blk.Instrs, Instr{Kind: KAssign, Node: m, Lhs: lhs, Rhs: m.Values, Define: true})
			}
			for _, name := range m.Names {
				if v, ok := info.Defs[name].(*types.Var); ok && len(m.Values) > 0 {
					rhs := m.Values[0]
					if len(m.Values) == len(m.Names) {
						rhs = m.Values[indexOfIdent(m.Names, name)]
					}
					f.Defs[v] = append(f.Defs[v], rhs)
					b.allDefs[v] = append(b.allDefs[v], rhs)
				}
			}
		case *ast.ReturnStmt:
			blk.Instrs = append(blk.Instrs, Instr{Kind: KReturn, Node: m})
		}
		return true
	})
}

func indexOfIdent(names []*ast.Ident, want *ast.Ident) int {
	for i, n := range names {
		if n == want {
			return i
		}
	}
	return 0
}

// recordDefs maps assigned local variables to their defining
// expressions. A multi-value RHS (single call) defines every LHS.
func (b *builder) recordDefs(f *Func, lhs, rhs []ast.Expr) {
	info := b.pass.TypesInfo
	for i, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		var v *types.Var
		if d, ok := info.Defs[id].(*types.Var); ok {
			v = d
		} else if u, ok := info.Uses[id].(*types.Var); ok && !u.IsField() && u.Parent() != nil && u.Parent() != b.pass.Pkg.Scope() {
			v = u
		}
		if v == nil {
			continue
		}
		switch {
		case len(rhs) == len(lhs):
			f.Defs[v] = append(f.Defs[v], rhs[i])
			b.allDefs[v] = append(b.allDefs[v], rhs[i])
		case len(rhs) == 1:
			f.Defs[v] = append(f.Defs[v], rhs[0])
			b.allDefs[v] = append(b.allDefs[v], rhs[0])
		}
	}
}

// staticCallee resolves the static callee of a call, or nil for
// dynamic calls and builtins.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
