package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"whatifolap/internal/lint/ssax"
)

// AllocGuard machine-checks the suite's 0-alloc hot-path claims. The
// overlay kernel, the run kernel, the chain read path, the span
// recorder and the trace-retention decision are pinned at 0 allocs/op
// by AllocsPerRun tests — but those pins cover exactly the shapes the
// benchmarks exercise. AllocGuard checks the files themselves, on
// every build, for SSA-level operations that heap-allocate or force an
// escape:
//
//   - interface boxing of a non-pointer-shaped value (the value
//     escapes; converting a pointer is free and stays legal);
//   - capturing closures built inside loops (a closure object per
//     iteration; hoist it or pre-bind the state on a struct);
//   - append without preallocated-capacity evidence — no
//     make(T, len, cap) definition in the function and not a
//     caller-provided buffer parameter;
//   - map/channel allocation inside loops;
//   - string↔[]byte/[]rune conversions (contents copy per call);
//   - calls to variadic functions without ... (the argument slice is
//     built per call);
//   - calls, inside hot-path loops, to module-local functions whose
//     entry block provably allocates — tracked via the Allocates
//     object fact, so moving the allocation one function away (or one
//     package away) is still caught.
//
// The reviewed escape hatch is //lint:allocok <reason> on the line or
// the line above: amortized per-query setup (not per-cell) is the
// usual justification.
var AllocGuard = &analysis.Analyzer{
	Name:      "allocguard",
	Doc:       "forbid heap-allocating operations (boxing, capturing closures, unprovisioned append, map/string conversions, variadic slices) on declared 0-alloc hot-path files",
	Run:       runAllocGuard,
	Requires:  []*analysis.Analyzer{ssax.Analyzer},
	FactTypes: []analysis.Fact{(*Allocates)(nil)},
}

var allocguardFiles = "internal/trace/trace.go,internal/core/exec.go,internal/chunk/overlay.go,internal/chunk/chain.go,internal/chunk/run.go,internal/obs/retain.go"

func init() {
	AllocGuard.Flags.StringVar(&allocguardFiles, "files",
		allocguardFiles, "comma-separated path suffixes of 0-alloc hot-path files (in addition to //lint:hotpath markers)")
}

// Allocates is an object fact on functions whose entry block contains
// an unconditional heap allocation: every call pays it. Hot-path loops
// calling such a function are flagged even when the allocation lives
// in another package.
type Allocates struct {
	Why string
}

// AFact marks Allocates as a serializable analysis fact.
func (*Allocates) AFact() {}

func (a *Allocates) String() string { return "allocates: " + a.Why }

func runAllocGuard(pass *analysis.Pass) (interface{}, error) {
	res := pass.ResultOf[ssax.Analyzer].(*ssax.Result)
	ix := newDirectiveIndex(pass)

	// Phase 1 (every package): export Allocates facts for functions
	// whose entry block unconditionally allocates.
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.FileStart) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := res.Func(fd)
			if fn == nil {
				continue
			}
			if why := definiteAlloc(fn); why != "" {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					pass.ExportObjectFact(obj, &Allocates{Why: why})
				}
			}
		}
	}

	// Phase 2: check the hot-path files.
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.FileStart) {
			continue
		}
		if !fileMatches(pass.Fset, f, allocguardFiles) && !ix.fileMarked(f, "hotpath") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkAllocFunc(pass, ix, res, res.Func(n))
				}
			case *ast.FuncLit:
				checkAllocFunc(pass, ix, res, res.Func(n))
			}
			return true
		})
	}
	return nil, nil
}

// definiteAlloc returns a description of an unconditional allocation in
// fn's entry block, or "".
func definiteAlloc(fn *ssax.Func) string {
	for _, a := range fn.Allocs {
		if !a.InEntry {
			continue
		}
		switch a.Kind {
		case ssax.AllocBox, ssax.AllocConvString, ssax.AllocVariadic, ssax.AllocMake, ssax.AllocClosure:
			return a.Kind.String() + " in the entry block"
		}
	}
	return ""
}

// checkAllocFunc reports fn's allocation sites under the hot-path
// policy, honoring //lint:allocok justifications.
func checkAllocFunc(pass *analysis.Pass, ix *directiveIndex, res *ssax.Result, fn *ssax.Func) {
	if fn == nil {
		return
	}
	for _, a := range fn.Allocs {
		var msg string
		switch a.Kind {
		case ssax.AllocBox:
			msg = "interface boxing of " + a.From.String() + " on a 0-alloc hot path: the value escapes to the heap; keep the concrete type"
		case ssax.AllocConvString:
			msg = "string conversion copies its contents per call on a 0-alloc hot path; keep one representation"
		case ssax.AllocVariadic:
			callee := "a variadic function"
			if a.Callee != nil {
				callee = a.Callee.Name()
			}
			msg = "call to " + callee + " builds its variadic argument slice per call on a 0-alloc hot path; pass a preallocated slice with ... or add a fixed-arity variant"
		case ssax.AllocClosure:
			if !a.InLoop {
				continue
			}
			msg = "capturing closure built per loop iteration on a 0-alloc hot path; hoist it out of the loop (captures are loop-invariant storage)"
		case ssax.AllocMake:
			if !a.InLoop {
				continue
			}
			msg = "map/channel allocation inside a hot-path loop; hoist and reuse"
		case ssax.AllocAppend:
			if a.Capacity {
				continue
			}
			msg = "append without preallocated-capacity evidence on a 0-alloc hot path; size it with make(T, 0, n) up front (or grow through a caller-provided buffer)"
		default:
			continue
		}
		reportAlloc(pass, ix, a.Pos, msg)
	}

	// Calls in hot loops to functions that provably allocate on entry.
	for _, blk := range fn.Blocks {
		for _, in := range blk.Instrs {
			if in.Kind != ssax.KCall && in.Kind != ssax.KDefer && in.Kind != ssax.KGo {
				continue
			}
			if in.Callee == nil || in.Callee.Pkg() == nil || !fn.InLoop(in.Call.Pos()) {
				continue
			}
			// Only analyzed (module-local or testdata) packages carry
			// Allocates facts, so fact presence is the locality filter.
			var fact Allocates
			if !pass.ImportObjectFact(in.Callee, &fact) {
				continue
			}
			reportAlloc(pass, ix, in.Call.Pos(),
				"call to "+in.Callee.Name()+" ("+fact.String()+") inside a hot-path loop; inline the fast path or hoist the allocation")
		}
	}
}

func reportAlloc(pass *analysis.Pass, ix *directiveIndex, pos token.Pos, msg string) {
	if ok, present := ix.justified(pos, "allocok"); ok {
		return
	} else if present {
		pass.Reportf(pos, "//lint:allocok needs a reason for allocating on a hot path")
		return
	}
	pass.Reportf(pos, "%s, or annotate //lint:allocok <reason>", msg)
}
