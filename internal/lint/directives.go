package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// The suite's escape hatches are //lint: directives. Marker directives
// declare scope; justification directives silence one diagnostic and
// must carry a non-empty reason, so every exception is reviewable:
//
//	//lint:hotpath                  marks a file as a hot path
//	                                (hotpathfmt applies in addition to
//	                                its built-in file list)
//	//lint:monotonic                marks a file as span-recording
//	                                (monotonic applies in addition to
//	                                its built-in file list)
//	//lint:coldfmt <reason>         package-level: this package's fmt/
//	                                reflect use was reviewed and stays
//	                                off the hot path; stops hotpathfmt's
//	                                transitive-reach propagation
//	//lint:hotpathok <reason>       on an import in a hot-path file:
//	                                accept this one formatting-capable
//	                                dependency edge
//	//lint:semdefault <reason>      on a switch: justify non-exhaustive
//	                                handling of a semantics/mode enum
//	//lint:ctxok <reason>           on a context.Background()/TODO()
//	                                call: justify minting a context in
//	                                library code (API-boundary shims)
//	//lint:lockok <reason>          on a blocking call under a lock:
//	                                justify blocking inside the
//	                                critical section
//	//lint:wallclock <reason>       on a wall-clock read in a monotonic
//	                                file: justify the wall-clock use
//	//lint:allocok <reason>         on an allocation site in a 0-alloc
//	                                hot-path file: justify the heap
//	                                allocation (amortized per-query
//	                                setup is the usual reason)
//	//lint:pairok <reason>          on a paired acquire (or the exit it
//	                                leaks through): justify leaving the
//	                                resource unreleased on that path
//	//lint:atomicok <reason>        on a plain access to a field that is
//	                                elsewhere accessed via sync/atomic:
//	                                justify the unsynchronized access
//	                                (pre-publication init, under-lock
//	                                snapshots)
//
// A justification directive applies to the line it is on or to the
// line directly below it (i.e. it may trail the statement or sit on
// its own line immediately above).

// directive is one parsed //lint: comment.
type directive struct {
	name   string
	reason string
	line   int
}

// directiveIndex indexes a pass's //lint: directives by file and line.
type directiveIndex struct {
	fset *token.FileSet
	// byFile maps filename → line → directives on that line.
	byFile map[string]map[int][]directive
	// fileMarks maps filename → set of marker-directive names present
	// anywhere in the file.
	fileMarks map[string]map[string]directive
}

// newDirectiveIndex scans every comment of every file in the pass.
func newDirectiveIndex(pass *analysis.Pass) *directiveIndex {
	ix := &directiveIndex{
		fset:      pass.Fset,
		byFile:    make(map[string]map[int][]directive),
		fileMarks: make(map[string]map[string]directive),
	}
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.FileStart)
		if tf == nil {
			continue
		}
		name := tf.Name()
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				dname, reason, _ := strings.Cut(text, " ")
				d := directive{
					name:   strings.TrimSpace(dname),
					reason: strings.TrimSpace(reason),
					line:   pass.Fset.Position(c.Pos()).Line,
				}
				if d.name == "" {
					continue
				}
				lm := ix.byFile[name]
				if lm == nil {
					lm = make(map[int][]directive)
					ix.byFile[name] = lm
				}
				lm[d.line] = append(lm[d.line], d)
				fm := ix.fileMarks[name]
				if fm == nil {
					fm = make(map[string]directive)
					ix.fileMarks[name] = fm
				}
				if _, dup := fm[d.name]; !dup {
					fm[d.name] = d
				}
			}
		}
	}
	return ix
}

// at returns the named directive governing pos: on the same line, or on
// the line directly above.
func (ix *directiveIndex) at(pos token.Pos, name string) (directive, bool) {
	p := ix.fset.Position(pos)
	lm := ix.byFile[p.Filename]
	if lm == nil {
		return directive{}, false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, d := range lm[line] {
			if d.name == name {
				return d, true
			}
		}
	}
	return directive{}, false
}

// justified reports whether pos carries the named directive with a
// non-empty reason. When the directive is present but reasonless it
// reports false and the caller's diagnostic should say a reason is
// required.
func (ix *directiveIndex) justified(pos token.Pos, name string) (ok, present bool) {
	d, found := ix.at(pos, name)
	if !found {
		return false, false
	}
	return d.reason != "", true
}

// fileMarked reports whether the file containing f carries the named
// marker directive anywhere.
func (ix *directiveIndex) fileMarked(f *ast.File, name string) bool {
	tf := ix.fset.File(f.FileStart)
	if tf == nil {
		return false
	}
	fm := ix.fileMarks[tf.Name()]
	_, ok := fm[name]
	return ok
}

// packageDirective returns the first occurrence of a package-scoped
// directive (e.g. coldfmt) across the pass's files, in file order.
func packageDirective(pass *analysis.Pass, ix *directiveIndex, name string) (directive, bool) {
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.FileStart)
		if tf == nil {
			continue
		}
		if d, ok := ix.fileMarks[tf.Name()][name]; ok {
			return d, true
		}
	}
	return directive{}, false
}

// isTestFile reports whether pos lies in a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// fileMatches reports whether the file containing f ends with one of
// the slash-separated path suffixes in list (comma-separated).
func fileMatches(fset *token.FileSet, f *ast.File, list string) bool {
	tf := fset.File(f.FileStart)
	if tf == nil {
		return false
	}
	name := strings.ReplaceAll(tf.Name(), "\\", "/")
	for _, suf := range strings.Split(list, ",") {
		suf = strings.TrimSpace(suf)
		if suf == "" {
			continue
		}
		if strings.HasSuffix(name, suf) {
			return true
		}
	}
	return false
}

// pkgInList reports whether path appears in the comma-separated list.
func pkgInList(path, list string) bool {
	for _, p := range strings.Split(list, ",") {
		if strings.TrimSpace(p) == path {
			return true
		}
	}
	return false
}
