package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// AtomicField closes the race class `go vet`'s atomic checker misses:
// vet verifies each sync/atomic call in isolation, but says nothing
// when the *same field* is updated through sync/atomic on one path and
// read or written plainly on another — a data race with no syntactic
// tell at either site. The rule here is total: a struct field accessed
// through a sync/atomic function anywhere in the module must be
// accessed atomically everywhere.
//
// Per package the analyzer collects every field whose address feeds a
// sync/atomic Load/Store/Add/Swap/CompareAndSwap/And/Or call, exports
// an AtomicallyAccessed object fact per field plus an AtomicFieldSet
// package fact (the summary importers check), then reports every plain
// selector access to such a field — local or imported. Value arguments
// of atomic calls are plain reads and are checked too:
// atomic.StoreInt64(&s.n, s.n+1) is exactly the bug.
//
// Fields of the typed atomic.Int64/Bool/Pointer family need none of
// this (the type system already forbids plain access) — which is why
// the engine uses them; this analyzer keeps the function-style escape
// hatch from quietly reopening the hole. //lint:atomicok <reason>
// marks a reviewed exception (e.g. a constructor writing before
// publication).
var AtomicField = &analysis.Analyzer{
	Name:      "atomicfield",
	Doc:       "a field accessed through sync/atomic anywhere must be accessed atomically everywhere; mixed plain/atomic access is an undetected data race",
	Run:       runAtomicField,
	FactTypes: []analysis.Fact{(*AtomicallyAccessed)(nil), (*AtomicFieldSet)(nil)},
}

// AtomicallyAccessed is an object fact on a struct field: somewhere in
// the module its address feeds a sync/atomic call.
type AtomicallyAccessed struct{}

// AFact marks AtomicallyAccessed as a serializable analysis fact.
func (*AtomicallyAccessed) AFact() {}

func (*AtomicallyAccessed) String() string { return "accessed atomically" }

// AtomicFieldSet is the package fact summarizing a package's
// atomically-accessed fields as Type.Field names, so cross-package
// accessors are caught even when an object fact cannot be resolved.
type AtomicFieldSet struct {
	Fields []string
}

// AFact marks AtomicFieldSet as a serializable analysis fact.
func (*AtomicFieldSet) AFact() {}

func (a *AtomicFieldSet) String() string {
	return "atomic fields: " + strings.Join(a.Fields, ",")
}

func runAtomicField(pass *analysis.Pass) (interface{}, error) {
	ix := newDirectiveIndex(pass)

	// Pass 1: collect fields whose address feeds a sync/atomic call,
	// and the address-selector occurrences themselves (exempt below).
	local := make(map[*types.Var]token.Pos) // field -> first atomic site
	addrSels := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.FileStart) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := typeutilCallee(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !atomicOpName(fn.Name()) {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if v := fieldOf(pass, sel); v != nil {
				addrSels[sel] = true
				if _, seen := local[v]; !seen {
					local[v] = call.Pos()
				}
			}
			return true
		})
	}

	// Export facts: one per field, plus the package summary. Only this
	// package's own fields are exportable (the facts API forbids
	// foreign objects); atomic access to an imported field still feeds
	// the local map, so same-package mixing is caught either way.
	var names []string
	for v := range local {
		if v.Pkg() != pass.Pkg {
			continue
		}
		pass.ExportObjectFact(v, &AtomicallyAccessed{})
		names = append(names, qualifiedFieldName(v))
	}
	if len(names) > 0 {
		sort.Strings(names)
		pass.ExportPackageFact(&AtomicFieldSet{Fields: names})
	}

	// Pass 2: every remaining plain selector access to an atomic field.
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.FileStart) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || addrSels[sel] {
				return true
			}
			v := fieldOf(pass, sel)
			if v == nil {
				return true
			}
			where := ""
			if pos, ok := local[v]; ok {
				where = "at " + pass.Fset.Position(pos).String()
			} else if atomicElsewhere(pass, v) {
				where = "in package " + v.Pkg().Path()
			} else {
				return true
			}
			if ok, present := ix.justified(sel.Sel.Pos(), "atomicok"); ok {
				return true
			} else if present {
				pass.Reportf(sel.Sel.Pos(), "//lint:atomicok needs a reason for a plain access to an atomic field")
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"field %s is accessed through sync/atomic (%s) but plainly here: mixed access is a data race; use atomic.Load/Store (or a typed atomic), or annotate //lint:atomicok <reason>",
				qualifiedFieldName(v), where)
			return true
		})
	}
	return nil, nil
}

// atomicOpName reports whether name is a sync/atomic accessor function.
func atomicOpName(name string) bool {
	for _, p := range [...]string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// fieldOf resolves sel to the struct field it selects, or nil.
func fieldOf(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
		return nil
	}
	// Qualified access to a field of a package-level struct var goes
	// through Uses.
	if v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// atomicElsewhere reports whether another package exported atomicity
// facts for v — by object fact, falling back to the package summary.
func atomicElsewhere(pass *analysis.Pass, v *types.Var) bool {
	var of AtomicallyAccessed
	if pass.ImportObjectFact(v, &of) {
		return true
	}
	if v.Pkg() == nil || v.Pkg() == pass.Pkg {
		return false
	}
	var pf AtomicFieldSet
	if !pass.ImportPackageFact(v.Pkg(), &pf) {
		return false
	}
	name := qualifiedFieldName(v)
	for _, f := range pf.Fields {
		if f == name {
			return true
		}
	}
	return false
}

// qualifiedFieldName renders v as Type.Field when the owning struct is
// a named type, else just the field name.
func qualifiedFieldName(v *types.Var) string {
	// The owner is recoverable through the field's position inside its
	// struct type; types.Var does not link back, so scan the package
	// scope for a named struct declaring exactly this object.
	if pkg := v.Pkg(); pkg != nil {
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == v {
					return tn.Name() + "." + v.Name()
				}
			}
		}
	}
	return v.Name()
}
