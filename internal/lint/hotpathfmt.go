package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// HotpathFmt forbids formatting machinery on the engine's declared hot
// paths. The span recorder (internal/trace/trace.go), the staged
// executor's scan loop (internal/core/exec.go), the overlay write
// path (internal/chunk/overlay.go), the scenario layer-chain read
// path (internal/chunk/chain.go), the run-encoded chunk iterator
// (internal/chunk/run.go) and the per-query trace-retention decision
// (internal/obs/retain.go) hold the suite's 0-alloc-per-cell
// guarantee; an fmt import there puts reflection-based formatting on
// the per-chunk path. The analyzer replaces verify.sh's old grep with
// an import-graph check:
//
//  1. A hot-path file (built-in list + //lint:hotpath marker) must not
//     import fmt, reflect or log directly. No escape hatch.
//  2. It must not import any package — module-local shims included —
//     from which fmt/reflect is reachable through packages that have
//     not been reviewed as formatting-off-hot-path (//lint:coldfmt).
//     This catches transitive re-exports: a helper package that wraps
//     fmt.Sprintf carries a ReachesFormatting fact and is rejected at
//     the hot-path import site unless the edge is annotated
//     //lint:hotpathok <reason>.
//  3. Function bodies in hot-path files must not call errors.New,
//     fmt.* or reflect.* (per-call allocation); package-level sentinel
//     errors remain allowed.
var HotpathFmt = &analysis.Analyzer{
	Name:      "hotpathfmt",
	Doc:       "forbid fmt/reflect/log and per-call error construction on declared hot-path files, including transitively re-exported formatting",
	Run:       runHotpathFmt,
	FactTypes: []analysis.Fact{(*ReachesFormatting)(nil)},
}

var (
	hotpathFiles = "internal/trace/trace.go,internal/core/exec.go,internal/chunk/overlay.go,internal/chunk/chain.go,internal/chunk/run.go,internal/obs/retain.go"
	hotpathRoot  = ModulePath
)

func init() {
	HotpathFmt.Flags.StringVar(&hotpathFiles, "files",
		hotpathFiles, "comma-separated path suffixes of hot-path files (in addition to //lint:hotpath markers)")
	HotpathFmt.Flags.StringVar(&hotpathRoot, "module",
		hotpathRoot, "module import-path prefix treated as local when walking formatting reach")
}

// forbiddenHotImports are packages that must never be imported from a
// hot-path file: fmt and reflect put reflection-based formatting on the
// scan path, log formats and locks.
var forbiddenHotImports = map[string]string{
	"fmt":     "reflection-based formatting on the per-chunk path",
	"reflect": "reflection on the per-chunk path",
	"log":     "formats and serializes on the per-chunk path",
}

// ReachesFormatting is a package fact: fmt or reflect is reachable from
// the package's import graph through packages not reviewed as
// //lint:coldfmt. Chain records one witness path, ending at the
// formatting package.
type ReachesFormatting struct {
	Chain []string
}

// AFact marks ReachesFormatting as a serializable analysis fact.
func (*ReachesFormatting) AFact() {}

func (f *ReachesFormatting) String() string {
	return "reaches " + strings.Join(f.Chain, " → ")
}

func runHotpathFmt(pass *analysis.Pass) (interface{}, error) {
	ix := newDirectiveIndex(pass)

	// Phase 1: compute and export this package's ReachesFormatting
	// fact, so downstream hot-path files can reject the edge. A
	// //lint:coldfmt declaration (with a reason) stops propagation:
	// the package's formatting use has been reviewed as off-hot-path.
	coldfmt, coldfmtPresent := packageDirective(pass, ix, "coldfmt")
	reviewed := coldfmtPresent && coldfmt.reason != ""
	if coldfmtPresent && coldfmt.reason == "" {
		pass.Reportf(pass.Files[0].Package,
			"%s declares //lint:coldfmt without a reason; state why its formatting stays off the hot path", pass.Pkg.Path())
	}
	if !reviewed {
		if chain := formattingChain(pass); chain != nil {
			pass.ExportPackageFact(&ReachesFormatting{Chain: chain})
		}
	}

	// Phase 2: check hot-path files.
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.FileStart) {
			continue
		}
		if !fileMatches(pass.Fset, f, hotpathFiles) && !ix.fileMarked(f, "hotpath") {
			continue
		}
		checkHotFile(pass, ix, f)
	}
	return nil, nil
}

// formattingChain returns a witness import path from this package to
// fmt/reflect, or nil if formatting is unreachable. Direct imports of
// the forbidden set win; otherwise the first (path-sorted) import
// carrying a ReachesFormatting fact extends its chain.
func formattingChain(pass *analysis.Pass) []string {
	imports := append([]*types.Package(nil), pass.Pkg.Imports()...)
	sort.Slice(imports, func(i, j int) bool { return imports[i].Path() < imports[j].Path() })
	for _, imp := range imports {
		if p := imp.Path(); p == "fmt" || p == "reflect" {
			return []string{pass.Pkg.Path(), p}
		}
	}
	for _, imp := range imports {
		var fact ReachesFormatting
		if pass.ImportPackageFact(imp, &fact) {
			return append([]string{pass.Pkg.Path()}, fact.Chain...)
		}
	}
	return nil
}

func checkHotFile(pass *analysis.Pass, ix *directiveIndex, f *ast.File) {
	// Imports: forbidden directly, or transitively formatting-capable.
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if why, bad := forbiddenHotImports[path]; bad {
			pass.Reportf(imp.Pos(),
				"hot-path file imports %q: %s; format at exposition time instead (trace/render.go, the server's prom/slowlog surfaces)",
				path, why)
			continue
		}
		ipkg := importedPackage(pass, path)
		if ipkg == nil {
			continue
		}
		var fact ReachesFormatting
		if !pass.ImportPackageFact(ipkg, &fact) {
			continue
		}
		if ok, present := ix.justified(imp.Pos(), "hotpathok"); ok {
			continue
		} else if present {
			pass.Reportf(imp.Pos(), "//lint:hotpathok needs a reason explaining why %q cannot format on the hot path", path)
			continue
		}
		pass.Reportf(imp.Pos(),
			"hot-path file imports %q, which reaches formatting (%s); review the dependency and annotate //lint:hotpathok <reason>, or declare the package //lint:coldfmt after review",
			path, fact.String())
	}

	// Per-call allocation: errors.New / fmt.* / reflect.* inside
	// function bodies. Package-level sentinel errors stay legal, so
	// only calls lexically inside a FuncDecl body are flagged.
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := typeutilCallee(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "errors":
				if fn.Name() == "New" {
					pass.Reportf(call.Pos(),
						"errors.New allocates per call on a hot path; hoist to a package-level sentinel error or return a static error")
				}
			case "fmt", "reflect":
				pass.Reportf(call.Pos(),
					"%s.%s on a hot path formats/reflects per call; move formatting to exposition time", fn.Pkg().Name(), fn.Name())
			}
			return true
		})
	}
}

// importedPackage resolves an import path to the *types.Package among
// the current package's direct imports.
func importedPackage(pass *analysis.Pass, path string) *types.Package {
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() == path {
			return imp
		}
	}
	return nil
}

// typeutilCallee resolves the static callee of a call, or nil for
// dynamic calls. (A trimmed-down typeutil.StaticCallee that also works
// for qualified identifiers through dot imports.)
func typeutilCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
