package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// SemExhaustive enforces exhaustive handling of the paper's enums: the
// five query semantics of §3 (static / forward / extended forward /
// backward / extended backward) and the visual/non-visual evaluation
// mode. Every switch whose tag has one of the configured enum types
// must name every constant of that type (a default clause is allowed
// in addition, as a belt-and-braces unknown-value guard) or carry
// //lint:semdefault <reason>. Adding a sixth semantics then fails the
// build at every dispatch site instead of silently falling into a
// default — the class of hierarchy-semantics bug the XOLAP
// summarizability literature warns about.
var SemExhaustive = &analysis.Analyzer{
	Name: "semexhaustive",
	Doc:  "switches over the query-semantics and eval-mode enums must cover every constant or justify //lint:semdefault",
	Run:  runSemExhaustive,
}

var semEnums = ModulePath + "/internal/perspective.Semantics," + ModulePath + "/internal/perspective.Mode"

func init() {
	SemExhaustive.Flags.StringVar(&semEnums, "enums",
		semEnums, "comma-separated pkgpath.TypeName list of enum types requiring exhaustive switches")
}

func runSemExhaustive(pass *analysis.Pass) (interface{}, error) {
	targets := make(map[string]bool)
	for _, e := range strings.Split(semEnums, ",") {
		if e = strings.TrimSpace(e); e != "" {
			targets[e] = true
		}
	}
	ix := newDirectiveIndex(pass)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.TypesInfo.Types[sw.Tag]
			if !ok {
				return true
			}
			named := enumNamed(tv.Type)
			if named == nil {
				return true
			}
			key := enumKey(named)
			if !targets[key] {
				return true
			}
			checkEnumSwitch(pass, ix, sw, named, key)
			return true
		})
	}
	return nil, nil
}

// enumNamed unwraps aliases and returns the named type of an
// integer-kinded enum tag, or nil.
func enumNamed(t types.Type) *types.Named {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	return named
}

func enumKey(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// enumConstants returns the package-level constants of the enum type
// declared in its defining package, keyed by exact constant value.
// Only exported constants are visible across packages (export data
// drops unexported ones), so enum constants must be exported — ours
// are.
func enumConstants(named *types.Named) map[string]string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil
	}
	out := make(map[string]string)
	scope := obj.Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		key := c.Val().ExactString()
		// Prefer the first name per value (aliased constants collapse).
		if _, dup := out[key]; !dup {
			out[key] = name
		}
	}
	return out
}

func checkEnumSwitch(pass *analysis.Pass, ix *directiveIndex, sw *ast.SwitchStmt, named *types.Named, key string) {
	want := enumConstants(named)
	if len(want) == 0 {
		return
	}
	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			tv, ok := pass.TypesInfo.Types[expr]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
				// A non-constant case arm makes coverage undecidable;
				// leave the switch to the human.
				return
			}
			covered[tv.Value.ExactString()] = true
		}
	}
	var missing []string
	for val, name := range want {
		if !covered[val] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)

	if ok, present := ix.justified(sw.Pos(), "semdefault"); ok {
		return
	} else if present {
		pass.Reportf(sw.Pos(), "//lint:semdefault on a switch over %s needs a reason", key)
		return
	}
	pass.Reportf(sw.Pos(),
		"switch over %s is not exhaustive: missing %s; handle every semantics/mode explicitly or justify with //lint:semdefault <reason>",
		key, strings.Join(missing, ", "))
}
