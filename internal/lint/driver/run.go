package driver

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"reflect"
	"sort"

	"golang.org/x/tools/go/analysis"
)

// factStore holds in-memory analysis facts across packages. Facts are
// keyed by (object|package, concrete fact type), matching the
// framework's semantics: one fact of each type per entity.
type factStore struct {
	obj map[types.Object]map[reflect.Type]analysis.Fact
	pkg map[*types.Package]map[reflect.Type]analysis.Fact
}

func newFactStore() *factStore {
	return &factStore{
		obj: make(map[types.Object]map[reflect.Type]analysis.Fact),
		pkg: make(map[*types.Package]map[reflect.Type]analysis.Fact),
	}
}

func copyFact(dst, src analysis.Fact) bool {
	dv := reflect.ValueOf(dst)
	sv := reflect.ValueOf(src)
	if dv.Type() != sv.Type() || dv.Kind() != reflect.Pointer {
		return false
	}
	dv.Elem().Set(sv.Elem())
	return true
}

// Run executes the analyzers (and their Requires closures) over pkgs
// in the given order, which must be dependency-first so that package
// facts flow to importers. It returns the collected diagnostics in
// deterministic (package, position) order.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	facts := newFactStore()
	var diags []Diagnostic

	type memoKey struct {
		pkg *Package
		a   *analysis.Analyzer
	}
	results := make(map[memoKey]interface{})
	var runOne func(p *Package, a *analysis.Analyzer) (interface{}, error)
	runOne = func(p *Package, a *analysis.Analyzer) (interface{}, error) {
		key := memoKey{p, a}
		if r, ok := results[key]; ok {
			return r, nil
		}
		resultOf := make(map[*analysis.Analyzer]interface{})
		for _, req := range a.Requires {
			r, err := runOne(p, req)
			if err != nil {
				return nil, err
			}
			resultOf[req] = r
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      p.Files,
			Pkg:        p.Types,
			TypesInfo:  p.Info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   resultOf,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, Diagnostic{Pkg: p, Analyzer: a, Diagnostic: d})
			},
			ReadFile: os.ReadFile,
			ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
				if m := facts.obj[obj]; m != nil {
					if f, ok := m[reflect.TypeOf(fact)]; ok {
						return copyFact(fact, f)
					}
				}
				return false
			},
			ImportPackageFact: func(pkg *types.Package, fact analysis.Fact) bool {
				if m := facts.pkg[pkg]; m != nil {
					if f, ok := m[reflect.TypeOf(fact)]; ok {
						return copyFact(fact, f)
					}
				}
				return false
			},
			ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
				m := facts.obj[obj]
				if m == nil {
					m = make(map[reflect.Type]analysis.Fact)
					facts.obj[obj] = m
				}
				m[reflect.TypeOf(fact)] = fact
			},
			ExportPackageFact: func(fact analysis.Fact) {
				m := facts.pkg[p.Types]
				if m == nil {
					m = make(map[reflect.Type]analysis.Fact)
					facts.pkg[p.Types] = m
				}
				m[reflect.TypeOf(fact)] = fact
			},
			AllPackageFacts: func() []analysis.PackageFact {
				var out []analysis.PackageFact
				for pkg, m := range facts.pkg {
					for _, f := range m {
						out = append(out, analysis.PackageFact{Package: pkg, Fact: f})
					}
				}
				return out
			},
			AllObjectFacts: func() []analysis.ObjectFact {
				var out []analysis.ObjectFact
				for obj, m := range facts.obj {
					for _, f := range m {
						out = append(out, analysis.ObjectFact{Object: obj, Fact: f})
					}
				}
				return out
			},
		}
		r, err := a.Run(pass)
		if err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, p.Path, err)
		}
		results[key] = r
		return r, nil
	}

	for _, p := range pkgs {
		for _, a := range analyzers {
			if _, err := runOne(p, a); err != nil {
				return diags, err
			}
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	return diags, nil
}

// ApplyFixes applies every suggested fix among diags to the files on
// disk, skipping fixes that overlap an already-applied edit. It
// returns the number of fixes applied.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic) (int, error) {
	type edit struct {
		start, end int
		text       []byte
	}
	byFile := make(map[string][]edit)
	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			for _, te := range fix.TextEdits {
				start := fset.Position(te.Pos)
				endPos := te.End
				if !endPos.IsValid() {
					endPos = te.Pos
				}
				end := fset.Position(endPos)
				if start.Filename == "" || end.Filename != start.Filename {
					continue
				}
				byFile[start.Filename] = append(byFile[start.Filename],
					edit{start: start.Offset, end: end.Offset, text: te.NewText})
			}
		}
	}
	applied := 0
	for name, edits := range byFile {
		data, err := os.ReadFile(name)
		if err != nil {
			return applied, err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start < edits[j].start })
		var out []byte
		prev := 0
		for _, e := range edits {
			if e.start < prev || e.end > len(data) {
				continue // overlapping or out-of-range edit: skip
			}
			out = append(out, data[prev:e.start]...)
			out = append(out, e.text...)
			prev = e.end
			applied++
		}
		out = append(out, data[prev:]...)
		if err := os.WriteFile(name, out, 0o644); err != nil {
			return applied, err
		}
	}
	return applied, nil
}
