// Package driver is whatiflint's offline analysis driver: it loads Go
// packages with the standard parser and type-checker (no go/packages,
// no network, no export data) and runs go/analysis analyzers over them
// with in-memory fact propagation.
//
// Two loading modes:
//
//   - Module mode (New): packages of this repository resolve against
//     the module root, vendored dependencies against vendor/, and
//     everything else against GOROOT source via the "source" importer.
//   - Testdata mode (NewTestdata): import paths resolve against a
//     testdata/src root, mirroring analysistest's layout, so analyzer
//     tests can exercise multi-package fact flows.
//
// The go vet -vettool path (unitchecker) remains the production gate;
// this driver backs cmd/whatiflint's standalone mode, -fix, and the
// linttest harness.
package driver

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and caches packages. It implements types.ImporterFrom.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string // import-path prefix mapped onto ModuleDir ("" in testdata mode)
	ModuleDir  string
	ExtraRoot  string // testdata src root ("" in module mode)
	VendorDir  string // ModuleDir/vendor when present

	std     types.ImporterFrom
	pkgs    map[string]*Package
	order   []*Package // dependency-first load order
	loading map[string]bool
}

// New returns a module-mode loader rooted at dir (which must contain
// go.mod).
func New(dir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("driver: %w", err)
	}
	m := regexp.MustCompile(`(?m)^module\s+(\S+)`).FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("driver: no module directive in %s/go.mod", dir)
	}
	l := newLoader()
	l.ModulePath = string(m[1])
	l.ModuleDir = dir
	if fi, err := os.Stat(filepath.Join(dir, "vendor")); err == nil && fi.IsDir() {
		l.VendorDir = filepath.Join(dir, "vendor")
	}
	return l, nil
}

// NewTestdata returns a loader resolving import paths under srcRoot
// (testdata/src), analysistest-style.
func NewTestdata(srcRoot string) *Loader {
	l := newLoader()
	l.ExtraRoot = srcRoot
	return l
}

func newLoader() *Loader {
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l
}

// Order returns every package loaded so far, dependencies first.
func (l *Loader) Order() []*Package { return l.order }

// Load loads the package with the given import path (resolvable
// against the module, vendor, or testdata root).
func (l *Loader) Load(path string) (*Package, error) {
	if _, err := l.Import(path); err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("driver: %s resolved outside the analysis roots", path)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleDir, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	dir := l.resolveDir(path)
	if dir == "" {
		return l.std.ImportFrom(path, srcDir, mode)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("driver: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	p, err := l.loadDir(dir, path)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

// resolveDir maps an import path to a source directory, or "" for the
// standard library.
func (l *Loader) resolveDir(path string) string {
	if l.ModulePath != "" {
		if path == l.ModulePath {
			return l.ModuleDir
		}
		if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
			return filepath.Join(l.ModuleDir, filepath.FromSlash(rest))
		}
	}
	if l.ExtraRoot != "" {
		dir := filepath.Join(l.ExtraRoot, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir
		}
	}
	if l.VendorDir != "" {
		dir := filepath.Join(l.VendorDir, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir
		}
	}
	return ""
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// loadDir parses and type-checks the package in dir.
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("driver: %w", err)
	}
	bctx := build.Default
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if ok, err := bctx.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("driver: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("driver: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Instances:    make(map[*ast.Ident]types.Instance),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		FileVersions: make(map[*ast.File]string),
	}
	var typeErrs []error
	conf := types.Config{
		Importer:    l,
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
		FakeImportC: true,
		Error:       func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("driver: type-checking %s: %w", path, errors.Join(typeErrs...))
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	l.order = append(l.order, p)
	return p, nil
}

// Diagnostic pairs an analyzer finding with its package of origin.
type Diagnostic struct {
	Pkg      *Package
	Analyzer *analysis.Analyzer
	analysis.Diagnostic
}

// Position renders the diagnostic's position.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}
