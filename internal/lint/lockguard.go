package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"
)

// LockGuard encodes the buffer pool's "I/O outside the lock" rule: the
// chunk store's mutexes order map/tier bookkeeping only; fault-in I/O,
// channel handshakes and other blocking operations must happen with
// the lock released (spill.go's fault-in drops the lock around ReadAt
// and re-acquires it to publish — that shape is the invariant).
//
// The analyzer runs a forward may-held dataflow over each function's
// control-flow graph: mu.Lock()/RLock() acquires, a non-deferred
// Unlock releases (defer mu.Unlock() holds to function exit by
// design), and any potentially blocking operation reached while a
// lock may be held is reported:
//
//   - channel sends and receives
//   - calls into blocked packages (simdisk: every call is priced I/O;
//     segment: every exported entry point does file I/O)
//   - ReadAt / WriteAt / Sync methods (file and spill-tier I/O)
//   - ReadChunkAt / WriteChunk methods (storage-tier fault-in and
//     write-back — the chunk.Tier read/write surface)
//   - sync.WaitGroup.Wait and time.Sleep
//
// Annotate //lint:lockok <reason> for a reviewed exception.
var LockGuard = &analysis.Analyzer{
	Name:     "lockguard",
	Doc:      "no blocking calls (tier fault-in/write-back I/O, channel ops, simdisk reads) while holding chunk-store/buffer-pool mutexes",
	Run:      runLockGuard,
	Requires: []*analysis.Analyzer{ctrlflow.Analyzer},
}

var (
	lockguardPkgs      = ModulePath + "/internal/chunk," + ModulePath + "/internal/segment"
	lockguardBlockPkgs = ModulePath + "/internal/simdisk," + ModulePath + "/internal/segment," +
		ModulePath + "/internal/obs"
)

func init() {
	LockGuard.Flags.StringVar(&lockguardPkgs, "pkgs",
		lockguardPkgs, "comma-separated package paths whose lock regions are checked")
	LockGuard.Flags.StringVar(&lockguardBlockPkgs, "blockpkgs",
		lockguardBlockPkgs, "comma-separated package paths whose every call counts as blocking I/O")
}

func runLockGuard(pass *analysis.Pass) (interface{}, error) {
	if !pkgInList(pass.Pkg.Path(), lockguardPkgs) {
		return nil, nil
	}
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	ix := newDirectiveIndex(pass)
	la := &lockAnalysis{pass: pass, ix: ix, reported: make(map[token.Pos]bool)}

	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.FileStart) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					la.analyze(cfgs.FuncDecl(n))
				}
			case *ast.FuncLit:
				la.analyze(cfgs.FuncLit(n))
			}
			return true
		})
	}
	return nil, nil
}

type lockAnalysis struct {
	pass     *analysis.Pass
	ix       *directiveIndex
	reported map[token.Pos]bool
}

// lockState maps a mutex's receiver rendering ("s.mu") to the position
// of the Lock call that may hold it.
type lockState map[string]token.Pos

func cloneState(s lockState) lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// mergeInto unions src into dst, reporting whether dst grew.
func mergeInto(dst, src lockState) bool {
	grew := false
	for k, v := range src {
		if _, ok := dst[k]; !ok {
			dst[k] = v
			grew = true
		}
	}
	return grew
}

// analyze runs the may-held fixpoint over g, then a reporting pass.
func (la *lockAnalysis) analyze(g *cfg.CFG) {
	if g == nil || len(g.Blocks) == 0 {
		return
	}
	in := make([]lockState, len(g.Blocks))
	in[0] = lockState{}
	work := []*cfg.Block{g.Blocks[0]}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := cloneState(in[b.Index])
		for _, n := range b.Nodes {
			la.transfer(out, n, false)
		}
		for _, succ := range b.Succs {
			if in[succ.Index] == nil {
				in[succ.Index] = cloneState(out)
				work = append(work, succ)
			} else if mergeInto(in[succ.Index], out) {
				work = append(work, succ)
			}
		}
	}
	for i, b := range g.Blocks {
		if in[i] == nil {
			continue
		}
		st := cloneState(in[i])
		for _, n := range b.Nodes {
			la.transfer(st, n, true)
		}
	}
}

// transfer interprets one CFG node: lock acquisitions/releases mutate
// held; blocking operations are reported when report is set and a lock
// may be held.
func (la *lockAnalysis) transfer(held lockState, n ast.Node, report bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			// A different function; locks don't flow into it here.
			return false
		case *ast.DeferStmt:
			// The deferred call runs at function exit: a deferred
			// Unlock intentionally does NOT clear the held state, and
			// a deferred blocking call is not blocking here. Its
			// arguments, however, are evaluated now.
			for _, arg := range m.Call.Args {
				la.transfer(held, arg, report)
			}
			return false
		case *ast.GoStmt:
			// Same shape: the goroutine body doesn't block the caller,
			// the arguments are evaluated now.
			for _, arg := range m.Call.Args {
				la.transfer(held, arg, report)
			}
			return false
		case *ast.SendStmt:
			la.blockingOp(held, m.Pos(), "channel send", report)
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				la.blockingOp(held, m.Pos(), "channel receive", report)
			}
		case *ast.CallExpr:
			la.call(held, m, report)
		}
		return true
	})
}

func (la *lockAnalysis) call(held lockState, call *ast.CallExpr, report bool) {
	fn := typeutilCallee(la.pass, call)
	if fn == nil {
		return
	}
	if kind, key := la.mutexOp(call, fn); kind != "" {
		switch kind {
		case "lock":
			held[key] = call.Pos()
		case "unlock":
			delete(held, key)
		}
		return
	}
	if desc := blockingCallee(fn, la.pass.Pkg.Path()); desc != "" {
		la.blockingOp(held, call.Pos(), desc, report)
	}
}

// mutexOp classifies a call as a sync.Mutex/RWMutex Lock/Unlock on a
// rendered receiver key, or returns "".
func (la *lockAnalysis) mutexOp(call *ast.CallExpr, fn *types.Func) (kind, key string) {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	recvName := namedTypeName(sig.Recv().Type())
	if recvName != "Mutex" && recvName != "RWMutex" {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	key = renderExpr(la.pass.Fset, sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		return "lock", key
	case "Unlock", "RUnlock":
		return "unlock", key
	}
	return "", ""
}

// blockingCallee describes why fn blocks, or returns "". selfPkg is
// the package under analysis: a blocked package's own internal calls
// are not "calls into the blocked package" — its lock discipline is
// checked directly via the pkgs list instead.
func blockingCallee(fn *types.Func, selfPkg string) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	if pkg.Path() == "time" && fn.Name() == "Sleep" {
		return "time.Sleep"
	}
	if pkg.Path() != selfPkg && pkgInList(pkg.Path(), lockguardBlockPkgs) {
		return pkg.Name() + " I/O (" + pkg.Name() + "." + fn.Name() + ")"
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	switch fn.Name() {
	case "ReadAt", "WriteAt", "Sync":
		return fn.Name() + " I/O"
	case "ReadChunkAt", "WriteChunk":
		return fn.Name() + " tier I/O"
	case "Wait":
		if pkg.Path() == "sync" && namedTypeName(sig.Recv().Type()) == "WaitGroup" {
			return "sync.WaitGroup.Wait"
		}
	}
	return ""
}

func (la *lockAnalysis) blockingOp(held lockState, pos token.Pos, desc string, report bool) {
	if !report || len(held) == 0 || la.reported[pos] {
		return
	}
	la.reported[pos] = true
	if ok, present := la.ix.justified(pos, "lockok"); ok {
		return
	} else if present {
		la.pass.Reportf(pos, "//lint:lockok needs a reason for blocking inside a critical section")
		return
	}
	// Name one witness lock deterministically (smallest key).
	var key string
	for k := range held {
		if key == "" || k < key {
			key = k
		}
	}
	la.pass.Reportf(pos,
		"%s while %s may be held (locked at %s); do the blocking work outside the critical section and re-acquire to publish, or annotate //lint:lockok <reason>",
		desc, key, la.pass.Fset.Position(held[key]))
}

// namedTypeName returns the name of the (possibly pointered) named
// type, or "".
func namedTypeName(t types.Type) string {
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// renderExpr renders a receiver expression compactly for lock keys.
func renderExpr(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "mutex"
	}
	return strings.Join(strings.Fields(buf.String()), "")
}
