package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// CtxFlow enforces context discipline in the engine's library layers
// (internal/core, internal/server, internal/mdx):
//
//  1. Library code must not mint contexts: context.Background() and
//     context.TODO() sever the caller's cancellation, so a stuck store
//     read or a parallel scan would outlive the query that asked for
//     it. They are allowed only in package main, in tests, and at
//     explicitly annotated API-boundary shims (//lint:ctxok <reason>).
//  2. A function that loops over chunk reads (calls to the configured
//     store-read methods inside a for/range) must have access to a
//     context.Context — directly as a parameter or through a
//     parameter/receiver struct field (core.ExecContext,
//     mdx.RunContext) — so cancellation can be observed between
//     chunk reads, the granularity the staged executor promises.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "library code must thread the caller's context: no Background()/TODO() outside main/tests, and chunk-read loops must accept a context",
	Run:  runCtxFlow,
}

var (
	ctxflowPkgs = strings.Join([]string{
		ModulePath + "/internal/core",
		ModulePath + "/internal/server",
		ModulePath + "/internal/mdx",
	}, ",")
	ctxflowReadCalls = strings.Join([]string{
		ModulePath + "/internal/chunk.Store.ReadChunk",
		ModulePath + "/internal/chunk.Store.ReadChunkInfo",
	}, ",")
)

func init() {
	CtxFlow.Flags.StringVar(&ctxflowPkgs, "pkgs",
		ctxflowPkgs, "comma-separated package paths the context rules apply to")
	CtxFlow.Flags.StringVar(&ctxflowReadCalls, "readcalls",
		ctxflowReadCalls, "comma-separated pkgpath.Type.Method chunk-read calls that require a context when looped over")
}

// readCall identifies one configured store-read method.
type readCall struct {
	pkg, typ, method string
}

func parseReadCalls(list string) []readCall {
	var out []readCall
	for _, s := range strings.Split(list, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		dot := strings.LastIndex(s, ".")
		if dot < 0 {
			continue
		}
		rest, method := s[:dot], s[dot+1:]
		dot = strings.LastIndex(rest, ".")
		if dot < 0 {
			continue
		}
		out = append(out, readCall{pkg: rest[:dot], typ: rest[dot+1:], method: method})
	}
	return out
}

func runCtxFlow(pass *analysis.Pass) (interface{}, error) {
	if !pkgInList(pass.Pkg.Path(), ctxflowPkgs) {
		return nil, nil
	}
	isMain := pass.Pkg.Name() == "main"
	reads := parseReadCalls(ctxflowReadCalls)
	ix := newDirectiveIndex(pass)

	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.FileStart) {
			continue
		}
		// Rule 1: no context minting in library code.
		if !isMain {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := typeutilCallee(pass, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
					return true
				}
				if fn.Name() != "Background" && fn.Name() != "TODO" {
					return true
				}
				if ok, present := ix.justified(call.Pos(), "ctxok"); ok {
					return true
				} else if present {
					pass.Reportf(call.Pos(), "//lint:ctxok needs a reason for minting a context in library code")
					return true
				}
				pass.Reportf(call.Pos(),
					"context.%s() in library code severs the caller's cancellation; thread the caller's ctx (or annotate an API-boundary shim with //lint:ctxok <reason>)",
					fn.Name())
				return true
			})
		}

		// Rule 2: chunk-read loops need a context in reach.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if funcHasContextAccess(pass, fd) {
				continue
			}
			checkChunkLoops(pass, fd, reads)
		}
	}
	return nil, nil
}

// checkChunkLoops reports configured store-read calls made inside a
// loop of a function with no context access.
func checkChunkLoops(pass *analysis.Pass, fd *ast.FuncDecl, reads []readCall) {
	var inLoop func(n ast.Node, loops int)
	inLoop = func(n ast.Node, loops int) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ForStmt:
				if m.Body != nil {
					inLoop(m.Body, loops+1)
				}
				return false
			case *ast.RangeStmt:
				if m.Body != nil {
					inLoop(m.Body, loops+1)
				}
				return false
			case *ast.FuncLit:
				// A closure gets its own context discipline only if it
				// loops itself; don't double-report through captures.
				return false
			case *ast.CallExpr:
				if loops == 0 {
					return true
				}
				if rc, ok := matchReadCall(pass, m, reads); ok {
					pass.Reportf(m.Pos(),
						"%s.%s inside a loop in %s, which has no context.Context in reach; accept a ctx (or an ExecContext/RunContext) so cancellation is observed between chunk reads",
						rc.typ, rc.method, fd.Name.Name)
				}
			}
			return true
		})
	}
	inLoop(fd.Body, 0)
}

func matchReadCall(pass *analysis.Pass, call *ast.CallExpr, reads []readCall) (readCall, bool) {
	fn := typeutilCallee(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return readCall{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return readCall{}, false
	}
	recv := sig.Recv().Type()
	if ptr, ok := types.Unalias(recv).(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := types.Unalias(recv).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return readCall{}, false
	}
	for _, rc := range reads {
		if named.Obj().Pkg().Path() == rc.pkg && named.Obj().Name() == rc.typ && fn.Name() == rc.method {
			return rc, true
		}
	}
	return readCall{}, false
}

// funcHasContextAccess reports whether the function can observe a
// caller-supplied context: a context.Context parameter or receiver, or
// a parameter/receiver struct (possibly pointer) with a
// context.Context field.
func funcHasContextAccess(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil && typeCarriesContext(recv.Type()) {
		return true
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if typeCarriesContext(params.At(i).Type()) {
			return true
		}
	}
	return false
}

func typeCarriesContext(t types.Type) bool {
	if isContextType(t) {
		return true
	}
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isContextType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
