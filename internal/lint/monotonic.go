package lint

import (
	"go/ast"
	"go/constant"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// Monotonic keeps span timestamps on the monotonic clock. The span
// recorder prices every span as a time.Since offset against the trace
// epoch; a wall-clock read on a recording path (Unix*, Format) or a
// monotonic-stripping transform (Round, Truncate) silently breaks span
// math across NTP steps and suspend/resume. Files on the recording
// path — the built-in list plus files marked //lint:monotonic — may
// construct and compare times only through the monotonic-safe API
// (time.Now as an epoch, time.Since, Time.Sub).
//
// Round(0)/Truncate(0) — the idiom for deliberately stripping the
// monotonic reading — carries a suggested fix that deletes the call,
// which preserves the monotonic clock and is the safe -fix.
// Everything else needs a human: annotate //lint:wallclock <reason>
// for a reviewed wall-clock read.
var Monotonic = &analysis.Analyzer{
	Name: "monotonic",
	Doc:  "span-recording files must use the monotonic clock: no wall-clock extraction (Unix*, Format) or monotonic stripping (Round, Truncate)",
	Run:  runMonotonic,
}

var monotonicFiles = "internal/trace/trace.go,internal/core/exec.go,internal/chunk/spill.go"

func init() {
	Monotonic.Flags.StringVar(&monotonicFiles, "files",
		monotonicFiles, "comma-separated path suffixes of span-recording files (in addition to //lint:monotonic markers)")
}

// wallClockMethods are time.Time methods that read the wall clock or
// strip the monotonic reading.
var wallClockMethods = map[string]string{
	"Unix":          "reads the wall clock",
	"UnixNano":      "reads the wall clock",
	"UnixMilli":     "reads the wall clock",
	"UnixMicro":     "reads the wall clock",
	"Format":        "formats the wall clock",
	"AppendFormat":  "formats the wall clock",
	"Round":         "strips the monotonic reading",
	"Truncate":      "strips the monotonic reading",
	"MarshalJSON":   "serializes the wall clock",
	"MarshalText":   "serializes the wall clock",
	"MarshalBinary": "serializes the wall clock",
}

func runMonotonic(pass *analysis.Pass) (interface{}, error) {
	ix := newDirectiveIndex(pass)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.FileStart) {
			continue
		}
		if !fileMatches(pass.Fset, f, monotonicFiles) && !ix.fileMarked(f, "monotonic") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			why, bad := wallClockMethods[fn.Name()]
			if !bad || !isTimeTime(fn) {
				return true
			}
			if ok, present := ix.justified(call.Pos(), "wallclock"); ok {
				return true
			} else if present {
				pass.Reportf(call.Pos(), "//lint:wallclock needs a reason for a wall-clock read on a span-recording path")
				return true
			}
			diag := analysis.Diagnostic{
				Pos: call.Pos(),
				Message: "time.Time." + fn.Name() + " " + why +
					" on a span-recording path; timestamp with time.Since against the trace epoch, or annotate //lint:wallclock <reason>",
			}
			// Safe fix: X.Round(0) / X.Truncate(0) → X keeps the
			// monotonic reading, which is exactly what this path wants.
			if (fn.Name() == "Round" || fn.Name() == "Truncate") && len(call.Args) == 1 {
				if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil {
					if v, exact := constant.Int64Val(tv.Value); exact && v == 0 {
						diag.SuggestedFixes = []analysis.SuggestedFix{{
							Message: "remove the monotonic-stripping " + fn.Name() + "(0)",
							TextEdits: []analysis.TextEdit{{
								Pos: sel.X.End(), End: call.End(), NewText: nil,
							}},
						}}
					}
				}
			}
			pass.Report(diag)
			return true
		})
	}
	return nil, nil
}

// isTimeTime reports whether fn is a method of time.Time.
func isTimeTime(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedTypeName(sig.Recv().Type()) == "Time"
}
