// Package linttest is an offline analysistest equivalent: it runs one
// analyzer over testdata packages loaded by the driver and checks its
// diagnostics against `// want "regexp"` comments, using the same
// testdata/src layout and expectation syntax as
// golang.org/x/tools/go/analysis/analysistest (which needs go/packages
// and a module proxy, neither of which exists in this build
// environment).
package linttest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"whatifolap/internal/lint/driver"
)

// expectation is one `// want` regexp at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// Run loads each named package under testdata/src (dependencies load
// transitively, so fact-exporting packages may be listed or simply
// imported), runs the analyzer over everything loaded, and matches
// diagnostics in the named packages against their // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := driver.NewTestdata(testdata + "/src")
	target := make(map[string]*driver.Package)
	for _, path := range pkgPaths {
		p, err := l.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		target[path] = p
	}
	diags, err := driver.Run(l.Fset, l.Order(), []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, p := range target {
		for _, f := range p.Files {
			ws, err := fileExpectations(l, f)
			if err != nil {
				t.Fatal(err)
			}
			wants = append(wants, ws...)
		}
	}

	for _, d := range diags {
		if target[d.Pkg.Path] == nil {
			continue
		}
		pos := d.Position(l.Fset)
		matched := false
		for _, w := range wants {
			if w.used || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// fileExpectations parses the `// want "re" "re"...` comments of f.
func fileExpectations(l *driver.Loader, f *ast.File) ([]*expectation, error) {
	tf := l.Fset.File(f.FileStart)
	if tf == nil {
		return nil, nil
	}
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			line := l.Fset.Position(c.Pos()).Line
			for {
				rest = strings.TrimSpace(rest)
				if rest == "" {
					break
				}
				lit, remainder, err := cutGoString(rest)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad // want expectation: %v", tf.Name(), line, err)
				}
				re, err := regexp.Compile(lit)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad // want regexp: %v", tf.Name(), line, err)
				}
				out = append(out, &expectation{file: tf.Name(), line: line, re: re})
				rest = remainder
			}
		}
	}
	return out, nil
}

// cutGoString splits a leading Go string literal (quoted or backquoted)
// off s.
func cutGoString(s string) (lit, rest string, err error) {
	switch s[0] {
	case '"':
		for i := 1; i < len(s); i++ {
			switch s[i] {
			case '\\':
				i++
			case '"':
				unq, err := strconv.Unquote(s[:i+1])
				return unq, s[i+1:], err
			}
		}
	case '`':
		if i := strings.IndexByte(s[1:], '`'); i >= 0 {
			return s[1 : i+1], s[i+2:], nil
		}
	}
	return "", "", fmt.Errorf("expected a Go string literal, got %q", s)
}
