package obs

// Tail-sampled trace retention: the decision of whether to keep a
// query's span tree runs on the serving hot path — after every
// engine-backed query — so this file follows the hot-path rules
// (whatiflint hotpathfmt: no fmt/reflect/log, no per-call errors.New;
// IDs are built with strconv). The common outcomes are free: a nil
// ring (retention disabled) is one pointer check, a not-sampled
// healthy query is one atomic add — neither allocates, which is what
// keeps BenchmarkObsRetainOff at 0 allocs/op.

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"whatifolap/internal/trace"
)

// TraceMeta identifies one query execution to the retention ring. The
// caller (who owns the latency threshold policy) pre-computes Slow;
// the ring only decides retention and storage.
type TraceMeta struct {
	Time        time.Time
	Cube        string
	Scenario    string
	ScenarioRev int64
	Query       string
	LatencyMs   float64
	// Err is the execution error, already formatted (the ring must not
	// format), empty on success.
	Err string
	// Slow marks a latency at or above the caller's slowlog threshold.
	Slow bool
}

// RetainedTrace is one kept query trace: identity, outcome, and the
// full span tree (not rendered text — /debug/trace/{id} renders on
// read, and tests reconcile span attributes against query stats).
type RetainedTrace struct {
	ID     string
	Meta   TraceMeta
	Reason string // "error", "slow" or "sampled"
	Spans  []trace.Span
	bytes  int
}

// retainedTraceBase estimates the fixed per-retention footprint
// (struct, map entry, queue slot); spanCost and attrCost the
// per-span/per-attr increments. The accounting is an estimate — what
// matters is that the budget bounds memory proportionally, not that it
// matches the allocator byte for byte.
const (
	retainedTraceBase = 192
	spanCost          = 112
	attrCost          = 24
)

// TraceRing retains query traces under a byte budget, oldest evicted
// first. Retention policy is tail-sampling: errored queries always,
// slow queries always, and one in sampleEvery healthy queries —
// rare-but-interesting executions survive, steady traffic is sampled
// thinly enough to stay cheap.
type TraceRing struct {
	budget      int
	sampleEvery int64

	// seq numbers retained traces; sampleCount counts retention
	// decisions (the 1-in-N clock). Both atomic: decisions happen on
	// concurrent query handlers before the ring lock is taken.
	seq         atomic.Int64
	sampleCount atomic.Int64
	prefix      string

	mu      sync.Mutex
	queue   []*RetainedTrace // oldest first
	byID    map[string]*RetainedTrace
	bytes   int
	evicted int64
}

// NewTraceRing creates a retention ring with the given byte budget
// (values < 1 keep a single trace at a time) retaining one in
// sampleEvery healthy queries (<= 0: only slow and errored queries).
// The ID prefix derives from the wall clock so IDs from different
// server incarnations don't collide in logs.
func NewTraceRing(budgetBytes int, sampleEvery int) *TraceRing {
	return &TraceRing{
		budget:      budgetBytes,
		sampleEvery: int64(sampleEvery),
		prefix:      strconv.FormatInt(time.Now().Unix()&0xffffff, 36),
		byID:        make(map[string]*RetainedTrace),
	}
}

// MaybeRetain applies the tail-sampling policy to one finished query
// and, when it qualifies, snapshots its spans (the spans func is only
// called on retention — a skipped query never copies its trace) and
// stores them under a fresh trace ID. Returns the ID, or "" when the
// query was not retained or r is nil (retention disabled).
func (r *TraceRing) MaybeRetain(m TraceMeta, spans func() []trace.Span) string {
	if r == nil {
		return ""
	}
	var reason string
	switch {
	case m.Err != "":
		reason = "error"
	case m.Slow:
		reason = "slow"
	default:
		n := r.sampleEvery
		if n <= 0 {
			return ""
		}
		if (r.sampleCount.Add(1)-1)%n != 0 {
			return ""
		}
		reason = "sampled"
	}
	rt := &RetainedTrace{
		ID:     r.nextID(),
		Meta:   m,
		Reason: reason,
		Spans:  spans(),
	}
	rt.bytes = retainedTraceBase + len(m.Cube) + len(m.Scenario) + len(m.Query) + len(m.Err)
	for i := range rt.Spans {
		rt.bytes += spanCost + attrCost*len(rt.Spans[i].Attrs)
	}
	r.mu.Lock()
	r.queue = append(r.queue, rt) //lint:allocok retention is per-trace and already snapshots spans; queue growth is amortized and bounded by the byte budget
	r.byID[rt.ID] = rt
	r.bytes += rt.bytes
	// Evict oldest-first down to budget, but always keep the newest
	// retention: a single oversized trace is still addressable.
	for r.bytes > r.budget && len(r.queue) > 1 {
		old := r.queue[0]
		r.queue = r.queue[1:]
		delete(r.byID, old.ID)
		r.bytes -= old.bytes
		r.evicted++
	}
	r.mu.Unlock()
	return rt.ID
}

// nextID builds a process-unique trace ID without formatting
// machinery: "t<prefix>-<seq base36>".
func (r *TraceRing) nextID() string {
	return "t" + r.prefix + "-" + strconv.FormatInt(r.seq.Add(1), 36)
}

// Get returns the retained trace with the given ID, if still resident.
// Nil-safe.
func (r *TraceRing) Get(id string) (*RetainedTrace, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rt, ok := r.byID[id]
	return rt, ok
}

// List returns the retained traces, newest first. Nil-safe.
func (r *TraceRing) List() []*RetainedTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*RetainedTrace, len(r.queue))
	for i, rt := range r.queue {
		out[len(r.queue)-1-i] = rt
	}
	return out
}

// RetainStats describes the ring's occupancy.
type RetainStats struct {
	Count   int   `json:"count"`
	Bytes   int   `json:"bytes"`
	Budget  int   `json:"budget_bytes"`
	Evicted int64 `json:"evicted"`
}

// Stats returns the ring's occupancy. Nil-safe (all zero).
func (r *TraceRing) Stats() RetainStats {
	if r == nil {
		return RetainStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return RetainStats{
		Count:   len(r.queue),
		Bytes:   r.bytes,
		Budget:  r.budget,
		Evicted: r.evicted,
	}
}
