package obs

import (
	"sync"
	"time"
)

// Collector drives a sample closure at a fixed cadence from its own
// goroutine. It owns nothing but the ticker: the closure (built by the
// server) reads the counters, computes the interval deltas and pushes
// the Sample into a History — keeping the differencing logic next to
// the counters it differences.
//
// A stop channel, not a context: the collector's lifetime is the
// server's (Close stops it), and there is no caller deadline to
// inherit — internal/lint's ctxflow rule bans manufacturing a
// context.Background() for what is really object lifetime.
type Collector struct {
	interval time.Duration
	sample   func()
	stop     chan struct{}
	done     chan struct{}
	once     sync.Once
}

// StartCollector starts sampling every interval. The first sample
// fires one interval after start, so every sample covers a full
// interval of deltas. sample runs on the collector goroutine only —
// it needs no internal locking against itself.
func StartCollector(interval time.Duration, sample func()) *Collector {
	c := &Collector{
		interval: interval,
		sample:   sample,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go c.loop()
	return c
}

func (c *Collector) loop() {
	defer close(c.done)
	tick := time.NewTicker(c.interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			c.sample()
		case <-c.stop:
			return
		}
	}
}

// Interval returns the sampling cadence. Nil-safe.
func (c *Collector) Interval() time.Duration {
	if c == nil {
		return 0
	}
	return c.interval
}

// Stop halts sampling and waits for an in-flight sample to finish.
// Idempotent and nil-safe, so a server with collection disabled can
// call it unconditionally on Close.
func (c *Collector) Stop() {
	if c == nil {
		return
	}
	c.once.Do(func() { close(c.stop) })
	<-c.done
}
