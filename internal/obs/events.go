package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one structured component-lifecycle event: catalog restore,
// version publish, scenario commit or conflict, write-back completion,
// eviction-pressure crossings. Fields are flat strings — events are
// for operators and log pipelines, not for high-cardinality metrics.
type Event struct {
	Time   time.Time         `json:"time"`
	Type   string            `json:"type"`
	Fields map[string]string `json:"fields,omitempty"`
}

// DefaultEventLogCap is the event capacity NewEventLog(0) allocates.
const DefaultEventLogCap = 256

// EventLog is a fixed-capacity ring of lifecycle events with an
// optional JSON-lines sink: every event is retained for /debug/events
// and, when a sink is attached (whatifd passes stderr), written out as
// one JSON object per line — the structured replacement for the
// daemon's ad-hoc prints. A nil *EventLog drops everything, so
// library code can log unconditionally.
type EventLog struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total int64
	sink  io.Writer
}

// NewEventLog creates an event log holding up to capacity events
// (DefaultEventLogCap when capacity <= 0), tee'd to sink when non-nil.
func NewEventLog(capacity int, sink io.Writer) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventLogCap
	}
	return &EventLog{buf: make([]Event, 0, capacity), sink: sink}
}

// Log records one event. Nil-safe; sink write failures are dropped —
// an unwritable log stream must never take the serving path down.
func (l *EventLog) Log(typ string, fields map[string]string) {
	if l == nil {
		return
	}
	e := Event{Time: time.Now(), Type: typ, Fields: fields}
	l.mu.Lock()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.next] = e
	}
	l.next = (l.next + 1) % cap(l.buf)
	l.total++
	sink := l.sink
	l.mu.Unlock()
	if sink != nil {
		if line, err := json.Marshal(e); err == nil {
			line = append(line, '\n')
			_, _ = sink.Write(line)
		}
	}
}

// Snapshot returns the retained events, newest first, plus the count
// ever logged. Nil-safe.
func (l *EventLog) Snapshot() ([]Event, int64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.buf))
	for i := 0; i < len(l.buf); i++ {
		out = append(out, l.buf[(l.next-1-i+len(l.buf))%len(l.buf)])
	}
	return out, l.total
}
