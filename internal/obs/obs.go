// Package obs is the serving layer's continuous-observability toolkit:
// the mechanisms behind /metrics/history, /debug/trace/{id} and
// /debug/events.
//
// PR 4's primitives (span recorder, prom exposition, slowlog) are all
// point-in-time: they answer "what is the engine doing now", not "how
// did the cache hit ratio move while the analyst iterated on scenario
// edits". This package adds the time axis:
//
//   - History — a fixed-capacity ring of interval Samples, each the
//     delta of the serving counters over one collector tick (QPS,
//     interval latency quantiles, cache hit ratio, scan amplification,
//     buffer-pool pressure, write-back backlog).
//   - Collector — the fixed-cadence ticker driving a sample closure;
//     the closure itself lives in internal/server, which owns the
//     counters being differenced.
//   - TraceRing — byte-budgeted tail-sampled trace retention: full
//     span trees for slow, errored and 1-in-N sampled queries, kept
//     addressable by trace ID until evicted by newer retentions.
//   - EventLog — a ring (plus optional JSON-lines sink) of structured
//     component lifecycle events, replacing ad-hoc daemon prints.
//
// The policy questions — what to sample, which counters to difference,
// when a query counts as slow — stay with the callers; this package
// only provides the retention and cadence machinery, so it can be
// tested and benchmarked without a server.
package obs

import (
	"sync"
)

// Sample is one interval observation of the serving layer, produced by
// the collector at a fixed cadence. Counter-like fields are deltas over
// the interval, gauge-like fields are the value at sample time. Ratio
// fields use -1 for "no observations this interval" so a quiet server
// is distinguishable from a 0% one.
type Sample struct {
	// UnixMs is the sample timestamp; IntervalMs the wall time since
	// the previous sample (what the deltas are over).
	UnixMs     int64   `json:"unix_ms"`
	IntervalMs float64 `json:"interval_ms"`

	// Query flow over the interval.
	Queries     int64   `json:"queries"`
	Errors      int64   `json:"errors"`
	SlowQueries int64   `json:"slow_queries"`
	QPS         float64 `json:"qps"`

	// Result cache over the interval. CacheHitRatio is -1 when the
	// interval saw no lookups.
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`

	// Interval latency quantiles from the latency histogram's bucket
	// deltas; all zero when no query completed in the interval.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`

	// Scan amplification: source cells visited per result cell
	// returned over the interval (-1 when nothing was returned).
	// Cache hits return cells without scanning, so a warming cache
	// drives this toward zero — the trend ROADMAP item 2 watches.
	CellsScanned      int64   `json:"cells_scanned"`
	CellsReturned     int64   `json:"cells_returned"`
	ScanAmplification float64 `json:"scan_amplification"`

	// SegmentReadMs is the mean durable-tier fault-in latency over the
	// interval (0 when no segment read happened).
	SegmentReadMs float64 `json:"segment_read_ms"`

	// Serving gauges at sample time.
	QueueDepth       int   `json:"queue_depth"`
	CacheBytes       int   `json:"cache_bytes"`
	WritebackPending int64 `json:"writeback_pending"`

	// Buffer-pool state: gauges at sample time plus interval deltas of
	// the pool's monotone counters.
	PoolResidentBytes  int   `json:"pool_resident_bytes"`
	PoolResidentChunks int   `json:"pool_resident_chunks"`
	PoolSpilledChunks  int   `json:"pool_spilled_chunks"`
	PoolPinned         int   `json:"pool_pinned"`
	PoolEvictions      int64 `json:"pool_evictions"`
	PoolFaults         int64 `json:"pool_faults"`

	// Retained-trace ring occupancy at sample time.
	RetainedTraces     int `json:"retained_traces"`
	RetainedTraceBytes int `json:"retained_trace_bytes"`
}

// DefaultHistoryCap is the sample capacity NewHistory(0) allocates:
// ten minutes of history at the default one-second cadence.
const DefaultHistoryCap = 600

// History is a fixed-capacity ring of Samples: writes overwrite the
// oldest once full, reads return an oldest-first copy. One mutex is
// plenty — the writer is a single collector goroutine ticking at
// human-scale cadence, readers are /metrics/history requests.
type History struct {
	mu    sync.Mutex
	buf   []Sample
	next  int   // ring write position
	total int64 // samples ever added (> len(buf) once wrapped)
}

// NewHistory creates a history ring holding up to capacity samples
// (DefaultHistoryCap when capacity <= 0).
func NewHistory(capacity int) *History {
	if capacity <= 0 {
		capacity = DefaultHistoryCap
	}
	return &History{buf: make([]Sample, 0, capacity)}
}

// Add appends one sample, evicting the oldest when full. No-op on nil.
func (h *History) Add(s Sample) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if len(h.buf) < cap(h.buf) {
		h.buf = append(h.buf, s)
	} else {
		h.buf[h.next] = s
	}
	h.next = (h.next + 1) % cap(h.buf)
	h.total++
	h.mu.Unlock()
}

// Snapshot returns the retained samples, oldest first. Nil-safe.
func (h *History) Snapshot() []Sample {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Sample, 0, len(h.buf))
	if len(h.buf) < cap(h.buf) {
		// Not wrapped yet: the buffer is already oldest-first.
		return append(out, h.buf...)
	}
	for i := 0; i < len(h.buf); i++ {
		out = append(out, h.buf[(h.next+i)%len(h.buf)])
	}
	return out
}

// Last returns the most recent sample, if any. Nil-safe.
func (h *History) Last() (Sample, bool) {
	if h == nil {
		return Sample{}, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.buf) == 0 {
		return Sample{}, false
	}
	return h.buf[(h.next-1+len(h.buf))%len(h.buf)], true
}

// Cap returns the ring capacity. Nil-safe.
func (h *History) Cap() int {
	if h == nil {
		return 0
	}
	return cap(h.buf)
}

// Total returns the number of samples ever added — minus the retained
// count, how many the ring has evicted. Nil-safe.
func (h *History) Total() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}
