package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"whatifolap/internal/trace"
)

func TestHistoryRingWraparound(t *testing.T) {
	h := NewHistory(4)
	if h.Cap() != 4 {
		t.Fatalf("cap = %d, want 4", h.Cap())
	}
	for i := 1; i <= 10; i++ {
		h.Add(Sample{UnixMs: int64(i)})
	}
	got := h.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d samples, want 4", len(got))
	}
	// Oldest first, newest last: 7 8 9 10 survive.
	for i, want := range []int64{7, 8, 9, 10} {
		if got[i].UnixMs != want {
			t.Fatalf("snapshot[%d].UnixMs = %d, want %d (snapshot %+v)", i, got[i].UnixMs, want, got)
		}
	}
	if h.Total() != 10 {
		t.Fatalf("total = %d, want 10", h.Total())
	}
	last, ok := h.Last()
	if !ok || last.UnixMs != 10 {
		t.Fatalf("Last() = %+v, %v; want UnixMs 10", last, ok)
	}
}

func TestHistoryPartialAndNil(t *testing.T) {
	h := NewHistory(8)
	if _, ok := h.Last(); ok {
		t.Fatal("empty history reported a last sample")
	}
	h.Add(Sample{UnixMs: 1})
	h.Add(Sample{UnixMs: 2})
	got := h.Snapshot()
	if len(got) != 2 || got[0].UnixMs != 1 || got[1].UnixMs != 2 {
		t.Fatalf("partial snapshot = %+v, want [1 2]", got)
	}

	var nilH *History
	nilH.Add(Sample{})
	if nilH.Snapshot() != nil || nilH.Cap() != 0 || nilH.Total() != 0 {
		t.Fatal("nil history should be inert")
	}
	if _, ok := nilH.Last(); ok {
		t.Fatal("nil history reported a last sample")
	}
}

// spans builds a small span snapshot for retention tests.
func testSpans() []trace.Span {
	tr := trace.New(8)
	root := tr.Start(trace.SpanRef{}, "eval")
	child := tr.Start(root, "scan")
	child.Int("chunks_read", 3)
	child.End()
	root.End()
	return tr.Spans()
}

func TestRetainReasonsAndSampling(t *testing.T) {
	r := NewTraceRing(1<<20, 3)

	// Errors and slow queries always retain, regardless of the 1-in-N
	// clock.
	id := r.MaybeRetain(TraceMeta{Err: "boom"}, testSpans)
	if id == "" {
		t.Fatal("errored query was not retained")
	}
	if rt, ok := r.Get(id); !ok || rt.Reason != "error" {
		t.Fatalf("Get(%q) = %+v, %v; want reason error", id, rt, ok)
	}
	id = r.MaybeRetain(TraceMeta{Slow: true, LatencyMs: 900}, testSpans)
	if rt, ok := r.Get(id); !ok || rt.Reason != "slow" {
		t.Fatalf("slow query retained as %+v, %v", rt, ok)
	}

	// Healthy queries: exactly one in three.
	var sampled int
	for i := 0; i < 9; i++ {
		if r.MaybeRetain(TraceMeta{Query: "q"}, testSpans) != "" {
			sampled++
		}
	}
	if sampled != 3 {
		t.Fatalf("sampled %d of 9 healthy queries, want 3", sampled)
	}
	for _, rt := range r.List() {
		if rt.Meta.Query == "q" && rt.Reason != "sampled" {
			t.Fatalf("healthy retention has reason %q, want sampled", rt.Reason)
		}
	}

	// sampleEvery <= 0 keeps only slow/errored.
	r2 := NewTraceRing(1<<20, 0)
	for i := 0; i < 10; i++ {
		if r2.MaybeRetain(TraceMeta{}, testSpans) != "" {
			t.Fatal("healthy query retained with sampling disabled")
		}
	}
	if r2.MaybeRetain(TraceMeta{Err: "x"}, testSpans) == "" {
		t.Fatal("errored query must retain even with sampling disabled")
	}
}

func TestRetainByteBudgetEviction(t *testing.T) {
	// Budget fits roughly three small traces; retain many and confirm
	// the ring stays within budget, evicting oldest first.
	spans := testSpans()
	perTrace := retainedTraceBase + len("q")
	for _, sp := range spans {
		perTrace += spanCost + attrCost*len(sp.Attrs)
	}
	r := NewTraceRing(perTrace*3, 1) // sample everything
	ids := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		ids = append(ids, r.MaybeRetain(TraceMeta{Query: "q"}, func() []trace.Span { return spans }))
	}
	st := r.Stats()
	if st.Bytes > st.Budget {
		t.Fatalf("ring over budget: %d > %d", st.Bytes, st.Budget)
	}
	if st.Count != 3 {
		t.Fatalf("retained %d traces, want 3 (stats %+v)", st.Count, st)
	}
	if st.Evicted != 5 {
		t.Fatalf("evicted %d, want 5", st.Evicted)
	}
	// Oldest evicted, newest still addressable.
	if _, ok := r.Get(ids[0]); ok {
		t.Fatal("oldest trace survived past budget")
	}
	if _, ok := r.Get(ids[7]); !ok {
		t.Fatal("newest trace was evicted")
	}
	// List is newest first.
	list := r.List()
	if len(list) != 3 || list[0].ID != ids[7] || list[2].ID != ids[5] {
		t.Fatalf("List() order wrong: %v", []string{list[0].ID, list[1].ID, list[2].ID})
	}

	// A single trace above budget must still be kept (and addressable).
	tiny := NewTraceRing(1, 1)
	id := tiny.MaybeRetain(TraceMeta{Query: strings.Repeat("x", 100)}, func() []trace.Span { return spans })
	if _, ok := tiny.Get(id); !ok {
		t.Fatal("oversized sole trace was evicted")
	}
}

func TestRetainDisabledZeroAllocs(t *testing.T) {
	// The common path — retention disabled (nil ring) or a healthy
	// unsampled query — must not allocate: it runs after every query.
	var nilRing *TraceRing
	m := TraceMeta{Query: "q"}
	spans := func() []trace.Span { t.Fatal("spans snapshotted on non-retained query"); return nil }
	if got := testing.AllocsPerRun(100, func() {
		if nilRing.MaybeRetain(m, spans) != "" {
			t.Fatal("nil ring retained")
		}
	}); got != 0 {
		t.Fatalf("nil-ring MaybeRetain allocates %v/op, want 0", got)
	}

	r := NewTraceRing(1<<20, 1<<40) // sampling period beyond the run count
	r.sampleCount.Store(1)          // past the initial 1-in-N hit
	if got := testing.AllocsPerRun(100, func() {
		if r.MaybeRetain(m, spans) != "" {
			t.Fatal("unsampled query retained")
		}
	}); got != 0 {
		t.Fatalf("unsampled MaybeRetain allocates %v/op, want 0", got)
	}
}

func TestRetainConcurrentIDsUnique(t *testing.T) {
	r := NewTraceRing(64<<20, 1)
	const workers, per = 8, 50
	var dup atomic.Int64
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				if r.MaybeRetain(TraceMeta{Err: "e"}, testSpans) == "" {
					dup.Add(1)
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if dup.Load() != 0 {
		t.Fatal("errored retention returned empty id")
	}
	seen := make(map[string]bool)
	for _, rt := range r.List() {
		if seen[rt.ID] {
			t.Fatalf("duplicate trace id %s", rt.ID)
		}
		seen[rt.ID] = true
	}
	if len(seen) != workers*per {
		t.Fatalf("retained %d unique ids, want %d", len(seen), workers*per)
	}
}

func TestEventLogRingAndSink(t *testing.T) {
	var sink bytes.Buffer
	l := NewEventLog(3, &sink)
	for i := 0; i < 5; i++ {
		l.Log("tick", map[string]string{"n": string(rune('a' + i))})
	}
	events, total := l.Snapshot()
	if total != 5 {
		t.Fatalf("total = %d, want 5", total)
	}
	if len(events) != 3 {
		t.Fatalf("retained %d events, want 3", len(events))
	}
	// Newest first: e, d, c.
	for i, want := range []string{"e", "d", "c"} {
		if events[i].Fields["n"] != want {
			t.Fatalf("events[%d] = %+v, want n=%s", i, events[i], want)
		}
	}
	// The sink saw every event as one JSON object per line.
	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("sink has %d lines, want 5: %q", len(lines), sink.String())
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("sink line not JSON: %v", err)
	}
	if e.Type != "tick" || e.Time.IsZero() {
		t.Fatalf("decoded sink event %+v", e)
	}

	var nilLog *EventLog
	nilLog.Log("x", nil) // must not panic
	if ev, n := nilLog.Snapshot(); ev != nil || n != 0 {
		t.Fatal("nil event log should be inert")
	}
}

func TestHistoryCollectorTicks(t *testing.T) {
	var ticks atomic.Int64
	c := StartCollector(5*time.Millisecond, func() { ticks.Add(1) })
	defer c.Stop()
	deadline := time.After(2 * time.Second)
	for ticks.Load() < 3 {
		select {
		case <-deadline:
			t.Fatalf("collector produced %d ticks in 2s, want >= 3", ticks.Load())
		case <-time.After(time.Millisecond):
		}
	}
	c.Stop()
	n := ticks.Load()
	time.Sleep(20 * time.Millisecond)
	if got := ticks.Load(); got != n {
		t.Fatalf("collector ticked after Stop: %d -> %d", n, got)
	}
	c.Stop() // idempotent
	var nilC *Collector
	nilC.Stop() // nil-safe
	if nilC.Interval() != 0 {
		t.Fatal("nil collector interval should be 0")
	}
}
