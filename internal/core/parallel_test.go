package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"

	"whatifolap/internal/chunk"
	"whatifolap/internal/paperdata"
	"whatifolap/internal/perspective"
	"whatifolap/internal/workload"
)

var allSemantics = []perspective.Semantics{
	perspective.Static, perspective.Forward, perspective.ExtendedForward,
	perspective.Backward, perspective.ExtendedBackward,
}

// dumpCells materializes a view's result store for comparison. Leaf
// relocation copies values verbatim, so serial and parallel runs must
// agree exactly, not just within a tolerance.
func dumpCells(v *View) map[string]float64 {
	cells := make(map[string]float64)
	v.Result().Store().NonNull(func(addr []int, val float64) bool {
		cells[fmt.Sprint(addr)] = val
		return true
	})
	return cells
}

func sameCells(want, got map[string]float64) bool {
	if len(want) != len(got) {
		return false
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok || g != w {
			return false
		}
	}
	return true
}

// TestParallelScanMatchesSerialPaper checks the paper's Fig. 1/2
// warehouse: at every semantics × mode × worker count, the parallel
// merge-group scan produces the exact cell set of the serial scan and
// reads each relevant chunk exactly once.
func TestParallelScanMatchesSerialPaper(t *testing.T) {
	e := newEngine(t)
	for _, sem := range allSemantics {
		for _, mode := range []perspective.Mode{perspective.NonVisual, perspective.Visual} {
			q := PerspectiveQuery{
				Members: []string{"Joe"}, Perspectives: []int{paperdata.Feb, paperdata.Apr},
				Sem: sem, Mode: mode,
			}
			serial, err := e.ExecPerspective(q)
			if err != nil {
				t.Fatalf("%v/%v serial: %v", sem, mode, err)
			}
			want := dumpCells(serial)
			for _, workers := range []int{2, 4, 8} {
				label := fmt.Sprintf("%v/%v/workers=%d", sem, mode, workers)
				par, err := e.ExecPerspectiveWith(ExecContext{Workers: workers}, q)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if got := dumpCells(par); !sameCells(want, got) {
					t.Fatalf("%s: parallel cells differ from serial (%d vs %d cells)",
						label, len(got), len(want))
				}
				if par.Stats.ChunksRead != serial.Stats.ChunksRead {
					t.Fatalf("%s: %d chunk reads, serial %d",
						label, par.Stats.ChunksRead, serial.Stats.ChunksRead)
				}
				if par.Stats.CellsRelocated != serial.Stats.CellsRelocated {
					t.Fatalf("%s: %d cells relocated, serial %d",
						label, par.Stats.CellsRelocated, serial.Stats.CellsRelocated)
				}
			}
		}
	}
}

// TestParallelScanMatchesSerialWorkforce is the property form over a
// generated workforce cube: for random member subsets, perspective
// sets, semantics, modes and worker counts, parallel execution is
// indistinguishable from serial — same cells on success, same error
// otherwise.
func TestParallelScanMatchesSerialWorkforce(t *testing.T) {
	w, err := workload.NewWorkforce(workload.ConfigTiny())
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(w.Cube, workload.DimDepartment)
	if err != nil {
		t.Fatal(err)
	}
	property := func(memberBits, perspBits uint16, semPick, modePick, workerPick uint8) bool {
		var members []string
		for i, name := range w.Changing {
			if memberBits&(1<<uint(i%16)) != 0 {
				members = append(members, name)
			}
		}
		if len(members) == 0 {
			members = w.Changing[:1]
		}
		var ps []int
		for m := 0; m < w.Config.Months; m++ {
			if perspBits&(1<<uint(m)) != 0 {
				ps = append(ps, m)
			}
		}
		if len(ps) == 0 {
			ps = []int{0}
		}
		q := PerspectiveQuery{
			Members:      members,
			Perspectives: ps,
			Sem:          allSemantics[int(semPick)%len(allSemantics)],
			Mode:         []perspective.Mode{perspective.NonVisual, perspective.Visual}[int(modePick)%2],
		}
		workers := []int{2, 4, 8}[int(workerPick)%3]

		serial, serr := e.ExecPerspective(q)
		par, perr := e.ExecPerspectiveWith(ExecContext{Workers: workers}, q)
		if serr != nil || perr != nil {
			return serr != nil && perr != nil && serr.Error() == perr.Error()
		}
		return sameCells(dumpCells(serial), dumpCells(par)) &&
			serial.Stats.CellsRelocated == par.Stats.CellsRelocated
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelPlanPartitionsSchedule checks the planner invariants the
// parallel scan relies on: the merge groups partition the global read
// schedule (preserving relative order, so each group's sequence is a
// legal pebbling), group edge counts account for every merge edge, and
// no group's peak exceeds the global peak.
func TestParallelPlanPartitionsSchedule(t *testing.T) {
	w, err := workload.NewWorkforce(workload.ConfigTiny())
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(w.Cube, workload.DimDepartment)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.PlanPerspective(PerspectiveQuery{
		Members: w.Changing, Perspectives: []int{0, 3, 6, 9},
		Sem: perspective.Forward, Mode: perspective.NonVisual,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Groups) == 0 || plan.Stats.MergeGroups != len(plan.Groups) {
		t.Fatalf("MergeGroups = %d, len(Groups) = %d", plan.Stats.MergeGroups, len(plan.Groups))
	}
	pos := make(map[int]int, len(plan.Schedule))
	for i, id := range plan.Schedule {
		pos[id] = i
	}
	seen := make(map[int]bool)
	edges := 0
	total := 0
	for gi, g := range plan.Groups {
		edges += g.Edges
		total += len(g.Chunks)
		if g.Peak > plan.Stats.PeakResidentChunks {
			t.Fatalf("group %d peak %d exceeds global peak %d", gi, g.Peak, plan.Stats.PeakResidentChunks)
		}
		last := -1
		for _, id := range g.Chunks {
			p, ok := pos[id]
			if !ok {
				t.Fatalf("group %d chunk %d not in the global schedule", gi, id)
			}
			if p <= last {
				t.Fatalf("group %d breaks the schedule's relative order at chunk %d", gi, id)
			}
			last = p
			if seen[id] {
				t.Fatalf("chunk %d in more than one group", id)
			}
			seen[id] = true
		}
	}
	if total != len(plan.Schedule) {
		t.Fatalf("groups hold %d chunks, schedule %d: not a partition", total, len(plan.Schedule))
	}
	if edges != plan.Stats.MergeEdges {
		t.Fatalf("group edges sum to %d, plan has %d merge edges", edges, plan.Stats.MergeEdges)
	}
}

// TestParallelScanCancellation cancels the context from inside the
// chunk store's read hook while a parallel scan is in flight: the scan
// must abandon promptly with context.Canceled, reading at most one
// in-flight chunk per worker after the cancellation point.
func TestParallelScanCancellation(t *testing.T) {
	w, err := workload.NewWorkforce(workload.ConfigTiny())
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(w.Cube, workload.DimDepartment)
	if err != nil {
		t.Fatal(err)
	}
	q := PerspectiveQuery{
		Members: w.Changing, Perspectives: []int{0, 3, 6, 9},
		Sem: perspective.Forward, Mode: perspective.NonVisual,
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const cancelAt = 3
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var reads atomic.Int64
			st := w.Cube.Store().(*chunk.Store)
			st.SetReadHook(func(id int) {
				if reads.Add(1) == cancelAt {
					cancel()
				}
			})
			defer st.SetReadHook(nil)

			_, err := e.ExecPerspectiveWith(ExecContext{Ctx: ctx, Workers: workers}, q)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			// Each worker checks the context before every read, so at
			// most the reads racing with the cancel slip through.
			if n := reads.Load(); n > cancelAt+int64(2*workers) {
				t.Fatalf("%d chunk reads after cancelling at %d", n, cancelAt)
			}
		})
	}
}
