package core

import (
	"math"
	"testing"

	"whatifolap/internal/cube"
	"whatifolap/internal/paperdata"
	"whatifolap/internal/perspective"
)

// TestCompressedMatchesMaterialized compares the compressed view against
// the materialized one cell-for-cell and on aggregates, for every
// semantics and both modes.
func TestCompressedMatchesMaterialized(t *testing.T) {
	e := newEngine(t)
	for _, sem := range []perspective.Semantics{perspective.Static, perspective.Forward,
		perspective.ExtendedForward, perspective.Backward, perspective.ExtendedBackward} {
		for _, ps := range [][]int{{paperdata.Jan}, {paperdata.Feb, paperdata.Apr}} {
			for _, mode := range []perspective.Mode{perspective.Visual, perspective.NonVisual} {
				q := PerspectiveQuery{Members: []string{"Joe"}, Perspectives: ps, Sem: sem, Mode: mode}
				mat, err := e.ExecPerspective(q)
				if err != nil {
					t.Fatalf("%v %v: %v", sem, ps, err)
				}
				comp, err := e.ExecPerspectiveCompressed(q)
				if err != nil {
					t.Fatalf("%v %v compressed: %v", sem, ps, err)
				}
				// Same cell population.
				if mat.Result().Store().Len() != comp.Result().Store().Len() {
					t.Fatalf("%v %v: Len %d vs %d", sem, ps,
						mat.Result().Store().Len(), comp.Result().Store().Len())
				}
				mat.Result().Store().NonNull(func(addr []int, want float64) bool {
					if got := comp.Result().Store().Get(addr); math.Abs(got-want) > 1e-9 {
						t.Fatalf("%v %v: cell %v = %v, want %v", sem, ps, addr, got, want)
					}
					return true
				})
				// Aggregate agreement through the mode-aware Cell.
				for _, refs := range [][]string{
					{"PTE", "NY", "Qtr1", "Salary"},
					{"Contractor", "East", "Time", "Salary"},
				} {
					a, err := mat.CellRefs(refs[0], refs[1], refs[2], refs[3])
					if err != nil {
						t.Fatal(err)
					}
					b, err := comp.CellRefs(refs[0], refs[1], refs[2], refs[3])
					if err != nil {
						t.Fatal(err)
					}
					if cube.IsNull(a) != cube.IsNull(b) || (!cube.IsNull(a) && math.Abs(a-b) > 1e-9) {
						t.Fatalf("%v %v %v: aggregate %v vs %v", sem, ps, refs, a, b)
					}
				}
			}
		}
	}
}

func TestCompressedStats(t *testing.T) {
	e := newEngine(t)
	v, err := e.ExecPerspectiveCompressed(PerspectiveQuery{
		Members:      []string{"Joe"},
		Perspectives: []int{paperdata.Feb, paperdata.Apr},
		Sem:          perspective.Forward,
		Mode:         perspective.NonVisual,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Stats.CompressedBytes <= 0 {
		t.Fatal("compressed view should report its mapping footprint")
	}
	if v.Stats.ChunksRead != 0 || v.Stats.CellsRelocated != 0 {
		t.Fatalf("compressed exec should do no materialization I/O: %+v", v.Stats)
	}
	if v.Stats.Ranges != 2 {
		t.Fatalf("Ranges = %d, want 2", v.Stats.Ranges)
	}
}

func TestCompressedFig4Values(t *testing.T) {
	e := newEngine(t)
	v, err := e.ExecPerspectiveCompressed(PerspectiveQuery{
		Members:      []string{"Joe"},
		Perspectives: []int{paperdata.Feb, paperdata.Apr},
		Sem:          perspective.Forward,
		Mode:         perspective.Visual,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := v.CellRefs("PTE/Joe", "NY", "Mar", "Salary"); err != nil || got != 30 {
		t.Fatalf("(PTE/Joe, Mar) = %v, %v; want 30", got, err)
	}
	if got, err := v.CellRefs("Contractor/Joe", "NY", "Mar", "Salary"); err != nil || !cube.IsNull(got) {
		t.Fatalf("(Contractor/Joe, Mar) = %v, %v; want ⊥", got, err)
	}
	if got, err := v.CellRefs("PTE/Joe", "NY", "Qtr1", "Salary"); err != nil || got != 40 {
		t.Fatalf("visual Q1(PTE/Joe) = %v, %v; want 40", got, err)
	}
}

func TestCompressedReadOnlyAndClone(t *testing.T) {
	e := newEngine(t)
	v, err := e.ExecPerspectiveCompressed(PerspectiveQuery{
		Members: []string{"Joe"}, Perspectives: []int{paperdata.Jan},
		Sem: perspective.Forward, Mode: perspective.NonVisual,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := v.Result().Store().Clone()
	if snap.Len() != v.Result().Store().Len() {
		t.Fatal("clone should materialize the same cells")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("writes through a compressed view should panic")
		}
	}()
	v.Result().SetLeaf([]int{0, 0, 0, 0}, 1)
}
