// Package core implements the paper's primary contribution: efficient
// evaluation of what-if queries over a chunked cube — the perspective
// cube of §5. The engine plans which chunks hold instances of the
// query's varying members, builds the merge dependency graph between
// them, orders reads with the pebbling heuristic (§5.2), and produces a
// queryable view that relocates cell values between related instances
// per the chosen perspective semantics, without copying the base cube.
package core

import (
	"fmt"

	"whatifolap/internal/algebra"
	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
	"whatifolap/internal/perspective"
)

// viewStore overlays relocated rows of the varying dimension on top of
// the (unmodified) base store. Rows whose varying leaf ordinal is in
// scope read from the overlay; all other rows read from the base,
// optionally through an ordinal remap (positive scenarios extend the
// varying dimension, shifting leaf ordinals).
type viewStore struct {
	base cube.Store
	// overlay holds the relocated cells: a chunk-grained chunk.Overlay
	// from a serial scan, a chunk.PartitionedOverlay routing to the
	// per-group overlays after a parallel scan, or a merged store from
	// the multi-MDX simulation. Reads of scoped rows resolve here with
	// pure integer (chunkID, offset) arithmetic.
	overlay cube.Store
	vi      int
	// scoped marks varying leaf ordinals (in view coordinates) owned by
	// the overlay.
	scoped []bool
	// baseOrd maps a view varying ordinal to the base store's varying
	// ordinal, or -1 when the row exists only in the view (new
	// instances). nil means identity.
	baseOrd []int
}

// Get implements cube.Store.
func (s *viewStore) Get(addr []int) float64 {
	o := addr[s.vi]
	if s.scoped[o] {
		return s.overlay.Get(addr)
	}
	if s.baseOrd == nil {
		return s.base.Get(addr)
	}
	bo := s.baseOrd[o]
	if bo < 0 {
		return cube.Null
	}
	tmp := make([]int, len(addr))
	copy(tmp, addr)
	tmp[s.vi] = bo
	return s.base.Get(tmp)
}

// Set implements cube.Store. Views are read-only products of a what-if
// query; writing through one indicates a bug in the caller.
func (s *viewStore) Set(addr []int, v float64) {
	panic("core: perspective views are read-only")
}

// NonNull implements cube.Store: base rows outside the scope first
// (remapped if needed), then the overlay rows.
func (s *viewStore) NonNull(fn func(addr []int, v float64) bool) {
	// Invert the remap so base ordinals translate to view ordinals.
	var toView []int
	if s.baseOrd != nil {
		max := 0
		for _, bo := range s.baseOrd {
			if bo > max {
				max = bo
			}
		}
		toView = make([]int, max+1)
		for i := range toView {
			toView[i] = -1
		}
		for vo, bo := range s.baseOrd {
			if bo >= 0 {
				toView[bo] = vo
			}
		}
	}
	stopped := false
	out := make([]int, 0, 8)
	s.base.NonNull(func(addr []int, v float64) bool {
		vo := addr[s.vi]
		if toView != nil {
			if vo >= len(toView) || toView[vo] < 0 {
				return true
			}
			vo = toView[vo]
		}
		if s.scoped[vo] {
			return true // overlay owns this row
		}
		out = append(out[:0], addr...)
		out[s.vi] = vo
		if !fn(out, v) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	s.overlay.NonNull(fn)
}

// Len implements cube.Store.
func (s *viewStore) Len() int {
	n := 0
	s.NonNull(func(addr []int, v float64) bool { n++; return true })
	return n
}

// Clone implements cube.Store by materializing the view into a MemStore.
func (s *viewStore) Clone() cube.Store {
	arity := 0
	s.NonNull(func(addr []int, v float64) bool { arity = len(addr); return false })
	if arity == 0 {
		// Empty view; infer arity from the overlay.
		return s.overlay.Clone()
	}
	out := cube.NewMemStore(arity)
	s.NonNull(func(addr []int, v float64) bool {
		out.Set(addr, v)
		return true
	})
	return out
}

// View is the queryable result of a what-if query: a perspective cube.
// Leaf cells reflect the hypothetical scenario; non-leaf cells are
// evaluated on demand under the view's mode (visual re-aggregates over
// the scenario, non-visual retains input aggregates).
type View struct {
	input  *cube.Cube
	result *cube.Cube
	mode   perspective.Mode
	// Stats describes how the engine executed the query.
	Stats Stats
}

// Input returns the query's input cube.
func (v *View) Input() *cube.Cube { return v.input }

// Result returns the perspective cube. Its dimensions may extend the
// input's (positive scenarios add member instances); its store is a
// read-only overlay over the input's.
func (v *View) Result() *cube.Cube { return v.result }

// Mode returns the non-leaf evaluation mode.
func (v *View) Mode() perspective.Mode { return v.mode }

// Cell evaluates one cell of the perspective cube, resolving member IDs
// against the result cube's dimensions.
func (v *View) Cell(ids []dimension.MemberID) (float64, error) {
	return algebra.CellValue(v.input, v.result, ids, v.mode)
}

// CellRefs evaluates a cell given member references (paths or
// unambiguous names), one per dimension in schema order.
func (v *View) CellRefs(refs ...string) (float64, error) {
	if len(refs) != v.result.NumDims() {
		return cube.Null, fmt.Errorf("core: %d refs for %d dimensions", len(refs), v.result.NumDims())
	}
	ids := make([]dimension.MemberID, len(refs))
	for i, r := range refs {
		id, err := v.result.Dim(i).Lookup(r)
		if err != nil {
			return cube.Null, err
		}
		ids[i] = id
	}
	return v.Cell(ids)
}

// Stats describes one engine execution.
type Stats struct {
	// MembersInScope is the number of base members the query covered.
	MembersInScope int
	// SourceInstances is the number of member instances whose rows the
	// engine had to read.
	SourceInstances int
	// RelevantChunks is the number of materialized chunks holding those
	// rows.
	RelevantChunks int
	// ChunksRead counts chunk reads performed (≥ RelevantChunks only if
	// re-reads happen; the engine reads each relevant chunk once).
	ChunksRead int
	// CellsRelocated counts leaf cells written into the overlay.
	CellsRelocated int
	// CellsScanned counts source cells the scan visited (non-null
	// cells iterated across scheduled chunks; run-encoded chunks count
	// their run lengths) before relocation filtering. Scanned ÷ cells
	// returned to the client is the scan-amplification trend the
	// serving layer's /metrics/history tracks.
	CellsScanned int
	// MergeEdges is the number of edges in the merge dependency graph.
	MergeEdges int
	// PeakResidentChunks is the peak number of chunks that must be
	// co-resident under the chosen read order (pebbling peak).
	PeakResidentChunks int
	// MergeGroups is the number of independent merge groups the scan
	// can fan out over (chunks sharing all non-varying coordinates).
	MergeGroups int
	// ScanWorkers is the number of scan workers the execution used
	// (1 = serial).
	ScanWorkers int
	// ScanSubtasks is the number of sub-tasks the parallel scan cut the
	// merge-group schedules into (0 on a serial scan). It exceeds
	// MergeGroups when intra-group splitting found crossing-free cut
	// points, which is what lets ScanWorkers exceed MergeGroups.
	ScanSubtasks int
	// PlanMs, ScanMs, MergeMs and ProjectMs are the per-stage wall
	// times in milliseconds: plan (target pruning, merge graph, read
	// scheduling), scan (chunk reads + cell relocation), merge
	// (attaching per-group overlays to the partitioned router — O(merge
	// groups), no per-cell copying; zero on a serial scan), project
	// (grid projection, filled in by the mdx layer).
	PlanMs    float64
	ScanMs    float64
	MergeMs   float64
	ProjectMs float64
	// Ranges is the number of perspective ranges processed (dynamic
	// semantics only).
	Ranges int
	// DiskCostMs is the modeled I/O time if a simulated disk is
	// attached, else 0. Accumulated from the per-read costs the chunk
	// store's cost hook returns, so a query is charged for exactly its
	// own reads even when concurrent queries share the disk.
	DiskCostMs float64
	// SpillFaults counts chunk reads this query satisfied from the
	// spill file (buffer-pool misses), else 0 on an unpooled store.
	SpillFaults int
	// CompressedBytes is the relocation-mapping footprint when the
	// query ran compressed (ExecPerspectiveCompressed), else 0.
	CompressedBytes int
}

// Add accumulates s2 into s (used by the multiple-MDX simulation, which
// sums the work of its individual queries).
func (s *Stats) Add(s2 Stats) {
	s.MembersInScope += s2.MembersInScope
	s.SourceInstances += s2.SourceInstances
	s.RelevantChunks += s2.RelevantChunks
	s.ChunksRead += s2.ChunksRead
	s.CellsRelocated += s2.CellsRelocated
	s.CellsScanned += s2.CellsScanned
	s.MergeEdges += s2.MergeEdges
	if s2.PeakResidentChunks > s.PeakResidentChunks {
		s.PeakResidentChunks = s2.PeakResidentChunks
	}
	if s2.MergeGroups > s.MergeGroups {
		s.MergeGroups = s2.MergeGroups
	}
	if s2.ScanWorkers > s.ScanWorkers {
		s.ScanWorkers = s2.ScanWorkers
	}
	if s2.ScanSubtasks > s.ScanSubtasks {
		s.ScanSubtasks = s2.ScanSubtasks
	}
	s.Ranges += s2.Ranges
	s.DiskCostMs += s2.DiskCostMs
	s.SpillFaults += s2.SpillFaults
	s.PlanMs += s2.PlanMs
	s.ScanMs += s2.ScanMs
	s.MergeMs += s2.MergeMs
	s.ProjectMs += s2.ProjectMs
}
