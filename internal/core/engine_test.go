package core

import (
	"math"
	"testing"

	"whatifolap/internal/algebra"
	"whatifolap/internal/chunk"
	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
	"whatifolap/internal/paperdata"
	"whatifolap/internal/perspective"
	"whatifolap/internal/simdisk"
)

func newEngine(t testing.TB) *Engine {
	t.Helper()
	c := paperdata.ChunkedWarehouse(nil)
	e, err := New(c, "Organization")
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// assertCubesAgree compares the engine view against a reference cube
// produced by the algebra operators, over every leaf cell and a sample
// of aggregates, in both modes.
func assertCubesAgree(t *testing.T, v *View, ref *cube.Cube, refInput *cube.Cube, mode perspective.Mode) {
	t.Helper()
	res := v.Result()
	// Same leaf cells: reference is authoritative.
	nCells := 0
	ref.Store().NonNull(func(addr []int, want float64) bool {
		nCells++
		ids := make([]dimension.MemberID, len(addr))
		for i, o := range addr {
			ids[i] = ref.Dim(i).Leaf(o).ID
		}
		// Translate into the view's dimension objects via paths.
		vids := make([]dimension.MemberID, len(addr))
		for i := range ids {
			p := ref.Dim(i).Path(ids[i])
			id, err := res.Dim(i).Lookup(p)
			if err != nil {
				t.Fatalf("view lacks member %s: %v", p, err)
			}
			vids[i] = id
		}
		got, err := v.Cell(vids)
		if err != nil {
			t.Fatalf("view cell %v: %v", addr, err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("cell %v: view %v, reference %v", addr, got, want)
		}
		return true
	})
	if nCells == 0 {
		t.Fatal("reference cube empty; test is vacuous")
	}
	// View has no extra non-null cells.
	res.Store().NonNull(func(addr []int, got float64) bool {
		ids := make([]dimension.MemberID, len(addr))
		for i, o := range addr {
			ids[i] = res.Dim(i).Leaf(o).ID
		}
		rids := make([]dimension.MemberID, len(addr))
		for i := range ids {
			p := res.Dim(i).Path(ids[i])
			id, err := ref.Dim(i).Lookup(p)
			if err != nil {
				t.Fatalf("reference lacks member %s", p)
			}
			rids[i] = id
		}
		if want := ref.Value(rids); cube.IsNull(want) {
			t.Fatalf("view has spurious cell %v = %v", addr, got)
		}
		return true
	})
	// Aggregates for a sample of non-leaf tuples.
	for _, refs := range [][]string{
		{"FTE", "NY", "Qtr1", "Salary"},
		{"PTE", "NY", "Qtr2", "Salary"},
		{"Contractor", "East", "Time", "Salary"},
		{"Organization", "NY", "Qtr1", "Compensation"},
	} {
		vids := make([]dimension.MemberID, len(refs))
		rids := make([]dimension.MemberID, len(refs))
		for i, r := range refs {
			vids[i] = res.Dim(i).MustLookup(r)
			rids[i] = ref.Dim(i).MustLookup(r)
		}
		got, err := v.Cell(vids)
		if err != nil {
			t.Fatal(err)
		}
		want, err := algebra.CellValue(refInput, ref, rids, mode)
		if err != nil {
			t.Fatal(err)
		}
		if (cube.IsNull(got) != cube.IsNull(want)) || (!cube.IsNull(got) && math.Abs(got-want) > 1e-9) {
			t.Fatalf("aggregate %v: view %v, reference %v (mode %v)", refs, got, want, mode)
		}
	}
}

func TestEngineMatchesAlgebraForward(t *testing.T) {
	e := newEngine(t)
	memRef := paperdata.Warehouse()
	for _, mode := range []perspective.Mode{perspective.Visual, perspective.NonVisual} {
		v, err := e.ExecPerspective(PerspectiveQuery{
			Members:      []string{"Joe"},
			Perspectives: []int{paperdata.Feb, paperdata.Apr},
			Sem:          perspective.Forward,
			Mode:         mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := algebra.ApplyPerspectives(memRef, "Organization", perspective.Forward,
			[]int{paperdata.Feb, paperdata.Apr})
		if err != nil {
			t.Fatal(err)
		}
		assertCubesAgree(t, v, ref, memRef, mode)
		if v.Stats.SourceInstances == 0 || v.Stats.ChunksRead == 0 {
			t.Fatalf("stats look empty: %+v", v.Stats)
		}
	}
}

func TestEngineMatchesAlgebraAllSemantics(t *testing.T) {
	e := newEngine(t)
	memRef := paperdata.Warehouse()
	for _, sem := range []perspective.Semantics{perspective.Static, perspective.Forward,
		perspective.ExtendedForward, perspective.Backward, perspective.ExtendedBackward} {
		for _, ps := range [][]int{{paperdata.Jan}, {paperdata.Mar}, {paperdata.Feb, paperdata.Jun}} {
			v, err := e.ExecPerspective(PerspectiveQuery{
				Members:      []string{"Joe"},
				Perspectives: ps,
				Sem:          sem,
				Mode:         perspective.Visual,
			})
			if err != nil {
				t.Fatalf("%v %v: %v", sem, ps, err)
			}
			ref, err := algebra.ApplyPerspectives(memRef, "Organization", sem, ps)
			if err != nil {
				t.Fatal(err)
			}
			assertCubesAgree(t, v, ref, memRef, perspective.Visual)
		}
	}
}

func TestEngineFig4Values(t *testing.T) {
	e := newEngine(t)
	v, err := e.ExecPerspective(PerspectiveQuery{
		Members:      []string{"Joe"},
		Perspectives: []int{paperdata.Feb, paperdata.Apr},
		Sem:          perspective.Forward,
		Mode:         perspective.Visual,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.CellRefs("PTE/Joe", "NY", "Mar", "Salary")
	if err != nil {
		t.Fatal(err)
	}
	if got != 30 {
		t.Fatalf("(PTE/Joe, Mar) = %v, want 30 (inherited)", got)
	}
	q1, err := v.CellRefs("PTE/Joe", "NY", "Qtr1", "Salary")
	if err != nil {
		t.Fatal(err)
	}
	if q1 != 40 {
		t.Fatalf("visual Q1(PTE/Joe) = %v, want 40", q1)
	}
}

func TestSimulateMultiMDXMatchesDirectStatic(t *testing.T) {
	e := newEngine(t)
	ps := []int{paperdata.Jan, paperdata.Feb, paperdata.Apr}
	direct, err := e.ExecPerspective(PerspectiveQuery{
		Members: []string{"Joe"}, Perspectives: ps,
		Sem: perspective.Static, Mode: perspective.Visual,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := e.SimulateMultiMDX([]string{"Joe"}, ps, perspective.Visual)
	if err != nil {
		t.Fatal(err)
	}
	// Cell-for-cell agreement.
	n := 0
	direct.Result().Store().NonNull(func(addr []int, want float64) bool {
		n++
		if got := sim.Result().Leaf(addr); math.Abs(got-want) > 1e-9 {
			t.Fatalf("cell %v: sim %v, direct %v", addr, got, want)
		}
		return true
	})
	if n == 0 {
		t.Fatal("empty comparison")
	}
	if sim.Result().Store().Len() != direct.Result().Store().Len() {
		t.Fatalf("cell counts differ: sim %d, direct %d",
			sim.Result().Store().Len(), direct.Result().Store().Len())
	}
	// The simulation does at least as much I/O and strictly more total
	// work (post-merge copies count) — the Fig. 11 gap.
	if sim.Stats.ChunksRead < direct.Stats.ChunksRead {
		t.Fatalf("simulation should not read fewer chunks: sim %d, direct %d",
			sim.Stats.ChunksRead, direct.Stats.ChunksRead)
	}
	if sim.Stats.CellsRelocated <= direct.Stats.CellsRelocated {
		t.Fatalf("simulation should do more cell work: sim %d, direct %d",
			sim.Stats.CellsRelocated, direct.Stats.CellsRelocated)
	}
}

func TestEngineChangesMatchesAlgebraSplit(t *testing.T) {
	e := newEngine(t)
	memRef := paperdata.Warehouse()
	changes := []algebra.Change{
		{Member: "Lisa", OldParent: "FTE", NewParent: "PTE", T: paperdata.Apr},
		{Member: "Tom", OldParent: "PTE", NewParent: "Contractor", T: paperdata.Mar},
	}
	for _, mode := range []perspective.Mode{perspective.Visual, perspective.NonVisual} {
		v, err := e.ExecChanges(ChangesQuery{Changes: changes, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := algebra.Split(memRef, "Organization", changes)
		if err != nil {
			t.Fatal(err)
		}
		assertCubesAgree(t, v, ref, memRef, mode)
	}
}

func TestEngineChangesNewInstanceCells(t *testing.T) {
	e := newEngine(t)
	v, err := e.ExecChanges(ChangesQuery{
		Changes: []algebra.Change{{Member: "Lisa", OldParent: "FTE", NewParent: "PTE", T: paperdata.Apr}},
		Mode:    perspective.Visual,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := v.CellRefs("PTE/Lisa", "NY", "May", "Salary"); err != nil || got != 10 {
		t.Fatalf("(PTE/Lisa, May) = %v, %v; want 10", got, err)
	}
	if got, err := v.CellRefs("FTE/Lisa", "NY", "May", "Salary"); err != nil || !cube.IsNull(got) {
		t.Fatalf("(FTE/Lisa, May) = %v, %v; want ⊥", got, err)
	}
	// Unaffected rows pass through the ordinal remap.
	if got, err := v.CellRefs("PTE/Tom", "NY", "May", "Salary"); err != nil || got != 10 {
		t.Fatalf("(PTE/Tom, May) = %v, %v; want 10", got, err)
	}
	// Visual aggregate over the extended hierarchy.
	if got, err := v.CellRefs("PTE", "NY", "Qtr2", "Salary"); err != nil || got != 60 {
		t.Fatalf("visual Q2(PTE) = %v, %v; want 60", got, err)
	}
}

func TestEngineErrors(t *testing.T) {
	mem := paperdata.Warehouse() // MemStore-backed
	if _, err := New(mem, "Organization"); err == nil {
		t.Fatal("engine over non-chunked cube should fail")
	}
	c := paperdata.ChunkedWarehouse(nil)
	if _, err := New(c, "Location"); err == nil {
		t.Fatal("engine over unbound dimension should fail")
	}
	e := newEngine(t)
	if _, err := e.ExecPerspective(PerspectiveQuery{Members: []string{"Nobody"}, Perspectives: []int{0}}); err == nil {
		t.Fatal("unknown member should fail")
	}
	if _, err := e.ExecPerspective(PerspectiveQuery{Members: []string{"Joe"}, Perspectives: nil}); err == nil {
		t.Fatal("empty perspectives should fail")
	}
	if _, err := e.ExecChanges(ChangesQuery{}); err == nil {
		t.Fatal("empty changes should fail")
	}
	if _, err := e.SimulateMultiMDX([]string{"Joe"}, nil, perspective.Visual); err == nil {
		t.Fatal("empty perspective simulation should fail")
	}
}

func TestEngineDefaultScopeIsVaryingMembers(t *testing.T) {
	e := newEngine(t)
	v, err := e.ExecPerspective(PerspectiveQuery{
		Perspectives: []int{paperdata.Jan},
		Sem:          perspective.Static,
		Mode:         perspective.NonVisual,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Stats.MembersInScope != 1 { // only Joe varies in the paper cube
		t.Fatalf("MembersInScope = %d, want 1", v.Stats.MembersInScope)
	}
}

func TestReadOrderPoliciesAgreeOnValues(t *testing.T) {
	memRef := paperdata.Warehouse()
	ref, err := algebra.ApplyPerspectives(memRef, "Organization", perspective.Forward,
		[]int{paperdata.Feb, paperdata.Apr})
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range []ReadOrder{OrderPebbling, OrderVaryingFirst, OrderVaryingLast, OrderCanonical} {
		e := newEngine(t)
		e.SetReadOrder(order)
		v, err := e.ExecPerspective(PerspectiveQuery{
			Members:      []string{"Joe"},
			Perspectives: []int{paperdata.Feb, paperdata.Apr},
			Sem:          perspective.Forward,
			Mode:         perspective.Visual,
		})
		if err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		assertCubesAgree(t, v, ref, memRef, perspective.Visual)
		if v.Stats.PeakResidentChunks <= 0 {
			t.Fatalf("%v: peak = %d", order, v.Stats.PeakResidentChunks)
		}
	}
}

// TestDimensionOrderLemma checks Lemma 5.1 on a cube engineered so that
// merging instances spans varying-dimension chunks: reading with the
// varying dimension first needs no more resident chunks than reading
// with it last, and the pebbling heuristic is at least as good as either.
func TestDimensionOrderLemma(t *testing.T) {
	// Chunk the organization dimension finely (1 member per chunk) so
	// Joe's three instances land in three different chunks.
	c := paperdata.ChunkedWarehouse([]int{1, 2, 4, 2})
	peaks := map[ReadOrder]int{}
	for _, order := range []ReadOrder{OrderPebbling, OrderVaryingFirst, OrderVaryingLast} {
		e, err := New(c, "Organization")
		if err != nil {
			t.Fatal(err)
		}
		e.SetReadOrder(order)
		v, err := e.ExecPerspective(PerspectiveQuery{
			Members:      []string{"Joe"},
			Perspectives: []int{paperdata.Feb, paperdata.Apr},
			Sem:          perspective.Forward,
			Mode:         perspective.Visual,
		})
		if err != nil {
			t.Fatal(err)
		}
		if v.Stats.MergeEdges == 0 {
			t.Fatal("test cube should produce merge edges")
		}
		peaks[order] = v.Stats.PeakResidentChunks
	}
	if peaks[OrderVaryingFirst] > peaks[OrderVaryingLast] {
		t.Fatalf("Lemma 5.1 violated: varying-first peak %d > varying-last peak %d",
			peaks[OrderVaryingFirst], peaks[OrderVaryingLast])
	}
	if peaks[OrderPebbling] > peaks[OrderVaryingFirst] {
		t.Fatalf("pebbling peak %d should not exceed varying-first peak %d",
			peaks[OrderPebbling], peaks[OrderVaryingFirst])
	}
}

func TestEngineWithSimulatedDisk(t *testing.T) {
	e := newEngine(t)
	d := simdisk.MustNew(simdisk.DefaultModel())
	e.AttachDisk(d)
	v, err := e.ExecPerspective(PerspectiveQuery{
		Members:      []string{"Joe"},
		Perspectives: []int{paperdata.Feb},
		Sem:          perspective.Forward,
		Mode:         perspective.NonVisual,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Stats.DiskCostMs <= 0 {
		t.Fatalf("DiskCostMs = %v, want > 0", v.Stats.DiskCostMs)
	}
	if d.Stats().Reads != v.Stats.ChunksRead {
		t.Fatalf("disk reads %d != chunks read %d", d.Stats().Reads, v.Stats.ChunksRead)
	}
	e.AttachDisk(nil)
	v2, err := e.ExecPerspective(PerspectiveQuery{
		Members: []string{"Joe"}, Perspectives: []int{paperdata.Feb},
		Sem: perspective.Forward, Mode: perspective.NonVisual,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Stats.DiskCostMs != 0 {
		t.Fatal("detached disk should not accrue cost")
	}
}

func TestViewStoreReadOnly(t *testing.T) {
	e := newEngine(t)
	v, err := e.ExecPerspective(PerspectiveQuery{
		Members: []string{"Joe"}, Perspectives: []int{paperdata.Jan},
		Sem: perspective.Static, Mode: perspective.NonVisual,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("writing through a view should panic")
		}
	}()
	v.Result().SetLeaf([]int{0, 0, 0, 0}, 1)
}

func TestViewStoreCloneMaterializes(t *testing.T) {
	e := newEngine(t)
	v, err := e.ExecPerspective(PerspectiveQuery{
		Members: []string{"Joe"}, Perspectives: []int{paperdata.Feb, paperdata.Apr},
		Sem: perspective.Forward, Mode: perspective.NonVisual,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := v.Result().Store().Clone()
	if snap.Len() != v.Result().Store().Len() {
		t.Fatalf("clone Len %d != view Len %d", snap.Len(), v.Result().Store().Len())
	}
	v.Result().Store().NonNull(func(addr []int, val float64) bool {
		if snap.Get(addr) != val {
			t.Fatalf("clone differs at %v", addr)
		}
		return true
	})
}

// TestEngineStaticOverUnorderedParameter exercises the engine with a
// location-driven varying dimension (paper §3.1: "structural changes
// are not necessarily temporal, but can vary by location"): static
// semantics is the only one defined, and it must work chunk-wise.
func TestEngineStaticOverUnorderedParameter(t *testing.T) {
	prod := dimension.New("Product", false)
	prod.MustAdd("", "100")
	prod.MustAdd("100", "1001")
	prod.MustAdd("", "200")
	prod.MustAdd("200", "1001")
	market := dimension.New("Market", false) // unordered
	for _, m := range []string{"E1", "E2", "W1", "W2"} {
		market.MustAdd("", m)
	}
	st := make([]int, 0)
	_ = st
	extents := []int{prod.NumLeaves(), market.NumLeaves()}
	g := chunkGeom(t, extents, []int{1, 2})
	store := chunkStore(g)
	c := cube.NewWithStore(store, prod, market)
	b := dimension.NewBinding(prod, market)
	b.SetVS(prod.MustLookup("100/1001"), 0, 1) // east bundling
	b.SetVS(prod.MustLookup("200/1001"), 2, 3) // west bundling
	if err := c.AddBinding(b); err != nil {
		t.Fatal(err)
	}
	set := func(inst string, mkt int, v float64) {
		c.SetLeaf([]int{prod.Member(prod.MustLookup(inst)).LeafOrdinal, mkt}, v)
	}
	set("100/1001", 0, 1)
	set("100/1001", 1, 2)
	set("200/1001", 2, 4)
	set("200/1001", 3, 8)

	e, err := New(c, "Product")
	if err != nil {
		t.Fatal(err)
	}
	// Dynamic semantics must be rejected.
	if _, err := e.ExecPerspective(PerspectiveQuery{
		Members: []string{"1001"}, Perspectives: []int{0},
		Sem: perspective.Forward, Mode: perspective.NonVisual,
	}); err == nil {
		t.Fatal("forward over unordered Market should fail")
	}
	// Static at market E1 keeps only the east instance.
	v, err := e.ExecPerspective(PerspectiveQuery{
		Members: []string{"1001"}, Perspectives: []int{0},
		Sem: perspective.Static, Mode: perspective.NonVisual,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := v.CellRefs("100/1001", "E2"); err != nil || got != 2 {
		t.Fatalf("(100/1001, E2) = %v, %v; want 2", got, err)
	}
	if got, err := v.CellRefs("200/1001", "W1"); err != nil || !cube.IsNull(got) {
		t.Fatalf("(200/1001, W1) = %v, %v; want ⊥ (west instance dropped)", got, err)
	}
}

func chunkGeom(t *testing.T, extents, dims []int) *chunk.Geometry {
	t.Helper()
	g, err := chunk.NewGeometry(extents, dims)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func chunkStore(g *chunk.Geometry) *chunk.Store { return chunk.NewStore(g) }

// Regression: a non-visual aggregate over a split-created instance must
// be ⊥ (it has no input cell), not a panic (found by
// TestTheorem41RandomQueries).
func TestChangesNonVisualAggregateOfNewInstance(t *testing.T) {
	e := newEngine(t)
	v, err := e.ExecChanges(ChangesQuery{
		Changes: []algebra.Change{{Member: "Lisa", OldParent: "FTE", NewParent: "PTE", T: paperdata.Apr}},
		Mode:    perspective.NonVisual,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.CellRefs("PTE/Lisa", "NY", "Qtr2", "Salary")
	if err != nil {
		t.Fatal(err)
	}
	if !cube.IsNull(got) {
		t.Fatalf("non-visual aggregate of hypothetical instance = %v, want ⊥", got)
	}
	// Visual mode computes it from the relocated leaves.
	vv, err := e.ExecChanges(ChangesQuery{
		Changes: []algebra.Change{{Member: "Lisa", OldParent: "FTE", NewParent: "PTE", T: paperdata.Apr}},
		Mode:    perspective.Visual,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := vv.CellRefs("PTE/Lisa", "NY", "Qtr2", "Salary"); err != nil || got != 30 {
		t.Fatalf("visual aggregate = %v, %v; want 30", got, err)
	}
}

// TestEngineOverSpilledStore runs a perspective query against a store
// whose chunks mostly live in a spill file (the paper's cube-behind-a-
// cache configuration): results must match the fully resident run.
func TestEngineOverSpilledStore(t *testing.T) {
	c := paperdata.ChunkedWarehouse(nil)
	st := c.Store().(*chunk.Store)
	if err := st.SpillTo(t.TempDir()+"/cube.spill", 200); err != nil {
		t.Fatal(err)
	}
	if st.SpillStats().Spilled == 0 {
		t.Fatal("budget too large; nothing spilled — test is vacuous")
	}
	e, err := New(c, "Organization")
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.ExecPerspective(PerspectiveQuery{
		Members:      []string{"Joe"},
		Perspectives: []int{paperdata.Feb, paperdata.Apr},
		Sem:          perspective.Forward,
		Mode:         perspective.Visual,
	})
	if err != nil {
		t.Fatal(err)
	}
	memRef := paperdata.Warehouse()
	ref, err := algebra.ApplyPerspectives(memRef, "Organization", perspective.Forward,
		[]int{paperdata.Feb, paperdata.Apr})
	if err != nil {
		t.Fatal(err)
	}
	assertCubesAgree(t, v, ref, memRef, perspective.Visual)
	if st.SpillStats().Faults == 0 {
		t.Fatal("query over a spilled store should fault chunks")
	}
}
