package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"whatifolap/internal/chunk"
	"whatifolap/internal/cube"
	"whatifolap/internal/paperdata"
	"whatifolap/internal/perspective"
	"whatifolap/internal/trace"
	"whatifolap/internal/workload"
)

// legacyOverlay is the reference relocation kernel: the string-keyed
// cube.MemStore scan the chunk-native kernel replaced. It reads the
// plan's schedule and applies the same relocation tables, so any
// divergence from the chunk-native overlays is a kernel bug, not a
// planning difference.
func legacyOverlay(e *Engine, p *PhysicalPlan) *cube.MemStore {
	ms := cube.NewMemStore(e.base.NumDims())
	g := e.store.Geometry()
	ccoord := make([]int, g.NumDims())
	addr := make([]int, g.NumDims())
	out := make([]int, g.NumDims())
	for _, id := range p.Schedule {
		ch := e.store.ReadChunk(id)
		if ch == nil {
			continue
		}
		g.CoordOf(id, ccoord)
		ch.ForEach(func(off int, v float64) bool {
			g.Join(ccoord, off, addr)
			row := p.Target[addr[e.vi]]
			if row == nil {
				return true
			}
			dst := row[addr[e.pi]]
			if dst < 0 {
				return true
			}
			copy(out, addr)
			out[e.vi] = dst
			ms.Set(out, v)
			return true
		})
	}
	return ms
}

// dumpStore materializes any cube.Store for exact comparison.
func dumpStore(s cube.Store) map[string]float64 {
	m := make(map[string]float64)
	s.NonNull(func(addr []int, v float64) bool {
		m[fmt.Sprint(addr)] = v
		return true
	})
	return m
}

// overlayOf extracts the relocated-cell overlay from a view.
func overlayOf(t *testing.T, v *View) cube.Store {
	t.Helper()
	vs, ok := v.Result().Store().(*viewStore)
	if !ok {
		t.Fatalf("view store is %T, want *viewStore", v.Result().Store())
	}
	return vs.overlay
}

// TestKernelMatchesLegacyMemStorePaper pins the tentpole invariant on
// the paper's warehouse: at every semantics × mode, the chunk-native
// overlay (serial) and the partitioned per-group overlays (parallel)
// hold exactly the cells the legacy MemStore kernel produces.
func TestKernelMatchesLegacyMemStorePaper(t *testing.T) {
	e := newEngine(t)
	for _, sem := range allSemantics {
		for _, mode := range []perspective.Mode{perspective.NonVisual, perspective.Visual} {
			q := PerspectiveQuery{
				Members: []string{"Joe"}, Perspectives: []int{paperdata.Feb, paperdata.Apr},
				Sem: sem, Mode: mode,
			}
			plan, err := e.PlanPerspective(q)
			if err != nil {
				t.Fatalf("%v/%v plan: %v", sem, mode, err)
			}
			want := dumpStore(legacyOverlay(e, plan))

			serial, err := e.ExecPerspective(q)
			if err != nil {
				t.Fatalf("%v/%v serial: %v", sem, mode, err)
			}
			sov := overlayOf(t, serial)
			if _, ok := sov.(*chunk.Overlay); !ok {
				t.Fatalf("serial overlay is %T, want *chunk.Overlay", sov)
			}
			if got := dumpStore(sov); !sameCells(want, got) {
				t.Fatalf("%v/%v: serial chunk-native overlay differs from legacy kernel (%d vs %d cells)",
					sem, mode, len(got), len(want))
			}

			par, err := e.ExecPerspectiveWith(ExecContext{Workers: 4}, q)
			if err != nil {
				t.Fatalf("%v/%v parallel: %v", sem, mode, err)
			}
			pov := overlayOf(t, par)
			if par.Stats.ScanWorkers > 1 {
				if _, ok := pov.(*chunk.PartitionedOverlay); !ok {
					t.Fatalf("parallel overlay is %T, want *chunk.PartitionedOverlay", pov)
				}
			}
			if got := dumpStore(pov); !sameCells(want, got) {
				t.Fatalf("%v/%v: partitioned overlay differs from legacy kernel (%d vs %d cells)",
					sem, mode, len(got), len(want))
			}
		}
	}
}

// TestKernelQuickLegacyEquivalenceWorkforce is the property form over a
// generated workforce cube: for random scopes, perspective sets,
// semantics and modes, the chunk-native serial overlay, the parallel
// partitioned overlay and the legacy MemStore kernel agree cell for
// cell.
func TestKernelQuickLegacyEquivalenceWorkforce(t *testing.T) {
	w, err := workload.NewWorkforce(workload.ConfigTiny())
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(w.Cube, workload.DimDepartment)
	if err != nil {
		t.Fatal(err)
	}
	property := func(memberBits, perspBits uint16, semPick, modePick, workerPick uint8) bool {
		var members []string
		for i, name := range w.Changing {
			if memberBits&(1<<uint(i%16)) != 0 {
				members = append(members, name)
			}
		}
		if len(members) == 0 {
			members = w.Changing[:1]
		}
		var ps []int
		for m := 0; m < w.Config.Months; m++ {
			if perspBits&(1<<uint(m)) != 0 {
				ps = append(ps, m)
			}
		}
		if len(ps) == 0 {
			ps = []int{0}
		}
		q := PerspectiveQuery{
			Members:      members,
			Perspectives: ps,
			Sem:          allSemantics[int(semPick)%len(allSemantics)],
			Mode:         []perspective.Mode{perspective.NonVisual, perspective.Visual}[int(modePick)%2],
		}
		workers := []int{2, 4, 8}[int(workerPick)%3]

		plan, perr := e.PlanPerspective(q)
		serial, serr := e.ExecPerspective(q)
		par, parErr := e.ExecPerspectiveWith(ExecContext{Workers: workers}, q)
		if perr != nil || serr != nil || parErr != nil {
			// All three paths must fail together with the same error.
			return perr != nil && serr != nil && parErr != nil &&
				perr.Error() == serr.Error() && serr.Error() == parErr.Error()
		}
		want := dumpStore(legacyOverlay(e, plan))
		return sameCells(want, dumpStore(overlayOf(t, serial))) &&
			sameCells(want, dumpStore(overlayOf(t, par)))
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestKernelAmortizedAllocsPerCell is the core-level allocation
// regression: re-running scanInto against a pre-warmed overlay, the
// allocations amortize to (well under) one per relocated cell. The
// exact-zero per-cell bound lives next to the Overlay in
// internal/chunk; this test pins the whole kernel loop — Join, target
// lookup, SplitID, chunk write — to O(chunks) allocations, not
// O(cells). The legacy MemStore kernel allocates at least one address
// key per cell, so its ratio is ≥ 1 by construction.
func TestKernelAmortizedAllocsPerCell(t *testing.T) {
	e := newEngine(t)
	q := PerspectiveQuery{
		Members: []string{"Joe"}, Perspectives: []int{paperdata.Feb, paperdata.Apr},
		Sem: perspective.Forward, Mode: perspective.NonVisual,
	}
	plan, err := e.PlanPerspective(q)
	if err != nil {
		t.Fatal(err)
	}
	ov := chunk.NewOverlay(e.store.Geometry())
	tally, err := e.scanInto(nil, plan.Schedule, plan, ov, nil, trace.SpanRef{})
	if err != nil {
		t.Fatal(err)
	}
	if tally.cellsRelocated == 0 {
		t.Fatal("no cells relocated; test is vacuous")
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.scanInto(nil, plan.Schedule, plan, ov, nil, trace.SpanRef{}); err != nil {
			t.Fatal(err)
		}
	})
	perCell := allocs / float64(tally.cellsRelocated)
	if perCell >= 1 {
		t.Fatalf("scanInto allocates %.2f/run = %.3f per relocated cell (%d cells); want amortized < 1",
			allocs, perCell, tally.cellsRelocated)
	}
}
