package core

import (
	"context"
	"fmt"
	"sort"

	"whatifolap/internal/algebra"
	"whatifolap/internal/chunk"
	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
	"whatifolap/internal/perspective"
	"whatifolap/internal/simdisk"
	"whatifolap/internal/trace"
)

// ReadOrder selects how the engine orders chunk reads.
type ReadOrder int

const (
	// OrderPebbling uses the paper's pebbling heuristic over the merge
	// dependency graph (§5.2) — the default.
	OrderPebbling ReadOrder = iota
	// OrderVaryingFirst reads chunks sorted with the varying dimension
	// varying fastest — the good sequential order of Lemma 5.1.
	OrderVaryingFirst
	// OrderVaryingLast reads chunks with the varying dimension varying
	// slowest — the bad order of Lemma 5.1, kept for ablations.
	OrderVaryingLast
	// OrderCanonical reads chunks in canonical (schema row-major) ID
	// order.
	OrderCanonical
)

// String names the read order.
func (o ReadOrder) String() string {
	switch o {
	case OrderPebbling:
		return "pebbling"
	case OrderVaryingFirst:
		return "varying-first"
	case OrderVaryingLast:
		return "varying-last"
	case OrderCanonical:
		return "canonical"
	}
	return fmt.Sprintf("ReadOrder(%d)", int(o))
}

// Engine evaluates what-if queries over a chunk-backed cube with one
// varying dimension binding, as a staged pipeline: Plan* builds an
// inspectable PhysicalPlan (target pruning, merge groups, dependency
// graph, read schedule), Exec* executes it (scan → relocate → merge →
// assemble), optionally fanning the scan out over independent merge
// groups.
//
// Concurrency: configure an engine (SetReadOrder, AttachDisk, the
// deprecated SetContext) before sharing it; after that, the Plan*,
// Exec* and Simulate* methods mutate no engine state and are safe for
// concurrent use on one engine over one store. The serving layer relies
// on this — shared-snapshot queries run through a single chunk store,
// whose read path is safe for concurrent readers (see chunk.Store).
// Per-query state (cancellation context, scan parallelism) travels in
// an ExecContext instead of engine fields.
type Engine struct {
	base  *cube.Cube
	store *chunk.Store
	// chain is non-nil when the cube reads through a scenario layer
	// chain (chunk.Chain): the scan resolves each chunk's cells through
	// the chain instead of the raw store, and the assembled view falls
	// back to the chain for out-of-scope rows, so scenario edits are
	// visible to engine-path queries without copying anything.
	chain   *chunk.Chain
	binding *dimension.Binding
	vi, pi  int
	order   ReadOrder
	disk    *simdisk.Disk
	// ctx backs the deprecated SetContext shim; new callers thread an
	// ExecContext through the Exec*With methods instead.
	ctx context.Context
}

// New creates an engine over a cube whose store is a *chunk.Store —
// directly, or through an engine-capable scenario layer chain — and
// whose named varying dimension has a binding.
func New(base *cube.Cube, varyingName string) (*Engine, error) {
	var st *chunk.Store
	var chain *chunk.Chain
	switch s := base.Store().(type) {
	case *chunk.Store:
		st = s
	case *chunk.Chain:
		if !s.EngineCapable() {
			return nil, fmt.Errorf("core: engine requires a uniform chunk-backed layer chain (wider scenario layers evaluate through the general path)")
		}
		chain = s
		st = s.ChunkBase()
	default:
		return nil, fmt.Errorf("core: engine requires a chunk-backed cube, got %T", base.Store())
	}
	b := base.BindingFor(varyingName)
	if b == nil {
		return nil, fmt.Errorf("core: dimension %q has no varying binding", varyingName)
	}
	vi := base.DimIndex(b.Varying.Name())
	pi := base.DimIndex(b.Param.Name())
	if vi < 0 || pi < 0 {
		return nil, fmt.Errorf("core: binding dimensions not in cube schema")
	}
	return &Engine{base: base, store: st, chain: chain, binding: b, vi: vi, pi: pi}, nil
}

// readStore returns the store out-of-scope view reads resolve against:
// the layer chain when the engine runs over a scenario, else the raw
// chunk store.
func (e *Engine) readStore() cube.Store {
	if e.chain != nil {
		return e.chain
	}
	return e.store
}

// sourceChunkIDs returns the chunk IDs the planner must consider: the
// base store's materialized chunks, unioned with chunks only the
// scenario layer chain holds (edited cells may land in chunks the base
// never materialized).
func (e *Engine) sourceChunkIDs() []int {
	ids := e.store.ChunkIDs()
	if e.chain == nil {
		return ids
	}
	seen := make(map[int]bool, len(ids))
	out := append([]int(nil), ids...)
	for _, id := range ids {
		seen[id] = true
	}
	for _, id := range e.chain.LayerChunkIDs() {
		if !seen[id] {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// SetReadOrder selects the chunk read-order policy (default pebbling).
// Configuration, not per-query state: set it before sharing the engine.
func (e *Engine) SetReadOrder(o ReadOrder) { e.order = o }

// SetContext attaches a default context observed by the Exec* methods
// that take no ExecContext.
//
// Deprecated: thread an ExecContext through ExecPerspectiveWith,
// ExecChangesWith or SimulateMultiMDXWith instead. SetContext mutates
// shared engine state, so it is not safe to call concurrently with
// execution, and one stored context cannot serve concurrent queries.
func (e *Engine) SetContext(ctx context.Context) { e.ctx = ctx }

// AttachDisk routes all chunk reads through a simulated disk via the
// store's cost hook: each read's modeled cost flows back to the query
// that issued it (Stats.DiskCostMs), so concurrent queries sharing the
// disk never absorb each other's I/O. Configuration, not per-query
// state: attach before sharing the engine.
func (e *Engine) AttachDisk(d *simdisk.Disk) {
	e.disk = d
	if d == nil {
		e.store.SetCostHook(nil)
		return
	}
	e.store.SetCostHook(d.Hook())
}

// Binding returns the engine's varying/parameter binding.
func (e *Engine) Binding() *dimension.Binding { return e.binding }

// PerspectiveQuery is a negative-scenario what-if query (paper §3.3):
// report the scoped members under perspectives P with the given
// semantics and non-leaf evaluation mode.
type PerspectiveQuery struct {
	// Members are base names of varying-dimension members in the query
	// scope. Empty means every member with more than one instance.
	Members []string
	// Perspectives are parameter-dimension leaf ordinals.
	Perspectives []int
	Sem          perspective.Semantics
	Mode         perspective.Mode
}

// planPerspective resolves the query scope and builds the relocation
// tables: for every source instance ordinal, the destination ordinal
// per parameter leaf (-1 = cell vanishes).
func (e *Engine) planPerspective(q PerspectiveQuery) (members []string, target map[int][]int, scoped []bool, err error) {
	members = q.Members
	if len(members) == 0 {
		members = e.binding.Varying.VaryingMembers()
	}
	res, err := perspective.ApplyMembers(q.Sem, e.binding, q.Perspectives, members)
	if err != nil {
		return nil, nil, nil, err
	}
	varying := e.binding.Varying
	nT := e.binding.Param.NumLeaves()

	target = make(map[int][]int)
	scoped = make([]bool, varying.NumLeaves())
	for _, name := range members {
		insts := varying.Instances(name)
		for _, inst := range insts {
			if o := varying.Member(inst).LeafOrdinal; o >= 0 {
				scoped[o] = true
			}
		}
		for t := 0; t < nT; t++ {
			src := e.binding.InstanceAt(name, t)
			if src == dimension.None {
				continue
			}
			dst := dimension.None
			for _, inst := range insts {
				if vs := res.VSOut[inst]; vs != nil && vs.Contains(t) {
					dst = inst
					break
				}
			}
			srcOrd := varying.Member(src).LeafOrdinal
			row, ok := target[srcOrd]
			if !ok {
				row = make([]int, nT)
				for i := range row {
					row[i] = -1
				}
				target[srcOrd] = row
			}
			if dst != dimension.None {
				row[t] = varying.Member(dst).LeafOrdinal
			}
		}
	}
	return members, target, scoped, nil
}

// PlanPerspective builds the physical plan for a perspective query
// without executing it (no chunk I/O): explain output, tests and
// benchmarks inspect the merge groups, read schedule and pebbling peak
// from it.
func (e *Engine) PlanPerspective(q PerspectiveQuery) (*PhysicalPlan, error) {
	_, target, scoped, err := e.planPerspective(q)
	if err != nil {
		return nil, err
	}
	return e.buildPlan(target, scoped)
}

// ExecPerspective plans and runs a perspective query, returning the
// perspective-cube view. Equivalent to ExecPerspectiveWith under the
// deprecated SetContext context, scanning serially.
func (e *Engine) ExecPerspective(q PerspectiveQuery) (*View, error) {
	return e.ExecPerspectiveWith(ExecContext{Ctx: e.ctx}, q)
}

// ExecPerspectiveWith plans and runs a perspective query under an
// explicit per-execution context: cancellation from ec.Ctx, scan
// parallelism from ec.Workers.
func (e *Engine) ExecPerspectiveWith(ec ExecContext, q PerspectiveQuery) (*View, error) {
	tr := trace.FromContext(ec.Ctx)
	planStart := tr.Now()
	members, target, scoped, err := e.planPerspective(q)
	if err != nil {
		return nil, err
	}
	plan, err := e.buildPlan(target, scoped)
	if err != nil {
		return nil, err
	}
	recordPlanSpan(tr, trace.SpanFromContext(ec.Ctx), planStart, plan)
	view, stats, err := e.execute(ec, plan, nil, nil, q.Mode)
	if err != nil {
		return nil, err
	}
	stats.MembersInScope = len(members)
	if q.Sem.Dynamic() {
		if norm, err := perspective.NormalizePerspectives(e.binding.Param, q.Perspectives); err == nil {
			stats.Ranges = len(norm)
		}
	}
	view.Stats = stats
	return view, nil
}

// ChangesQuery is a positive-scenario what-if query (paper §3.4): apply
// the hypothetical reclassifications R(m, o, n, t) and report under the
// given mode.
type ChangesQuery struct {
	Changes []algebra.Change
	Mode    perspective.Mode
}

// changesPlan pairs the physical plan of a positive scenario with the
// view-assembly inputs it needs: the extended dimension set, rebased
// bindings and the view→base ordinal remap.
type changesPlan struct {
	phys        *PhysicalPlan
	newDims     []*dimension.Dimension
	newBindings []*dimension.Binding
	baseOrd     []int
	affected    int
}

// planChanges resolves a positive scenario into a physical plan plus
// the extended-dimension assembly inputs.
func (e *Engine) planChanges(q ChangesQuery) (*changesPlan, error) {
	if len(q.Changes) == 0 {
		return nil, fmt.Errorf("core: empty change relation")
	}
	plan, err := algebra.PlanSplit(e.binding, q.Changes)
	if err != nil {
		return nil, err
	}
	oldDim := e.binding.Varying
	newDim := plan.Dim
	nT := e.binding.Param.NumLeaves()

	// Affected base members: those named by any change.
	affected := map[string]bool{}
	for _, ch := range q.Changes {
		affected[ch.Member] = true
	}
	// Scope: every instance (old and new) of an affected member, in NEW
	// ordinals.
	scoped := make([]bool, newDim.NumLeaves())
	for name := range affected {
		for _, inst := range newDim.Instances(name) {
			if o := newDim.Member(inst).LeafOrdinal; o >= 0 {
				scoped[o] = true
			}
		}
	}
	// Relocation tables keyed by OLD ordinals, destinations in NEW
	// ordinals. Affected instances without a redirect entry copy
	// identically (the overlay owns their rows).
	target := make(map[int][]int)
	for name := range affected {
		for _, inst := range oldDim.Instances(name) {
			srcOrd := oldDim.Member(inst).LeafOrdinal
			if srcOrd < 0 {
				continue
			}
			row := make([]int, nT)
			redir := plan.Redirect[inst]
			for t := 0; t < nT; t++ {
				dstID := inst
				if redir != nil {
					dstID = redir[t]
				}
				row[t] = newDim.Member(dstID).LeafOrdinal
			}
			target[srcOrd] = row
		}
	}
	// Ordinal remap for unaffected rows: view ordinal -> base ordinal.
	baseOrd := make([]int, newDim.NumLeaves())
	for vo := range baseOrd {
		id := newDim.Leaf(vo).ID
		if int(id) < oldDim.NumMembers() {
			baseOrd[vo] = oldDim.Member(id).LeafOrdinal
		} else {
			baseOrd[vo] = -1 // hypothetical instance
		}
	}
	// Rebase bindings.
	newBindings := make([]*dimension.Binding, 0, len(e.base.Bindings()))
	for _, b := range e.base.Bindings() {
		if b == e.binding {
			newBindings = append(newBindings, plan.Binding)
		} else {
			newBindings = append(newBindings, b)
		}
	}
	newDims := make([]*dimension.Dimension, e.base.NumDims())
	copy(newDims, e.base.Dims())
	newDims[e.vi] = newDim

	phys, err := e.buildPlan(target, scoped)
	if err != nil {
		return nil, err
	}
	return &changesPlan{
		phys: phys, newDims: newDims, newBindings: newBindings,
		baseOrd: baseOrd, affected: len(affected),
	}, nil
}

// PlanChanges builds the physical plan for a positive scenario without
// executing it (no chunk I/O).
func (e *Engine) PlanChanges(q ChangesQuery) (*PhysicalPlan, error) {
	cp, err := e.planChanges(q)
	if err != nil {
		return nil, err
	}
	return cp.phys, nil
}

// ExecChanges plans and runs a positive-scenario query. The result
// view's varying dimension is extended with the hypothetical instances.
// Equivalent to ExecChangesWith under the deprecated SetContext
// context, scanning serially.
func (e *Engine) ExecChanges(q ChangesQuery) (*View, error) {
	return e.ExecChangesWith(ExecContext{Ctx: e.ctx}, q)
}

// ExecChangesWith plans and runs a positive-scenario query under an
// explicit per-execution context.
func (e *Engine) ExecChangesWith(ec ExecContext, q ChangesQuery) (*View, error) {
	tr := trace.FromContext(ec.Ctx)
	planStart := tr.Now()
	cp, err := e.planChanges(q)
	if err != nil {
		return nil, err
	}
	recordPlanSpan(tr, trace.SpanFromContext(ec.Ctx), planStart, cp.phys)
	view, stats, err := e.execute(ec, cp.phys, cp.newDims, cp.newBindings, q.Mode)
	if err != nil {
		return nil, err
	}
	stats.MembersInScope = cp.affected
	view.Stats = stats
	// Remap the view store through baseOrd.
	view.result.Store().(*viewStore).baseOrd = cp.baseOrd
	return view, nil
}

// readPermutation builds the dimension permutation for sequential read
// orders: the first dimension varies fastest.
func (e *Engine) readPermutation() []int {
	n := e.base.NumDims()
	var perm []int
	switch e.order {
	case OrderVaryingFirst:
		// Varying first, then parameter, then the rest (Lemma 5.1's
		// good order O1).
		perm = append(perm, e.vi)
		if e.pi != e.vi {
			perm = append(perm, e.pi)
		}
		for d := 0; d < n; d++ {
			if d != e.vi && d != e.pi {
				perm = append(perm, d)
			}
		}
	case OrderVaryingLast:
		for d := 0; d < n; d++ {
			if d != e.vi && d != e.pi {
				perm = append(perm, d)
			}
		}
		if e.pi != e.vi {
			perm = append(perm, e.pi)
		}
		perm = append(perm, e.vi)
	default: // OrderCanonical: schema row-major = last dim fastest.
		for d := n - 1; d >= 0; d-- {
			perm = append(perm, d)
		}
	}
	return perm
}

func sortChunksByOrder(g *chunk.Geometry, ids []int, perm []int) []int {
	type kv struct{ key, id int }
	keyed := make([]kv, len(ids))
	ccoord := make([]int, g.NumDims())
	for i, id := range ids {
		g.CoordOf(id, ccoord)
		keyed[i] = kv{key: g.OrderID(ccoord, perm), id: id}
	}
	// Insertion-stable sort by key.
	for i := 1; i < len(keyed); i++ {
		for j := i; j > 0 && keyed[j].key < keyed[j-1].key; j-- {
			keyed[j], keyed[j-1] = keyed[j-1], keyed[j]
		}
	}
	out := make([]int, len(ids))
	for i, k := range keyed {
		out[i] = k.id
	}
	return out
}

// restKey encodes chunk coordinates with the varying dimension masked,
// identifying a merge group.
func restKey(ccoord []int, vi int) string {
	b := make([]byte, 0, len(ccoord)*4)
	for i, c := range ccoord {
		if i == vi {
			b = append(b, 0xff, 0xff, 0xff, 0xff) // masked coordinate
			continue
		}
		b = append(b, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
	}
	return string(b)
}

// SimulateMultiMDX evaluates a multi-perspective static query the naive
// way the paper uses as its baseline (§6.1, the "Multiple MDX" line):
// one single-perspective static query per perspective, post-processing
// the individual result sets into a single result set. The combined
// statistics sum the per-query work, exposing the repeated planning and
// chunk reads that the direct implementation avoids.
func (e *Engine) SimulateMultiMDX(members []string, perspectives []int, mode perspective.Mode) (*View, error) {
	return e.SimulateMultiMDXWith(ExecContext{Ctx: e.ctx}, members, perspectives, mode)
}

// SimulateMultiMDXWith is SimulateMultiMDX under an explicit
// per-execution context.
func (e *Engine) SimulateMultiMDXWith(ec ExecContext, members []string, perspectives []int, mode perspective.Mode) (*View, error) {
	if len(perspectives) == 0 {
		return nil, fmt.Errorf("core: empty perspective set")
	}
	var combined *View
	var stats Stats
	merged := chunk.NewOverlay(e.store.Geometry())
	for _, p := range perspectives {
		if err := ec.err(); err != nil {
			return nil, err
		}
		v, err := e.ExecPerspectiveWith(ec, PerspectiveQuery{
			Members:      members,
			Perspectives: []int{p},
			Sem:          perspective.Static,
			Mode:         mode,
		})
		if err != nil {
			return nil, err
		}
		stats.Add(v.Stats)
		// Post-process: fold this query's rows into the merged result
		// set. Under static semantics a surviving instance keeps its
		// original values, so overlapping rows agree and overwriting is
		// sound.
		ov := v.result.Store().(*viewStore).overlay
		ov.NonNull(func(addr []int, val float64) bool {
			merged.Set(addr, val)
			stats.CellsRelocated++
			return true
		})
		combined = v
	}
	// Reuse the last view's scope (identical across the runs) with the
	// merged overlay.
	last := combined.result.Store().(*viewStore)
	vs := &viewStore{base: e.readStore(), overlay: merged, vi: e.vi, scoped: last.scoped}
	result := cube.NewWithStore(vs, e.base.Dims()...)
	for _, b := range e.base.Bindings() {
		if err := result.AddBinding(b); err != nil {
			return nil, err
		}
	}
	result.SetRules(e.base.Rules())
	stats.MembersInScope = combined.Stats.MembersInScope
	return &View{input: e.base, result: result, mode: mode, Stats: stats}, nil
}
