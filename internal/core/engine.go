package core

import (
	"context"
	"fmt"

	"whatifolap/internal/algebra"
	"whatifolap/internal/chunk"
	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
	"whatifolap/internal/pebble"
	"whatifolap/internal/perspective"
	"whatifolap/internal/simdisk"
)

// ReadOrder selects how the engine orders chunk reads.
type ReadOrder int

const (
	// OrderPebbling uses the paper's pebbling heuristic over the merge
	// dependency graph (§5.2) — the default.
	OrderPebbling ReadOrder = iota
	// OrderVaryingFirst reads chunks sorted with the varying dimension
	// varying fastest — the good sequential order of Lemma 5.1.
	OrderVaryingFirst
	// OrderVaryingLast reads chunks with the varying dimension varying
	// slowest — the bad order of Lemma 5.1, kept for ablations.
	OrderVaryingLast
	// OrderCanonical reads chunks in canonical (schema row-major) ID
	// order.
	OrderCanonical
)

// String names the read order.
func (o ReadOrder) String() string {
	switch o {
	case OrderPebbling:
		return "pebbling"
	case OrderVaryingFirst:
		return "varying-first"
	case OrderVaryingLast:
		return "varying-last"
	case OrderCanonical:
		return "canonical"
	}
	return fmt.Sprintf("ReadOrder(%d)", int(o))
}

// Engine evaluates what-if queries over a chunk-backed cube with one
// varying dimension binding. Engines are not safe for concurrent use,
// and the underlying chunk store's read accounting is unsynchronized:
// run concurrent queries against independent cube clones, not a shared
// store.
type Engine struct {
	base    *cube.Cube
	store   *chunk.Store
	binding *dimension.Binding
	vi, pi  int
	order   ReadOrder
	disk    *simdisk.Disk
	ctx     context.Context
}

// New creates an engine over a cube whose store is a *chunk.Store and
// whose named varying dimension has a binding.
func New(base *cube.Cube, varyingName string) (*Engine, error) {
	st, ok := base.Store().(*chunk.Store)
	if !ok {
		return nil, fmt.Errorf("core: engine requires a chunk-backed cube, got %T", base.Store())
	}
	b := base.BindingFor(varyingName)
	if b == nil {
		return nil, fmt.Errorf("core: dimension %q has no varying binding", varyingName)
	}
	vi := base.DimIndex(b.Varying.Name())
	pi := base.DimIndex(b.Param.Name())
	if vi < 0 || pi < 0 {
		return nil, fmt.Errorf("core: binding dimensions not in cube schema")
	}
	return &Engine{base: base, store: st, binding: b, vi: vi, pi: pi}, nil
}

// SetReadOrder selects the chunk read-order policy (default pebbling).
func (e *Engine) SetReadOrder(o ReadOrder) { e.order = o }

// SetContext attaches a context to the engine: cancellation and
// deadlines are checked at chunk-iteration boundaries, so a long scan
// over many chunks is abandoned promptly with the context's error. A
// nil context disables the checks (the default).
func (e *Engine) SetContext(ctx context.Context) { e.ctx = ctx }

// checkCtx reports the engine context's error, if any.
func (e *Engine) checkCtx() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// AttachDisk routes all chunk reads through a simulated disk, whose
// modeled cost appears in the view statistics.
func (e *Engine) AttachDisk(d *simdisk.Disk) {
	e.disk = d
	if d == nil {
		e.store.SetReadHook(nil)
		return
	}
	e.store.SetReadHook(d.Hook())
}

// Binding returns the engine's varying/parameter binding.
func (e *Engine) Binding() *dimension.Binding { return e.binding }

// PerspectiveQuery is a negative-scenario what-if query (paper §3.3):
// report the scoped members under perspectives P with the given
// semantics and non-leaf evaluation mode.
type PerspectiveQuery struct {
	// Members are base names of varying-dimension members in the query
	// scope. Empty means every member with more than one instance.
	Members []string
	// Perspectives are parameter-dimension leaf ordinals.
	Perspectives []int
	Sem          perspective.Semantics
	Mode         perspective.Mode
}

// planPerspective resolves the query scope and builds the relocation
// tables: for every source instance ordinal, the destination ordinal
// per parameter leaf (-1 = cell vanishes).
func (e *Engine) planPerspective(q PerspectiveQuery) (members []string, target map[int][]int, scoped []bool, err error) {
	members = q.Members
	if len(members) == 0 {
		members = e.binding.Varying.VaryingMembers()
	}
	res, err := perspective.ApplyMembers(q.Sem, e.binding, q.Perspectives, members)
	if err != nil {
		return nil, nil, nil, err
	}
	varying := e.binding.Varying
	nT := e.binding.Param.NumLeaves()

	target = make(map[int][]int)
	scoped = make([]bool, varying.NumLeaves())
	for _, name := range members {
		insts := varying.Instances(name)
		for _, inst := range insts {
			if o := varying.Member(inst).LeafOrdinal; o >= 0 {
				scoped[o] = true
			}
		}
		for t := 0; t < nT; t++ {
			src := e.binding.InstanceAt(name, t)
			if src == dimension.None {
				continue
			}
			dst := dimension.None
			for _, inst := range insts {
				if vs := res.VSOut[inst]; vs != nil && vs.Contains(t) {
					dst = inst
					break
				}
			}
			srcOrd := varying.Member(src).LeafOrdinal
			row, ok := target[srcOrd]
			if !ok {
				row = make([]int, nT)
				for i := range row {
					row[i] = -1
				}
				target[srcOrd] = row
			}
			if dst != dimension.None {
				row[t] = varying.Member(dst).LeafOrdinal
			}
		}
	}
	return members, target, scoped, nil
}

// ExecPerspective plans and runs a perspective query, returning the
// perspective-cube view.
func (e *Engine) ExecPerspective(q PerspectiveQuery) (*View, error) {
	members, target, scoped, err := e.planPerspective(q)
	if err != nil {
		return nil, err
	}
	view, stats, err := e.run(target, scoped, nil, nil, q.Mode)
	if err != nil {
		return nil, err
	}
	stats.MembersInScope = len(members)
	if q.Sem.Dynamic() {
		if norm, err := perspective.NormalizePerspectives(e.binding.Param, q.Perspectives); err == nil {
			stats.Ranges = len(norm)
		}
	}
	view.Stats = stats
	return view, nil
}

// ChangesQuery is a positive-scenario what-if query (paper §3.4): apply
// the hypothetical reclassifications R(m, o, n, t) and report under the
// given mode.
type ChangesQuery struct {
	Changes []algebra.Change
	Mode    perspective.Mode
}

// ExecChanges plans and runs a positive-scenario query. The result
// view's varying dimension is extended with the hypothetical instances.
func (e *Engine) ExecChanges(q ChangesQuery) (*View, error) {
	if len(q.Changes) == 0 {
		return nil, fmt.Errorf("core: empty change relation")
	}
	plan, err := algebra.PlanSplit(e.binding, q.Changes)
	if err != nil {
		return nil, err
	}
	oldDim := e.binding.Varying
	newDim := plan.Dim
	nT := e.binding.Param.NumLeaves()

	// Affected base members: those named by any change.
	affected := map[string]bool{}
	for _, ch := range q.Changes {
		affected[ch.Member] = true
	}
	// Scope: every instance (old and new) of an affected member, in NEW
	// ordinals.
	scoped := make([]bool, newDim.NumLeaves())
	for name := range affected {
		for _, inst := range newDim.Instances(name) {
			if o := newDim.Member(inst).LeafOrdinal; o >= 0 {
				scoped[o] = true
			}
		}
	}
	// Relocation tables keyed by OLD ordinals, destinations in NEW
	// ordinals. Affected instances without a redirect entry copy
	// identically (the overlay owns their rows).
	target := make(map[int][]int)
	for name := range affected {
		for _, inst := range oldDim.Instances(name) {
			srcOrd := oldDim.Member(inst).LeafOrdinal
			if srcOrd < 0 {
				continue
			}
			row := make([]int, nT)
			redir := plan.Redirect[inst]
			for t := 0; t < nT; t++ {
				dstID := inst
				if redir != nil {
					dstID = redir[t]
				}
				row[t] = newDim.Member(dstID).LeafOrdinal
			}
			target[srcOrd] = row
		}
	}
	// Ordinal remap for unaffected rows: view ordinal -> base ordinal.
	baseOrd := make([]int, newDim.NumLeaves())
	for vo := range baseOrd {
		id := newDim.Leaf(vo).ID
		if int(id) < oldDim.NumMembers() {
			baseOrd[vo] = oldDim.Member(id).LeafOrdinal
		} else {
			baseOrd[vo] = -1 // hypothetical instance
		}
	}
	// Rebase bindings.
	newBindings := make([]*dimension.Binding, 0, len(e.base.Bindings()))
	for _, b := range e.base.Bindings() {
		if b == e.binding {
			newBindings = append(newBindings, plan.Binding)
		} else {
			newBindings = append(newBindings, b)
		}
	}
	newDims := make([]*dimension.Dimension, e.base.NumDims())
	copy(newDims, e.base.Dims())
	newDims[e.vi] = newDim

	view, stats, err := e.run(target, scoped, newDims, newBindings, q.Mode)
	if err != nil {
		return nil, err
	}
	stats.MembersInScope = len(affected)
	view.Stats = stats
	// Remap the view store through baseOrd.
	view.result.Store().(*viewStore).baseOrd = baseOrd
	return view, nil
}

// run executes the relocation plan: find relevant chunks, build the
// merge dependency graph, order reads, and fill the overlay. When
// newDims is nil the view shares the base cube's dimensions; otherwise
// the view exposes newDims/newBindings (positive scenarios).
func (e *Engine) run(target map[int][]int, scoped []bool, newDims []*dimension.Dimension,
	newBindings []*dimension.Binding, mode perspective.Mode) (*View, Stats, error) {

	g := e.store.Geometry()
	cdV := g.ChunkDims[e.vi]
	cdP := g.ChunkDims[e.pi]
	var stats Stats

	// Drop source rows that contribute nothing (every destination -1):
	// e.g. under static semantics, instances not valid at any
	// perspective. Confining reads to contributing rows is the paper's
	// §6.3 point — work must track the varying members in scope.
	for srcOrd, row := range target {
		live := false
		for _, dst := range row {
			if dst >= 0 {
				live = true
				break
			}
		}
		if !live {
			delete(target, srcOrd)
		}
	}

	// Varying-dimension chunk indices holding source rows.
	srcVCs := map[int]bool{}
	for srcOrd := range target {
		srcVCs[srcOrd/cdV] = true
	}
	stats.SourceInstances = len(target)

	// Cross-chunk transfers: (vcSrc, vcDst, paramChunk) triples.
	type triple struct{ vs, vd, pc int }
	transfers := map[triple]bool{}
	for srcOrd, row := range target {
		vs := srcOrd / cdV
		for t, dstOrd := range row {
			if dstOrd < 0 {
				continue
			}
			vd := dstOrd / cdV
			if vd != vs {
				transfers[triple{vs, vd, t / cdP}] = true
			}
		}
	}

	// Relevant chunks: materialized chunks whose varying coordinate
	// holds source rows. Group them by their coordinates outside the
	// varying dimension to find merge partners.
	type group struct {
		paramCoord int
		byVC       map[int]int // varying chunk coord -> chunk ID
	}
	groups := map[string]*group{}
	graph := pebble.NewGraph()
	var relevant []int
	ccoord := make([]int, g.NumDims())
	for _, id := range e.store.ChunkIDs() {
		g.CoordOf(id, ccoord)
		if !srcVCs[ccoord[e.vi]] {
			continue
		}
		relevant = append(relevant, id)
		graph.AddNode(id)
		key := restKey(ccoord, e.vi)
		grp := groups[key]
		if grp == nil {
			grp = &group{paramCoord: ccoord[e.pi], byVC: map[int]int{}}
			groups[key] = grp
		}
		grp.byVC[ccoord[e.vi]] = id
	}
	stats.RelevantChunks = len(relevant)

	// Merge dependency edges: chunks in the same group whose varying
	// coordinates exchange data at this group's parameter coordinate.
	for tr := range transfers {
		for _, grp := range groups {
			if grp.paramCoord != tr.pc {
				continue
			}
			a, okA := grp.byVC[tr.vs]
			b, okB := grp.byVC[tr.vd]
			if okA && okB && a != b {
				if !graph.HasEdge(a, b) {
					graph.AddEdge(a, b)
					stats.MergeEdges++
				}
			}
		}
	}

	// Read order.
	var order []int
	switch e.order {
	case OrderPebbling:
		sched := pebble.HeuristicPebble(graph)
		order = sched.Order
		stats.PeakResidentChunks = sched.Peak
	default:
		perm := e.readPermutation()
		order = sortChunksByOrder(g, relevant, perm)
		peak, err := pebble.VerifySchedule(graph, order)
		if err != nil {
			return nil, stats, fmt.Errorf("core: sequential schedule invalid: %w", err)
		}
		stats.PeakResidentChunks = peak
	}

	// Process chunks, relocating scoped cells into the overlay.
	overlay := cube.NewMemStore(g.NumDims())
	var diskBefore float64
	if e.disk != nil {
		diskBefore = e.disk.Stats().CostMs
	}
	addr := make([]int, g.NumDims())
	out := make([]int, g.NumDims())
	for _, id := range order {
		if err := e.checkCtx(); err != nil {
			return nil, stats, err
		}
		ch := e.store.ReadChunk(id)
		stats.ChunksRead++
		if ch == nil {
			continue
		}
		g.CoordOf(id, ccoord)
		ch.ForEach(func(off int, v float64) bool {
			g.Join(ccoord, off, addr)
			row := target[addr[e.vi]]
			if row == nil {
				return true
			}
			dst := row[addr[e.pi]]
			if dst < 0 {
				return true
			}
			copy(out, addr)
			out[e.vi] = dst
			overlay.Set(out, v)
			stats.CellsRelocated++
			return true
		})
	}
	if e.disk != nil {
		stats.DiskCostMs = e.disk.Stats().CostMs - diskBefore
	}

	// Assemble the view cube.
	vs := &viewStore{base: e.store, overlay: overlay, vi: e.vi, scoped: scoped}
	var result *cube.Cube
	if newDims == nil {
		result = cube.NewWithStore(vs, e.base.Dims()...)
		for _, b := range e.base.Bindings() {
			if err := result.AddBinding(b); err != nil {
				return nil, stats, err
			}
		}
	} else {
		result = cube.NewWithStore(vs, newDims...)
		for _, b := range newBindings {
			if err := result.AddBinding(b); err != nil {
				return nil, stats, err
			}
		}
	}
	result.SetRules(e.base.Rules())
	return &View{input: e.base, result: result, mode: mode}, stats, nil
}

// readPermutation builds the dimension permutation for sequential read
// orders: the first dimension varies fastest.
func (e *Engine) readPermutation() []int {
	n := e.base.NumDims()
	var perm []int
	switch e.order {
	case OrderVaryingFirst:
		// Varying first, then parameter, then the rest (Lemma 5.1's
		// good order O1).
		perm = append(perm, e.vi)
		if e.pi != e.vi {
			perm = append(perm, e.pi)
		}
		for d := 0; d < n; d++ {
			if d != e.vi && d != e.pi {
				perm = append(perm, d)
			}
		}
	case OrderVaryingLast:
		for d := 0; d < n; d++ {
			if d != e.vi && d != e.pi {
				perm = append(perm, d)
			}
		}
		if e.pi != e.vi {
			perm = append(perm, e.pi)
		}
		perm = append(perm, e.vi)
	default: // OrderCanonical: schema row-major = last dim fastest.
		for d := n - 1; d >= 0; d-- {
			perm = append(perm, d)
		}
	}
	return perm
}

func sortChunksByOrder(g *chunk.Geometry, ids []int, perm []int) []int {
	type kv struct{ key, id int }
	keyed := make([]kv, len(ids))
	ccoord := make([]int, g.NumDims())
	for i, id := range ids {
		g.CoordOf(id, ccoord)
		keyed[i] = kv{key: g.OrderID(ccoord, perm), id: id}
	}
	// Insertion-stable sort by key.
	for i := 1; i < len(keyed); i++ {
		for j := i; j > 0 && keyed[j].key < keyed[j-1].key; j-- {
			keyed[j], keyed[j-1] = keyed[j-1], keyed[j]
		}
	}
	out := make([]int, len(ids))
	for i, k := range keyed {
		out[i] = k.id
	}
	return out
}

// restKey encodes chunk coordinates with the varying dimension masked,
// identifying a merge group.
func restKey(ccoord []int, vi int) string {
	b := make([]byte, 0, len(ccoord)*4)
	for i, c := range ccoord {
		if i == vi {
			b = append(b, 0xff, 0xff, 0xff, 0xff) // masked coordinate
			continue
		}
		b = append(b, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
	}
	return string(b)
}

// SimulateMultiMDX evaluates a multi-perspective static query the naive
// way the paper uses as its baseline (§6.1, the "Multiple MDX" line):
// one single-perspective static query per perspective, post-processing
// the individual result sets into a single result set. The combined
// statistics sum the per-query work, exposing the repeated planning and
// chunk reads that the direct implementation avoids.
func (e *Engine) SimulateMultiMDX(members []string, perspectives []int, mode perspective.Mode) (*View, error) {
	if len(perspectives) == 0 {
		return nil, fmt.Errorf("core: empty perspective set")
	}
	var combined *View
	var stats Stats
	merged := cube.NewMemStore(e.base.NumDims())
	for _, p := range perspectives {
		if err := e.checkCtx(); err != nil {
			return nil, err
		}
		v, err := e.ExecPerspective(PerspectiveQuery{
			Members:      members,
			Perspectives: []int{p},
			Sem:          perspective.Static,
			Mode:         mode,
		})
		if err != nil {
			return nil, err
		}
		stats.Add(v.Stats)
		// Post-process: fold this query's rows into the merged result
		// set. Under static semantics a surviving instance keeps its
		// original values, so overlapping rows agree and overwriting is
		// sound.
		ov := v.result.Store().(*viewStore).overlay
		ov.NonNull(func(addr []int, val float64) bool {
			merged.Set(addr, val)
			stats.CellsRelocated++
			return true
		})
		combined = v
	}
	// Reuse the last view's scope (identical across the runs) with the
	// merged overlay.
	last := combined.result.Store().(*viewStore)
	vs := &viewStore{base: e.store, overlay: merged, vi: e.vi, scoped: last.scoped}
	result := cube.NewWithStore(vs, e.base.Dims()...)
	for _, b := range e.base.Bindings() {
		if err := result.AddBinding(b); err != nil {
			return nil, err
		}
	}
	result.SetRules(e.base.Rules())
	stats.MembersInScope = combined.Stats.MembersInScope
	return &View{input: e.base, result: result, mode: mode, Stats: stats}, nil
}
