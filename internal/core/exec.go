package core

import (
	"context"
	"sync"
	"time"

	"whatifolap/internal/chunk"
	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
	"whatifolap/internal/perspective"
)

// scanTally accumulates one scan unit's counters. Per-group tallies are
// summed in group order at the merge barrier, so parallel statistics
// are deterministic.
type scanTally struct {
	chunksRead     int
	cellsRelocated int
}

// execute runs the staged execution of a physical plan:
//
//	scan     chunk reads + cell relocation into a chunk-grained
//	         overlay (pure integer (chunkID, offset) math, no per-cell
//	         allocation), fanned out over merge groups when
//	         ec.Workers > 1, serial in the plan's global schedule
//	         otherwise;
//	merge    zero-copy: merge edges never cross rest-coordinate
//	         groups, so the per-group overlays are disjoint and are
//	         attached to a partitioned router keyed by masked chunk ID
//	         — O(groups), not O(cells) (a no-op when serial, where the
//	         scan writes the final overlay directly);
//	assemble wiring the overlay view cube.
//
// When newDims is nil the view shares the base cube's dimensions;
// otherwise the view exposes newDims/newBindings (positive scenarios).
func (e *Engine) execute(ec ExecContext, p *PhysicalPlan, newDims []*dimension.Dimension,
	newBindings []*dimension.Binding, mode perspective.Mode) (*View, Stats, error) {

	stats := p.Stats
	workers := ec.Workers
	if workers > len(p.Groups) {
		workers = len(p.Groups)
	}
	if workers < 1 {
		workers = 1
	}
	stats.ScanWorkers = workers

	// The overlay's geometry matches the base store's, except that a
	// positive scenario extends the varying dimension with hypothetical
	// instances whose ordinals lie beyond the base extent.
	og := e.store.Geometry()
	if newDims != nil {
		ext := append([]int(nil), og.Extents...)
		if n := newDims[e.vi].NumLeaves(); n > ext[e.vi] {
			ext[e.vi] = n
		}
		var err error
		og, err = chunk.NewGeometry(ext, og.ChunkDims)
		if err != nil {
			return nil, stats, err
		}
	}

	var diskBefore float64
	if e.disk != nil {
		diskBefore = e.disk.Stats().CostMs
	}

	scanStart := time.Now()
	var overlay cube.Store
	if workers > 1 {
		overlays, tallies, err := e.scanParallel(ec, p, og, workers)
		if err != nil {
			return nil, stats, err
		}
		for _, t := range tallies {
			stats.ChunksRead += t.chunksRead
			stats.CellsRelocated += t.cellsRelocated
		}
		stats.ScanMs = msSince(scanStart)
		mergeStart := time.Now()
		po := chunk.NewPartitionedOverlay(og, e.vi)
		for gi, mg := range p.Groups {
			po.Attach(og.MaskedIDOfCoord(mg.Rest, e.vi), overlays[gi])
		}
		overlay = po
		stats.MergeMs = msSince(mergeStart)
	} else {
		ov := chunk.NewOverlay(og)
		t, err := e.scanInto(ec.Ctx, p.Schedule, p, ov)
		if err != nil {
			return nil, stats, err
		}
		stats.ChunksRead += t.chunksRead
		stats.CellsRelocated += t.cellsRelocated
		overlay = ov
		stats.ScanMs = msSince(scanStart)
	}
	if e.disk != nil {
		stats.DiskCostMs = e.disk.Stats().CostMs - diskBefore
	}

	// Assemble the view cube.
	vs := &viewStore{base: e.store, overlay: overlay, vi: e.vi, scoped: p.Scoped}
	var result *cube.Cube
	if newDims == nil {
		result = cube.NewWithStore(vs, e.base.Dims()...)
		for _, b := range e.base.Bindings() {
			if err := result.AddBinding(b); err != nil {
				return nil, stats, err
			}
		}
	} else {
		result = cube.NewWithStore(vs, newDims...)
		for _, b := range newBindings {
			if err := result.AddBinding(b); err != nil {
				return nil, stats, err
			}
		}
	}
	result.SetRules(e.base.Rules())
	return &View{input: e.base, result: result, mode: mode}, stats, nil
}

// pinTracker enforces the executor side of the pebbling objective on a
// pooled store: a scanned chunk stays pinned while any of its merge-
// dependency partners (plan.Neighbors) is still unscanned, so another
// query's fault-ins cannot evict it before the exchange completes; it
// is released the moment its last partner is read. On an unpooled
// store (Pin is a no-op) the tracker is not built at all.
type pinTracker struct {
	store     *chunk.Store
	pos       map[int]int
	neighbors map[int][]int
	// outstanding counts a chunk's partners positioned after it in the
	// schedule that have not been scanned yet.
	outstanding map[int]int
	pinned      map[int]bool
}

func newPinTracker(store *chunk.Store, schedule []int, neighbors map[int][]int) *pinTracker {
	pt := &pinTracker{
		store:       store,
		pos:         make(map[int]int, len(schedule)),
		neighbors:   neighbors,
		outstanding: make(map[int]int),
		pinned:      make(map[int]bool),
	}
	for i, id := range schedule {
		pt.pos[id] = i
	}
	for _, id := range schedule {
		for _, nb := range neighbors[id] {
			if pnb, ok := pt.pos[nb]; ok && pnb > pt.pos[id] {
				pt.outstanding[id]++
			}
		}
	}
	return pt
}

// scanned records that id was just read: pin it when partners are still
// ahead in the schedule, and release earlier partners this read
// satisfies.
func (pt *pinTracker) scanned(id int) {
	if pt.outstanding[id] > 0 {
		pt.store.Pin(id)
		pt.pinned[id] = true
	}
	myPos, ok := pt.pos[id]
	if !ok {
		return
	}
	for _, nb := range pt.neighbors[id] {
		if pnb, ok := pt.pos[nb]; !ok || pnb >= myPos {
			continue
		}
		if pt.outstanding[nb] > 0 {
			pt.outstanding[nb]--
			if pt.outstanding[nb] == 0 && pt.pinned[nb] {
				pt.store.Unpin(nb)
				delete(pt.pinned, nb)
			}
		}
	}
}

// releaseAll unpins whatever is still pinned — a no-op after a complete
// scan, the safety net on error and cancellation paths.
func (pt *pinTracker) releaseAll() {
	for id := range pt.pinned {
		pt.store.Unpin(id)
	}
	pt.pinned = map[int]bool{}
}

// scanInto reads the scheduled chunks in order, relocating scoped cells
// through the plan's target tables into the overlay. Relocation is
// chunk-native: the destination address decomposes to (chunkID, offset)
// by integer arithmetic and the write allocates nothing once the
// destination chunk exists. The context, when non-nil, is checked
// before every chunk read. The plan is only read, so concurrent
// scanInto calls over disjoint overlays are safe.
func (e *Engine) scanInto(ctx context.Context, schedule []int, p *PhysicalPlan,
	overlay *chunk.Overlay) (scanTally, error) {

	var tally scanTally
	g := e.store.Geometry()
	ccoord := make([]int, g.NumDims())
	addr := make([]int, g.NumDims())
	out := make([]int, g.NumDims())

	var pins *pinTracker
	if e.store.Pooled() && len(p.Neighbors) > 0 {
		pins = newPinTracker(e.store, schedule, p.Neighbors)
		defer pins.releaseAll()
	}

	for _, id := range schedule {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return tally, err
			}
		}
		ch := e.store.ReadChunk(id)
		tally.chunksRead++
		if pins != nil {
			pins.scanned(id)
		}
		if ch == nil {
			continue
		}
		g.CoordOf(id, ccoord)
		ch.ForEach(func(off int, v float64) bool {
			g.Join(ccoord, off, addr)
			row := p.Target[addr[e.vi]]
			if row == nil {
				return true
			}
			dst := row[addr[e.pi]]
			if dst < 0 {
				return true
			}
			copy(out, addr)
			out[e.vi] = dst
			overlay.Set(out, v)
			tally.cellsRelocated++
			return true
		})
	}
	return tally, nil
}

// scanParallel fans the scan out over the plan's merge groups on a
// bounded worker pool. Each group scans into a private chunk-grained
// overlay in its own schedule order — merge edges never cross groups,
// so the pebbling order stays legal per group — and the caller attaches
// the overlays to a partitioned router at the barrier in group order.
// Cells from different groups can never collide (they differ in a
// non-varying coordinate), so the routed overlay is identical to the
// serial scan's without copying a single cell.
func (e *Engine) scanParallel(ec ExecContext, p *PhysicalPlan, og *chunk.Geometry,
	workers int) ([]*chunk.Overlay, []scanTally, error) {

	overlays := make([]*chunk.Overlay, len(p.Groups))
	tallies := make([]scanTally, len(p.Groups))

	base := ec.Ctx
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel() // stop the feeder and the sibling workers promptly
		})
	}
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for gi := range work {
				ov := chunk.NewOverlay(og)
				t, err := e.scanInto(ctx, p.Groups[gi].Chunks, p, ov)
				tallies[gi] = t
				if err != nil {
					fail(err)
					return
				}
				overlays[gi] = ov
			}
		}()
	}
feed:
	for gi := range p.Groups {
		select {
		case work <- gi:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	if firstErr == nil && base.Err() != nil {
		firstErr = base.Err()
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return overlays, tallies, nil
}
