package core

import (
	"context"
	"sync"
	"time"

	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
	"whatifolap/internal/perspective"
)

// scanTally accumulates one scan unit's counters. Per-group tallies are
// summed in group order at the merge barrier, so parallel statistics
// are deterministic.
type scanTally struct {
	chunksRead     int
	cellsRelocated int
}

// execute runs the staged execution of a physical plan:
//
//	scan     chunk reads + cell relocation, fanned out over merge
//	         groups when ec.Workers > 1, serial in the plan's global
//	         schedule otherwise;
//	merge    combining the per-group overlays into one (a no-op when
//	         serial — the scan writes the final overlay directly);
//	assemble wiring the overlay view cube.
//
// When newDims is nil the view shares the base cube's dimensions;
// otherwise the view exposes newDims/newBindings (positive scenarios).
func (e *Engine) execute(ec ExecContext, p *PhysicalPlan, newDims []*dimension.Dimension,
	newBindings []*dimension.Binding, mode perspective.Mode) (*View, Stats, error) {

	stats := p.Stats
	workers := ec.Workers
	if workers > len(p.Groups) {
		workers = len(p.Groups)
	}
	if workers < 1 {
		workers = 1
	}
	stats.ScanWorkers = workers

	var diskBefore float64
	if e.disk != nil {
		diskBefore = e.disk.Stats().CostMs
	}

	scanStart := time.Now()
	var overlay *cube.MemStore
	if workers > 1 {
		overlays, tallies, err := e.scanParallel(ec, p, workers)
		if err != nil {
			return nil, stats, err
		}
		for _, t := range tallies {
			stats.ChunksRead += t.chunksRead
			stats.CellsRelocated += t.cellsRelocated
		}
		stats.ScanMs = msSince(scanStart)
		mergeStart := time.Now()
		overlay = cube.NewMemStore(e.store.Geometry().NumDims())
		for _, ov := range overlays {
			ov.NonNull(func(addr []int, v float64) bool {
				overlay.Set(addr, v)
				return true
			})
		}
		stats.MergeMs = msSince(mergeStart)
	} else {
		overlay = cube.NewMemStore(e.store.Geometry().NumDims())
		t, err := e.scanInto(ec.Ctx, p.Schedule, p.Target, overlay)
		if err != nil {
			return nil, stats, err
		}
		stats.ChunksRead += t.chunksRead
		stats.CellsRelocated += t.cellsRelocated
		stats.ScanMs = msSince(scanStart)
	}
	if e.disk != nil {
		stats.DiskCostMs = e.disk.Stats().CostMs - diskBefore
	}

	// Assemble the view cube.
	vs := &viewStore{base: e.store, overlay: overlay, vi: e.vi, scoped: p.Scoped}
	var result *cube.Cube
	if newDims == nil {
		result = cube.NewWithStore(vs, e.base.Dims()...)
		for _, b := range e.base.Bindings() {
			if err := result.AddBinding(b); err != nil {
				return nil, stats, err
			}
		}
	} else {
		result = cube.NewWithStore(vs, newDims...)
		for _, b := range newBindings {
			if err := result.AddBinding(b); err != nil {
				return nil, stats, err
			}
		}
	}
	result.SetRules(e.base.Rules())
	return &View{input: e.base, result: result, mode: mode}, stats, nil
}

// scanInto reads the scheduled chunks in order, relocating scoped cells
// through target into the overlay. The context, when non-nil, is
// checked before every chunk read. target is only read, so concurrent
// scanInto calls over disjoint overlays are safe.
func (e *Engine) scanInto(ctx context.Context, schedule []int, target map[int][]int,
	overlay *cube.MemStore) (scanTally, error) {

	var tally scanTally
	g := e.store.Geometry()
	ccoord := make([]int, g.NumDims())
	addr := make([]int, g.NumDims())
	out := make([]int, g.NumDims())
	for _, id := range schedule {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return tally, err
			}
		}
		ch := e.store.ReadChunk(id)
		tally.chunksRead++
		if ch == nil {
			continue
		}
		g.CoordOf(id, ccoord)
		ch.ForEach(func(off int, v float64) bool {
			g.Join(ccoord, off, addr)
			row := target[addr[e.vi]]
			if row == nil {
				return true
			}
			dst := row[addr[e.pi]]
			if dst < 0 {
				return true
			}
			copy(out, addr)
			out[e.vi] = dst
			overlay.Set(out, v)
			tally.cellsRelocated++
			return true
		})
	}
	return tally, nil
}

// scanParallel fans the scan out over the plan's merge groups on a
// bounded worker pool. Each group scans into a private overlay in its
// own schedule order — merge edges never cross groups, so the pebbling
// order stays legal per group — and the caller merges the overlays at
// the barrier in group order. Cells from different groups can never
// collide (they differ in a non-varying coordinate), so the merged
// overlay is identical to the serial scan's.
func (e *Engine) scanParallel(ec ExecContext, p *PhysicalPlan, workers int) ([]*cube.MemStore, []scanTally, error) {
	nd := e.store.Geometry().NumDims()
	overlays := make([]*cube.MemStore, len(p.Groups))
	tallies := make([]scanTally, len(p.Groups))

	base := ec.Ctx
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel() // stop the feeder and the sibling workers promptly
		})
	}
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for gi := range work {
				ov := cube.NewMemStore(nd)
				t, err := e.scanInto(ctx, p.Groups[gi].Chunks, p.Target, ov)
				tallies[gi] = t
				if err != nil {
					fail(err)
					return
				}
				overlays[gi] = ov
			}
		}()
	}
feed:
	for gi := range p.Groups {
		select {
		case work <- gi:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	if firstErr == nil && base.Err() != nil {
		firstErr = base.Err()
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return overlays, tallies, nil
}
