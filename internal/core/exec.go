package core

import (
	"context"
	"math"
	"sync"
	"time"

	"whatifolap/internal/chunk"
	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
	"whatifolap/internal/perspective"
	"whatifolap/internal/trace"
)

// This file is a query hot path: span recording happens here, span
// formatting must not (no fmt import — verify.sh enforces it).

// scanTally accumulates one scan unit's counters. Per-group tallies are
// summed in group order at the merge barrier, so parallel statistics
// are deterministic. diskCostMs sums the per-read costs returned by
// the store's cost hook — the race-free replacement for diffing the
// disk's global counters around the execution, which let overlapping
// queries absorb each other's I/O cost.
type scanTally struct {
	chunksRead     int
	cellsScanned   int
	cellsRelocated int
	diskCostMs     float64
	spillFaults    int
	promotions     int
}

// add accumulates t2 into t.
func (t *scanTally) add(t2 scanTally) {
	t.chunksRead += t2.chunksRead
	t.cellsScanned += t2.cellsScanned
	t.cellsRelocated += t2.cellsRelocated
	t.diskCostMs += t2.diskCostMs
	t.spillFaults += t2.spillFaults
	t.promotions += t2.promotions
}

// recordPlanSpan claims a hindsight "plan" span covering the planning
// stage (target pruning, merge graph, read scheduling) with the plan's
// shape as attributes. No-op with tracing off.
func recordPlanSpan(tr *trace.Trace, parent trace.SpanRef, startNs int64, p *PhysicalPlan) {
	sp := tr.Record(parent, "plan", startNs, tr.Now())
	sp.Int("merge_groups", int64(len(p.Groups)))
	sp.Int("chunks", int64(len(p.Schedule)))
	sp.IntNonZero("merge_edges", int64(p.Stats.MergeEdges))
	sp.IntNonZero("pebbling_peak", int64(p.Stats.PeakResidentChunks))
}

// runKernel is the run-aware relocation path for run-encoded source
// chunks: instead of decomposing and relocating cell by cell, it cuts
// each value run at the chunk-digit boundaries of the varying and
// parameter dimensions — within such a segment both digits are constant
// (offset strides nest), so one relocation-table probe decides a whole
// segment and the destination offsets stay contiguous. Consecutive
// segments landing on the same destination instance coalesce into one
// overlay run write, so a stable member's entire validity window moves
// with O(1) table work and one SetRunAt. Vanished segments (pruned
// source row or -1 destination) skip in O(1) without touching cells.
//
// All state lives on the struct and the ForEachRun callback is built
// once per scan, so the steady-state path allocates nothing per run.
type runKernel struct {
	target  map[int][]int
	overlay *chunk.Overlay
	vi, pi  int
	// dimV/dimP are the chunk edges, strideV/strideP the in-chunk
	// offset strides, of the varying and parameter dimensions.
	dimV, dimP       int
	strideV, strideP int
	// idStrideV is the canonical-ID stride along the varying dimension
	// in the overlay's (possibly extended) geometry.
	idStrideV int
	// outerIsV records which digit changes slower: runs are cut at the
	// slower stride first so the relocation row probe (keyed by the
	// varying ordinal) hoists out of the inner loop when possible.
	outerIsV     bool
	outer, inner int
	// Per-chunk state, set by beginChunk.
	baseV, baseP, idBase int
	// Pending coalesced destination segment.
	pendID, pendOff, pendLen int
	pendVal                  float64
	moved                    int
	scanned                  int
	emit                     func(start, runLen int, v float64) bool
}

func newRunKernel(g *chunk.Geometry, overlay *chunk.Overlay, target map[int][]int, vi, pi int) *runKernel {
	k := &runKernel{
		target:  target,
		overlay: overlay,
		vi:      vi,
		pi:      pi,
		dimV:    g.ChunkDims[vi],
		dimP:    g.ChunkDims[pi],
		strideV: g.OffsetStride(vi),
		strideP: g.OffsetStride(pi),
		// Destination IDs live in the overlay's geometry: a positive
		// scenario extends the varying dimension, changing its chunk
		// count and therefore every ID stride above it.
		idStrideV: overlay.Geometry().ChunkIDStride(vi),
	}
	k.outerIsV = k.strideV >= k.strideP
	if k.outerIsV {
		k.outer, k.inner = k.strideV, k.strideP
	} else {
		k.outer, k.inner = k.strideP, k.strideV
	}
	k.emit = func(start, runLen int, v float64) bool {
		k.scanned += runLen
		k.relocateRun(start, runLen, v)
		return true
	}
	return k
}

// beginChunk positions the kernel on a source chunk: ccoord is the
// chunk's coordinate in the source geometry and idBase the overlay-
// geometry canonical ID of the same coordinate with the varying
// coordinate zeroed (destination ID = idBase + dstChunkCoord·stride).
// ccoord is restored before returning.
func (k *runKernel) beginChunk(og *chunk.Geometry, ccoord []int) {
	vc := ccoord[k.vi]
	k.baseV = vc * k.dimV
	k.baseP = ccoord[k.pi] * k.dimP
	ccoord[k.vi] = 0
	k.idBase = og.CanonicalID(ccoord)
	ccoord[k.vi] = vc
}

// relocateRun relocates one source value run, segmenting at digit
// boundaries. The outer loop fixes the slower digit, the inner loop the
// faster one; when the varying digit is the outer one (a varying
// dimension chunked coarser than the parameter dimension — the
// workforce layout), the per-segment work is one slice index.
func (k *runKernel) relocateRun(start, runLen int, v float64) {
	off := start
	end := start + runLen
	for off < end {
		outerEnd := off - off%k.outer + k.outer
		if outerEnd > end {
			outerEnd = end
		}
		if k.outerIsV {
			digitV := (off / k.strideV) % k.dimV
			row := k.target[k.baseV+digitV]
			if row == nil {
				off = outerEnd
				continue
			}
			for off < outerEnd {
				segEnd := off - off%k.strideP + k.strideP
				if segEnd > outerEnd {
					segEnd = outerEnd
				}
				dst := row[k.baseP+(off/k.strideP)%k.dimP]
				if dst >= 0 {
					k.emitSeg(dst, digitV, off, segEnd-off, v)
				}
				off = segEnd
			}
			continue
		}
		pOrd := k.baseP + (off/k.strideP)%k.dimP
		for off < outerEnd {
			segEnd := off - off%k.strideV + k.strideV
			if segEnd > outerEnd {
				segEnd = outerEnd
			}
			digitV := (off / k.strideV) % k.dimV
			if row := k.target[k.baseV+digitV]; row != nil {
				if dst := row[pOrd]; dst >= 0 {
					k.emitSeg(dst, digitV, off, segEnd-off, v)
				}
			}
			off = segEnd
		}
	}
}

// emitSeg queues one destination segment, coalescing with the pending
// one when it carries the same value and lands directly after it in the
// same destination chunk (consecutive months mapping to the same
// instance do, so a whole validity window flushes as one overlay run
// write). Value equality is on bit patterns, matching run encoding.
func (k *runKernel) emitSeg(dst, digitV, off, segLen int, v float64) {
	dstID := k.idBase + dst/k.dimV*k.idStrideV
	dstOff := off + (dst%k.dimV-digitV)*k.strideV
	k.moved += segLen
	if k.pendLen > 0 && dstID == k.pendID && dstOff == k.pendOff+k.pendLen &&
		math.Float64bits(v) == math.Float64bits(k.pendVal) {
		k.pendLen += segLen
		return
	}
	k.flush()
	k.pendID, k.pendOff, k.pendLen, k.pendVal = dstID, dstOff, segLen, v
}

// flush writes the pending destination segment, if any.
func (k *runKernel) flush() {
	if k.pendLen > 0 {
		k.overlay.SetRunAt(k.pendID, k.pendOff, k.pendLen, k.pendVal)
		k.pendLen = 0
	}
}

// take flushes and returns the cells moved and scanned since the last
// take.
func (k *runKernel) take() (moved, scanned int) {
	k.flush()
	moved, scanned = k.moved, k.scanned
	k.moved, k.scanned = 0, 0
	return moved, scanned
}

// annotateScan attaches a tally's counters to a scan or group span.
// No-op refs (tracing off) make every call free.
func annotateScan(sp trace.SpanRef, t scanTally, workers int) {
	sp.Int("chunks_read", int64(t.chunksRead))
	sp.Int("cells_scanned", int64(t.cellsScanned))
	sp.Int("cells_relocated", int64(t.cellsRelocated))
	sp.IntNonZero("spill_faults", int64(t.spillFaults))
	sp.IntNonZero("overlay_promotions", int64(t.promotions))
	if workers > 0 {
		sp.IntNonZero("workers", int64(workers))
	}
}

// execute runs the staged execution of a physical plan:
//
//	scan     chunk reads + cell relocation into a chunk-grained
//	         overlay (pure integer (chunkID, offset) math, no per-cell
//	         allocation), fanned out over merge groups when
//	         ec.Workers > 1, serial in the plan's global schedule
//	         otherwise;
//	merge    zero-copy: merge edges never cross rest-coordinate
//	         groups, so the per-group overlays are disjoint and are
//	         attached to a partitioned router keyed by masked chunk ID
//	         — O(groups), not O(cells) (a no-op when serial, where the
//	         scan writes the final overlay directly);
//	assemble wiring the overlay view cube.
//
// When newDims is nil the view shares the base cube's dimensions;
// otherwise the view exposes newDims/newBindings (positive scenarios).
func (e *Engine) execute(ec ExecContext, p *PhysicalPlan, newDims []*dimension.Dimension,
	newBindings []*dimension.Binding, mode perspective.Mode) (*View, Stats, error) {

	stats := p.Stats
	workers := ec.Workers
	if workers < 1 {
		workers = 1
	}
	// Cut each group's schedule into sub-tasks at crossing-free edge
	// boundaries, so the scan fans out over min(workers, chunks) units
	// instead of min(workers, groups).
	var tasks []subTask
	if workers > 1 {
		tasks = splitSubtasks(p, workers)
		if workers > len(tasks) {
			workers = len(tasks)
		}
	}
	stats.ScanWorkers = workers

	// The overlay's geometry matches the base store's, except that a
	// positive scenario extends the varying dimension with hypothetical
	// instances whose ordinals lie beyond the base extent.
	og := e.store.Geometry()
	if newDims != nil {
		ext := make([]int, len(og.Extents))
		copy(ext, og.Extents)
		if n := newDims[e.vi].NumLeaves(); n > ext[e.vi] {
			ext[e.vi] = n
		}
		var err error
		og, err = chunk.NewGeometry(ext, og.ChunkDims)
		if err != nil {
			return nil, stats, err
		}
	}

	tr := trace.FromContext(ec.Ctx)
	parent := trace.SpanFromContext(ec.Ctx)

	scanSp := tr.Start(parent, "scan")
	scanStart := time.Now()
	var scanT scanTally
	var overlay cube.Store
	if workers > 1 {
		stats.ScanSubtasks = len(tasks)
		overlays, tallies, err := e.scanParallel(ec, p, og, tasks, workers, tr, scanSp)
		if err != nil {
			scanSp.End()
			return nil, stats, err
		}
		for _, t := range tallies {
			scanT.add(t)
		}
		stats.ScanMs = msSince(scanStart)
		annotateScan(scanSp, scanT, workers)
		scanSp.End()
		mergeSp := tr.Start(parent, "merge")
		mergeStart := time.Now()
		po := chunk.NewPartitionedOverlay(og, e.vi)
		for gi, mg := range p.Groups {
			po.Attach(og.MaskedIDOfCoord(mg.Rest, e.vi), overlays[gi])
		}
		overlay = po
		stats.MergeMs = msSince(mergeStart)
		mergeSp.Int("groups", int64(len(p.Groups)))
		mergeSp.End()
	} else {
		ov := chunk.NewOverlay(og)
		t, err := e.scanInto(ec.Ctx, p.Schedule, p, ov, tr, scanSp)
		if err != nil {
			scanSp.End()
			return nil, stats, err
		}
		scanT.add(t)
		overlay = ov
		stats.ScanMs = msSince(scanStart)
		annotateScan(scanSp, scanT, 1)
		scanSp.End()
	}
	stats.ChunksRead += scanT.chunksRead
	stats.CellsScanned += scanT.cellsScanned
	stats.CellsRelocated += scanT.cellsRelocated
	stats.DiskCostMs += scanT.diskCostMs
	stats.SpillFaults += scanT.spillFaults

	// Assemble the view cube. Out-of-scope rows read from the layer
	// chain when the engine runs over a scenario, so unrelocated cells
	// reflect scenario edits too.
	assembleSp := tr.Start(parent, "assemble")
	defer assembleSp.End()
	vs := &viewStore{base: e.readStore(), overlay: overlay, vi: e.vi, scoped: p.Scoped}
	var result *cube.Cube
	if newDims == nil {
		result = cube.NewWithStore(vs, e.base.Dims()...)
		for _, b := range e.base.Bindings() {
			if err := result.AddBinding(b); err != nil {
				return nil, stats, err
			}
		}
	} else {
		result = cube.NewWithStore(vs, newDims...)
		for _, b := range newBindings {
			if err := result.AddBinding(b); err != nil {
				return nil, stats, err
			}
		}
	}
	result.SetRules(e.base.Rules())
	return &View{input: e.base, result: result, mode: mode}, stats, nil
}

// pinTracker enforces the executor side of the pebbling objective on a
// pooled store: a scanned chunk stays pinned while any of its merge-
// dependency partners (plan.Neighbors) is still unscanned, so another
// query's fault-ins cannot evict it before the exchange completes; it
// is released the moment its last partner is read. On an unpooled
// store (Pin is a no-op) the tracker is not built at all.
type pinTracker struct {
	store     *chunk.Store
	pos       map[int]int
	neighbors map[int][]int
	// outstanding counts a chunk's partners positioned after it in the
	// schedule that have not been scanned yet.
	outstanding map[int]int
	pinned      map[int]bool
}

func newPinTracker(store *chunk.Store, schedule []int, neighbors map[int][]int) *pinTracker {
	pt := &pinTracker{
		store:       store,
		pos:         make(map[int]int, len(schedule)),
		neighbors:   neighbors,
		outstanding: make(map[int]int),
		pinned:      make(map[int]bool),
	}
	for i, id := range schedule {
		pt.pos[id] = i
	}
	for _, id := range schedule {
		for _, nb := range neighbors[id] {
			if pnb, ok := pt.pos[nb]; ok && pnb > pt.pos[id] {
				pt.outstanding[id]++
			}
		}
	}
	return pt
}

// scanned records that id was just read: pin it when partners are still
// ahead in the schedule, and release earlier partners this read
// satisfies.
func (pt *pinTracker) scanned(id int) {
	if pt.outstanding[id] > 0 {
		//lint:pairok pins intentionally outlive scanned(): partner reads release them as outstanding counts drain, and the deferred releaseAll sweeps stragglers
		pt.store.Pin(id)
		pt.pinned[id] = true
	}
	myPos, ok := pt.pos[id]
	if !ok {
		return
	}
	for _, nb := range pt.neighbors[id] {
		if pnb, ok := pt.pos[nb]; !ok || pnb >= myPos {
			continue
		}
		if pt.outstanding[nb] > 0 {
			pt.outstanding[nb]--
			if pt.outstanding[nb] == 0 && pt.pinned[nb] {
				pt.store.Unpin(nb)
				delete(pt.pinned, nb)
			}
		}
	}
}

// releaseAll unpins whatever is still pinned — a no-op after a complete
// scan, the safety net on error and cancellation paths.
func (pt *pinTracker) releaseAll() {
	for id := range pt.pinned {
		pt.store.Unpin(id)
	}
	pt.pinned = map[int]bool{}
}

// scanInto reads the scheduled chunks in order, relocating scoped cells
// through the plan's target tables into the overlay. Relocation is
// chunk-native: the destination address decomposes to (chunkID, offset)
// by integer arithmetic and the write allocates nothing once the
// destination chunk exists. The context, when non-nil, is checked
// before every chunk read. The plan is only read, so concurrent
// scanInto calls over disjoint overlays are safe.
//
// Per-read attribution flows through ReadChunkInfo: modeled disk cost
// sums into the tally, and a buffer-pool fault becomes a "fault" span
// under parent — recorded in hindsight via tr.Now()/tr.Record, so a
// pool hit costs no span slot (and, with tracing off, nothing at all).
func (e *Engine) scanInto(ctx context.Context, schedule []int, p *PhysicalPlan,
	overlay *chunk.Overlay, tr *trace.Trace, parent trace.SpanRef) (scanTally, error) {

	var tally scanTally
	g := e.store.Geometry()
	og := overlay.Geometry()
	ccoord := make([]int, g.NumDims())
	addr := make([]int, g.NumDims())
	out := make([]int, g.NumDims())
	promBefore := overlay.Promotions()
	// The run kernel is built lazily, on the first run-encoded chunk:
	// dense and sparse chunks keep the per-cell path below, so the
	// dense baseline in the RLE figures measures unchanged code.
	var rk *runKernel

	var pins *pinTracker
	if e.store.Pooled() && len(p.Neighbors) > 0 {
		pins = newPinTracker(e.store, schedule, p.Neighbors)
		defer pins.releaseAll()
	}

	// The per-cell relocation closure is hoisted out of the schedule
	// loop: every capture (scratch buffers, plan tables, the overlay)
	// is loop-invariant — ccoord is updated in place per chunk — so one
	// allocation serves the whole scan instead of one per chunk.
	relocate := func(off int, v float64) bool {
		tally.cellsScanned++
		g.Join(ccoord, off, addr)
		row := p.Target[addr[e.vi]]
		if row == nil {
			return true
		}
		dst := row[addr[e.pi]]
		if dst < 0 {
			return true
		}
		copy(out, addr)
		out[e.vi] = dst
		overlay.Set(out, v)
		tally.cellsRelocated++
		return true
	}

	for _, id := range schedule {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return tally, err
			}
		}
		readStart := tr.Now()
		ch, info := e.store.ReadChunkInfo(id)
		tally.chunksRead++
		tally.diskCostMs += info.CostMs
		if info.Faulted {
			tally.spillFaults++
			sp := tr.Record(parent, "fault", readStart, tr.Now())
			sp.Int("chunk", int64(id))
			sp.IntNonZero("evictions", int64(info.Evictions))
			if info.Pinned {
				sp.Int("pinned", 1)
			}
			if info.Durable {
				sp.Int("durable", 1)
			}
		}
		if pins != nil {
			pins.scanned(id)
		}
		if ch == nil && e.chain == nil {
			continue
		}
		g.CoordOf(id, ccoord)
		if e.chain != nil {
			// Scenario scan: resolve the chunk's cells through the layer
			// chain (newest layer wins, tombstones skip) — including
			// layer-only cells in chunks the base never materialized
			// (ch == nil), which the planner scheduled via the chain's
			// chunk-ID union.
			e.chain.ForEachMerged(id, ch, relocate)
			continue
		}
		if ch.Rep() == chunk.RunEncoded {
			// Run-aware path: relocate whole value runs through the
			// kernel (one table probe per digit segment, coalesced
			// overlay run writes) instead of cell by cell.
			if rk == nil {
				rk = newRunKernel(g, overlay, p.Target, e.vi, e.pi)
			}
			rk.beginChunk(og, ccoord)
			ch.ForEachRun(rk.emit)
			moved, scanned := rk.take()
			tally.cellsRelocated += moved
			tally.cellsScanned += scanned
			continue
		}
		ch.ForEach(relocate)
	}
	tally.promotions = overlay.Promotions() - promBefore
	return tally, nil
}

// scanParallel fans the scan out over the plan's sub-tasks — contiguous
// crossing-free cuts of merge-group schedules — on a bounded worker
// pool. Each sub-task scans into a private chunk-grained overlay in its
// cut's schedule order: merge edges never cross groups, and sub-task
// cuts never separate an edge's endpoints, so the pebbling order stays
// legal per task. At the barrier, sibling sub-tasks of one group fold
// into the group overlay (Overlay.Absorb) in task order — their cell
// sets are disjoint because relocation destinations are injective per
// parameter leaf — and the caller attaches the group overlays to a
// partitioned router. Cells from different groups can never collide
// (they differ in a non-varying coordinate), so the routed overlay is
// identical to the serial scan's. Each sub-task records a "group" child
// span under scanSp with its own tally and, when its group was split, a
// "subtask" attribute (safe from worker goroutines: span slots are
// claimed atomically).
func (e *Engine) scanParallel(ec ExecContext, p *PhysicalPlan, og *chunk.Geometry,
	tasks []subTask, workers int, tr *trace.Trace, scanSp trace.SpanRef) ([]*chunk.Overlay, []scanTally, error) {

	taskOvs := make([]*chunk.Overlay, len(tasks))
	tallies := make([]scanTally, len(tasks))

	ctx, cancel := context.WithCancel(ec.context())
	defer cancel()

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel() // stop the feeder and the sibling workers promptly
		})
	}
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range work {
				task := tasks[ti]
				//lint:allocok one overlay per merge-group task by design; the task, not the cell, is the unit of work
				ov := chunk.NewOverlay(og)
				gsp := tr.Start(scanSp, "group")
				gsp.Int("group", int64(task.group))
				gsp.IntNonZero("subtask", int64(task.part))
				t, err := e.scanInto(ctx, task.chunks, p, ov, tr, gsp)
				annotateScan(gsp, t, 0)
				gsp.End()
				tallies[ti] = t
				if err != nil {
					fail(err)
					return
				}
				taskOvs[ti] = ov
			}
		}()
	}
feed:
	for ti := range tasks {
		select {
		case work <- ti:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	if firstErr == nil {
		firstErr = ec.err()
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	overlays := make([]*chunk.Overlay, len(p.Groups))
	for ti, task := range tasks {
		if overlays[task.group] == nil {
			overlays[task.group] = taskOvs[ti]
		} else {
			overlays[task.group].Absorb(taskOvs[ti])
		}
	}
	return overlays, tallies, nil
}
