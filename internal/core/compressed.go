package core

import (
	"fmt"

	"whatifolap/internal/cube"
	"whatifolap/internal/perspective"
)

// This file implements the paper's third future-work item (§8):
// "compression of perspective cubes". A perspective cube differs from
// its input only by moving cell values between instances of the same
// member, so instead of materializing the relocated rows (O(cells) for
// the scoped members), the cube can be represented by the relocation
// mapping itself (O(instances × parameter leaves)): every read of a
// scoped cell is answered by following the inverse mapping into the
// unmodified base store.
//
// The tradeoff: ExecPerspectiveCompressed does no chunk I/O at query
// planning time and holds only the mapping, but every cell read costs
// an extra indirection and the base store stays hot. The ablation
// AblationCompression quantifies both sides.

// mappedStore answers reads through a relocation mapping over the base
// store. For a scoped row o, the value at (o, t, ē) is the base value
// at (inverse[o][t], t, ē); unscoped rows read through unchanged.
type mappedStore struct {
	base    cube.Store
	vi, pi  int
	scoped  []bool
	forward map[int][]int // source ordinal -> destination per t
	inverse map[int][]int // destination ordinal -> source per t
}

// Get implements cube.Store.
func (s *mappedStore) Get(addr []int) float64 {
	o := addr[s.vi]
	if !s.scoped[o] {
		return s.base.Get(addr)
	}
	row := s.inverse[o]
	if row == nil {
		return cube.Null
	}
	src := row[addr[s.pi]]
	if src < 0 {
		return cube.Null
	}
	tmp := make([]int, len(addr))
	copy(tmp, addr)
	tmp[s.vi] = src
	return s.base.Get(tmp)
}

// Set implements cube.Store; compressed views are read-only.
func (s *mappedStore) Set(addr []int, v float64) {
	panic("core: compressed perspective views are read-only")
}

// NonNull implements cube.Store: every base cell is emitted at its
// mapped position (or suppressed when it relocates to nowhere).
func (s *mappedStore) NonNull(fn func(addr []int, v float64) bool) {
	out := make([]int, 0, 8)
	s.base.NonNull(func(addr []int, v float64) bool {
		o := addr[s.vi]
		if !s.scoped[o] {
			return fn(addr, v)
		}
		row := s.forward[o]
		if row == nil {
			return true // scoped row with no sources: vanished
		}
		dst := row[addr[s.pi]]
		if dst < 0 {
			return true
		}
		out = append(out[:0], addr...)
		out[s.vi] = dst
		return fn(out, v)
	})
}

// Len implements cube.Store.
func (s *mappedStore) Len() int {
	n := 0
	s.NonNull(func([]int, float64) bool { n++; return true })
	return n
}

// Clone implements cube.Store by materializing.
func (s *mappedStore) Clone() cube.Store {
	arity := 0
	s.NonNull(func(addr []int, v float64) bool { arity = len(addr); return false })
	if arity == 0 {
		arity = 1
	}
	out := cube.NewMemStore(arity)
	s.NonNull(func(addr []int, v float64) bool {
		out.Set(addr, v)
		return true
	})
	return out
}

// MappingBytes estimates the compressed representation's footprint:
// 8 bytes per (instance, parameter leaf) mapping entry, both directions.
func (s *mappedStore) MappingBytes() int {
	n := 0
	for _, row := range s.forward {
		n += 8 * len(row)
	}
	for _, row := range s.inverse {
		n += 8 * len(row)
	}
	return n
}

// ExecPerspectiveCompressed evaluates a perspective query without
// materializing relocated cells: the returned view's store routes every
// read through the relocation mapping. Results are identical to
// ExecPerspective; Stats reports zero chunk reads and relocations, and
// CompressedBytes carries the mapping footprint.
func (e *Engine) ExecPerspectiveCompressed(q PerspectiveQuery) (*View, error) {
	members, target, scoped, err := e.planPerspective(q)
	if err != nil {
		return nil, err
	}
	nT := e.binding.Param.NumLeaves()
	inverse := make(map[int][]int, len(target))
	for srcOrd, row := range target {
		for t, dst := range row {
			if dst < 0 {
				continue
			}
			irow, ok := inverse[dst]
			if !ok {
				irow = make([]int, nT)
				for i := range irow {
					irow[i] = -1
				}
				inverse[dst] = irow
			}
			if irow[t] >= 0 && irow[t] != srcOrd {
				return nil, fmt.Errorf("core: relocation mapping not invertible at ordinal %d, t %d", dst, t)
			}
			irow[t] = srcOrd
		}
	}
	ms := &mappedStore{
		base: e.store, vi: e.vi, pi: e.pi,
		scoped: scoped, forward: target, inverse: inverse,
	}
	result := cube.NewWithStore(ms, e.base.Dims()...)
	for _, b := range e.base.Bindings() {
		if err := result.AddBinding(b); err != nil {
			return nil, err
		}
	}
	result.SetRules(e.base.Rules())
	view := &View{input: e.base, result: result, mode: q.Mode}
	view.Stats = Stats{
		MembersInScope:  len(members),
		SourceInstances: len(target),
		CompressedBytes: ms.MappingBytes(),
	}
	if q.Sem.Dynamic() {
		if norm, err := perspective.NormalizePerspectives(e.binding.Param, q.Perspectives); err == nil {
			view.Stats.Ranges = len(norm)
		}
	}
	return view, nil
}
