package core

import (
	"fmt"
	"testing"

	"whatifolap/internal/algebra"
	"whatifolap/internal/chunk"
	"whatifolap/internal/paperdata"
	"whatifolap/internal/perspective"
	"whatifolap/internal/workload"
)

// runEncodedEngine builds a second engine over the same logical data
// with every base chunk force run-encoded, so the scan takes the run
// kernel instead of the per-cell path.
func runEncodedEngine(t testing.TB) *Engine {
	t.Helper()
	c := paperdata.ChunkedWarehouse(nil)
	if n := c.Store().(*chunk.Store).ForceRunEncodeAll(); n == 0 {
		t.Fatal("nothing run-encoded")
	}
	e, err := New(c, "Organization")
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestRunKernelMatchesPerCellPaper checks the run-aware relocation
// kernel against the per-cell path on the paper's warehouse: for every
// semantics × mode, serial and parallel, a run-encoded store produces
// the exact cell set (and relocation count) of the plain store.
func TestRunKernelMatchesPerCellPaper(t *testing.T) {
	plain := newEngine(t)
	rle := runEncodedEngine(t)
	for _, sem := range allSemantics {
		for _, mode := range []perspective.Mode{perspective.NonVisual, perspective.Visual} {
			q := PerspectiveQuery{
				Members: []string{"Joe", "Lisa"}, Perspectives: []int{paperdata.Feb, paperdata.Apr},
				Sem: sem, Mode: mode,
			}
			want, err := plain.ExecPerspective(q)
			if err != nil {
				t.Fatalf("%v/%v plain: %v", sem, mode, err)
			}
			for _, workers := range []int{1, 4} {
				label := fmt.Sprintf("%v/%v/workers=%d", sem, mode, workers)
				got, err := rle.ExecPerspectiveWith(ExecContext{Workers: workers}, q)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if !sameCells(dumpCells(want), dumpCells(got)) {
					t.Fatalf("%s: run-encoded cells differ from per-cell path", label)
				}
				if got.Stats.CellsRelocated != want.Stats.CellsRelocated {
					t.Fatalf("%s: %d cells relocated, per-cell path %d",
						label, got.Stats.CellsRelocated, want.Stats.CellsRelocated)
				}
			}
		}
	}
}

// TestRunKernelMatchesPerCellWorkforce is the same equivalence on a
// generated workforce cube (64-employee chunks, multi-instance members,
// degenerate length-1 runs from the monthly drift), all semantics × both
// modes, serial and parallel.
func TestRunKernelMatchesPerCellWorkforce(t *testing.T) {
	wPlain, err := workload.NewWorkforce(workload.ConfigTiny())
	if err != nil {
		t.Fatal(err)
	}
	wRle, err := workload.NewWorkforce(workload.ConfigTiny())
	if err != nil {
		t.Fatal(err)
	}
	if n := wRle.Cube.Store().(*chunk.Store).ForceRunEncodeAll(); n == 0 {
		t.Fatal("nothing run-encoded")
	}
	plain, err := New(wPlain.Cube, workload.DimDepartment)
	if err != nil {
		t.Fatal(err)
	}
	rle, err := New(wRle.Cube, workload.DimDepartment)
	if err != nil {
		t.Fatal(err)
	}
	for _, sem := range allSemantics {
		for _, mode := range []perspective.Mode{perspective.NonVisual, perspective.Visual} {
			q := PerspectiveQuery{
				Members: wPlain.Changing, Perspectives: []int{0, 3, 6, 9},
				Sem: sem, Mode: mode,
			}
			want, err := plain.ExecPerspective(q)
			if err != nil {
				t.Fatalf("%v/%v plain: %v", sem, mode, err)
			}
			for _, workers := range []int{1, 4} {
				got, err := rle.ExecPerspectiveWith(ExecContext{Workers: workers}, q)
				if err != nil {
					t.Fatalf("%v/%v/workers=%d: %v", sem, mode, workers, err)
				}
				if !sameCells(dumpCells(want), dumpCells(got)) {
					t.Fatalf("%v/%v/workers=%d: run-encoded cells differ", sem, mode, workers)
				}
			}
		}
	}
}

// TestRunKernelChangesExtendedGeometry pins the kernel's destination-ID
// arithmetic in the positive-scenario case: new member instances extend
// the varying dimension, so the overlay geometry's chunk count — and
// with it every canonical-ID stride — differs from the source store's.
// The run-encoded store must produce the plain store's exact view.
func TestRunKernelChangesExtendedGeometry(t *testing.T) {
	plain := newEngine(t)
	rle := runEncodedEngine(t)
	q := ChangesQuery{
		Changes: []algebra.Change{
			{Member: "Lisa", OldParent: "FTE", NewParent: "PTE", T: paperdata.Apr},
			{Member: "Tom", OldParent: "PTE", NewParent: "Contractor", T: paperdata.Mar},
		},
		Mode: perspective.Visual,
	}
	want, err := plain.ExecChanges(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, err := rle.ExecChangesWith(ExecContext{Workers: workers}, q)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !sameCells(dumpCells(want), dumpCells(got)) {
			t.Fatalf("workers=%d: run-encoded changes view differs", workers)
		}
	}
}

// TestSplitSubtasksLegal checks the sub-task cutting invariants on a
// real plan: parts concatenate back to each group's schedule in order,
// no merge edge has its endpoints in different parts, every group
// produces at least one part, and the total respects the budget rule
// (≥ groups, and > groups only by intra-group splitting).
func TestSplitSubtasksLegal(t *testing.T) {
	w, err := workload.NewWorkforce(workload.ConfigTiny())
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(w.Cube, workload.DimDepartment)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.PlanPerspective(PerspectiveQuery{
		Members: w.Changing, Perspectives: []int{0, 3, 6, 9},
		Sem: perspective.Forward, Mode: perspective.NonVisual,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []int{1, 2, 4, 8, 64} {
		tasks := splitSubtasks(plan, target)
		if len(tasks) < len(plan.Groups) {
			t.Fatalf("target %d: %d tasks for %d groups", target, len(tasks), len(plan.Groups))
		}
		perGroup := make(map[int][]int)
		for _, task := range tasks {
			if len(task.chunks) == 0 {
				t.Fatalf("target %d: empty sub-task for group %d", target, task.group)
			}
			perGroup[task.group] = append(perGroup[task.group], task.chunks...)
		}
		for gi, mg := range plan.Groups {
			got := perGroup[gi]
			if len(got) != len(mg.Chunks) {
				t.Fatalf("target %d group %d: parts cover %d chunks, schedule has %d",
					target, gi, len(got), len(mg.Chunks))
			}
			for i, id := range mg.Chunks {
				if got[i] != id {
					t.Fatalf("target %d group %d: parts reorder the schedule at slot %d", target, gi, i)
				}
			}
		}
		// No merge edge may span two parts.
		owner := make(map[int]int)
		for ti, task := range tasks {
			for _, id := range task.chunks {
				owner[id] = ti
			}
		}
		for id, nbs := range plan.Neighbors {
			for _, nb := range nbs {
				if owner[id] != owner[nb] {
					t.Fatalf("target %d: merge edge (%d,%d) split across sub-tasks", target, id, nb)
				}
			}
		}
	}
}

// TestScanSubtasksStat checks that parallel executions surface the
// sub-task count (≥ merge groups) and serial ones report none.
func TestScanSubtasksStat(t *testing.T) {
	w, err := workload.NewWorkforce(workload.ConfigTiny())
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(w.Cube, workload.DimDepartment)
	if err != nil {
		t.Fatal(err)
	}
	q := PerspectiveQuery{
		Members: w.Changing, Perspectives: []int{0, 3, 6, 9},
		Sem: perspective.Forward, Mode: perspective.NonVisual,
	}
	serial, err := e.ExecPerspective(q)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Stats.ScanSubtasks != 0 {
		t.Fatalf("serial ScanSubtasks = %d, want 0", serial.Stats.ScanSubtasks)
	}
	par, err := e.ExecPerspectiveWith(ExecContext{Workers: 4}, q)
	if err != nil {
		t.Fatal(err)
	}
	if par.Stats.ScanSubtasks < par.Stats.MergeGroups {
		t.Fatalf("ScanSubtasks = %d < MergeGroups = %d", par.Stats.ScanSubtasks, par.Stats.MergeGroups)
	}
	if par.Stats.ScanWorkers > par.Stats.ScanSubtasks {
		t.Fatalf("ScanWorkers = %d exceeds ScanSubtasks = %d", par.Stats.ScanWorkers, par.Stats.ScanSubtasks)
	}
}
