package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"whatifolap/internal/pebble"
)

// ExecContext carries per-execution parameters through the engine's
// staged pipeline. The zero value runs serially without cancellation.
// Threading an ExecContext through the Exec*With methods replaces the
// deprecated SetContext field: the engine holds no per-query state, so
// one engine serves concurrent queries.
type ExecContext struct {
	// Ctx, when non-nil, is checked at chunk-iteration boundaries, so a
	// long scan is abandoned promptly with the context's error.
	Ctx context.Context
	// Workers bounds the scan fan-out over independent merge groups.
	// Values <= 1 scan serially in the plan's global read order.
	Workers int
}

// err reports the context's error, if any.
func (ec ExecContext) err() error {
	if ec.Ctx == nil {
		return nil
	}
	return ec.Ctx.Err()
}

// context returns the caller's context. The zero ExecContext is the
// documented "no cancellation" opt-out, so the nil case is normalized
// here, at the API boundary, and nowhere deeper in the pipeline.
func (ec ExecContext) context() context.Context {
	if ec.Ctx != nil {
		return ec.Ctx
	}
	//lint:ctxok API-boundary shim: a zero ExecContext documents the caller's opt-out of cancellation
	return context.Background()
}

// MergeGroup is one independent unit of scan work: the relevant chunks
// sharing every chunk coordinate outside the varying dimension. A merge
// edge connects chunks that exchange relocated cells, and relocation
// only moves a cell along the varying dimension, so both endpoints of
// any edge share all non-varying coordinates — edges cannot cross
// groups, which is what lets groups scan concurrently while the
// pebbling order is preserved within each.
type MergeGroup struct {
	// Rest is the chunk coordinate with the varying dimension masked to
	// -1, identifying the group.
	Rest []int
	// Chunks is the group's read schedule: the plan's global schedule
	// restricted to this group, preserving relative order (so the
	// per-group pebbling stays legal).
	Chunks []int
	// Edges counts merge-dependency edges inside the group.
	Edges int
	// Peak is the peak co-resident chunk count when the group's
	// schedule is pebbled on its own subgraph.
	Peak int
}

// SplitChunks cuts the group's read schedule into at most maxParts
// contiguous parts for intra-group scan parallelism. A cut is legal only
// where no merge edge is in flight — every edge's two endpoints must
// land in the same part, so each part's restriction of the schedule
// remains a complete pebbling of the chunks it reads and the
// neighbor-pinning executed per part never waits on a chunk another
// part owns. Crossing-edge counts per boundary come from one
// difference-array pass, so splitting is O(chunks + edges).
//
// Parts are returned in schedule order; splitting is deterministic.
// neighbors is the plan's merge adjacency (PhysicalPlan.Neighbors).
func (mg *MergeGroup) SplitChunks(maxParts int, neighbors map[int][]int) [][]int {
	n := len(mg.Chunks)
	if maxParts <= 1 || n <= 1 {
		return [][]int{mg.Chunks}
	}
	pos := make(map[int]int, n)
	for i, id := range mg.Chunks {
		pos[id] = i
	}
	// diff accumulates edge spans: an edge between slots i < j makes the
	// boundaries before slots i+1..j uncuttable. After a prefix sum,
	// crossing == 0 at slot b means no edge spans the boundary before b.
	diff := make([]int, n+1)
	for i, id := range mg.Chunks {
		for _, nb := range neighbors[id] {
			if j, ok := pos[nb]; ok && j > i {
				diff[i+1]++
				diff[j+1]--
			}
		}
	}
	per := (n + maxParts - 1) / maxParts
	out := make([][]int, 0, maxParts)
	start, crossing := 0, 0
	for b := 1; b < n; b++ {
		crossing += diff[b]
		if crossing == 0 && b-start >= per && len(out) < maxParts-1 {
			out = append(out, mg.Chunks[start:b])
			start = b
		}
	}
	return append(out, mg.Chunks[start:])
}

// subTask is one unit of parallel scan work: a contiguous cut of one
// merge group's read schedule. Relocation destinations are injective
// per parameter leaf, so the overlay cell sets written by sibling
// sub-tasks of one group are disjoint and fold order-insensitively
// (Overlay.Absorb) at the merge barrier.
type subTask struct {
	group  int
	chunks []int
	// part is the 1-based index of this cut within its group when the
	// group was split, 0 when the group runs as a single task — the
	// "subtask" span attribute, elided for unsplit groups.
	part int
}

// splitSubtasks cuts every merge group's schedule into sub-tasks,
// allocating the targetParts budget to groups in proportion to their
// chunk counts (each group gets at least one task), so scan parallelism
// scales with min(workers, chunks) instead of min(workers, groups) —
// one huge group no longer serializes the scan.
func splitSubtasks(p *PhysicalPlan, targetParts int) []subTask {
	total := 0
	for _, mg := range p.Groups {
		total += len(mg.Chunks)
	}
	tasks := make([]subTask, 0, len(p.Groups))
	for gi := range p.Groups {
		mg := &p.Groups[gi]
		want := 1
		if total > 0 {
			want = targetParts * len(mg.Chunks) / total
		}
		if want < 1 {
			want = 1
		}
		parts := mg.SplitChunks(want, p.Neighbors)
		for i, part := range parts {
			t := subTask{group: gi, chunks: part}
			if len(parts) > 1 {
				t.part = i + 1
			}
			tasks = append(tasks, t)
		}
	}
	return tasks
}

// PhysicalPlan is the engine's inspectable physical execution plan for
// one relocation query: the relocation tables, which chunks to read in
// what order, and the merge-group partition the parallel scan fans out
// over. A plan is a pure value — building one performs no chunk I/O and
// mutates no engine state — so it can be printed (Describe), tested
// stage by stage, and executed concurrently.
type PhysicalPlan struct {
	// Order is the read-order policy the schedule was built under.
	Order ReadOrder
	// Target maps each source varying ordinal to its destination
	// ordinal per parameter leaf (-1 = the cell vanishes). Read-only
	// after planning; scan workers share it.
	Target map[int][]int
	// Scoped marks varying leaf ordinals owned by the query's overlay.
	Scoped []bool
	// Schedule is the global serial chunk read order.
	Schedule []int
	// Groups partitions Schedule into independent merge groups, in
	// deterministic (masked-coordinate) order.
	Groups []MergeGroup
	// Neighbors is the merge dependency adjacency: for each relevant
	// chunk, the chunks it exchanges relocated cells with. The executor
	// feeds it to the chunk store's buffer pool as pin hints — a chunk
	// stays pinned against eviction while any of its partners is still
	// unscanned (the §5.2 pebbling objective, enforced at the pool).
	Neighbors map[int][]int
	// Stats carries the planning-stage statistics: source instances,
	// relevant chunks, merge edges and groups, the pebbling peak, and
	// the planning wall time.
	Stats Stats
}

// buildPlan runs the planning stage: prune relocation rows that
// contribute nothing, find the relevant chunks, build the merge
// dependency graph, partition it into merge groups, and order the
// reads under the engine's read-order policy.
func (e *Engine) buildPlan(target map[int][]int, scoped []bool) (*PhysicalPlan, error) {
	start := time.Now()
	g := e.store.Geometry()
	cdV := g.ChunkDims[e.vi]
	cdP := g.ChunkDims[e.pi]
	p := &PhysicalPlan{Order: e.order, Target: target, Scoped: scoped}

	// Drop source rows that contribute nothing (every destination -1):
	// e.g. under static semantics, instances not valid at any
	// perspective. Confining reads to contributing rows is the paper's
	// §6.3 point — work must track the varying members in scope.
	for srcOrd, row := range target {
		live := false
		for _, dst := range row {
			if dst >= 0 {
				live = true
				break
			}
		}
		if !live {
			delete(target, srcOrd)
		}
	}

	// Varying-dimension chunk indices holding source rows.
	srcVCs := map[int]bool{}
	for srcOrd := range target {
		srcVCs[srcOrd/cdV] = true
	}
	p.Stats.SourceInstances = len(target)

	// Cross-chunk transfers: (vcSrc, vcDst, paramChunk) triples.
	type triple struct{ vs, vd, pc int }
	transfers := map[triple]bool{}
	for srcOrd, row := range target {
		vs := srcOrd / cdV
		for t, dstOrd := range row {
			if dstOrd < 0 {
				continue
			}
			vd := dstOrd / cdV
			if vd != vs {
				transfers[triple{vs, vd, t / cdP}] = true
			}
		}
	}

	// Relevant chunks: materialized chunks whose varying coordinate
	// holds source rows, grouped by their coordinates outside the
	// varying dimension to find merge partners.
	type group struct {
		rest       []int
		paramCoord int
		byVC       map[int]int // varying chunk coord -> chunk ID
		graph      *pebble.Graph
	}
	groups := map[string]*group{}
	var keys []string
	graph := pebble.NewGraph()
	var relevant []int
	ccoord := make([]int, g.NumDims())
	for _, id := range e.sourceChunkIDs() {
		g.CoordOf(id, ccoord)
		if !srcVCs[ccoord[e.vi]] {
			continue
		}
		relevant = append(relevant, id)
		graph.AddNode(id)
		key := restKey(ccoord, e.vi)
		grp := groups[key]
		if grp == nil {
			rest := make([]int, len(ccoord))
			copy(rest, ccoord)
			rest[e.vi] = -1
			grp = &group{rest: rest, paramCoord: ccoord[e.pi], byVC: map[int]int{}, graph: pebble.NewGraph()}
			groups[key] = grp
			keys = append(keys, key)
		}
		grp.byVC[ccoord[e.vi]] = id
		grp.graph.AddNode(id)
	}
	p.Stats.RelevantChunks = len(relevant)

	// Merge dependency edges: chunks in the same group whose varying
	// coordinates exchange data at this group's parameter coordinate.
	p.Neighbors = make(map[int][]int)
	for tr := range transfers {
		for _, grp := range groups {
			if grp.paramCoord != tr.pc {
				continue
			}
			a, okA := grp.byVC[tr.vs]
			b, okB := grp.byVC[tr.vd]
			if okA && okB && a != b && !graph.HasEdge(a, b) {
				graph.AddEdge(a, b)
				grp.graph.AddEdge(a, b)
				p.Neighbors[a] = append(p.Neighbors[a], b)
				p.Neighbors[b] = append(p.Neighbors[b], a)
				p.Stats.MergeEdges++
			}
		}
	}

	// Global read order (the serial schedule; also the baseline the
	// read-order figures measure).
	switch e.order {
	case OrderPebbling:
		sched := pebble.HeuristicPebble(graph)
		p.Schedule = sched.Order
		p.Stats.PeakResidentChunks = sched.Peak
	default:
		perm := e.readPermutation()
		p.Schedule = sortChunksByOrder(g, relevant, perm)
		peak, err := pebble.VerifySchedule(graph, p.Schedule)
		if err != nil {
			return nil, fmt.Errorf("core: sequential schedule invalid: %w", err)
		}
		p.Stats.PeakResidentChunks = peak
	}

	// Partition the schedule into merge groups. Restricting the global
	// order to a group keeps relative order, so the restriction is a
	// legal pebbling of the group's subgraph (all of a chunk's merge
	// neighbors are in its own group).
	sort.Strings(keys)
	pos := make(map[int]int, len(p.Schedule))
	for i, id := range p.Schedule {
		pos[id] = i
	}
	for _, key := range keys {
		grp := groups[key]
		mg := MergeGroup{Rest: grp.rest, Chunks: make([]int, 0, len(grp.byVC))}
		for _, id := range grp.byVC {
			mg.Chunks = append(mg.Chunks, id)
		}
		sort.Slice(mg.Chunks, func(i, j int) bool { return pos[mg.Chunks[i]] < pos[mg.Chunks[j]] })
		for _, id := range mg.Chunks {
			mg.Edges += grp.graph.Degree(id)
		}
		mg.Edges /= 2
		peak, err := pebble.VerifySchedule(grp.graph, mg.Chunks)
		if err != nil {
			return nil, fmt.Errorf("core: merge-group schedule invalid: %w", err)
		}
		mg.Peak = peak
		p.Groups = append(p.Groups, mg)
	}
	p.Stats.MergeGroups = len(p.Groups)
	p.Stats.PlanMs = msSince(start)
	return p, nil
}

// Describe renders the plan for explain output: chunk and group counts,
// the read schedule, and the merge-group partition the parallel scan
// fans out over.
func (p *PhysicalPlan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "physical plan: %d relevant chunks, %d merge groups, %d merge edges\n",
		p.Stats.RelevantChunks, p.Stats.MergeGroups, p.Stats.MergeEdges)
	fmt.Fprintf(&b, "  read order %s, peak resident chunks %d\n", p.Order, p.Stats.PeakResidentChunks)
	fmt.Fprintf(&b, "  schedule:  %s\n", formatIDs(p.Schedule, 16))
	for i, mg := range p.Groups {
		fmt.Fprintf(&b, "  group %-3d rest=%s: %d chunks %s, %d edges, peak %d\n",
			i, restString(mg.Rest), len(mg.Chunks), formatIDs(mg.Chunks, 8), mg.Edges, mg.Peak)
	}
	return b.String()
}

// formatIDs prints at most limit chunk IDs, eliding the rest.
func formatIDs(ids []int, limit int) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, id := range ids {
		if i == limit {
			fmt.Fprintf(&b, "… +%d", len(ids)-limit)
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", id)
	}
	b.WriteByte(']')
	return b.String()
}

// restString prints a masked chunk coordinate: (·,0,2) with · at the
// varying dimension.
func restString(rest []int) string {
	parts := make([]string, len(rest))
	for i, c := range rest {
		if c < 0 {
			parts[i] = "·"
		} else {
			parts[i] = fmt.Sprint(c)
		}
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// msSince reports the wall time since start in milliseconds.
func msSince(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}
