package chunk

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func spillStore(t *testing.T, budget int) *Store {
	t.Helper()
	g := MustGeometry([]int{64}, []int{4}) // 16 chunks of 4 cells
	s := NewStore(g)
	if err := s.SpillTo(filepath.Join(t.TempDir(), "spill.bin"), budget); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpillEvictsUnderBudget(t *testing.T) {
	// Budget for roughly 2 resident chunks (dense chunk = 32 B,
	// sparse 12 B/cell).
	s := spillStore(t, 70)
	for i := 0; i < 64; i++ {
		s.Set([]int{i}, float64(i+1))
	}
	st := s.SpillStats()
	if st.Spilled == 0 {
		t.Fatalf("nothing spilled: resident=%d spilled=%d", st.Resident, st.Spilled)
	}
	if st.Evictions == 0 {
		t.Fatal("evictions must be surfaced once chunks spill")
	}
	if s.NumChunks() != 16 {
		t.Fatalf("NumChunks = %d, want 16", s.NumChunks())
	}
	if s.Len() != 64 {
		t.Fatalf("Len = %d, want 64 (spilled cells must count)", s.Len())
	}
	// Every value readable; reads fault spilled chunks back in.
	for i := 0; i < 64; i++ {
		if got := s.Get([]int{i}); got != float64(i+1) {
			t.Fatalf("Get(%d) = %v, want %v", i, got, float64(i+1))
		}
	}
	if s.SpillStats().Faults == 0 {
		t.Fatal("full scan should have faulted spilled chunks")
	}
}

func TestSpillNonNullAndClone(t *testing.T) {
	s := spillStore(t, 70)
	want := map[int]float64{}
	for i := 0; i < 64; i += 3 {
		s.Set([]int{i}, float64(i))
		want[i] = float64(i)
	}
	delete(want, 0)
	s.Set([]int{0}, math.NaN())
	got := map[int]float64{}
	s.NonNull(func(addr []int, v float64) bool {
		got[addr[0]] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("NonNull visited %d cells, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("cell %d = %v, want %v", k, got[k], v)
		}
	}
	cl := s.Clone()
	for k, v := range want {
		if cl.Get([]int{k}) != v {
			t.Fatalf("clone cell %d differs", k)
		}
	}
}

func TestSpillRewriteSupersedesSpilledCopy(t *testing.T) {
	s := spillStore(t, 70)
	for i := 0; i < 64; i++ {
		s.Set([]int{i}, 1)
	}
	// Overwrite a value in what is very likely a spilled chunk (the
	// oldest), then verify the new value survives further evictions.
	s.Set([]int{0}, 42)
	for i := 0; i < 64; i++ {
		s.Set([]int{i}, s.Get([]int{i})) // churn the LRU
	}
	if got := s.Get([]int{0}); got != 42 {
		t.Fatalf("rewritten cell = %v, want 42", got)
	}
	// Deleting the last cell of a spilled chunk removes it everywhere.
	s.Set([]int{0}, math.NaN())
	s.Set([]int{1}, math.NaN())
	s.Set([]int{2}, math.NaN())
	s.Set([]int{3}, math.NaN())
	for _, id := range s.ChunkIDs() {
		if id == 0 {
			t.Fatal("chunk 0 should be gone after deleting its cells")
		}
	}
}

func TestCloseSpill(t *testing.T) {
	s := spillStore(t, 70)
	for i := 0; i < 64; i++ {
		s.Set([]int{i}, float64(i))
	}
	if err := s.CloseSpill(); err != nil {
		t.Fatal(err)
	}
	st := s.SpillStats()
	if st.Spilled != 0 || st.Resident != 16 {
		t.Fatalf("after CloseSpill: resident=%d spilled=%d", st.Resident, st.Spilled)
	}
	for i := 0; i < 64; i++ {
		if s.Get([]int{i}) != float64(i) {
			t.Fatal("data lost at CloseSpill")
		}
	}
	// Idempotent on a store without a tier.
	if err := s.CloseSpill(); err != nil {
		t.Fatal(err)
	}
}

func TestSpillErrors(t *testing.T) {
	g := MustGeometry([]int{8}, []int{4})
	s := NewStore(g)
	if err := s.SpillTo(filepath.Join(t.TempDir(), "a"), 0); err == nil {
		t.Fatal("zero budget should fail")
	}
	if err := s.SpillTo(filepath.Join(t.TempDir(), "b"), 100); err != nil {
		t.Fatal(err)
	}
	if err := s.SpillTo(filepath.Join(t.TempDir(), "c"), 100); err == nil {
		t.Fatal("double SpillTo should fail")
	}
	if err := s.SpillTo("/nonexistent/dir/x", 100); err == nil {
		t.Fatal("unwritable path should fail")
	}
}

func TestEncodeDecodeChunkRoundTrip(t *testing.T) {
	c := NewSparse(100)
	c.Set(3, 1.5)
	c.Set(99, -2)
	d, err := decodeChunk(encodeChunk(c), 100)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Get(3) != 1.5 || d.Get(99) != -2 {
		t.Fatal("round trip lost data")
	}
	// Corruption detection.
	if _, err := decodeChunk([]byte{1}, 100); err == nil {
		t.Fatal("short record should fail")
	}
	buf := encodeChunk(c)
	if _, err := decodeChunk(buf[:len(buf)-1], 100); err == nil {
		t.Fatal("truncated record should fail")
	}
	if _, err := decodeChunk(buf, 50); err == nil {
		t.Fatal("offset beyond capacity should fail")
	}
}

// Property: a spilled store behaves exactly like an unspilled one under
// a random workload, for random tiny budgets.
func TestQuickSpilledMatchesResident(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := MustGeometry([]int{40}, []int{1 + r.Intn(5)})
		plain := NewStore(g)
		spilled := NewStore(g)
		dir := t.TempDir()
		if err := spilled.SpillTo(filepath.Join(dir, "s.bin"), 24+r.Intn(100)); err != nil {
			return false
		}
		for i := 0; i < 300; i++ {
			a := []int{r.Intn(40)}
			if r.Intn(4) == 0 {
				plain.Set(a, math.NaN())
				spilled.Set(a, math.NaN())
			} else {
				v := float64(1 + r.Intn(50))
				plain.Set(a, v)
				spilled.Set(a, v)
			}
		}
		if plain.Len() != spilled.Len() || plain.NumChunks() != spilled.NumChunks() {
			return false
		}
		for i := 0; i < 40; i++ {
			a, b := plain.Get([]int{i}), spilled.Get([]int{i})
			if math.IsNaN(a) != math.IsNaN(b) || (!math.IsNaN(a) && a != b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
