package chunk

import (
	"math"
	"sort"
	"strconv"

	"whatifolap/internal/cube"
)

// This file is the scenario-workspace read hot path: a query against a
// scenario resolves every cell through Chain.Get (or the engine's
// merged chunk iteration), so nothing here may allocate per resolved
// cell or format. verify.sh's whatiflint gate enforces the no-fmt rule
// for this file.

// Layer is one immutable delta in a scenario's layer chain: cell writes
// in a values overlay plus explicit deletes in a tombstone overlay.
// The two overlays are disjoint by construction (a write clears the
// cell's tombstone and vice versa), so resolution needs no precedence
// rule within a layer.
//
// A layer is built single-threaded by one edit batch and then sealed:
// scenarios never mutate a layer that a chain snapshot can see, which
// is what makes sharing a parent's layers across forks safe.
type Layer struct {
	values  *Overlay
	deletes *Overlay
	sealed  bool
}

// sealedError is the panic value for edits on a sealed layer: a
// zero-sized sentinel, so raising it never allocates on this hot-path
// file.
type sealedError struct{}

func (sealedError) Error() string { return "chunk: Set/Delete on a sealed Layer" }

// NewLayer creates an empty layer under the geometry.
func NewLayer(g *Geometry) *Layer {
	return &Layer{values: NewOverlay(g), deletes: NewOverlay(g)}
}

// Geometry returns the layer's chunking geometry.
func (l *Layer) Geometry() *Geometry { return l.values.geom }

// Seal freezes the layer: further Set/Delete calls panic. Sealing is
// idempotent. Scenarios seal every layer before linking it into a
// chain, so a chain snapshot can never observe mutation — whatiflint's
// releasepair rule pairs each NewLayer with a Seal on every path.
func (l *Layer) Seal() { l.sealed = true }

// Sealed reports whether the layer is frozen.
func (l *Layer) Sealed() bool { return l.sealed }

// Set writes v at addr. Setting NaN is a delete.
func (l *Layer) Set(addr []int, v float64) {
	if l.sealed {
		panic(sealedError{})
	}
	if math.IsNaN(v) {
		l.Delete(addr)
		return
	}
	l.deletes.Set(addr, math.NaN()) // clear any tombstone
	l.values.Set(addr, v)
}

// Delete writes a tombstone at addr: the cell reads as absent through
// the chain even when an older layer or the base holds a value.
func (l *Layer) Delete(addr []int) {
	if l.sealed {
		panic(sealedError{})
	}
	l.values.Set(addr, math.NaN())
	l.deletes.Set(addr, 1)
}

// Cells returns the number of cells the layer overrides (writes plus
// tombstones).
func (l *Layer) Cells() int { return l.values.Len() + l.deletes.Len() }

// Values returns the layer's write overlay (read-only use).
func (l *Layer) Values() *Overlay { return l.values }

// Deletes returns the layer's tombstone overlay (read-only use).
func (l *Layer) Deletes() *Overlay { return l.deletes }

// MemBytes estimates the layer's resident size.
func (l *Layer) MemBytes() int { return l.values.MemBytes() + l.deletes.MemBytes() }

// deleted reports whether the layer tombstones addr.
func (l *Layer) deleted(addr []int) bool { return !math.IsNaN(l.deletes.Get(addr)) }

// Chain is the scenario workspace's read path: a base store under an
// ordered list of delta layers, newest layer wins, tombstones read as
// absent. It implements cube.Store read-only; a Get is a bounds check
// plus two overlay probes per layer (pure integer arithmetic and map
// lookups — zero allocations per resolved cell), falling through to
// the base for untouched cells.
//
// Layers may carry a wider geometry than the base (hypothetical new
// dimension members live at leaf ordinals above the base extent); the
// per-layer bounds check routes such addresses past narrower layers
// and past the base. A chain whose base is a *Store and whose layers
// all share the base geometry is "engine capable": the perspective
// engine can scan it chunk by chunk through ForEachMerged.
//
// A chain is an immutable snapshot: scenarios build a fresh Chain per
// query from their sealed layers, so concurrent readers never race
// with edits.
type Chain struct {
	base       cube.Store
	baseChunks *Store // non-nil when base is chunk-backed
	baseExt    []int  // base extents guarding out-of-range base reads
	layers     []*Layer
	uniform    bool // all layers share the base chunk geometry
}

// NewChain snapshots base under the given layers (oldest first). The
// caller must not mutate the layers afterwards.
func NewChain(base cube.Store, layers []*Layer) *Chain {
	c := &Chain{base: base, layers: layers}
	if st, ok := base.(*Store); ok {
		c.baseChunks = st
		c.baseExt = st.Geometry().Extents
		c.uniform = true
		for _, l := range layers {
			if !sameGeometry(l.Geometry(), st.Geometry()) {
				c.uniform = false
				break
			}
		}
	}
	return c
}

// sameGeometry reports whether two geometries chunk the same space the
// same way.
func sameGeometry(a, b *Geometry) bool {
	if a == b {
		return true
	}
	if len(a.Extents) != len(b.Extents) {
		return false
	}
	for i := range a.Extents {
		if a.Extents[i] != b.Extents[i] || a.ChunkDims[i] != b.ChunkDims[i] {
			return false
		}
	}
	return true
}

// Base returns the chain's base store.
func (c *Chain) Base() cube.Store { return c.base }

// ChunkBase returns the base as a chunk store, or nil.
func (c *Chain) ChunkBase() *Store { return c.baseChunks }

// NumLayers returns the chain depth.
func (c *Chain) NumLayers() int { return len(c.layers) }

// CellsOverridden returns the total cells the layers override (writes
// plus tombstones, counted per layer — shadowed duplicates included).
func (c *Chain) CellsOverridden() int {
	n := 0
	for _, l := range c.layers {
		n += l.Cells()
	}
	return n
}

// EngineCapable reports whether the perspective engine can scan this
// chain chunk-natively: a chunk-backed base with every layer on the
// base geometry (scenarios that introduced hypothetical members carry
// wider layers and evaluate through the general path instead).
func (c *Chain) EngineCapable() bool { return c.baseChunks != nil && c.uniform }

// Get implements cube.Store: newest layer first (tombstone = absent,
// write = value), then the base. Zero allocations per call.
func (c *Chain) Get(addr []int) float64 {
	for i := len(c.layers) - 1; i >= 0; i-- {
		l := c.layers[i]
		if !l.values.geom.Contains(addr) {
			continue
		}
		if l.deleted(addr) {
			return math.NaN()
		}
		if v := l.values.Get(addr); !math.IsNaN(v) {
			return v
		}
	}
	if c.baseExt != nil && !containsAddr(c.baseExt, addr) {
		return math.NaN()
	}
	return c.base.Get(addr)
}

// containsAddr reports whether addr lies within the extents.
func containsAddr(ext []int, addr []int) bool {
	if len(addr) != len(ext) {
		return false
	}
	for i, a := range addr {
		if a < 0 || a >= ext[i] {
			return false
		}
	}
	return true
}

// Set implements cube.Store. Chains are read-only snapshots; edits go
// through the scenario's layer API.
func (c *Chain) Set(addr []int, v float64) {
	panic("chunk: scenario chains are read-only; write through a layer, not the chain (addr " + formatAddr(addr) + ")")
}

// touchedAbove reports whether any layer above i (newer) overrides addr
// with a write or a tombstone.
func (c *Chain) touchedAbove(i int, addr []int) bool {
	for j := len(c.layers) - 1; j > i; j-- {
		l := c.layers[j]
		if !l.values.geom.Contains(addr) {
			continue
		}
		if l.deleted(addr) || !math.IsNaN(l.values.Get(addr)) {
			return true
		}
	}
	return false
}

// NonNull implements cube.Store: layer writes newest-first (each cell
// emitted once, at the newest layer that owns it), then base cells no
// layer overrides. Deterministic given deterministic layer iteration.
func (c *Chain) NonNull(fn func(addr []int, v float64) bool) {
	stopped := false
	for i := len(c.layers) - 1; i >= 0 && !stopped; i-- {
		li := i
		//lint:allocok one closure per layer per NonNull call (it captures the layer index); layers are few, cells are many
		c.layers[i].values.NonNull(func(addr []int, v float64) bool {
			if c.touchedAbove(li, addr) {
				return true
			}
			if !fn(addr, v) {
				stopped = true
				return false
			}
			return true
		})
	}
	if stopped {
		return
	}
	c.base.NonNull(func(addr []int, v float64) bool {
		if c.touchedAbove(-1, addr) {
			return true
		}
		return fn(addr, v)
	})
}

// Len implements cube.Store.
func (c *Chain) Len() int {
	n := 0
	c.NonNull(func(addr []int, v float64) bool { n++; return true })
	return n
}

// Clone implements cube.Store by flattening the resolved view into a
// MemStore (commit paths materialize through the scenario instead, so
// this is only for generic Store callers).
func (c *Chain) Clone() cube.Store {
	arity := 0
	if c.baseExt != nil {
		arity = len(c.baseExt)
	} else if len(c.layers) > 0 {
		arity = c.layers[0].Geometry().NumDims()
	}
	out := cube.NewMemStore(arity)
	c.NonNull(func(addr []int, v float64) bool {
		out.Set(addr, v)
		return true
	})
	return out
}

// LayerChunkIDs returns the sorted union of chunk IDs the layers
// touch. Only meaningful on an engine-capable chain, where layer and
// base chunk IDs share one geometry; the engine unions these with the
// base's materialized chunks so scenario cells in chunks the base
// never materialized still get scanned.
func (c *Chain) LayerChunkIDs() []int {
	seen := map[int]bool{}
	for _, l := range c.layers {
		for _, o := range [2]*Overlay{l.values, l.deletes} {
			for id := range o.chunks {
				seen[id] = true
			}
		}
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// ForEachMerged iterates the resolved cells of one chunk: base cells
// (shadowed ones replaced or skipped per the layer chain), then layer
// cells at offsets the base does not hold. base may be nil when the
// base store never materialized the chunk. Returns false if fn stopped
// the iteration. Requires an engine-capable chain (one shared
// geometry); per-cell work is map probes and integer arithmetic only.
func (c *Chain) ForEachMerged(id int, base *Chunk, fn func(off int, v float64) bool) bool {
	if !c.uniform {
		panic("chunk: ForEachMerged on a non-uniform chain (id " + strconv.Itoa(id) + ")")
	}
	cont := true
	if base != nil {
		base.ForEach(func(off int, v float64) bool {
			for i := len(c.layers) - 1; i >= 0; i-- {
				l := c.layers[i]
				if dch := l.deletes.chunks[id]; dch != nil && !math.IsNaN(dch.Get(off)) {
					return true // deleted: skip, stay in base loop
				}
				if vch := l.values.chunks[id]; vch != nil {
					if lv := vch.Get(off); !math.IsNaN(lv) {
						cont = fn(off, lv)
						return cont
					}
				}
			}
			cont = fn(off, v)
			return cont
		})
		if !cont {
			return false
		}
	}
	for i := len(c.layers) - 1; i >= 0; i-- {
		vch := c.layers[i].values.chunks[id]
		if vch == nil {
			continue
		}
		li := i
		//lint:allocok one closure per layer per merged-chunk scan (it captures the layer index); layers are few
		vch.ForEach(func(off int, v float64) bool {
			if base != nil && !math.IsNaN(base.Get(off)) {
				return true // resolved in the base pass above
			}
			for j := len(c.layers) - 1; j > li; j-- {
				l := c.layers[j]
				if dch := l.deletes.chunks[id]; dch != nil && !math.IsNaN(dch.Get(off)) {
					return true // newer tombstone owns the offset
				}
				if lch := l.values.chunks[id]; lch != nil && !math.IsNaN(lch.Get(off)) {
					return true // newer write owns the offset
				}
			}
			cont = fn(off, v)
			return cont
		})
		if !cont {
			return false
		}
	}
	return true
}
