package chunk

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"whatifolap/internal/cube"
)

// Store is a chunked-array cell store. It implements cube.Store, so a
// cube can be backed by chunked storage transparently, and additionally
// exposes chunk-level access used by the perspective-cube engine:
// enumeration in a dimension order, per-chunk reads with read
// accounting, and eviction.
//
// Concurrency: a fully loaded store is safe for concurrent *readers*
// (Get, ReadChunk, PeekChunk, NonNull, ChunkIDs, SpillStats, Pin,
// Unpin) — read accounting is atomic, the read hook is swapped
// atomically (SetReadHook is safe against concurrent readers), and
// spill fault-ins go through the buffer pool, which overlaps distinct
// chunks' I/O and deduplicates same-chunk faults. Mutation (Set,
// PutChunk, CompressAll, SpillTo) must not race with readers; the
// serving layer guarantees this by publishing cubes copy-on-write.
// Both the serving layer's cross-query concurrency and the engine's
// intra-query parallel merge-group scan (core.ExecContext.Workers)
// lean on the concurrent-reader guarantee.
type Store struct {
	geom   *Geometry
	chunks map[int]*Chunk // resident chunks by canonical ID

	// reads counts chunk reads (ReadChunk calls); the engine and the
	// co-location experiment use it to account I/O.
	reads atomic.Int64
	// readHook, when set, observes every chunk read with its canonical
	// ID. The pointer is accessed atomically so SetReadHook never races
	// a concurrent reader; the hook itself is invoked under hookMu, so
	// hook state needs no synchronization of its own.
	readHook atomic.Pointer[func(id int)]
	// costHook, when set, charges every chunk read against an I/O cost
	// model (the simulated disk attaches here) and returns that read's
	// modeled cost in milliseconds. Unlike the observer readHook, the
	// return value flows back to the reader, so a query accumulates
	// exactly the cost of its own reads — the race-free replacement for
	// diffing the disk's global counters around an execution.
	costHook atomic.Pointer[func(id int) float64]
	// hookMu serializes read-hook invocations. It is deliberately
	// separate from mu: a slow hook (the simulated disk's cost model)
	// must not block other queries' pool fault-ins.
	hookMu sync.Mutex
	// pool, when non-nil, pages least-recently-used chunks out to a
	// backing Tier (SpillTo's scratch file, simdisk's deterministic
	// model, or a persistent segment) so the resident set fits a
	// memory budget.
	pool *bufferPool
	// mu guards the resident chunk map and the buffer-pool bookkeeping
	// (recency list, dirty/deleted sets, pins) whenever a tier is
	// attached. Fault-in I/O runs outside it — see poolGet.
	mu sync.Mutex
}

// NewStore creates an empty chunked store with the given geometry.
func NewStore(geom *Geometry) *Store {
	return &Store{geom: geom, chunks: make(map[int]*Chunk)}
}

// Geometry returns the store's chunking geometry.
func (s *Store) Geometry() *Geometry { return s.geom }

// SetReadHook installs fn to observe chunk reads. Pass nil to remove.
// The swap is atomic, so installing or removing a hook never races
// concurrent readers; reads in flight may still invoke the previous
// hook once.
func (s *Store) SetReadHook(fn func(id int)) {
	if fn == nil {
		s.readHook.Store(nil)
		return
	}
	s.readHook.Store(&fn)
}

// SetCostHook installs fn to charge chunk reads against an I/O cost
// model; fn returns the modeled cost of the read in milliseconds,
// which ReadChunkInfo reports back to the reader. Pass nil to remove.
// Like SetReadHook, the swap is atomic and invocation is serialized
// under the hook mutex.
func (s *Store) SetCostHook(fn func(id int) float64) {
	if fn == nil {
		s.costHook.Store(nil)
		return
	}
	s.costHook.Store(&fn)
}

// Reads returns the number of chunk reads so far.
func (s *Store) Reads() int { return int(s.reads.Load()) }

// ResetReads clears the read counter.
func (s *Store) ResetReads() { s.reads.Store(0) }

// Get implements cube.Store. Uses the fused SplitID so a point read
// allocates nothing — scenario layer chains fall through here once per
// unoverridden cell.
func (s *Store) Get(addr []int) float64 {
	id, off := s.geom.SplitID(addr)
	c := s.chunkAt(id)
	if c == nil {
		return math.NaN()
	}
	return c.Get(off)
}

// Set implements cube.Store.
func (s *Store) Set(addr []int, v float64) {
	ccoord := make([]int, s.geom.NumDims())
	off := s.geom.Split(addr, ccoord)
	id := s.geom.CanonicalID(ccoord)
	c := s.chunkAt(id)
	if c == nil {
		if math.IsNaN(v) {
			return
		}
		c = NewSparse(s.geom.ChunkCap())
		s.chunks[id] = c
	}
	before := c.MemBytes()
	c.Set(off, v)
	if c.Len() == 0 {
		delete(s.chunks, id)
		s.noteMutation(id, -before)
		return
	}
	s.noteMutation(id, c.MemBytes()-before)
}

// NonNull implements cube.Store. Chunks are visited in canonical ID
// order; cells within a chunk in offset order, so iteration is
// deterministic. Spilled chunks are faulted in as they are reached.
func (s *Store) NonNull(fn func(addr []int, v float64) bool) {
	ids := s.ChunkIDs()
	addr := make([]int, s.geom.NumDims())
	ccoord := make([]int, s.geom.NumDims())
	for _, id := range ids {
		c := s.chunkAt(id)
		if c == nil {
			continue
		}
		s.geom.CoordOf(id, ccoord)
		stop := false
		c.ForEach(func(off int, v float64) bool {
			s.geom.Join(ccoord, off, addr)
			if !fn(addr, v) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Len implements cube.Store. Tier-held chunks contribute without
// being loaded (the tier sizes them from its index).
func (s *Store) Len() int {
	if s.pool != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	n := 0
	for _, c := range s.chunks {
		n += c.Len()
	}
	if p := s.pool; p != nil {
		for _, id := range p.tier.IDs() {
			if _, resident := s.chunks[id]; resident || p.deleted[id] {
				continue
			}
			n += p.tier.Cells(id)
		}
	}
	return n
}

// Clone implements cube.Store. When the backing tier supports cheap
// views (CloneableTier — the spill file and the segment store do), the
// clone shares the tier read-only and stays within the same resident
// budget instead of forcing every chunk into memory; its subsequent
// mutations stay resident (the shared tier is immutable from the
// clone's side). Tiers without view support fall back to a fully
// resident clone.
func (s *Store) Clone() cube.Store {
	out := NewStore(s.geom)
	if s.pool == nil {
		for id, c := range s.chunks {
			out.chunks[id] = c.Clone()
		}
		return out
	}
	s.mu.Lock()
	var nt Tier
	if ct, ok := s.pool.tier.(CloneableTier); ok {
		//lint:pairok a nil clone has nothing to close, and a non-nil one hands its ownership to newBufferPool below
		nt, _ = ct.CloneTier()
	}
	if nt == nil {
		s.mu.Unlock()
		// Fallback: materialize everything through the pool.
		for _, id := range s.ChunkIDs() {
			if c := s.chunkAt(id); c != nil {
				out.chunks[id] = c.Clone()
			}
		}
		return out
	}
	p := newBufferPool(nt, s.pool.budget)
	for id, c := range s.chunks {
		out.chunks[id] = c.Clone()
	}
	// Dirty/deleted survive verbatim: the cloned view may hold a stale
	// copy of a chunk the parent mutated in place, and must not serve
	// it after an eviction or count a deleted chunk.
	for id := range s.pool.dirty {
		p.dirty[id] = true
	}
	for id := range s.pool.deleted {
		p.deleted[id] = true
	}
	s.mu.Unlock()
	out.attachPoolClone(p)
	return out
}

// ChunkIDs returns the canonical IDs of the materialized chunks —
// resident and tier-held — sorted without duplicates.
func (s *Store) ChunkIDs() []int {
	if s.pool != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	ids := make([]int, 0, len(s.chunks))
	for id := range s.chunks {
		ids = append(ids, id)
	}
	if p := s.pool; p != nil {
		for _, id := range p.tier.IDs() {
			if _, resident := s.chunks[id]; resident || p.deleted[id] {
				continue
			}
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// NumChunks returns the number of materialized chunks, resident or
// tier-held.
func (s *Store) NumChunks() int {
	if s.pool != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	n := len(s.chunks)
	if p := s.pool; p != nil {
		for _, id := range p.tier.IDs() {
			if _, resident := s.chunks[id]; resident || p.deleted[id] {
				continue
			}
			n++
		}
	}
	return n
}

// ReadInfo attributes one chunk read to the query that issued it: the
// modeled I/O cost from the cost hook, and — on a pooled store — what
// the buffer pool did to satisfy the read. The engine turns faulted
// reads into trace spans and sums CostMs into per-query statistics.
type ReadInfo struct {
	// CostMs is this read's modeled I/O cost: the cost hook's charge
	// plus, on a fault, the backing tier's own modeled cost (simdisk's
	// deterministic tier charges here; real-file tiers charge 0 and
	// are measured by FaultMs instead).
	CostMs float64
	// Faulted reports that the chunk was loaded from the backing tier.
	Faulted bool
	// FaultMs is the wall time of the fault-in I/O and decode (0 on a
	// pool hit or an unpooled store).
	FaultMs float64
	// Evictions counts chunks this read's fault-in pushed out of the
	// resident set to make room.
	Evictions int
	// Pinned reports that the chunk was pinned at read time (a merge
	// partner protected it against eviction).
	Pinned bool
	// Durable reports that the fault was served by a durable tier (the
	// segment store) — real storage I/O, not scratch-file traffic.
	Durable bool
}

// ReadChunk fetches the chunk with the given canonical ID, counting the
// read and notifying the read and cost hooks (the simulated disk). A
// nil return means the chunk is empty (not materialized).
func (s *Store) ReadChunk(id int) *Chunk {
	c, _ := s.ReadChunkInfo(id)
	return c
}

// ReadChunkInfo is ReadChunk with per-read attribution: the modeled
// I/O cost of exactly this read, and the buffer pool's hit/fault/
// eviction/pin outcome. This is the engine's read path — per-query
// disk cost and per-fault trace spans are built from the returned
// ReadInfo rather than from global counters, so concurrent queries
// never absorb each other's I/O.
func (s *Store) ReadChunkInfo(id int) (*Chunk, ReadInfo) {
	s.reads.Add(1)
	var info ReadInfo
	rh := s.readHook.Load()
	ch := s.costHook.Load()
	if rh != nil || ch != nil {
		s.hookMu.Lock()
		if rh != nil {
			(*rh)(id)
		}
		if ch != nil {
			info.CostMs = (*ch)(id)
		}
		s.hookMu.Unlock()
	}
	if s.pool == nil {
		return s.chunks[id], info
	}
	c, fi, err := s.poolGet(id)
	if err != nil {
		panic(fmt.Sprintf("chunk: tier fault for chunk %d: %v", id, err))
	}
	info.CostMs += fi.costMs
	info.Faulted = fi.faulted
	info.FaultMs = fi.faultMs
	info.Evictions = fi.evictions
	info.Pinned = fi.pinned
	info.Durable = fi.durable
	return c, info
}

// PeekChunk fetches a chunk without read accounting (metadata scans).
// Spilled chunks still fault in.
func (s *Store) PeekChunk(id int) *Chunk { return s.chunkAt(id) }

// PutChunk installs a chunk at the given canonical ID, replacing any
// existing chunk. A nil or empty chunk deletes the slot. The chunk's
// capacity must match the geometry's chunk capacity; a mismatch would
// corrupt offset decoding.
func (s *Store) PutChunk(id int, c *Chunk) {
	if id < 0 || id >= s.geom.NumChunks() {
		panic(fmt.Sprintf("chunk: PutChunk id %d out of range [0,%d)", id, s.geom.NumChunks()))
	}
	if c == nil || c.Len() == 0 {
		before := 0
		if cur, ok := s.chunks[id]; ok {
			before = cur.MemBytes()
		}
		delete(s.chunks, id)
		s.noteMutation(id, -before)
		return
	}
	if c.Cap() != s.geom.ChunkCap() {
		panic(fmt.Sprintf("chunk: PutChunk capacity %d does not match geometry chunk capacity %d", c.Cap(), s.geom.ChunkCap()))
	}
	before := 0
	if cur, ok := s.chunks[id]; ok {
		before = cur.MemBytes()
	}
	s.chunks[id] = c
	s.noteMutation(id, c.MemBytes()-before)
}

// MemBytes estimates the store's resident size.
func (s *Store) MemBytes() int {
	n := 0
	for _, c := range s.chunks {
		n += c.MemBytes()
	}
	return n
}

// residentIDs snapshots the resident chunk IDs (under mu when pooled)
// so a representation sweep can mutate accounting — which may evict —
// without iterating the map it is shrinking.
func (s *Store) residentIDs() []int {
	if s.pool != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	ids := make([]int, 0, len(s.chunks))
	for id := range s.chunks {
		ids = append(ids, id)
	}
	return ids
}

// convertAll applies a representation conversion to every resident
// chunk, flowing the byte delta of each conversion through the pool's
// accounting — without this, a pooled store would keep charging a
// compressed chunk at its old size, defeating the byte-budgeted LRU.
func (s *Store) convertAll(convert func(c *Chunk) bool) int {
	n := 0
	for _, id := range s.residentIDs() {
		c := s.chunks[id]
		if c == nil {
			continue // evicted by an earlier conversion's accounting
		}
		before := c.MemBytes()
		if convert(c) {
			n++
			s.noteMutation(id, c.MemBytes()-before)
		}
	}
	return n
}

// CompressAll converts all dense chunks under the density threshold to
// sparse representation, returning the number converted. This is the
// "cube reorganization" step of the co-location experiment.
func (s *Store) CompressAll() int {
	return s.convertAll(func(c *Chunk) bool { return c.Compress() })
}

// ForceSparseAll converts every chunk to the sparse representation
// regardless of occupancy (representation ablation).
func (s *Store) ForceSparseAll() int {
	return s.convertAll(func(c *Chunk) bool { return c.ForceSparse() })
}

// EncodeRunsAll run-length encodes every resident chunk whose run ratio
// clears the encoding threshold, returning the number converted. This
// is the ingest/Seal-time compression step: whatifd applies it after
// loading a cube, and a pooled store's resident bytes (and therefore
// its spill budget) shrink to the encoded size.
func (s *Store) EncodeRunsAll() int {
	return s.convertAll(func(c *Chunk) bool { return c.EncodeRuns() })
}

// ForceRunEncodeAll run-length encodes every resident chunk regardless
// of run ratio (representation ablation and kernel equivalence tests).
func (s *Store) ForceRunEncodeAll() int {
	return s.convertAll(func(c *Chunk) bool { return c.ForceRuns() })
}
