// Package chunk implements the multidimensional array-chunking storage
// scheme of Zhao, Deshpande and Naughton (SIGMOD'97), which the paper
// uses as the physical organization of the cube (§5, §6: "the cube is
// physically organized using a multidimensional array-chunking scheme
// similar to that proposed in [19]").
//
// The n-dimensional cell space is partitioned into n-dimensional chunks.
// Chunks are enumerated in a dimension order: the first dimension of the
// order varies fastest, matching Fig. 6 of the paper where order ABC
// numbers the chunks 1..64 with A varying fastest. Dense chunks hold a
// full float64 array; sparse chunks hold sorted (offset, value) pairs.
package chunk

import "fmt"

// Geometry describes the chunking of an n-dimensional cell space.
type Geometry struct {
	// Extents is the number of leaf members per dimension.
	Extents []int
	// ChunkDims is the chunk edge length per dimension.
	ChunkDims []int
	// chunksPer[i] = ceil(Extents[i]/ChunkDims[i]).
	chunksPer []int
	chunkCap  int
}

// NewGeometry validates and builds a Geometry.
func NewGeometry(extents, chunkDims []int) (*Geometry, error) {
	if len(extents) == 0 || len(extents) != len(chunkDims) {
		return nil, fmt.Errorf("chunk: geometry arity mismatch: %d extents, %d chunk dims", len(extents), len(chunkDims))
	}
	g := &Geometry{
		Extents:   append([]int(nil), extents...),
		ChunkDims: append([]int(nil), chunkDims...),
		chunksPer: make([]int, len(extents)),
		chunkCap:  1,
	}
	for i := range extents {
		if extents[i] <= 0 {
			return nil, fmt.Errorf("chunk: extent %d of dimension %d must be positive", extents[i], i)
		}
		if chunkDims[i] <= 0 {
			return nil, fmt.Errorf("chunk: chunk dim %d of dimension %d must be positive", chunkDims[i], i)
		}
		if chunkDims[i] > extents[i] {
			g.ChunkDims[i] = extents[i]
		}
		g.chunksPer[i] = (extents[i] + g.ChunkDims[i] - 1) / g.ChunkDims[i]
		g.chunkCap *= g.ChunkDims[i]
	}
	return g, nil
}

// MustGeometry is NewGeometry that panics on error.
func MustGeometry(extents, chunkDims []int) *Geometry {
	g, err := NewGeometry(extents, chunkDims)
	if err != nil {
		panic(err)
	}
	return g
}

// NumDims returns the number of dimensions.
func (g *Geometry) NumDims() int { return len(g.Extents) }

// ChunksPerDim returns the number of chunks along dimension i.
func (g *Geometry) ChunksPerDim(i int) int { return g.chunksPer[i] }

// NumChunks returns the total number of chunk positions.
func (g *Geometry) NumChunks() int {
	n := 1
	for _, c := range g.chunksPer {
		n *= c
	}
	return n
}

// ChunkCap returns the number of cell slots per (full) chunk.
func (g *Geometry) ChunkCap() int { return g.chunkCap }

// ChunkIDStride returns the canonical-ID increment of one step along
// dimension dim's chunk coordinate (IDs are row-major over chunk
// coordinates). The run-aware relocation kernel derives destination
// chunk IDs with it instead of recomposing full coordinates.
func (g *Geometry) ChunkIDStride(dim int) int {
	stride := 1
	for i := dim + 1; i < len(g.chunksPer); i++ {
		stride *= g.chunksPer[i]
	}
	return stride
}

// OffsetStride returns the in-chunk offset increment of one step along
// dimension dim (offsets are row-major over chunk-local digits, last
// dimension fastest). The run kernel segments runs at multiples of
// these strides, where the chunk-local digits of interest are constant.
func (g *Geometry) OffsetStride(dim int) int {
	stride := 1
	for i := dim + 1; i < len(g.ChunkDims); i++ {
		stride *= g.ChunkDims[i]
	}
	return stride
}

// Contains reports whether addr is a valid cell address under the
// geometry: matching arity, every ordinal within its extent. Scenario
// layer chains use it to route an address past layers (or a base) too
// narrow to hold it, since Split/SplitID panic on out-of-range
// ordinals. Allocation-free.
func (g *Geometry) Contains(addr []int) bool {
	if len(addr) != len(g.Extents) {
		return false
	}
	for i, a := range addr {
		if a < 0 || a >= g.Extents[i] {
			return false
		}
	}
	return true
}

// Split decomposes a cell address into chunk coordinates and the
// in-chunk offset. The chunk coordinate and offset slices are written
// into ccoord (which must have NumDims length); the offset is returned.
func (g *Geometry) Split(addr []int, ccoord []int) int {
	off := 0
	for i, a := range addr {
		if a < 0 || a >= g.Extents[i] {
			panic(fmt.Sprintf("chunk: ordinal %d out of extent %d in dimension %d", a, g.Extents[i], i))
		}
		ccoord[i] = a / g.ChunkDims[i]
		off = off*g.ChunkDims[i] + a%g.ChunkDims[i]
	}
	return off
}

// SplitID decomposes a cell address directly into the canonical chunk
// ID and the in-chunk offset, without materializing the intermediate
// chunk coordinate. It is the fusion of Split and CanonicalID and
// allocates nothing — the relocation kernel calls it once per cell.
func (g *Geometry) SplitID(addr []int) (id, off int) {
	for i, a := range addr {
		if a < 0 || a >= g.Extents[i] {
			panic(fmt.Sprintf("chunk: ordinal %d out of extent %d in dimension %d", a, g.Extents[i], i))
		}
		id = id*g.chunksPer[i] + a/g.ChunkDims[i]
		off = off*g.ChunkDims[i] + a%g.ChunkDims[i]
	}
	return id, off
}

// MaskedID returns the canonical chunk ID of the cell's chunk with the
// chunk coordinate of dimension maskDim forced to zero. Chunks sharing
// every coordinate outside maskDim — the engine's merge groups — map to
// the same masked ID, so it serves as an integer rest key for routing a
// cell to the merge group that owns it. Allocation-free.
func (g *Geometry) MaskedID(addr []int, maskDim int) int {
	id := 0
	for i, a := range addr {
		if a < 0 || a >= g.Extents[i] {
			panic(fmt.Sprintf("chunk: ordinal %d out of extent %d in dimension %d", a, g.Extents[i], i))
		}
		c := a / g.ChunkDims[i]
		if i == maskDim {
			c = 0
		}
		id = id*g.chunksPer[i] + c
	}
	return id
}

// MaskedIDOfCoord is MaskedID over a chunk coordinate instead of a cell
// address: the coordinate of dimension maskDim is ignored (it may be a
// mask marker such as -1).
func (g *Geometry) MaskedIDOfCoord(ccoord []int, maskDim int) int {
	id := 0
	for i, c := range ccoord {
		if i == maskDim {
			c = 0
		}
		if c < 0 || c >= g.chunksPer[i] {
			panic(fmt.Sprintf("chunk: chunk coordinate %d out of range %d in dimension %d", c, g.chunksPer[i], i))
		}
		id = id*g.chunksPer[i] + c
	}
	return id
}

// Join recomposes a cell address from chunk coordinates and in-chunk
// offset, writing into addr.
func (g *Geometry) Join(ccoord []int, off int, addr []int) {
	for i := g.NumDims() - 1; i >= 0; i-- {
		addr[i] = ccoord[i]*g.ChunkDims[i] + off%g.ChunkDims[i]
		off /= g.ChunkDims[i]
	}
}

// CanonicalID linearizes chunk coordinates in schema order with the last
// dimension varying fastest (row-major). Canonical IDs key the store.
func (g *Geometry) CanonicalID(ccoord []int) int {
	id := 0
	for i, c := range ccoord {
		if c < 0 || c >= g.chunksPer[i] {
			panic(fmt.Sprintf("chunk: chunk coordinate %d out of range %d in dimension %d", c, g.chunksPer[i], i))
		}
		id = id*g.chunksPer[i] + c
	}
	return id
}

// CoordOf inverts CanonicalID, writing into ccoord.
func (g *Geometry) CoordOf(id int, ccoord []int) {
	for i := g.NumDims() - 1; i >= 0; i-- {
		ccoord[i] = id % g.chunksPer[i]
		id /= g.chunksPer[i]
	}
}

// OrderID linearizes chunk coordinates in the given dimension order,
// with order[0] varying fastest — the paper's "reading chunks in
// dimension order D_{m1}, ..., D_{mn}" (Fig. 6: order ABC numbers chunks
// 1..64 with A varying fastest).
func (g *Geometry) OrderID(ccoord []int, order []int) int {
	id := 0
	for k := len(order) - 1; k >= 0; k-- {
		d := order[k]
		id = id*g.chunksPer[d] + ccoord[d]
	}
	return id
}

// EnumerateOrder returns all chunk coordinates sorted by OrderID for the
// given dimension order. The order must be a permutation of 0..n-1.
func (g *Geometry) EnumerateOrder(order []int) ([][]int, error) {
	if err := g.checkOrder(order); err != nil {
		return nil, err
	}
	total := g.NumChunks()
	out := make([][]int, 0, total)
	cur := make([]int, g.NumDims())
	for i := 0; i < total; i++ {
		out = append(out, append([]int(nil), cur...))
		// Increment in the given order: order[0] fastest.
		for k := 0; k < len(order); k++ {
			d := order[k]
			cur[d]++
			if cur[d] < g.chunksPer[d] {
				break
			}
			cur[d] = 0
		}
	}
	return out, nil
}

func (g *Geometry) checkOrder(order []int) error {
	if len(order) != g.NumDims() {
		return fmt.Errorf("chunk: order has %d dims, geometry has %d", len(order), g.NumDims())
	}
	seen := make([]bool, g.NumDims())
	for _, d := range order {
		if d < 0 || d >= g.NumDims() || seen[d] {
			return fmt.Errorf("chunk: order %v is not a permutation of 0..%d", order, g.NumDims()-1)
		}
		seen[d] = true
	}
	return nil
}

// ChunkRangeOf returns the half-open range of chunk indices along
// dimension d that cover leaf ordinals [lo, hi).
func (g *Geometry) ChunkRangeOf(d, lo, hi int) (int, int) {
	if lo >= hi {
		return 0, 0
	}
	return lo / g.ChunkDims[d], (hi-1)/g.ChunkDims[d] + 1
}
