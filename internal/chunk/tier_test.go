package chunk

import (
	"math"
	"testing"
)

// Clone of a pooled store must share the backing tier read-only rather
// than forcing every chunk resident (the pre-tier Clone materialized
// the whole cube in RAM).
func TestPoolCloneSharesTier(t *testing.T) {
	s := spillStore(t, 70)
	for i := 0; i < 64; i++ {
		s.Set([]int{i}, float64(i+1))
	}
	cl, ok := s.Clone().(*Store)
	if !ok {
		t.Fatal("clone is not a chunk store")
	}
	if !cl.Pooled() {
		t.Fatal("clone of a pooled store should stay pooled")
	}
	if st := cl.SpillStats(); st.Resident >= 16 {
		t.Fatalf("clone forced full residency: %d chunks resident", st.Resident)
	}
	if cl.Len() != 64 || cl.NumChunks() != 16 {
		t.Fatalf("clone Len=%d NumChunks=%d, want 64/16", cl.Len(), cl.NumChunks())
	}
	for i := 0; i < 64; i++ {
		if got := cl.Get([]int{i}); got != float64(i+1) {
			t.Fatalf("clone Get(%d) = %v, want %v", i, got, float64(i+1))
		}
	}

	// Divergence both ways: the clone's writes never reach the parent,
	// and the parent's post-clone writes never reach the clone — even
	// after churn forces parent evictions that append to the shared
	// file (the clone's span snapshot is immutable).
	cl.Set([]int{0}, 99)
	if got := s.Get([]int{0}); got != 1 {
		t.Fatalf("parent saw clone write: Get(0) = %v", got)
	}
	s.Set([]int{5}, -5)
	if got := cl.Get([]int{5}); got != 6 {
		t.Fatalf("clone saw parent write: Get(5) = %v", got)
	}
	for round := 0; round < 2; round++ {
		for i := 0; i < 64; i++ {
			s.Set([]int{i}, s.Get([]int{i}))
		}
	}
	if cl.Get([]int{0}) != 99 || cl.Get([]int{63}) != 64 {
		t.Fatal("clone values drifted under parent churn")
	}

	// Deleting a tier-held chunk from the clone (read-only tier) hides
	// it without touching the shared file.
	for off := 60; off < 64; off++ {
		cl.Set([]int{off}, math.NaN())
	}
	for _, id := range cl.ChunkIDs() {
		if id == 15 {
			t.Fatal("deleted chunk still listed in clone")
		}
	}
	if !math.IsNaN(cl.Get([]int{63})) {
		t.Fatal("deleted cell still readable in clone")
	}
	if got := s.Get([]int{63}); got != 64 {
		t.Fatalf("clone delete leaked into parent: Get(63) = %v", got)
	}

	// The shared file is refcounted: the parent closing its spill must
	// not pull the file out from under the clone.
	if err := s.CloseSpill(); err != nil {
		t.Fatal(err)
	}
	for i := 6; i < 60; i++ {
		if got := cl.Get([]int{i}); got != float64(i+1) {
			t.Fatalf("clone Get(%d) = %v after parent CloseSpill", i, got)
		}
	}
	if err := cl.CloseSpill(); err != nil {
		t.Fatal(err)
	}
}

// A chunk faulted in and not mutated is clean: evicting it is a drop,
// not a rewrite, and the tier's copy keeps serving it.
func TestPoolCleanEvictionSkipsWriteback(t *testing.T) {
	s := spillStore(t, 70)
	for i := 0; i < 64; i++ {
		s.Set([]int{i}, float64(i+1))
	}
	base := s.SpillStats().Evictions
	// Two read-only passes: every fault-in is clean, so the second
	// pass's evictions must not rewrite records.
	for i := 0; i < 64; i++ {
		if got := s.Get([]int{i}); got != float64(i+1) {
			t.Fatalf("Get(%d) = %v", i, got)
		}
	}
	st := s.SpillStats()
	if st.Evictions <= base {
		t.Fatal("read churn over budget should still evict (by dropping)")
	}
	sf, ok := s.pool.tier.(*spillFile)
	if !ok {
		t.Fatal("spill tier is not a spillFile")
	}
	sf.shared.mu.Lock()
	end := sf.shared.end
	sf.shared.mu.Unlock()
	for i := 0; i < 64; i++ {
		s.Get([]int{i})
	}
	sf.shared.mu.Lock()
	end2 := sf.shared.end
	sf.shared.mu.Unlock()
	if end2 != end {
		t.Fatalf("clean evictions appended to the spill file: %d -> %d bytes", end, end2)
	}
}
