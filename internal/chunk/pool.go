package chunk

import (
	"fmt"
	"time"
)

// Buffer pool: the paper's testbed holds a 20.2 GB cube behind a 256 MB
// cube cache. AttachTier gives a Store the same discipline — a
// resident-memory budget with least-recently-used chunks held by a
// backing Tier and faulted back in on access. The pool is tier-
// agnostic: the scratch spill file (SpillTo), the simulated disk
// (simdisk.Tier) and the persistent segment store (internal/segment)
// all plug in behind the same fault/evict protocol.
//
// It is a small buffer pool, not just a cache: recency tracking is an
// O(1) intrusive list (not a slice scan), chunks can be pinned against
// eviction while the executor still needs their merge-dependency
// partners (the paper's §5.2 pebbling objective), and fault-in I/O
// runs outside the pool lock with per-chunk in-flight deduplication,
// so concurrent queries faulting different chunks overlap their reads
// instead of serializing behind one mutex.
//
// Dirty tracking makes eviction write-back rather than write-through:
// a chunk faulted from the tier stays in the tier, so evicting it
// clean is a free drop; only chunks mutated since their last write
// (or never written) are pushed out through WriteChunk. On a read-only
// tier dirty chunks simply stay resident — the budget yields rather
// than lose data — and deletions are tracked in a side set instead of
// being pushed down.

// lruNode is one resident chunk's slot in the intrusive recency list.
type lruNode struct {
	id         int
	prev, next *lruNode
}

// bufferPool is the Store's paging state over a backing Tier. All
// fields are guarded by the owning Store's mu; fault I/O runs outside
// it (see poolGet). The tier synchronizes itself.
type bufferPool struct {
	tier   Tier
	budget int // resident byte budget
	// nodes maps resident chunk ids to their recency-list slot; head is
	// the least recently used, tail the most. touch is O(1).
	nodes      map[int]*lruNode
	head, tail *lruNode
	// pins counts Pin calls per chunk id; a pinned chunk is never
	// evicted. Pins are independent of residency so a Pin racing an
	// eviction still protects the next fault-in.
	pins map[int]int
	// inflight marks chunk ids whose fault-in I/O is running outside
	// the lock; waiters block on the channel instead of re-reading.
	inflight map[int]chan struct{}
	// dirty marks resident chunks whose latest content is not in the
	// tier; eviction must write them back (or keep them, read-only).
	dirty map[int]bool
	// deleted marks chunks the tier still holds but the store has
	// deleted — needed only when the tier is read-only and cannot
	// Remove. Reads treat them as absent; Len/ChunkIDs skip them.
	deleted map[int]bool
	// residentBytes approximates resident chunk memory.
	residentBytes int
	faults        int
	evictions     int
	// readOnly and durable cache the tier's static properties.
	readOnly bool
	durable  bool
}

func newBufferPool(t Tier, budgetBytes int) *bufferPool {
	p := &bufferPool{
		tier:     t,
		budget:   budgetBytes,
		nodes:    make(map[int]*lruNode),
		pins:     make(map[int]int),
		inflight: make(map[int]chan struct{}),
		dirty:    make(map[int]bool),
		deleted:  make(map[int]bool),
		readOnly: t.ReadOnly(),
	}
	if d, ok := t.(DurableTier); ok {
		p.durable = d.Durable()
	}
	return p
}

// lruPushBack appends a node as most recently used.
func (p *bufferPool) lruPushBack(n *lruNode) {
	n.prev, n.next = p.tail, nil
	if p.tail != nil {
		p.tail.next = n
	} else {
		p.head = n
	}
	p.tail = n
}

// lruRemove unlinks a node.
func (p *bufferPool) lruRemove(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		p.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		p.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// touch marks a resident chunk as recently used, inserting it when it
// has no slot yet. O(1), unlike the slice scan it replaced.
func (p *bufferPool) touch(id int) {
	if n, ok := p.nodes[id]; ok {
		if p.tail != n {
			p.lruRemove(n)
			p.lruPushBack(n)
		}
		return
	}
	n := &lruNode{id: id}
	p.nodes[id] = n
	p.lruPushBack(n)
}

// drop removes a chunk's recency slot, if any.
func (p *bufferPool) drop(id int) {
	if n, ok := p.nodes[id]; ok {
		p.lruRemove(n)
		delete(p.nodes, id)
	}
}

// AttachTier puts the store's chunks behind a backing tier with a
// resident-memory budget. Resident chunks the tier does not already
// hold are marked dirty (eviction writes them back); chunks only the
// tier holds fault in on access. A store can have at most one tier;
// attaching a second is an error.
func (s *Store) AttachTier(t Tier, budgetBytes int) error {
	if s.pool != nil {
		return fmt.Errorf("chunk: store already has a backing tier")
	}
	if budgetBytes <= 0 {
		return fmt.Errorf("chunk: tier budget must be positive, got %d", budgetBytes)
	}
	p := newBufferPool(t, budgetBytes)
	for id, c := range s.chunks {
		p.touch(id)
		p.residentBytes += c.MemBytes()
		if !t.Contains(id) {
			p.dirty[id] = true
		}
	}
	s.pool = p
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return nil
}

// attachPoolClone installs a pre-built pool on a freshly cloned store.
// Unlike AttachTier it preserves the parent's dirty/deleted bookkeeping
// verbatim: a parent's dirty resident chunk must stay dirty in the
// clone even when the shared tier holds a stale copy of it.
func (s *Store) attachPoolClone(p *bufferPool) {
	for id, c := range s.chunks {
		p.touch(id)
		p.residentBytes += c.MemBytes()
	}
	s.pool = p
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
}

// SpillStats describes the buffer pool's state. The zero value is
// returned augmented with the resident count when no tier is attached.
type SpillStats struct {
	// Resident and Spilled are the chunk counts on each side of the
	// budget line: Spilled counts chunks held only by the backing tier.
	Resident int
	Spilled  int
	// Faults counts loads from the backing tier.
	Faults int
	// Evictions counts resident chunks pushed out of the pool (written
	// back when dirty, dropped when the tier already held them).
	Evictions int
	// Pinned is the number of distinct chunk ids currently pinned.
	Pinned int
	// ResidentBytes is the pool's byte accounting of resident chunks —
	// what the eviction budget compares against. Representation sweeps
	// (CompressAll, EncodeRunsAll, …) flow their byte deltas into it,
	// so an encoded store's budget headroom grows with the encoding.
	ResidentBytes int
}

// SpillStats reports the buffer pool's state. Resident is the full
// chunk count and the rest zero when no tier is attached.
func (s *Store) SpillStats() SpillStats {
	if s.pool == nil {
		return SpillStats{Resident: len(s.chunks), ResidentBytes: s.MemBytes()}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.pool
	spilled := 0
	for _, id := range p.tier.IDs() {
		if _, resident := s.chunks[id]; resident || p.deleted[id] {
			continue
		}
		spilled++
	}
	return SpillStats{
		Resident:      len(s.chunks),
		Spilled:       spilled,
		Faults:        p.faults,
		Evictions:     p.evictions,
		Pinned:        len(p.pins),
		ResidentBytes: p.residentBytes,
	}
}

// Pooled reports whether a backing tier (buffer pool) is attached. The
// executor skips its pin bookkeeping entirely on unpooled stores.
func (s *Store) Pooled() bool { return s.pool != nil }

// Tiered reports whether the attached tier, if any, is durable — its
// chunks survive process restart. Serving layers use it to decide
// whether a store needs persisting.
func (s *Store) Tiered() bool { return s.pool != nil && s.pool.durable }

// Pin marks a chunk unevictable until a matching Unpin. The executor
// pins chunks whose merge-dependency partners are still unscanned, so
// the pebbling-optimal resident set survives concurrent queries'
// evictions. Pinning is by id and independent of residency: pinning a
// spilled chunk protects it from the moment it faults back in. No-op
// without a backing tier.
func (s *Store) Pin(id int) {
	if s.pool == nil {
		return
	}
	s.mu.Lock()
	s.pool.pins[id]++
	s.mu.Unlock()
}

// Unpin releases one Pin. When the last pin drops, deferred evictions
// proceed. Unpinning a chunk that is not pinned is a no-op.
func (s *Store) Unpin(id int) {
	if s.pool == nil {
		return
	}
	s.mu.Lock()
	if p := s.pool; p.pins[id] > 0 {
		p.pins[id]--
		if p.pins[id] == 0 {
			delete(p.pins, id)
			s.evictLocked()
		}
	}
	s.mu.Unlock()
}

// CloseSpill detaches and closes the backing tier after faulting every
// tier-only chunk back into memory. The store remains fully usable.
func (s *Store) CloseSpill() error {
	if s.pool == nil {
		return nil
	}
	// Lift the budget so faulting in does not re-evict mid-iteration.
	s.mu.Lock()
	p := s.pool
	p.budget = int(^uint(0) >> 1)
	var ids []int
	for _, id := range p.tier.IDs() {
		if _, resident := s.chunks[id]; resident || p.deleted[id] {
			continue
		}
		ids = append(ids, id)
	}
	s.mu.Unlock()
	for _, id := range ids {
		if _, _, err := s.poolGet(id); err != nil {
			return err
		}
	}
	err := p.tier.Close()
	s.pool = nil
	return err
}

// SyncTier flushes the backing tier's buffered writes, if any. No-op
// without a tier.
func (s *Store) SyncTier() error {
	if s.pool == nil {
		return nil
	}
	return s.pool.tier.Sync()
}

// chunkAt returns the chunk for id, faulting it in from the backing
// tier when necessary. It returns nil when the chunk exists nowhere.
// With a tier attached, lookups go through the pool (short map/recency
// critical sections under mu, fault I/O outside it); without one, the
// resident map is read directly (safe for concurrent readers).
func (s *Store) chunkAt(id int) *Chunk {
	if s.pool == nil {
		return s.chunks[id]
	}
	c, _, err := s.poolGet(id)
	if err != nil {
		panic(fmt.Sprintf("chunk: tier fault for chunk %d: %v", id, err))
	}
	return c
}

// faultInfo describes what one poolGet did: whether it faulted the
// chunk in from the tier, how long the fault I/O took, the tier's
// modeled cost, how many evictions it triggered, whether the chunk was
// pinned, and whether a durable tier served it. It feeds ReadInfo so
// the engine can attribute pool behaviour per query.
type faultInfo struct {
	faulted   bool
	faultMs   float64
	costMs    float64
	evictions int
	pinned    bool
	durable   bool
}

// poolGet is the buffer pool's lookup: resident hit, wait on an
// in-flight fault, or fault in. The tier read runs outside mu so
// concurrent fault-ins of different chunks overlap; per-chunk
// in-flight channels prevent duplicate reads of the same chunk.
func (s *Store) poolGet(id int) (*Chunk, faultInfo, error) {
	p := s.pool
	var fi faultInfo
	for {
		s.mu.Lock()
		if c, ok := s.chunks[id]; ok {
			p.touch(id)
			fi.pinned = p.pins[id] > 0
			s.mu.Unlock()
			return c, fi, nil
		}
		if ch, busy := p.inflight[id]; busy {
			s.mu.Unlock()
			<-ch
			continue
		}
		if p.deleted[id] || !p.tier.Contains(id) {
			s.mu.Unlock()
			return nil, fi, nil
		}
		ch := make(chan struct{})
		p.inflight[id] = ch
		s.mu.Unlock()

		faultStart := time.Now()
		c, costMs, err := p.tier.ReadChunkAt(id)
		fi.faultMs = float64(time.Since(faultStart)) / float64(time.Millisecond)
		fi.costMs = costMs

		s.mu.Lock()
		delete(p.inflight, id)
		if err != nil {
			s.mu.Unlock()
			close(ch)
			return nil, fi, err
		}
		if c == nil {
			// The tier lost the chunk between Contains and the read
			// (concurrent Remove); treat as absent.
			s.mu.Unlock()
			close(ch)
			return nil, fi, nil
		}
		// The tier keeps its copy: the resident chunk starts clean, so
		// a later eviction without mutation is a free drop.
		s.chunks[id] = c
		p.touch(id)
		p.residentBytes += c.MemBytes()
		p.faults++
		fi.faulted = true
		fi.durable = p.durable
		// A transient pin keeps this fault's own chunk out of the
		// eviction pass it triggers: when every other resident chunk is
		// unevictable (pinned, or dirty on a read-only tier), the walk
		// would otherwise reach the tail and drop the chunk we are
		// about to hand to the caller.
		p.pins[id]++
		fi.evictions = s.evictLocked()
		p.pins[id]--
		if p.pins[id] == 0 {
			delete(p.pins, id)
		}
		fi.pinned = p.pins[id] > 0
		s.mu.Unlock()
		close(ch)
		return c, fi, nil
	}
}

// evictLocked pushes least-recently-used unpinned chunks out of the
// resident set until it fits the budget (always keeping at least one
// chunk resident), returning the number evicted. Dirty chunks are
// written back through the tier first; clean chunks are dropped (the
// tier already holds them). On a read-only tier dirty chunks are
// skipped like pinned ones — the budget yields rather than lose data.
// Pinned and skipped chunks keep their recency position. Caller holds
// mu.
func (s *Store) evictLocked() int {
	p := s.pool
	if p == nil {
		return 0
	}
	evicted := 0
	n := p.head
	for p.residentBytes > p.budget && len(p.nodes) > 1 && n != nil {
		next := n.next
		if p.pins[n.id] > 0 {
			n = next
			continue
		}
		victim := n.id
		c, ok := s.chunks[victim]
		if !ok {
			// Defensive: a node without a resident chunk is stale.
			p.drop(victim)
			n = next
			continue
		}
		if p.dirty[victim] {
			if p.readOnly {
				n = next
				continue
			}
			if err := p.tier.WriteChunk(victim, c); err != nil {
				panic(fmt.Sprintf("chunk: tier write-back for chunk %d: %v", victim, err))
			}
			delete(p.dirty, victim)
		}
		p.residentBytes -= c.MemBytes()
		p.evictions++
		evicted++
		delete(s.chunks, victim)
		p.drop(victim)
		n = next
	}
	return evicted
}

// noteMutation updates pool accounting after a resident chunk changed
// size, or after a chunk was created or deleted.
func (s *Store) noteMutation(id int, delta int) {
	if s.pool == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.pool
	p.residentBytes += delta
	if _, resident := s.chunks[id]; resident {
		p.touch(id)
		// The resident copy now supersedes whatever the tier holds.
		p.dirty[id] = true
		delete(p.deleted, id)
	} else {
		// Deleted: drop the recency slot and the tier's copy (or mark
		// it deleted when the tier cannot remove).
		p.drop(id)
		delete(p.dirty, id)
		if p.tier.Contains(id) {
			if p.readOnly {
				p.deleted[id] = true
			} else if err := p.tier.Remove(id); err != nil {
				panic(fmt.Sprintf("chunk: tier remove for chunk %d: %v", id, err))
			}
		}
	}
	s.evictLocked()
}
