// Run-length encoding over value runs: the third chunk representation
// (alongside dense and sparse) and the run iterator the engine's
// run-aware relocation kernel consumes.
//
// A run-encoded chunk stores maximal runs of bit-identical non-Null
// values as three parallel slices: ascending start offsets, lengths,
// and one value per run. Null runs are elided entirely — a gap between
// runs *is* the Null run. At 16 bytes per run the encoding wins
// whenever the run ratio (runs per non-null cell) clears
// runEncodeThreshold; temporally repetitive data (the workforce cube's
// SCD-2 validity windows, where a member's value repeats across its
// window's contiguous time ordinals) compresses by an order of
// magnitude.
//
// Runs are immutable: Set on a run-encoded chunk decodes first
// (copy-on-write) back to dense or sparse by occupancy, so scenario
// layers and commits never mutate encoded slices in place.
//
// This file is on the engine's scan hot path (ForEachRun feeds the
// relocation kernel): no fmt, and no per-cell allocation — verify.sh's
// whatiflint gate enforces the former, the AllocsPerRun pins in
// run_test.go the latter.
package chunk

import (
	"math"
	"sort"
)

// runEncodeThreshold is the run ratio (runs per non-null cell) at or
// below which EncodeRuns converts: 16 bytes per run must beat the 8
// bytes per cell of the dense array, so paying off at half a run per
// cell keeps the encoding no larger than dense even before Null-run
// elision.
const runEncodeThreshold = 0.5

// RunCount returns the number of maximal value runs the chunk's
// non-null cells form (its length in runs). For dense and sparse
// chunks this scans; for run-encoded chunks it is O(1).
func (c *Chunk) RunCount() int {
	if c.runOffs != nil {
		return len(c.runOffs)
	}
	n := 0
	c.ForEachRun(func(off, runLen int, v float64) bool {
		n++
		return true
	})
	return n
}

// ForEachRun calls fn for every maximal run of bit-identical non-null
// values, in ascending offset order: fn(start, length, value). Every
// non-null cell is covered by exactly one run; Null cells by none.
// Equality is on float64 bit patterns, so -0 and 0 stay distinct and a
// decode reproduces the chunk bit-exactly. The iteration allocates
// nothing on any representation (pinned by TestForEachRunAllocs).
func (c *Chunk) ForEachRun(fn func(off, runLen int, v float64) bool) {
	switch {
	case c.runOffs != nil:
		for i, off := range c.runOffs {
			if !fn(int(off), int(c.runLens[i]), c.runVals[i]) {
				return
			}
		}
	case c.dense != nil:
		start, length := 0, 0
		var bits uint64
		for off, v := range c.dense {
			if math.IsNaN(v) {
				if length > 0 {
					if !fn(start, length, math.Float64frombits(bits)) {
						return
					}
					length = 0
				}
				continue
			}
			b := math.Float64bits(v)
			if length > 0 && b == bits {
				length++
				continue
			}
			if length > 0 {
				if !fn(start, length, math.Float64frombits(bits)) {
					return
				}
			}
			start, length, bits = off, 1, b
		}
		if length > 0 {
			fn(start, length, math.Float64frombits(bits))
		}
	default:
		start, length := 0, 0
		var bits uint64
		for i, off := range c.offs {
			b := math.Float64bits(c.vals[i])
			if length > 0 && b == bits && int(off) == start+length {
				length++
				continue
			}
			if length > 0 {
				if !fn(start, length, math.Float64frombits(bits)) {
					return
				}
			}
			start, length, bits = int(off), 1, b
		}
		if length > 0 {
			fn(start, length, math.Float64frombits(bits))
		}
	}
}

// runGet is the run-encoded read path: binary search for the run
// containing off.
func (c *Chunk) runGet(off int) float64 {
	i := sort.Search(len(c.runOffs), func(i int) bool { return c.runOffs[i] > int32(off) }) - 1
	if i >= 0 && int32(off) < c.runOffs[i]+c.runLens[i] {
		return c.runVals[i]
	}
	return math.NaN()
}

// EncodeRuns converts a dense or sparse chunk to the run-encoded
// representation when the run ratio clears runEncodeThreshold (i.e. the
// encoding is at most as large as the dense array). It reports whether
// a conversion happened. Empty and already-encoded chunks are left
// alone.
func (c *Chunk) EncodeRuns() bool {
	if c.runOffs != nil || c.n == 0 {
		return false
	}
	if float64(c.RunCount()) > runEncodeThreshold*float64(c.n) {
		return false
	}
	c.toRuns()
	return true
}

// ForceRuns converts a dense or sparse chunk to the run-encoded
// representation regardless of the run ratio. On low-repetition data
// this *grows* the footprint (16 bytes per length-1 run vs. 8 dense);
// it exists for representation ablations and the kernel equivalence
// tests, which must exercise degenerate runs too.
func (c *Chunk) ForceRuns() bool {
	if c.runOffs != nil || c.n == 0 {
		return false
	}
	c.toRuns()
	return true
}

// DecodeRuns converts a run-encoded chunk back to dense or sparse
// (chosen by occupancy, like every other write path). It reports
// whether a conversion happened.
func (c *Chunk) DecodeRuns() bool {
	if c.runOffs == nil {
		return false
	}
	c.decodeRuns()
	return true
}

// toRuns materializes the run slices from the current representation.
func (c *Chunk) toRuns() {
	runs := c.RunCount()
	offs := make([]int32, 0, runs)
	lens := make([]int32, 0, runs)
	vals := make([]float64, 0, runs)
	c.ForEachRun(func(off, runLen int, v float64) bool {
		offs = append(offs, int32(off))
		lens = append(lens, int32(runLen))
		vals = append(vals, v)
		return true
	})
	c.runOffs, c.runLens, c.runVals = offs, lens, vals
	c.dense, c.offs, c.vals = nil, nil, nil
}

// decodeRuns is the copy-on-write decode behind every mutation of a
// run-encoded chunk: expand to dense, then compress to sparse when
// occupancy is at or under the sparse threshold (the same policy Set
// applies to growing sparse chunks, in reverse).
func (c *Chunk) decodeRuns() {
	d := make([]float64, c.cap)
	for i := range d {
		d[i] = math.NaN()
	}
	for i, off := range c.runOffs {
		v := c.runVals[i]
		for j := int(off); j < int(off)+int(c.runLens[i]); j++ {
			d[j] = v
		}
	}
	c.runOffs, c.runLens, c.runVals = nil, nil, nil
	c.dense = d
	if c.Occupancy() <= sparseThreshold {
		c.toSparse()
	}
}

// SetRun writes n copies of v starting at off — the overlay write path
// of the run-aware relocation kernel (Overlay.SetRunAt). NaN deletes
// the range. Like Set, a run-encoded chunk decodes first and a sparse
// chunk that would cross the density threshold promotes to dense once,
// up front, instead of cell by cell.
func (c *Chunk) SetRun(off, n int, v float64) {
	if n <= 0 {
		return
	}
	c.checkOff(off)
	c.checkOff(off + n - 1)
	if c.runOffs != nil {
		c.decodeRuns()
	}
	if math.IsNaN(v) {
		for i := off; i < off+n; i++ {
			c.Set(i, v)
		}
		return
	}
	if c.dense == nil && float64(c.n+n) > sparseThreshold*float64(c.cap) {
		if c.offs == nil && c.n == 0 {
			// Fresh chunk: allocate dense directly.
			c.dense = make([]float64, c.cap)
			for i := range c.dense {
				c.dense[i] = math.NaN()
			}
		} else {
			c.toDense()
		}
	}
	if c.dense != nil {
		for i := off; i < off+n; i++ {
			if math.IsNaN(c.dense[i]) {
				c.n++
			}
			c.dense[i] = v
		}
		return
	}
	for i := off; i < off+n; i++ {
		c.Set(i, v)
	}
}
