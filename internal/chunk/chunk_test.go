package chunk

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeometryBasics(t *testing.T) {
	g := MustGeometry([]int{16, 16, 16}, []int{4, 4, 4})
	if g.NumDims() != 3 {
		t.Fatalf("NumDims = %d", g.NumDims())
	}
	if g.NumChunks() != 64 {
		t.Fatalf("NumChunks = %d, want 64", g.NumChunks())
	}
	if g.ChunkCap() != 64 {
		t.Fatalf("ChunkCap = %d, want 64", g.ChunkCap())
	}
	for i := 0; i < 3; i++ {
		if g.ChunksPerDim(i) != 4 {
			t.Fatalf("ChunksPerDim(%d) = %d, want 4", i, g.ChunksPerDim(i))
		}
	}
}

func TestGeometryErrors(t *testing.T) {
	if _, err := NewGeometry([]int{4}, []int{4, 4}); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	if _, err := NewGeometry([]int{0}, []int{1}); err == nil {
		t.Fatal("zero extent should fail")
	}
	if _, err := NewGeometry([]int{4}, []int{0}); err == nil {
		t.Fatal("zero chunk dim should fail")
	}
	// Chunk dim larger than extent is clamped, not an error.
	g := MustGeometry([]int{3}, []int{10})
	if g.ChunkDims[0] != 3 || g.ChunksPerDim(0) != 1 {
		t.Fatalf("clamping failed: %v", g.ChunkDims)
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	g := MustGeometry([]int{10, 7, 5}, []int{4, 3, 2})
	ccoord := make([]int, 3)
	addr := make([]int, 3)
	back := make([]int, 3)
	for a := 0; a < 10; a++ {
		for b := 0; b < 7; b++ {
			for c := 0; c < 5; c++ {
				addr[0], addr[1], addr[2] = a, b, c
				off := g.Split(addr, ccoord)
				g.Join(ccoord, off, back)
				if back[0] != a || back[1] != b || back[2] != c {
					t.Fatalf("round trip %v -> %v", addr, back)
				}
			}
		}
	}
}

func TestCanonicalIDRoundTrip(t *testing.T) {
	g := MustGeometry([]int{10, 7, 5}, []int{4, 3, 2})
	ccoord := make([]int, 3)
	back := make([]int, 3)
	for id := 0; id < g.NumChunks(); id++ {
		g.CoordOf(id, ccoord)
		if got := g.CanonicalID(ccoord); got != id {
			t.Fatalf("CanonicalID(CoordOf(%d)) = %d", id, got)
		}
		copy(back, ccoord)
	}
}

// TestFig6ChunkNumbering checks the dimension-order enumeration against
// the paper's Fig. 6: a 4×4×4-chunk array read in order ABC numbers the
// chunks so that A varies fastest: chunks 1..4 run along A, chunk 5 is
// (a0, b1, c0), chunk 17 is (a0, b0, c1).
func TestFig6ChunkNumbering(t *testing.T) {
	g := MustGeometry([]int{16, 16, 16}, []int{4, 4, 4})
	order := []int{0, 1, 2} // A, B, C
	seq, err := g.EnumerateOrder(order)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 64 {
		t.Fatalf("enumerated %d chunks, want 64", len(seq))
	}
	wantFirst := [][]int{
		{0, 0, 0}, {1, 0, 0}, {2, 0, 0}, {3, 0, 0}, // chunks 1-4 along A
		{0, 1, 0}, // chunk 5
	}
	for i, want := range wantFirst {
		for d := 0; d < 3; d++ {
			if seq[i][d] != want[d] {
				t.Fatalf("chunk %d = %v, want %v", i+1, seq[i], want)
			}
		}
	}
	// Chunk 17 (index 16) starts the c1 slab.
	if got := seq[16]; got[0] != 0 || got[1] != 0 || got[2] != 1 {
		t.Fatalf("chunk 17 = %v, want [0 0 1]", got)
	}
	// OrderID agrees with the enumeration position.
	for i, cc := range seq {
		if got := g.OrderID(cc, order); got != i {
			t.Fatalf("OrderID(%v) = %d, want %d", cc, got, i)
		}
	}
}

func TestEnumerateOrderValidation(t *testing.T) {
	g := MustGeometry([]int{4, 4}, []int{2, 2})
	if _, err := g.EnumerateOrder([]int{0}); err == nil {
		t.Fatal("short order should fail")
	}
	if _, err := g.EnumerateOrder([]int{0, 0}); err == nil {
		t.Fatal("non-permutation should fail")
	}
}

func TestChunkRangeOf(t *testing.T) {
	g := MustGeometry([]int{12}, []int{3})
	lo, hi := g.ChunkRangeOf(0, 0, 12)
	if lo != 0 || hi != 4 {
		t.Fatalf("full range = [%d,%d), want [0,4)", lo, hi)
	}
	lo, hi = g.ChunkRangeOf(0, 4, 7)
	if lo != 1 || hi != 3 {
		t.Fatalf("range [4,7) = chunks [%d,%d), want [1,3)", lo, hi)
	}
	lo, hi = g.ChunkRangeOf(0, 5, 5)
	if lo != 0 || hi != 0 {
		t.Fatalf("empty range = [%d,%d), want [0,0)", lo, hi)
	}
}

func TestChunkDenseSparse(t *testing.T) {
	c := NewSparse(100)
	if c.Rep() != Sparse {
		t.Fatal("new sparse chunk should be Sparse")
	}
	c.Set(5, 1)
	c.Set(90, 2)
	if c.Get(5) != 1 || c.Get(90) != 2 || !math.IsNaN(c.Get(50)) {
		t.Fatal("sparse get/set mismatch")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	// Filling past the threshold promotes to dense.
	for i := 0; i < 30; i++ {
		c.Set(i, float64(i))
	}
	if c.Rep() != Dense {
		t.Fatal("chunk should have been promoted to dense")
	}
	if c.Get(90) != 2 {
		t.Fatal("promotion lost a value")
	}
	// Deleting back down and compressing returns to sparse.
	for i := 0; i < 30; i++ {
		c.Set(i, math.NaN())
	}
	if !c.Compress() {
		t.Fatal("Compress should convert a now-sparse dense chunk")
	}
	if c.Rep() != Sparse || c.Get(90) != 2 || c.Len() != 1 {
		t.Fatal("compression lost data")
	}
}

func TestChunkAdd(t *testing.T) {
	c := NewSparse(10)
	c.Add(3, 5)
	c.Add(3, 7)
	if c.Get(3) != 12 {
		t.Fatalf("Add accumulation = %v, want 12", c.Get(3))
	}
	c.Add(3, math.NaN()) // no-op
	if c.Get(3) != 12 {
		t.Fatal("Add(NaN) should be a no-op")
	}
}

func TestChunkForEachOrderAndClone(t *testing.T) {
	c := NewSparse(50)
	c.Set(40, 4)
	c.Set(2, 1)
	c.Set(17, 3)
	var offs []int
	c.ForEach(func(off int, v float64) bool {
		offs = append(offs, off)
		return true
	})
	if len(offs) != 3 || offs[0] != 2 || offs[1] != 17 || offs[2] != 40 {
		t.Fatalf("ForEach order = %v", offs)
	}
	cl := c.Clone()
	cl.Set(2, 99)
	if c.Get(2) != 1 {
		t.Fatal("clone mutation leaked")
	}
	// Early stop.
	n := 0
	c.ForEach(func(off int, v float64) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestChunkOffsetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range offset should panic")
		}
	}()
	NewSparse(4).Get(4)
}

func TestStoreAsCubeStore(t *testing.T) {
	g := MustGeometry([]int{8, 8}, []int{4, 4})
	s := NewStore(g)
	s.Set([]int{1, 2}, 10)
	s.Set([]int{7, 7}, 20)
	if s.Get([]int{1, 2}) != 10 || !math.IsNaN(s.Get([]int{0, 0})) {
		t.Fatal("get/set mismatch")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.NumChunks() != 2 {
		t.Fatalf("NumChunks = %d", s.NumChunks())
	}
	// Deleting the only cell of a chunk drops the chunk.
	s.Set([]int{7, 7}, math.NaN())
	if s.NumChunks() != 1 {
		t.Fatalf("NumChunks after delete = %d, want 1", s.NumChunks())
	}
	// NonNull visits deterministically.
	var got [][2]int
	s.NonNull(func(addr []int, v float64) bool {
		got = append(got, [2]int{addr[0], addr[1]})
		return true
	})
	if len(got) != 1 || got[0] != [2]int{1, 2} {
		t.Fatalf("NonNull = %v", got)
	}
	// Clone is deep.
	cl := s.Clone()
	cl.Set([]int{1, 2}, 99)
	if s.Get([]int{1, 2}) != 10 {
		t.Fatal("store clone mutation leaked")
	}
}

func TestStoreReadAccounting(t *testing.T) {
	g := MustGeometry([]int{8}, []int{4})
	s := NewStore(g)
	s.Set([]int{0}, 1)
	var seen []int
	s.SetReadHook(func(id int) { seen = append(seen, id) })
	if c := s.ReadChunk(0); c == nil || c.Len() != 1 {
		t.Fatal("ReadChunk(0) should return the chunk")
	}
	if c := s.ReadChunk(1); c != nil {
		t.Fatal("ReadChunk of empty slot should be nil")
	}
	if s.Reads() != 2 || len(seen) != 2 {
		t.Fatalf("Reads = %d, hook saw %v", s.Reads(), seen)
	}
	s.ResetReads()
	if s.Reads() != 0 {
		t.Fatal("ResetReads failed")
	}
	// PeekChunk does not count.
	s.PeekChunk(0)
	if s.Reads() != 0 {
		t.Fatal("PeekChunk should not count as a read")
	}
}

func TestPutChunk(t *testing.T) {
	g := MustGeometry([]int{8}, []int{4})
	s := NewStore(g)
	c := NewSparse(4)
	c.Set(1, 5)
	s.PutChunk(1, c)
	if s.Get([]int{5}) != 5 {
		t.Fatalf("PutChunk placement wrong: %v", s.Get([]int{5}))
	}
	s.PutChunk(1, nil)
	if s.NumChunks() != 0 {
		t.Fatal("PutChunk(nil) should delete")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range PutChunk should panic")
		}
	}()
	s.PutChunk(99, c)
}

// Property: a chunked store behaves exactly like a reference map under a
// random workload, for random geometries.
func TestQuickStoreMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ext := []int{1 + r.Intn(20), 1 + r.Intn(20)}
		cd := []int{1 + r.Intn(6), 1 + r.Intn(6)}
		g, err := NewGeometry(ext, cd)
		if err != nil {
			return false
		}
		s := NewStore(g)
		ref := map[[2]int]float64{}
		for i := 0; i < 300; i++ {
			a := [2]int{r.Intn(ext[0]), r.Intn(ext[1])}
			if r.Intn(4) == 0 {
				s.Set(a[:], math.NaN())
				delete(ref, a)
			} else {
				v := float64(1 + r.Intn(100))
				s.Set(a[:], v)
				ref[a] = v
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		for a, v := range ref {
			if s.Get(a[:]) != v {
				return false
			}
		}
		n := 0
		s.NonNull(func(addr []int, v float64) bool {
			if ref[[2]int{addr[0], addr[1]}] != v {
				return false
			}
			n++
			return true
		})
		return n == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: sparse and dense chunks agree cell-for-cell under random
// operations.
func TestQuickChunkRepsAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		capacity := 32 + r.Intn(64)
		sp := NewSparse(capacity)
		de := NewDense(capacity)
		for i := 0; i < 200; i++ {
			off := r.Intn(capacity)
			switch r.Intn(3) {
			case 0:
				v := float64(r.Intn(50))
				sp.Set(off, v)
				de.Set(off, v)
			case 1:
				sp.Set(off, math.NaN())
				de.Set(off, math.NaN())
			case 2:
				v := float64(r.Intn(10))
				sp.Add(off, v)
				de.Add(off, v)
			}
		}
		if sp.Len() != de.Len() {
			return false
		}
		for off := 0; off < capacity; off++ {
			a, b := sp.Get(off), de.Get(off)
			if math.IsNaN(a) != math.IsNaN(b) {
				return false
			}
			if !math.IsNaN(a) && a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDenseChunkSet(b *testing.B) {
	c := NewDense(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Set(i%4096, float64(i))
	}
}

func BenchmarkSparseChunkSet(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewSparse(4096)
		for j := 0; j < 256; j++ {
			c.Set(j*16, float64(j))
		}
	}
}

func TestForceSparse(t *testing.T) {
	c := NewDense(10)
	for i := 0; i < 10; i++ {
		c.Set(i, float64(i+1))
	}
	// Full chunk: Compress refuses (above threshold), ForceSparse works.
	if c.Compress() {
		t.Fatal("Compress should refuse a full chunk")
	}
	if !c.ForceSparse() {
		t.Fatal("ForceSparse should convert")
	}
	if c.Rep() != Sparse || c.Len() != 10 || c.Get(7) != 8 {
		t.Fatal("ForceSparse lost data")
	}
	// Already sparse: no-op.
	if c.ForceSparse() {
		t.Fatal("ForceSparse on sparse chunk should report false")
	}
}

func TestForceSparseAll(t *testing.T) {
	g := MustGeometry([]int{8}, []int{4})
	s := NewStore(g)
	for i := 0; i < 8; i++ {
		s.Set([]int{i}, 1) // both chunks fully dense
	}
	denseBytes := s.MemBytes()
	if n := s.ForceSparseAll(); n != 2 {
		t.Fatalf("converted %d chunks, want 2", n)
	}
	if s.MemBytes() <= denseBytes {
		t.Fatalf("full sparse chunks should be larger: %d vs %d", s.MemBytes(), denseBytes)
	}
	for i := 0; i < 8; i++ {
		if s.Get([]int{i}) != 1 {
			t.Fatal("conversion lost data")
		}
	}
}

func TestPutChunkCapacityMismatchPanics(t *testing.T) {
	g := MustGeometry([]int{8}, []int{4})
	s := NewStore(g)
	bad := NewSparse(99)
	bad.Set(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("capacity mismatch should panic")
		}
	}()
	s.PutChunk(0, bad)
}
