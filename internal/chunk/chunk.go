// Reviewed for hotpathfmt: fmt in this package builds geometry/spill
// errors and cold diagnostics; the overlay write path (overlay.go, a
// declared hot-path file) is fmt-free and hotpathfmt-checked.
//
//lint:coldfmt geometry/spill error construction off the overlay write path
package chunk

import (
	"fmt"
	"math"
	"sort"
)

// Representation selects a chunk's physical layout.
type Representation int

const (
	// Dense chunks hold a full float64 array (Null-filled).
	Dense Representation = iota
	// Sparse chunks hold sorted (offset, value) pairs; the paper's
	// engine compresses sparse regions this way.
	Sparse
	// RunEncoded chunks hold RLE value runs (sorted start offsets with
	// lengths and one value per run; Null runs are elided). The engine's
	// scan consumes runs directly via ForEachRun — see run.go.
	RunEncoded
)

// sparseThreshold is the occupancy fraction above which a sparse chunk
// is converted to dense, and below which SetRepresentation(Sparse)
// compresses.
const sparseThreshold = 0.25

// Chunk is one n-dimensional tile of the cell space. The zero value is
// unusable; chunks are created by a Store.
type Chunk struct {
	cap   int
	n     int // non-null cells
	dense []float64
	// sparse representation: parallel sorted slices.
	offs []int32
	vals []float64
	// run-encoded representation: parallel slices of non-overlapping
	// runs in ascending start order (see run.go).
	runOffs []int32
	runLens []int32
	runVals []float64
}

// NewDense allocates a dense chunk with the given cell capacity.
func NewDense(capacity int) *Chunk {
	c := &Chunk{cap: capacity, dense: make([]float64, capacity)}
	for i := range c.dense {
		c.dense[i] = math.NaN()
	}
	return c
}

// NewSparse allocates an empty sparse chunk with the given capacity.
func NewSparse(capacity int) *Chunk {
	return &Chunk{cap: capacity}
}

// Rep returns the chunk's current representation.
func (c *Chunk) Rep() Representation {
	if c.dense != nil {
		return Dense
	}
	if c.runOffs != nil {
		return RunEncoded
	}
	return Sparse
}

// Cap returns the chunk's cell capacity.
func (c *Chunk) Cap() int { return c.cap }

// Len returns the number of non-null cells.
func (c *Chunk) Len() int { return c.n }

// Occupancy returns the fraction of non-null cells.
func (c *Chunk) Occupancy() float64 {
	if c.cap == 0 {
		return 0
	}
	return float64(c.n) / float64(c.cap)
}

func (c *Chunk) checkOff(off int) {
	if off < 0 || off >= c.cap {
		panic(fmt.Sprintf("chunk: offset %d out of capacity %d", off, c.cap))
	}
}

// Get returns the value at the in-chunk offset, or NaN when absent.
func (c *Chunk) Get(off int) float64 {
	c.checkOff(off)
	if c.dense != nil {
		return c.dense[off]
	}
	if c.runOffs != nil {
		return c.runGet(off)
	}
	i := sort.Search(len(c.offs), func(i int) bool { return c.offs[i] >= int32(off) })
	if i < len(c.offs) && c.offs[i] == int32(off) {
		return c.vals[i]
	}
	return math.NaN()
}

// Set writes v at the in-chunk offset; NaN deletes. A sparse chunk that
// grows past the density threshold is promoted to dense; a run-encoded
// chunk is decoded first (copy-on-write: runs are immutable).
func (c *Chunk) Set(off int, v float64) {
	c.checkOff(off)
	if c.runOffs != nil {
		c.decodeRuns()
	}
	if c.dense != nil {
		was := !math.IsNaN(c.dense[off])
		now := !math.IsNaN(v)
		c.dense[off] = v
		switch {
		case now && !was:
			c.n++
		case !now && was:
			c.n--
		}
		return
	}
	i := sort.Search(len(c.offs), func(i int) bool { return c.offs[i] >= int32(off) })
	present := i < len(c.offs) && c.offs[i] == int32(off)
	if math.IsNaN(v) {
		if present {
			c.offs = append(c.offs[:i], c.offs[i+1:]...)
			c.vals = append(c.vals[:i], c.vals[i+1:]...)
			c.n--
		}
		return
	}
	if present {
		c.vals[i] = v
		return
	}
	c.offs = append(c.offs, 0)
	copy(c.offs[i+1:], c.offs[i:])
	c.offs[i] = int32(off)
	c.vals = append(c.vals, 0)
	copy(c.vals[i+1:], c.vals[i:])
	c.vals[i] = v
	c.n++
	if c.Occupancy() > sparseThreshold {
		c.toDense()
	}
}

// Add accumulates v into the cell at off (Null cells start at 0). Used
// by aggregation and merging.
func (c *Chunk) Add(off int, v float64) {
	if math.IsNaN(v) {
		return
	}
	cur := c.Get(off)
	if math.IsNaN(cur) {
		c.Set(off, v)
		return
	}
	c.Set(off, cur+v)
}

// ForEach calls fn for every non-null cell in ascending offset order.
func (c *Chunk) ForEach(fn func(off int, v float64) bool) {
	if c.dense != nil {
		for off, v := range c.dense {
			if !math.IsNaN(v) {
				if !fn(off, v) {
					return
				}
			}
		}
		return
	}
	if c.runOffs != nil {
		for i, off := range c.runOffs {
			v := c.runVals[i]
			for j := 0; j < int(c.runLens[i]); j++ {
				if !fn(int(off)+j, v) {
					return
				}
			}
		}
		return
	}
	for i, off := range c.offs {
		if !fn(int(off), c.vals[i]) {
			return
		}
	}
}

func (c *Chunk) toDense() {
	d := make([]float64, c.cap)
	for i := range d {
		d[i] = math.NaN()
	}
	for i, off := range c.offs {
		d[off] = c.vals[i]
	}
	c.dense = d
	c.offs, c.vals = nil, nil
}

func (c *Chunk) toSparse() {
	offs := make([]int32, 0, c.n)
	vals := make([]float64, 0, c.n)
	for off, v := range c.dense {
		if !math.IsNaN(v) {
			offs = append(offs, int32(off))
			vals = append(vals, v)
		}
	}
	c.offs, c.vals = offs, vals
	c.dense = nil
}

// Compress converts a dense chunk below the density threshold to sparse.
// It reports whether a conversion happened.
func (c *Chunk) Compress() bool {
	if c.dense != nil && c.Occupancy() <= sparseThreshold {
		c.toSparse()
		return true
	}
	return false
}

// ForceSparse converts a dense or run-encoded chunk to the sparse
// representation regardless of occupancy. Above the density threshold
// this *grows* the footprint (12 bytes per cell vs. 8); it exists for
// representation ablations.
func (c *Chunk) ForceSparse() bool {
	if c.runOffs != nil {
		c.decodeRuns()
		if c.dense != nil {
			c.toSparse()
		}
		return true
	}
	if c.dense == nil {
		return false
	}
	c.toSparse()
	return true
}

// Clone returns an independent copy.
func (c *Chunk) Clone() *Chunk {
	out := &Chunk{cap: c.cap, n: c.n}
	switch {
	case c.dense != nil:
		out.dense = append([]float64(nil), c.dense...)
	case c.runOffs != nil:
		out.runOffs = append([]int32(nil), c.runOffs...)
		out.runLens = append([]int32(nil), c.runLens...)
		out.runVals = append([]float64(nil), c.runVals...)
	default:
		out.offs = append([]int32(nil), c.offs...)
		out.vals = append([]float64(nil), c.vals...)
	}
	return out
}

// MemBytes estimates the chunk's resident size in bytes, used by memory
// accounting in the engine, the buffer pool's eviction budget and the
// MMST computation. A run-encoded chunk is charged its encoded size (16
// bytes per run), not its logical cell capacity.
func (c *Chunk) MemBytes() int {
	if c.dense != nil {
		return 8 * c.cap
	}
	if c.runOffs != nil {
		return 16 * len(c.runOffs)
	}
	return 12 * len(c.offs)
}
