package chunk

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// fillSpilled loads 64 cells (16 chunks) into a spilled store with a
// ~2-chunk budget, so most chunks live in the spill file.
func fillSpilled(t *testing.T) *Store {
	t.Helper()
	s := spillStore(t, 70)
	for i := 0; i < 64; i++ {
		s.Set([]int{i}, float64(i+1))
	}
	return s
}

func TestPoolPinPreventsEviction(t *testing.T) {
	s := fillSpilled(t)

	// Fault chunk 0 in and pin it.
	if got := s.Get([]int{0}); got != 1 {
		t.Fatalf("Get(0) = %v, want 1", got)
	}
	s.Pin(0)
	if st := s.SpillStats(); st.Pinned != 1 {
		t.Fatalf("Pinned = %d, want 1", st.Pinned)
	}

	// Churn every other chunk; evictions happen, chunk 0 must survive.
	for round := 0; round < 3; round++ {
		for i := 4; i < 64; i++ {
			if got := s.Get([]int{i}); got != float64(i+1) {
				t.Fatalf("Get(%d) = %v during churn", i, got)
			}
		}
	}
	s.mu.Lock()
	_, resident := s.chunks[0]
	s.mu.Unlock()
	if !resident {
		t.Fatal("pinned chunk evicted")
	}

	// Pinning a chunk that is currently spilled protects it from the
	// moment it faults back in.
	s.Pin(15)
	if got := s.Get([]int{63}); got != 64 {
		t.Fatalf("Get(63) = %v, want 64", got)
	}
	for i := 4; i < 60; i++ {
		s.Get([]int{i})
	}
	s.mu.Lock()
	_, resident15 := s.chunks[15]
	s.mu.Unlock()
	if !resident15 {
		t.Fatal("chunk pinned while spilled was evicted after fault-in")
	}
	s.Unpin(15)

	// Once unpinned, chunk 0 is evictable like any cold chunk.
	s.Unpin(0)
	if st := s.SpillStats(); st.Pinned != 0 {
		t.Fatalf("Pinned = %d after Unpin, want 0", st.Pinned)
	}
	for i := 32; i < 64; i++ {
		s.Get([]int{i})
	}
	s.mu.Lock()
	_, resident = s.chunks[0]
	s.mu.Unlock()
	if resident {
		t.Fatal("unpinned cold chunk should have been evicted by churn")
	}

	// Unpinning an unpinned chunk is a no-op, not a panic or underflow.
	s.Unpin(0)
	s.Unpin(99)
	if st := s.SpillStats(); st.Pinned != 0 {
		t.Fatalf("Pinned = %d, want 0", st.Pinned)
	}
}

// Concurrent readers faulting spilled chunks back in: the pool must
// overlap distinct chunks' I/O and deduplicate same-chunk faults
// without corrupting values. Run under -race by verify.sh.
func TestPoolConcurrentFaultIns(t *testing.T) {
	s := fillSpilled(t)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for k := 0; k < 200; k++ {
				i := r.Intn(64)
				if got := s.Get([]int{i}); got != float64(i+1) {
					select {
					case errs <- fmt.Sprintf("Get(%d) = %v, want %v", i, got, float64(i+1)):
					default:
					}
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	if msg, bad := <-errs; bad {
		t.Fatal(msg)
	}
	st := s.SpillStats()
	if st.Faults == 0 {
		t.Fatal("concurrent churn over a spilled store should fault")
	}
	if st.Resident+st.Spilled != 16 {
		t.Fatalf("chunks lost: resident=%d spilled=%d", st.Resident, st.Spilled)
	}
}

// Concurrent ReadChunk traffic while the read hook is installed,
// removed and reinstalled: the atomic hook pointer and hookMu must keep
// this race-free (hook state itself needs no synchronization).
func TestPoolConcurrentReadersWithHook(t *testing.T) {
	s := fillSpilled(t)
	var hits atomic.Int64
	count := func(id int) { hits.Add(1) }
	s.SetReadHook(count)

	var readers sync.WaitGroup
	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			if n%2 == 0 {
				s.SetReadHook(nil)
			} else {
				s.SetReadHook(count)
			}
		}
	}()
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			r := rand.New(rand.NewSource(seed))
			for k := 0; k < 300; k++ {
				if c := s.ReadChunk(r.Intn(16)); c != nil {
					_ = c.Len()
				}
			}
		}(int64(w))
	}
	readers.Wait()
	close(stop)
	swapper.Wait()

	if got := s.Reads(); got != 4*300 {
		t.Fatalf("Reads = %d, want %d", got, 4*300)
	}
	// With the hook re-installed, reads observe it again.
	s.SetReadHook(count)
	before := hits.Load()
	s.ReadChunk(0)
	if hits.Load() != before+1 {
		t.Fatal("re-installed hook not observing reads")
	}
}
