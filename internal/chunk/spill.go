package chunk

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
)

// Spill file: an append-only scratch Tier. SpillTo backs a Store with
// one so the resident set fits a memory budget; rewritten chunks
// supersede older spans. It is a cache extension, not a durability
// format — use workload.SaveBinary or the segment store
// (internal/segment) for persistence.

// Spill record layout, shared by encodeChunk, decodeChunk and the
// tiers that size chunks without loading them (see RecordCells).
const (
	// spillHeaderLen is the record header: a uint32 cell count.
	spillHeaderLen = 4
	// spillCellLen is one serialized cell: uint32 offset + float64 bits.
	spillCellLen = 12
)

// span locates one serialized chunk in the spill file.
type span struct {
	off int64
	len int64
}

// spilledCells sizes a spilled chunk from its span without loading it.
func (sp span) spilledCells() int {
	return int((sp.len - spillHeaderLen) / spillCellLen)
}

// spillShared is the part of a spill file shared between a writable
// tier and its read-only clones: the file handle, the append cursor,
// and the reference count that decides when Close really closes.
// Existing spans are immutable (the file is append-only), so clones
// read concurrently with the parent's appends without coordination.
type spillShared struct {
	mu     sync.Mutex
	f      *os.File
	end    int64
	refs   int
	closed bool
}

// reserve claims len bytes at the end of the file for one record.
func (sh *spillShared) reserve(n int64) int64 {
	sh.mu.Lock()
	off := sh.end
	sh.end += n
	sh.mu.Unlock()
	return off
}

// release drops one reference, closing the file on the last one.
func (sh *spillShared) release() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.refs--
	if sh.refs > 0 || sh.closed {
		return nil
	}
	sh.closed = true
	return sh.f.Close()
}

// spillFile is the scratch-file Tier. Each view (the original and any
// clones) has a private span index over the shared append-only file;
// the index is guarded by mu, file I/O runs outside it (ReadAt and
// WriteAt are safe at distinct offsets).
type spillFile struct {
	mu       sync.Mutex
	shared   *spillShared
	index    map[int]span // chunk id -> file span
	chunkCap int
	readonly bool
}

// newSpillFile creates (truncating) the scratch file at path.
func newSpillFile(path string, chunkCap int) (*spillFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &spillFile{
		shared:   &spillShared{f: f, refs: 1},
		index:    make(map[int]span),
		chunkCap: chunkCap,
	}, nil
}

// ReadChunkAt implements Tier. The modeled cost is 0: a spill read is
// real I/O, measured by the pool as fault wall time.
func (t *spillFile) ReadChunkAt(id int) (*Chunk, float64, error) {
	t.mu.Lock()
	sp, ok := t.index[id]
	t.mu.Unlock()
	if !ok {
		return nil, 0, nil
	}
	buf := make([]byte, sp.len)
	if _, err := t.shared.f.ReadAt(buf, sp.off); err != nil {
		return nil, 0, err
	}
	c, err := decodeChunk(buf, t.chunkCap)
	if err != nil {
		return nil, 0, err
	}
	return c, 0, nil
}

// WriteChunk implements Tier: append the record, then publish the new
// span. A concurrent reader of the superseded span still sees a valid
// (stale) record — the file is append-only.
func (t *spillFile) WriteChunk(id int, c *Chunk) error {
	if t.readonly {
		return ErrTierReadOnly
	}
	buf := encodeChunk(c)
	off := t.shared.reserve(int64(len(buf)))
	if _, err := t.shared.f.WriteAt(buf, off); err != nil {
		return err
	}
	t.mu.Lock()
	t.index[id] = span{off: off, len: int64(len(buf))}
	t.mu.Unlock()
	return nil
}

// Remove implements Tier. The superseded span is leaked (append-only
// file); the scratch file is deleted wholesale on Close.
func (t *spillFile) Remove(id int) error {
	if t.readonly {
		return ErrTierReadOnly
	}
	t.mu.Lock()
	delete(t.index, id)
	t.mu.Unlock()
	return nil
}

// Contains implements Tier.
func (t *spillFile) Contains(id int) bool {
	t.mu.Lock()
	_, ok := t.index[id]
	t.mu.Unlock()
	return ok
}

// IDs implements Tier.
func (t *spillFile) IDs() []int {
	t.mu.Lock()
	ids := make([]int, 0, len(t.index))
	for id := range t.index {
		ids = append(ids, id)
	}
	t.mu.Unlock()
	return ids
}

// Cells implements Tier: the record layout implies the cell count.
func (t *spillFile) Cells(id int) int {
	t.mu.Lock()
	sp, ok := t.index[id]
	t.mu.Unlock()
	if !ok {
		return 0
	}
	return sp.spilledCells()
}

// Len implements Tier.
func (t *spillFile) Len() int {
	t.mu.Lock()
	n := len(t.index)
	t.mu.Unlock()
	return n
}

// Sync implements Tier. A scratch file needs no durability barrier.
func (t *spillFile) Sync() error { return nil }

// Close implements Tier, dropping this view's reference on the shared
// file; the file really closes when the last view goes.
func (t *spillFile) Close() error { return t.shared.release() }

// ReadOnly implements Tier.
func (t *spillFile) ReadOnly() bool { return t.readonly }

// CloneTier implements CloneableTier: a read-only view sharing the
// append-only file, with a private snapshot of the span index. Spans
// are immutable once written, so the view stays valid however the
// parent appends afterwards.
func (t *spillFile) CloneTier() (Tier, bool) {
	t.shared.mu.Lock()
	if t.shared.closed {
		t.shared.mu.Unlock()
		return nil, false
	}
	t.shared.refs++
	t.shared.mu.Unlock()
	t.mu.Lock()
	idx := make(map[int]span, len(t.index))
	for id, sp := range t.index {
		idx[id] = sp
	}
	t.mu.Unlock()
	return &spillFile{
		shared:   t.shared,
		index:    idx,
		chunkCap: t.chunkCap,
		readonly: true,
	}, true
}

// SpillTo attaches a backing scratch file and a resident-memory budget
// to the store. Chunks beyond the budget are serialized to the file
// and loaded back on access. The file is truncated. A store can have
// at most one backing tier; calling SpillTo (or AttachTier) twice is
// an error.
func (s *Store) SpillTo(path string, budgetBytes int) error {
	if s.pool != nil {
		return fmt.Errorf("chunk: store already has a backing tier")
	}
	if budgetBytes <= 0 {
		return fmt.Errorf("chunk: spill budget must be positive, got %d", budgetBytes)
	}
	t, err := newSpillFile(path, s.geom.ChunkCap())
	if err != nil {
		return err
	}
	return s.AttachTier(t, budgetBytes)
}

// encodeChunk serializes a chunk in the sparse pair format.
func encodeChunk(c *Chunk) []byte {
	buf := make([]byte, spillHeaderLen, spillHeaderLen+spillCellLen*c.Len())
	binary.LittleEndian.PutUint32(buf, uint32(c.Len()))
	var cell [spillCellLen]byte
	c.ForEach(func(off int, v float64) bool {
		binary.LittleEndian.PutUint32(cell[0:4], uint32(off))
		binary.LittleEndian.PutUint64(cell[4:spillCellLen], math.Float64bits(v))
		buf = append(buf, cell[:]...)
		return true
	})
	return buf
}

// decodeChunk deserializes a chunk written by encodeChunk.
func decodeChunk(buf []byte, capacity int) (*Chunk, error) {
	if len(buf) < spillHeaderLen {
		return nil, io.ErrUnexpectedEOF
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if len(buf) != spillHeaderLen+spillCellLen*n {
		return nil, fmt.Errorf("chunk: corrupt spill record: %d cells in %d bytes", n, len(buf))
	}
	c := NewSparse(capacity)
	for i := 0; i < n; i++ {
		rec := buf[spillHeaderLen+spillCellLen*i:]
		off := int(binary.LittleEndian.Uint32(rec))
		v := math.Float64frombits(binary.LittleEndian.Uint64(rec[4:]))
		if off >= capacity {
			return nil, fmt.Errorf("chunk: corrupt spill record: offset %d beyond capacity %d", off, capacity)
		}
		c.Set(off, v)
	}
	return c, nil
}
