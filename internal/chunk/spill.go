package chunk

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"time"
)

// Spill tier: the paper's testbed holds a 20.2 GB cube behind a 256 MB
// cube cache. SpillTo gives a Store the same discipline — a resident-
// memory budget with least-recently-used chunks serialized to a backing
// file and faulted back in on access. The spill file is append-only
// (rewritten spans supersede older ones); it is a cache extension, not
// a durability format — use workload.SaveBinary for persistence.
//
// The tier is a small buffer pool, not just a cache: recency tracking
// is an O(1) intrusive list (not a slice scan), chunks can be pinned
// against eviction while the executor still needs their merge-
// dependency partners (the paper's §5.2 pebbling objective), and
// fault-in I/O runs outside the pool lock with per-chunk in-flight
// deduplication, so concurrent queries faulting different chunks
// overlap their reads instead of serializing behind one mutex.

// Spill record layout, shared by encodeChunk, decodeChunk and
// Store.Len (which sizes spilled chunks without loading them).
const (
	// spillHeaderLen is the record header: a uint32 cell count.
	spillHeaderLen = 4
	// spillCellLen is one serialized cell: uint32 offset + float64 bits.
	spillCellLen = 12
)

// span locates one serialized chunk in the spill file.
type span struct {
	off int64
	len int64
}

// lruNode is one resident chunk's slot in the intrusive recency list.
type lruNode struct {
	id         int
	prev, next *lruNode
}

// spillTier manages the backing file and the buffer-pool bookkeeping.
// All fields are guarded by the owning Store's mu except f (ReadAt and
// WriteAt are safe at distinct offsets).
type spillTier struct {
	f      *os.File
	end    int64
	index  map[int]span // spilled chunk id -> file span
	budget int          // resident byte budget
	// nodes maps resident chunk ids to their recency-list slot; head is
	// the least recently used, tail the most. touch is O(1).
	nodes      map[int]*lruNode
	head, tail *lruNode
	// pins counts Pin calls per chunk id; a pinned chunk is never
	// evicted. Pins are independent of residency so a Pin racing an
	// eviction still protects the next fault-in.
	pins map[int]int
	// inflight marks chunk ids whose fault-in I/O is running outside
	// the lock; waiters block on the channel instead of re-reading.
	inflight map[int]chan struct{}
	// residentBytes approximates resident chunk memory.
	residentBytes int
	faults        int
	evictions     int
}

// lruPushBack appends a node as most recently used.
func (t *spillTier) lruPushBack(n *lruNode) {
	n.prev, n.next = t.tail, nil
	if t.tail != nil {
		t.tail.next = n
	} else {
		t.head = n
	}
	t.tail = n
}

// lruRemove unlinks a node.
func (t *spillTier) lruRemove(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		t.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		t.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// touch marks a resident chunk as recently used, inserting it when it
// has no slot yet. O(1), unlike the slice scan it replaced.
func (t *spillTier) touch(id int) {
	if n, ok := t.nodes[id]; ok {
		if t.tail != n {
			t.lruRemove(n)
			t.lruPushBack(n)
		}
		return
	}
	n := &lruNode{id: id}
	t.nodes[id] = n
	t.lruPushBack(n)
}

// drop removes a chunk's recency slot, if any.
func (t *spillTier) drop(id int) {
	if n, ok := t.nodes[id]; ok {
		t.lruRemove(n)
		delete(t.nodes, id)
	}
}

// SpillTo attaches a backing file and a resident-memory budget to the
// store. Chunks beyond the budget are serialized to the file and loaded
// back on access. The file is truncated. A store can spill to at most
// one file; calling SpillTo twice is an error.
func (s *Store) SpillTo(path string, budgetBytes int) error {
	if s.tier != nil {
		return fmt.Errorf("chunk: store already spills to a file")
	}
	if budgetBytes <= 0 {
		return fmt.Errorf("chunk: spill budget must be positive, got %d", budgetBytes)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	t := &spillTier{
		f:        f,
		index:    make(map[int]span),
		budget:   budgetBytes,
		nodes:    make(map[int]*lruNode),
		pins:     make(map[int]int),
		inflight: make(map[int]chan struct{}),
	}
	for id, c := range s.chunks {
		t.touch(id)
		t.residentBytes += c.MemBytes()
	}
	s.tier = t
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return nil
}

// SpillStats describes the buffer pool's state. The zero value is
// returned augmented with the resident count when no tier is attached.
type SpillStats struct {
	// Resident and Spilled are the chunk counts on each side of the
	// budget line.
	Resident int
	Spilled  int
	// Faults counts loads from the spill file.
	Faults int
	// Evictions counts chunks written out to the spill file.
	Evictions int
	// Pinned is the number of distinct chunk ids currently pinned.
	Pinned int
}

// SpillStats reports the spill tier's state. Resident is the full chunk
// count and the rest zero when no tier is attached.
func (s *Store) SpillStats() SpillStats {
	if s.tier == nil {
		return SpillStats{Resident: len(s.chunks)}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return SpillStats{
		Resident:  len(s.chunks),
		Spilled:   len(s.tier.index),
		Faults:    s.tier.faults,
		Evictions: s.tier.evictions,
		Pinned:    len(s.tier.pins),
	}
}

// Pooled reports whether a spill tier (buffer pool) is attached. The
// executor skips its pin bookkeeping entirely on unpooled stores.
func (s *Store) Pooled() bool { return s.tier != nil }

// Pin marks a chunk unevictable until a matching Unpin. The executor
// pins chunks whose merge-dependency partners are still unscanned, so
// the pebbling-optimal resident set survives concurrent queries'
// evictions. Pinning is by id and independent of residency: pinning a
// spilled chunk protects it from the moment it faults back in. No-op
// without a spill tier.
func (s *Store) Pin(id int) {
	if s.tier == nil {
		return
	}
	s.mu.Lock()
	s.tier.pins[id]++
	s.mu.Unlock()
}

// Unpin releases one Pin. When the last pin drops, deferred evictions
// proceed. Unpinning a chunk that is not pinned is a no-op.
func (s *Store) Unpin(id int) {
	if s.tier == nil {
		return
	}
	s.mu.Lock()
	if t := s.tier; t.pins[id] > 0 {
		t.pins[id]--
		if t.pins[id] == 0 {
			delete(t.pins, id)
			s.evictLocked()
		}
	}
	s.mu.Unlock()
}

// CloseSpill detaches and closes the spill file after faulting every
// spilled chunk back into memory. The store remains fully usable.
func (s *Store) CloseSpill() error {
	if s.tier == nil {
		return nil
	}
	// Lift the budget so faulting in does not re-evict mid-iteration.
	s.mu.Lock()
	s.tier.budget = int(^uint(0) >> 1)
	ids := make([]int, 0, len(s.tier.index))
	for id := range s.tier.index {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	for _, id := range ids {
		if _, _, err := s.poolGet(id); err != nil {
			return err
		}
	}
	err := s.tier.f.Close()
	s.tier = nil
	return err
}

// chunkAt returns the chunk for id, faulting it in from the spill file
// when necessary. It returns nil when the chunk exists nowhere. With a
// spill tier attached, lookups go through the pool (short map/recency
// critical sections under mu, fault I/O outside it); without one, the
// resident map is read directly (safe for concurrent readers).
func (s *Store) chunkAt(id int) *Chunk {
	if s.tier == nil {
		return s.chunks[id]
	}
	c, _, err := s.poolGet(id)
	if err != nil {
		panic(fmt.Sprintf("chunk: spill fault for chunk %d: %v", id, err))
	}
	return c
}

// faultInfo describes what one poolGet did: whether it faulted the
// chunk in from the spill file, how long the fault I/O took, how many
// evictions it triggered, and whether the chunk was pinned. It feeds
// ReadInfo so the engine can attribute pool behaviour per query.
type faultInfo struct {
	faulted   bool
	faultMs   float64
	evictions int
	pinned    bool
}

// poolGet is the buffer pool's lookup: resident hit, wait on an
// in-flight fault, or fault in. The disk read and decode run outside
// mu so concurrent fault-ins of different chunks overlap; per-chunk
// in-flight channels prevent duplicate reads of the same chunk.
func (s *Store) poolGet(id int) (*Chunk, faultInfo, error) {
	t := s.tier
	var fi faultInfo
	for {
		s.mu.Lock()
		if c, ok := s.chunks[id]; ok {
			t.touch(id)
			fi.pinned = t.pins[id] > 0
			s.mu.Unlock()
			return c, fi, nil
		}
		if ch, busy := t.inflight[id]; busy {
			s.mu.Unlock()
			<-ch
			continue
		}
		sp, ok := t.index[id]
		if !ok {
			s.mu.Unlock()
			return nil, fi, nil
		}
		ch := make(chan struct{})
		t.inflight[id] = ch
		s.mu.Unlock()

		faultStart := time.Now()
		buf := make([]byte, sp.len)
		var c *Chunk
		_, err := t.f.ReadAt(buf, sp.off)
		if err == nil {
			c, err = decodeChunk(buf, s.geom.ChunkCap())
		}
		fi.faultMs = float64(time.Since(faultStart)) / float64(time.Millisecond)

		s.mu.Lock()
		delete(t.inflight, id)
		if err != nil {
			s.mu.Unlock()
			close(ch)
			return nil, fi, err
		}
		delete(t.index, id)
		s.chunks[id] = c
		t.touch(id)
		t.residentBytes += c.MemBytes()
		t.faults++
		fi.faulted = true
		fi.evictions = s.evictLocked()
		fi.pinned = t.pins[id] > 0
		s.mu.Unlock()
		close(ch)
		return c, fi, nil
	}
}

// evictLocked spills least-recently-used unpinned chunks until the
// resident set fits the budget (always keeping at least one chunk
// resident), returning the number of chunks evicted. Pinned chunks are
// skipped, not unlinked: their recency position survives the pin.
// Caller holds mu.
func (s *Store) evictLocked() int {
	t := s.tier
	if t == nil {
		return 0
	}
	evicted := 0
	n := t.head
	for t.residentBytes > t.budget && len(t.nodes) > 1 && n != nil {
		next := n.next
		if t.pins[n.id] > 0 {
			n = next
			continue
		}
		victim := n.id
		c, ok := s.chunks[victim]
		if !ok {
			// Defensive: a node without a resident chunk is stale.
			t.drop(victim)
			n = next
			continue
		}
		buf := encodeChunk(c)
		off := t.end
		if _, err := t.f.WriteAt(buf, off); err != nil {
			panic(fmt.Sprintf("chunk: spill write for chunk %d: %v", victim, err))
		}
		t.end += int64(len(buf))
		t.index[victim] = span{off: off, len: int64(len(buf))}
		t.residentBytes -= c.MemBytes()
		t.evictions++
		evicted++
		delete(s.chunks, victim)
		t.drop(victim)
		n = next
	}
	return evicted
}

// noteMutation updates spill accounting after a resident chunk changed
// size, or after a chunk was created or deleted.
func (s *Store) noteMutation(id int, delta int) {
	if s.tier == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tier
	t.residentBytes += delta
	if _, resident := s.chunks[id]; resident {
		t.touch(id)
		// A resident write supersedes any stale spilled copy.
		delete(t.index, id)
	} else {
		// Deleted: drop the recency slot and any stale spill span.
		t.drop(id)
		delete(t.index, id)
	}
	s.evictLocked()
}

// encodeChunk serializes a chunk in the sparse pair format.
func encodeChunk(c *Chunk) []byte {
	buf := make([]byte, spillHeaderLen, spillHeaderLen+spillCellLen*c.Len())
	binary.LittleEndian.PutUint32(buf, uint32(c.Len()))
	var cell [spillCellLen]byte
	c.ForEach(func(off int, v float64) bool {
		binary.LittleEndian.PutUint32(cell[0:4], uint32(off))
		binary.LittleEndian.PutUint64(cell[4:spillCellLen], math.Float64bits(v))
		buf = append(buf, cell[:]...)
		return true
	})
	return buf
}

// decodeChunk deserializes a chunk written by encodeChunk.
func decodeChunk(buf []byte, capacity int) (*Chunk, error) {
	if len(buf) < spillHeaderLen {
		return nil, io.ErrUnexpectedEOF
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if len(buf) != spillHeaderLen+spillCellLen*n {
		return nil, fmt.Errorf("chunk: corrupt spill record: %d cells in %d bytes", n, len(buf))
	}
	c := NewSparse(capacity)
	for i := 0; i < n; i++ {
		rec := buf[spillHeaderLen+spillCellLen*i:]
		off := int(binary.LittleEndian.Uint32(rec))
		v := math.Float64frombits(binary.LittleEndian.Uint64(rec[4:]))
		if off >= capacity {
			return nil, fmt.Errorf("chunk: corrupt spill record: offset %d beyond capacity %d", off, capacity)
		}
		c.Set(off, v)
	}
	return c, nil
}

// spilledCells sizes a spilled chunk from its span without loading it.
func (sp span) spilledCells() int {
	return int((sp.len - spillHeaderLen) / spillCellLen)
}
