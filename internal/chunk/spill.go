package chunk

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
)

// Spill file: an append-only scratch Tier. SpillTo backs a Store with
// one so the resident set fits a memory budget; rewritten chunks
// supersede older spans. It is a cache extension, not a durability
// format — use workload.SaveBinary or the segment store
// (internal/segment) for persistence.

// Spill record layout, shared by encodeChunk, decodeChunk and the
// tiers that size chunks without loading them (see RecordCells). Two
// record kinds share the format, discriminated by the top bit of the
// leading uint32:
//
//	pair record  uint32 cell count, then uint32 offset + float64 bits
//	             per cell (dense and sparse chunks; the v1 format)
//	run record   uint32 (runRecordFlag | run count), uint32 cell count,
//	             then uint32 start delta + uint32 length + float64 bits
//	             per run (run-encoded chunks; starts are delta-encoded
//	             against the previous run's end)
//
// Cell counts never approach 2^31 (chunk capacities are far smaller),
// so the flag bit cannot collide with a v1 pair record's count.
const (
	// spillHeaderLen is the pair-record header: a uint32 cell count.
	spillHeaderLen = 4
	// spillCellLen is one serialized cell: uint32 offset + float64 bits.
	spillCellLen = 12
	// runRecordFlag marks a run record in the leading uint32.
	runRecordFlag = uint32(1) << 31
	// runHeaderLen is the run-record header: flagged run count + cells.
	runHeaderLen = 8
	// runEntryLen is one serialized run: start delta, length, value bits.
	runEntryLen = 16
)

// span locates one serialized chunk in the spill file. cells is carried
// in the index because a run record's cell count cannot be derived from
// its byte length alone.
type span struct {
	off   int64
	len   int64
	cells int
}

// spillShared is the part of a spill file shared between a writable
// tier and its read-only clones: the file handle, the append cursor,
// and the reference count that decides when Close really closes.
// Existing spans are immutable (the file is append-only), so clones
// read concurrently with the parent's appends without coordination.
type spillShared struct {
	mu     sync.Mutex
	f      *os.File
	end    int64
	refs   int
	closed bool
}

// reserve claims len bytes at the end of the file for one record.
func (sh *spillShared) reserve(n int64) int64 {
	sh.mu.Lock()
	off := sh.end
	sh.end += n
	sh.mu.Unlock()
	return off
}

// release drops one reference, closing the file on the last one.
func (sh *spillShared) release() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.refs--
	if sh.refs > 0 || sh.closed {
		return nil
	}
	sh.closed = true
	return sh.f.Close()
}

// spillFile is the scratch-file Tier. Each view (the original and any
// clones) has a private span index over the shared append-only file;
// the index is guarded by mu, file I/O runs outside it (ReadAt and
// WriteAt are safe at distinct offsets).
type spillFile struct {
	mu       sync.Mutex
	shared   *spillShared
	index    map[int]span // chunk id -> file span
	chunkCap int
	readonly bool
}

// newSpillFile creates (truncating) the scratch file at path.
func newSpillFile(path string, chunkCap int) (*spillFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &spillFile{
		shared:   &spillShared{f: f, refs: 1},
		index:    make(map[int]span),
		chunkCap: chunkCap,
	}, nil
}

// ReadChunkAt implements Tier. The modeled cost is 0: a spill read is
// real I/O, measured by the pool as fault wall time.
func (t *spillFile) ReadChunkAt(id int) (*Chunk, float64, error) {
	t.mu.Lock()
	sp, ok := t.index[id]
	t.mu.Unlock()
	if !ok {
		return nil, 0, nil
	}
	buf := make([]byte, sp.len)
	if _, err := t.shared.f.ReadAt(buf, sp.off); err != nil {
		return nil, 0, err
	}
	c, err := decodeChunk(buf, t.chunkCap)
	if err != nil {
		return nil, 0, err
	}
	return c, 0, nil
}

// WriteChunk implements Tier: append the record, then publish the new
// span. A concurrent reader of the superseded span still sees a valid
// (stale) record — the file is append-only.
func (t *spillFile) WriteChunk(id int, c *Chunk) error {
	if t.readonly {
		return ErrTierReadOnly
	}
	buf := encodeChunk(c)
	off := t.shared.reserve(int64(len(buf)))
	if _, err := t.shared.f.WriteAt(buf, off); err != nil {
		return err
	}
	t.mu.Lock()
	t.index[id] = span{off: off, len: int64(len(buf)), cells: c.Len()}
	t.mu.Unlock()
	return nil
}

// Remove implements Tier. The superseded span is leaked (append-only
// file); the scratch file is deleted wholesale on Close.
func (t *spillFile) Remove(id int) error {
	if t.readonly {
		return ErrTierReadOnly
	}
	t.mu.Lock()
	delete(t.index, id)
	t.mu.Unlock()
	return nil
}

// Contains implements Tier.
func (t *spillFile) Contains(id int) bool {
	t.mu.Lock()
	_, ok := t.index[id]
	t.mu.Unlock()
	return ok
}

// IDs implements Tier.
func (t *spillFile) IDs() []int {
	t.mu.Lock()
	ids := make([]int, 0, len(t.index))
	for id := range t.index {
		ids = append(ids, id)
	}
	t.mu.Unlock()
	return ids
}

// Cells implements Tier: sized from the span index, no I/O.
func (t *spillFile) Cells(id int) int {
	t.mu.Lock()
	sp, ok := t.index[id]
	t.mu.Unlock()
	if !ok {
		return 0
	}
	return sp.cells
}

// Len implements Tier.
func (t *spillFile) Len() int {
	t.mu.Lock()
	n := len(t.index)
	t.mu.Unlock()
	return n
}

// Sync implements Tier. A scratch file needs no durability barrier.
func (t *spillFile) Sync() error { return nil }

// Close implements Tier, dropping this view's reference on the shared
// file; the file really closes when the last view goes.
func (t *spillFile) Close() error { return t.shared.release() }

// ReadOnly implements Tier.
func (t *spillFile) ReadOnly() bool { return t.readonly }

// CloneTier implements CloneableTier: a read-only view sharing the
// append-only file, with a private snapshot of the span index. Spans
// are immutable once written, so the view stays valid however the
// parent appends afterwards.
func (t *spillFile) CloneTier() (Tier, bool) {
	t.shared.mu.Lock()
	if t.shared.closed {
		t.shared.mu.Unlock()
		return nil, false
	}
	t.shared.refs++
	t.shared.mu.Unlock()
	t.mu.Lock()
	idx := make(map[int]span, len(t.index))
	for id, sp := range t.index {
		idx[id] = sp
	}
	t.mu.Unlock()
	return &spillFile{
		shared:   t.shared,
		index:    idx,
		chunkCap: t.chunkCap,
		readonly: true,
	}, true
}

// SpillTo attaches a backing scratch file and a resident-memory budget
// to the store. Chunks beyond the budget are serialized to the file
// and loaded back on access. The file is truncated. A store can have
// at most one backing tier; calling SpillTo (or AttachTier) twice is
// an error.
func (s *Store) SpillTo(path string, budgetBytes int) error {
	if s.pool != nil {
		return fmt.Errorf("chunk: store already has a backing tier")
	}
	if budgetBytes <= 0 {
		return fmt.Errorf("chunk: spill budget must be positive, got %d", budgetBytes)
	}
	t, err := newSpillFile(path, s.geom.ChunkCap())
	if err != nil {
		return err
	}
	return s.AttachTier(t, budgetBytes)
}

// encodeChunk serializes a chunk: run-encoded chunks keep their runs
// (a run record), everything else flattens to the sparse pair format.
func encodeChunk(c *Chunk) []byte {
	if c.Rep() == RunEncoded {
		return encodeRunRecord(c)
	}
	buf := make([]byte, spillHeaderLen, spillHeaderLen+spillCellLen*c.Len())
	binary.LittleEndian.PutUint32(buf, uint32(c.Len()))
	var cell [spillCellLen]byte
	c.ForEach(func(off int, v float64) bool {
		binary.LittleEndian.PutUint32(cell[0:4], uint32(off))
		binary.LittleEndian.PutUint64(cell[4:spillCellLen], math.Float64bits(v))
		buf = append(buf, cell[:]...)
		return true
	})
	return buf
}

// decodeChunk deserializes a record written by encodeChunk, restoring
// run records to the run-encoded representation (so a tier fault never
// silently decompresses a chunk).
func decodeChunk(buf []byte, capacity int) (*Chunk, error) {
	if len(buf) < spillHeaderLen {
		return nil, io.ErrUnexpectedEOF
	}
	if binary.LittleEndian.Uint32(buf)&runRecordFlag != 0 {
		return decodeRunRecord(buf, capacity)
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if len(buf) != spillHeaderLen+spillCellLen*n {
		return nil, fmt.Errorf("chunk: corrupt spill record: %d cells in %d bytes", n, len(buf))
	}
	c := NewSparse(capacity)
	for i := 0; i < n; i++ {
		rec := buf[spillHeaderLen+spillCellLen*i:]
		off := int(binary.LittleEndian.Uint32(rec))
		v := math.Float64frombits(binary.LittleEndian.Uint64(rec[4:]))
		if off >= capacity {
			return nil, fmt.Errorf("chunk: corrupt spill record: offset %d beyond capacity %d", off, capacity)
		}
		c.Set(off, v)
	}
	return c, nil
}

// encodeRunRecord serializes a run-encoded chunk: flagged run count,
// cell count, then one (start delta, length, value bits) entry per run.
// Starts are delta-encoded against the previous run's end — deltas are
// small (often 0 for back-to-back runs) and re-validate the no-overlap
// invariant on decode for free, since a negative gap cannot be encoded.
func encodeRunRecord(c *Chunk) []byte {
	runs := len(c.runOffs)
	buf := make([]byte, runHeaderLen, runHeaderLen+runEntryLen*runs)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(runs)|runRecordFlag)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(c.n))
	var ent [runEntryLen]byte
	prevEnd := 0
	for i, off := range c.runOffs {
		binary.LittleEndian.PutUint32(ent[0:4], uint32(int(off)-prevEnd))
		binary.LittleEndian.PutUint32(ent[4:8], uint32(c.runLens[i]))
		binary.LittleEndian.PutUint64(ent[8:16], math.Float64bits(c.runVals[i]))
		buf = append(buf, ent[:]...)
		prevEnd = int(off) + int(c.runLens[i])
	}
	return buf
}

// decodeRunRecord deserializes a run record into a run-encoded chunk,
// validating run bounds, ordering and the redundant cell count.
func decodeRunRecord(buf []byte, capacity int) (*Chunk, error) {
	if len(buf) < runHeaderLen {
		return nil, io.ErrUnexpectedEOF
	}
	runs := int(binary.LittleEndian.Uint32(buf[0:4]) &^ runRecordFlag)
	cells := int(binary.LittleEndian.Uint32(buf[4:8]))
	if len(buf) != runHeaderLen+runEntryLen*runs {
		return nil, fmt.Errorf("chunk: corrupt run record: %d runs in %d bytes", runs, len(buf))
	}
	offs := make([]int32, runs)
	lens := make([]int32, runs)
	vals := make([]float64, runs)
	prevEnd, total := 0, 0
	for i := 0; i < runs; i++ {
		ent := buf[runHeaderLen+runEntryLen*i:]
		start := prevEnd + int(binary.LittleEndian.Uint32(ent[0:4]))
		n := int(binary.LittleEndian.Uint32(ent[4:8]))
		if n <= 0 || start+n > capacity {
			return nil, fmt.Errorf("chunk: corrupt run record: run %d spans [%d,%d) beyond capacity %d", i, start, start+n, capacity)
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(ent[8:16]))
		if math.IsNaN(v) {
			return nil, fmt.Errorf("chunk: corrupt run record: run %d holds Null", i)
		}
		offs[i], lens[i], vals[i] = int32(start), int32(n), v
		prevEnd = start + n
		total += n
	}
	if total != cells {
		return nil, fmt.Errorf("chunk: corrupt run record: %d cells in runs, header says %d", total, cells)
	}
	if runs == 0 {
		return NewSparse(capacity), nil
	}
	return &Chunk{cap: capacity, n: cells, runOffs: offs, runLens: lens, runVals: vals}, nil
}
