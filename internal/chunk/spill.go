package chunk

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Spill tier: the paper's testbed holds a 20.2 GB cube behind a 256 MB
// cube cache. SpillTo gives a Store the same discipline — a resident-
// memory budget with least-recently-used chunks serialized to a backing
// file and faulted back in on access. The spill file is append-only
// (rewritten spans supersede older ones); it is a cache extension, not
// a durability format — use workload.SaveBinary for persistence.

// span locates one serialized chunk in the spill file.
type span struct {
	off int64
	len int64
}

// spillTier manages the backing file and the LRU bookkeeping.
type spillTier struct {
	f      *os.File
	end    int64
	index  map[int]span // spilled chunk id -> file span
	budget int          // resident byte budget
	// lru tracks resident chunk ids, most recent last.
	lru []int
	// residentBytes approximates resident chunk memory.
	residentBytes int
	faults        int
	evictions     int
}

// SpillTo attaches a backing file and a resident-memory budget to the
// store. Chunks beyond the budget are serialized to the file and loaded
// back on access. The file is truncated. A store can spill to at most
// one file; calling SpillTo twice is an error.
func (s *Store) SpillTo(path string, budgetBytes int) error {
	if s.tier != nil {
		return fmt.Errorf("chunk: store already spills to a file")
	}
	if budgetBytes <= 0 {
		return fmt.Errorf("chunk: spill budget must be positive, got %d", budgetBytes)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	t := &spillTier{f: f, index: make(map[int]span), budget: budgetBytes}
	for id, c := range s.chunks {
		t.lru = append(t.lru, id)
		t.residentBytes += c.MemBytes()
	}
	s.tier = t
	s.maybeEvict()
	return nil
}

// SpillStats reports the spill tier's state: resident and spilled chunk
// counts, and how many faults (loads from file) have occurred. All
// zeros when no tier is attached.
func (s *Store) SpillStats() (resident, spilled, faults int) {
	if s.tier == nil {
		return len(s.chunks), 0, 0
	}
	return len(s.chunks), len(s.tier.index), s.tier.faults
}

// CloseSpill detaches and closes the spill file after faulting every
// spilled chunk back into memory. The store remains fully usable.
func (s *Store) CloseSpill() error {
	if s.tier == nil {
		return nil
	}
	// Lift the budget so faulting in does not re-evict mid-iteration.
	s.tier.budget = int(^uint(0) >> 1)
	ids := make([]int, 0, len(s.tier.index))
	for id := range s.tier.index {
		ids = append(ids, id)
	}
	for _, id := range ids {
		if _, err := s.faultIn(id); err != nil {
			return err
		}
	}
	err := s.tier.f.Close()
	s.tier = nil
	return err
}

// touch marks a resident chunk as recently used.
func (t *spillTier) touch(id int) {
	for i, x := range t.lru {
		if x == id {
			copy(t.lru[i:], t.lru[i+1:])
			t.lru[len(t.lru)-1] = id
			return
		}
	}
	t.lru = append(t.lru, id)
}

// chunkAt returns the chunk for id, faulting it in from the spill file
// when necessary. It returns nil when the chunk exists nowhere. With a
// spill tier attached, lookups mutate LRU/residency state, so they are
// serialized under mu; without one, the resident map is read directly
// (safe for concurrent readers).
func (s *Store) chunkAt(id int) *Chunk {
	if s.tier == nil {
		return s.chunks[id]
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.chunks[id]; ok {
		s.tier.touch(id)
		return c
	}
	c, err := s.faultIn(id)
	if err != nil {
		panic(fmt.Sprintf("chunk: spill fault for chunk %d: %v", id, err))
	}
	return c
}

// faultIn loads a spilled chunk into residence. It returns nil, nil when
// the id is not in the spill index.
func (s *Store) faultIn(id int) (*Chunk, error) {
	t := s.tier
	sp, ok := t.index[id]
	if !ok {
		return nil, nil
	}
	buf := make([]byte, sp.len)
	if _, err := t.f.ReadAt(buf, sp.off); err != nil {
		return nil, err
	}
	c, err := decodeChunk(buf, s.geom.ChunkCap())
	if err != nil {
		return nil, err
	}
	delete(t.index, id)
	s.chunks[id] = c
	t.residentBytes += c.MemBytes()
	t.faults++
	t.touch(id)
	s.maybeEvict()
	return c, nil
}

// maybeEvict spills least-recently-used chunks until the resident set
// fits the budget (always keeping at least one chunk resident).
func (s *Store) maybeEvict() {
	t := s.tier
	if t == nil {
		return
	}
	for t.residentBytes > t.budget && len(t.lru) > 1 {
		victim := t.lru[0]
		t.lru = t.lru[1:]
		c, ok := s.chunks[victim]
		if !ok {
			continue
		}
		buf := encodeChunk(c)
		off := t.end
		if _, err := t.f.WriteAt(buf, off); err != nil {
			panic(fmt.Sprintf("chunk: spill write for chunk %d: %v", victim, err))
		}
		t.end += int64(len(buf))
		t.index[victim] = span{off: off, len: int64(len(buf))}
		t.residentBytes -= c.MemBytes()
		t.evictions++
		delete(s.chunks, victim)
	}
}

// noteMutation updates spill accounting after a resident chunk changed
// size, or after a chunk was created or deleted.
func (s *Store) noteMutation(id int, delta int) {
	if s.tier == nil {
		return
	}
	s.tier.residentBytes += delta
	if _, resident := s.chunks[id]; resident {
		s.tier.touch(id)
		// A resident write supersedes any stale spilled copy.
		delete(s.tier.index, id)
	} else {
		// Deleted: drop from LRU and any stale spill span.
		for i, x := range s.tier.lru {
			if x == id {
				s.tier.lru = append(s.tier.lru[:i], s.tier.lru[i+1:]...)
				break
			}
		}
		delete(s.tier.index, id)
	}
	s.maybeEvict()
}

// encodeChunk serializes a chunk in the sparse pair format.
func encodeChunk(c *Chunk) []byte {
	buf := make([]byte, 4, 4+12*c.Len())
	binary.LittleEndian.PutUint32(buf, uint32(c.Len()))
	var cell [12]byte
	c.ForEach(func(off int, v float64) bool {
		binary.LittleEndian.PutUint32(cell[0:4], uint32(off))
		binary.LittleEndian.PutUint64(cell[4:12], math.Float64bits(v))
		buf = append(buf, cell[:]...)
		return true
	})
	return buf
}

// decodeChunk deserializes a chunk written by encodeChunk.
func decodeChunk(buf []byte, capacity int) (*Chunk, error) {
	if len(buf) < 4 {
		return nil, io.ErrUnexpectedEOF
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if len(buf) != 4+12*n {
		return nil, fmt.Errorf("chunk: corrupt spill record: %d cells in %d bytes", n, len(buf))
	}
	c := NewSparse(capacity)
	for i := 0; i < n; i++ {
		off := int(binary.LittleEndian.Uint32(buf[4+12*i:]))
		v := math.Float64frombits(binary.LittleEndian.Uint64(buf[8+12*i:]))
		if off >= capacity {
			return nil, fmt.Errorf("chunk: corrupt spill record: offset %d beyond capacity %d", off, capacity)
		}
		c.Set(off, v)
	}
	return c, nil
}
