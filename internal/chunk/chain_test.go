package chunk

import (
	"math"
	"testing"

	"whatifolap/internal/cube"
)

// chainFixture builds a 2-layer chain over a small chunked base:
//
//	base:    (0,0)=1 (0,1)=2 (1,0)=3
//	layer 1: (0,1)=20 (2,2)=99        — override + layer-only chunk cell
//	layer 2: (1,0) deleted, (0,0)=10  — tombstone + newer override
func chainFixture(t *testing.T) *Chain {
	t.Helper()
	g := MustGeometry([]int{4, 4}, []int{2, 2})
	st := NewStore(g)
	st.Set([]int{0, 0}, 1)
	st.Set([]int{0, 1}, 2)
	st.Set([]int{1, 0}, 3)
	l1 := NewLayer(g)
	l1.Set([]int{0, 1}, 20)
	l1.Set([]int{2, 2}, 99)
	l2 := NewLayer(g)
	l2.Delete([]int{1, 0})
	l2.Set([]int{0, 0}, 10)
	return NewChain(st, []*Layer{l1, l2})
}

func TestScenarioChainResolution(t *testing.T) {
	c := chainFixture(t)
	cases := []struct {
		addr []int
		want float64 // NaN = absent
	}{
		{[]int{0, 0}, 10},         // newest layer wins over base
		{[]int{0, 1}, 20},         // older layer wins over base
		{[]int{1, 0}, math.NaN()}, // tombstoned
		{[]int{2, 2}, 99},         // layer-only cell in a chunk the base never held
		{[]int{3, 3}, math.NaN()}, // untouched empty cell
	}
	for _, tc := range cases {
		got := c.Get(tc.addr)
		if math.IsNaN(tc.want) != math.IsNaN(got) || (!math.IsNaN(tc.want) && got != tc.want) {
			t.Errorf("Get(%v) = %v, want %v", tc.addr, got, tc.want)
		}
	}
	if !c.EngineCapable() {
		t.Fatal("uniform chunk-backed chain should be engine capable")
	}
	if c.NumLayers() != 2 {
		t.Fatalf("NumLayers = %d, want 2", c.NumLayers())
	}
	if c.CellsOverridden() != 4 {
		t.Fatalf("CellsOverridden = %d, want 4", c.CellsOverridden())
	}
}

func TestScenarioChainNonNullNewestWins(t *testing.T) {
	c := chainFixture(t)
	got := map[[2]int]float64{}
	c.NonNull(func(addr []int, v float64) bool {
		k := [2]int{addr[0], addr[1]}
		if _, dup := got[k]; dup {
			t.Fatalf("address %v emitted twice", addr)
		}
		got[k] = v
		return true
	})
	want := map[[2]int]float64{
		{0, 0}: 10, {0, 1}: 20, {2, 2}: 99,
	}
	if len(got) != len(want) {
		t.Fatalf("NonNull emitted %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("cell %v = %v, want %v", k, got[k], v)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
}

// TestScenarioChainWiderLayer covers the hypothetical-member shape: a
// layer on a wider geometry than the base. Cells above the base extent
// resolve from the layer; the chain is not engine capable.
func TestScenarioChainWiderLayer(t *testing.T) {
	g := MustGeometry([]int{2, 2}, []int{2, 2})
	st := NewStore(g)
	st.Set([]int{1, 1}, 7)
	wide := MustGeometry([]int{3, 2}, []int{2, 2})
	l := NewLayer(wide)
	l.Set([]int{2, 0}, 42) // ordinal above the base extent
	c := NewChain(st, []*Layer{l})
	if c.EngineCapable() {
		t.Fatal("wider layer must disable the engine fast path")
	}
	if got := c.Get([]int{2, 0}); got != 42 {
		t.Fatalf("Get above base extent = %v, want 42", got)
	}
	if got := c.Get([]int{1, 1}); got != 7 {
		t.Fatalf("base cell through wider chain = %v, want 7", got)
	}
	if got := c.Get([]int{2, 1}); !math.IsNaN(got) {
		t.Fatalf("untouched wide cell = %v, want NaN", got)
	}
}

func TestScenarioChainForEachMerged(t *testing.T) {
	c := chainFixture(t)
	g := c.ChunkBase().Geometry()
	resolved := map[[2]int]float64{}
	ccoord := make([]int, 2)
	addr := make([]int, 2)
	// Union of base and layer chunks, resolved chunk by chunk, must
	// reproduce exactly what NonNull reports.
	ids := map[int]bool{}
	for _, id := range c.ChunkBase().ChunkIDs() {
		ids[id] = true
	}
	for _, id := range c.LayerChunkIDs() {
		ids[id] = true
	}
	for id := range ids {
		base, _ := c.ChunkBase().ReadChunkInfo(id)
		g.CoordOf(id, ccoord)
		c.ForEachMerged(id, base, func(off int, v float64) bool {
			g.Join(ccoord, off, addr)
			resolved[[2]int{addr[0], addr[1]}] = v
			return true
		})
	}
	want := map[[2]int]float64{}
	c.NonNull(func(a []int, v float64) bool {
		want[[2]int{a[0], a[1]}] = v
		return true
	})
	if len(resolved) != len(want) {
		t.Fatalf("merged iteration yielded %v, want %v", resolved, want)
	}
	for k, v := range want {
		if resolved[k] != v {
			t.Errorf("cell %v = %v, want %v", k, resolved[k], v)
		}
	}
}

func TestScenarioChainReadOnly(t *testing.T) {
	c := chainFixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Set on a chain should panic")
		}
	}()
	c.Set([]int{0, 0}, 1)
}

func TestScenarioChainClone(t *testing.T) {
	c := chainFixture(t)
	cl := c.Clone()
	if cl.Len() != c.Len() {
		t.Fatalf("clone Len = %d, want %d", cl.Len(), c.Len())
	}
	c.NonNull(func(addr []int, v float64) bool {
		if got := cl.Get(addr); got != v {
			t.Errorf("clone cell %v = %v, want %v", addr, got, v)
		}
		return true
	})
}

// TestScenarioChainGetAllocs pins the acceptance criterion: layer-chain
// read resolution adds zero steady-state allocations per resolved cell,
// matching the overlay kernel standard.
func TestScenarioChainGetAllocs(t *testing.T) {
	c := chainFixture(t)
	addrs := [][]int{{0, 0}, {0, 1}, {1, 0}, {2, 2}, {3, 3}}
	var sink float64
	allocs := testing.AllocsPerRun(1000, func() {
		for _, a := range addrs {
			sink += c.Get(a)
		}
	})
	if allocs != 0 {
		t.Fatalf("Chain.Get allocates %.1f per run, want 0", allocs)
	}
	_ = sink
}

// TestScenarioChainMergedAllocs pins the engine-facing merged chunk
// iteration at zero allocations per chunk once the callback is set up.
func TestScenarioChainMergedAllocs(t *testing.T) {
	c := chainFixture(t)
	base, _ := c.ChunkBase().ReadChunkInfo(0)
	var sink float64
	fn := func(off int, v float64) bool { sink += v; return true }
	allocs := testing.AllocsPerRun(1000, func() {
		c.ForEachMerged(0, base, fn)
	})
	if allocs != 0 {
		t.Fatalf("ForEachMerged allocates %.1f per run, want 0", allocs)
	}
	_ = sink
}

func TestScenarioChainMemStoreBase(t *testing.T) {
	ms := cube.NewMemStore(2)
	ms.Set([]int{0, 0}, 5)
	g := MustGeometry([]int{2, 2}, []int{2, 2})
	l := NewLayer(g)
	l.Set([]int{1, 1}, 6)
	c := NewChain(ms, []*Layer{l})
	if c.EngineCapable() {
		t.Fatal("MemStore base must not be engine capable")
	}
	if got := c.Get([]int{0, 0}); got != 5 {
		t.Fatalf("base cell = %v, want 5", got)
	}
	if got := c.Get([]int{1, 1}); got != 6 {
		t.Fatalf("layer cell = %v, want 6", got)
	}
}

// TestScenarioChainOverRunEncodedBase layers scenario edits over a
// run-encoded base: reads resolve newest-wins through the encoded
// chunks, ForEachMerged matches a plain-store twin cell for cell, and
// the base chunks stay run-encoded throughout — layer edits must never
// force a base decode (copy-on-write applies to writes, and scenario
// writes land in layers, not the base).
func TestScenarioChainOverRunEncodedBase(t *testing.T) {
	g := MustGeometry([]int{4, 4}, []int{2, 2})
	build := func() *Store {
		st := NewStore(g)
		for i := 0; i < 4; i++ { // one value run per row pair
			st.Set([]int{0, i}, 7)
			st.Set([]int{1, i}, 7)
			st.Set([]int{2, i}, 8)
		}
		return st
	}
	plain := build()
	rle := build()
	if n := rle.ForceRunEncodeAll(); n == 0 {
		t.Fatal("nothing run-encoded")
	}

	layer := NewLayer(g)
	layer.Set([]int{0, 1}, 70) // override inside a run
	layer.Delete([]int{2, 2})  // tombstone inside a run
	layer.Set([]int{3, 3}, 99) // layer-only cell in an empty base chunk
	plainChain := NewChain(plain, []*Layer{layer})
	rleChain := NewChain(rle, []*Layer{layer})

	addr := []int{0, 0}
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			addr[0], addr[1] = x, y
			pw, gw := plainChain.Get(addr), rleChain.Get(addr)
			if math.IsNaN(pw) != math.IsNaN(gw) || (!math.IsNaN(pw) && pw != gw) {
				t.Fatalf("Get(%v): run-encoded chain %v, plain %v", addr, gw, pw)
			}
		}
	}

	for _, id := range []int{0, 1, 2, 3} {
		pb, _ := plainChain.ChunkBase().ReadChunkInfo(id)
		rb, _ := rleChain.ChunkBase().ReadChunkInfo(id)
		want := map[int]float64{}
		plainChain.ForEachMerged(id, pb, func(off int, v float64) bool {
			want[off] = v
			return true
		})
		got := map[int]float64{}
		rleChain.ForEachMerged(id, rb, func(off int, v float64) bool {
			got[off] = v
			return true
		})
		if len(want) != len(got) {
			t.Fatalf("chunk %d: merged %d cells, want %d", id, len(got), len(want))
		}
		for off, w := range want {
			if got[off] != w {
				t.Fatalf("chunk %d off %d: merged %v, want %v", id, off, got[off], w)
			}
		}
	}

	for _, id := range rle.ChunkIDs() {
		if c := rle.ReadChunk(id); c != nil && c.Rep() != RunEncoded {
			t.Fatalf("base chunk %d decoded to %v by chain reads", id, c.Rep())
		}
	}
}
