package chunk

import (
	"encoding/binary"
	"errors"
)

// Tier is the storage layer beneath the buffer pool: a keyed store of
// serialized chunks that the pool faults from and evicts to. The spill
// file (SpillTo), the simulated disk (simdisk.Tier) and the persistent
// segment store (internal/segment) all implement it, so chunk.Store is
// indifferent to whether a miss is served by an append-only scratch
// file, a deterministic cost model, or a checksummed page-aligned
// segment on real storage.
//
// Implementations must be safe for concurrent use by themselves: the
// pool calls ReadChunkAt outside the store mutex (so distinct chunks'
// fault I/O overlaps) while WriteChunk, Remove and the metadata
// methods may run under it. A Tier must therefore never call back into
// the owning Store.
type Tier interface {
	// ReadChunkAt loads the chunk with the given canonical ID. It
	// returns (nil, 0, nil) when the tier does not hold the chunk. The
	// float64 is the read's modeled I/O cost in milliseconds (0 for
	// tiers that do real I/O — wall time is measured by the pool).
	ReadChunkAt(id int) (*Chunk, float64, error)
	// WriteChunk stores a chunk under the given ID, replacing any
	// previous copy. Read-only tiers return ErrTierReadOnly.
	WriteChunk(id int, c *Chunk) error
	// Remove deletes the tier's copy of a chunk. Removing an absent
	// chunk is a no-op. Read-only tiers return ErrTierReadOnly.
	Remove(id int) error
	// Contains reports whether the tier holds a chunk, without loading.
	Contains(id int) bool
	// IDs returns the canonical IDs of all chunks the tier holds, in
	// unspecified order.
	IDs() []int
	// Cells returns the cell count of a backed chunk without loading
	// it (0 when absent). Store.Len sizes non-resident chunks with it.
	Cells(id int) int
	// Len returns the number of chunks the tier holds.
	Len() int
	// Sync flushes buffered writes to stable storage where applicable.
	Sync() error
	// Close releases the tier's resources. The pool calls it from
	// Store.CloseSpill after faulting everything resident.
	Close() error
	// ReadOnly reports that WriteChunk/Remove are unsupported. The
	// pool keeps dirty chunks resident instead of evicting them to a
	// read-only tier, and tracks deletions on the side.
	ReadOnly() bool
}

// CloneableTier is implemented by tiers that can produce an independent
// view for Store.Clone, so cloning a pooled store does not force every
// chunk resident. CloneTier returns (nil, false) when a cheap clone is
// impossible, in which case Clone falls back to full materialization.
type CloneableTier interface {
	Tier
	CloneTier() (Tier, bool)
}

// DurableTier is implemented by tiers whose contents survive process
// restart (the segment store). The pool flags reads served by a
// durable tier in ReadInfo so fault spans and metrics can distinguish
// real storage I/O from scratch-file traffic.
type DurableTier interface {
	Tier
	Durable() bool
}

// ErrTierReadOnly is returned by WriteChunk/Remove on read-only tiers.
var ErrTierReadOnly = errors.New("chunk: tier is read-only")

// EncodeChunk serializes a chunk in the shared record layout, all
// little-endian: dense and sparse chunks as pair records (uint32 cell
// count, then uint32 offset + float64 bits per cell), run-encoded
// chunks as run records (top-bit-flagged uint32 run count, uint32 cell
// count, then delta start + length + value bits per run). The spill
// file and the segment store share this format, so a chunk round-trips
// bit-identically through either tier — and a run-encoded chunk's disk
// bytes shrink with it.
func EncodeChunk(c *Chunk) []byte { return encodeChunk(c) }

// DecodeChunk deserializes a record written by EncodeChunk with the
// given capacity: pair records restore as sparse chunks, run records as
// run-encoded chunks (a tier fault never silently decompresses).
func DecodeChunk(buf []byte, capacity int) (*Chunk, error) {
	return decodeChunk(buf, capacity)
}

// RecordCells sizes an encoded chunk record (cell count) from its
// header, without decoding the cells. Pair records are sized from the
// byte length; run records carry the count in their header.
func RecordCells(rec []byte) int {
	if len(rec) < spillHeaderLen {
		return 0
	}
	if binary.LittleEndian.Uint32(rec)&runRecordFlag != 0 {
		if len(rec) < runHeaderLen {
			return 0
		}
		return int(binary.LittleEndian.Uint32(rec[4:8]))
	}
	return (len(rec) - spillHeaderLen) / spillCellLen
}
