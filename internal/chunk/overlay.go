package chunk

import (
	"math"
	"sort"
	"strconv"

	"whatifolap/internal/cube"
)

// Overlay is a chunk-grained sparse cell store: canonical chunk ID →
// dense-or-sparse Chunk under a Geometry. The engine's relocation scan
// writes every moved cell into one; unlike the string-keyed
// cube.MemStore it replaces, a write is pure integer arithmetic
// (Geometry.SplitID) plus one map probe — no per-cell allocation once
// the destination chunk exists. Chunks start sparse and promote to
// dense past the occupancy threshold, exactly like Store's cells.
//
// Overlay implements cube.Store. It is not safe for concurrent writers;
// concurrent readers are safe once writing has stopped (the engine
// builds an overlay in one scan goroutine, then publishes it read-only
// inside a view).
type Overlay struct {
	geom   *Geometry
	chunks map[int]*Chunk
	cells  int
	// promotions counts chunks that crossed the occupancy threshold and
	// switched from sparse to dense representation during writes — the
	// trace attribute behind per-merge-group "overlay_promotions".
	promotions int
}

// NewOverlay creates an empty overlay under the geometry.
func NewOverlay(g *Geometry) *Overlay {
	return &Overlay{geom: g, chunks: make(map[int]*Chunk)}
}

// Geometry returns the overlay's chunking geometry.
func (o *Overlay) Geometry() *Geometry { return o.geom }

// Get implements cube.Store.
func (o *Overlay) Get(addr []int) float64 {
	id, off := o.geom.SplitID(addr)
	c := o.chunks[id]
	if c == nil {
		return math.NaN()
	}
	return c.Get(off)
}

// Set implements cube.Store. Setting NaN deletes; a chunk emptied by
// deletion is dropped.
func (o *Overlay) Set(addr []int, v float64) {
	id, off := o.geom.SplitID(addr)
	c := o.chunks[id]
	if c == nil {
		if math.IsNaN(v) {
			return
		}
		c = NewSparse(o.geom.ChunkCap())
		o.chunks[id] = c
	}
	before := c.Len()
	wasSparse := c.dense == nil
	c.Set(off, v)
	if wasSparse && c.dense != nil {
		o.promotions++
	}
	o.cells += c.Len() - before
	if c.Len() == 0 {
		delete(o.chunks, id)
	}
}

// Promotions returns how many sparse→dense representation promotions
// the overlay's writes have triggered so far.
func (o *Overlay) Promotions() int { return o.promotions }

// SetRunAt writes n copies of v starting at offset off of the chunk
// with canonical ID id — the run-aware relocation kernel's write path.
// One map probe and one chunk-level run write cover the whole segment,
// against n SplitID computations and n probes on the per-cell path.
// v must be non-Null and the run must lie inside the chunk (the kernel
// segments runs at chunk-digit boundaries, so both hold by
// construction).
func (o *Overlay) SetRunAt(id, off, n int, v float64) {
	c := o.chunks[id]
	if c == nil {
		c = NewSparse(o.geom.ChunkCap())
		o.chunks[id] = c
	}
	before := c.Len()
	wasSparse := c.dense == nil
	c.SetRun(off, n, v)
	if wasSparse && c.dense != nil {
		o.promotions++
	}
	o.cells += c.Len() - before
}

// Absorb folds src's chunks into o: chunks o lacks are adopted by
// reference (O(1)), overlapping chunks merge cell by cell. The parallel
// executor folds each merge group's sub-task overlays this way — their
// cell sets are disjoint (relocation destinations are injective per
// parameter leaf), so the fold is order-insensitive on content even
// though sub-tasks of one group may materialize the same destination
// chunk. src must share o's geometry and must not be used afterwards.
func (o *Overlay) Absorb(src *Overlay) {
	for id, sc := range src.chunks {
		dst := o.chunks[id]
		if dst == nil {
			o.chunks[id] = sc
			o.cells += sc.Len()
			continue
		}
		before := dst.Len()
		wasSparse := dst.dense == nil
		//lint:allocok one closure per absorbed chunk during the merge fold, not per cell; it captures the per-chunk destination
		sc.ForEach(func(off int, v float64) bool {
			dst.Set(off, v)
			return true
		})
		if wasSparse && dst.dense != nil {
			o.promotions++
		}
		o.cells += dst.Len() - before
	}
}

// NonNull implements cube.Store. Chunks are visited in canonical ID
// order, cells within a chunk in offset order, so iteration is
// deterministic.
func (o *Overlay) NonNull(fn func(addr []int, v float64) bool) {
	ids := make([]int, 0, len(o.chunks))
	for id := range o.chunks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	addr := make([]int, o.geom.NumDims())
	ccoord := make([]int, o.geom.NumDims())
	stop := false
	// One closure per NonNull call, hoisted out of the chunk loop: it
	// captures only loop-invariant state (ccoord is updated in place).
	emit := func(off int, v float64) bool {
		o.geom.Join(ccoord, off, addr)
		if !fn(addr, v) {
			stop = true
			return false
		}
		return true
	}
	for _, id := range ids {
		c := o.chunks[id]
		o.geom.CoordOf(id, ccoord)
		c.ForEach(emit)
		if stop {
			return
		}
	}
}

// Len implements cube.Store.
func (o *Overlay) Len() int { return o.cells }

// Clone implements cube.Store.
func (o *Overlay) Clone() cube.Store {
	out := NewOverlay(o.geom)
	for id, c := range o.chunks {
		out.chunks[id] = c.Clone()
	}
	out.cells = o.cells
	return out
}

// NumChunks returns the number of materialized overlay chunks.
func (o *Overlay) NumChunks() int { return len(o.chunks) }

// MemBytes estimates the overlay's resident size.
func (o *Overlay) MemBytes() int {
	n := 0
	for _, c := range o.chunks {
		n += c.MemBytes()
	}
	return n
}

// PartitionedOverlay routes reads to the overlay owning the cell's
// merge group, identified by the masked chunk ID (the chunk coordinate
// with one dimension — the engine's varying dimension — zeroed). The
// engine's parallel scan builds one Overlay per merge group; since
// merge edges never cross rest-coordinate groups, the per-group
// overlays are disjoint by construction and never need to be copied
// into one store: attaching them here is the whole merge step, O(groups)
// instead of O(cells).
//
// PartitionedOverlay implements cube.Store (writes route to the owning
// part and panic when no part owns the cell's group).
type PartitionedOverlay struct {
	geom    *Geometry
	maskDim int
	parts   map[int]*Overlay
	// order preserves attachment order for deterministic iteration.
	order []*Overlay
}

// NewPartitionedOverlay creates an empty router under the geometry,
// masking maskDim when computing rest keys.
func NewPartitionedOverlay(g *Geometry, maskDim int) *PartitionedOverlay {
	return &PartitionedOverlay{geom: g, maskDim: maskDim, parts: make(map[int]*Overlay)}
}

// Attach routes the masked chunk ID to ov. Attaching two overlays under
// one masked ID is a bug in the caller (merge groups are disjoint).
func (p *PartitionedOverlay) Attach(maskedID int, ov *Overlay) {
	if _, dup := p.parts[maskedID]; dup {
		panic("chunk: masked ID " + strconv.Itoa(maskedID) + " attached twice")
	}
	p.parts[maskedID] = ov
	p.order = append(p.order, ov) //lint:allocok one append per attached merge group at plan time, not per cell
}

// NumParts returns the number of attached overlays.
func (p *PartitionedOverlay) NumParts() int { return len(p.parts) }

// Get implements cube.Store: one masked-ID computation, one map probe,
// then the owning overlay's read path. Cells in groups no overlay owns
// read as absent.
func (p *PartitionedOverlay) Get(addr []int) float64 {
	ov := p.parts[p.geom.MaskedID(addr, p.maskDim)]
	if ov == nil {
		return math.NaN()
	}
	return ov.Get(addr)
}

// Set implements cube.Store by routing to the owning part.
func (p *PartitionedOverlay) Set(addr []int, v float64) {
	ov := p.parts[p.geom.MaskedID(addr, p.maskDim)]
	if ov == nil {
		panic("chunk: no overlay part owns address " + formatAddr(addr))
	}
	ov.Set(addr, v)
}

// NonNull implements cube.Store: parts in attachment order (the
// engine attaches merge groups in plan order, which is deterministic).
func (p *PartitionedOverlay) NonNull(fn func(addr []int, v float64) bool) {
	stopped := false
	// Hoisted out of the part loop: the closure's captures are
	// loop-invariant, so one allocation serves every part.
	emit := func(addr []int, v float64) bool {
		if !fn(addr, v) {
			stopped = true
			return false
		}
		return true
	}
	for _, ov := range p.order {
		ov.NonNull(emit)
		if stopped {
			return
		}
	}
}

// Len implements cube.Store.
func (p *PartitionedOverlay) Len() int {
	n := 0
	for _, ov := range p.order {
		n += ov.Len()
	}
	return n
}

// Clone implements cube.Store by flattening into a single Overlay.
func (p *PartitionedOverlay) Clone() cube.Store {
	out := NewOverlay(p.geom)
	p.NonNull(func(addr []int, v float64) bool {
		out.Set(addr, v)
		return true
	})
	return out
}

// formatAddr renders an address for panic messages without fmt (this
// file is a declared hot path; the panic runs only on caller bugs).
func formatAddr(addr []int) string {
	s := "["
	for i, a := range addr {
		if i > 0 {
			s += " "
		}
		s += strconv.Itoa(a)
	}
	return s + "]"
}
