package chunk

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

// randomChunk fills a fresh chunk with a mix of value runs, isolated
// cells and Null gaps, biased toward repetition so run encoding has
// something to find. Negative zero appears on purpose: run equality is
// on bit patterns, so -0 and 0 must never merge into one run.
func randomChunk(rng *rand.Rand, capacity int) *Chunk {
	c := NewSparse(capacity)
	vals := []float64{1.5, 1.5, -2, 0, math.Copysign(0, -1), 7.25}
	off := 0
	for off < capacity {
		runLen := 1 + rng.Intn(6)
		if off+runLen > capacity {
			runLen = capacity - off
		}
		switch rng.Intn(4) {
		case 0: // Null gap
		default:
			v := vals[rng.Intn(len(vals))]
			for i := off; i < off+runLen; i++ {
				c.Set(i, v)
			}
		}
		off += runLen
	}
	return c
}

// cellsBits dumps a chunk as offset → value bit pattern, so comparisons
// distinguish -0 from 0.
func cellsBits(c *Chunk) map[int]uint64 {
	out := make(map[int]uint64)
	c.ForEach(func(off int, v float64) bool {
		out[off] = math.Float64bits(v)
		return true
	})
	return out
}

func sameBits(t *testing.T, label string, want, got map[int]uint64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d cells, want %d", label, len(got), len(want))
	}
	for off, wb := range want {
		if gb, ok := got[off]; !ok || gb != wb {
			t.Fatalf("%s: cell %d = %#x, want %#x", label, off, gb, wb)
		}
	}
}

func TestRunEncodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		c := randomChunk(rng, 48)
		want := cellsBits(c)
		n := c.Len()
		if !c.ForceRuns() && n > 0 {
			t.Fatal("ForceRuns refused a non-empty chunk")
		}
		if n == 0 {
			continue
		}
		if c.Rep() != RunEncoded {
			t.Fatalf("Rep = %v after ForceRuns", c.Rep())
		}
		if c.Len() != n {
			t.Fatalf("Len = %d after encode, want %d", c.Len(), n)
		}
		// Reads resolve through the run binary search.
		for off := 0; off < c.Cap(); off++ {
			got := c.Get(off)
			wb, present := want[off]
			if present != !math.IsNaN(got) || (present && math.Float64bits(got) != wb) {
				t.Fatalf("encoded Get(%d) = %v, want bits %#x (present=%v)", off, got, wb, present)
			}
		}
		if !c.DecodeRuns() {
			t.Fatal("DecodeRuns refused an encoded chunk")
		}
		if c.Rep() == RunEncoded {
			t.Fatal("still run-encoded after DecodeRuns")
		}
		sameBits(t, "decode", want, cellsBits(c))
	}
}

func TestForEachRunEquivalentAcrossReps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	expand := func(c *Chunk) map[int]uint64 {
		out := make(map[int]uint64)
		prevEnd := -1
		c.ForEachRun(func(off, runLen int, v float64) bool {
			if runLen <= 0 || off < prevEnd {
				t.Fatalf("run (%d,%d) overlaps or is empty (prev end %d)", off, runLen, prevEnd)
			}
			prevEnd = off + runLen
			for i := off; i < off+runLen; i++ {
				out[i] = math.Float64bits(v)
			}
			return true
		})
		return out
	}
	for i := 0; i < 100; i++ {
		base := randomChunk(rng, 40)
		want := cellsBits(base)

		sparse := base.Clone()
		sparse.ForceSparse()
		sameBits(t, "sparse runs", want, expand(sparse))

		dense := base.Clone()
		if dense.Rep() != Dense {
			dense.toDense()
		}
		sameBits(t, "dense runs", want, expand(dense))

		rle := base.Clone()
		rle.ForceRuns()
		sameBits(t, "encoded runs", want, expand(rle))

		// Runs are maximal: adjacent runs never carry the same bits.
		var lastEnd int
		var lastBits uint64
		first := true
		rle.ForEachRun(func(off, runLen int, v float64) bool {
			b := math.Float64bits(v)
			if !first && off == lastEnd && b == lastBits {
				t.Fatalf("runs at %d not maximal", off)
			}
			first, lastEnd, lastBits = false, off+runLen, b
			return true
		})
	}
}

// TestForEachRunAllocs pins the scan hot path: iterating runs allocates
// nothing on any representation.
func TestForEachRunAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := randomChunk(rng, 64)
	sparse := base.Clone()
	sparse.ForceSparse()
	dense := base.Clone()
	if dense.Rep() != Dense {
		dense.toDense()
	}
	rle := base.Clone()
	rle.ForceRuns()
	sink := 0.0
	for _, tc := range []struct {
		name string
		c    *Chunk
	}{{"sparse", sparse}, {"dense", dense}, {"run-encoded", rle}} {
		fn := func(off, runLen int, v float64) bool {
			sink += v
			return true
		}
		if avg := testing.AllocsPerRun(100, func() { tc.c.ForEachRun(fn) }); avg != 0 {
			t.Errorf("%s: ForEachRun allocates %.1f per iteration, want 0", tc.name, avg)
		}
	}
	_ = sink
}

func TestEncodeRunsThreshold(t *testing.T) {
	// Alternating values: every cell its own run, ratio 1 > 0.5.
	c := NewSparse(16)
	for i := 0; i < 16; i++ {
		c.Set(i, float64(i))
	}
	if c.EncodeRuns() {
		t.Fatal("EncodeRuns converted a chunk of length-1 runs")
	}
	if c.Rep() == RunEncoded {
		t.Fatal("rep changed despite refusal")
	}
	// One long run: ratio 1/16, converts and shrinks.
	r := NewSparse(16)
	for i := 0; i < 16; i++ {
		r.Set(i, 42)
	}
	before := r.MemBytes()
	if !r.EncodeRuns() {
		t.Fatal("EncodeRuns refused a single-run chunk")
	}
	if r.Rep() != RunEncoded || r.RunCount() != 1 {
		t.Fatalf("Rep = %v, runs = %d", r.Rep(), r.RunCount())
	}
	if r.MemBytes() >= before {
		t.Fatalf("encoded MemBytes %d not below %d", r.MemBytes(), before)
	}
}

// TestRunEncodedSetDecodesFirst checks the copy-on-write contract:
// mutating a run-encoded chunk decodes it, applies the write, and the
// result matches the same writes on a never-encoded twin.
func TestRunEncodedSetDecodesFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		plain := randomChunk(rng, 32)
		rle := plain.Clone()
		rle.ForceRuns()
		for j := 0; j < 10; j++ {
			off := rng.Intn(32)
			v := math.NaN()
			if rng.Intn(3) > 0 {
				v = float64(rng.Intn(5))
			}
			plain.Set(off, v)
			rle.Set(off, v)
		}
		if rle.Rep() == RunEncoded {
			t.Fatal("chunk still run-encoded after Set")
		}
		sameBits(t, "after edits", cellsBits(plain), cellsBits(rle))
	}
}

// TestSetRunMatchesPerCell drives SetRun against per-cell Set on a twin
// chunk across random ranges, values and NaN deletions.
func TestSetRunMatchesPerCell(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 150; i++ {
		a := randomChunk(rng, 40)
		if rng.Intn(2) == 0 {
			a.ForceRuns()
		}
		b := a.Clone()
		for j := 0; j < 8; j++ {
			off := rng.Intn(40)
			n := 1 + rng.Intn(40-off)
			v := float64(rng.Intn(4))
			if rng.Intn(4) == 0 {
				v = math.NaN()
			}
			a.SetRun(off, n, v)
			for k := off; k < off+n; k++ {
				b.Set(k, v)
			}
			if a.Len() != b.Len() {
				t.Fatalf("Len %d vs %d after SetRun(%d,%d,%v)", a.Len(), b.Len(), off, n, v)
			}
		}
		sameBits(t, "SetRun", cellsBits(b), cellsBits(a))
	}
}

// TestRunRecordCodecRoundTrip checks the run record layout through
// EncodeChunk/DecodeChunk: bit-exact values (incl. -0), preserved
// representation (a fault restores compressed), correct cell count.
func TestRunRecordCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		c := randomChunk(rng, 48)
		if c.Len() == 0 {
			continue
		}
		c.ForceRuns()
		rec := EncodeChunk(c)
		if got := RecordCells(rec); got != c.Len() {
			t.Fatalf("RecordCells = %d, want %d", got, c.Len())
		}
		back, err := DecodeChunk(rec, c.Cap())
		if err != nil {
			t.Fatal(err)
		}
		if back.Rep() != RunEncoded {
			t.Fatalf("decoded Rep = %v, want RunEncoded", back.Rep())
		}
		if back.Len() != c.Len() {
			t.Fatalf("decoded Len = %d, want %d", back.Len(), c.Len())
		}
		sameBits(t, "codec", cellsBits(c), cellsBits(back))
	}
}

func TestRunRecordCorruptRejected(t *testing.T) {
	c := NewSparse(16)
	for i := 2; i < 10; i++ {
		c.Set(i, 3.5)
	}
	c.ForceRuns()
	rec := EncodeChunk(c)
	// Each single-byte corruption of the payload must either fail to
	// decode or decode to a structurally valid chunk — never panic and
	// never produce an out-of-range run.
	for i := range rec {
		for _, flip := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), rec...)
			mut[i] ^= flip
			back, err := DecodeChunk(mut, c.Cap())
			if err != nil {
				continue
			}
			back.ForEachRun(func(off, runLen int, v float64) bool {
				if off < 0 || off+runLen > c.Cap() || runLen <= 0 || math.IsNaN(v) {
					t.Fatalf("byte %d flip %#x: invalid run (%d,%d,%v) decoded", i, flip, off, runLen, v)
				}
				return true
			})
		}
	}
	// Truncations must error, not panic.
	for cut := 0; cut < len(rec); cut++ {
		if _, err := DecodeChunk(rec[:cut], c.Cap()); err == nil && cut < len(rec) {
			// Short pair-records of whole cells can be valid; run records
			// never are unless the header says so.
			if RecordCells(rec[:cut]) == 0 && cut > 0 {
				t.Fatalf("truncation to %d bytes decoded silently", cut)
			}
		}
	}
}

// TestEncodeRunsAllPoolAccounting checks satellite invariant: a pooled
// store's resident-byte accounting follows representation sweeps, so
// run encoding creates real budget headroom.
func TestEncodeRunsAllPoolAccounting(t *testing.T) {
	g := MustGeometry([]int{64}, []int{16}) // 4 chunks of 16
	s := NewStore(g)
	if err := s.SpillTo(filepath.Join(t.TempDir(), "spill.bin"), 1<<20); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		s.Set([]int{i}, 9.75) // one value → one run per chunk
	}
	before := s.SpillStats().ResidentBytes
	if before != s.MemBytes() {
		t.Fatalf("accounting %d != MemBytes %d before encode", before, s.MemBytes())
	}
	if n := s.EncodeRunsAll(); n != 4 {
		t.Fatalf("EncodeRunsAll converted %d chunks, want 4", n)
	}
	after := s.SpillStats().ResidentBytes
	if after != s.MemBytes() {
		t.Fatalf("accounting %d != MemBytes %d after encode", after, s.MemBytes())
	}
	if after >= before {
		t.Fatalf("resident bytes %d did not shrink from %d", after, before)
	}
	for i := 0; i < 64; i++ {
		if got := s.Get([]int{i}); got != 9.75 {
			t.Fatalf("Get(%d) = %v after encode", i, got)
		}
	}
}

// TestRunEncodedSpillRoundTrip faults run-encoded chunks through the
// spill tier: eviction writes run records, the fault restores them
// still compressed.
func TestRunEncodedSpillRoundTrip(t *testing.T) {
	g := MustGeometry([]int{64}, []int{16})
	s := NewStore(g)
	if err := s.SpillTo(filepath.Join(t.TempDir(), "spill.bin"), 1<<20); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		s.Set([]int{i}, float64(1+i/16)) // one run per chunk
	}
	if n := s.EncodeRunsAll(); n != 4 {
		t.Fatalf("EncodeRunsAll = %d, want 4", n)
	}
	// Shrink the budget to force eviction of everything but one chunk.
	s.mu.Lock()
	s.pool.budget = s.pool.residentBytes / 4
	s.evictLocked()
	s.mu.Unlock()
	if st := s.SpillStats(); st.Spilled == 0 {
		t.Fatal("nothing spilled under the shrunken budget")
	}
	for i := 0; i < 64; i++ {
		if got, want := s.Get([]int{i}), float64(1+i/16); got != want {
			t.Fatalf("Get(%d) = %v, want %v", i, got, want)
		}
	}
	for _, id := range s.ChunkIDs() {
		if c := s.ReadChunk(id); c.Rep() != RunEncoded {
			t.Fatalf("chunk %d faulted back as %v, want RunEncoded", id, c.Rep())
		}
	}
}

// TestRunPropertyQuick is the property form: any write sequence, any
// encode/decode points — reads always match a plain map model.
func TestRunPropertyQuick(t *testing.T) {
	property := func(ops []uint16) bool {
		const capacity = 24
		c := NewSparse(capacity)
		model := map[int]float64{}
		for step, op := range ops {
			off := int(op) % capacity
			switch (op >> 8) % 4 {
			case 0:
				v := float64(op % 7)
				c.Set(off, v)
				model[off] = v
			case 1:
				c.Set(off, math.NaN())
				delete(model, off)
			case 2:
				n := 1 + int(op>>11)%(capacity-off)
				v := float64(op % 5)
				c.SetRun(off, n, v)
				for k := off; k < off+n; k++ {
					model[k] = v
				}
			case 3:
				if step%2 == 0 {
					c.ForceRuns()
				} else {
					c.DecodeRuns()
				}
			}
		}
		if c.Len() != len(model) {
			return false
		}
		for off := 0; off < capacity; off++ {
			got := c.Get(off)
			want, ok := model[off]
			if ok != !math.IsNaN(got) || (ok && got != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
