package chunk

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"whatifolap/internal/cube"
)

func TestSplitIDMatchesSplitPlusCanonicalID(t *testing.T) {
	g := MustGeometry([]int{7, 5, 9}, []int{2, 3, 4})
	ccoord := make([]int, 3)
	for a := 0; a < 7; a++ {
		for b := 0; b < 5; b++ {
			for c := 0; c < 9; c++ {
				addr := []int{a, b, c}
				off := g.Split(addr, ccoord)
				id := g.CanonicalID(ccoord)
				gotID, gotOff := g.SplitID(addr)
				if gotID != id || gotOff != off {
					t.Fatalf("SplitID(%v) = (%d,%d), want (%d,%d)", addr, gotID, gotOff, id, off)
				}
			}
		}
	}
}

func TestMaskedIDGroupsRestCoordinates(t *testing.T) {
	g := MustGeometry([]int{8, 6, 4}, []int{2, 2, 2})
	// Addresses differing only in the masked dimension share a masked
	// ID; addresses differing in any other chunk coordinate do not.
	const mask = 1
	base := []int{5, 0, 3}
	want := g.MaskedID(base, mask)
	for b := 0; b < 6; b++ {
		if got := g.MaskedID([]int{5, b, 3}, mask); got != want {
			t.Fatalf("MaskedID varies along the masked dimension: %d != %d", got, want)
		}
	}
	if got := g.MaskedID([]int{1, 0, 3}, mask); got == want {
		t.Fatal("MaskedID ignores a non-masked chunk coordinate change")
	}
	// MaskedIDOfCoord agrees, and accepts the -1 mask marker.
	ccoord := make([]int, 3)
	g.Split(base, ccoord)
	ccoord[mask] = -1
	if got := g.MaskedIDOfCoord(ccoord, mask); got != want {
		t.Fatalf("MaskedIDOfCoord = %d, want %d", got, want)
	}
}

// Property: an Overlay behaves exactly like the map-backed MemStore it
// replaced, under random workloads of sets, deletes and reads.
func TestQuickOverlayMatchesMemStore(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := MustGeometry([]int{20, 12}, []int{1 + r.Intn(5), 1 + r.Intn(6)})
		ov := NewOverlay(g)
		ms := cube.NewMemStore(2)
		for i := 0; i < 400; i++ {
			addr := []int{r.Intn(20), r.Intn(12)}
			if r.Intn(4) == 0 {
				ov.Set(addr, math.NaN())
				ms.Set(addr, math.NaN())
			} else {
				v := float64(1 + r.Intn(50))
				ov.Set(addr, v)
				ms.Set(addr, v)
			}
		}
		if ov.Len() != ms.Len() {
			return false
		}
		for a := 0; a < 20; a++ {
			for b := 0; b < 12; b++ {
				x, y := ov.Get([]int{a, b}), ms.Get([]int{a, b})
				if math.IsNaN(x) != math.IsNaN(y) || (!math.IsNaN(x) && x != y) {
					return false
				}
			}
		}
		// NonNull visits every cell exactly once, deterministically.
		seen := map[[2]int]float64{}
		ov.NonNull(func(addr []int, v float64) bool {
			seen[[2]int{addr[0], addr[1]}] = v
			return true
		})
		if len(seen) != ms.Len() {
			return false
		}
		ok := true
		ms.NonNull(func(addr []int, v float64) bool {
			if seen[[2]int{addr[0], addr[1]}] != v {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOverlayCloneIndependent(t *testing.T) {
	g := MustGeometry([]int{8}, []int{4})
	ov := NewOverlay(g)
	ov.Set([]int{1}, 10)
	cl := ov.Clone()
	ov.Set([]int{1}, 99)
	ov.Set([]int{2}, 5)
	if cl.Get([]int{1}) != 10 || !math.IsNaN(cl.Get([]int{2})) {
		t.Fatal("clone shares state with the original")
	}
	if cl.Len() != 1 || ov.Len() != 2 {
		t.Fatalf("Len: clone=%d original=%d", cl.Len(), ov.Len())
	}
}

// The relocation kernel's contract: once a cell's destination chunk is
// resident (dense), writing and reading relocated cells allocates
// nothing — the win over the string-keyed MemStore, whose every Set
// allocates an address key.
func TestOverlayZeroAllocsPerRelocatedCell(t *testing.T) {
	g := MustGeometry([]int{16, 16}, []int{4, 4})
	ov := NewOverlay(g)
	// Warm one chunk past the density threshold so it is dense.
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			ov.Set([]int{a, b}, 1)
		}
	}
	addr := []int{2, 3}
	if allocs := testing.AllocsPerRun(1000, func() { ov.Set(addr, 42.5) }); allocs != 0 {
		t.Fatalf("Overlay.Set on a resident dense chunk: %v allocs per cell, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() { _ = ov.Get(addr) }); allocs != 0 {
		t.Fatalf("Overlay.Get: %v allocs per cell, want 0", allocs)
	}
	// Sparse in-place overwrite is also allocation-free.
	sv := NewOverlay(g)
	sv.Set([]int{9, 9}, 1)
	saddr := []int{9, 9}
	if allocs := testing.AllocsPerRun(1000, func() { sv.Set(saddr, 2) }); allocs != 0 {
		t.Fatalf("Overlay.Set overwriting a sparse cell: %v allocs, want 0", allocs)
	}
	// The baseline this replaced allocates on every single write.
	ms := cube.NewMemStore(2)
	if allocs := testing.AllocsPerRun(1000, func() { ms.Set(addr, 42.5) }); allocs == 0 {
		t.Fatal("MemStore.Set unexpectedly allocation-free; baseline comparison is vacuous")
	}
}

func TestPartitionedOverlayRoutesByRestKey(t *testing.T) {
	// 2-D space, mask dimension 0 (the "varying" dimension): groups are
	// chunk columns of dimension 1.
	g := MustGeometry([]int{8, 8}, []int{2, 2})
	const mask = 0
	po := NewPartitionedOverlay(g, mask)

	ovA := NewOverlay(g) // owns cells whose dim-1 chunk coord is 0
	ovA.Set([]int{1, 1}, 10)
	ovB := NewOverlay(g) // owns dim-1 chunk coord 3
	ovB.Set([]int{6, 7}, 20)
	po.Attach(g.MaskedID([]int{0, 1}, mask), ovA)
	po.Attach(g.MaskedID([]int{0, 7}, mask), ovB)

	if po.NumParts() != 2 {
		t.Fatalf("NumParts = %d, want 2", po.NumParts())
	}
	if got := po.Get([]int{1, 1}); got != 10 {
		t.Fatalf("routed Get = %v, want 10", got)
	}
	// Same rest key, different masked-dimension coordinate: still ovA,
	// absent there.
	if got := po.Get([]int{7, 1}); !math.IsNaN(got) {
		t.Fatalf("absent cell in owned group = %v, want NaN", got)
	}
	if got := po.Get([]int{6, 7}); got != 20 {
		t.Fatalf("routed Get = %v, want 20", got)
	}
	// A group no overlay owns reads as absent.
	if got := po.Get([]int{0, 4}); !math.IsNaN(got) {
		t.Fatalf("unowned group = %v, want NaN", got)
	}
	if po.Len() != 2 {
		t.Fatalf("Len = %d, want 2", po.Len())
	}
	// Writes route to the owning part; unowned groups panic.
	po.Set([]int{0, 0}, 7)
	if ovA.Get([]int{0, 0}) != 7 {
		t.Fatal("Set did not route to the owning part")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Set into an unowned group should panic")
			}
		}()
		po.Set([]int{0, 4}, 1)
	}()
	// Duplicate attachment is a caller bug.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate Attach should panic")
			}
		}()
		po.Attach(g.MaskedID([]int{0, 1}, mask), ovB)
	}()
	// NonNull covers all parts; Clone flattens.
	n := 0
	po.NonNull(func(addr []int, v float64) bool { n++; return true })
	if n != 3 {
		t.Fatalf("NonNull visited %d cells, want 3", n)
	}
	cl := po.Clone()
	if cl.Len() != 3 || cl.Get([]int{6, 7}) != 20 {
		t.Fatal("Clone lost cells")
	}
}

// PartitionedOverlay reads must be allocation-free too: viewStore.Get
// resolves every scoped read through the router.
func TestPartitionedOverlayZeroAllocGet(t *testing.T) {
	g := MustGeometry([]int{16, 16}, []int{4, 4})
	po := NewPartitionedOverlay(g, 0)
	ov := NewOverlay(g)
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			ov.Set([]int{a, b}, 1)
		}
	}
	po.Attach(g.MaskedID([]int{0, 0}, 0), ov)
	addr := []int{2, 3}
	if allocs := testing.AllocsPerRun(1000, func() { _ = po.Get(addr) }); allocs != 0 {
		t.Fatalf("PartitionedOverlay.Get: %v allocs, want 0", allocs)
	}
}
