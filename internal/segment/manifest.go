package segment

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Manifest commit protocol: the manifest is the data directory's root
// of trust — it names, per cube, the segment files that hold each
// published version. Commit never edits MANIFEST.json in place:
//
//	1. write MANIFEST.json.tmp, fsync, close
//	2. rename MANIFEST.json      -> MANIFEST.json.prev   (if present)
//	3. rename MANIFEST.json.tmp  -> MANIFEST.json
//	4. fsync the directory
//
// A crash at any point leaves either the old manifest, the old one
// under .prev (between 2 and 3), or the new one — never a torn file as
// the live manifest. Load mirrors this: a missing or unparseable
// MANIFEST.json falls back to MANIFEST.json.prev (reporting
// recovered=true); only when both are unusable does it fail, and a
// directory with neither is simply empty. Segment files referenced by
// a manifest are themselves verified at Open time, so a manifest that
// survived a crash but points at a half-written segment still fails
// closed on that version.

const (
	// ManifestName is the live manifest file inside a data directory.
	ManifestName = "MANIFEST.json"
	// ManifestFormatVersion guards against foreign manifest layouts.
	ManifestFormatVersion = 1
)

// CubeVersion names one published version's segment file.
type CubeVersion struct {
	// Version is the catalog version number the segment holds.
	Version int `json:"version"`
	// File is the segment file name, relative to the data directory.
	File string `json:"file"`
	// Cells is the cube's non-null cell count (listing without opening).
	Cells int `json:"cells"`
}

// Manifest is the decoded manifest: versions per cube, ascending.
type Manifest struct {
	FormatVersion int                      `json:"format_version"`
	Cubes         map[string][]CubeVersion `json:"cubes"`
}

// NewManifest returns an empty manifest.
func NewManifest() *Manifest {
	return &Manifest{FormatVersion: ManifestFormatVersion, Cubes: make(map[string][]CubeVersion)}
}

// LoadManifest reads the manifest from dir. A directory without one
// yields an empty manifest; a corrupt live manifest falls back to the
// previous one (recovered=true). Both corrupt is an error — the caller
// must not guess at the catalog.
func LoadManifest(dir string) (m *Manifest, recovered bool, err error) {
	m, err = readManifest(filepath.Join(dir, ManifestName))
	if err == nil {
		return m, false, nil
	}
	if os.IsNotExist(err) {
		// No live manifest: a crash between the two Commit renames
		// leaves the previous one; otherwise the directory is fresh.
		m, perr := readManifest(filepath.Join(dir, ManifestName+".prev"))
		if perr == nil {
			return m, true, nil
		}
		if os.IsNotExist(perr) {
			return NewManifest(), false, nil
		}
		return nil, false, perr
	}
	// Live manifest present but unusable (torn/corrupt): recover from
	// the previous one if it parses.
	if m2, perr := readManifest(filepath.Join(dir, ManifestName+".prev")); perr == nil {
		return m2, true, nil
	}
	return nil, false, fmt.Errorf("segment: manifest unusable and no recoverable previous: %w", err)
}

func readManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("segment: parse %s: %w", path, err)
	}
	if m.FormatVersion != ManifestFormatVersion {
		return nil, fmt.Errorf("segment: %s: format version %d, want %d", path, m.FormatVersion, ManifestFormatVersion)
	}
	if m.Cubes == nil {
		m.Cubes = make(map[string][]CubeVersion)
	}
	for name, vs := range m.Cubes {
		for _, v := range vs {
			if v.Version <= 0 || v.File == "" || v.File != filepath.Base(v.File) {
				return nil, fmt.Errorf("segment: %s: bad entry %+v for cube %q", path, v, name)
			}
		}
	}
	return &m, nil
}

// Add records a version for a cube, keeping versions ascending and
// replacing any existing entry with the same version number.
func (m *Manifest) Add(name string, v CubeVersion) {
	vs := m.Cubes[name]
	for i := range vs {
		if vs[i].Version == v.Version {
			vs[i] = v
			m.Cubes[name] = vs
			return
		}
	}
	vs = append(vs, v)
	sort.Slice(vs, func(i, j int) bool { return vs[i].Version < vs[j].Version })
	m.Cubes[name] = vs
}

// Latest returns a cube's newest version entry.
func (m *Manifest) Latest(name string) (CubeVersion, bool) {
	vs := m.Cubes[name]
	if len(vs) == 0 {
		return CubeVersion{}, false
	}
	return vs[len(vs)-1], true
}

// Versions returns a cube's version entries, ascending.
func (m *Manifest) Versions(name string) []CubeVersion {
	return append([]CubeVersion(nil), m.Cubes[name]...)
}

// Names returns the cube names in the manifest, sorted.
func (m *Manifest) Names() []string {
	names := make([]string, 0, len(m.Cubes))
	for name := range m.Cubes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Commit atomically replaces dir's manifest with m using the
// temp + fsync + rename protocol documented above.
func (m *Manifest) Commit(dir string) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	live := filepath.Join(dir, ManifestName)
	tmp := live + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if _, err := os.Stat(live); err == nil {
		if err := os.Rename(live, live+".prev"); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, live); err != nil {
		return err
	}
	return syncDir(dir)
}
