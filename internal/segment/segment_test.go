package segment

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"

	"whatifolap/internal/chunk"
)

// testStore builds a 16-chunk store with deterministic values.
func testStore(t *testing.T) *chunk.Store {
	t.Helper()
	g := chunk.MustGeometry([]int{64}, []int{4})
	s := chunk.NewStore(g)
	for i := 0; i < 64; i += 2 { // half the cells, so chunks are sparse
		s.Set([]int{i}, float64(i)*1.5)
	}
	return s
}

func writeTestSegment(t *testing.T, path string, meta []byte) *chunk.Store {
	t.Helper()
	s := testStore(t)
	err := Create(path, s.Geometry().ChunkCap(), meta, s.ChunkIDs(), func(id int) *chunk.Chunk {
		return s.PeekChunk(id)
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSegmentRoundTrip(t *testing.T) {
	for _, mmap := range []bool{false, true} {
		dir := t.TempDir()
		path := filepath.Join(dir, "cube-v000001.seg")
		meta := []byte("schema-blob")
		src := writeTestSegment(t, path, meta)

		sf, err := Open(path, OpenOptions{Mmap: mmap, VerifyChunks: true})
		if err != nil {
			t.Fatal(err)
		}
		if string(sf.Meta()) != "schema-blob" {
			t.Fatalf("meta = %q", sf.Meta())
		}
		if sf.ChunkCap() != 4 || sf.Len() != 16 {
			t.Fatalf("cap=%d len=%d", sf.ChunkCap(), sf.Len())
		}

		// Attach as the tier of an empty store: every cell identical.
		dst := chunk.NewStore(src.Geometry())
		if err := dst.AttachTier(sf, 100); err != nil {
			t.Fatal(err)
		}
		if dst.Len() != src.Len() || dst.NumChunks() != src.NumChunks() {
			t.Fatalf("shape: Len %d/%d NumChunks %d/%d", dst.Len(), src.Len(), dst.NumChunks(), src.NumChunks())
		}
		for i := 0; i < 64; i++ {
			a, b := src.Get([]int{i}), dst.Get([]int{i})
			if math.IsNaN(a) != math.IsNaN(b) || (!math.IsNaN(a) && a != b) {
				t.Fatalf("mmap=%v cell %d: src %v dst %v", mmap, i, a, b)
			}
		}
		info := mustFault(t, dst)
		if !info.Durable {
			t.Fatal("segment fault not flagged durable")
		}
		if err := dst.CloseSpill(); err != nil {
			t.Fatal(err)
		}
	}
}

// mustFault reads chunks until one faults, returning its ReadInfo.
func mustFault(t *testing.T, s *chunk.Store) chunk.ReadInfo {
	t.Helper()
	for pass := 0; pass < 2; pass++ {
		for _, id := range s.ChunkIDs() {
			if _, info := s.ReadChunkInfo(id); info.Faulted {
				return info
			}
		}
	}
	t.Fatal("no read faulted through the tier")
	return chunk.ReadInfo{}
}

func TestSegmentBadChecksumFailsClosed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cube-v000001.seg")
	writeTestSegment(t, path, []byte("m"))

	// Flip one byte in the first chunk slot (page 2: header, meta, then
	// slots — meta is tiny so slots start at page 2).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), raw...)
	corrupt[2*PageSize+1] ^= 0xFF
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}

	// Up-front verification refuses the segment outright.
	if _, err := Open(path, OpenOptions{VerifyChunks: true}); err == nil {
		t.Fatal("VerifyChunks open of corrupt segment should fail")
	}
	// Lazy open succeeds (header/index intact) but the corrupt slot
	// errors on read instead of serving wrong cells.
	sf, err := Open(path, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	var sawErr bool
	for _, id := range sf.IDs() {
		if _, _, err := sf.ReadChunkAt(id); err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("corrupt slot read should error")
	}

	// Header corruption: refuse immediately.
	corrupt2 := append([]byte(nil), raw...)
	corrupt2[20] ^= 0x01
	if err := os.WriteFile(path, corrupt2, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, OpenOptions{}); err == nil {
		t.Fatal("header corruption should fail open")
	}

	// Truncation: refuse immediately.
	if err := os.WriteFile(path, raw[:len(raw)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, OpenOptions{}); err == nil {
		t.Fatal("truncated segment should fail open")
	}
}

func TestSegmentCreateAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c-v000001.seg")
	writeTestSegment(t, path, nil)
	// No temp droppings after a successful create.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	// Create into a missing directory fails without touching path.
	err := Create(filepath.Join(dir, "nope", "x.seg"), 4, nil, nil, func(int) *chunk.Chunk { return nil })
	if err == nil {
		t.Fatal("create in missing dir should fail")
	}
}

func TestSegmentCloneTierRefcount(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c-v000001.seg")
	src := writeTestSegment(t, path, nil)

	sf, err := Open(path, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a := chunk.NewStore(src.Geometry())
	if err := a.AttachTier(sf, 100); err != nil {
		t.Fatal(err)
	}
	b := a.Clone().(*chunk.Store)
	if !b.Pooled() {
		t.Fatal("clone of segment-backed store should stay pooled")
	}
	// Closing the original keeps the clone readable (shared refcount).
	if err := a.CloseSpill(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		want := src.Get([]int{i})
		got := b.Get([]int{i})
		if math.IsNaN(want) != math.IsNaN(got) || (!math.IsNaN(want) && want != got) {
			t.Fatalf("cell %d after original closed: %v vs %v", i, got, want)
		}
	}
	if err := b.CloseSpill(); err != nil {
		t.Fatal(err)
	}
	// The file is really closed now: a fresh read errors.
	if _, _, err := sf.ReadChunkAt(0); err == nil {
		t.Fatal("read after final close should fail")
	}
}

func TestManifestCommitAndLoad(t *testing.T) {
	dir := t.TempDir()

	// Empty dir: empty manifest, not recovered.
	m, rec, err := LoadManifest(dir)
	if err != nil || rec || len(m.Cubes) != 0 {
		t.Fatalf("fresh load: m=%+v rec=%v err=%v", m, rec, err)
	}

	m.Add("wf", CubeVersion{Version: 1, File: "wf-v000001.seg", Cells: 10})
	if err := m.Commit(dir); err != nil {
		t.Fatal(err)
	}
	m.Add("wf", CubeVersion{Version: 2, File: "wf-v000002.seg", Cells: 12})
	m.Add("paper", CubeVersion{Version: 1, File: "paper-v000001.seg", Cells: 5})
	if err := m.Commit(dir); err != nil {
		t.Fatal(err)
	}

	got, rec, err := LoadManifest(dir)
	if err != nil || rec {
		t.Fatalf("load: rec=%v err=%v", rec, err)
	}
	if lv, ok := got.Latest("wf"); !ok || lv.Version != 2 || lv.File != "wf-v000002.seg" {
		t.Fatalf("Latest(wf) = %+v %v", lv, ok)
	}
	if names := got.Names(); len(names) != 2 || names[0] != "paper" || names[1] != "wf" {
		t.Fatalf("Names = %v", names)
	}
	if vs := got.Versions("wf"); len(vs) != 2 || vs[0].Version != 1 || vs[1].Version != 2 {
		t.Fatalf("Versions(wf) = %+v", vs)
	}

	// Re-adding a version replaces in place.
	got.Add("wf", CubeVersion{Version: 2, File: "wf-v000002b.seg", Cells: 13})
	if vs := got.Versions("wf"); len(vs) != 2 || vs[1].File != "wf-v000002b.seg" {
		t.Fatalf("replace: %+v", vs)
	}
}

func TestManifestTornFailsClosed(t *testing.T) {
	dir := t.TempDir()
	m := NewManifest()
	m.Add("wf", CubeVersion{Version: 1, File: "wf-v000001.seg", Cells: 10})
	if err := m.Commit(dir); err != nil {
		t.Fatal(err)
	}
	m.Add("wf", CubeVersion{Version: 2, File: "wf-v000002.seg", Cells: 12})
	if err := m.Commit(dir); err != nil {
		t.Fatal(err)
	}

	live := filepath.Join(dir, ManifestName)
	raw, err := os.ReadFile(live)
	if err != nil {
		t.Fatal(err)
	}

	// Torn write: truncated live manifest recovers to the previous one
	// (version 1), refusing the half-committed version 2.
	if err := os.WriteFile(live, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	got, rec, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec {
		t.Fatal("torn manifest should report recovered")
	}
	if lv, ok := got.Latest("wf"); !ok || lv.Version != 1 {
		t.Fatalf("recovered Latest = %+v %v", lv, ok)
	}

	// Crash between the two Commit renames: live missing, prev holds
	// the old manifest.
	if err := os.Remove(live); err != nil {
		t.Fatal(err)
	}
	got, rec, err = LoadManifest(dir)
	if err != nil || !rec {
		t.Fatalf("prev-only load: rec=%v err=%v", rec, err)
	}
	if lv, ok := got.Latest("wf"); !ok || lv.Version != 1 {
		t.Fatalf("prev-only Latest = %+v %v", lv, ok)
	}

	// Both unusable: hard error, never a guessed catalog.
	if err := os.WriteFile(live, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName+".prev"), []byte("also torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadManifest(dir); err == nil {
		t.Fatal("both-corrupt load should fail")
	}

	// Foreign format version: rejected.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, ManifestName), []byte(`{"format_version": 99, "cubes": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadManifest(dir2); err == nil {
		t.Fatal("future format version should fail")
	}

	// Path traversal in a segment file name: rejected.
	dir3 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir3, ManifestName),
		[]byte(`{"format_version": 1, "cubes": {"x": [{"version": 1, "file": "../evil.seg", "cells": 1}]}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadManifest(dir3); err == nil {
		t.Fatal("relative-path segment file should fail validation")
	}
}

// TestSegmentV1MagicAccepted pins backward compatibility: a file
// stamped with the v01 magic (pre run-record format) still opens. Run
// records are a new record kind inside the unchanged container layout,
// so the only format delta v02 declares is codec capability — old files
// contain only pair records, which the codec still decodes.
func TestSegmentV1MagicAccepted(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cube-v000001.seg")
	src := writeTestSegment(t, path, []byte("m"))

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	copy(b[:8], MagicV1)
	binary.LittleEndian.PutUint32(b[72:76], crc32.ChecksumIEEE(b[:headerLen-4]))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	sf, err := Open(path, OpenOptions{VerifyChunks: true})
	if err != nil {
		t.Fatalf("v01-stamped segment rejected: %v", err)
	}
	defer sf.Close()
	for _, id := range src.ChunkIDs() {
		c, _, err := sf.ReadChunkAt(id)
		if err != nil {
			t.Fatalf("chunk %d: %v", id, err)
		}
		want := src.PeekChunk(id)
		if c.Len() != want.Len() {
			t.Fatalf("chunk %d: %d cells, want %d", id, c.Len(), want.Len())
		}
	}
}

// TestSegmentRunEncodedRoundTrip writes a segment from a run-encoded
// store and checks that tier faults come back still run-encoded (the
// run record decodes straight to the compressed representation — no
// dense detour) with every cell intact.
func TestSegmentRunEncodedRoundTrip(t *testing.T) {
	g := chunk.MustGeometry([]int{64}, []int{8})
	src := chunk.NewStore(g)
	for i := 0; i < 48; i++ { // long constant runs per chunk
		src.Set([]int{i}, float64(i/8+1))
	}
	if n := src.ForceRunEncodeAll(); n == 0 {
		t.Fatal("nothing run-encoded")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "cube-v000001.seg")
	err := Create(path, g.ChunkCap(), []byte("m"), src.ChunkIDs(), func(id int) *chunk.Chunk {
		return src.PeekChunk(id)
	})
	if err != nil {
		t.Fatal(err)
	}

	sf, err := Open(path, OpenOptions{VerifyChunks: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	for _, id := range src.ChunkIDs() {
		c, _, err := sf.ReadChunkAt(id)
		if err != nil {
			t.Fatalf("chunk %d: %v", id, err)
		}
		if src.PeekChunk(id).Rep() == chunk.RunEncoded && c.Rep() != chunk.RunEncoded {
			t.Fatalf("chunk %d faulted back as %v, want RunEncoded", id, c.Rep())
		}
	}

	dst := chunk.NewStore(g)
	if err := dst.AttachTier(sf, 100); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		a, b := src.Get([]int{i}), dst.Get([]int{i})
		if math.IsNaN(a) != math.IsNaN(b) || (!math.IsNaN(a) && a != b) {
			t.Fatalf("cell %d: src %v dst %v", i, a, b)
		}
	}
}
