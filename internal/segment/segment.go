// Package segment is the persistent storage tier: one immutable,
// checksummed, page-aligned segment file per published cube version,
// plus a crash-safe manifest (manifest.go) naming the versions a data
// directory holds. A segment file implements chunk.Tier read-only, so
// the buffer pool faults chunks straight off real storage — pin
// counts, LRU and fault-in dedup (the paper's §5.2 pebbling machinery)
// finally manage genuine I/O instead of simulated cost.
//
// File layout (all integers little-endian):
//
//	page 0        header: magic, geometry, region offsets, CRCs
//	page 1..      meta blob (opaque cube schema), page-aligned
//	...           chunk slots, one per non-empty chunk, page-aligned,
//	              each slot an EncodeChunk record
//	tail          slot index: 32-byte entries (id, cells, off, len, CRC)
//
// Every region is covered by a CRC-32: the header checks itself, the
// meta and index CRCs live in the header, and each slot's CRC lives in
// its index entry and is verified on every read (or all up front with
// OpenOptions.VerifyChunks). A segment that fails any check refuses to
// open — the caller falls back to an older version (fail closed)
// rather than serving corrupt cells.
//
// Write path: Create builds the file at <path>.tmp, fsyncs, renames
// into place and fsyncs the directory, so a crash mid-write never
// leaves a live *.seg truncated.
//
// Read path: pread by default; OpenOptions.Mmap maps the file instead
// (a runtime flag, no build tags — syscall.Mmap with a silent pread
// fallback when the platform refuses).
package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"

	"whatifolap/internal/chunk"
)

const (
	// Magic identifies a segment file (version in the last two bytes).
	// v02 segments may contain run-encoded chunk records (the
	// top-bit-flagged record kind EncodeChunk emits for run-encoded
	// chunks); v01 segments predate them. Open accepts both — the record
	// decoder distinguishes the kinds per slot — while Create always
	// stamps the current version.
	Magic = "WOSEGv02"
	// MagicV1 is the previous version's magic, still accepted by Open so
	// segment files written before run encoding restore unchanged.
	MagicV1 = "WOSEGv01"
	// PageSize aligns the meta blob and every chunk slot. 4 KiB matches
	// the common filesystem block, so one slot read touches no
	// neighbouring slot's pages.
	PageSize = 4096

	headerLen    = 76 // fixed fields incl. trailing header CRC
	indexEntrySz = 32
)

// slotEntry locates one chunk's record inside the segment.
type slotEntry struct {
	id    int
	cells int
	off   int64
	len   int64
	crc   uint32
}

// header is the decoded page-0 header.
type header struct {
	chunkCap int
	numSlots int
	metaOff  int64
	metaLen  int64
	indexOff int64
	indexLen int64
	fileSize int64
	metaCRC  uint32
	indexCRC uint32
}

func alignPage(off int64) int64 {
	if r := off % PageSize; r != 0 {
		return off + PageSize - r
	}
	return off
}

// Create writes a segment file atomically: the chunks named by ids
// (nil or empty ones are skipped), read through the given callback,
// plus an opaque meta blob (the cube schema). The file appears at path
// only after its contents are fully on disk; a crash mid-Create leaves
// at most a stale <path>.tmp.
func Create(path string, chunkCap int, meta []byte, ids []int, read func(id int) *chunk.Chunk) error {
	if chunkCap <= 0 {
		return fmt.Errorf("segment: chunk capacity must be positive, got %d", chunkCap)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	// Best-effort removal of the temp file on any failure path.
	defer os.Remove(tmp)
	defer f.Close()

	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)

	h := header{chunkCap: chunkCap, metaOff: PageSize, metaLen: int64(len(meta))}
	h.metaCRC = crc32.ChecksumIEEE(meta)
	if _, err := f.WriteAt(meta, h.metaOff); err != nil {
		return err
	}
	cursor := alignPage(h.metaOff + h.metaLen)

	entries := make([]slotEntry, 0, len(sorted))
	for _, id := range sorted {
		c := read(id)
		if c == nil || c.Len() == 0 {
			continue
		}
		rec := chunk.EncodeChunk(c)
		if _, err := f.WriteAt(rec, cursor); err != nil {
			return err
		}
		entries = append(entries, slotEntry{
			id:    id,
			cells: c.Len(),
			off:   cursor,
			len:   int64(len(rec)),
			crc:   crc32.ChecksumIEEE(rec),
		})
		cursor = alignPage(cursor + int64(len(rec)))
	}

	h.numSlots = len(entries)
	h.indexOff = cursor
	h.indexLen = int64(len(entries) * indexEntrySz)
	index := make([]byte, h.indexLen)
	for i, e := range entries {
		b := index[i*indexEntrySz:]
		binary.LittleEndian.PutUint32(b[0:4], uint32(e.id))
		binary.LittleEndian.PutUint32(b[4:8], uint32(e.cells))
		binary.LittleEndian.PutUint64(b[8:16], uint64(e.off))
		binary.LittleEndian.PutUint64(b[16:24], uint64(e.len))
		binary.LittleEndian.PutUint32(b[24:28], e.crc)
	}
	h.indexCRC = crc32.ChecksumIEEE(index)
	if _, err := f.WriteAt(index, h.indexOff); err != nil {
		return err
	}
	h.fileSize = h.indexOff + h.indexLen

	hb := make([]byte, PageSize)
	copy(hb, Magic)
	binary.LittleEndian.PutUint32(hb[8:12], PageSize)
	binary.LittleEndian.PutUint32(hb[12:16], uint32(h.chunkCap))
	binary.LittleEndian.PutUint32(hb[16:20], uint32(h.numSlots))
	binary.LittleEndian.PutUint64(hb[24:32], uint64(h.metaOff))
	binary.LittleEndian.PutUint64(hb[32:40], uint64(h.metaLen))
	binary.LittleEndian.PutUint64(hb[40:48], uint64(h.indexOff))
	binary.LittleEndian.PutUint64(hb[48:56], uint64(h.indexLen))
	binary.LittleEndian.PutUint64(hb[56:64], uint64(h.fileSize))
	binary.LittleEndian.PutUint32(hb[64:68], h.metaCRC)
	binary.LittleEndian.PutUint32(hb[68:72], h.indexCRC)
	binary.LittleEndian.PutUint32(hb[72:76], crc32.ChecksumIEEE(hb[:headerLen-4]))
	if _, err := f.WriteAt(hb, 0); err != nil {
		return err
	}

	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// OpenOptions tunes Open.
type OpenOptions struct {
	// Mmap maps the segment for reads instead of pread. Falls back to
	// pread silently when the platform refuses the mapping.
	Mmap bool
	// VerifyChunks checks every slot's CRC up front instead of on
	// first read — slower Open, earliest possible corruption report.
	VerifyChunks bool
}

// File is an open segment: an immutable, read-only chunk.Tier whose
// contents survive restart (Durable() == true). Safe for concurrent
// readers; the slot map is never mutated after Open.
type File struct {
	path     string
	meta     []byte
	chunkCap int
	slots    map[int]slotEntry

	f    *os.File
	data []byte // non-nil when mmap'd

	mu     sync.Mutex
	refs   int
	closed bool
}

// Open validates and opens a segment file. The header and index CRCs
// are always checked; slot CRCs are checked per read (and up front
// with VerifyChunks). Any mismatch fails the open — corrupt segments
// never serve.
func (o OpenOptions) open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			f.Close()
		}
	}()

	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	hb := make([]byte, headerLen)
	if _, err := f.ReadAt(hb, 0); err != nil {
		return nil, fmt.Errorf("segment %s: short header: %w", path, err)
	}
	if m := string(hb[:8]); m != Magic && m != MagicV1 {
		return nil, fmt.Errorf("segment %s: bad magic %q", path, hb[:8])
	}
	if got := binary.LittleEndian.Uint32(hb[72:76]); got != crc32.ChecksumIEEE(hb[:headerLen-4]) {
		return nil, fmt.Errorf("segment %s: header CRC mismatch", path)
	}
	if ps := binary.LittleEndian.Uint32(hb[8:12]); ps != PageSize {
		return nil, fmt.Errorf("segment %s: page size %d, want %d", path, ps, PageSize)
	}
	h := header{
		chunkCap: int(binary.LittleEndian.Uint32(hb[12:16])),
		numSlots: int(binary.LittleEndian.Uint32(hb[16:20])),
		metaOff:  int64(binary.LittleEndian.Uint64(hb[24:32])),
		metaLen:  int64(binary.LittleEndian.Uint64(hb[32:40])),
		indexOff: int64(binary.LittleEndian.Uint64(hb[40:48])),
		indexLen: int64(binary.LittleEndian.Uint64(hb[48:56])),
		fileSize: int64(binary.LittleEndian.Uint64(hb[56:64])),
		metaCRC:  binary.LittleEndian.Uint32(hb[64:68]),
		indexCRC: binary.LittleEndian.Uint32(hb[68:72]),
	}
	if h.fileSize > st.Size() {
		return nil, fmt.Errorf("segment %s: truncated: header says %d bytes, file has %d", path, h.fileSize, st.Size())
	}
	if h.indexLen != int64(h.numSlots*indexEntrySz) {
		return nil, fmt.Errorf("segment %s: index length %d does not fit %d slots", path, h.indexLen, h.numSlots)
	}

	meta := make([]byte, h.metaLen)
	if _, err := f.ReadAt(meta, h.metaOff); err != nil {
		return nil, fmt.Errorf("segment %s: meta read: %w", path, err)
	}
	if crc32.ChecksumIEEE(meta) != h.metaCRC {
		return nil, fmt.Errorf("segment %s: meta CRC mismatch", path)
	}
	index := make([]byte, h.indexLen)
	if _, err := f.ReadAt(index, h.indexOff); err != nil {
		return nil, fmt.Errorf("segment %s: index read: %w", path, err)
	}
	if crc32.ChecksumIEEE(index) != h.indexCRC {
		return nil, fmt.Errorf("segment %s: index CRC mismatch", path)
	}
	slots := make(map[int]slotEntry, h.numSlots)
	for i := 0; i < h.numSlots; i++ {
		b := index[i*indexEntrySz:]
		e := slotEntry{
			id:    int(binary.LittleEndian.Uint32(b[0:4])),
			cells: int(binary.LittleEndian.Uint32(b[4:8])),
			off:   int64(binary.LittleEndian.Uint64(b[8:16])),
			len:   int64(binary.LittleEndian.Uint64(b[16:24])),
			crc:   binary.LittleEndian.Uint32(b[24:28]),
		}
		if e.off < PageSize || e.off+e.len > h.fileSize {
			return nil, fmt.Errorf("segment %s: slot %d span [%d,%d) outside file", path, e.id, e.off, e.off+e.len)
		}
		slots[e.id] = e
	}

	sf := &File{
		path:     path,
		meta:     meta,
		chunkCap: h.chunkCap,
		slots:    slots,
		f:        f,
		refs:     1,
	}
	if o.Mmap {
		if data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED); err == nil {
			sf.data = data
		}
	}
	if o.VerifyChunks {
		for _, e := range slots {
			if _, err := sf.readSlot(e); err != nil {
				sf.closeLocked()
				return nil, err
			}
		}
	}
	ok = true
	return sf, nil
}

// Open opens a segment file with the given options.
func Open(path string, opts OpenOptions) (*File, error) { return opts.open(path) }

// Meta returns the opaque meta blob (the serialized cube schema).
func (sf *File) Meta() []byte { return sf.meta }

// ChunkCap returns the chunk capacity the segment was written with.
func (sf *File) ChunkCap() int { return sf.chunkCap }

// Path returns the file path the segment was opened from.
func (sf *File) Path() string { return sf.path }

// Mapped reports whether reads go through an mmap'd view.
func (sf *File) Mapped() bool { return sf.data != nil }

// readSlot fetches and CRC-checks one slot's record bytes.
func (sf *File) readSlot(e slotEntry) ([]byte, error) {
	var rec []byte
	if sf.data != nil {
		if e.off+e.len > int64(len(sf.data)) {
			return nil, fmt.Errorf("segment %s: slot %d beyond mapping", sf.path, e.id)
		}
		rec = sf.data[e.off : e.off+e.len]
	} else {
		rec = make([]byte, e.len)
		if _, err := sf.f.ReadAt(rec, e.off); err != nil {
			return nil, fmt.Errorf("segment %s: slot %d read: %w", sf.path, e.id, err)
		}
	}
	if crc32.ChecksumIEEE(rec) != e.crc {
		return nil, fmt.Errorf("segment %s: slot %d CRC mismatch", sf.path, e.id)
	}
	return rec, nil
}

// ReadChunkAt implements chunk.Tier. Every read re-verifies the slot
// CRC — a bit flip on disk surfaces as an error, never as a wrong
// cell. The modeled cost is 0: this is real I/O, measured by the
// buffer pool as fault wall time.
func (sf *File) ReadChunkAt(id int) (*chunk.Chunk, float64, error) {
	e, ok := sf.slots[id]
	if !ok {
		return nil, 0, nil
	}
	rec, err := sf.readSlot(e)
	if err != nil {
		return nil, 0, err
	}
	c, err := chunk.DecodeChunk(rec, sf.chunkCap)
	if err != nil {
		return nil, 0, fmt.Errorf("segment %s: slot %d: %w", sf.path, id, err)
	}
	return c, 0, nil
}

// WriteChunk implements chunk.Tier: segments are immutable.
func (sf *File) WriteChunk(int, *chunk.Chunk) error { return chunk.ErrTierReadOnly }

// Remove implements chunk.Tier: segments are immutable.
func (sf *File) Remove(int) error { return chunk.ErrTierReadOnly }

// Contains implements chunk.Tier.
func (sf *File) Contains(id int) bool {
	_, ok := sf.slots[id]
	return ok
}

// IDs implements chunk.Tier.
func (sf *File) IDs() []int {
	ids := make([]int, 0, len(sf.slots))
	for id := range sf.slots {
		ids = append(ids, id)
	}
	return ids
}

// Cells implements chunk.Tier: slot sizes come from the index, no I/O.
func (sf *File) Cells(id int) int {
	if e, ok := sf.slots[id]; ok {
		return e.cells
	}
	return 0
}

// Len implements chunk.Tier.
func (sf *File) Len() int { return len(sf.slots) }

// Sync implements chunk.Tier. Segments are written synced and never
// change afterwards.
func (sf *File) Sync() error { return nil }

// ReadOnly implements chunk.Tier.
func (sf *File) ReadOnly() bool { return true }

// Durable implements chunk.DurableTier.
func (sf *File) Durable() bool { return true }

// CloneTier implements chunk.CloneableTier. A segment is immutable, so
// the clone is the segment itself with another reference: Store.Clone
// on a segment-backed cube shares the file, and the last Close
// releases it.
func (sf *File) CloneTier() (chunk.Tier, bool) {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	if sf.closed {
		return nil, false
	}
	sf.refs++
	return sf, true
}

// Close implements chunk.Tier, dropping one reference; the file (and
// any mapping) is released when the last reference closes.
func (sf *File) Close() error {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	sf.refs--
	if sf.refs > 0 || sf.closed {
		return nil
	}
	return sf.closeLocked()
}

func (sf *File) closeLocked() error {
	sf.closed = true
	var err error
	if sf.data != nil {
		err = syscall.Munmap(sf.data)
		sf.data = nil
	}
	if cerr := sf.f.Close(); err == nil {
		err = cerr
	}
	return err
}
