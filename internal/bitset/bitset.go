// Package bitset provides a compact bit set used to represent validity
// sets of varying-dimension member instances over the leaf members of a
// parameter dimension.
//
// A validity set VS(d) (paper §2) is the set of parameter-dimension leaf
// members over which a member instance d is valid. Parameter leaves are
// identified by their ordinal (0-based position in the dimension's leaf
// order, which for ordered parameter dimensions such as Time coincides
// with temporal order).
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-universe bit set. The zero value is an empty set over an
// empty universe; use New to create a set over a non-trivial universe.
type Set struct {
	n     int // universe size
	words []uint64
}

// New returns an empty set over the universe {0, ..., n-1}.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative universe size %d", n))
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromSlice returns a set over {0,...,n-1} containing the given ordinals.
// Out-of-range ordinals cause a panic, as they indicate a programming
// error in ordinal assignment.
func FromSlice(n int, ordinals []int) *Set {
	s := New(n)
	for _, o := range ordinals {
		s.Add(o)
	}
	return s
}

// Universe returns the size of the set's universe.
func (s *Set) Universe() int { return s.n }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: ordinal %d out of universe [0,%d)", i, s.n))
	}
}

// Add inserts ordinal i into the set.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes ordinal i from the set.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether ordinal i is in the set.
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Len returns the number of ordinals in the set.
func (s *Set) Len() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsEmpty reports whether the set has no elements.
func (s *Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Equal reports whether s and t contain the same ordinals over the same
// universe.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

func (s *Set) sameUniverse(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: universe mismatch %d vs %d", s.n, t.n))
	}
}

// UnionWith adds every element of t to s.
func (s *Set) UnionWith(t *Set) {
	s.sameUniverse(t)
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// IntersectWith removes from s every element not in t.
func (s *Set) IntersectWith(t *Set) {
	s.sameUniverse(t)
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// SubtractWith removes every element of t from s.
func (s *Set) SubtractWith(t *Set) {
	s.sameUniverse(t)
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// Union returns a new set s ∪ t.
func (s *Set) Union(t *Set) *Set {
	c := s.Clone()
	c.UnionWith(t)
	return c
}

// Intersect returns a new set s ∩ t.
func (s *Set) Intersect(t *Set) *Set {
	c := s.Clone()
	c.IntersectWith(t)
	return c
}

// Subtract returns a new set s \ t.
func (s *Set) Subtract(t *Set) *Set {
	c := s.Clone()
	c.SubtractWith(t)
	return c
}

// Intersects reports whether s ∩ t is non-empty.
func (s *Set) Intersects(t *Set) bool {
	s.sameUniverse(t)
	for i := range s.words {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// AddRange inserts all ordinals in the half-open interval [lo, hi).
// Intervals of this form are the workhorse of forward-perspective
// stretches [pᵢ, pᵢ₊₁).
func (s *Set) AddRange(lo, hi int) {
	if lo < 0 || hi > s.n || lo > hi {
		panic(fmt.Sprintf("bitset: bad range [%d,%d) for universe %d", lo, hi, s.n))
	}
	for i := lo; i < hi; i++ {
		// Fill whole words where possible.
		if i%wordBits == 0 && i+wordBits <= hi {
			s.words[i/wordBits] = ^uint64(0)
			i += wordBits - 1
			continue
		}
		s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
	}
}

// Min returns the smallest ordinal in the set, or -1 if empty.
func (s *Set) Min() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Max returns the largest ordinal in the set, or -1 if empty.
func (s *Set) Max() int {
	for wi := len(s.words) - 1; wi >= 0; wi-- {
		if w := s.words[wi]; w != 0 {
			return wi*wordBits + wordBits - 1 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// ForEach calls fn for every ordinal in the set in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &^= 1 << uint(b)
		}
	}
}

// Slice returns the ordinals in the set in ascending order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders the set as a sorted ordinal list, e.g. "{0, 3, 5}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
