package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	s := New(10)
	if !s.IsEmpty() {
		t.Fatal("new set should be empty")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	if s.Min() != -1 || s.Max() != -1 {
		t.Fatalf("Min/Max of empty = %d/%d, want -1/-1", s.Min(), s.Max())
	}
	if s.Universe() != 10 {
		t.Fatalf("Universe = %d, want 10", s.Universe())
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130) // spans three words
	for _, i := range []int{0, 63, 64, 65, 129} {
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("Contains(%d) = false after Add", i)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) = true after Remove")
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
}

func TestContainsOutOfRange(t *testing.T) {
	s := New(4)
	if s.Contains(-1) || s.Contains(4) || s.Contains(100) {
		t.Fatal("Contains should be false out of universe")
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range should panic")
		}
	}()
	New(4).Add(4)
}

func TestNewPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) should panic")
		}
	}()
	New(-1)
}

func TestMinMax(t *testing.T) {
	s := FromSlice(200, []int{17, 64, 191})
	if s.Min() != 17 {
		t.Fatalf("Min = %d, want 17", s.Min())
	}
	if s.Max() != 191 {
		t.Fatalf("Max = %d, want 191", s.Max())
	}
}

func TestAddRange(t *testing.T) {
	for _, tc := range []struct{ lo, hi int }{
		{0, 0}, {0, 12}, {5, 70}, {63, 65}, {0, 256}, {100, 200},
	} {
		s := New(256)
		s.AddRange(tc.lo, tc.hi)
		if s.Len() != tc.hi-tc.lo {
			t.Fatalf("AddRange(%d,%d): Len = %d, want %d", tc.lo, tc.hi, s.Len(), tc.hi-tc.lo)
		}
		for i := 0; i < 256; i++ {
			want := i >= tc.lo && i < tc.hi
			if s.Contains(i) != want {
				t.Fatalf("AddRange(%d,%d): Contains(%d) = %v, want %v", tc.lo, tc.hi, i, s.Contains(i), want)
			}
		}
	}
}

func TestAddRangePanicsBad(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad range should panic")
		}
	}()
	New(10).AddRange(5, 11)
}

func TestSetAlgebra(t *testing.T) {
	a := FromSlice(100, []int{1, 2, 3, 64})
	b := FromSlice(100, []int{3, 64, 99})
	if got := a.Union(b).Slice(); len(got) != 5 {
		t.Fatalf("Union = %v", got)
	}
	if got := a.Intersect(b).Slice(); len(got) != 2 || got[0] != 3 || got[1] != 64 {
		t.Fatalf("Intersect = %v, want [3 64]", got)
	}
	if got := a.Subtract(b).Slice(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Subtract = %v, want [1 2]", got)
	}
	if !a.Intersects(b) {
		t.Fatal("Intersects = false, want true")
	}
	c := FromSlice(100, []int{50})
	if a.Intersects(c) {
		t.Fatal("Intersects disjoint = true, want false")
	}
}

func TestUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("universe mismatch should panic")
		}
	}()
	New(10).UnionWith(New(11))
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice(10, []int{1, 2})
	b := a.Clone()
	b.Add(5)
	if a.Contains(5) {
		t.Fatal("Clone is not independent")
	}
	if !a.Equal(FromSlice(10, []int{1, 2})) {
		t.Fatal("original mutated")
	}
}

func TestEqual(t *testing.T) {
	a := FromSlice(10, []int{1})
	if a.Equal(FromSlice(11, []int{1})) {
		t.Fatal("different universes should not be Equal")
	}
	if !a.Equal(FromSlice(10, []int{1})) {
		t.Fatal("equal sets reported unequal")
	}
}

func TestForEachOrder(t *testing.T) {
	s := FromSlice(300, []int{299, 0, 150, 63, 64})
	got := s.Slice()
	want := []int{0, 63, 64, 150, 299}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
}

func TestString(t *testing.T) {
	if got := FromSlice(10, []int{1, 3}).String(); got != "{1, 3}" {
		t.Fatalf("String = %q, want {1, 3}", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Fatalf("String = %q, want {}", got)
	}
}

// randomSet builds a reproducible random set for property tests.
func randomSet(r *rand.Rand, n int) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			s.Add(i)
		}
	}
	return s
}

func TestQuickAlgebraLaws(t *testing.T) {
	const n = 193
	cfg := &quick.Config{MaxCount: 200}
	// De Morgan-ish law: |A ∪ B| = |A| + |B| − |A ∩ B|.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r, n), randomSet(r, n)
		return a.Union(b).Len() == a.Len()+b.Len()-a.Intersect(b).Len()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	// (A \ B) ∩ B = ∅ and (A \ B) ∪ (A ∩ B) = A.
	g := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r, n), randomSet(r, n)
		diff := a.Subtract(b)
		if diff.Intersects(b) {
			return false
		}
		return diff.Union(a.Intersect(b)).Equal(a)
	}
	if err := quick.Check(g, cfg); err != nil {
		t.Error(err)
	}
	// Union is commutative and associative.
	h := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomSet(r, n), randomSet(r, n), randomSet(r, n)
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		return a.Union(b).Union(c).Equal(a.Union(b.Union(c)))
	}
	if err := quick.Check(h, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickAddRangeMatchesLoop(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		lo := r.Intn(n)
		hi := lo + r.Intn(n-lo+1)
		fast := New(n)
		fast.AddRange(lo, hi)
		slow := New(n)
		for i := lo; i < hi; i++ {
			slow.Add(i)
		}
		return fast.Equal(slow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickMinMaxConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSet(r, 257)
		sl := s.Slice()
		if len(sl) == 0 {
			return s.Min() == -1 && s.Max() == -1
		}
		return s.Min() == sl[0] && s.Max() == sl[len(sl)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnionWith(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randomSet(r, 4096)
	y := randomSet(r, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.UnionWith(y)
	}
}
