package cube

import (
	"testing"

	"whatifolap/internal/dimension"
)

// smallSchema builds a 3-dimensional test cube: Product (hierarchy),
// Time (ordered), Measures.
func smallSchema(t testing.TB) *Cube {
	t.Helper()
	prod := dimension.New("Product", false)
	prod.MustAdd("", "Audio")
	prod.MustAdd("Audio", "Radio")
	prod.MustAdd("Audio", "CD")
	prod.MustAdd("", "Video")
	prod.MustAdd("Video", "TV")

	tim := dimension.New("Time", true)
	tim.MustAdd("", "Q1")
	tim.MustAdd("Q1", "Jan")
	tim.MustAdd("Q1", "Feb")
	tim.MustAdd("", "Q2")
	tim.MustAdd("Q2", "Mar")

	meas := dimension.New("Measures", false)
	meas.MarkMeasure()
	meas.MustAdd("", "Sales")
	meas.MustAdd("", "COGS")
	meas.MustAdd("", "Margin")

	return New(prod, tim, meas)
}

func ids(c *Cube, refs ...string) []dimension.MemberID {
	out := make([]dimension.MemberID, len(refs))
	for i, r := range refs {
		out[i] = c.Dim(i).MustLookup(r)
	}
	return out
}

func TestCubeLeafAndDerivedCells(t *testing.T) {
	c := smallSchema(t)
	leaf := ids(c, "Radio", "Jan", "Sales")
	if !c.IsLeafCell(leaf) {
		t.Fatal("Radio/Jan/Sales should be a leaf cell")
	}
	c.SetValue(leaf, 100)
	if got := c.Value(leaf); got != 100 {
		t.Fatalf("Value = %v, want 100", got)
	}
	nonLeaf := ids(c, "Audio", "Jan", "Sales")
	if c.IsLeafCell(nonLeaf) {
		t.Fatal("Audio/Jan/Sales should be non-leaf")
	}
	if !IsNull(c.Value(nonLeaf)) {
		t.Fatal("unmaterialized derived cell should be Null")
	}
	c.SetValue(nonLeaf, 250)
	if got := c.Value(nonLeaf); got != 250 {
		t.Fatalf("materialized derived Value = %v, want 250", got)
	}
	c.SetValue(nonLeaf, Null)
	if !IsNull(c.Value(nonLeaf)) {
		t.Fatal("clearing derived cell failed")
	}
}

func TestOrdinalsRoundTrip(t *testing.T) {
	c := smallSchema(t)
	leaf := ids(c, "CD", "Mar", "COGS")
	addr, ok := c.Ordinals(leaf)
	if !ok {
		t.Fatal("Ordinals of leaf tuple failed")
	}
	back := c.MemberTuple(addr)
	for i := range leaf {
		if back[i] != leaf[i] {
			t.Fatalf("MemberTuple(Ordinals) = %v, want %v", back, leaf)
		}
	}
	if _, ok := c.Ordinals(ids(c, "Audio", "Jan", "Sales")); ok {
		t.Fatal("Ordinals should fail for non-leaf tuple")
	}
}

func TestDimLookupHelpers(t *testing.T) {
	c := smallSchema(t)
	if c.DimIndex("Time") != 1 {
		t.Fatalf("DimIndex(Time) = %d", c.DimIndex("Time"))
	}
	if c.DimIndex("Nope") != -1 {
		t.Fatal("DimIndex of unknown should be -1")
	}
	if c.DimByName("Measures") == nil || c.DimByName("Nope") != nil {
		t.Fatal("DimByName mismatch")
	}
}

func TestRollupSumSkipsNull(t *testing.T) {
	c := smallSchema(t)
	c.SetValue(ids(c, "Radio", "Jan", "Sales"), 10)
	c.SetValue(ids(c, "CD", "Jan", "Sales"), 20)
	// TV/Jan/Sales left Null.
	got, err := c.Rules().EvalCell(c, c, ids(c, "Product", "Jan", "Sales"))
	if err != nil {
		t.Fatal(err)
	}
	if got != 30 {
		t.Fatalf("rollup = %v, want 30", got)
	}
	// All-null rollup is Null.
	v, err := c.Rules().EvalCell(c, c, ids(c, "Video", "Jan", "Sales"))
	if err != nil {
		t.Fatal(err)
	}
	if !IsNull(v) {
		t.Fatalf("all-null rollup = %v, want Null", v)
	}
}

func TestRollupMultiDim(t *testing.T) {
	c := smallSchema(t)
	c.SetValue(ids(c, "Radio", "Jan", "Sales"), 1)
	c.SetValue(ids(c, "Radio", "Feb", "Sales"), 2)
	c.SetValue(ids(c, "CD", "Jan", "Sales"), 4)
	c.SetValue(ids(c, "TV", "Mar", "Sales"), 8)
	got, err := c.Rules().EvalCell(c, c, ids(c, "Product", "Time", "Sales"))
	if err != nil {
		t.Fatal(err)
	}
	if got != 15 {
		t.Fatalf("grand total = %v, want 15", got)
	}
	q1, err := c.Rules().EvalCell(c, c, ids(c, "Audio", "Q1", "Sales"))
	if err != nil {
		t.Fatal(err)
	}
	if q1 != 7 {
		t.Fatalf("Audio/Q1 = %v, want 7", q1)
	}
}

func TestFormulaRule(t *testing.T) {
	c := smallSchema(t)
	c.Rules().MustAddFormula("Measures", "Margin", "Sales - COGS")
	c.SetValue(ids(c, "Radio", "Jan", "Sales"), 100)
	c.SetValue(ids(c, "Radio", "Jan", "COGS"), 60)
	got, err := c.Rules().EvalCell(c, c, ids(c, "Radio", "Jan", "Margin"))
	if err != nil {
		t.Fatal(err)
	}
	if got != 40 {
		t.Fatalf("Margin = %v, want 40", got)
	}
	// Formula at aggregate level: Sales and COGS roll up first.
	c.SetValue(ids(c, "CD", "Jan", "Sales"), 50)
	c.SetValue(ids(c, "CD", "Jan", "COGS"), 20)
	agg, err := c.Rules().EvalCell(c, c, ids(c, "Audio", "Jan", "Margin"))
	if err != nil {
		t.Fatal(err)
	}
	if agg != 70 {
		t.Fatalf("Audio Margin = %v, want (150-80)=70", agg)
	}
}

func TestScopedFormulaWins(t *testing.T) {
	c := smallSchema(t)
	// General rule plus a scoped override for Audio products
	// (paper's "For Market = East, Margin = 0.93*Sales - COGS").
	c.Rules().MustAddFormula("Measures", "Margin", "Sales - COGS")
	c.Rules().MustAddFormula("Measures", "Margin", "0.5*Sales - COGS",
		ScopeCond{Dim: "Product", Member: "Audio"})
	c.SetValue(ids(c, "Radio", "Jan", "Sales"), 100)
	c.SetValue(ids(c, "Radio", "Jan", "COGS"), 10)
	c.SetValue(ids(c, "TV", "Jan", "Sales"), 100)
	c.SetValue(ids(c, "TV", "Jan", "COGS"), 10)
	radio, err := c.Rules().EvalCell(c, c, ids(c, "Radio", "Jan", "Margin"))
	if err != nil {
		t.Fatal(err)
	}
	if radio != 40 {
		t.Fatalf("scoped Margin = %v, want 40", radio)
	}
	tv, err := c.Rules().EvalCell(c, c, ids(c, "TV", "Jan", "Margin"))
	if err != nil {
		t.Fatal(err)
	}
	if tv != 90 {
		t.Fatalf("general Margin = %v, want 90", tv)
	}
}

func TestFormulaNullPropagation(t *testing.T) {
	c := smallSchema(t)
	c.Rules().MustAddFormula("Measures", "Margin", "Sales - COGS")
	c.SetValue(ids(c, "Radio", "Jan", "Sales"), 100)
	// COGS missing -> Margin is Null.
	got, err := c.Rules().EvalCell(c, c, ids(c, "Radio", "Jan", "Margin"))
	if err != nil {
		t.Fatal(err)
	}
	if !IsNull(got) {
		t.Fatalf("Margin with Null operand = %v, want Null", got)
	}
}

func TestDivisionByZeroIsNull(t *testing.T) {
	c := smallSchema(t)
	c.Rules().MustAddFormula("Measures", "Margin", "Sales / COGS")
	c.SetValue(ids(c, "Radio", "Jan", "Sales"), 100)
	c.SetValue(ids(c, "Radio", "Jan", "COGS"), 0)
	got, err := c.Rules().EvalCell(c, c, ids(c, "Radio", "Jan", "Margin"))
	if err != nil {
		t.Fatal(err)
	}
	if !IsNull(got) {
		t.Fatalf("x/0 = %v, want Null", got)
	}
}

func TestCyclicRulesFail(t *testing.T) {
	c := smallSchema(t)
	c.Rules().MustAddFormula("Measures", "Margin", "Sales")
	c.Rules().MustAddFormula("Measures", "Sales", "Margin")
	_, err := c.Rules().EvalCell(c, c, ids(c, "Radio", "Jan", "Margin"))
	if err == nil {
		t.Fatal("cyclic rules should error")
	}
}

func TestAggOverrides(t *testing.T) {
	c := smallSchema(t)
	c.Rules().SetAgg("Sales", AggMax)
	c.SetValue(ids(c, "Radio", "Jan", "Sales"), 10)
	c.SetValue(ids(c, "CD", "Jan", "Sales"), 30)
	got, err := c.Rules().EvalCell(c, c, ids(c, "Audio", "Jan", "Sales"))
	if err != nil {
		t.Fatal(err)
	}
	if got != 30 {
		t.Fatalf("max rollup = %v, want 30", got)
	}
	c.Rules().SetAgg("Sales", AggAvg)
	got, _ = c.Rules().EvalCell(c, c, ids(c, "Audio", "Jan", "Sales"))
	if got != 20 {
		t.Fatalf("avg rollup = %v, want 20", got)
	}
	c.Rules().SetAgg("Sales", AggMin)
	got, _ = c.Rules().EvalCell(c, c, ids(c, "Audio", "Jan", "Sales"))
	if got != 10 {
		t.Fatalf("min rollup = %v, want 10", got)
	}
	c.Rules().SetAgg("Sales", AggCount)
	got, _ = c.Rules().EvalCell(c, c, ids(c, "Audio", "Jan", "Sales"))
	if got != 2 {
		t.Fatalf("count rollup = %v, want 2", got)
	}
}

func TestEvalOnSeparateDataCube(t *testing.T) {
	// E(C1, C2): rule definitions from C1, values from C2 (paper §4.3).
	c1 := smallSchema(t)
	c2 := c1.Clone()
	c1.SetValue(ids(c1, "Radio", "Jan", "Sales"), 1)
	c2.SetValue(ids(c2, "Radio", "Jan", "Sales"), 100)
	got, err := c1.Rules().EvalCell(c1, c2, ids(c1, "Audio", "Jan", "Sales"))
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Fatalf("eval over C2 = %v, want 100 (C2's data)", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := smallSchema(t)
	leaf := ids(c, "Radio", "Jan", "Sales")
	c.SetValue(leaf, 5)
	d := c.Clone()
	d.SetValue(leaf, 6)
	if c.Value(leaf) != 5 {
		t.Fatal("clone mutation leaked")
	}
	if c.NumCells() != 1 || d.NumCells() != 1 {
		t.Fatalf("NumCells = %d/%d, want 1/1", c.NumCells(), d.NumCells())
	}
}

func TestBindingRegistration(t *testing.T) {
	c := smallSchema(t)
	b := dimension.NewBinding(c.Dim(0), c.Dim(1))
	if err := c.AddBinding(b); err != nil {
		t.Fatalf("AddBinding: %v", err)
	}
	if c.BindingFor("Product") != b {
		t.Fatal("BindingFor failed")
	}
	if c.BindingFor("Time") != nil {
		t.Fatal("BindingFor(Time) should be nil")
	}
	// Foreign dimension rejected.
	other := dimension.New("Other", false)
	other.MustAdd("", "x")
	if err := c.AddBinding(dimension.NewBinding(other, c.Dim(1))); err == nil {
		t.Fatal("binding with foreign dimension should fail")
	}
}

func TestDerivedCellsIteration(t *testing.T) {
	c := smallSchema(t)
	c.SetValue(ids(c, "Audio", "Jan", "Sales"), 7)
	n := 0
	c.DerivedCells(func(got []dimension.MemberID, v float64) bool {
		n++
		if v != 7 {
			t.Fatalf("derived v = %v", v)
		}
		return true
	})
	if n != 1 {
		t.Fatalf("DerivedCells visited %d, want 1", n)
	}
}
