package cube

import "testing"

// FuzzParseExpr asserts the rule-expression parser never panics.
func FuzzParseExpr(f *testing.F) {
	for _, seed := range []string{
		"Sales - COGS", "0.93*Sales - COGS", "[Margin]/[COGS] * 100",
		"-(a + b) * 2e3", "((((", "[", "[].[x]", "1..2", "a/0",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseExpr(src)
		if err == nil && e == nil {
			t.Fatal("nil expression without error")
		}
		if err == nil {
			_ = e.String() // stringer must not panic either
		}
	})
}
