package cube

import (
	"fmt"

	"whatifolap/internal/dimension"
)

// MaterializeAggregates evaluates and stores the derived cells for the
// cross product of the given member sets (one per dimension, in schema
// order; an empty set means that dimension's leaf members). Cells whose
// every coordinate is a leaf are skipped — they are base cells. It
// returns the number of cells materialized.
//
// This mirrors the aggregation-creation step of the paper's testbed
// ("after creation of required aggregations the disk footprint of the
// cube is 20.2G"): materialized values answer non-leaf reads directly —
// the rule engine returns them without recomputation — and correspond
// to non-visual semantics until rebuilt. After leaf updates, call
// ClearAggregates and re-materialize.
func (c *Cube) MaterializeAggregates(sets ...[]dimension.MemberID) (int, error) {
	if len(sets) != len(c.dims) {
		return 0, fmt.Errorf("cube: %d member sets for %d dimensions", len(sets), len(c.dims))
	}
	expanded := make([][]dimension.MemberID, len(sets))
	for i, s := range sets {
		if len(s) == 0 {
			expanded[i] = append([]dimension.MemberID(nil), c.dims[i].Leaves()...)
			continue
		}
		for _, id := range s {
			if id < 0 || int(id) >= c.dims[i].NumMembers() {
				return 0, fmt.Errorf("cube: member %d outside dimension %s", id, c.dims[i].Name())
			}
		}
		expanded[i] = s
	}
	n := 0
	ids := make([]dimension.MemberID, len(c.dims))
	var walk func(dim int) error
	walk = func(dim int) error {
		if dim == len(c.dims) {
			if c.IsLeafCell(ids) {
				return nil
			}
			v, err := c.rules.EvalCell(c, c, ids)
			if err != nil {
				return err
			}
			if !IsNull(v) {
				c.SetValue(ids, v)
				n++
			}
			return nil
		}
		for _, id := range expanded[dim] {
			ids[dim] = id
			if err := walk(dim + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return n, err
	}
	return n, nil
}

// ClearAggregates drops every materialized derived cell, forcing
// subsequent non-leaf reads to recompute from base cells.
func (c *Cube) ClearAggregates() int {
	n := len(c.derived)
	c.derived = make(map[string]float64)
	return n
}

// NumAggregates returns the number of materialized derived cells.
func (c *Cube) NumAggregates() int { return len(c.derived) }
