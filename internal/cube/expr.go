package cube

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Expr is a rule expression over cell values, e.g. the paper's
// "Margin = Sales - COGS" or "0.93 * Sales - COGS". References name
// members (normally measures); evaluation substitutes the referenced
// member for the rule's target coordinate and reads the resulting cell.
type Expr interface {
	exprNode()
	String() string
}

// Const is a numeric literal.
type Const struct{ V float64 }

// Ref references a member, optionally qualified with a dimension name
// ("Measures.Sales"). Unqualified references resolve in the rule's
// target dimension.
type Ref struct {
	Dim    string // optional dimension name
	Member string
}

// Unary is a unary minus.
type Unary struct{ X Expr }

// Binary is an arithmetic operation: one of + - * /.
type Binary struct {
	Op   byte
	L, R Expr
}

func (Const) exprNode()  {}
func (Ref) exprNode()    {}
func (Unary) exprNode()  {}
func (Binary) exprNode() {}

func (c Const) String() string { return strconv.FormatFloat(c.V, 'g', -1, 64) }
func (r Ref) String() string {
	if r.Dim != "" {
		return "[" + r.Dim + "].[" + r.Member + "]"
	}
	return "[" + r.Member + "]"
}
func (u Unary) String() string { return "-(" + u.X.String() + ")" }
func (b Binary) String() string {
	return "(" + b.L.String() + " " + string(b.Op) + " " + b.R.String() + ")"
}

// ParseExpr parses a rule expression. The grammar is
//
//	expr   := term  (('+'|'-') term)*
//	term   := factor (('*'|'/') factor)*
//	factor := number | ref | '(' expr ')' | '-' factor
//	ref    := ident | '[' name ']' ( '.' '[' name ']' )?
//
// where a two-part bracketed reference is dimension.member.
func ParseExpr(src string) (Expr, error) {
	p := &exprParser{src: src}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("cube: trailing input %q in expression %q", p.src[p.pos:], src)
	}
	return e, nil
}

// MustParseExpr is ParseExpr that panics on error; for statically known
// rules in tests and examples.
func MustParseExpr(src string) Expr {
	e, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return e
}

type exprParser struct {
	src string
	pos int
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *exprParser) parseExpr() (Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		op := p.peek()
		if op != '+' && op != '-' {
			return l, nil
		}
		p.pos++
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
}

func (p *exprParser) parseTerm() (Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		op := p.peek()
		if op != '*' && op != '/' {
			return l, nil
		}
		p.pos++
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
}

func (p *exprParser) parseFactor() (Expr, error) {
	p.skipSpace()
	switch c := p.peek(); {
	case c == 0:
		return nil, fmt.Errorf("cube: unexpected end of expression %q", p.src)
	case c == '-':
		p.pos++
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return Unary{X: x}, nil
	case c == '(':
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, fmt.Errorf("cube: missing ')' in expression %q", p.src)
		}
		p.pos++
		return e, nil
	case c == '[':
		return p.parseBracketRef()
	case c >= '0' && c <= '9' || c == '.':
		return p.parseNumber()
	case isIdentStart(rune(c)):
		start := p.pos
		for p.pos < len(p.src) && isIdentPart(rune(p.src[p.pos])) {
			p.pos++
		}
		return Ref{Member: p.src[start:p.pos]}, nil
	default:
		return nil, fmt.Errorf("cube: unexpected character %q at %d in expression %q", c, p.pos, p.src)
	}
}

func (p *exprParser) parseNumber() (Expr, error) {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' {
			p.pos++
			continue
		}
		if (c == '+' || c == '-') && p.pos > start && (p.src[p.pos-1] == 'e' || p.src[p.pos-1] == 'E') {
			p.pos++
			continue
		}
		break
	}
	v, err := strconv.ParseFloat(p.src[start:p.pos], 64)
	if err != nil {
		return nil, fmt.Errorf("cube: bad number %q in expression %q", p.src[start:p.pos], p.src)
	}
	return Const{V: v}, nil
}

func (p *exprParser) parseBracketRef() (Expr, error) {
	first, err := p.bracketName()
	if err != nil {
		return nil, err
	}
	save := p.pos
	p.skipSpace()
	if p.peek() == '.' {
		p.pos++
		p.skipSpace()
		if p.peek() == '[' {
			second, err := p.bracketName()
			if err != nil {
				return nil, err
			}
			return Ref{Dim: first, Member: second}, nil
		}
		p.pos = save
	}
	return Ref{Member: first}, nil
}

func (p *exprParser) bracketName() (string, error) {
	if p.peek() != '[' {
		return "", fmt.Errorf("cube: expected '[' at %d in %q", p.pos, p.src)
	}
	p.pos++
	end := strings.IndexByte(p.src[p.pos:], ']')
	if end < 0 {
		return "", fmt.Errorf("cube: unterminated '[' in expression %q", p.src)
	}
	name := p.src[p.pos : p.pos+end]
	p.pos += end + 1
	if name == "" {
		return "", fmt.Errorf("cube: empty bracketed name in expression %q", p.src)
	}
	return name, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '%'
}
