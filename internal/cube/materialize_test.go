package cube

import (
	"testing"

	"whatifolap/internal/dimension"
)

func TestMaterializeAggregates(t *testing.T) {
	c := smallSchema(t)
	c.SetValue(ids(c, "Radio", "Jan", "Sales"), 10)
	c.SetValue(ids(c, "CD", "Feb", "Sales"), 20)
	c.SetValue(ids(c, "TV", "Mar", "Sales"), 40)

	prod, tim := c.Dim(0), c.Dim(1)
	// Materialize (product groups) × (quarters) × (leaf measures).
	n, err := c.MaterializeAggregates(
		prod.LevelMembers(1), // Audio, Video
		tim.LevelMembers(1),  // Q1, Q2
		nil,                  // leaf measures
	)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing materialized")
	}
	if c.NumAggregates() != n {
		t.Fatalf("NumAggregates = %d, want %d", c.NumAggregates(), n)
	}
	// The stored aggregate answers directly.
	audioQ1 := ids(c, "Audio", "Q1", "Sales")
	if got := c.Value(audioQ1); got != 30 {
		t.Fatalf("materialized Audio/Q1 = %v, want 30", got)
	}
	got, err := c.Rules().EvalCell(c, c, audioQ1)
	if err != nil || got != 30 {
		t.Fatalf("EvalCell over materialized = %v, %v; want 30", got, err)
	}

	// Materialized values are a snapshot: after a leaf update they are
	// stale until cleared.
	c.SetValue(ids(c, "Radio", "Jan", "Sales"), 100)
	got, _ = c.Rules().EvalCell(c, c, audioQ1)
	if got != 30 {
		t.Fatalf("stale aggregate should still answer: %v", got)
	}
	if cleared := c.ClearAggregates(); cleared != n {
		t.Fatalf("ClearAggregates = %d, want %d", cleared, n)
	}
	got, _ = c.Rules().EvalCell(c, c, audioQ1)
	if got != 120 {
		t.Fatalf("after clear, recomputed Audio/Q1 = %v, want 120", got)
	}
}

func TestMaterializeSkipsAllNullAndLeaves(t *testing.T) {
	c := smallSchema(t)
	c.SetValue(ids(c, "Radio", "Jan", "Sales"), 1)
	// Video has no data: its aggregates must not be materialized as 0.
	n, err := c.MaterializeAggregates(
		[]dimension.MemberID{c.Dim(0).MustLookup("Video")},
		c.Dim(1).LevelMembers(1),
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("materialized %d all-null cells", n)
	}
	// All-leaf tuples are skipped even when listed.
	n, err = c.MaterializeAggregates(
		[]dimension.MemberID{c.Dim(0).MustLookup("Radio")},
		[]dimension.MemberID{c.Dim(1).MustLookup("Jan")},
		[]dimension.MemberID{c.Dim(2).MustLookup("Sales")},
	)
	if err != nil || n != 0 {
		t.Fatalf("leaf tuples should be skipped: n=%d err=%v", n, err)
	}
}

func TestMaterializeErrors(t *testing.T) {
	c := smallSchema(t)
	if _, err := c.MaterializeAggregates(nil, nil); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	if _, err := c.MaterializeAggregates(
		[]dimension.MemberID{999}, nil, nil); err == nil {
		t.Fatal("bad member should fail")
	}
}

func TestMaterializedVisibleToNonVisualOnly(t *testing.T) {
	// Visual mode evaluates over the output cube, whose derived table is
	// its own — input materialization must not leak into visual results
	// computed on a different data cube.
	c1 := smallSchema(t)
	c1.SetValue(ids(c1, "Radio", "Jan", "Sales"), 10)
	if _, err := c1.MaterializeAggregates(
		[]dimension.MemberID{c1.Dim(0).MustLookup("Audio")},
		[]dimension.MemberID{c1.Dim(1).MustLookup("Q1")},
		nil,
	); err != nil {
		t.Fatal(err)
	}
	c2 := c1.CloneSchema() // empty data, shares rules
	c2.SetValue(ids(c1, "Radio", "Jan", "Sales"), 99)
	got, err := c1.Rules().EvalCell(c1, c2, ids(c1, "Audio", "Q1", "Sales"))
	if err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Fatalf("evaluation over c2 = %v, want 99 (c1's materialization must not leak)", got)
	}
}
