// Package cube implements the multidimensional cube model of the paper:
// cells addressed by member tuples, the meaningless value ⊥, leaf (base)
// versus derived cells, and the rule engine that defines derived-cell
// values (paper §2).
package cube

import "math"

// Null is the paper's ⊥: the value of a meaningless cell, e.g. the
// intersection of a member instance with a parameter leaf outside its
// validity set. It is represented as a quiet NaN so dense float64 chunk
// arrays can hold it without a companion bitmap.
var Null = math.NaN()

// IsNull reports whether v is the meaningless value ⊥.
func IsNull(v float64) bool { return math.IsNaN(v) }
