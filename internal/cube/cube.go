// Reviewed for hotpathfmt: fmt here builds errors and renders rule/
// member names at query-construction and materialization time, never
// inside the engine's per-cell scan loop.
//
//lint:coldfmt error construction and name rendering at plan/materialize time only
package cube

import (
	"fmt"

	"whatifolap/internal/dimension"
)

// Cube is an n-dimensional mapping from member tuples to values
// (paper §2). Leaf cells (every coordinate a leaf member) are base cells
// held in a Store; non-leaf cells are derived cells whose values are
// defined by rules, but may also be materialized (the paper's non-visual
// mode retains input-cube aggregates, which requires storing them).
type Cube struct {
	dims     []*dimension.Dimension
	byName   map[string]int
	bindings []*dimension.Binding
	store    Store
	derived  map[string]float64
	rules    *RuleSet
}

// New creates an empty cube over the given dimensions backed by a
// MemStore. Dimension names must be unique.
func New(dims ...*dimension.Dimension) *Cube {
	c := &Cube{
		dims:    dims,
		byName:  make(map[string]int, len(dims)),
		store:   NewMemStore(len(dims)),
		derived: make(map[string]float64),
		rules:   NewRuleSet(),
	}
	for i, d := range dims {
		if _, dup := c.byName[d.Name()]; dup {
			panic(fmt.Sprintf("cube: duplicate dimension %q", d.Name()))
		}
		c.byName[d.Name()] = i
	}
	return c
}

// NewWithStore creates a cube using the supplied Store, whose arity must
// match the number of dimensions.
func NewWithStore(store Store, dims ...*dimension.Dimension) *Cube {
	c := New(dims...)
	c.store = store
	return c
}

// NumDims returns the number of dimensions.
func (c *Cube) NumDims() int { return len(c.dims) }

// Dim returns the i-th dimension.
func (c *Cube) Dim(i int) *dimension.Dimension { return c.dims[i] }

// Dims returns the dimensions in schema order. The slice must not be
// modified.
func (c *Cube) Dims() []*dimension.Dimension { return c.dims }

// DimIndex returns the schema position of the named dimension, or -1.
func (c *Cube) DimIndex(name string) int {
	if i, ok := c.byName[name]; ok {
		return i
	}
	return -1
}

// DimByName returns the named dimension, or nil.
func (c *Cube) DimByName(name string) *dimension.Dimension {
	if i := c.DimIndex(name); i >= 0 {
		return c.dims[i]
	}
	return nil
}

// AddBinding registers a varying/parameter binding. Both dimensions must
// belong to the cube's schema.
func (c *Cube) AddBinding(b *dimension.Binding) error {
	if c.DimByName(b.Varying.Name()) != b.Varying {
		return fmt.Errorf("cube: binding varying dimension %q not in schema", b.Varying.Name())
	}
	if c.DimByName(b.Param.Name()) != b.Param {
		return fmt.Errorf("cube: binding parameter dimension %q not in schema", b.Param.Name())
	}
	if err := b.Validate(); err != nil {
		return err
	}
	c.bindings = append(c.bindings, b)
	return nil
}

// Bindings returns the cube's varying/parameter bindings.
func (c *Cube) Bindings() []*dimension.Binding { return c.bindings }

// BindingFor returns the binding whose varying dimension has the given
// name, or nil.
func (c *Cube) BindingFor(varyingName string) *dimension.Binding {
	for _, b := range c.bindings {
		if b.Varying.Name() == varyingName {
			return b
		}
	}
	return nil
}

// Store returns the cube's leaf-cell store.
func (c *Cube) Store() Store { return c.store }

// Rules returns the cube's rule set.
func (c *Cube) Rules() *RuleSet { return c.rules }

// SetRules replaces the cube's rule set.
func (c *Cube) SetRules(rs *RuleSet) { c.rules = rs }

// IsLeafCell reports whether every coordinate of the member tuple is a
// leaf member.
func (c *Cube) IsLeafCell(ids []dimension.MemberID) bool {
	for i, id := range ids {
		if c.dims[i].Member(id).LeafOrdinal < 0 {
			return false
		}
	}
	return true
}

// Ordinals converts an all-leaf member tuple to a leaf-ordinal address.
// The second result is false if any coordinate is non-leaf.
func (c *Cube) Ordinals(ids []dimension.MemberID) ([]int, bool) {
	addr := make([]int, len(ids))
	for i, id := range ids {
		o := c.dims[i].Member(id).LeafOrdinal
		if o < 0 {
			return nil, false
		}
		addr[i] = o
	}
	return addr, true
}

// MemberTuple converts a leaf-ordinal address back to member IDs.
func (c *Cube) MemberTuple(addr []int) []dimension.MemberID {
	ids := make([]dimension.MemberID, len(addr))
	for i, o := range addr {
		ids[i] = c.dims[i].Leaf(o).ID
	}
	return ids
}

func (c *Cube) checkTuple(ids []dimension.MemberID) {
	if len(ids) != len(c.dims) {
		panic(fmt.Sprintf("cube: tuple arity %d, schema arity %d", len(ids), len(c.dims)))
	}
}

func derivedKey(ids []dimension.MemberID) string {
	addr := make([]int, len(ids))
	for i, id := range ids {
		addr[i] = int(id)
	}
	return EncodeAddr(addr)
}

// Value returns the stored value of the cell identified by the member
// tuple: the base value for leaf cells, the materialized derived value
// for non-leaf cells (Null if not materialized). It does not evaluate
// rules; see RuleSet.EvalCell for rule evaluation.
func (c *Cube) Value(ids []dimension.MemberID) float64 {
	c.checkTuple(ids)
	if addr, ok := c.Ordinals(ids); ok {
		return c.store.Get(addr)
	}
	if v, ok := c.derived[derivedKey(ids)]; ok {
		return v
	}
	return Null
}

// SetValue stores a value at the cell identified by the member tuple.
// Leaf cells go to the Store; non-leaf cells are materialized in the
// derived-cell table. Setting Null clears the cell.
func (c *Cube) SetValue(ids []dimension.MemberID, v float64) {
	c.checkTuple(ids)
	if addr, ok := c.Ordinals(ids); ok {
		c.store.Set(addr, v)
		return
	}
	k := derivedKey(ids)
	if IsNull(v) {
		delete(c.derived, k)
		return
	}
	c.derived[k] = v
}

// SetLeaf stores a value at a leaf-ordinal address.
func (c *Cube) SetLeaf(addr []int, v float64) { c.store.Set(addr, v) }

// Leaf returns the value at a leaf-ordinal address.
func (c *Cube) Leaf(addr []int) float64 { return c.store.Get(addr) }

// DerivedCells calls fn for every materialized non-leaf cell. The ids
// slice is reused between calls.
func (c *Cube) DerivedCells(fn func(ids []dimension.MemberID, v float64) bool) {
	addr := make([]int, len(c.dims))
	ids := make([]dimension.MemberID, len(c.dims))
	for k, v := range c.derived {
		DecodeAddr(k, addr)
		for i, a := range addr {
			ids[i] = dimension.MemberID(a)
		}
		if !fn(ids, v) {
			return
		}
	}
}

// CloneSchema returns a cube sharing this cube's dimensions, bindings and
// rules but with an empty store of the same kind as the receiver's. It is
// the canonical way operators allocate their output.
func (c *Cube) CloneSchema() *Cube {
	out := New(c.dims...)
	out.bindings = append([]*dimension.Binding(nil), c.bindings...)
	out.rules = c.rules
	return out
}

// Clone returns a deep copy of cell data sharing dimensions, bindings and
// rules (which operators treat as immutable unless they clone them
// explicitly, e.g. split).
func (c *Cube) Clone() *Cube {
	out := c.CloneSchema()
	out.store = c.store.Clone()
	for k, v := range c.derived {
		out.derived[k] = v
	}
	return out
}

// ReplaceDim substitutes a (typically cloned and extended) dimension at
// schema position i, along with rebased bindings. Used by the split
// operator, which adds member instances.
func (c *Cube) ReplaceDim(i int, d *dimension.Dimension, bindings []*dimension.Binding) {
	delete(c.byName, c.dims[i].Name())
	c.dims[i] = d
	c.byName[d.Name()] = i
	c.bindings = bindings
}

// NumCells returns the number of present leaf cells.
func (c *Cube) NumCells() int { return c.store.Len() }
