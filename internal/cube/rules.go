package cube

import (
	"fmt"
	"math"

	"whatifolap/internal/dimension"
)

// AggFunc identifies an aggregation function used to roll leaf cells up
// into non-leaf cells.
type AggFunc int

// Supported aggregation functions. Sum is the paper's default for
// hierarchy rollup (rule (5) in §2).
const (
	AggSum AggFunc = iota
	AggAvg
	AggMin
	AggMax
	AggCount
)

// String returns the function name.
func (f AggFunc) String() string {
	switch f {
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggCount:
		return "count"
	}
	return fmt.Sprintf("AggFunc(%d)", int(f))
}

// Apply folds v into the accumulator (acc, n), where n counts non-null
// inputs so far.
func (f AggFunc) apply(acc float64, n int, v float64) float64 {
	if n == 0 {
		if f == AggCount {
			return 1
		}
		return v
	}
	switch f {
	case AggSum, AggAvg:
		return acc + v
	case AggMin:
		return math.Min(acc, v)
	case AggMax:
		return math.Max(acc, v)
	case AggCount:
		return acc + 1
	}
	return acc
}

func (f AggFunc) finish(acc float64, n int) float64 {
	if n == 0 {
		return Null
	}
	if f == AggAvg {
		return acc / float64(n)
	}
	return acc
}

// ScopeCond restricts a rule to cells whose coordinate in dimension Dim
// is the named member or one of its descendants — the paper's
// "For Market = East, …" scoping.
type ScopeCond struct {
	Dim    string
	Member string
}

// Rule defines the value of cells whose coordinate in dimension Dim is
// the member named Target (at any hierarchy position), subject to
// optional scope conditions, via an expression.
type Rule struct {
	Dim    string // dimension of the target member, normally Measures
	Target string
	Scope  []ScopeCond
	Expr   Expr
}

// RuleSet is an ordered collection of rules plus per-measure aggregation
// overrides and a default rollup function.
type RuleSet struct {
	rules      []*Rule
	aggByName  map[string]AggFunc // per-target aggregation override
	defaultAgg AggFunc
}

// NewRuleSet returns a rule set with sum rollup and no formulas.
func NewRuleSet() *RuleSet {
	return &RuleSet{aggByName: make(map[string]AggFunc), defaultAgg: AggSum}
}

// AddFormula registers a formula rule. Example:
//
//	rs.AddFormula("Measures", "Margin", "Sales - COGS")
//	rs.AddFormula("Measures", "Margin", "0.93*Sales - COGS", ScopeCond{Dim: "Market", Member: "East"})
//
// Among applicable rules, the one with the most scope conditions wins;
// ties go to the later registration.
func (rs *RuleSet) AddFormula(dim, target, expr string, scope ...ScopeCond) error {
	e, err := ParseExpr(expr)
	if err != nil {
		return err
	}
	rs.rules = append(rs.rules, &Rule{Dim: dim, Target: target, Scope: scope, Expr: e})
	return nil
}

// MustAddFormula is AddFormula that panics on error.
func (rs *RuleSet) MustAddFormula(dim, target, expr string, scope ...ScopeCond) {
	if err := rs.AddFormula(dim, target, expr, scope...); err != nil {
		panic(err)
	}
}

// SetAgg overrides the rollup function for cells whose measure member has
// the given name.
func (rs *RuleSet) SetAgg(target string, f AggFunc) { rs.aggByName[target] = f }

// SetDefaultAgg sets the rollup function used when no override applies.
func (rs *RuleSet) SetDefaultAgg(f AggFunc) { rs.defaultAgg = f }

// Rules returns the formula rules in registration order.
func (rs *RuleSet) Rules() []*Rule { return rs.rules }

// findRule returns the most specific applicable formula rule for the
// cell, or nil.
func (rs *RuleSet) findRule(c *Cube, ids []dimension.MemberID) *Rule {
	var best *Rule
	for _, r := range rs.rules {
		di := c.DimIndex(r.Dim)
		if di < 0 || c.dims[di].Member(ids[di]).Name != r.Target {
			continue
		}
		ok := true
		for _, sc := range r.Scope {
			si := c.DimIndex(sc.Dim)
			if si < 0 {
				ok = false
				break
			}
			anc, err := c.dims[si].Lookup(sc.Member)
			if err != nil || !c.dims[si].IsDescendant(ids[si], anc) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if best == nil || len(r.Scope) >= len(best.Scope) {
			best = r
		}
	}
	return best
}

// maxEvalDepth bounds formula recursion so that cyclic rule definitions
// fail fast instead of overflowing the stack.
const maxEvalDepth = 64

// EvalCell computes the value of a cell per the paper's function
// evaluation semantics (§4.3): rule definitions are taken from defCube
// (its rule set and hierarchies), while cell values are read from
// dataCube. EvalCell(c, c, ids) evaluates the cube in place; the E
// operator's E(C¹, C²) passes the two cubes separately, which is how
// visual mode re-aggregates over the perspective cube.
//
// Resolution order: an applicable formula rule wins; otherwise a leaf
// cell returns its base value and a non-leaf cell rolls up its
// descendant leaf cells with the measure's aggregation function.
func (rs *RuleSet) EvalCell(defCube, dataCube *Cube, ids []dimension.MemberID) (float64, error) {
	return rs.evalCell(defCube, dataCube, ids, 0)
}

func (rs *RuleSet) evalCell(defCube, dataCube *Cube, ids []dimension.MemberID, depth int) (float64, error) {
	if depth > maxEvalDepth {
		return Null, fmt.Errorf("cube: rule recursion exceeds depth %d at cell %v (cyclic rules?)", maxEvalDepth, tupleString(defCube, ids))
	}
	// Materialized aggregates (Cube.MaterializeAggregates) take
	// precedence over recomputation, like a pre-aggregated storage
	// engine; they must be rebuilt after leaf updates.
	if !dataCube.IsLeafCell(ids) {
		if v := dataCube.Value(ids); !IsNull(v) {
			return v, nil
		}
	}
	if r := rs.findRule(defCube, ids); r != nil {
		return rs.evalExpr(defCube, dataCube, r, r.Expr, ids, depth)
	}
	if dataCube.IsLeafCell(ids) {
		return dataCube.Value(ids), nil
	}
	return rs.rollup(defCube, dataCube, ids, depth)
}

// rollup aggregates the cell's descendant leaf cells. Null inputs are
// skipped; a cell with no non-null descendants is Null. Descendant leaf
// cells that are themselves rule-defined are evaluated recursively.
func (rs *RuleSet) rollup(defCube, dataCube *Cube, ids []dimension.MemberID, depth int) (float64, error) {
	f := rs.defaultAgg
	for i, id := range ids {
		if defCube.dims[i].Measure() {
			if of, ok := rs.aggByName[defCube.dims[i].Member(id).Name]; ok {
				f = of
			}
		}
	}
	// Collect per-dimension leaf ordinal ranges.
	leafSets := make([][]int, len(ids))
	for i, id := range ids {
		m := dataCube.dims[i].Member(id)
		if m.LeafOrdinal >= 0 {
			leafSets[i] = []int{m.LeafOrdinal}
		} else {
			leafSets[i] = dataCube.dims[i].LeafDescendants(id)
			if len(leafSets[i]) == 0 {
				return Null, nil
			}
		}
	}
	acc, n := Null, 0
	addr := make([]int, len(ids))
	leafIDs := make([]dimension.MemberID, len(ids))
	var walk func(dim int) error
	walk = func(dim int) error {
		if dim == len(ids) {
			for i, o := range addr {
				leafIDs[i] = dataCube.dims[i].Leaf(o).ID
			}
			var v float64
			if r := rs.findRule(defCube, leafIDs); r != nil {
				var err error
				v, err = rs.evalExpr(defCube, dataCube, r, r.Expr, leafIDs, depth)
				if err != nil {
					return err
				}
			} else {
				v = dataCube.Leaf(addr)
			}
			if !IsNull(v) {
				acc = f.apply(acc, n, v)
				n++
			}
			return nil
		}
		for _, o := range leafSets[dim] {
			addr[dim] = o
			if err := walk(dim + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return Null, err
	}
	return f.finish(acc, n), nil
}

func (rs *RuleSet) evalExpr(defCube, dataCube *Cube, r *Rule, e Expr, ids []dimension.MemberID, depth int) (float64, error) {
	switch x := e.(type) {
	case Const:
		return x.V, nil
	case Unary:
		v, err := rs.evalExpr(defCube, dataCube, r, x.X, ids, depth)
		if err != nil || IsNull(v) {
			return Null, err
		}
		return -v, nil
	case Binary:
		l, err := rs.evalExpr(defCube, dataCube, r, x.L, ids, depth)
		if err != nil {
			return Null, err
		}
		rv, err := rs.evalExpr(defCube, dataCube, r, x.R, ids, depth)
		if err != nil {
			return Null, err
		}
		if IsNull(l) || IsNull(rv) {
			return Null, nil
		}
		switch x.Op {
		case '+':
			return l + rv, nil
		case '-':
			return l - rv, nil
		case '*':
			return l * rv, nil
		case '/':
			if rv == 0 {
				return Null, nil
			}
			return l / rv, nil
		}
		return Null, fmt.Errorf("cube: unknown operator %q", x.Op)
	case Ref:
		dimName := x.Dim
		if dimName == "" {
			dimName = r.Dim
		}
		di := defCube.DimIndex(dimName)
		if di < 0 {
			return Null, fmt.Errorf("cube: rule for %s references unknown dimension %q", r.Target, dimName)
		}
		id, err := defCube.dims[di].Lookup(x.Member)
		if err != nil {
			return Null, fmt.Errorf("cube: rule for %s: %v", r.Target, err)
		}
		sub := make([]dimension.MemberID, len(ids))
		copy(sub, ids)
		sub[di] = id
		return rs.evalCell(defCube, dataCube, sub, depth+1)
	}
	return Null, fmt.Errorf("cube: unknown expression node %T", e)
}

func tupleString(c *Cube, ids []dimension.MemberID) string {
	s := "("
	for i, id := range ids {
		if i > 0 {
			s += ", "
		}
		p := c.dims[i].Path(id)
		if p == "" {
			p = c.dims[i].Name()
		}
		s += p
	}
	return s + ")"
}
