package cube

import "testing"

func TestParseExprForms(t *testing.T) {
	for _, tc := range []struct{ src, want string }{
		{"1", "1"},
		{"Sales", "[Sales]"},
		{"[Sales]", "[Sales]"},
		{"[Measures].[Sales]", "[Measures].[Sales]"},
		{"Sales - COGS", "([Sales] - [COGS])"},
		{"0.93*Sales - COGS", "((0.93 * [Sales]) - [COGS])"},
		{"Margin/COGS * 100", "(([Margin] / [COGS]) * 100)"},
		{"-(Sales)", "-([Sales])"},
		{"2e3 + 1", "(2000 + 1)"},
		{"(Sales + COGS) * 2", "(([Sales] + [COGS]) * 2)"},
		{"a_b% * 2", "([a_b%] * 2)"},
		{"1 - 2 - 3", "((1 - 2) - 3)"},
		{"1 + 2*3", "(1 + (2 * 3))"},
	} {
		e, err := ParseExpr(tc.src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", tc.src, err)
		}
		if got := e.String(); got != tc.want {
			t.Errorf("ParseExpr(%q) = %s, want %s", tc.src, got, tc.want)
		}
	}
}

func TestParseExprErrors(t *testing.T) {
	for _, src := range []string{
		"", "1 +", "(1", "[", "[]", "1 2", "@", "1..2", "Sales COGS",
	} {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q) should fail", src)
		}
	}
}

func TestMustParseExprPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseExpr should panic on bad input")
		}
	}()
	MustParseExpr("(")
}

func TestBracketDotWithoutBracketFallsBack(t *testing.T) {
	// "[Sales].x" — the '.' is not followed by '[', so [Sales] is a plain
	// ref and ".x" is trailing garbage.
	if _, err := ParseExpr("[Sales].x"); err == nil {
		t.Fatal("expected trailing-input error")
	}
}

func TestAggFuncString(t *testing.T) {
	for f, want := range map[AggFunc]string{
		AggSum: "sum", AggAvg: "avg", AggMin: "min", AggMax: "max", AggCount: "count",
	} {
		if f.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(f), f.String(), want)
		}
	}
	if AggFunc(99).String() != "AggFunc(99)" {
		t.Errorf("unknown AggFunc String = %q", AggFunc(99).String())
	}
}
