package cube

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMemStoreBasics(t *testing.T) {
	s := NewMemStore(3)
	addr := []int{1, 2, 3}
	if !IsNull(s.Get(addr)) {
		t.Fatal("absent cell should read Null")
	}
	s.Set(addr, 42)
	if got := s.Get(addr); got != 42 {
		t.Fatalf("Get = %v, want 42", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	s.Set(addr, Null)
	if !IsNull(s.Get(addr)) || s.Len() != 0 {
		t.Fatal("setting Null should delete the cell")
	}
}

func TestMemStoreArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch should panic")
		}
	}()
	NewMemStore(2).Set([]int{1}, 1)
}

func TestMemStoreNonNullAndClone(t *testing.T) {
	s := NewMemStore(2)
	s.Set([]int{0, 0}, 1)
	s.Set([]int{1, 5}, 2)
	seen := map[[2]int]float64{}
	s.NonNull(func(addr []int, v float64) bool {
		seen[[2]int{addr[0], addr[1]}] = v
		return true
	})
	if len(seen) != 2 || seen[[2]int{0, 0}] != 1 || seen[[2]int{1, 5}] != 2 {
		t.Fatalf("NonNull visited %v", seen)
	}
	c := s.Clone()
	c.Set([]int{0, 0}, 99)
	if s.Get([]int{0, 0}) != 1 {
		t.Fatal("clone mutation leaked")
	}
	// Early stop.
	n := 0
	s.NonNull(func(addr []int, v float64) bool { n++; return false })
	if n != 1 {
		t.Fatalf("NonNull early stop visited %d, want 1", n)
	}
}

func TestEncodeDecodeAddrRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		addr := make([]int, n)
		for i := range addr {
			addr[i] = r.Intn(1 << 20)
		}
		got := make([]int, n)
		DecodeAddr(EncodeAddr(addr), got)
		for i := range addr {
			if got[i] != addr[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncodeAddrNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative ordinal should panic")
		}
	}()
	EncodeAddr([]int{-1})
}

func TestQuickMemStoreMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewMemStore(2)
		ref := map[[2]int]float64{}
		for i := 0; i < 200; i++ {
			a := [2]int{r.Intn(5), r.Intn(5)}
			if r.Intn(4) == 0 {
				s.Set(a[:], Null)
				delete(ref, a)
			} else {
				v := float64(r.Intn(100))
				s.Set(a[:], v)
				ref[a] = v
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		for a, v := range ref {
			if s.Get(a[:]) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
