package cube

import (
	"encoding/binary"
	"fmt"
)

// Store holds the leaf (base) cells of a cube. Addresses are tuples of
// leaf ordinals, one per dimension in schema order. Absent cells read as
// Null.
//
// Two families of stores exist: the map-backed MemStore in this package,
// suitable for example-scale cubes manipulated by the algebra operators,
// and the chunked array store in internal/chunk used by the perspective
// cube engine.
type Store interface {
	// Get returns the value at addr, or Null if the cell is absent.
	Get(addr []int) float64
	// Set writes v at addr. Setting Null deletes the cell.
	Set(addr []int, v float64)
	// NonNull calls fn for every present cell until fn returns false.
	// Iteration order is unspecified. The addr slice passed to fn is
	// reused between calls; fn must copy it to retain it.
	NonNull(fn func(addr []int, v float64) bool)
	// Len returns the number of present (non-null) cells.
	Len() int
	// Clone returns an independent deep copy.
	Clone() Store
}

// EncodeAddr packs a leaf-ordinal address into a compact string key.
// It is exported for stores and caches that key cells by address.
func EncodeAddr(addr []int) string {
	buf := make([]byte, 4*len(addr))
	for i, a := range addr {
		if a < 0 {
			panic(fmt.Sprintf("cube: negative ordinal %d in address", a))
		}
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(a))
	}
	return string(buf)
}

// DecodeAddr unpacks a key produced by EncodeAddr into dst, which must
// have the correct length.
func DecodeAddr(key string, dst []int) {
	if len(key) != 4*len(dst) {
		panic(fmt.Sprintf("cube: key length %d does not match address arity %d", len(key), len(dst)))
	}
	for i := range dst {
		dst[i] = int(binary.LittleEndian.Uint32([]byte(key[4*i : 4*i+4])))
	}
}

// MemStore is a sparse map-backed Store.
type MemStore struct {
	arity int
	cells map[string]float64
}

// NewMemStore creates an empty store for addresses of the given arity.
func NewMemStore(arity int) *MemStore {
	return &MemStore{arity: arity, cells: make(map[string]float64)}
}

func (s *MemStore) checkArity(addr []int) {
	if len(addr) != s.arity {
		panic(fmt.Sprintf("cube: address arity %d, store arity %d", len(addr), s.arity))
	}
}

// Get implements Store.
func (s *MemStore) Get(addr []int) float64 {
	s.checkArity(addr)
	if v, ok := s.cells[EncodeAddr(addr)]; ok {
		return v
	}
	return Null
}

// Set implements Store.
func (s *MemStore) Set(addr []int, v float64) {
	s.checkArity(addr)
	k := EncodeAddr(addr)
	if IsNull(v) {
		delete(s.cells, k)
		return
	}
	s.cells[k] = v
}

// NonNull implements Store.
func (s *MemStore) NonNull(fn func(addr []int, v float64) bool) {
	addr := make([]int, s.arity)
	for k, v := range s.cells {
		DecodeAddr(k, addr)
		if !fn(addr, v) {
			return
		}
	}
}

// Len implements Store.
func (s *MemStore) Len() int { return len(s.cells) }

// Clone implements Store.
func (s *MemStore) Clone() Store {
	c := NewMemStore(s.arity)
	for k, v := range s.cells {
		c.cells[k] = v
	}
	return c
}
