// Package algebra implements the paper's what-if operators (§4):
// selection σ, relocate ρ, split S, and eval E, together with the
// predicate language of §4.1. The perspective operator Φ lives in
// package perspective; ApplyPerspectives and ApplyChanges compose the
// operators into the negative- and positive-scenario pipelines that
// Theorem 4.1 shows capture the extended-MDX what-if query class.
package algebra

import (
	"fmt"

	"whatifolap/internal/bitset"
	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
)

// RelOp is a comparison operator θ ∈ {=, ≠, <, ≤, >, ≥} (paper §4.1).
type RelOp int

// Comparison operators.
const (
	EQ RelOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String returns the operator's symbol.
func (op RelOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return fmt.Sprintf("RelOp(%d)", int(op))
}

func (op RelOp) apply(a, b float64) bool {
	switch op {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	case GE:
		return a >= b
	}
	return false
}

// Predicate decides whether a leaf member (instance) of the selection
// dimension stays active under σ. Predicates are evaluated against the
// input cube, so value predicates can inspect cell contents.
type Predicate interface {
	// Eval reports whether the leaf member id of dimension dimIdx in c
	// satisfies the predicate.
	Eval(c *cube.Cube, dimIdx int, id dimension.MemberID) (bool, error)
	String() string
}

// MemberIs matches a member instance whose path or base name equals Ref
// (paper: σ_{Product=TV}). A base-name match selects every instance of a
// varying member; a path match ("FTE/Joe") selects a single instance.
type MemberIs struct{ Ref string }

// Eval implements Predicate.
func (p MemberIs) Eval(c *cube.Cube, dimIdx int, id dimension.MemberID) (bool, error) {
	d := c.Dim(dimIdx)
	return d.Member(id).Name == p.Ref || d.Path(id) == p.Ref, nil
}

func (p MemberIs) String() string { return fmt.Sprintf("%s = %s", "member", p.Ref) }

// DescendantOf matches leaf members classified under the referenced
// member (paper: σ_{Product descendant-of AudioVideo}).
type DescendantOf struct{ Ref string }

// Eval implements Predicate.
func (p DescendantOf) Eval(c *cube.Cube, dimIdx int, id dimension.MemberID) (bool, error) {
	d := c.Dim(dimIdx)
	anc, err := d.Lookup(p.Ref)
	if err != nil {
		return false, fmt.Errorf("algebra: selection predicate: %w", err)
	}
	return d.IsDescendant(id, anc), nil
}

func (p DescendantOf) String() string { return fmt.Sprintf("descendant-of %s", p.Ref) }

// VSIntersects matches member instances whose validity set intersects
// the given parameter-leaf ordinals (paper: σ_{Product.VS ∩ {Feb,Apr} ≠ ∅}).
// The dimension must have a binding in the cube.
type VSIntersects struct{ ParamOrdinals []int }

// Eval implements Predicate.
func (p VSIntersects) Eval(c *cube.Cube, dimIdx int, id dimension.MemberID) (bool, error) {
	d := c.Dim(dimIdx)
	b := c.BindingFor(d.Name())
	if b == nil {
		return false, fmt.Errorf("algebra: VS predicate on %s, which has no varying binding", d.Name())
	}
	probe := bitset.FromSlice(b.Param.NumLeaves(), p.ParamOrdinals)
	return b.ValiditySet(id).Intersects(probe), nil
}

func (p VSIntersects) String() string { return fmt.Sprintf("VS ∩ %v ≠ ∅", p.ParamOrdinals) }

// ValueCond matches member instances for which some cell satisfies
// "value θ Const" with the coordinates in Fix pinned to specific members
// and all unpinned dimensions ranged over their leaves (paper:
// σ_{Location=NY ∧ Time=Jan2000 ∧ Measure=Sales ∧ Value>1000}).
// Pinned non-leaf members are evaluated through the rule engine.
type ValueCond struct {
	Fix   map[string]string // dimension name -> member ref
	Op    RelOp
	Const float64
}

// Eval implements Predicate.
func (p ValueCond) Eval(c *cube.Cube, dimIdx int, id dimension.MemberID) (bool, error) {
	ids := make([]dimension.MemberID, c.NumDims())
	free := []int{}
	for i := 0; i < c.NumDims(); i++ {
		d := c.Dim(i)
		if i == dimIdx {
			ids[i] = id
			continue
		}
		if ref, ok := p.Fix[d.Name()]; ok {
			m, err := d.Lookup(ref)
			if err != nil {
				return false, fmt.Errorf("algebra: value predicate: %w", err)
			}
			ids[i] = m
			continue
		}
		free = append(free, i)
	}
	// Existential search over the free dimensions' leaves.
	var walk func(k int) (bool, error)
	walk = func(k int) (bool, error) {
		if k == len(free) {
			v, err := c.Rules().EvalCell(c, c, ids)
			if err != nil {
				return false, err
			}
			return !cube.IsNull(v) && p.Op.apply(v, p.Const), nil
		}
		di := free[k]
		for _, leaf := range c.Dim(di).Leaves() {
			ids[di] = leaf
			ok, err := walk(k + 1)
			if err != nil || ok {
				return ok, err
			}
		}
		return false, nil
	}
	return walk(0)
}

func (p ValueCond) String() string {
	return fmt.Sprintf("∃ value %s %g under %v", p.Op, p.Const, p.Fix)
}

// And is predicate conjunction.
type And struct{ L, R Predicate }

// Eval implements Predicate.
func (p And) Eval(c *cube.Cube, dimIdx int, id dimension.MemberID) (bool, error) {
	l, err := p.L.Eval(c, dimIdx, id)
	if err != nil || !l {
		return false, err
	}
	return p.R.Eval(c, dimIdx, id)
}

func (p And) String() string { return "(" + p.L.String() + " ∧ " + p.R.String() + ")" }

// Or is predicate disjunction.
type Or struct{ L, R Predicate }

// Eval implements Predicate.
func (p Or) Eval(c *cube.Cube, dimIdx int, id dimension.MemberID) (bool, error) {
	l, err := p.L.Eval(c, dimIdx, id)
	if err != nil || l {
		return l, err
	}
	return p.R.Eval(c, dimIdx, id)
}

func (p Or) String() string { return "(" + p.L.String() + " ∨ " + p.R.String() + ")" }

// Not is predicate negation.
type Not struct{ X Predicate }

// Eval implements Predicate.
func (p Not) Eval(c *cube.Cube, dimIdx int, id dimension.MemberID) (bool, error) {
	v, err := p.X.Eval(c, dimIdx, id)
	return !v, err
}

func (p Not) String() string { return "¬" + p.X.String() }
