package algebra

import (
	"math"
	"testing"

	"whatifolap/internal/cube"
	"whatifolap/internal/paperdata"
	"whatifolap/internal/perspective"
)

// TestTransferPaperExample replays the paper's §1 data-driven scenario:
// 10% of PTEs' salary during the first quarter in NY is instead given
// to PTEs in MA.
func TestTransferPaperExample(t *testing.T) {
	cin := paperdata.Warehouse()
	out, err := ApplyTransfer(cin, Transfer{
		Dim: "Location", From: "NY", To: "MA", Fraction: 0.10,
		Scope: []cube.ScopeCond{
			{Dim: "Organization", Member: "PTE"},
			{Dim: "Time", Member: "Qtr1"},
			{Dim: "Measures", Member: "Salary"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tom's January NY salary drops from 10 to 9; MA gains 1.
	ny := cellIDs(out, "PTE/Tom", "NY", paperdata.Jan, "Salary")
	ma := cellIDs(out, "PTE/Tom", "MA", paperdata.Jan, "Salary")
	if v := out.Value(ny); math.Abs(v-9) > 1e-12 {
		t.Fatalf("(Tom, NY, Jan) = %v, want 9", v)
	}
	if v := out.Value(ma); math.Abs(v-1) > 1e-12 {
		t.Fatalf("(Tom, MA, Jan) = %v, want 1 (created from ⊥)", v)
	}
	// Out-of-scope cells untouched: Tom's April salary, Lisa (FTE), and
	// benefits.
	if v := out.Value(cellIDs(out, "PTE/Tom", "NY", paperdata.Apr, "Salary")); v != 10 {
		t.Fatalf("April out of Qtr1 scope moved: %v", v)
	}
	if v := out.Value(cellIDs(out, "FTE/Lisa", "NY", paperdata.Jan, "Salary")); v != 10 {
		t.Fatalf("FTE out of PTE scope moved: %v", v)
	}
	if v := out.Value(cellIDs(out, "PTE/Tom", "NY", paperdata.Jan, "Benefits")); v != 2 {
		t.Fatalf("Benefits out of Salary scope moved: %v", v)
	}
	// Conservation: total salary unchanged; visual aggregates shift
	// between East states but not in the East total.
	sum := func(c *cube.Cube) float64 {
		s := 0.0
		c.Store().NonNull(func(addr []int, v float64) bool { s += v; return true })
		return s
	}
	if math.Abs(sum(cin)-sum(out)) > 1e-9 {
		t.Fatalf("transfer not conservative: %v vs %v", sum(cin), sum(out))
	}
	east, err := CellValue(cin, out, nonLeafIDs(out, "PTE", "East", "Qtr1", "Salary"), perspective.Visual)
	if err != nil {
		t.Fatal(err)
	}
	eastBefore, err := CellValue(cin, cin, nonLeafIDs(cin, "PTE", "East", "Qtr1", "Salary"), perspective.Visual)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(east-eastBefore) > 1e-9 {
		t.Fatalf("East total changed: %v -> %v", eastBefore, east)
	}
	// The input cube is untouched.
	if v := cin.Value(cellIDs(cin, "PTE/Tom", "NY", paperdata.Jan, "Salary")); v != 10 {
		t.Fatal("ApplyTransfer mutated its input")
	}
}

func TestTransferErrors(t *testing.T) {
	cin := paperdata.Warehouse()
	cases := []Transfer{
		{Dim: "Nope", From: "NY", To: "MA", Fraction: 0.1},
		{Dim: "Location", From: "NY", To: "MA", Fraction: 1.5},
		{Dim: "Location", From: "East", To: "MA", Fraction: 0.1}, // non-leaf source
		{Dim: "Location", From: "NY", To: "NY", Fraction: 0.1},
		{Dim: "Location", From: "NY", To: "Missing", Fraction: 0.1},
		{Dim: "Location", From: "NY", To: "MA", Fraction: 0.1,
			Scope: []cube.ScopeCond{{Dim: "Bad", Member: "x"}}},
		{Dim: "Location", From: "NY", To: "MA", Fraction: 0.1,
			Scope: []cube.ScopeCond{{Dim: "Organization", Member: "Missing"}}},
		// No matching cells: nobody has TX data.
		{Dim: "Location", From: "TX", To: "MA", Fraction: 0.1},
	}
	for i, tr := range cases {
		if _, err := ApplyTransfer(cin, tr); err == nil {
			t.Errorf("case %d (%+v) should fail", i, tr)
		}
	}
}

func TestTransferComposesWithPerspectives(t *testing.T) {
	// Data-driven and structural scenarios compose: reallocate, then ask
	// a structural what-if on the result.
	cin := paperdata.Warehouse()
	moved, err := ApplyTransfer(cin, Transfer{
		Dim: "Location", From: "NY", To: "MA", Fraction: 0.5,
		Scope: []cube.ScopeCond{{Dim: "Measures", Member: "Salary"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ApplyPerspectives(moved, "Organization", perspective.Forward, []int{paperdata.Feb, paperdata.Apr})
	if err != nil {
		t.Fatal(err)
	}
	// The Fig. 4 inheritance now carries the halved value: (PTE/Joe,
	// Mar, NY) = 15 instead of 30, and MA holds the other 15.
	if v := out.Value(cellIDs(out, "PTE/Joe", "NY", paperdata.Mar, "Salary")); v != 15 {
		t.Fatalf("(PTE/Joe, Mar, NY) = %v, want 15", v)
	}
	if v := out.Value(cellIDs(out, "PTE/Joe", "MA", paperdata.Mar, "Salary")); v != 15 {
		t.Fatalf("(PTE/Joe, Mar, MA) = %v, want 15", v)
	}
}
