package algebra

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"whatifolap/internal/cube"
	"whatifolap/internal/paperdata"
	"whatifolap/internal/perspective"
)

// equalLeafCells compares two cubes' leaf stores cell-for-cell through
// member paths (dimension objects may differ after split).
func equalLeafCells(t *testing.T, a, b *cube.Cube) bool {
	t.Helper()
	count := func(c *cube.Cube) int { return c.NumCells() }
	if count(a) != count(b) {
		t.Logf("cell counts differ: %d vs %d", count(a), count(b))
		return false
	}
	ok := true
	a.Store().NonNull(func(addr []int, v float64) bool {
		// Translate a's address to b through paths.
		baddr := make([]int, len(addr))
		for i, o := range addr {
			p := a.Dim(i).Path(a.Dim(i).Leaf(o).ID)
			id, err := b.Dim(i).Lookup(p)
			if err != nil {
				t.Logf("b lacks member %s", p)
				ok = false
				return false
			}
			baddr[i] = b.Dim(i).Member(id).LeafOrdinal
		}
		if got := b.Leaf(baddr); math.Abs(got-v) > 1e-9 || math.IsNaN(got) {
			t.Logf("cell %v: %v vs %v", addr, v, got)
			ok = false
			return false
		}
		return true
	})
	return ok
}

func TestOptimizeStaticAsSelection(t *testing.T) {
	plan := &PlanPerspective{
		Varying: "Organization",
		Sem:     perspective.Static,
		Points:  []int{paperdata.Feb, paperdata.Jan, paperdata.Feb},
		Child:   PlanInput{},
	}
	opt, rewrites := Optimize(plan)
	if len(rewrites) != 1 || rewrites[0].Rule != "static-as-selection" {
		t.Fatalf("rewrites = %+v", rewrites)
	}
	sel, ok := opt.(*PlanSelect)
	if !ok {
		t.Fatalf("optimized plan = %s", opt)
	}
	vs, ok := sel.Pred.(VSIntersects)
	if !ok || len(vs.ParamOrdinals) != 2 {
		t.Fatalf("predicate = %v (points should be normalized)", sel.Pred)
	}
	// Equivalence on the paper cube.
	cin := paperdata.Warehouse()
	ref, err := Execute(plan, cin)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Execute(opt, cin)
	if err != nil {
		t.Fatal(err)
	}
	if !equalLeafCells(t, ref, got) {
		t.Fatal("static-as-selection changed the result")
	}
}

func TestOptimizeSelectFusion(t *testing.T) {
	plan := &PlanSelect{
		Dim:  "Organization",
		Pred: DescendantOf{Ref: "FTE"},
		Child: &PlanSelect{
			Dim:   "Organization",
			Pred:  Not{X: MemberIs{Ref: "Sue"}},
			Child: PlanInput{},
		},
	}
	opt, rewrites := Optimize(plan)
	if len(rewrites) != 1 || rewrites[0].Rule != "select-fusion" {
		t.Fatalf("rewrites = %+v", rewrites)
	}
	if _, ok := opt.(*PlanSelect).Child.(PlanInput); !ok {
		t.Fatalf("fusion should leave a single selection: %s", opt)
	}
	cin := paperdata.Warehouse()
	ref, _ := Execute(plan, cin)
	got, _ := Execute(opt, cin)
	if !equalLeafCells(t, ref, got) {
		t.Fatal("select-fusion changed the result")
	}
}

func TestOptimizeSelectPushdown(t *testing.T) {
	// A base-name selection on the varying dimension commutes with the
	// forward perspective.
	plan := &PlanSelect{
		Dim:  "Organization",
		Pred: MemberIs{Ref: "Joe"},
		Child: &PlanPerspective{
			Varying: "Organization",
			Sem:     perspective.Forward,
			Points:  []int{paperdata.Feb, paperdata.Apr},
			Child:   PlanInput{},
		},
	}
	opt, rewrites := Optimize(plan)
	if len(rewrites) != 1 || rewrites[0].Rule != "select-pushdown" {
		t.Fatalf("rewrites = %+v", rewrites)
	}
	if _, ok := opt.(*PlanPerspective); !ok {
		t.Fatalf("perspective should now be outermost: %s", opt)
	}
	cin := paperdata.Warehouse()
	ref, err := Execute(plan, cin)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Execute(opt, cin)
	if err != nil {
		t.Fatal(err)
	}
	if !equalLeafCells(t, ref, got) {
		t.Fatal("select-pushdown changed the result")
	}
}

func TestOptimizePushdownOtherDimension(t *testing.T) {
	// Structural selections on non-varying dimensions always push.
	plan := &PlanSelect{
		Dim:  "Location",
		Pred: DescendantOf{Ref: "East"},
		Child: &PlanPerspective{
			Varying: "Organization",
			Sem:     perspective.Backward,
			Points:  []int{paperdata.Jun},
			Child:   PlanInput{},
		},
	}
	opt, rewrites := Optimize(plan)
	if len(rewrites) != 1 || rewrites[0].Rule != "select-pushdown" {
		t.Fatalf("rewrites = %+v", rewrites)
	}
	cin := paperdata.Warehouse()
	ref, _ := Execute(plan, cin)
	got, _ := Execute(opt, cin)
	if !equalLeafCells(t, ref, got) {
		t.Fatal("pushdown on other dimension changed the result")
	}
}

func TestOptimizeRefusesUnsafePushdowns(t *testing.T) {
	persp := &PlanPerspective{
		Varying: "Organization",
		Sem:     perspective.Forward,
		Points:  []int{paperdata.Feb},
		Child:   PlanInput{},
	}
	for name, pred := range map[string]Predicate{
		// A path selection separates instances of one member.
		"path-member": MemberIs{Ref: "PTE/Joe"},
		// Hierarchy selections can separate siblings too.
		"descendant-of": DescendantOf{Ref: "PTE"},
		// Value predicates read cells the perspective moves.
		"value": ValueCond{Fix: map[string]string{"Measures": "Salary"}, Op: GT, Const: 5},
		// Validity-set predicates read metadata the perspective rewrites.
		"vs": VSIntersects{ParamOrdinals: []int{paperdata.Feb}},
	} {
		plan := &PlanSelect{Dim: "Organization", Pred: pred, Child: persp}
		opt, rewrites := Optimize(plan)
		if len(rewrites) != 0 {
			t.Errorf("%s: unsafe pushdown applied: %+v", name, rewrites)
		}
		if _, ok := opt.(*PlanSelect); !ok {
			t.Errorf("%s: selection should stay outermost", name)
		}
	}
}

// TestUnsafePushdownWouldBeWrong demonstrates that the side condition is
// necessary: pushing a path selection below a forward perspective
// changes the answer, because the selection removes the sibling rows the
// relocation pulls from.
func TestUnsafePushdownWouldBeWrong(t *testing.T) {
	cin := paperdata.Warehouse()
	persp := &PlanPerspective{
		Varying: "Organization",
		Sem:     perspective.Forward,
		Points:  []int{paperdata.Feb},
		Child:   PlanInput{},
	}
	after := &PlanSelect{Dim: "Organization", Pred: MemberIs{Ref: "PTE/Joe"}, Child: persp}
	before := &PlanPerspective{
		Varying: "Organization",
		Sem:     perspective.Forward,
		Points:  []int{paperdata.Feb},
		Child:   &PlanSelect{Dim: "Organization", Pred: MemberIs{Ref: "PTE/Joe"}, Child: PlanInput{}},
	}
	a, err := Execute(after, cin)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(before, cin)
	if err != nil {
		t.Fatal(err)
	}
	// In the correct order, PTE/Joe inherits Contractor/Joe's March
	// value; pushed down, Contractor/Joe's data was removed first.
	ids := func(c *cube.Cube) []int {
		return []int{
			c.Dim(0).Member(c.Dim(0).MustLookup("PTE/Joe")).LeafOrdinal,
			c.Dim(1).Member(c.Dim(1).MustLookup("NY")).LeafOrdinal,
			paperdata.Mar,
			c.Dim(3).Member(c.Dim(3).MustLookup("Salary")).LeafOrdinal,
		}
	}
	if got := a.Leaf(ids(a)); got != 30 {
		t.Fatalf("correct order: (PTE/Joe, Mar) = %v, want 30", got)
	}
	if got := b.Leaf(ids(b)); !cube.IsNull(got) {
		t.Fatalf("pushed-down order: (PTE/Joe, Mar) = %v, want ⊥ (demonstrating non-equivalence)", got)
	}
}

func TestEliminateFullCover(t *testing.T) {
	cin := paperdata.Warehouse()
	all := make([]int, 12)
	for i := range all {
		all[i] = i
	}
	plan := &PlanPerspective{
		Varying: "Organization",
		Sem:     perspective.Forward,
		Points:  all,
		Child:   PlanInput{},
	}
	opt, rewrites := EliminateFullCover(plan, cin)
	if len(rewrites) != 1 || rewrites[0].Rule != "full-cover-elimination" {
		t.Fatalf("rewrites = %+v", rewrites)
	}
	if _, ok := opt.(PlanInput); !ok {
		t.Fatalf("full-cover plan should reduce to the input: %s", opt)
	}
	// Semantics check: the full-cover perspective really is the
	// identity on leaf cells.
	ref, err := Execute(plan, cin)
	if err != nil {
		t.Fatal(err)
	}
	if !equalLeafCells(t, ref, cin) {
		t.Fatal("full-cover forward perspective should be the identity")
	}
	// Partial cover is not eliminated.
	plan.Points = all[:6]
	if _, rewrites := EliminateFullCover(plan, cin); len(rewrites) != 0 {
		t.Fatal("partial cover must not be eliminated")
	}
}

func TestPlanStrings(t *testing.T) {
	p := &PlanSelect{
		Dim:  "Organization",
		Pred: MemberIs{Ref: "Joe"},
		Child: &PlanChanges{
			Varying: "Organization",
			Changes: []Change{{Member: "Lisa", OldParent: "FTE", NewParent: "PTE", T: 3}},
			Child: &PlanPerspective{
				Varying: "Organization", Sem: perspective.Forward, Points: []int{1},
				Child: PlanInput{},
			},
		},
	}
	s := p.String()
	for _, want := range []string{"σ[", "S[", "ρΦ[", "Cin"} {
		if !containsStr(s, want) {
			t.Fatalf("plan string %q missing %q", s, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// randomPlan builds a random valid plan over the paper warehouse using
// only rewrite-eligible and -ineligible operators.
func randomPlan(r *rand.Rand) Plan {
	var p Plan = PlanInput{}
	sems := []perspective.Semantics{perspective.Static, perspective.Forward,
		perspective.ExtendedForward, perspective.Backward, perspective.ExtendedBackward}
	preds := []Predicate{
		MemberIs{Ref: "Joe"},
		MemberIs{Ref: "Lisa"},
		DescendantOf{Ref: "FTE"},
		DescendantOf{Ref: "East"},
		Not{X: MemberIs{Ref: "Sue"}},
	}
	dims := []string{"Organization", "Organization", "Organization", "Location"}
	depth := 1 + r.Intn(4)
	for i := 0; i < depth; i++ {
		switch r.Intn(3) {
		case 0:
			j := r.Intn(len(preds))
			dim := dims[j%len(dims)]
			if _, isLoc := preds[j].(DescendantOf); isLoc && preds[j].(DescendantOf).Ref == "East" {
				dim = "Location"
			} else if dim == "Location" {
				dim = "Organization"
			}
			p = &PlanSelect{Dim: dim, Pred: preds[j], Child: p}
		case 1:
			n := 1 + r.Intn(3)
			pts := make([]int, n)
			for k := range pts {
				pts[k] = r.Intn(12)
			}
			p = &PlanPerspective{Varying: "Organization", Sem: sems[r.Intn(len(sems))], Points: pts, Child: p}
		case 2:
			p = &PlanChanges{
				Varying: "Organization",
				Changes: []Change{{Member: "Lisa", OldParent: "FTE", NewParent: "PTE", T: 1 + r.Intn(10)}},
				Child:   p,
			}
		}
	}
	return p
}

// Property: Optimize preserves plan semantics on the paper warehouse
// for random plans. Plans that fail to execute (e.g. a second split of
// an already-moved Lisa) must fail identically in both versions.
func TestQuickOptimizeEquivalence(t *testing.T) {
	cin := paperdata.Warehouse()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		plan := randomPlan(r)
		opt, _ := Optimize(plan)
		ref, errRef := Execute(plan, cin)
		got, errOpt := Execute(opt, cin)
		if (errRef != nil) != (errOpt != nil) {
			t.Logf("seed %d: error mismatch %v vs %v for %s", seed, errRef, errOpt, plan)
			return false
		}
		if errRef != nil {
			return true
		}
		if !equalLeafCells(t, ref, got) {
			t.Logf("seed %d: plan %s -> %s", seed, plan, opt)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
