package algebra

import (
	"fmt"

	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
)

// Transfer is the data-driven hypothetical scenario of the paper's
// introduction: "assume that 10% of PTEs' salary during first quarter
// in NY was instead given to PTEs in MA — structure stays the same but
// data allocation changes." A fraction of every leaf cell whose
// coordinate in Dim is From (and which satisfies the scope) moves to
// the corresponding cell with coordinate To. The paper defers data-
// driven scenarios to Balmin et al. [1]; this operator covers the
// reallocation form its example uses.
type Transfer struct {
	// Dim is the dimension along which value moves, e.g. Location.
	Dim string
	// From and To are leaf members of Dim, e.g. NY and MA.
	From, To string
	// Fraction in [0, 1] of each matching cell's value to move.
	Fraction float64
	// Scope restricts the transfer to cells whose coordinates fall
	// under the named members, e.g. Organization=PTE, Time=Qtr1,
	// Measures=Salary.
	Scope []cube.ScopeCond
}

// ApplyTransfer evaluates a data-driven scenario: the output cube holds
// the reallocated leaf cells; aggregates are evaluated on demand under
// either mode via CellValue, as with structural scenarios.
func ApplyTransfer(cin *cube.Cube, tr Transfer) (*cube.Cube, error) {
	di := cin.DimIndex(tr.Dim)
	if di < 0 {
		return nil, fmt.Errorf("algebra: transfer: unknown dimension %q", tr.Dim)
	}
	if tr.Fraction < 0 || tr.Fraction > 1 {
		return nil, fmt.Errorf("algebra: transfer: fraction %v outside [0,1]", tr.Fraction)
	}
	d := cin.Dim(di)
	from, err := d.Lookup(tr.From)
	if err != nil {
		return nil, fmt.Errorf("algebra: transfer: %w", err)
	}
	to, err := d.Lookup(tr.To)
	if err != nil {
		return nil, fmt.Errorf("algebra: transfer: %w", err)
	}
	fm, tm := d.Member(from), d.Member(to)
	if fm.LeafOrdinal < 0 || tm.LeafOrdinal < 0 {
		return nil, fmt.Errorf("algebra: transfer: %q and %q must be leaf members of %s", tr.From, tr.To, tr.Dim)
	}
	if from == to {
		return nil, fmt.Errorf("algebra: transfer: source and destination are both %q", tr.From)
	}
	// Resolve scope conditions to (dim index, ancestor) pairs.
	type cond struct {
		di  int
		anc dimension.MemberID
	}
	var conds []cond
	for _, sc := range tr.Scope {
		si := cin.DimIndex(sc.Dim)
		if si < 0 {
			return nil, fmt.Errorf("algebra: transfer: unknown scope dimension %q", sc.Dim)
		}
		anc, err := cin.Dim(si).Lookup(sc.Member)
		if err != nil {
			return nil, fmt.Errorf("algebra: transfer: scope: %w", err)
		}
		conds = append(conds, cond{di: si, anc: anc})
	}

	out := cin.Clone()
	matched := 0
	tmp := make([]int, cin.NumDims())
	cin.Store().NonNull(func(addr []int, v float64) bool {
		if addr[di] != fm.LeafOrdinal {
			return true
		}
		for _, c := range conds {
			leaf := cin.Dim(c.di).Leaf(addr[c.di]).ID
			if !cin.Dim(c.di).IsDescendant(leaf, c.anc) {
				return true
			}
		}
		matched++
		moved := v * tr.Fraction
		copy(tmp, addr)
		out.SetLeaf(tmp, v-moved)
		tmp[di] = tm.LeafOrdinal
		cur := out.Leaf(tmp)
		if cube.IsNull(cur) {
			cur = 0
		}
		out.SetLeaf(tmp, cur+moved)
		return true
	})
	if matched == 0 {
		return nil, fmt.Errorf("algebra: transfer matched no cells (dim %s, from %s, scope %v)", tr.Dim, tr.From, tr.Scope)
	}
	return out, nil
}
