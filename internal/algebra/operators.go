package algebra

import (
	"fmt"

	"whatifolap/internal/bitset"
	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
	"whatifolap/internal/perspective"
)

// Select implements σ_p (Definition 4.1): the output cube is the input
// with the sub-cubes of the named dimension's leaf members that fail the
// predicate removed. Derived cells whose coordinate in the dimension is
// non-leaf are retained (their values correspond to non-visual
// evaluation until re-evaluated).
//
// If the dimension is varying, removed instances also get an empty
// validity set in the output binding: a member with no data is inactive
// (paper §2), and keeping the metadata consistent with the data makes
// σ compose correctly with subsequent perspectives (the optimizer's
// static-as-selection rewrite relies on this).
func Select(cin *cube.Cube, dimName string, p Predicate) (*cube.Cube, error) {
	di := cin.DimIndex(dimName)
	if di < 0 {
		return nil, fmt.Errorf("algebra: select: unknown dimension %q", dimName)
	}
	d := cin.Dim(di)
	keep := make([]bool, d.NumLeaves())
	for o, id := range d.Leaves() {
		ok, err := p.Eval(cin, di, id)
		if err != nil {
			return nil, err
		}
		keep[o] = ok
	}
	out := cin.CloneSchema()
	cin.Store().NonNull(func(addr []int, v float64) bool {
		if keep[addr[di]] {
			out.SetLeaf(addr, v)
		}
		return true
	})
	cin.DerivedCells(func(ids []dimension.MemberID, v float64) bool {
		m := d.Member(ids[di])
		if m.LeafOrdinal < 0 || keep[m.LeafOrdinal] {
			out.SetValue(ids, v)
		}
		return true
	})
	// Invalidate removed instances in the output's bindings.
	bs := out.Bindings()
	for i, b := range bs {
		if b.Varying != d {
			continue
		}
		nb := b.Clone(b.Varying, b.Param)
		for o, id := range d.Leaves() {
			if !keep[o] {
				nb.VS[id] = bitset.New(b.Param.NumLeaves())
			}
		}
		bs[i] = nb
	}
	return out, nil
}

// VSFunc supplies the output validity set of a varying-dimension leaf
// instance. A nil return means the instance's validity is unchanged
// (identity).
type VSFunc func(id dimension.MemberID) *bitset.Set

// Relocate implements ρ(Cin, VSout) (Definition 4.4): for every leaf cell
// (d, t, ē) of the output, if t ∈ VSout(d) the value is copied from the
// input cell of the instance d_t of d's member valid at t; otherwise the
// cell is ⊥. Non-leaf (derived) cells coincide with the input, matching
// non-visual evaluation.
//
// The implementation pushes input cells to their unique output target:
// validity sets of instances of one member are pairwise disjoint, so an
// input cell (d_t, t, ē) lands on at most one instance d with
// t ∈ VSout(d).
func Relocate(cin *cube.Cube, b *dimension.Binding, vsOut VSFunc) (*cube.Cube, error) {
	di := cin.DimIndex(b.Varying.Name())
	pi := cin.DimIndex(b.Param.Name())
	if di < 0 || pi < 0 {
		return nil, fmt.Errorf("algebra: relocate: binding dimensions %s/%s not in cube schema",
			b.Varying.Name(), b.Param.Name())
	}
	d := b.Varying

	// For each (source leaf ordinal, t) compute the target leaf ordinal,
	// or -1 when the cell vanishes. Sources sharing a base member share
	// the target table.
	nT := b.Param.NumLeaves()
	target := make([][]int, d.NumLeaves())
	for o, id := range d.Leaves() {
		base := d.Member(id).Name
		row := make([]int, nT)
		for t := 0; t < nT; t++ {
			row[t] = -1
			// The source cell at (id, t) is meaningful only if id is
			// valid at t in the input.
			if !b.ValiditySet(id).Contains(t) {
				continue
			}
			// Find the (unique) sibling instance whose output validity
			// covers t; it pulls this cell's value.
			for _, sib := range d.Instances(base) {
				svs := vsOut(sib)
				if svs == nil {
					// Identity: sibling keeps its input validity.
					svs = b.ValiditySet(sib)
				}
				if svs.Contains(t) {
					row[t] = d.Member(sib).LeafOrdinal
					break
				}
			}
		}
		target[o] = row
	}

	out := cin.CloneSchema()
	addr := make([]int, cin.NumDims())
	cin.Store().NonNull(func(in []int, v float64) bool {
		tgt := target[in[di]][in[pi]]
		if tgt < 0 {
			return true
		}
		copy(addr, in)
		addr[di] = tgt
		out.SetLeaf(addr, v)
		return true
	})
	// Non-leaf cells coincide with the input (Definition 4.4).
	cin.DerivedCells(func(ids []dimension.MemberID, v float64) bool {
		out.SetValue(ids, v)
		return true
	})
	// The output binding reflects the transformed validity sets.
	nb := b.Clone(b.Varying, b.Param)
	for _, id := range d.Leaves() {
		if s := vsOut(id); s != nil {
			nb.VS[id] = s.Clone()
		}
	}
	replaceBinding(out, b, nb)
	return out, nil
}

// replaceBinding swaps binding old for nb in the cube's binding list.
func replaceBinding(c *cube.Cube, old, nb *dimension.Binding) {
	bs := c.Bindings()
	for i, b := range bs {
		if b == old {
			bs[i] = nb
			return
		}
	}
	// The schema clone shares the bindings slice contents; if old was not
	// found the cube had no such binding, which cannot happen for cubes
	// produced by CloneSchema of the input.
	panic("algebra: relocate: input binding not found in output cube")
}

// Change is one tuple of the positive-scenario relation R(m, o, n, t)
// (paper §3.4): the instance of member m currently under parent o is
// hypothetically reclassified under non-leaf member n from parameter
// moment t onward.
type Change struct {
	Member    string // base name of the (leaf) member, e.g. "Lisa"
	OldParent string // path of the current parent, e.g. "FTE"
	NewParent string // path of the hypothetical parent, e.g. "PTE"
	T         int    // parameter leaf ordinal of the change moment
}

// SplitPlan is the metadata outcome of planning a positive scenario: the
// extended varying dimension, its rebased binding with split validity
// sets, and the per-moment cell redirection map. The perspective-cube
// engine consumes plans directly; Split materializes them on a cube.
type SplitPlan struct {
	// Dim is the cloned-and-extended varying dimension. Member IDs of
	// pre-existing members are stable; leaf ordinals may differ.
	Dim *dimension.Dimension
	// Binding is the rebased binding with post-split validity sets.
	Binding *dimension.Binding
	// Redirect maps a source instance's leaf ID to its per-moment
	// destination leaf ID (identity when unchanged). Instances absent
	// from the map are untouched.
	Redirect map[dimension.MemberID][]dimension.MemberID
}

// PlanSplit computes the dimension extension, validity-set splits and
// cell redirections for a positive-scenario relation R without touching
// cell data (the metadata half of Definition 4.5).
func PlanSplit(b *dimension.Binding, changes []Change) (*SplitPlan, error) {
	if !b.Param.Ordered() {
		return nil, fmt.Errorf("algebra: split: parameter dimension %s must be ordered", b.Param.Name())
	}
	nT := b.Param.NumLeaves()
	nd := b.Varying.Clone()
	nb := b.Clone(nd, b.Param)

	// redirect[srcLeafID][t] = destination leaf ID for cells of the
	// source instance at moment t. Start with identity.
	redirect := make(map[dimension.MemberID][]dimension.MemberID)
	redirectFor := func(id dimension.MemberID) []dimension.MemberID {
		if r, ok := redirect[id]; ok {
			return r
		}
		r := make([]dimension.MemberID, nT)
		for t := range r {
			r[t] = id
		}
		redirect[id] = r
		return r
	}

	for _, ch := range changes {
		if ch.T < 0 || ch.T >= nT {
			return nil, fmt.Errorf("algebra: split: change moment %d outside parameter dimension %s", ch.T, b.Param.Name())
		}
		oldPath := ch.OldParent + "/" + ch.Member
		oldID, err := nd.Lookup(oldPath)
		if err != nil {
			return nil, fmt.Errorf("algebra: split: %w", err)
		}
		np, err := nd.Lookup(ch.NewParent)
		if err != nil {
			return nil, fmt.Errorf("algebra: split: new parent: %w", err)
		}
		if nd.Member(np).LeafOrdinal >= 0 {
			return nil, fmt.Errorf("algebra: split: new parent %q must be a non-leaf member", ch.NewParent)
		}
		newPath := nd.Path(np) + "/" + ch.Member
		newID, err := nd.Lookup(newPath)
		if err != nil {
			// Create the new instance.
			newID, err = nd.Add(nd.Path(np), ch.Member)
			if err != nil {
				return nil, fmt.Errorf("algebra: split: %w", err)
			}
			nb.VS[newID] = bitset.New(nT)
		}
		// Split validity: moments ≥ t migrate from old to new.
		oldVS := nb.ValiditySet(oldID).Clone()
		newVS := nb.ValiditySet(newID).Clone()
		moved := bitset.New(nT)
		moved.AddRange(ch.T, nT)
		moved.IntersectWith(oldVS)
		oldVS.SubtractWith(moved)
		newVS.UnionWith(moved)
		nb.VS[oldID] = oldVS
		nb.VS[newID] = newVS
		// Record cell redirection for the moved moments.
		r := redirectFor(oldID)
		moved.ForEach(func(t int) { r[t] = newID })
		// Cells previously redirected to oldID from other sources must
		// follow the move too (chained changes).
		for src, row := range redirect {
			if src == oldID {
				continue
			}
			for t, dst := range row {
				if dst == oldID && moved.Contains(t) {
					row[t] = newID
				}
			}
		}
	}
	if err := nb.Validate(); err != nil {
		return nil, fmt.Errorf("algebra: split produced invalid binding: %w", err)
	}
	return &SplitPlan{Dim: nd, Binding: nb, Redirect: redirect}, nil
}

// Split implements S(Cin, R) (Definition 4.5). For each change the
// varying dimension is cloned and extended with the instance
// NewParent/Member (if absent); leaf cells of OldParent/Member at
// moments ≥ t move to the new instance, and validity sets are split
// accordingly. Non-leaf cells are copied unchanged (non-visual default).
//
// Changes are applied left to right, so a member may be moved several
// times at increasing moments (scenario S1 of the paper's introduction).
func Split(cin *cube.Cube, varyingName string, changes []Change) (*cube.Cube, error) {
	if len(changes) == 0 {
		return cin.Clone(), nil
	}
	b := cin.BindingFor(varyingName)
	if b == nil {
		return nil, fmt.Errorf("algebra: split: dimension %q has no varying binding", varyingName)
	}
	di := cin.DimIndex(varyingName)
	pi := cin.DimIndex(b.Param.Name())
	plan, err := PlanSplit(b, changes)
	if err != nil {
		return nil, err
	}
	nd, nb, redirect := plan.Dim, plan.Binding, plan.Redirect

	// Build the output cube over the new dimension.
	dims := make([]*dimension.Dimension, cin.NumDims())
	copy(dims, cin.Dims())
	dims[di] = nd
	out := cube.New(dims...)
	out.SetRules(cin.Rules())
	// Rebase bindings: the varying binding is nb; others carry over
	// unless they reference the replaced dimension.
	for _, ob := range cin.Bindings() {
		switch {
		case ob == b:
			if err := out.AddBinding(nb); err != nil {
				return nil, err
			}
		case ob.Varying == b.Varying || ob.Param == b.Varying:
			return nil, fmt.Errorf("algebra: split: dimension %s participates in multiple bindings; not supported", varyingName)
		default:
			if err := out.AddBinding(ob); err != nil {
				return nil, err
			}
		}
	}

	// Copy leaf cells, redirecting moved moments. Member IDs are stable
	// across Clone, but leaf ordinals may shift after adding instances,
	// so go through member IDs.
	addr := make([]int, cin.NumDims())
	cin.Store().NonNull(func(in []int, v float64) bool {
		srcID := cin.Dim(di).Leaf(in[di]).ID
		dstID := srcID
		if r, ok := redirect[srcID]; ok {
			dstID = r[in[pi]]
		}
		copy(addr, in)
		// Recompute ordinals for every dimension against the output
		// dims (only di can differ, but be defensive).
		addr[di] = nd.Member(dstID).LeafOrdinal
		out.SetLeaf(addr, v)
		return true
	})
	// Non-leaf cells are copied unchanged (non-visual default,
	// Definition 4.5). Member IDs of pre-existing members are stable.
	cin.DerivedCells(func(ids []dimension.MemberID, v float64) bool {
		out.SetValue(ids, v)
		return true
	})
	return out, nil
}

// Eval implements E(C¹, C²) (Definition 4.6) for a requested set of
// cells: leaf cells read from C², non-leaf cells evaluate C¹'s rules
// with C² as the data scope. The full perspective cube is exponential in
// materialized form, so evaluation is demand-driven.
func Eval(defCube, dataCube *cube.Cube, ids []dimension.MemberID) (float64, error) {
	return defCube.Rules().EvalCell(defCube, dataCube, ids)
}

// CellValue reads one cell of a what-if query result under the given
// evaluation mode (paper §3.3): visual re-evaluates rules against the
// output cube cout; non-visual evaluates them against the input cube
// cin, retaining original aggregates. Leaf cells always come from cout.
func CellValue(cin, cout *cube.Cube, ids []dimension.MemberID, mode perspective.Mode) (float64, error) {
	if cout.IsLeafCell(ids) {
		// Leaf cells may still be rule-defined (e.g. Margin): evaluate
		// with the leaf scope of the output cube.
		return cout.Rules().EvalCell(cout, cout, ids)
	}
	if mode == perspective.Visual {
		// Rule definitions and data scope both come from the output
		// cube: split may have extended the varying dimension, and the
		// rule set is shared between input and output, so this is
		// E(Cin, Cout) with hierarchies resolved against Cout.
		return Eval(cout, cout, ids)
	}
	// Non-visual retains input aggregates. A tuple naming a member that
	// does not exist in the input — a hypothetical instance created by
	// split — has no input cell, so it is ⊥ (Definition 4.5: non-leaf
	// cells are copied from the input).
	for i, id := range ids {
		if int(id) >= cin.Dim(i).NumMembers() {
			return cube.Null, nil
		}
	}
	return Eval(cin, cin, ids)
}

// ApplyPerspectives runs the complete negative-scenario pipeline of
// Theorem 4.1 for the binding of the named varying dimension:
//
//	Cout = ρ(Cin, Φ_sem(VSin, P))
//
// Instances whose transformed validity set is empty vanish from the
// output (their sub-cubes are removed, Definition 3.4). The returned
// cube holds leaf cells; non-leaf cells are evaluated on demand through
// CellValue with the desired mode.
func ApplyPerspectives(cin *cube.Cube, varyingName string, sem perspective.Semantics, perspectives []int) (*cube.Cube, error) {
	b := cin.BindingFor(varyingName)
	if b == nil {
		return nil, fmt.Errorf("algebra: dimension %q has no varying binding", varyingName)
	}
	res, err := perspective.Apply(sem, b, perspectives)
	if err != nil {
		return nil, err
	}
	return Relocate(cin, b, func(id dimension.MemberID) *bitset.Set { return res.VSOut[id] })
}

// ApplyChanges runs the positive-scenario pipeline: Cout = S(Cin, R).
func ApplyChanges(cin *cube.Cube, varyingName string, changes []Change) (*cube.Cube, error) {
	return Split(cin, varyingName, changes)
}
