package algebra

import (
	"math"
	"testing"

	"whatifolap/internal/bitset"
	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
	"whatifolap/internal/paperdata"
	"whatifolap/internal/perspective"
)

// cellIDs resolves a 4-tuple (org, loc, time, measure) against the paper
// warehouse schema.
func cellIDs(c *cube.Cube, org, loc string, month int, meas string) []dimension.MemberID {
	return []dimension.MemberID{
		c.Dim(0).MustLookup(org),
		c.Dim(1).MustLookup(loc),
		c.Dim(2).Leaf(month).ID,
		c.Dim(3).MustLookup(meas),
	}
}

// nonLeafIDs resolves a tuple with arbitrary member refs (leaf or not).
func nonLeafIDs(c *cube.Cube, refs ...string) []dimension.MemberID {
	out := make([]dimension.MemberID, len(refs))
	for i, r := range refs {
		out[i] = c.Dim(i).MustLookup(r)
	}
	return out
}

func TestSelectMemberIs(t *testing.T) {
	c := paperdata.Warehouse()
	out, err := Select(c, "Organization", MemberIs{Ref: "Joe"})
	if err != nil {
		t.Fatal(err)
	}
	// All three Joe instances stay; everyone else's data is gone.
	if v := out.Value(cellIDs(out, "FTE/Joe", "NY", paperdata.Jan, "Salary")); v != 10 {
		t.Fatalf("FTE/Joe Jan = %v, want 10", v)
	}
	if v := out.Value(cellIDs(out, "Contractor/Joe", "NY", paperdata.Mar, "Salary")); v != 30 {
		t.Fatalf("Contractor/Joe Mar = %v, want 30", v)
	}
	if v := out.Value(cellIDs(out, "FTE/Lisa", "NY", paperdata.Jan, "Salary")); !cube.IsNull(v) {
		t.Fatalf("Lisa should be removed, got %v", v)
	}
}

func TestSelectByPathKeepsSingleInstance(t *testing.T) {
	c := paperdata.Warehouse()
	out, err := Select(c, "Organization", MemberIs{Ref: "PTE/Joe"})
	if err != nil {
		t.Fatal(err)
	}
	if v := out.Value(cellIDs(out, "PTE/Joe", "NY", paperdata.Feb, "Salary")); v != 10 {
		t.Fatalf("PTE/Joe Feb = %v, want 10", v)
	}
	if v := out.Value(cellIDs(out, "FTE/Joe", "NY", paperdata.Jan, "Salary")); !cube.IsNull(v) {
		t.Fatalf("FTE/Joe should be removed, got %v", v)
	}
}

func TestSelectDescendantOf(t *testing.T) {
	c := paperdata.Warehouse()
	out, err := Select(c, "Organization", DescendantOf{Ref: "FTE"})
	if err != nil {
		t.Fatal(err)
	}
	if v := out.Value(cellIDs(out, "FTE/Lisa", "NY", paperdata.Feb, "Salary")); v != 10 {
		t.Fatalf("Lisa Feb = %v, want 10", v)
	}
	if v := out.Value(cellIDs(out, "PTE/Tom", "NY", paperdata.Feb, "Salary")); !cube.IsNull(v) {
		t.Fatalf("Tom should be removed, got %v", v)
	}
}

func TestSelectVSIntersects(t *testing.T) {
	c := paperdata.Warehouse()
	// Instances valid in Feb or Apr: PTE/Joe (Feb), Contractor/Joe (Apr)
	// and all the always-valid members, but not FTE/Joe (Jan only).
	out, err := Select(c, "Organization", VSIntersects{ParamOrdinals: []int{paperdata.Feb, paperdata.Apr}})
	if err != nil {
		t.Fatal(err)
	}
	if v := out.Value(cellIDs(out, "FTE/Joe", "NY", paperdata.Jan, "Salary")); !cube.IsNull(v) {
		t.Fatalf("FTE/Joe should be removed, got %v", v)
	}
	if v := out.Value(cellIDs(out, "PTE/Joe", "NY", paperdata.Feb, "Salary")); v != 10 {
		t.Fatalf("PTE/Joe Feb = %v, want 10", v)
	}
}

func TestSelectValueCond(t *testing.T) {
	c := paperdata.Warehouse()
	// "salary over 20 in some month in NY" selects only Contractor/Joe
	// (Mar salary 30).
	out, err := Select(c, "Organization", ValueCond{
		Fix:   map[string]string{"Location": "NY", "Measures": "Salary"},
		Op:    GT,
		Const: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := out.Value(cellIDs(out, "Contractor/Joe", "NY", paperdata.Mar, "Salary")); v != 30 {
		t.Fatalf("Contractor/Joe Mar = %v, want 30", v)
	}
	if v := out.Value(cellIDs(out, "FTE/Lisa", "NY", paperdata.Jan, "Salary")); !cube.IsNull(v) {
		t.Fatalf("Lisa should be removed, got %v", v)
	}
}

func TestSelectBooleanCombinators(t *testing.T) {
	c := paperdata.Warehouse()
	p := Or{
		L: And{L: DescendantOf{Ref: "PTE"}, R: Not{X: MemberIs{Ref: "Joe"}}},
		R: MemberIs{Ref: "Jane"},
	}
	out, err := Select(c, "Organization", p)
	if err != nil {
		t.Fatal(err)
	}
	if v := out.Value(cellIDs(out, "PTE/Tom", "NY", paperdata.Jan, "Salary")); v != 10 {
		t.Fatalf("Tom = %v, want 10", v)
	}
	if v := out.Value(cellIDs(out, "Contractor/Jane", "NY", paperdata.Jan, "Salary")); v != 10 {
		t.Fatalf("Jane = %v, want 10", v)
	}
	if v := out.Value(cellIDs(out, "PTE/Joe", "NY", paperdata.Feb, "Salary")); !cube.IsNull(v) {
		t.Fatalf("PTE/Joe should be removed, got %v", v)
	}
}

func TestSelectUnknownDimension(t *testing.T) {
	c := paperdata.Warehouse()
	if _, err := Select(c, "Nope", MemberIs{Ref: "x"}); err == nil {
		t.Fatal("unknown dimension should fail")
	}
}

// TestPaperFig4ForwardVisual reproduces the paper's Fig. 4 discussion:
// with Cin = the Fig. 2 warehouse, P = {Feb, Apr}, forward semantics and
// visual mode, "the leaf cell (PTE/Joe, Mar) has value 30 (instead of
// ⊥), inherited from the corresponding cell (Contractor/Joe, Mar). Note
// that (PTE/Joe, Jan) remains ⊥ since PTE/Joe was not valid in Jan."
func TestPaperFig4ForwardVisual(t *testing.T) {
	cin := paperdata.Warehouse()
	cout, err := ApplyPerspectives(cin, "Organization", perspective.Forward,
		[]int{paperdata.Feb, paperdata.Apr})
	if err != nil {
		t.Fatal(err)
	}
	// The headline inheritance.
	if v := cout.Value(cellIDs(cout, "PTE/Joe", "NY", paperdata.Mar, "Salary")); v != 30 {
		t.Fatalf("(PTE/Joe, Mar) = %v, want 30 inherited from Contractor/Joe", v)
	}
	if v := cout.Value(cellIDs(cout, "PTE/Joe", "NY", paperdata.Jan, "Salary")); !cube.IsNull(v) {
		t.Fatalf("(PTE/Joe, Jan) = %v, want ⊥", v)
	}
	// PTE/Joe keeps its own Feb value.
	if v := cout.Value(cellIDs(cout, "PTE/Joe", "NY", paperdata.Feb, "Salary")); v != 10 {
		t.Fatalf("(PTE/Joe, Feb) = %v, want 10", v)
	}
	// Contractor/Joe covers [Apr, ∞): keeps Apr and Jun, May stays ⊥.
	if v := cout.Value(cellIDs(cout, "Contractor/Joe", "NY", paperdata.Apr, "Salary")); v != 10 {
		t.Fatalf("(Contractor/Joe, Apr) = %v, want 10", v)
	}
	if v := cout.Value(cellIDs(cout, "Contractor/Joe", "NY", paperdata.May, "Salary")); !cube.IsNull(v) {
		t.Fatalf("(Contractor/Joe, May) = %v, want ⊥", v)
	}
	// Contractor/Joe's own Mar value moved away to PTE/Joe.
	if v := cout.Value(cellIDs(cout, "Contractor/Joe", "NY", paperdata.Mar, "Salary")); !cube.IsNull(v) {
		t.Fatalf("(Contractor/Joe, Mar) = %v, want ⊥ (moved to PTE/Joe)", v)
	}
	// FTE/Joe is dropped entirely.
	if v := cout.Value(cellIDs(cout, "FTE/Joe", "NY", paperdata.Jan, "Salary")); !cube.IsNull(v) {
		t.Fatalf("(FTE/Joe, Jan) = %v, want ⊥ (instance dropped)", v)
	}

	// Visual mode: Q1 for PTE/Joe = Feb 10 + Mar 30 = 40.
	q1, err := CellValue(cin, cout, nonLeafIDs(cout, "PTE/Joe", "NY", "Qtr1", "Salary"), perspective.Visual)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != 40 {
		t.Fatalf("visual Q1(PTE/Joe) = %v, want 40", q1)
	}
	// Non-visual mode retains the input aggregate: PTE/Joe's original
	// Q1 = 10 (Feb only).
	q1nv, err := CellValue(cin, cout, nonLeafIDs(cout, "PTE/Joe", "NY", "Qtr1", "Salary"), perspective.NonVisual)
	if err != nil {
		t.Fatal(err)
	}
	if q1nv != 10 {
		t.Fatalf("non-visual Q1(PTE/Joe) = %v, want 10", q1nv)
	}
	// PTE group total under visual: Tom (10+10+10) + Joe (40) = 70.
	pte, err := CellValue(cin, cout, nonLeafIDs(cout, "PTE", "NY", "Qtr1", "Salary"), perspective.Visual)
	if err != nil {
		t.Fatal(err)
	}
	if pte != 70 {
		t.Fatalf("visual Q1(PTE) = %v, want 70", pte)
	}

	// The output binding reflects the transformed validity sets.
	ob := cout.BindingFor("Organization")
	if ob == nil {
		t.Fatal("output cube lost its binding")
	}
	pteJoe := cout.Dim(0).MustLookup("PTE/Joe")
	if vs := ob.ValiditySet(pteJoe); !vs.Contains(paperdata.Mar) || vs.Contains(paperdata.Apr) {
		t.Fatalf("output VS(PTE/Joe) = %v, want {Feb, Mar}", vs)
	}
}

func TestStaticPerspectiveKeepsOriginalValues(t *testing.T) {
	cin := paperdata.Warehouse()
	cout, err := ApplyPerspectives(cin, "Organization", perspective.Static, []int{paperdata.Jan})
	if err != nil {
		t.Fatal(err)
	}
	if v := cout.Value(cellIDs(cout, "FTE/Joe", "NY", paperdata.Jan, "Salary")); v != 10 {
		t.Fatalf("(FTE/Joe, Jan) = %v, want 10", v)
	}
	for _, who := range []string{"PTE/Joe", "Contractor/Joe"} {
		for m := paperdata.Jan; m <= paperdata.Jun; m++ {
			if v := cout.Value(cellIDs(cout, who, "NY", m, "Salary")); !cube.IsNull(v) {
				t.Fatalf("(%s,%d) = %v, want ⊥ (row removed)", who, m, v)
			}
		}
	}
	// Untouched members keep all values.
	if v := cout.Value(cellIDs(cout, "FTE/Lisa", "NY", paperdata.Jun, "Salary")); v != 10 {
		t.Fatalf("Lisa Jun = %v, want 10", v)
	}
}

func TestBackwardPerspectiveValues(t *testing.T) {
	cin := paperdata.Warehouse()
	cout, err := ApplyPerspectives(cin, "Organization", perspective.Backward, []int{paperdata.Apr})
	if err != nil {
		t.Fatal(err)
	}
	// Contractor/Joe (valid at Apr) covers the past: inherits Jan's
	// value from FTE/Joe and Feb's from PTE/Joe.
	if v := cout.Value(cellIDs(cout, "Contractor/Joe", "NY", paperdata.Jan, "Salary")); v != 10 {
		t.Fatalf("(Contractor/Joe, Jan) = %v, want 10 inherited from FTE/Joe", v)
	}
	if v := cout.Value(cellIDs(cout, "Contractor/Joe", "NY", paperdata.Feb, "Salary")); v != 10 {
		t.Fatalf("(Contractor/Joe, Feb) = %v, want 10 inherited from PTE/Joe", v)
	}
	if v := cout.Value(cellIDs(cout, "Contractor/Joe", "NY", paperdata.Mar, "Salary")); v != 30 {
		t.Fatalf("(Contractor/Joe, Mar) = %v, want 30 (own value)", v)
	}
	if v := cout.Value(cellIDs(cout, "FTE/Joe", "NY", paperdata.Jan, "Salary")); !cube.IsNull(v) {
		t.Fatalf("(FTE/Joe, Jan) should be ⊥ after backward relocation, got %v", v)
	}
}

// TestPaperFig5PositiveScenario exercises the split operator on the
// paper's positive-scenario example (§3.4): R = {(Lisa, FTE, PTE, Apr)} —
// Lisa is hypothetically reclassified from FTE to PTE in April.
func TestPaperFig5PositiveScenario(t *testing.T) {
	cin := paperdata.Warehouse()
	cout, err := ApplyChanges(cin, "Organization", []Change{
		{Member: "Lisa", OldParent: "FTE", NewParent: "PTE", T: paperdata.Apr},
	})
	if err != nil {
		t.Fatal(err)
	}
	// FTE/Lisa keeps Jan..Mar; PTE/Lisa owns Apr..Jun.
	for m := paperdata.Jan; m <= paperdata.Mar; m++ {
		if v := cout.Value(cellIDs(cout, "FTE/Lisa", "NY", m, "Salary")); v != 10 {
			t.Fatalf("(FTE/Lisa,%d) = %v, want 10", m, v)
		}
	}
	for m := paperdata.Apr; m <= paperdata.Jun; m++ {
		if v := cout.Value(cellIDs(cout, "FTE/Lisa", "NY", m, "Salary")); !cube.IsNull(v) {
			t.Fatalf("(FTE/Lisa,%d) = %v, want ⊥ after split", m, v)
		}
		if v := cout.Value(cellIDs(cout, "PTE/Lisa", "NY", m, "Salary")); v != 10 {
			t.Fatalf("(PTE/Lisa,%d) = %v, want 10", m, v)
		}
	}
	// Validity sets split accordingly.
	b := cout.BindingFor("Organization")
	fteL := cout.Dim(0).MustLookup("FTE/Lisa")
	pteL := cout.Dim(0).MustLookup("PTE/Lisa")
	if vs := b.ValiditySet(fteL); vs.Contains(paperdata.Apr) || !vs.Contains(paperdata.Mar) {
		t.Fatalf("VS(FTE/Lisa) = %v", vs)
	}
	if vs := b.ValiditySet(pteL); !vs.Contains(paperdata.Apr) || vs.Contains(paperdata.Mar) {
		t.Fatalf("VS(PTE/Lisa) = %v", vs)
	}

	// Visual mode sees the move in the aggregates: Q2 PTE = Tom 30 +
	// Lisa 30 + (no Joe under PTE in Q2) = 60.
	q2, err := CellValue(cin, cout, nonLeafIDs(cout, "PTE", "NY", "Qtr2", "Salary"), perspective.Visual)
	if err != nil {
		t.Fatal(err)
	}
	if q2 != 60 {
		t.Fatalf("visual Q2(PTE) = %v, want 60", q2)
	}
	// Non-visual keeps the original total (Tom 30 only).
	q2nv, err := CellValue(cin, cout, nonLeafIDs(cout, "PTE", "NY", "Qtr2", "Salary"), perspective.NonVisual)
	if err != nil {
		t.Fatal(err)
	}
	if q2nv != 30 {
		t.Fatalf("non-visual Q2(PTE) = %v, want 30", q2nv)
	}
	// The input cube is untouched.
	if _, err := cin.Dim(0).Lookup("PTE/Lisa"); err == nil {
		t.Fatal("split mutated the input dimension")
	}
}

// TestSplitChained reproduces scenario S1 of the introduction: "What if
// Tom became a contractor from March onward and became an FTE July
// onward?"
func TestSplitChained(t *testing.T) {
	cin := paperdata.Warehouse()
	cout, err := ApplyChanges(cin, "Organization", []Change{
		{Member: "Tom", OldParent: "PTE", NewParent: "Contractor", T: paperdata.Mar},
		{Member: "Tom", OldParent: "Contractor", NewParent: "FTE", T: paperdata.Jul},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := cout.BindingFor("Organization")
	pte := cout.Dim(0).MustLookup("PTE/Tom")
	con := cout.Dim(0).MustLookup("Contractor/Tom")
	fte := cout.Dim(0).MustLookup("FTE/Tom")
	if vs := b.ValiditySet(pte); !(vs.Contains(paperdata.Jan) && vs.Contains(paperdata.Feb) && !vs.Contains(paperdata.Mar)) {
		t.Fatalf("VS(PTE/Tom) = %v, want {Jan,Feb}", vs)
	}
	if vs := b.ValiditySet(con); !(vs.Contains(paperdata.Mar) && vs.Contains(paperdata.Jun) && !vs.Contains(paperdata.Jul)) {
		t.Fatalf("VS(Contractor/Tom) = %v, want {Mar..Jun}", vs)
	}
	if vs := b.ValiditySet(fte); !(vs.Contains(paperdata.Jul) && vs.Contains(paperdata.Dec) && !vs.Contains(paperdata.Jun)) {
		t.Fatalf("VS(FTE/Tom) = %v, want {Jul..Dec}", vs)
	}
	// Data follows: Tom's Mar..Jun salaries land under Contractor.
	if v := cout.Value(cellIDs(cout, "Contractor/Tom", "NY", paperdata.Apr, "Salary")); v != 10 {
		t.Fatalf("(Contractor/Tom, Apr) = %v, want 10", v)
	}
	if v := cout.Value(cellIDs(cout, "PTE/Tom", "NY", paperdata.Apr, "Salary")); !cube.IsNull(v) {
		t.Fatalf("(PTE/Tom, Apr) = %v, want ⊥", v)
	}
}

func TestSplitErrors(t *testing.T) {
	cin := paperdata.Warehouse()
	if _, err := ApplyChanges(cin, "Location", []Change{{Member: "x", OldParent: "a", NewParent: "b", T: 0}}); err == nil {
		t.Fatal("split on dimension without binding should fail")
	}
	if _, err := ApplyChanges(cin, "Organization", []Change{{Member: "Lisa", OldParent: "PTE", NewParent: "FTE", T: 0}}); err == nil {
		t.Fatal("split of non-existent instance should fail")
	}
	if _, err := ApplyChanges(cin, "Organization", []Change{{Member: "Lisa", OldParent: "FTE", NewParent: "PTE", T: 99}}); err == nil {
		t.Fatal("out-of-range moment should fail")
	}
	if _, err := ApplyChanges(cin, "Organization", []Change{{Member: "Lisa", OldParent: "FTE", NewParent: "Contractor/Jane", T: 3}}); err == nil {
		t.Fatal("leaf new parent should fail")
	}
	// Empty change list is the identity.
	out, err := ApplyChanges(cin, "Organization", nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumCells() != cin.NumCells() {
		t.Fatal("empty split should copy the cube")
	}
}

// Property-like test: relocate conserves the multiset of non-null leaf
// values restricted to moments covered by the output validity sets, and
// never invents cells.
func TestRelocateConservation(t *testing.T) {
	cin := paperdata.Warehouse()
	for _, sem := range []perspective.Semantics{perspective.Static, perspective.Forward,
		perspective.ExtendedForward, perspective.Backward, perspective.ExtendedBackward} {
		for _, ps := range [][]int{{paperdata.Jan}, {paperdata.Feb, paperdata.Apr}, {paperdata.Mar, paperdata.Jun}} {
			cout, err := ApplyPerspectives(cin, "Organization", sem, ps)
			if err != nil {
				t.Fatalf("%v %v: %v", sem, ps, err)
			}
			if cout.NumCells() > cin.NumCells() {
				t.Fatalf("%v %v: output has more cells (%d) than input (%d)",
					sem, ps, cout.NumCells(), cin.NumCells())
			}
			// Every output cell's value must exist at the same
			// (location, time, measure) for some instance in the input.
			sumIn, sumOut := 0.0, 0.0
			cin.Store().NonNull(func(a []int, v float64) bool { sumIn += v; return true })
			cout.Store().NonNull(func(a []int, v float64) bool { sumOut += v; return true })
			if sumOut > sumIn+1e-9 {
				t.Fatalf("%v %v: output sum %v exceeds input %v", sem, ps, sumOut, sumIn)
			}
			if math.IsNaN(sumOut) {
				t.Fatalf("%v %v: NaN leaked into store", sem, ps)
			}
		}
	}
}

func TestRelocateIdentityWhenVSUnchanged(t *testing.T) {
	cin := paperdata.Warehouse()
	b := cin.BindingFor("Organization")
	// A nil VSFunc result means "keep the input validity set", so the
	// relocation is the identity on cell data.
	cout, err := Relocate(cin, b, func(id dimension.MemberID) *bitset.Set { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if cout.NumCells() != cin.NumCells() {
		t.Fatalf("identity relocate changed cell count: %d -> %d", cin.NumCells(), cout.NumCells())
	}
	cin.Store().NonNull(func(addr []int, v float64) bool {
		if got := cout.Leaf(addr); got != v {
			t.Fatalf("identity relocate changed cell %v: %v -> %v", addr, v, got)
		}
		return true
	})
}

func BenchmarkApplyPerspectivesForward(b *testing.B) {
	cin := paperdata.Warehouse()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ApplyPerspectives(cin, "Organization", perspective.Forward,
			[]int{paperdata.Feb, paperdata.Apr}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSplitTwoChanges(b *testing.B) {
	cin := paperdata.Warehouse()
	changes := []Change{
		{Member: "Lisa", OldParent: "FTE", NewParent: "PTE", T: paperdata.Apr},
		{Member: "Tom", OldParent: "PTE", NewParent: "Contractor", T: paperdata.Mar},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Split(cin, "Organization", changes); err != nil {
			b.Fatal(err)
		}
	}
}
