package algebra

import (
	"fmt"
	"sort"
	"strings"

	"whatifolap/internal/cube"
	"whatifolap/internal/perspective"
)

// This file implements the paper's first future-work item (§8):
// "Further optimization of what-if queries by manipulation of the
// proposed algebraic operators." What-if queries are represented as
// operator plans; Optimize rewrites a plan into an equivalent cheaper
// one using the algebraic identities proved by the operator
// definitions; Execute evaluates a plan against an input cube.

// Plan is a what-if operator expression over an input cube.
type Plan interface {
	planNode()
	String() string
}

// PlanInput is the leaf of every plan: the input cube itself.
type PlanInput struct{}

// PlanSelect applies σ_Pred on dimension Dim.
type PlanSelect struct {
	Dim   string
	Pred  Predicate
	Child Plan
}

// PlanPerspective applies the negative-scenario pipeline
// ρ(·, Φ_Sem(VSin, Points)) for the named varying dimension.
type PlanPerspective struct {
	Varying string
	Sem     perspective.Semantics
	Points  []int
	Child   Plan
}

// PlanChanges applies the positive-scenario split S(·, Changes).
type PlanChanges struct {
	Varying string
	Changes []Change
	Child   Plan
}

// PlanTransfer applies a data-driven reallocation (the Transfer
// operator).
type PlanTransfer struct {
	Transfer Transfer
	Child    Plan
}

func (PlanInput) planNode()        {}
func (*PlanSelect) planNode()      {}
func (*PlanPerspective) planNode() {}
func (*PlanChanges) planNode()     {}
func (*PlanTransfer) planNode()    {}

// String renders the plan as a nested operator expression.
func (PlanInput) String() string { return "Cin" }
func (p *PlanSelect) String() string {
	return fmt.Sprintf("σ[%s: %s](%s)", p.Dim, p.Pred, p.Child)
}
func (p *PlanPerspective) String() string {
	return fmt.Sprintf("ρΦ[%s %v P=%v](%s)", p.Varying, p.Sem, p.Points, p.Child)
}
func (p *PlanChanges) String() string {
	return fmt.Sprintf("S[%s |R|=%d](%s)", p.Varying, len(p.Changes), p.Child)
}
func (p *PlanTransfer) String() string {
	return fmt.Sprintf("T[%g of %s: %s→%s](%s)",
		p.Transfer.Fraction, p.Transfer.Dim, p.Transfer.From, p.Transfer.To, p.Child)
}

// Execute evaluates the plan bottom-up against the input cube.
func Execute(p Plan, cin *cube.Cube) (*cube.Cube, error) {
	switch x := p.(type) {
	case PlanInput:
		return cin, nil
	case *PlanInput:
		return cin, nil
	case *PlanSelect:
		c, err := Execute(x.Child, cin)
		if err != nil {
			return nil, err
		}
		return Select(c, x.Dim, x.Pred)
	case *PlanPerspective:
		c, err := Execute(x.Child, cin)
		if err != nil {
			return nil, err
		}
		return ApplyPerspectives(c, x.Varying, x.Sem, x.Points)
	case *PlanChanges:
		c, err := Execute(x.Child, cin)
		if err != nil {
			return nil, err
		}
		return ApplyChanges(c, x.Varying, x.Changes)
	case *PlanTransfer:
		c, err := Execute(x.Child, cin)
		if err != nil {
			return nil, err
		}
		return ApplyTransfer(c, x.Transfer)
	}
	return nil, fmt.Errorf("algebra: unknown plan node %T", p)
}

// Rewrite records one optimization step for explain output.
type Rewrite struct {
	Rule   string
	Detail string
}

// Optimize rewrites the plan using the algebraic identities below and
// returns the optimized plan with the applied rewrites, outermost
// first. The identities and their justifications:
//
//  1. select-fusion: σ_p(σ_q(C)) = σ_{p∧q}(C) on the same dimension —
//     immediate from Definition 4.1 (active iff active and satisfies).
//
//  2. static-as-selection: a static perspective equals a validity-set
//     selection, ρ(C, Φs(VSin, P)) = σ_{VS∩P≠∅}(C): Definition 4.2
//     makes Φs the identity on validity sets and Definition 3.4 keeps
//     survivors' original values, which is exactly what σ with a
//     VSIntersects predicate retains. Selections are cheaper: no
//     relocation table, no instance merging.
//
//  3. full-cover elimination: a dynamic perspective whose point set
//     includes every parameter leaf is the identity — every instance is
//     its own most recent perspective at each moment of its validity,
//     so Stretch(d) reproduces VS(d) (Definition 4.3 with P = I).
//
//  4. select-pushdown: σ_p(ρΦ(C)) = ρΦ(σ_p(C)) when p is structural
//     (depends only on member identity/hierarchy, not on cell values or
//     validity sets) and either selects on a non-varying dimension or
//     is member-closed on the varying one (keeps or drops all instances
//     of each member together). Relocation moves values only between
//     instances of one member at fixed coordinates elsewhere, so a
//     selection that never separates siblings commutes with it.
//     Pushing selections down shrinks the cube before the expensive
//     relocation.
//
// Point sets are also normalized (sorted, deduplicated) so plans
// compare structurally.
func Optimize(p Plan) (Plan, []Rewrite) {
	var applied []Rewrite
	// Iterate to a fixed point; each pass applies each rule at most
	// once per node, and every rule strictly shrinks or reorders the
	// plan, so this terminates.
	for i := 0; i < 16; i++ {
		var changed bool
		p, changed = rewrite(p, &applied)
		if !changed {
			break
		}
	}
	return p, applied
}

func rewrite(p Plan, applied *[]Rewrite) (Plan, bool) {
	switch x := p.(type) {
	case PlanInput, *PlanInput:
		return p, false

	case *PlanSelect:
		child, changed := rewrite(x.Child, applied)
		x = &PlanSelect{Dim: x.Dim, Pred: x.Pred, Child: child}
		// Rule 1: select-fusion.
		if inner, ok := x.Child.(*PlanSelect); ok && inner.Dim == x.Dim {
			*applied = append(*applied, Rewrite{
				Rule:   "select-fusion",
				Detail: fmt.Sprintf("σ∘σ on %s fused into one conjunctive selection", x.Dim),
			})
			return &PlanSelect{
				Dim:   x.Dim,
				Pred:  And{L: x.Pred, R: inner.Pred},
				Child: inner.Child,
			}, true
		}
		// Rule 4: select-pushdown below a perspective.
		if persp, ok := x.Child.(*PlanPerspective); ok && pushable(x, persp) {
			*applied = append(*applied, Rewrite{
				Rule:   "select-pushdown",
				Detail: fmt.Sprintf("σ on %s pushed below the %v perspective on %s", x.Dim, persp.Sem, persp.Varying),
			})
			return &PlanPerspective{
				Varying: persp.Varying,
				Sem:     persp.Sem,
				Points:  persp.Points,
				Child:   &PlanSelect{Dim: x.Dim, Pred: x.Pred, Child: persp.Child},
			}, true
		}
		return x, changed

	case *PlanPerspective:
		child, changed := rewrite(x.Child, applied)
		points := normalizePoints(x.Points)
		x = &PlanPerspective{Varying: x.Varying, Sem: x.Sem, Points: points, Child: child}
		// Rule 2: static-as-selection.
		if x.Sem == perspective.Static {
			*applied = append(*applied, Rewrite{
				Rule:   "static-as-selection",
				Detail: fmt.Sprintf("static perspective on %s replaced by σ with a validity-set predicate", x.Varying),
			})
			return &PlanSelect{
				Dim:   x.Varying,
				Pred:  VSIntersects{ParamOrdinals: points},
				Child: x.Child,
			}, true
		}
		return x, changed

	case *PlanChanges:
		child, changed := rewrite(x.Child, applied)
		return &PlanChanges{Varying: x.Varying, Changes: x.Changes, Child: child}, changed

	case *PlanTransfer:
		child, changed := rewrite(x.Child, applied)
		return &PlanTransfer{Transfer: x.Transfer, Child: child}, changed
	}
	return p, false
}

// EliminateFullCover applies rule 3 for a concrete cube (the rule needs
// the parameter dimension's extent, which the plan alone does not
// carry): dynamic perspectives whose point set covers every parameter
// leaf are removed. It returns the rewritten plan.
func EliminateFullCover(p Plan, cin *cube.Cube) (Plan, []Rewrite) {
	var applied []Rewrite
	var walk func(Plan) Plan
	walk = func(p Plan) Plan {
		switch x := p.(type) {
		case *PlanSelect:
			return &PlanSelect{Dim: x.Dim, Pred: x.Pred, Child: walk(x.Child)}
		case *PlanChanges:
			return &PlanChanges{Varying: x.Varying, Changes: x.Changes, Child: walk(x.Child)}
		case *PlanTransfer:
			return &PlanTransfer{Transfer: x.Transfer, Child: walk(x.Child)}
		case *PlanPerspective:
			child := walk(x.Child)
			if x.Sem == perspective.Forward || x.Sem == perspective.Backward {
				if b := cin.BindingFor(x.Varying); b != nil {
					if len(normalizePoints(x.Points)) == b.Param.NumLeaves() {
						applied = append(applied, Rewrite{
							Rule:   "full-cover-elimination",
							Detail: fmt.Sprintf("%v perspective on %s covers all of %s; dropped as identity", x.Sem, x.Varying, b.Param.Name()),
						})
						return child
					}
				}
			}
			return &PlanPerspective{Varying: x.Varying, Sem: x.Sem, Points: x.Points, Child: child}
		default:
			return p
		}
	}
	return walk(p), applied
}

// pushable reports whether a selection commutes with a perspective
// (rule 4's side conditions).
func pushable(sel *PlanSelect, persp *PlanPerspective) bool {
	if !structural(sel.Pred) {
		return false
	}
	if sel.Dim != persp.Varying {
		return true
	}
	return memberClosed(sel.Pred)
}

// structural reports whether the predicate depends only on member
// identity and hierarchy — not on cell values (ValueCond) or validity
// sets (VSIntersects), both of which a perspective transforms.
func structural(p Predicate) bool {
	switch x := p.(type) {
	case MemberIs, DescendantOf:
		return true
	case And:
		return structural(x.L) && structural(x.R)
	case Or:
		return structural(x.L) && structural(x.R)
	case Not:
		return structural(x.X)
	}
	return false
}

// memberClosed reports whether the predicate keeps or drops all
// instances of each varying member together. A base-name MemberIs
// (no '/') matches every instance of the member; a path MemberIs or a
// DescendantOf can separate siblings classified under different
// parents.
func memberClosed(p Predicate) bool {
	switch x := p.(type) {
	case MemberIs:
		return !strings.Contains(x.Ref, "/")
	case And:
		return memberClosed(x.L) && memberClosed(x.R)
	case Or:
		return memberClosed(x.L) && memberClosed(x.R)
	case Not:
		return memberClosed(x.X)
	}
	return false
}

func normalizePoints(ps []int) []int {
	out := append([]int(nil), ps...)
	sort.Ints(out)
	dedup := out[:0]
	for i, p := range out {
		if i > 0 && p == out[i-1] {
			continue
		}
		dedup = append(dedup, p)
	}
	return dedup
}
