package result

import (
	"math"
	"strings"
	"testing"
)

func sample() *Grid {
	g := New(2, 2)
	g.ColLabels[0], g.ColLabels[1] = "Q1", "Q2"
	g.RowLabels[0], g.RowLabels[1] = "NY", "MA"
	g.PropNames = []string{"Dept"}
	g.RowProps = [][]string{{"FTE"}, {"PTE"}}
	g.Values[0][0] = 60
	g.Values[0][1] = 30.5
	// (1,0) stays ⊥
	g.Values[1][1] = 90
	return g
}

func TestShape(t *testing.T) {
	g := sample()
	if g.NumRows() != 2 || g.NumCols() != 2 {
		t.Fatalf("shape = %dx%d", g.NumRows(), g.NumCols())
	}
	if g.NonNullCells() != 3 {
		t.Fatalf("NonNullCells = %d, want 3", g.NonNullCells())
	}
}

func TestNewStartsNull(t *testing.T) {
	g := New(1, 3)
	for _, v := range g.Values[0] {
		if !math.IsNaN(v) {
			t.Fatal("fresh grid should be all ⊥")
		}
	}
}

func TestStringRendering(t *testing.T) {
	s := sample().String()
	for _, want := range []string{"Q1", "Q2", "NY", "MA", "Dept", "FTE", "60", "30.5", "⊥"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rendered %d lines, want 3", len(lines))
	}
}

func TestCSV(t *testing.T) {
	csv := sample().CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "row,Dept,Q1,Q2" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "NY,FTE,60,30.5" {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if lines[2] != "MA,PTE,,90" {
		t.Fatalf("row 2 = %q (⊥ should be empty)", lines[2])
	}
}

func TestCSVEscaping(t *testing.T) {
	g := New(1, 1)
	g.ColLabels[0] = `with,comma`
	g.RowLabels[0] = `with"quote`
	g.Values[0][0] = 1
	csv := g.CSV()
	if !strings.Contains(csv, `"with,comma"`) || !strings.Contains(csv, `"with""quote"`) {
		t.Fatalf("escaping wrong:\n%s", csv)
	}
}

func TestDropEmptyRows(t *testing.T) {
	g := sample() // row MA has one value; add an all-⊥ row via a new grid
	g2 := New(3, 2)
	copy(g2.ColLabels, g.ColLabels)
	g2.RowLabels[0], g2.RowLabels[1], g2.RowLabels[2] = "a", "empty", "b"
	g2.PropNames = []string{"P"}
	g2.RowProps = [][]string{{"pa"}, {"pe"}, {"pb"}}
	g2.Values[0][0] = 1
	g2.Values[2][1] = 2
	if removed := g2.DropEmptyRows(); removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	if g2.NumRows() != 2 || g2.RowLabels[0] != "a" || g2.RowLabels[1] != "b" {
		t.Fatalf("rows = %v", g2.RowLabels)
	}
	if g2.RowProps[1][0] != "pb" {
		t.Fatalf("props misaligned: %v", g2.RowProps)
	}
}

func TestDropEmptyCols(t *testing.T) {
	g := New(2, 3)
	g.ColLabels[0], g.ColLabels[1], g.ColLabels[2] = "c0", "empty", "c2"
	g.RowLabels[0], g.RowLabels[1] = "r0", "r1"
	g.Values[0][0] = 1
	g.Values[1][2] = 2
	if removed := g.DropEmptyCols(); removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	if g.NumCols() != 2 || g.ColLabels[1] != "c2" {
		t.Fatalf("cols = %v", g.ColLabels)
	}
	if g.Values[1][1] != 2 {
		t.Fatalf("values misaligned: %v", g.Values)
	}
	// Dropping from an already-clean grid is a no-op.
	if g.DropEmptyCols() != 0 || g.DropEmptyRows() != 0 {
		t.Fatal("second drop should remove nothing")
	}
}
