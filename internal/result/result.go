// Package result renders query results: the two-axis grids an MDX
// SELECT produces (paper Fig. 3), with optional dimension properties on
// rows, as Go values and as fixed-width text tables.
package result

import (
	"fmt"
	"math"
	"strings"
)

// Grid is a two-dimensional query result: rows × columns of cell values
// with ⊥ rendered as NaN.
type Grid struct {
	// ColLabels has one label per column tuple.
	ColLabels []string
	// RowLabels has one label per row tuple.
	RowLabels []string
	// PropNames names the dimension properties attached to rows.
	PropNames []string
	// RowProps holds, for each row, one value per property name.
	RowProps [][]string
	// Values is indexed [row][col]; NaN is the meaningless value ⊥.
	Values [][]float64
}

// New allocates a grid of the given shape with all cells ⊥.
func New(rows, cols int) *Grid {
	g := &Grid{
		ColLabels: make([]string, cols),
		RowLabels: make([]string, rows),
		Values:    make([][]float64, rows),
	}
	for i := range g.Values {
		g.Values[i] = make([]float64, cols)
		for j := range g.Values[i] {
			g.Values[i][j] = math.NaN()
		}
	}
	return g
}

// NumRows returns the row count.
func (g *Grid) NumRows() int { return len(g.RowLabels) }

// NumCols returns the column count.
func (g *Grid) NumCols() int { return len(g.ColLabels) }

// NonNullCells counts cells holding a value.
func (g *Grid) NonNullCells() int {
	n := 0
	for _, row := range g.Values {
		for _, v := range row {
			if !math.IsNaN(v) {
				n++
			}
		}
	}
	return n
}

// DropEmptyRows removes rows whose every cell is ⊥ (MDX NON EMPTY on
// the row axis). It returns the number of rows removed.
func (g *Grid) DropEmptyRows() int {
	kept := 0
	for i := range g.RowLabels {
		empty := true
		for _, v := range g.Values[i] {
			if !math.IsNaN(v) {
				empty = false
				break
			}
		}
		if empty {
			continue
		}
		g.RowLabels[kept] = g.RowLabels[i]
		g.Values[kept] = g.Values[i]
		if i < len(g.RowProps) {
			g.RowProps[kept] = g.RowProps[i]
		}
		kept++
	}
	removed := len(g.RowLabels) - kept
	g.RowLabels = g.RowLabels[:kept]
	g.Values = g.Values[:kept]
	if len(g.RowProps) > kept {
		g.RowProps = g.RowProps[:kept]
	}
	return removed
}

// DropEmptyCols removes columns whose every cell is ⊥ (MDX NON EMPTY on
// the column axis). It returns the number of columns removed.
func (g *Grid) DropEmptyCols() int {
	keep := make([]bool, len(g.ColLabels))
	for j := range g.ColLabels {
		for i := range g.Values {
			if !math.IsNaN(g.Values[i][j]) {
				keep[j] = true
				break
			}
		}
	}
	kept := 0
	for j, k := range keep {
		if !k {
			continue
		}
		g.ColLabels[kept] = g.ColLabels[j]
		for i := range g.Values {
			g.Values[i][kept] = g.Values[i][j]
		}
		kept++
	}
	removed := len(g.ColLabels) - kept
	g.ColLabels = g.ColLabels[:kept]
	for i := range g.Values {
		g.Values[i] = g.Values[i][:kept]
	}
	return removed
}

// String renders the grid as a fixed-width text table. ⊥ cells render
// as "⊥" (matching the paper's figures).
func (g *Grid) String() string {
	cols := g.NumCols()
	// Compute column widths: row-label column, property columns, value
	// columns.
	labelW := len("")
	for _, l := range g.RowLabels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	propW := make([]int, len(g.PropNames))
	for i, n := range g.PropNames {
		propW[i] = len(n)
	}
	for _, props := range g.RowProps {
		for i, v := range props {
			if i < len(propW) && len(v) > propW[i] {
				propW[i] = len(v)
			}
		}
	}
	valW := make([]int, cols)
	for j, l := range g.ColLabels {
		valW[j] = len(l)
	}
	cell := func(v float64) string {
		if math.IsNaN(v) {
			return "⊥"
		}
		return display(v)
	}
	for _, row := range g.Values {
		for j, v := range row {
			if w := len(cell(v)); w > valW[j] {
				valW[j] = w
			}
		}
	}

	var b strings.Builder
	pad := func(s string, w int) {
		b.WriteString(s)
		for i := len(s); i < w; i++ {
			b.WriteByte(' ')
		}
	}
	// Header.
	pad("", labelW)
	for i, n := range g.PropNames {
		b.WriteString("  ")
		pad(n, propW[i])
	}
	for j, l := range g.ColLabels {
		b.WriteString("  ")
		pad(l, valW[j])
	}
	b.WriteByte('\n')
	// Rows.
	for i, rl := range g.RowLabels {
		pad(rl, labelW)
		for k := range g.PropNames {
			v := ""
			if i < len(g.RowProps) && k < len(g.RowProps[i]) {
				v = g.RowProps[i][k]
			}
			b.WriteString("  ")
			pad(v, propW[k])
		}
		for j, v := range g.Values[i] {
			b.WriteString("  ")
			pad(cell(v), valW[j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the grid as comma-separated values with an empty field
// for ⊥.
func (g *Grid) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	b.WriteString("row")
	for _, p := range g.PropNames {
		b.WriteByte(',')
		b.WriteString(esc(p))
	}
	for _, c := range g.ColLabels {
		b.WriteByte(',')
		b.WriteString(esc(c))
	}
	b.WriteByte('\n')
	for i, rl := range g.RowLabels {
		b.WriteString(esc(rl))
		for k := range g.PropNames {
			b.WriteByte(',')
			if i < len(g.RowProps) && k < len(g.RowProps[i]) {
				b.WriteString(esc(g.RowProps[i][k]))
			}
		}
		for _, v := range g.Values[i] {
			b.WriteByte(',')
			if !math.IsNaN(v) {
				b.WriteString(strconv(v))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// strconv formats a value compactly for machine output (CSV): integers
// without a decimal point, everything else at full precision.
func strconv(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// display formats a value for text tables: integers plain, other values
// rounded to two decimals (OLAP front-end convention).
func display(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	if av := math.Abs(v); av >= 0.01 && av < 1e15 {
		return fmt.Sprintf("%.2f", v)
	}
	return fmt.Sprintf("%g", v)
}
