// Package bench regenerates the paper's evaluation figures (§6) as data
// series: query time versus number of perspectives (Fig. 11), versus
// physical separation of related chunks (Fig. 12), and versus number of
// varying member instances in scope (Fig. 13), plus ablations of the
// design choices DESIGN.md calls out. The cmd/benchfig binary prints
// these series; root-level testing.B benchmarks time the same queries.
package bench

import (
	"fmt"
	"time"

	"whatifolap/internal/chunk"
	"whatifolap/internal/core"
	"whatifolap/internal/cube"
	"whatifolap/internal/dimension"
	"whatifolap/internal/perspective"
	"whatifolap/internal/simdisk"
	"whatifolap/internal/workload"
)

// monthsPrefix returns the first k month ordinals as a perspective set.
func monthsPrefix(k int) []int {
	ps := make([]int, k)
	for i := range ps {
		ps[i] = i
	}
	return ps
}

// timeIt runs fn reps times and returns the fastest wall time in
// milliseconds (minimum is the standard noise-robust estimator for
// deterministic work).
func timeIt(reps int, fn func() error) (float64, error) {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best) / float64(time.Millisecond), nil
}

// Fig11Row is one point of the Fig. 11 series: elapsed time of the
// three strategies at a given perspective count.
type Fig11Row struct {
	Perspectives int
	MultipleMS   float64 // "Multiple MDX" simulation baseline
	StaticMS     float64 // direct static multi-perspective
	ForwardMS    float64 // direct dynamic forward
	// ChunkReads compares I/O work (simulation vs direct static).
	SimChunkReads, StaticChunkReads int
}

// Fig11 reproduces §6.1: a query over every changing employee, varying
// the number of perspectives from 1 to maxPerspectives, under the three
// strategies of the paper's figure.
func Fig11(w *workload.Workforce, maxPerspectives, reps int) ([]Fig11Row, error) {
	if maxPerspectives > w.Config.Months {
		maxPerspectives = w.Config.Months
	}
	e, err := core.New(w.Cube, workload.DimDepartment)
	if err != nil {
		return nil, err
	}
	members := w.Changing
	var rows []Fig11Row
	for k := 1; k <= maxPerspectives; k++ {
		ps := monthsPrefix(k)
		row := Fig11Row{Perspectives: k}

		var simStats, staticStats core.Stats
		row.MultipleMS, err = timeIt(reps, func() error {
			v, err := e.SimulateMultiMDX(members, ps, perspective.NonVisual)
			if err == nil {
				simStats = v.Stats
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		row.StaticMS, err = timeIt(reps, func() error {
			v, err := e.ExecPerspective(core.PerspectiveQuery{
				Members: members, Perspectives: ps,
				Sem: perspective.Static, Mode: perspective.NonVisual,
			})
			if err == nil {
				staticStats = v.Stats
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		row.ForwardMS, err = timeIt(reps, func() error {
			_, err := e.ExecPerspective(core.PerspectiveQuery{
				Members: members, Perspectives: ps,
				Sem: perspective.Forward, Mode: perspective.NonVisual,
			})
			return err
		})
		if err != nil {
			return nil, err
		}
		row.SimChunkReads = simStats.ChunksRead
		row.StaticChunkReads = staticStats.ChunksRead
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig12Row is one point of the co-location series.
type Fig12Row struct {
	// Multiple is the separation multiplier (1x..5x of the base
	// separation).
	Multiple int
	// SeparationChunks is the distance between the two related chunks.
	SeparationChunks int
	// TotalChunks is the cube's materialized chunk count (the cube
	// grows as padding is inserted, paper: 20 G → 27.5 G).
	TotalChunks int
	// DiskMS is the modeled I/O time of the query.
	DiskMS float64
	// WallMS is the measured in-memory execution time.
	WallMS float64
}

// Fig12Config sizes the co-location experiment.
type Fig12Config struct {
	// BaseSeparation is the 1x distance between the two instances'
	// chunks (the paper's 719,928; scaled by default).
	BaseSeparation int
	// MaxMultiple is the largest multiplier (paper: 5).
	MaxMultiple int
	// Months is the period extent.
	Months int
	// Model is the simulated-disk cost model.
	Model simdisk.Model
}

// Fig12Defaults returns a laptop-scale configuration whose seek curve
// saturates inside the sweep, like the paper's.
func Fig12Defaults() Fig12Config {
	return Fig12Config{
		BaseSeparation: 2000,
		MaxMultiple:    5,
		Months:         12,
		// The cap is reached between the 3x and 4x points, so the curve
		// rises and then stabilizes inside the sweep like the paper's.
		Model: simdisk.Model{Base: 0.05, PerChunk: 0.002, SeekCap: 13.0, Transfer: 0.02},
	}
}

// Fig12 reproduces §6.2: a dynamic forward query over a single employee
// with two instances, while the physical separation between the
// instances' chunks is grown in multiples of the base separation. Query
// time rises with separation and then stabilizes once seek cost
// saturates.
func Fig12(cfg Fig12Config, reps int) ([]Fig12Row, error) {
	var rows []Fig12Row
	for mult := 1; mult <= cfg.MaxMultiple; mult++ {
		c, err := buildSeparationCube(cfg.BaseSeparation*mult, cfg.Months)
		if err != nil {
			return nil, err
		}
		e, err := core.New(c, "Department")
		if err != nil {
			return nil, err
		}
		disk := simdisk.MustNew(cfg.Model)
		e.AttachDisk(disk)
		q := core.PerspectiveQuery{
			Members:      []string{"EmpX"},
			Perspectives: []int{0, 3, 6, 9},
			Sem:          perspective.Forward,
			Mode:         perspective.NonVisual,
		}
		var stats core.Stats
		wall, err := timeIt(reps, func() error {
			disk.Reset()
			v, err := e.ExecPerspective(q)
			if err == nil {
				stats = v.Stats
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		st := c.Store().(*chunk.Store)
		rows = append(rows, Fig12Row{
			Multiple:         mult,
			SeparationChunks: cfg.BaseSeparation * mult,
			TotalChunks:      st.NumChunks(),
			DiskMS:           stats.DiskCostMs,
			WallMS:           wall,
		})
	}
	return rows, nil
}

// buildSeparationCube builds a 3-dimensional cube (Department/employee,
// Period, Account) in which employee EmpX has two instances whose rows
// sit `separation` department-chunks apart, with padding employees
// materializing every chunk in between (the paper inserts data and
// reorganizes the cube to control separation).
func buildSeparationCube(separation, months int) (*cube.Cube, error) {
	const rowsPerChunk = 1
	dept := dimension.New("Department", false)
	dept.MustAdd("", "DeptA")
	dept.MustAdd("", "DeptPad")
	dept.MustAdd("", "DeptB")
	dept.MustAdd("DeptA", "EmpX") // ordinal 0
	padCount := separation - 1
	for i := 0; i < padCount; i++ {
		dept.MustAdd("DeptPad", fmt.Sprintf("Pad%06d", i))
	}
	dept.MustAdd("DeptB", "EmpX") // last ordinal

	period := dimension.New("Period", true)
	for m := 0; m < months; m++ {
		period.MustAdd("", fmt.Sprintf("M%02d", m+1))
	}
	acct := dimension.New("Account", false)
	acct.MarkMeasure()
	acct.MustAdd("", "Salary")

	extents := []int{dept.NumLeaves(), months, 1}
	st := chunk.NewStore(chunk.MustGeometry(extents, []int{rowsPerChunk, months, 1}))
	c := cube.NewWithStore(st, dept, period, acct)

	b := dimension.NewBinding(dept, period)
	half := months / 2
	var first, second []int
	for m := 0; m < months; m++ {
		if m < half {
			first = append(first, m)
		} else {
			second = append(second, m)
		}
	}
	b.SetVS(dept.MustLookup("DeptA/EmpX"), first...)
	b.SetVS(dept.MustLookup("DeptB/EmpX"), second...)
	if err := c.AddBinding(b); err != nil {
		return nil, err
	}

	// Data: EmpX per valid month; every padding row gets one cell so
	// its chunk is materialized on "disk".
	a := dept.MustLookup("DeptA/EmpX")
	z := dept.MustLookup("DeptB/EmpX")
	for _, m := range first {
		c.SetLeaf([]int{dept.Member(a).LeafOrdinal, m, 0}, 100)
	}
	for _, m := range second {
		c.SetLeaf([]int{dept.Member(z).LeafOrdinal, m, 0}, 100)
	}
	for i := 0; i < padCount; i++ {
		o := dept.MustLookup("DeptPad/Pad" + fmt.Sprintf("%06d", i))
		c.SetLeaf([]int{dept.Member(o).LeafOrdinal, 0, 0}, 1)
	}
	return c, nil
}

// Fig13Row is one point of the varying-member series.
type Fig13Row struct {
	// Members is the number of changing employees in the query scope.
	Members int
	// WallMS is the measured execution time.
	WallMS float64
	// Instances is the number of member instances the engine touched.
	Instances int
	// ChunksRead is the engine's I/O work.
	ChunksRead int
}

// Fig13 reproduces §6.3: a static query with four perspectives over
// employees with four reporting-structure changes, with the scope grown
// from step to maxMembers in increments of step.
func Fig13(w *workload.Workforce, step, maxMembers, reps int) ([]Fig13Row, error) {
	e, err := core.New(w.Cube, workload.DimDepartment)
	if err != nil {
		return nil, err
	}
	pool := w.Changing
	if maxMembers > len(pool) {
		maxMembers = len(pool)
	}
	ps := []int{0, 3, 6, 9} // Jan, Apr, Jul, Oct (Fig. 10(c))
	var rows []Fig13Row
	for n := step; n <= maxMembers; n += step {
		members := pool[:n]
		var stats core.Stats
		wall, err := timeIt(reps, func() error {
			v, err := e.ExecPerspective(core.PerspectiveQuery{
				Members: members, Perspectives: ps,
				Sem: perspective.Static, Mode: perspective.NonVisual,
			})
			if err == nil {
				stats = v.Stats
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig13Row{
			Members:    n,
			WallMS:     wall,
			Instances:  stats.SourceInstances,
			ChunksRead: stats.ChunksRead,
		})
	}
	return rows, nil
}

// PebbleRow compares read-order policies on one query.
type PebbleRow struct {
	Order      string
	PeakChunks int
	DiskMS     float64
	SeekChunks int
}

// AblationPebbling compares the pebbling heuristic against sequential
// read orders on a forward query over all changing employees: peak
// co-resident chunks (the §5.2 objective) and modeled disk cost.
func AblationPebbling(w *workload.Workforce, model simdisk.Model) ([]PebbleRow, error) {
	var rows []PebbleRow
	for _, order := range []core.ReadOrder{core.OrderPebbling, core.OrderVaryingFirst,
		core.OrderVaryingLast, core.OrderCanonical} {
		e, err := core.New(w.Cube, workload.DimDepartment)
		if err != nil {
			return nil, err
		}
		e.SetReadOrder(order)
		disk := simdisk.MustNew(model)
		e.AttachDisk(disk)
		v, err := e.ExecPerspective(core.PerspectiveQuery{
			Members:      w.Changing,
			Perspectives: []int{0, 6},
			Sem:          perspective.Forward,
			Mode:         perspective.NonVisual,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, PebbleRow{
			Order:      order.String(),
			PeakChunks: v.Stats.PeakResidentChunks,
			DiskMS:     v.Stats.DiskCostMs,
			SeekChunks: disk.Stats().SeekChunks,
		})
	}
	return rows, nil
}

// ModeRow compares visual and non-visual evaluation cost on aggregate
// cells.
type ModeRow struct {
	Mode   string
	WallMS float64
}

// AblationMode times the evaluation of quarter-level aggregates for the
// changing employees under both modes: visual re-aggregates over the
// perspective cube, non-visual reads the input scope.
func AblationMode(w *workload.Workforce, employees, reps int) ([]ModeRow, error) {
	e, err := core.New(w.Cube, workload.DimDepartment)
	if err != nil {
		return nil, err
	}
	if employees > len(w.Changing) {
		employees = len(w.Changing)
	}
	members := w.Changing[:employees]
	dept := w.Cube.DimByName(workload.DimDepartment)
	period := w.Cube.DimByName(workload.DimPeriod)
	quarters := period.LevelMembers(1)
	var rows []ModeRow
	for _, mode := range []perspective.Mode{perspective.NonVisual, perspective.Visual} {
		v, err := e.ExecPerspective(core.PerspectiveQuery{
			Members: members, Perspectives: []int{0, 6},
			Sem: perspective.Forward, Mode: mode,
		})
		if err != nil {
			return nil, err
		}
		ids := make([]dimension.MemberID, w.Cube.NumDims())
		for i := range ids {
			ids[i] = w.Cube.Dim(i).Root()
		}
		// Pin the single-member dimensions to leaves so only Department
		// and Period aggregate.
		ids[2] = w.Cube.Dim(2).Leaf(0).ID
		ids[3] = w.Cube.Dim(3).Leaf(0).ID
		ids[4] = w.Cube.Dim(4).Leaf(0).ID
		ids[5] = w.Cube.Dim(5).Leaf(0).ID
		ids[6] = w.Cube.Dim(6).Leaf(0).ID
		wall, err := timeIt(reps, func() error {
			for _, name := range members {
				for _, inst := range dept.Instances(name) {
					for _, q := range quarters {
						ids[0] = inst
						ids[1] = q
						if _, err := v.Cell(ids); err != nil {
							return err
						}
					}
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ModeRow{Mode: mode.String(), WallMS: wall})
	}
	return rows, nil
}

// CompressionRow compares the materialized perspective cube against the
// mapping-compressed representation (§8 future work).
type CompressionRow struct {
	Representation string
	// Bytes is the representation's footprint: relocated overlay cells
	// for materialized, mapping entries for compressed.
	Bytes int
	// BuildMS is the time to produce the view.
	BuildMS float64
	// ReadMS is the time to read every scoped leaf cell once.
	ReadMS float64
}

// AblationCompression runs a forward query over all changing employees
// both ways and measures footprint, build time, and scoped read time.
func AblationCompression(w *workload.Workforce, reps int) ([]CompressionRow, error) {
	e, err := core.New(w.Cube, workload.DimDepartment)
	if err != nil {
		return nil, err
	}
	q := core.PerspectiveQuery{
		Members:      w.Changing,
		Perspectives: []int{0, 6},
		Sem:          perspective.Forward,
		Mode:         perspective.NonVisual,
	}
	dims := w.Cube.NumDims()
	var rows []CompressionRow
	for _, compressed := range []bool{false, true} {
		label := "materialized overlay"
		if compressed {
			label = "relocation mapping"
		}
		var view *core.View
		buildMS, err := timeIt(reps, func() error {
			var err error
			if compressed {
				view, err = e.ExecPerspectiveCompressed(q)
			} else {
				view, err = e.ExecPerspective(q)
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		bytes := view.Stats.CompressedBytes
		if !compressed {
			// Overlay cells: address key plus value per relocated cell.
			bytes = view.Stats.CellsRelocated * (4*dims + 8)
		}
		// Read every scoped employee's cells for one account through
		// the view.
		dept := w.Cube.DimByName(workload.DimDepartment)
		tuple := make([]dimension.MemberID, dims)
		for i := range tuple {
			tuple[i] = w.Cube.Dim(i).Leaf(0).ID
		}
		readMS, err := timeIt(reps, func() error {
			for _, name := range w.Changing {
				for _, inst := range dept.Instances(name) {
					for m := 0; m < w.Config.Months; m++ {
						tuple[0] = inst
						tuple[1] = w.Cube.Dim(1).Leaf(m).ID
						if _, err := view.Cell(tuple); err != nil {
							return err
						}
					}
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, CompressionRow{
			Representation: label, Bytes: bytes, BuildMS: buildMS, ReadMS: readMS,
		})
	}
	return rows, nil
}

// RepRow compares chunk representations.
type RepRow struct {
	Representation string
	StoreBytes     int
	QueryMS        float64
}

// AblationChunkRep compares memory footprint and query time of the
// as-loaded (auto dense/sparse) store against a fully sparse one. On
// dense workloads the sparse encoding costs 12 bytes per cell against
// the dense array's 8, so "compress everything" can lose on both axes —
// the reason the engine only compresses chunks under the threshold.
func AblationChunkRep(w *workload.Workforce, reps int) ([]RepRow, error) {
	measure := func(label string, c *cube.Cube) (RepRow, error) {
		e, err := core.New(c, workload.DimDepartment)
		if err != nil {
			return RepRow{}, err
		}
		wall, err := timeIt(reps, func() error {
			_, err := e.ExecPerspective(core.PerspectiveQuery{
				Members: w.Changing, Perspectives: []int{0, 6},
				Sem: perspective.Forward, Mode: perspective.NonVisual,
			})
			return err
		})
		if err != nil {
			return RepRow{}, err
		}
		return RepRow{
			Representation: label,
			StoreBytes:     c.Store().(*chunk.Store).MemBytes(),
			QueryMS:        wall,
		}, nil
	}
	auto, err := measure("auto (dense when >25% full)", w.Cube)
	if err != nil {
		return nil, err
	}
	sparse := w.Cube.Clone()
	sparse.Store().(*chunk.Store).ForceSparseAll()
	comp, err := measure("forced sparse", sparse)
	if err != nil {
		return nil, err
	}
	return []RepRow{auto, comp}, nil
}

// ParallelScanRow is one point of the scan-parallelism series: wall
// time of the same dynamic-forward query at a given scan-worker count.
type ParallelScanRow struct {
	Workers     int
	WallMS      float64
	Speedup     float64 // serial wall time / this wall time
	MergeGroups int
	// Subtasks is how many schedule cuts the scan fanned out over —
	// above MergeGroups when intra-group splitting applied, 0 serial.
	Subtasks   int
	ChunkReads int
}

// ParallelScan measures the staged pipeline's parallel scan: a
// dynamic-forward query over every changing employee with four
// perspectives, executed at each worker count. Workers = 1 is the
// serial baseline the speedups are relative to. Each merge group's
// schedule is further cut into crossing-free sub-tasks, so the fan-out
// is bounded by min(cores, chunks), not min(cores, merge groups).
// Results are identical at every worker count; only the wall time
// changes, bounded by the host's core count.
func ParallelScan(w *workload.Workforce, workers []int, reps int) ([]ParallelScanRow, error) {
	e, err := core.New(w.Cube, workload.DimDepartment)
	if err != nil {
		return nil, err
	}
	q := core.PerspectiveQuery{
		Members: w.Changing, Perspectives: []int{0, 3, 6, 9},
		Sem: perspective.Forward, Mode: perspective.NonVisual,
	}
	var rows []ParallelScanRow
	serialMS := 0.0
	for _, n := range workers {
		var stats core.Stats
		wall, err := timeIt(reps, func() error {
			v, err := e.ExecPerspectiveWith(core.ExecContext{Workers: n}, q)
			if err == nil {
				stats = v.Stats
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		row := ParallelScanRow{
			Workers:     n,
			WallMS:      wall,
			MergeGroups: stats.MergeGroups,
			Subtasks:    stats.ScanSubtasks,
			ChunkReads:  stats.ChunksRead,
		}
		if serialMS == 0 {
			serialMS = wall
		}
		if wall > 0 {
			row.Speedup = serialMS / wall
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RleScanRow is one representation's point of the run-encoding figure:
// resident store footprint and relocation-scan throughput of the same
// forward query over a validity-window cube (FlatMonths workforce,
// period as the fastest in-chunk dimension, so a stable instance's
// twelve months form one value run).
type RleScanRow struct {
	Representation string
	// StoreBytes is the resident footprint of the base store under this
	// representation.
	StoreBytes int
	// Chunks counts base chunks per representation kind.
	DenseChunks, SparseChunks, RunChunks int
	// WallMS is the whole query's wall time; ScanMS the scan stage's
	// (chunk reads + relocation) — the part the representation changes.
	// Planning work is identical across rows and dominates WallMS at
	// this scale, so throughput is computed over ScanMS.
	WallMS         float64
	ScanMS         float64
	CellsRelocated int
	// CellsPerSec is relocation throughput: CellsRelocated per second
	// of scan-stage time.
	CellsPerSec float64
}

// RleScanConfig returns the validity-window cube shape the RLE figure
// runs on: ConfigDefault values with FlatMonths (constant value across
// each instance's validity window) and a period-fastest chunk layout —
// one department row of 64 employees × 12 months per chunk — so runs
// extend along the validity window.
func RleScanConfig() workload.WorkforceConfig {
	cfg := workload.ConfigDefault()
	cfg.FlatMonths = true
	cfg.ChunkDims = []int{64, 12, 1, 1, 1, 1, 1}
	return cfg
}

// RleScan measures the run-aware scan against the per-cell paths: the
// same serial forward query over every changing employee at four
// perspectives, against the cube stored as-loaded (auto dense/sparse),
// forced sparse, and run-encoded. The run-encoded row exercises the
// run kernel (chunk.ForEachRun + coalesced overlay run writes); the
// other rows keep the unchanged per-cell relocation path, so the
// comparison isolates the kernel.
func RleScan(w *workload.Workforce, reps int) ([]RleScanRow, error) {
	measure := func(label string, c *cube.Cube) (RleScanRow, error) {
		st := c.Store().(*chunk.Store)
		e, err := core.New(c, workload.DimDepartment)
		if err != nil {
			return RleScanRow{}, err
		}
		var stats core.Stats
		scanMS := 0.0
		wall, err := timeIt(reps, func() error {
			v, err := e.ExecPerspective(core.PerspectiveQuery{
				Members: w.Changing, Perspectives: []int{0, 3, 6, 9},
				Sem: perspective.Forward, Mode: perspective.NonVisual,
			})
			if err == nil {
				stats = v.Stats
				if scanMS == 0 || v.Stats.ScanMs < scanMS {
					scanMS = v.Stats.ScanMs
				}
			}
			return err
		})
		if err != nil {
			return RleScanRow{}, err
		}
		row := RleScanRow{
			Representation: label,
			StoreBytes:     st.MemBytes(),
			WallMS:         wall,
			ScanMS:         scanMS,
			CellsRelocated: stats.CellsRelocated,
		}
		row.DenseChunks, row.SparseChunks, row.RunChunks = countReps(st)
		if scanMS > 0 {
			row.CellsPerSec = float64(stats.CellsRelocated) / (scanMS / 1000)
		}
		return row, nil
	}
	auto, err := measure("auto (dense when >25% full)", w.Cube)
	if err != nil {
		return nil, err
	}
	sparseCube := w.Cube.Clone()
	sparseCube.Store().(*chunk.Store).ForceSparseAll()
	sparse, err := measure("forced sparse", sparseCube)
	if err != nil {
		return nil, err
	}
	rleCube := w.Cube.Clone()
	rleCube.Store().(*chunk.Store).EncodeRunsAll()
	rle, err := measure("run-encoded", rleCube)
	if err != nil {
		return nil, err
	}
	return []RleScanRow{auto, sparse, rle}, nil
}

// countReps tallies a store's chunks by representation.
func countReps(st *chunk.Store) (dense, sparse, runs int) {
	for _, id := range st.ChunkIDs() {
		switch c := st.ReadChunk(id); {
		case c == nil:
		case c.Rep() == chunk.Dense:
			dense++
		case c.Rep() == chunk.RunEncoded:
			runs++
		default:
			sparse++
		}
	}
	return dense, sparse, runs
}
