package bench

import (
	"fmt"
	"runtime"

	"whatifolap/internal/chunk"
	"whatifolap/internal/core"
	"whatifolap/internal/cube"
	"whatifolap/internal/perspective"
	"whatifolap/internal/trace"
	"whatifolap/internal/workload"
)

// Kernel is a prepared relocation-kernel runner. NewKernel plans the
// standard workload query (dynamic forward over every changing
// employee, 4 perspectives) and materializes its relocation stream —
// the (destination address, value) writes the scan emits — once.
// RunMemStore and RunChunkNative then replay the identical stream into
// the legacy string-keyed cube.MemStore and the chunk-native
// chunk.Overlay respectively, so the comparison isolates the overlay
// write path the engine's scan sits on: per cell, MemStore encodes an
// address key (allocating) and probes a string map, while Overlay does
// integer (chunkID, offset) arithmetic and writes in place.
type Kernel struct {
	geom *chunk.Geometry
	// The relocation stream, flattened: addrs holds cells*dims ordinals,
	// vals the cell values.
	addrs []int
	vals  []float64
	// chunkEnds marks where the stream crosses a source-chunk boundary
	// (exclusive end index into vals per contributing chunk), so traced
	// replays can mirror the engine's per-chunk span granularity.
	chunkEnds []int
}

// NewKernel plans the standard workload query against w and captures
// its relocation stream.
func NewKernel(w *workload.Workforce) (*Kernel, error) {
	e, err := core.New(w.Cube, workload.DimDepartment)
	if err != nil {
		return nil, err
	}
	plan, err := e.PlanPerspective(core.PerspectiveQuery{
		Members: w.Changing, Perspectives: []int{0, 3, 6, 9},
		Sem: perspective.Forward, Mode: perspective.NonVisual,
	})
	if err != nil {
		return nil, err
	}
	st, ok := w.Cube.Store().(*chunk.Store)
	if !ok {
		return nil, fmt.Errorf("bench: workforce cube store is %T, want *chunk.Store", w.Cube.Store())
	}
	b := e.Binding()
	vi := w.Cube.DimIndex(b.Varying.Name())
	pi := w.Cube.DimIndex(b.Param.Name())

	g := st.Geometry()
	k := &Kernel{geom: g}
	ccoord := make([]int, g.NumDims())
	addr := make([]int, g.NumDims())
	for _, id := range plan.Schedule {
		ch := st.PeekChunk(id)
		if ch == nil {
			continue
		}
		g.CoordOf(id, ccoord)
		ch.ForEach(func(off int, v float64) bool {
			g.Join(ccoord, off, addr)
			row := plan.Target[addr[vi]]
			if row == nil {
				return true
			}
			dst := row[addr[pi]]
			if dst < 0 {
				return true
			}
			k.addrs = append(k.addrs, addr...)
			k.addrs[len(k.addrs)-g.NumDims()+vi] = dst
			k.vals = append(k.vals, v)
			return true
		})
		if n := len(k.chunkEnds); len(k.vals) > 0 && (n == 0 || k.chunkEnds[n-1] < len(k.vals)) {
			k.chunkEnds = append(k.chunkEnds, len(k.vals))
		}
	}
	if len(k.vals) == 0 {
		return nil, fmt.Errorf("bench: kernel relocated no cells")
	}
	return k, nil
}

// Cells returns the number of relocated cells per run.
func (k *Kernel) Cells() int { return len(k.vals) }

// RunMemStore replays the relocation stream into a fresh legacy
// MemStore and returns the number of cells written.
func (k *Kernel) RunMemStore() int {
	return k.replayMemStore(cube.NewMemStore(k.geom.NumDims()))
}

// RunChunkNative replays the relocation stream into a fresh
// chunk-grained Overlay and returns the number of cells written.
func (k *Kernel) RunChunkNative() int {
	return k.replayOverlay(chunk.NewOverlay(k.geom))
}

// NewOverlay returns an empty destination overlay matching the kernel's
// geometry, for steady-state (warm-destination) replays.
func (k *Kernel) NewOverlay() *chunk.Overlay { return chunk.NewOverlay(k.geom) }

// Replay replays the relocation stream into the given (possibly warm)
// overlay — the steady-state untraced baseline for BenchmarkTraceOff.
func (k *Kernel) Replay(ov *chunk.Overlay) int { return k.replayOverlay(ov) }

// ReplayTraced replays the relocation stream with the engine's span
// instrumentation pattern: one span per source-chunk segment, annotated
// with its cell count. A nil recorder exercises exactly the no-op path
// the engine takes when tracing is off, so benchmarking
// ReplayTraced(nil, ...) against Replay bounds the cost the disabled
// hooks add to the hot write loop.
func (k *Kernel) ReplayTraced(tr *trace.Trace, parent trace.SpanRef, ov *chunk.Overlay) int {
	d := k.geom.NumDims()
	start := 0
	for _, end := range k.chunkEnds {
		sp := tr.Start(parent, "chunk")
		for i := start; i < end; i++ {
			ov.Set(k.addrs[i*d:(i+1)*d], k.vals[i])
		}
		sp.Int("cells", int64(end-start))
		sp.End()
		start = end
	}
	return len(k.vals)
}

func (k *Kernel) replayMemStore(ms *cube.MemStore) int {
	d := k.geom.NumDims()
	for i, v := range k.vals {
		ms.Set(k.addrs[i*d:(i+1)*d], v)
	}
	return len(k.vals)
}

func (k *Kernel) replayOverlay(ov *chunk.Overlay) int {
	d := k.geom.NumDims()
	for i, v := range k.vals {
		ov.Set(k.addrs[i*d:(i+1)*d], v)
	}
	return len(k.vals)
}

// KernelRow is one line of the overlay-kernel comparison.
type KernelRow struct {
	Kernel      string
	Cells       int
	WallMS      float64
	CellsPerSec float64
	// AllocsPerCell amortizes a full run — including building the
	// destination store from scratch — over the relocated cells.
	AllocsPerCell float64
	// SteadyAllocsPerCell replays the stream into an already-warm
	// destination: the per-cell write cost once destination chunks
	// exist. Chunk-native is 0 here (integer arithmetic only); the
	// MemStore path pays its address-key allocations on every write.
	SteadyAllocsPerCell float64
}

// RelocationKernel compares the two overlay write paths on the standard
// workload query's relocation stream: wall time (fastest of reps),
// write throughput, and heap allocations per relocated cell, fresh and
// steady-state.
func RelocationKernel(w *workload.Workforce, reps int) ([]KernelRow, error) {
	k, err := NewKernel(w)
	if err != nil {
		return nil, err
	}
	warmMem := cube.NewMemStore(k.geom.NumDims())
	warmOv := chunk.NewOverlay(k.geom)
	variants := []struct {
		name   string
		run    func() int
		replay func()
	}{
		{"memstore", k.RunMemStore, func() { k.replayMemStore(warmMem) }},
		{"chunk-native", k.RunChunkNative, func() { k.replayOverlay(warmOv) }},
	}
	var rows []KernelRow
	for _, v := range variants {
		cells := v.run() // warm caches
		wall, err := timeIt(reps, func() error { v.run(); return nil })
		if err != nil {
			return nil, err
		}
		row := KernelRow{
			Kernel:              v.name,
			Cells:               cells,
			WallMS:              wall,
			AllocsPerCell:       allocsPerRun(5, func() { v.run() }) / float64(cells),
			SteadyAllocsPerCell: allocsPerRun(5, v.replay) / float64(cells),
		}
		if wall > 0 {
			row.CellsPerSec = float64(cells) / (wall / 1000)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// allocsPerRun counts fn's heap allocations averaged over runs, after
// one warm-up call (the library-code analogue of testing.AllocsPerRun).
func allocsPerRun(runs int, fn func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	fn()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(runs)
}
