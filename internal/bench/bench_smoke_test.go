package bench

import (
	"testing"

	"whatifolap/internal/simdisk"
	"whatifolap/internal/workload"
)

func TestSmokeAll(t *testing.T) {
	w, err := workload.NewWorkforce(workload.ConfigTiny())
	if err != nil {
		t.Fatal(err)
	}
	r11, err := Fig11(w, 3, 1)
	if err != nil || len(r11) != 3 {
		t.Fatalf("Fig11: %v %v", r11, err)
	}
	cfg := Fig12Defaults()
	cfg.BaseSeparation, cfg.MaxMultiple = 50, 2
	r12, err := Fig12(cfg, 1)
	if err != nil || len(r12) != 2 {
		t.Fatalf("Fig12: %v %v", r12, err)
	}
	if r12[1].DiskMS <= r12[0].DiskMS {
		t.Logf("warning: disk cost not increasing: %+v", r12)
	}
	r13, err := Fig13(w, 2, 6, 1)
	if err != nil || len(r13) != 3 {
		t.Fatalf("Fig13: %v %v", r13, err)
	}
	if _, err := AblationPebbling(w, simdisk.DefaultModel()); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationMode(w, 4, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationChunkRep(w, 1); err != nil {
		t.Fatal(err)
	}
	comp, err := AblationCompression(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) != 2 || comp[1].Bytes >= comp[0].Bytes {
		t.Fatalf("compression should shrink the representation: %+v", comp)
	}
}
