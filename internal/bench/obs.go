package bench

import (
	"whatifolap/internal/obs"
	"whatifolap/internal/trace"
	"whatifolap/internal/workload"
)

// ObsRow is one line of the observability-overhead comparison: the
// steady-state traced replay run under increasingly aggressive trace
// retention policies.
type ObsRow struct {
	Variant     string
	Cells       int
	WallMS      float64
	AllocsPerOp float64
	// VsBaseline is this variant's fastest wall time over the traced
	// baseline's — the multiplicative cost of the retention decision.
	VsBaseline float64
}

// ObsOverhead measures what the tail-sampling retention hook adds to an
// already-traced query. The baseline is the steady-state traced replay
// (live recorder, warm destination overlay — the same work
// BenchmarkTraceOn times); each variant appends the per-query
// MaybeRetain decision under a different policy:
//
//   - retain-off: nil ring — retention disabled, the default-off path
//     every query pays. Must be 0 allocs/op.
//   - retain-1-in-64: live 4MiB ring sampling one healthy query in 64
//     (the server default), so most ops take the reject path and a few
//     pay the span-copy.
//   - retain-all: every op snapshots its spans into the ring — the
//     worst case, bounding what "slow query storm" retention costs.
func ObsOverhead(w *workload.Workforce, reps int) ([]ObsRow, error) {
	k, err := NewKernel(w)
	if err != nil {
		return nil, err
	}
	tr := trace.New(8192)
	ov := k.NewOverlay()
	k.ReplayTraced(nil, trace.SpanRef{}, ov) // warm destination chunks

	meta := obs.TraceMeta{Cube: "wf", Query: "bench", LatencyMs: 1}
	run := func(ring *obs.TraceRing) func() error {
		return func() error {
			tr.Reset()
			root := tr.Start(trace.SpanRef{}, "eval")
			k.ReplayTraced(tr, root, ov)
			root.End()
			ring.MaybeRetain(meta, tr.Spans)
			return nil
		}
	}
	variants := []struct {
		name string
		fn   func() error
	}{
		{"traced-baseline", func() error {
			tr.Reset()
			root := tr.Start(trace.SpanRef{}, "eval")
			k.ReplayTraced(tr, root, ov)
			root.End()
			return nil
		}},
		{"retain-off", run(nil)},
		{"retain-1-in-64", run(obs.NewTraceRing(4<<20, 64))},
		{"retain-all", run(obs.NewTraceRing(4<<20, 1))},
	}
	var rows []ObsRow
	var baseline float64
	for _, v := range variants {
		if err := v.fn(); err != nil { // warm caches
			return nil, err
		}
		wall, err := timeIt(reps, v.fn)
		if err != nil {
			return nil, err
		}
		row := ObsRow{
			Variant:     v.name,
			Cells:       k.Cells(),
			WallMS:      wall,
			AllocsPerOp: allocsPerRun(5, func() { v.fn() }),
		}
		if v.name == "traced-baseline" {
			baseline = wall
		}
		if baseline > 0 {
			row.VsBaseline = wall / baseline
		}
		rows = append(rows, row)
	}
	return rows, nil
}
