package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"whatifolap/internal/core"
	"whatifolap/internal/trace"
)

func TestQuantileInterpolation(t *testing.T) {
	// Two buckets: (0, 10], (10, 20], then +Inf.
	h := newHistogram([]float64{10, 20})

	// Empty histogram reports 0.
	if got := h.quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}

	// Single sample at 4: rank clamps to 1 within the first bucket of
	// one observation, so every quantile interpolates across the full
	// bucket: 0 + 10*(1-0)/1 = 10... for q where rank>=1. Low q keeps
	// rank at the 1-sample floor, so all quantiles agree.
	h.observe(4)
	if p50, p99 := h.quantile(0.5), h.quantile(0.99); p50 != p99 {
		t.Fatalf("single sample: p50 %v != p99 %v", p50, p99)
	}
	if got := h.quantile(0.5); got <= 0 || got > 10 {
		t.Fatalf("single-sample quantile %v outside its bucket (0,10]", got)
	}

	// 10 samples in the first bucket, 10 in the second: the median rank
	// sits exactly at the first bucket's edge and must return the bound
	// itself, not jump into the next bucket.
	h2 := newHistogram([]float64{10, 20})
	for i := 0; i < 10; i++ {
		h2.observe(5)
	}
	for i := 0; i < 10; i++ {
		h2.observe(15)
	}
	if got := h2.quantile(0.5); math.Abs(got-10) > 1e-9 {
		t.Fatalf("edge-rank p50 = %v, want 10", got)
	}
	// p75: rank 15 → 5 of the second bucket's 10 samples → halfway
	// through (10, 20] = 15.
	if got := h2.quantile(0.75); math.Abs(got-15) > 1e-9 {
		t.Fatalf("interpolated p75 = %v, want 15", got)
	}
	// p25: rank 5 → halfway through (0, 10] = 5.
	if got := h2.quantile(0.25); math.Abs(got-5) > 1e-9 {
		t.Fatalf("interpolated p25 = %v, want 5", got)
	}

	// Samples beyond the last finite bound land in +Inf and clamp to the
	// largest finite bound — there is no upper edge to interpolate to.
	h3 := newHistogram([]float64{10, 20})
	for i := 0; i < 4; i++ {
		h3.observe(1000)
	}
	if got := h3.quantile(0.99); got != 20 {
		t.Fatalf("+Inf-bucket quantile = %v, want clamp to 20", got)
	}
}

// promParse is a minimal text-format 0.0.4 reader: it returns every
// sample line as name{labels} -> value and checks structural rules
// (TYPE before samples, cumulative le buckets ending at +Inf, _count
// consistent with the +Inf bucket).
func promParse(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]string)
	var bucketCum float64
	var bucketFamily string
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator: %q", ln+1, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("line %d: unterminated labels: %q", ln+1, line)
			}
			name = name[:i]
		}
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			family = strings.TrimSuffix(family, suf)
		}
		if typed[family] == "" && typed[name] == "" {
			t.Fatalf("line %d: sample %q precedes its TYPE line", ln+1, name)
		}
		if strings.HasSuffix(name, "_bucket") {
			if family != bucketFamily {
				bucketFamily, bucketCum = family, 0
			}
			if val < bucketCum {
				t.Fatalf("line %d: non-cumulative bucket: %q after %v", ln+1, line, bucketCum)
			}
			bucketCum = val
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("line %d: duplicate sample %q", ln+1, key)
		}
		samples[key] = val
	}
	return samples
}

func TestPromExpositionRoundTrip(t *testing.T) {
	m := NewMetrics()
	m.QueriesServed.Add(3)
	m.CacheHits.Add(1)
	m.CacheMisses.Add(2)
	m.CountSemantics("dynamic-forward")
	m.ObserveLatency(2 * time.Millisecond)
	m.ObserveLatency(700 * time.Millisecond)
	m.ObserveStages(core.Stats{PlanMs: 1, ScanMs: 4, MergeMs: 0.5, ProjectMs: 2})

	tr := trace.New(0)
	root := tr.Start(trace.SpanRef{}, "eval")
	scan := tr.Start(root, "scan")
	scan.Int("chunks_read", 7)
	g := tr.Start(scan, "group")
	g.End()
	scan.End()
	root.End()
	m.ObserveTrace(tr.Spans())

	var buf bytes.Buffer
	m.WriteProm(&buf)
	samples := promParse(t, buf.String())

	if got := samples["whatif_queries_served_total"]; got != 3 {
		t.Fatalf("queries_served = %v, want 3", got)
	}
	if got := samples[`whatif_queries_by_semantics_total{semantics="dynamic-forward"}`]; got != 1 {
		t.Fatalf("by_semantics sample = %v, want 1", got)
	}
	if got := samples["whatif_query_latency_ms_count"]; got != 2 {
		t.Fatalf("latency count = %v, want 2", got)
	}
	if got := samples[`whatif_query_latency_ms_bucket{le="+Inf"}`]; got != 2 {
		t.Fatalf("latency +Inf bucket = %v, want 2", got)
	}
	sum := samples["whatif_query_latency_ms_sum"]
	if math.Abs(sum-702) > 1 {
		t.Fatalf("latency sum = %v, want ~702", sum)
	}
	if got := samples["whatif_query_chunks_read_count"]; got != 1 {
		t.Fatalf("chunks_read count = %v, want 1", got)
	}
	// The 7-chunk observation lands in the (5, 10] bucket and every
	// cumulative bucket at or above it.
	if got := samples[`whatif_query_chunks_read_bucket{le="10"}`]; got != 1 {
		t.Fatalf("chunks_read le=10 bucket = %v, want 1", got)
	}
	if got := samples[`whatif_query_chunks_read_bucket{le="5"}`]; got != 0 {
		t.Fatalf("chunks_read le=5 bucket = %v, want 0", got)
	}
	if got := samples["whatif_merge_group_span_ms_count"]; got != 1 {
		t.Fatalf("merge_group_span count = %v, want 1", got)
	}
	if got := samples["whatif_stage_ms_total{stage=\"scan\"}"]; math.Abs(got-4) > 0.01 {
		t.Fatalf("stage scan total = %v, want 4", got)
	}

	// Every histogram family renders the full structure.
	for _, fam := range []string{
		"whatif_query_latency_ms", "whatif_query_chunks_read",
		"whatif_merge_group_span_ms", "whatif_spill_fault_ms",
	} {
		for _, suf := range []string{`_bucket{le="+Inf"}`, "_sum", "_count"} {
			if _, ok := samples[fam+suf]; !ok {
				t.Fatalf("family %s missing %s sample", fam, suf)
			}
		}
	}
}

// TestConcurrentMetricsTraceObservers hammers every metrics update path
// while snapshots and prom expositions run; run under -race this pins
// the lock-free design.
func TestConcurrentMetricsTraceObservers(t *testing.T) {
	m := NewMetrics()
	tr := trace.New(0)
	root := tr.Start(trace.SpanRef{}, "eval")
	sc := tr.Start(root, "scan")
	sc.Int("chunks_read", 3)
	f := tr.Start(sc, "fault")
	f.End()
	sc.End()
	root.End()
	spans := tr.Spans()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.ObserveStages(core.Stats{PlanMs: 0.1, ScanMs: 0.2})
				m.ObserveTrace(spans)
				m.ObserveLatency(time.Duration(i) * time.Microsecond)
				m.CountSemantics("plain")
				m.QueriesServed.Add(1)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = m.Snapshot()
			var buf bytes.Buffer
			m.WriteProm(&buf)
		}
	}()
	wg.Wait()
	<-done

	s := m.Snapshot()
	if s.QueriesServed != 800 || s.Latency.Count != 800 {
		t.Fatalf("lost updates: served=%d latency=%d, want 800/800", s.QueriesServed, s.Latency.Count)
	}
	if m.chunksRead.count.Load() != 800 || m.spillFaultMs.count.Load() != 800 {
		t.Fatalf("lost trace observations: chunks=%d faults=%d",
			m.chunksRead.count.Load(), m.spillFaultMs.count.Load())
	}
}

func TestSlowlogRingBuffer(t *testing.T) {
	l := newSlowlog(3)
	for i := 1; i <= 5; i++ {
		l.record(SlowQueryRecord{Query: strconv.Itoa(i), LatencyMs: float64(i)})
	}
	records, total := l.snapshot()
	if total != 5 {
		t.Fatalf("total = %d, want 5", total)
	}
	var got []string
	for _, r := range records {
		got = append(got, r.Query)
	}
	// Capacity 3, newest first: 5, 4, 3.
	want := []string{"5", "4", "3"}
	if len(got) != len(want) {
		t.Fatalf("retained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("retained %v, want %v", got, want)
		}
	}
}

func TestServerSlowlogCapturesTrace(t *testing.T) {
	// Threshold so low every query is slow.
	s := newPaperServer(t, Config{SlowQueryMs: 0.000001, SlowlogCap: 8})
	h := s.Handler()

	rec := postQuery(t, h, queryRequest{Query: paperQuery})
	if rec.Code != http.StatusOK {
		t.Fatalf("query = %d: %s", rec.Code, rec.Body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/slowlog", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/slowlog = %d", rec.Code)
	}
	var resp slowlogResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Total != 1 || len(resp.Queries) != 1 {
		t.Fatalf("slowlog = %+v, want exactly one record", resp)
	}
	r := resp.Queries[0]
	if r.Cube != "paper" || r.LatencyMs <= 0 {
		t.Fatalf("bad record: %+v", r)
	}
	if !strings.Contains(r.Query, "PERSPECTIVE") {
		t.Fatalf("record lacks normalized query: %q", r.Query)
	}
	for _, span := range []string{"eval", "scan", "chunks_read"} {
		if !strings.Contains(r.Trace, span) {
			t.Fatalf("trace missing %q:\n%s", span, r.Trace)
		}
	}
	if s.Metrics().SlowQueries.Load() != 1 {
		t.Fatalf("SlowQueries = %d, want 1", s.Metrics().SlowQueries.Load())
	}

	// A negative threshold disables the log entirely.
	s2 := newPaperServer(t, Config{SlowQueryMs: -1})
	h2 := s2.Handler()
	if rec := postQuery(t, h2, queryRequest{Query: paperQuery}); rec.Code != http.StatusOK {
		t.Fatalf("query = %d", rec.Code)
	}
	if _, total := s2.slowlog.snapshot(); total != 0 {
		t.Fatalf("disabled slowlog recorded %d queries", total)
	}
}

func TestServerExplainEndpoints(t *testing.T) {
	s := newPaperServer(t, Config{CacheBytes: 1 << 20, ScanWorkers: 2})
	h := s.Handler()

	// Plain EXPLAIN: pure planning, no execution.
	rec := postQuery(t, h, queryRequest{Query: "EXPLAIN " + paperQuery})
	if rec.Code != http.StatusOK {
		t.Fatalf("EXPLAIN = %d: %s", rec.Code, rec.Body)
	}
	var resp explainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Analyze || resp.Stats.ChunksRead != 0 {
		t.Fatalf("EXPLAIN executed the query: %+v", resp)
	}
	if !strings.Contains(resp.Explain, "path:") {
		t.Fatalf("EXPLAIN output lacks plan: %q", resp.Explain)
	}

	// EXPLAIN ANALYZE: traced execution with reconciled totals.
	rec = postQuery(t, h, queryRequest{Query: "EXPLAIN ANALYZE " + paperQuery})
	if rec.Code != http.StatusOK {
		t.Fatalf("EXPLAIN ANALYZE = %d: %s", rec.Code, rec.Body)
	}
	resp = explainResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Analyze || resp.Stats.ChunksRead == 0 {
		t.Fatalf("EXPLAIN ANALYZE did not execute: %+v", resp)
	}
	for _, want := range []string{"eval", "scan", "totals:", "stats:"} {
		if !strings.Contains(resp.Explain, want) {
			t.Fatalf("analysis missing %q:\n%s", want, resp.Explain)
		}
	}

	// EXPLAIN responses bypass the cache: same query twice, still a MISS.
	rec = postQuery(t, h, queryRequest{Query: "EXPLAIN " + paperQuery})
	if rec.Header().Get("X-Cache") == "HIT" {
		t.Fatal("EXPLAIN response came from the result cache")
	}

	// /metrics?format=prom serves scrape-ready text.
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/metrics?format=prom", nil))
	if rec2.Code != http.StatusOK {
		t.Fatalf("/metrics?format=prom = %d", rec2.Code)
	}
	if ct := rec2.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("prom content type = %q", ct)
	}
	samples := promParse(t, rec2.Body.String())
	if samples["whatif_queries_served_total"] < 3 {
		t.Fatalf("prom queries_served = %v, want >= 3", samples["whatif_queries_served_total"])
	}
}
