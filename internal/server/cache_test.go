package server

import (
	"fmt"
	"testing"
)

func TestCacheHitOnRepeat(t *testing.T) {
	c := newResultCache(1 << 20)
	key := cacheKey{Cube: "wf", Version: 1, Query: "SELECT ..."}
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key, []byte("body"))
	got, ok := c.Get(key)
	if !ok || string(got) != "body" {
		t.Fatalf("Get = %q, %v; want body, true", got, ok)
	}
}

func TestCacheMissOnVersionBump(t *testing.T) {
	c := newResultCache(1 << 20)
	c.Put(cacheKey{Cube: "wf", Version: 1, Query: "q"}, []byte("v1"))
	if _, ok := c.Get(cacheKey{Cube: "wf", Version: 2, Query: "q"}); ok {
		t.Fatal("version-bumped key hit a stale entry")
	}
	if _, ok := c.Get(cacheKey{Cube: "wf", Version: 1, Query: "q"}); !ok {
		t.Fatal("original version lost")
	}
}

func TestCacheByteBudgetEviction(t *testing.T) {
	body := make([]byte, 1024)
	perEntry := (&cacheEntry{key: cacheKey{Cube: "c", Query: "q0"}, body: body}).cost()
	c := newResultCache(3 * perEntry)

	for i := 0; i < 4; i++ {
		c.Put(cacheKey{Cube: "c", Version: 1, Query: fmt.Sprintf("q%d", i)}, body)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d after overflow, want 3", c.Len())
	}
	if c.Bytes() > 3*perEntry {
		t.Fatalf("Bytes = %d exceeds budget %d", c.Bytes(), 3*perEntry)
	}
	// q0 was least recently used and must be gone; the rest survive.
	if _, ok := c.Get(cacheKey{Cube: "c", Version: 1, Query: "q0"}); ok {
		t.Fatal("LRU entry q0 survived eviction")
	}
	for i := 1; i < 4; i++ {
		if _, ok := c.Get(cacheKey{Cube: "c", Version: 1, Query: fmt.Sprintf("q%d", i)}); !ok {
			t.Fatalf("q%d evicted out of LRU order", i)
		}
	}

	// Touching an old entry protects it: q1 is refreshed above (the Get
	// loop ends on q3, but q1 was read after q2's insertion effects), so
	// make the recency explicit and insert once more.
	c.Get(cacheKey{Cube: "c", Version: 1, Query: "q1"})
	c.Put(cacheKey{Cube: "c", Version: 1, Query: "q4"}, body)
	if _, ok := c.Get(cacheKey{Cube: "c", Version: 1, Query: "q1"}); !ok {
		t.Fatal("recently-used q1 evicted instead of LRU victim")
	}
}

func TestCacheOversizedBodyNotStored(t *testing.T) {
	c := newResultCache(256)
	c.Put(cacheKey{Cube: "c", Query: "q"}, make([]byte, 1024))
	if c.Len() != 0 {
		t.Fatal("body larger than the whole budget was cached")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(0)
	key := cacheKey{Cube: "c", Query: "q"}
	c.Put(key, []byte("body"))
	if _, ok := c.Get(key); ok {
		t.Fatal("zero-budget cache returned a hit")
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("zero-budget cache stored bytes")
	}
}

func TestCacheInvalidateCube(t *testing.T) {
	c := newResultCache(1 << 20)
	c.Put(cacheKey{Cube: "a", Version: 1, Query: "q1"}, []byte("x"))
	c.Put(cacheKey{Cube: "a", Version: 2, Query: "q2"}, []byte("y"))
	c.Put(cacheKey{Cube: "b", Version: 1, Query: "q1"}, []byte("z"))
	if n := c.InvalidateCube("a"); n != 2 {
		t.Fatalf("InvalidateCube(a) = %d, want 2", n)
	}
	if _, ok := c.Get(cacheKey{Cube: "b", Version: 1, Query: "q1"}); !ok {
		t.Fatal("unrelated cube's entry dropped")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}
