package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// promFloat formats a float the way Prometheus clients do: shortest
// representation that round-trips, no exponent for typical values.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writePromHistogram renders one histogram family in text format 0.0.4:
// cumulative le-labelled buckets ending at +Inf, then _sum and _count.
func writePromHistogram(w io.Writer, name, help string, h *histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, promFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(h.sum()))
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

func writePromCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s counter\n", name)
	fmt.Fprintf(w, "%s %d\n", name, v)
}

func writePromGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s gauge\n", name)
	fmt.Fprintf(w, "%s %s\n", name, promFloat(v))
}

// WriteProm writes every metric in Prometheus text exposition format
// 0.0.4. The caller sets Content-Type; the body is self-contained and
// scrape-ready. Counters snapshot atomically per line (the same
// consistency /metrics JSON offers).
func (m *Metrics) WriteProm(w io.Writer) {
	s := m.Snapshot()

	writePromGauge(w, "whatif_uptime_seconds", "Seconds since the server started.", s.UptimeSeconds)
	writePromCounter(w, "whatif_queries_served_total", "Queries answered successfully, including cache hits.", s.QueriesServed)
	writePromCounter(w, "whatif_query_errors_total", "Queries that failed to parse or evaluate.", s.QueryErrors)
	writePromCounter(w, "whatif_overloaded_total", "Admissions rejected because the executor queue was full.", s.Overloaded)
	writePromCounter(w, "whatif_canceled_total", "Queries abandoned by client cancellation.", s.Canceled)
	writePromCounter(w, "whatif_timed_out_total", "Queries abandoned at their deadline.", s.TimedOut)
	writePromCounter(w, "whatif_cache_hits_total", "Result-cache hits.", s.CacheHits)
	writePromCounter(w, "whatif_cache_misses_total", "Result-cache misses.", s.CacheMisses)
	writePromCounter(w, "whatif_slow_queries_total", "Queries recorded in the slow-query log.", s.SlowQueries)
	writePromCounter(w, "whatif_cells_scanned_total", "Source cells visited by chunk scans.", s.CellsScanned)
	writePromCounter(w, "whatif_cells_returned_total", "Result-grid cells returned to clients.", s.CellsReturned)
	writePromGauge(w, "whatif_cache_bytes", "Bytes held by the result cache.", float64(s.CacheBytes))
	writePromGauge(w, "whatif_queue_depth", "Queries waiting in the executor queue.", float64(s.QueueDepth))
	writePromGauge(w, "whatif_writeback_pending", "Segment write-backs queued or in flight.", float64(s.WritebackPending))
	writePromGauge(w, "whatif_pool_resident_bytes", "Bytes of chunk data resident in the buffer pools.", float64(s.Pool.ResidentBytes))
	writePromGauge(w, "whatif_pool_resident_chunks", "Chunks resident in the buffer pools.", float64(s.Pool.ResidentChunks))
	writePromGauge(w, "whatif_pool_pinned", "Chunk ids currently pinned in the buffer pools.", float64(s.Pool.Pinned))
	writePromCounter(w, "whatif_pool_evictions_total", "Chunks evicted from the buffer pools.", int64(s.Pool.Evictions))
	writePromCounter(w, "whatif_pool_faults_total", "Chunk fault-ins from the backing tiers.", int64(s.Pool.Faults))

	if len(s.BySemantics) > 0 {
		fmt.Fprintf(w, "# HELP whatif_queries_by_semantics_total Queries by perspective semantics.\n")
		fmt.Fprintf(w, "# TYPE whatif_queries_by_semantics_total counter\n")
		sems := make([]string, 0, len(s.BySemantics))
		for sem := range s.BySemantics {
			sems = append(sems, sem)
		}
		sort.Strings(sems)
		for _, sem := range sems {
			fmt.Fprintf(w, "whatif_queries_by_semantics_total{semantics=%q} %d\n", sem, s.BySemantics[sem])
		}
	}

	if len(s.ByScenario) > 0 {
		ids := make([]string, 0, len(s.ByScenario))
		for id := range s.ByScenario {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Fprintf(w, "# HELP whatif_scenario_queries_total Queries served per scenario workspace.\n")
		fmt.Fprintf(w, "# TYPE whatif_scenario_queries_total counter\n")
		for _, id := range ids {
			fmt.Fprintf(w, "whatif_scenario_queries_total{scenario=%q} %d\n", id, s.ByScenario[id].Queries)
		}
		fmt.Fprintf(w, "# HELP whatif_scenario_latency_ms_total Cumulative query latency per scenario workspace in milliseconds.\n")
		fmt.Fprintf(w, "# TYPE whatif_scenario_latency_ms_total counter\n")
		for _, id := range ids {
			fmt.Fprintf(w, "whatif_scenario_latency_ms_total{scenario=%q} %s\n", id, promFloat(s.ByScenario[id].LatencySumMs))
		}
	}

	if s.Stages.Count > 0 {
		fmt.Fprintf(w, "# HELP whatif_stage_ms_total Cumulative pipeline stage time in milliseconds.\n")
		fmt.Fprintf(w, "# TYPE whatif_stage_ms_total counter\n")
		n := float64(s.Stages.Count)
		for _, st := range []struct {
			name string
			ms   float64
		}{
			{"plan", s.Stages.PlanMs},
			{"scan", s.Stages.ScanMs},
			{"merge", s.Stages.MergeMs},
			{"project", s.Stages.ProjectMs},
		} {
			fmt.Fprintf(w, "whatif_stage_ms_total{stage=%q} %s\n", st.name, promFloat(st.ms*n))
		}
		writePromCounter(w, "whatif_stage_queries_total", "Engine-backed queries contributing to stage totals.", s.Stages.Count)
	}

	writePromHistogram(w, "whatif_query_latency_ms", "End-to-end query latency in milliseconds.", m.latency)
	writePromHistogram(w, "whatif_query_chunks_read", "Chunks read per engine-backed query.", m.chunksRead)
	writePromHistogram(w, "whatif_merge_group_span_ms", "Per-merge-group scan span duration in milliseconds.", m.groupSpanMs)
	writePromHistogram(w, "whatif_spill_fault_ms", "Spill fault-in duration in milliseconds.", m.spillFaultMs)
	writePromHistogram(w, "whatif_segment_read_ms", "Durable segment fault-in duration in milliseconds.", m.segmentReadMs)
}
