package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrOverloaded is returned when the admission queue is full: the
// caller should shed the request (HTTP 429) rather than let goroutines
// pile up behind a slow cube.
var ErrOverloaded = errors.New("server: overloaded, admission queue full")

// ErrShuttingDown is returned by Do after Close.
var ErrShuttingDown = errors.New("server: shutting down")

// task is one admitted query execution.
type task struct {
	ctx  context.Context
	fn   func(ctx context.Context) error
	err  error
	done chan struct{}
}

// Executor runs queries on a bounded worker pool behind a bounded
// admission queue. Both bounds are backpressure: workers cap CPU
// parallelism, the queue caps latency debt. A Submit against a full
// queue fails fast with ErrOverloaded instead of queueing unboundedly.
type Executor struct {
	tasks   chan *task
	workers int
	wg      sync.WaitGroup

	closeMu sync.RWMutex
	closed  bool
}

// NewExecutor starts a pool of the given size with the given admission
// queue capacity.
func NewExecutor(workers, queueCap int) *Executor {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 0 {
		queueCap = 0
	}
	e := &Executor{tasks: make(chan *task, queueCap), workers: workers}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.work()
	}
	return e
}

func (e *Executor) work() {
	defer e.wg.Done()
	for t := range e.tasks {
		// A task whose context died while queued is skipped: the work
		// would be thrown away anyway.
		if err := t.ctx.Err(); err != nil {
			t.err = err
		} else {
			t.err = runGuarded(t)
		}
		close(t.done)
	}
}

// runGuarded executes the task function, converting a panic into an
// error so one poisoned query cannot take down the daemon's worker.
func runGuarded(t *task) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("server: query panicked: %v", r)
		}
	}()
	return t.fn(t.ctx)
}

// Do admits fn and waits for it to finish, returning fn's error.
// Admission is non-blocking: a full queue yields ErrOverloaded
// immediately. Cancellation of ctx does not abandon the wait — fn
// observes ctx itself and returns promptly, which keeps the caller's
// resources (response writer, snapshot lease) valid until the worker
// is actually done with them.
func (e *Executor) Do(ctx context.Context, fn func(ctx context.Context) error) error {
	t := &task{ctx: ctx, fn: fn, done: make(chan struct{})}
	e.closeMu.RLock()
	if e.closed {
		e.closeMu.RUnlock()
		return ErrShuttingDown
	}
	select {
	case e.tasks <- t:
		e.closeMu.RUnlock()
	default:
		e.closeMu.RUnlock()
		return ErrOverloaded
	}
	<-t.done
	return t.err
}

// QueueDepth reports the number of admitted tasks not yet picked up by
// a worker.
func (e *Executor) QueueDepth() int { return len(e.tasks) }

// Workers reports the pool size.
func (e *Executor) Workers() int { return e.workers }

// Close drains the queue and stops the workers. Queued tasks still run
// (or are skipped if their contexts died); new Do calls fail with
// ErrShuttingDown.
func (e *Executor) Close() {
	e.closeMu.Lock()
	if e.closed {
		e.closeMu.Unlock()
		return
	}
	e.closed = true
	close(e.tasks)
	e.closeMu.Unlock()
	e.wg.Wait()
}
