package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"whatifolap/internal/chunk"
	"whatifolap/internal/cube"
	"whatifolap/internal/paperdata"
)

// paperQuery is the paper's Fig. 4-style running-example query.
const paperQuery = `
WITH PERSPECTIVE {(Feb), (Apr)} FOR Organization DYNAMIC FORWARD VISUAL
SELECT {Descendants([Time], 1, SELF_AND_AFTER)} ON COLUMNS,
       {[PTE].Children} ON ROWS
FROM Warehouse
WHERE ([Location].[NY], [Measures].[Salary])`

// newPaperServer builds a server over the paper warehouse.
func newPaperServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	cat := NewCatalog()
	if err := cat.Register("paper", paperdata.ChunkedWarehouse(nil)); err != nil {
		t.Fatal(err)
	}
	s := New(cat, cfg)
	t.Cleanup(s.Close)
	return s
}

// postQuery sends one POST /query through the handler.
func postQuery(t testing.TB, h http.Handler, req queryRequest) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body)))
	return rec
}

func TestServerEndpoints(t *testing.T) {
	s := newPaperServer(t, Config{CacheBytes: 1 << 20})
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz = %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/cubes", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/cubes = %d: %s", rec.Code, rec.Body)
	}
	var cubes struct {
		Cubes []CubeInfo `json:"cubes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &cubes); err != nil {
		t.Fatal(err)
	}
	if len(cubes.Cubes) != 1 || cubes.Cubes[0].Name != "paper" || cubes.Cubes[0].Version != 1 {
		t.Fatalf("/cubes = %+v", cubes)
	}
	if len(cubes.Cubes[0].Dimensions) == 0 || cubes.Cubes[0].Cells == 0 {
		t.Fatalf("cube info lacks shape: %+v", cubes.Cubes[0])
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/cubes", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /cubes = %d, want 405", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
}

func TestServerQueryAndCacheHit(t *testing.T) {
	s := newPaperServer(t, Config{CacheBytes: 1 << 20})
	h := s.Handler()

	// Cube name omitted: a single-cube catalog serves its only cube.
	first := postQuery(t, h, queryRequest{Query: paperQuery})
	if first.Code != http.StatusOK {
		t.Fatalf("first query = %d: %s", first.Code, first.Body)
	}
	if got := first.Header().Get("X-Cache"); got != "MISS" {
		t.Fatalf("first X-Cache = %q, want MISS", got)
	}
	var resp queryResponse
	if err := json.Unmarshal(first.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cube != "paper" || resp.Version != 1 {
		t.Fatalf("response identifies %s v%d", resp.Cube, resp.Version)
	}
	if len(resp.Columns) == 0 || len(resp.Rows) == 0 || len(resp.Values) != len(resp.Rows) {
		t.Fatalf("degenerate grid: %+v", resp)
	}

	// A formatting/keyword-case variant of the same query must hit
	// (member names keep their case — they are not keywords).
	variant := strings.Join(strings.Fields(paperQuery), " ")
	variant = strings.Replace(variant, "SELECT", "select", 1)
	second := postQuery(t, h, queryRequest{Cube: "paper", Query: variant})
	if second.Code != http.StatusOK {
		t.Fatalf("second query = %d: %s", second.Code, second.Body)
	}
	if got := second.Header().Get("X-Cache"); got != "HIT" {
		t.Fatalf("second X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("cache hit body differs from miss body")
	}

	m := s.Metrics().Snapshot()
	if m.CacheHits != 1 || m.CacheMisses != 1 || m.QueriesServed != 2 {
		t.Fatalf("metrics = hits %d, misses %d, served %d", m.CacheHits, m.CacheMisses, m.QueriesServed)
	}
	if m.CacheHitRatio != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5", m.CacheHitRatio)
	}
	if m.BySemantics["dynamic-forward"] != 1 {
		t.Fatalf("by_semantics = %v, want dynamic-forward: 1", m.BySemantics)
	}
	if m.Latency.Count != 2 {
		t.Fatalf("latency count = %d, want 2", m.Latency.Count)
	}
}

func TestServerUpdateBumpsVersionAndMissesCache(t *testing.T) {
	s := newPaperServer(t, Config{CacheBytes: 1 << 20})
	h := s.Handler()

	if rec := postQuery(t, h, queryRequest{Query: paperQuery}); rec.Code != http.StatusOK {
		t.Fatalf("warm-up query = %d: %s", rec.Code, rec.Body)
	}
	v, err := s.UpdateCube("paper", func(c *cube.Cube) (*cube.Cube, error) {
		c.SetLeaf(make([]int, c.NumDims()), 12345)
		return c, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("UpdateCube version = %d, want 2", v)
	}

	rec := postQuery(t, h, queryRequest{Query: paperQuery})
	if rec.Code != http.StatusOK {
		t.Fatalf("post-update query = %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Cache"); got != "MISS" {
		t.Fatalf("post-update X-Cache = %q, want MISS (version bump)", got)
	}
	if got := rec.Header().Get("X-Cube-Version"); got != "2" {
		t.Fatalf("post-update X-Cube-Version = %q, want 2", got)
	}
}

func TestServerQueryErrors(t *testing.T) {
	cat := NewCatalog()
	if err := cat.Register("a", paperdata.ChunkedWarehouse(nil)); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register("b", paperdata.ChunkedWarehouse(nil)); err != nil {
		t.Fatal(err)
	}
	s := New(cat, Config{})
	t.Cleanup(s.Close)
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/query", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query = %d, want 405", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/query", strings.NewReader("{not json")))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad body = %d, want 400", rec.Code)
	}

	// Two cubes, none named: ambiguous.
	if rec := postQuery(t, h, queryRequest{Query: paperQuery}); rec.Code != http.StatusBadRequest {
		t.Fatalf("ambiguous cube = %d, want 400", rec.Code)
	}
	if rec := postQuery(t, h, queryRequest{Cube: "nope", Query: paperQuery}); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown cube = %d, want 404", rec.Code)
	}
	if rec := postQuery(t, h, queryRequest{Cube: "a", Query: "SELECT FROM ("}); rec.Code != http.StatusBadRequest {
		t.Fatalf("parse error = %d, want 400", rec.Code)
	}
	// Parses but fails evaluation: unknown member.
	if rec := postQuery(t, h, queryRequest{Cube: "a",
		Query: "SELECT {[NoSuchMember].Children} ON COLUMNS FROM W"}); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("eval error = %d, want 422", rec.Code)
	}

	if got := s.Metrics().Snapshot().QueryErrors; got != 5 {
		t.Fatalf("query_errors = %d, want 5", got)
	}
}

func TestServerOverloadReturns429(t *testing.T) {
	s := newPaperServer(t, Config{Workers: 1, QueueCap: 1})
	h := s.Handler()

	release := make(chan struct{})
	wg := blockWorker(t, s.exec, release)
	queued := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		queued <- s.exec.Do(context.Background(), func(context.Context) error { return nil })
	}()
	waitFor(t, func() bool { return s.exec.QueueDepth() == 1 })

	rec := postQuery(t, h, queryRequest{Query: paperQuery})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated server = %d, want 429: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	close(release)
	<-queued
	wg.Wait()

	if got := s.Metrics().Snapshot().Overloaded; got != 1 {
		t.Fatalf("overloaded = %d, want 1", got)
	}
}

func TestServerCancellationMidQueryReturns499(t *testing.T) {
	s := newPaperServer(t, Config{CacheBytes: 0})
	h := s.Handler()

	snap, err := s.catalog.Acquire("paper")
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	st := snap.Cube.Store().(*chunk.Store)

	// The hook parks the engine inside its first chunk read, proving the
	// query is mid-execution when the client disconnects; the engine's
	// next context check aborts it.
	hookHit := make(chan struct{})
	releaseHook := make(chan struct{})
	var once sync.Once
	st.SetReadHook(func(int) {
		once.Do(func() {
			close(hookHit)
			<-releaseHook
		})
	})
	defer st.SetReadHook(nil)

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(queryRequest{Query: paperQuery})
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body)).WithContext(ctx))
	}()

	<-hookHit
	cancel()
	close(releaseHook)
	<-done

	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("canceled query = %d, want %d: %s", rec.Code, StatusClientClosedRequest, rec.Body)
	}
	if got := s.Metrics().Snapshot().Canceled; got != 1 {
		t.Fatalf("canceled counter = %d, want 1", got)
	}
}

func TestServerTimeoutReturns504(t *testing.T) {
	s := newPaperServer(t, Config{CacheBytes: 0})
	h := s.Handler()

	snap, err := s.catalog.Acquire("paper")
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	st := snap.Cube.Store().(*chunk.Store)

	// Park the engine mid-read until the 1 ms request deadline has
	// certainly passed.
	releaseHook := make(chan struct{})
	var once sync.Once
	st.SetReadHook(func(int) {
		once.Do(func() { <-releaseHook })
	})
	defer st.SetReadHook(nil)

	go func() {
		time.Sleep(20 * time.Millisecond)
		close(releaseHook)
	}()
	rec := postQuery(t, h, queryRequest{Query: paperQuery, TimeoutMs: 1})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out query = %d, want 504: %s", rec.Code, rec.Body)
	}
	if got := s.Metrics().Snapshot().TimedOut; got != 1 {
		t.Fatalf("timed_out counter = %d, want 1", got)
	}
}
