// Package server is the concurrent what-if query service: a cube
// catalog (named, versioned, copy-on-write cubes), a bounded-pool
// executor with admission control, a byte-budgeted LRU result cache
// keyed on (cube, version, normalized MDX), and an HTTP surface with
// expvar-style metrics. cmd/whatifd wraps it in a daemon.
//
// The layering mirrors the deployment context the paper targets —
// Essbase answering interactive what-if MDX for many concurrent
// planning analysts — on top of this repo's single-cube engine:
//
//	HTTP ── admission queue ── worker pool ── mdx.Evaluator ── core.Engine
//	          │                      │
//	          └── result cache       └── catalog snapshot (refcounted)
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"whatifolap/internal/core"
	"whatifolap/internal/cube"
	"whatifolap/internal/mdx"
	"whatifolap/internal/obs"
	"whatifolap/internal/result"
	"whatifolap/internal/scenario"
	"whatifolap/internal/trace"
)

// StatusClientClosedRequest reports client-side cancellation (the nginx
// convention; Go's stdlib has no constant for it).
const StatusClientClosedRequest = 499

// Config parameterizes the service. Zero values choose sane defaults.
type Config struct {
	// Workers bounds query parallelism (default: GOMAXPROCS).
	Workers int
	// ScanWorkers bounds each query's intra-query parallelism: the
	// engine's chunk scan fans out over independent merge groups on
	// this many workers. 0 or 1 scans serially — the right default when
	// Workers already saturates the cores with concurrent queries.
	ScanWorkers int
	// QueueCap bounds the admission queue; a full queue sheds load with
	// HTTP 429 (default: 4 × workers).
	QueueCap int
	// CacheBytes is the result cache's byte budget; 0 or negative
	// disables caching. DefaultCacheBytes is used when left zero by
	// cmd/whatifd, but the library treats 0 as "off" so tests can
	// exercise the uncached path.
	CacheBytes int
	// DefaultTimeout bounds each query when the request does not carry
	// its own timeout; 0 means no deadline.
	DefaultTimeout time.Duration
	// MaxBodyBytes bounds the /query request body (default 1 MiB).
	MaxBodyBytes int64
	// SlowQueryMs is the slow-query log threshold in milliseconds:
	// engine-backed queries at or above it are recorded with their span
	// trace at /debug/slowlog. 0 uses DefaultSlowQueryMs; negative
	// disables the log.
	SlowQueryMs float64
	// SlowlogCap bounds the slow-query ring buffer (default 128).
	SlowlogCap int
	// TraceSpans sizes each query's span buffer (default
	// trace.DefaultMaxSpans). Spans beyond the cap are dropped, never
	// allocated.
	TraceSpans int
	// ObsInterval is the metrics-history collector cadence: every tick
	// one obs.Sample of counter deltas and gauge levels is appended to
	// the ring served at /metrics/history. 0 uses DefaultObsInterval;
	// negative disables the collector (tests drive sampling directly).
	ObsInterval time.Duration
	// HistoryCap bounds the metrics-history ring (default
	// obs.DefaultHistoryCap samples — ten minutes at one per second).
	HistoryCap int
	// RetainTraceBytes is the tail-sampled trace ring's byte budget:
	// slow, errored and 1-in-N queries keep their full span trees,
	// addressable at /debug/trace/{id}. 0 uses DefaultRetainTraceBytes;
	// negative disables retention.
	RetainTraceBytes int
	// TraceSampleEvery retains every Nth query regardless of latency so
	// the ring always holds representative healthy traces. 0 uses
	// DefaultTraceSampleEvery; negative keeps only slow/errored queries.
	TraceSampleEvery int
	// EventLogCap bounds the structured component-event ring served at
	// /debug/events (default obs.DefaultEventLogCap). Ignored when
	// Events is set.
	EventLogCap int
	// Events, when non-nil, replaces the server's own event log — the
	// daemon passes one with an os.Stderr sink so lifecycle events reach
	// the operator as JSON lines as well as /debug/events.
	Events *obs.EventLog
}

// DefaultCacheBytes is the daemon's default result-cache budget.
const DefaultCacheBytes = 32 << 20

// DefaultSlowQueryMs is the slow-query log threshold when Config
// leaves SlowQueryMs zero.
const DefaultSlowQueryMs = 250

const defaultSlowlogCap = 128

// DefaultObsInterval is the metrics-history sampling cadence when
// Config leaves ObsInterval zero.
const DefaultObsInterval = time.Second

// DefaultRetainTraceBytes is the tail-sampled trace ring's byte budget
// when Config leaves RetainTraceBytes zero.
const DefaultRetainTraceBytes = 4 << 20

// DefaultTraceSampleEvery retains one healthy query in this many when
// Config leaves TraceSampleEvery zero.
const DefaultTraceSampleEvery = 64

// Server wires catalog, executor, cache and metrics together behind an
// http.Handler. Create with New, serve Handler(), stop with Close.
type Server struct {
	catalog   *Catalog
	exec      *Executor
	cache     *resultCache
	metrics   *Metrics
	slowlog   *slowlog
	scenarios *scenario.Manager
	cfg       Config

	// Observability: history ring + its collector, tail-sampled trace
	// retention, structured event log, and the sampler holding the
	// previous tick's counter state. traces and events are nil-safe, so
	// disabled configurations cost one pointer check on the query path.
	history   *obs.History
	collector *obs.Collector
	traces    *obs.TraceRing
	events    *obs.EventLog
	sampler   *obsSampler

	// tracePool recycles span buffers across queries: every engine-backed
	// query runs traced (the recorder is allocation-free once its buffer
	// exists), so pooling makes steady-state tracing alloc-free too.
	tracePool sync.Pool
}

// New creates a server over the catalog.
func New(catalog *Catalog, cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4 * cfg.Workers
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.SlowQueryMs == 0 {
		cfg.SlowQueryMs = DefaultSlowQueryMs
	}
	s := &Server{
		catalog:   catalog,
		exec:      NewExecutor(cfg.Workers, cfg.QueueCap),
		cache:     newResultCache(cfg.CacheBytes),
		metrics:   NewMetrics(),
		slowlog:   newSlowlog(cfg.SlowlogCap),
		scenarios: scenario.NewManager(),
		cfg:       cfg,
	}
	s.tracePool.New = func() interface{} { return trace.New(cfg.TraceSpans) }
	s.metrics.queueDepth = s.exec.QueueDepth
	s.metrics.cacheBytes = s.cache.Bytes
	s.metrics.poolStats = catalog.PoolStats
	if p := catalog.Persister(); p != nil {
		s.metrics.writebackPending = p.Pending
	}

	s.events = cfg.Events
	if s.events == nil {
		s.events = obs.NewEventLog(cfg.EventLogCap, nil)
	}
	if p := catalog.Persister(); p != nil {
		p.SetEventLog(s.events)
	}
	if cfg.RetainTraceBytes >= 0 {
		budget := cfg.RetainTraceBytes
		if budget == 0 {
			budget = DefaultRetainTraceBytes
		}
		every := cfg.TraceSampleEvery
		if every == 0 {
			every = DefaultTraceSampleEvery
		}
		if every < 0 {
			every = 0 // slow/errored only
		}
		s.traces = obs.NewTraceRing(budget, every)
	}
	s.history = obs.NewHistory(cfg.HistoryCap)
	s.sampler = newObsSampler(s)
	if cfg.ObsInterval >= 0 {
		interval := cfg.ObsInterval
		if interval == 0 {
			interval = DefaultObsInterval
		}
		s.collector = obs.StartCollector(interval, s.sampler.sample)
	}
	return s
}

// Catalog returns the server's cube catalog.
func (s *Server) Catalog() *Catalog { return s.catalog }

// Metrics returns the server's metrics set.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close stops the history collector and the worker pool (draining
// admitted queries), then waits for any pending segment write-backs so
// a clean shutdown never loses a published version.
func (s *Server) Close() {
	s.collector.Stop()
	s.exec.Close()
	if p := s.catalog.Persister(); p != nil {
		_ = p.Flush()
	}
}

// UpdateCube applies a copy-on-write catalog update and invalidates the
// result cache for that cube. This is the server-side hook for
// WITH CHANGES-style admin updates: in-flight queries finish on their
// acquired snapshot; subsequent queries see the bumped version and miss
// the cache.
func (s *Server) UpdateCube(name string, mutate func(c *cube.Cube) (*cube.Cube, error)) (int64, error) {
	v, err := s.catalog.Update(name, mutate)
	if err != nil {
		return 0, err
	}
	s.cache.InvalidateCube(name)
	s.events.Log("cube_update", map[string]string{
		"cube":    name,
		"version": fmt.Sprint(v),
	})
	return v, nil
}

// Handler returns the HTTP surface:
//
//	POST /query            {"cube": "...", "query": "...", "timeout_ms": 0}
//	GET  /cubes            catalog listing
//	GET  /metrics          counters + histogram snapshot (JSON; ?format=prom
//	                       for Prometheus text exposition)
//	GET  /metrics/history  metrics time-series ring (per-interval deltas)
//	GET  /debug/slowlog    recent slow queries with their span traces
//	GET  /debug/trace      retained trace summaries (tail sampling)
//	GET  /debug/trace/{id} one retained trace's full span tree
//	GET  /debug/events     structured component lifecycle events
//	GET  /healthz          liveness
//
// plus the scenario workspace surface:
//
//	POST   /scenarios                  create over a catalog cube
//	GET    /scenarios                  list workspaces
//	POST   /scenarios/{id}/edit        apply an edit batch
//	POST   /scenarios/{id}/fork        fork (shares the layer chain)
//	POST   /scenarios/{id}/query       query the layered view
//	GET    /scenarios/{id}/diff        cell diff (?against={id2})
//	POST   /scenarios/{id}/commit      publish as a new cube version
//	DELETE /scenarios/{id}             discard
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/cubes", s.handleCubes)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics/history", s.handleMetricsHistory)
	mux.HandleFunc("/debug/slowlog", s.handleSlowlog)
	mux.HandleFunc("GET /debug/trace", s.handleTraceList)
	mux.HandleFunc("GET /debug/trace/{id}", s.handleTrace)
	mux.HandleFunc("GET /debug/events", s.handleEvents)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("POST /scenarios", s.handleScenarioCreate)
	mux.HandleFunc("GET /scenarios", s.handleScenarioList)
	mux.HandleFunc("POST /scenarios/{id}/edit", s.handleScenarioEdit)
	mux.HandleFunc("POST /scenarios/{id}/fork", s.handleScenarioFork)
	mux.HandleFunc("POST /scenarios/{id}/query", s.handleScenarioQuery)
	mux.HandleFunc("GET /scenarios/{id}/diff", s.handleScenarioDiff)
	mux.HandleFunc("POST /scenarios/{id}/commit", s.handleScenarioCommit)
	mux.HandleFunc("DELETE /scenarios/{id}", s.handleScenarioDelete)
	return mux
}

// queryRequest is the POST /query body.
type queryRequest struct {
	// Cube names the catalog entry; may be omitted when the catalog
	// holds exactly one cube.
	Cube string `json:"cube"`
	// Query is extended-MDX source.
	Query string `json:"query"`
	// TimeoutMs overrides the server's default query deadline.
	TimeoutMs int `json:"timeout_ms"`
}

// queryStats is the engine-execution summary attached to responses.
type queryStats struct {
	MembersInScope int `json:"members_in_scope"`
	ChunksRead     int `json:"chunks_read"`
	CellsRelocated int `json:"cells_relocated"`
	MergeEdges     int `json:"merge_edges"`
	MergeGroups    int `json:"merge_groups"`
	ScanWorkers    int `json:"scan_workers,omitempty"`
	// Wall-clock stage times (scan_ms, merge_ms, ...) are deliberately
	// NOT in the body: responses must be byte-identical for identical
	// queries so the result cache can serve stored bodies verbatim.
	// Per-stage means — where merge ~0 shows the zero-copy partitioned
	// merge — are aggregated at /metrics (StageSnapshot).
}

// queryResponse is the POST /query success body. Values use null for
// the meaningless cell ⊥ (NaN is not valid JSON).
type queryResponse struct {
	Cube      string       `json:"cube"`
	Version   int64        `json:"version"`
	Columns   []string     `json:"columns"`
	Rows      []string     `json:"rows"`
	PropNames []string     `json:"prop_names,omitempty"`
	RowProps  [][]string   `json:"row_props,omitempty"`
	Values    [][]*float64 `json:"values"`
	Stats     queryStats   `json:"stats"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	var req queryRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.metrics.QueryErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad request body: " + err.Error()})
		return
	}
	if req.Cube == "" {
		if names := s.catalog.Names(); len(names) == 1 {
			req.Cube = names[0]
		} else {
			s.metrics.QueryErrors.Add(1)
			writeJSON(w, http.StatusBadRequest, errorResponse{
				fmt.Sprintf("no cube named and catalog holds %d cubes", len(names))})
			return
		}
	}
	snap, err := s.catalog.Acquire(req.Cube)
	if err != nil {
		s.metrics.QueryErrors.Add(1)
		writeJSON(w, http.StatusNotFound, errorResponse{err.Error()})
		return
	}
	defer snap.Release()

	norm, err := mdx.Normalize(req.Query)
	if err != nil {
		s.metrics.QueryErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	started := time.Now()
	key := cacheKey{Cube: snap.Name, Version: snap.Version, Query: norm}
	if body, ok := s.cache.Get(key); ok {
		s.metrics.CacheHits.Add(1)
		s.metrics.QueriesServed.Add(1)
		s.metrics.ObserveLatency(time.Since(started))
		writeCached(w, snap.Version, body, true)
		return
	}
	s.metrics.CacheMisses.Add(1)

	q, err := mdx.Parse(req.Query)
	if err != nil {
		s.metrics.QueryErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	s.metrics.CountSemantics(classify(q))

	ctx := r.Context()
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	if q.Explain {
		// EXPLAIN output is never cached: ANALYZE timings differ per run,
		// and plain EXPLAIN is pure planning — cheaper than a cache slot.
		s.handleExplain(w, ctx, snap, q, started)
		return
	}

	// Every engine-backed query runs under a pooled span trace: the
	// recorder is allocation-free, and the spans feed the trace-derived
	// histograms plus the slow-query log.
	tr := s.tracePool.Get().(*trace.Trace)
	defer func() {
		tr.Reset()
		s.tracePool.Put(tr)
	}()

	var grid *result.Grid
	var stats core.Stats
	err = s.exec.Do(ctx, func(ctx context.Context) error {
		// The worker's context goes straight into the engine through an
		// explicit RunContext — no mutation of shared evaluator or
		// engine state between concurrent queries.
		var runErr error
		root := tr.Start(trace.SpanRef{}, "eval")
		defer root.End()
		ctx = trace.WithSpan(trace.NewContext(ctx, tr), root)
		rc := mdx.RunContext{Ctx: ctx, Workers: s.cfg.ScanWorkers}
		grid, stats, runErr = mdx.NewEvaluator(snap.Cube).RunQueryStatsWith(rc, q)
		return runErr
	})
	if err != nil {
		if id := s.retainTrace(tr, snap.Name, "", 0, norm, time.Since(started), err); id != "" {
			w.Header().Set("X-Trace-Id", id)
		}
		s.writeQueryError(w, err)
		return
	}
	s.metrics.ObserveStages(stats)
	s.metrics.ObserveTrace(tr.Spans())
	s.metrics.ObserveCells(int64(stats.CellsScanned), gridCells(grid))
	elapsed := time.Since(started)
	traceID := s.retainTrace(tr, snap.Name, "", 0, norm, elapsed, nil)
	s.observeSlow(snap.Name, "", 0, norm, elapsed, tr, traceID)

	body, err := json.Marshal(buildResponse(snap, grid, stats))
	if err != nil {
		s.metrics.QueryErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
		return
	}
	s.cache.Put(key, body)
	s.metrics.QueriesServed.Add(1)
	s.metrics.ObserveLatency(time.Since(started))
	// The retained trace ID travels in a header, like cache state: the
	// cached body must stay byte-identical across hits and misses.
	if traceID != "" {
		w.Header().Set("X-Trace-Id", traceID)
	}
	writeCached(w, snap.Version, body, false)
}

// gridCells counts result cells — the denominator of the scan
// amplification ratio tracked at /metrics and /metrics/history.
func gridCells(g *result.Grid) int64 {
	if g == nil {
		return 0
	}
	var n int64
	for _, row := range g.Values {
		n += int64(len(row))
	}
	return n
}

// observeSlow records the query in the slow-query log when it crossed
// the configured threshold. The span trace is rendered eagerly: the
// trace buffer goes back to the pool when the handler returns, but the
// log entry must outlive it. traceID, when non-empty, links the entry
// to the retained trace at /debug/trace/{id} (slow queries always
// qualify for retention, so the link is present whenever the trace
// ring is enabled).
func (s *Server) observeSlow(cubeName, scenarioID string, rev int64, norm string, elapsed time.Duration, tr *trace.Trace, traceID string) {
	if s.cfg.SlowQueryMs < 0 {
		return
	}
	ms := float64(elapsed) / float64(time.Millisecond)
	if ms < s.cfg.SlowQueryMs {
		return
	}
	s.metrics.SlowQueries.Add(1)
	s.slowlog.record(SlowQueryRecord{
		Time:        time.Now(),
		Cube:        cubeName,
		Scenario:    scenarioID,
		ScenarioRev: rev,
		Query:       norm,
		LatencyMs:   ms,
		Trace:       tr.Render(),
		TraceID:     traceID,
	})
}

// explainResponse is the POST /query body for EXPLAIN queries.
type explainResponse struct {
	Cube    string     `json:"cube"`
	Version int64      `json:"version"`
	Analyze bool       `json:"analyze"`
	Explain string     `json:"explain"`
	Stats   queryStats `json:"stats,omitempty"`
}

// handleExplain serves EXPLAIN (pure planning, runs inline) and
// EXPLAIN ANALYZE (full traced execution through the admission queue,
// like any other query).
func (s *Server) handleExplain(w http.ResponseWriter, ctx context.Context, snap *Snapshot, q *mdx.Query, started time.Time) {
	resp := explainResponse{Cube: snap.Name, Version: snap.Version, Analyze: q.Analyze}
	if !q.Analyze {
		text, err := mdx.NewEvaluator(snap.Cube).Explain(q)
		if err != nil {
			s.metrics.QueryErrors.Add(1)
			writeJSON(w, http.StatusUnprocessableEntity, errorResponse{err.Error()})
			return
		}
		resp.Explain = text
		s.metrics.QueriesServed.Add(1)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	var stats core.Stats
	err := s.exec.Do(ctx, func(ctx context.Context) error {
		var runErr error
		rc := mdx.RunContext{Ctx: ctx, Workers: s.cfg.ScanWorkers}
		resp.Explain, _, stats, runErr = mdx.NewEvaluator(snap.Cube).ExplainAnalyze(rc, q)
		return runErr
	})
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	resp.Stats = queryStats{
		MembersInScope: stats.MembersInScope,
		ChunksRead:     stats.ChunksRead,
		CellsRelocated: stats.CellsRelocated,
		MergeEdges:     stats.MergeEdges,
		MergeGroups:    stats.MergeGroups,
		ScanWorkers:    stats.ScanWorkers,
	}
	s.metrics.ObserveStages(stats)
	s.metrics.QueriesServed.Add(1)
	s.metrics.ObserveLatency(time.Since(started))
	writeJSON(w, http.StatusOK, resp)
}

// writeQueryError maps execution errors to status codes and counters.
func (s *Server) writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		s.metrics.Overloaded.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{err.Error()})
	case errors.Is(err, ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{err.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.TimedOut.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{"query deadline exceeded"})
	case errors.Is(err, context.Canceled):
		s.metrics.Canceled.Add(1)
		writeJSON(w, StatusClientClosedRequest, errorResponse{"query canceled"})
	case strings.HasPrefix(err.Error(), "server: query panicked"):
		s.metrics.QueryErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
	default:
		s.metrics.QueryErrors.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{err.Error()})
	}
}

// buildResponse converts a grid into the wire shape.
func buildResponse(snap *Snapshot, g *result.Grid, stats core.Stats) queryResponse {
	values := gridValues(g)
	return queryResponse{
		Cube:      snap.Name,
		Version:   snap.Version,
		Columns:   g.ColLabels,
		Rows:      g.RowLabels,
		PropNames: g.PropNames,
		RowProps:  g.RowProps,
		Values:    values,
		Stats: queryStats{
			MembersInScope: stats.MembersInScope,
			ChunksRead:     stats.ChunksRead,
			CellsRelocated: stats.CellsRelocated,
			MergeEdges:     stats.MergeEdges,
			MergeGroups:    stats.MergeGroups,
			ScanWorkers:    stats.ScanWorkers,
		},
	}
}

// classify buckets a parsed query for the per-semantics metric.
func classify(q *mdx.Query) string {
	nP, nT := len(q.Perspectives), len(q.Transfers)
	switch {
	case q.Changes == nil && nP == 0 && nT == 0:
		return "plain"
	case q.Changes != nil && nP == 0 && nT == 0:
		return "changes"
	case q.Changes == nil && nP == 0 && nT > 0:
		return "transfer"
	case q.Changes == nil && nP == 1 && nT == 0:
		sem := strings.ToLower(q.Perspectives[0].Sem.String())
		return strings.ReplaceAll(sem, " ", "-")
	}
	return "mixed"
}

func (s *Server) handleCubes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Cubes []CubeInfo `json:"cubes"`
	}{s.catalog.List()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		s.metrics.WriteProm(w)
		return
	}
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

// slowlogResponse is the GET /debug/slowlog body.
type slowlogResponse struct {
	ThresholdMs float64           `json:"threshold_ms"`
	Total       int64             `json:"total"`
	Queries     []SlowQueryRecord `json:"queries"`
}

func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	records, total := s.slowlog.snapshot()
	writeJSON(w, http.StatusOK, slowlogResponse{
		ThresholdMs: s.cfg.SlowQueryMs,
		Total:       total,
		Queries:     records,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeCached writes a (possibly cached) success body. Cache state
// travels in a header so the body bytes stay identical across hits and
// misses — the cache stores the serialized body verbatim.
func writeCached(w http.ResponseWriter, version int64, body []byte, hit bool) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cube-Version", fmt.Sprint(version))
	if hit {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
	if len(body) > 0 && body[len(body)-1] != '\n' {
		_, _ = w.Write([]byte("\n"))
	}
}
