package server

import (
	"fmt"
	"net/http"
	"sync"
	"testing"

	"whatifolap/internal/workload"
)

// workforceQueries builds one perspective query per semantics over the
// generated workforce's first changing employee. The employee name is
// ambiguous across member instances, so it is qualified with its
// January department path.
func workforceQueries(t testing.TB, w *workload.Workforce) []string {
	t.Helper()
	dept := w.Cube.DimByName(workload.DimDepartment)
	b := w.Cube.BindingFor(workload.DimDepartment)
	inst := dept.Path(b.InstanceAt(w.Changing[0], 0))
	queries := make([]string, 0, 3)
	for _, sem := range []string{"STATIC", "DYNAMIC FORWARD", "DYNAMIC BACKWARD"} {
		queries = append(queries, fmt.Sprintf(`
WITH PERSPECTIVE {(Jan), (Apr), (Jul), (Oct)} FOR Department %s
SELECT {[Account].Levels(0).Members} ON COLUMNS,
       {CrossJoin({[%s]}, {Descendants([Period], 1, SELF_AND_AFTER)})} ON ROWS
FROM [App].[Db]
WHERE ([Scenario].[Current], [Currency].[Local], [Version].[BU Version_1], [ValueType].[HSP_InputValue])`,
			sem, inst))
	}
	return queries
}

// TestConcurrentQueriesMatchSerial hammers one workforce cube from 32
// goroutines with mixed static/forward/backward perspective queries and
// checks every response against a serial baseline. The cache is off, so
// each request exercises the full shared read path (catalog snapshot →
// evaluator → engine → chunk store) concurrently; run under -race this
// is the serving layer's thread-safety proof.
func TestConcurrentQueriesMatchSerial(t *testing.T) {
	w, err := workload.NewWorkforce(workload.ConfigTiny())
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog()
	if err := cat.Register("wf", w.Cube); err != nil {
		t.Fatal(err)
	}
	s := New(cat, Config{Workers: 4, QueueCap: 64, CacheBytes: 0})
	t.Cleanup(s.Close)
	h := s.Handler()
	queries := workforceQueries(t, w)

	// Serial baseline: one evaluation per query shape.
	want := make([][]byte, len(queries))
	for i, q := range queries {
		rec := postQuery(t, h, queryRequest{Cube: "wf", Query: q})
		if rec.Code != http.StatusOK {
			t.Fatalf("serial query %d = %d: %s", i, rec.Code, rec.Body)
		}
		want[i] = rec.Body.Bytes()
	}

	const goroutines = 32
	const iters = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				qi := (g + i) % len(queries)
				rec := postQuery(t, h, queryRequest{Cube: "wf", Query: queries[qi]})
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d query %d: status %d: %s", g, qi, rec.Code, rec.Body)
					return
				}
				if string(rec.Body.Bytes()) != string(want[qi]) {
					errs <- fmt.Errorf("goroutine %d query %d: concurrent result differs from serial", g, qi)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := s.Metrics().Snapshot()
	wantServed := int64(len(queries) + goroutines*iters)
	if m.QueriesServed != wantServed {
		t.Fatalf("queries_served = %d, want %d", m.QueriesServed, wantServed)
	}
	if m.CacheHits != 0 {
		t.Fatalf("cache hits with caching disabled: %d", m.CacheHits)
	}
	for _, sem := range []string{"static", "dynamic-forward", "dynamic-backward"} {
		if m.BySemantics[sem] == 0 {
			t.Fatalf("no %s queries counted: %v", sem, m.BySemantics)
		}
	}
}

// TestConcurrentQueriesSharedCache repeats the stress with the cache on:
// bodies must still match the baseline byte for byte (the cache stores
// serialized bodies verbatim), and most requests should hit.
func TestConcurrentQueriesSharedCache(t *testing.T) {
	w, err := workload.NewWorkforce(workload.ConfigTiny())
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog()
	if err := cat.Register("wf", w.Cube); err != nil {
		t.Fatal(err)
	}
	s := New(cat, Config{Workers: 4, QueueCap: 64, CacheBytes: 1 << 20})
	t.Cleanup(s.Close)
	h := s.Handler()
	queries := workforceQueries(t, w)

	want := make([][]byte, len(queries))
	for i, q := range queries {
		rec := postQuery(t, h, queryRequest{Cube: "wf", Query: q})
		if rec.Code != http.StatusOK {
			t.Fatalf("serial query %d = %d: %s", i, rec.Code, rec.Body)
		}
		want[i] = rec.Body.Bytes()
	}

	const goroutines = 32
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			qi := g % len(queries)
			rec := postQuery(t, h, queryRequest{Cube: "wf", Query: queries[qi]})
			if rec.Code != http.StatusOK {
				errs <- fmt.Errorf("goroutine %d: status %d: %s", g, rec.Code, rec.Body)
				return
			}
			if string(rec.Body.Bytes()) != string(want[qi]) {
				errs <- fmt.Errorf("goroutine %d: cached result differs from serial", g)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := s.Metrics().Snapshot()
	if m.CacheHits != goroutines {
		t.Fatalf("cache hits = %d, want %d (baseline warmed every shape)", m.CacheHits, goroutines)
	}
}
