package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"whatifolap/internal/chunk"
	"whatifolap/internal/cube"
	"whatifolap/internal/workload"
)

// Catalog is the serving layer's cube registry: named, versioned,
// reference-counted cubes. Published cube values are immutable — admin
// updates go through Update, which clones the current version, mutates
// the private clone, and publishes it under the next version number
// (copy-on-write). In-flight queries keep the snapshot they acquired,
// so they see a consistent cube for their whole execution while new
// queries pick up the new version.
type Catalog struct {
	mu      sync.RWMutex
	entries map[string]*catalogEntry
	// persister, when set, receives every published version for
	// asynchronous segment write-back. Set once at startup (before the
	// catalog serves) via SetPersister; never swapped while serving.
	persister *Persister
}

// catalogEntry tracks one named cube across versions.
type catalogEntry struct {
	name string
	// updateMu serializes Update calls per cube so two admins cannot
	// clone the same base version concurrently.
	updateMu sync.Mutex
	// cur is the published version; swapped under Catalog.mu.
	cur *cubeVersion
	// active counts in-flight snapshots across all versions.
	active atomic.Int64
}

// cubeVersion is one immutable published cube.
type cubeVersion struct {
	version int64
	cube    *cube.Cube
}

// Snapshot is a leased reference to one published cube version. Release
// it when the query completes; the cube value stays valid regardless
// (old versions are garbage-collected once unreferenced), but the lease
// keeps the catalog's in-flight accounting honest.
type Snapshot struct {
	Name     string
	Version  int64
	Cube     *cube.Cube
	entry    *catalogEntry
	released atomic.Bool
}

// Release returns the lease. Safe to call more than once.
func (s *Snapshot) Release() {
	if s.entry != nil && s.released.CompareAndSwap(false, true) {
		s.entry.active.Add(-1)
	}
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{entries: make(map[string]*catalogEntry)}
}

// SetPersister attaches the storage write-back hook. Call before the
// catalog starts serving; versions published afterwards — including
// initial Register calls — are persisted asynchronously.
func (c *Catalog) SetPersister(p *Persister) { c.persister = p }

// Persister returns the attached storage hook, or nil.
func (c *Catalog) Persister() *Persister { return c.persister }

// enqueuePersist hands a freshly published version to the persister.
func (c *Catalog) enqueuePersist(name string, version int64, cb *cube.Cube) {
	if c.persister != nil {
		c.persister.Enqueue(name, version, cb)
	}
}

// Register publishes a cube under a name at version 1. The caller must
// not mutate the cube afterwards; use Update for subsequent changes.
func (c *Catalog) Register(name string, cb *cube.Cube) error {
	if name == "" {
		return fmt.Errorf("server: empty cube name")
	}
	if cb == nil {
		return fmt.Errorf("server: nil cube for %q", name)
	}
	c.mu.Lock()
	if _, dup := c.entries[name]; dup {
		c.mu.Unlock()
		return fmt.Errorf("server: cube %q already registered", name)
	}
	c.entries[name] = &catalogEntry{
		name: name,
		cur:  &cubeVersion{version: 1, cube: cb},
	}
	c.mu.Unlock()
	c.enqueuePersist(name, 1, cb)
	return nil
}

// RegisterVersion publishes a cube under a name at an explicit version
// number — the restore path, where the data directory already holds
// the version and persisting it again would be a wasted rewrite.
func (c *Catalog) RegisterVersion(name string, version int64, cb *cube.Cube) error {
	if name == "" {
		return fmt.Errorf("server: empty cube name")
	}
	if cb == nil {
		return fmt.Errorf("server: nil cube for %q", name)
	}
	if version <= 0 {
		return fmt.Errorf("server: cube %q version must be positive, got %d", name, version)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[name]; dup {
		return fmt.Errorf("server: cube %q already registered", name)
	}
	c.entries[name] = &catalogEntry{
		name: name,
		cur:  &cubeVersion{version: version, cube: cb},
	}
	return nil
}

// LoadFile loads a cube dump (text or binary workload format) and
// registers it under the name. Text dumps get chunked storage with
// default edges so the perspective-cube engine applies.
func (c *Catalog) LoadFile(name, path string) error {
	cb, err := workload.LoadFile(path, []int{})
	if err != nil {
		return fmt.Errorf("server: loading %q: %w", path, err)
	}
	return c.Register(name, cb)
}

// Acquire leases the current version of the named cube.
func (c *Catalog) Acquire(name string) (*Snapshot, error) {
	c.mu.RLock()
	e, ok := c.entries[name]
	var cur *cubeVersion
	if ok {
		cur = e.cur
	}
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("server: unknown cube %q", name)
	}
	e.active.Add(1)
	return &Snapshot{Name: name, Version: cur.version, Cube: cur.cube, entry: e}, nil
}

// Update applies a copy-on-write mutation to the named cube: mutate
// receives a deep clone of the current version and returns the cube to
// publish (return its argument after in-place edits, or a derived cube
// such as an ApplyChanges result). On success the version is bumped and
// the new version number returned. In-flight snapshots are unaffected.
func (c *Catalog) Update(name string, mutate func(*cube.Cube) (*cube.Cube, error)) (int64, error) {
	c.mu.RLock()
	e, ok := c.entries[name]
	c.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("server: unknown cube %q", name)
	}
	e.updateMu.Lock()
	defer e.updateMu.Unlock()

	c.mu.RLock()
	base := e.cur
	c.mu.RUnlock()

	next, err := mutate(base.cube.Clone())
	if err != nil {
		return 0, err
	}
	if next == nil {
		return 0, fmt.Errorf("server: update of %q returned no cube", name)
	}
	nv := &cubeVersion{version: base.version + 1, cube: next}
	c.mu.Lock()
	e.cur = nv
	c.mu.Unlock()
	c.enqueuePersist(name, nv.version, next)
	return nv.version, nil
}

// ErrVersionConflict reports a Publish whose expected base version no
// longer matches the published one — the cube moved underneath the
// scenario since it was created.
var ErrVersionConflict = fmt.Errorf("server: cube version conflict")

// Publish installs a pre-built cube as the next version of the named
// entry — the scenario commit path, where the cube to publish is a
// materialized scenario rather than a mutation of the current version.
// When want is non-zero the publish is optimistic: it fails with
// ErrVersionConflict unless the current version still equals want, so
// a scenario pinned to a stale base cannot silently overwrite catalog
// updates that landed after it forked off.
func (c *Catalog) Publish(name string, want int64, next *cube.Cube) (int64, error) {
	if next == nil {
		return 0, fmt.Errorf("server: publish of %q with no cube", name)
	}
	c.mu.RLock()
	e, ok := c.entries[name]
	c.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("server: unknown cube %q", name)
	}
	e.updateMu.Lock()
	defer e.updateMu.Unlock()

	c.mu.RLock()
	base := e.cur
	c.mu.RUnlock()
	if want != 0 && base.version != want {
		return 0, fmt.Errorf("%w: %q is at version %d, scenario base is %d", ErrVersionConflict, name, base.version, want)
	}
	nv := &cubeVersion{version: base.version + 1, cube: next}
	c.mu.Lock()
	e.cur = nv
	c.mu.Unlock()
	c.enqueuePersist(name, nv.version, next)
	return nv.version, nil
}

// CubeInfo describes one catalog entry for /cubes.
type CubeInfo struct {
	Name       string   `json:"name"`
	Version    int64    `json:"version"`
	Dimensions []string `json:"dimensions"`
	Cells      int      `json:"cells"`
	InFlight   int64    `json:"in_flight"`
}

// List describes all entries, sorted by name.
func (c *Catalog) List() []CubeInfo {
	c.mu.RLock()
	entries := make([]*catalogEntry, 0, len(c.entries))
	for _, e := range c.entries {
		entries = append(entries, e)
	}
	c.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	out := make([]CubeInfo, 0, len(entries))
	for _, e := range entries {
		c.mu.RLock()
		cur := e.cur
		c.mu.RUnlock()
		dims := make([]string, cur.cube.NumDims())
		for i := range dims {
			dims[i] = cur.cube.Dim(i).Name()
		}
		out = append(out, CubeInfo{
			Name:       e.name,
			Version:    cur.version,
			Dimensions: dims,
			Cells:      cur.cube.NumCells(),
			InFlight:   e.active.Load(),
		})
	}
	return out
}

// PoolStats sums buffer-pool statistics over the current version of
// every cube with chunk-backed storage — the live resident set behind
// the /metrics pool gauges and the history collector's pressure
// tracking. Superseded versions still leased by in-flight queries are
// not counted; their pools drain as the leases release.
func (c *Catalog) PoolStats() chunk.SpillStats {
	c.mu.RLock()
	curs := make([]*cubeVersion, 0, len(c.entries))
	for _, e := range c.entries {
		curs = append(curs, e.cur)
	}
	c.mu.RUnlock()
	var total chunk.SpillStats
	for _, cv := range curs {
		st, ok := cv.cube.Store().(*chunk.Store)
		if !ok {
			continue
		}
		ps := st.SpillStats()
		total.Resident += ps.Resident
		total.Spilled += ps.Spilled
		total.Faults += ps.Faults
		total.Evictions += ps.Evictions
		total.Pinned += ps.Pinned
		total.ResidentBytes += ps.ResidentBytes
	}
	return total
}

// Names returns the registered cube names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.entries))
	for n := range c.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
