package server

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestExecutorRunsTasks(t *testing.T) {
	e := NewExecutor(2, 4)
	defer e.Close()
	var mu sync.Mutex
	n := 0
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// 10 concurrent submissions can legitimately outrun the
			// 2-worker/4-slot pool; overload is backpressure, not
			// failure — retry until admitted.
			for {
				err := e.Do(context.Background(), func(context.Context) error {
					mu.Lock()
					n++
					mu.Unlock()
					return nil
				})
				if !errors.Is(err, ErrOverloaded) {
					if err != nil {
						t.Error(err)
					}
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if n != 10 {
		t.Fatalf("ran %d tasks, want 10", n)
	}
}

// blockWorker occupies one worker with a task that holds until release
// is closed, returning once the worker has picked it up.
func blockWorker(t *testing.T, e *Executor, release <-chan struct{}) *sync.WaitGroup {
	t.Helper()
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = e.Do(context.Background(), func(context.Context) error {
			close(started)
			<-release
			return nil
		})
	}()
	<-started
	return &wg
}

func TestExecutorOverload(t *testing.T) {
	e := NewExecutor(1, 1)
	defer e.Close()
	release := make(chan struct{})
	wg := blockWorker(t, e, release)

	// Fill the single queue slot with a second task.
	queued := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		queued <- e.Do(context.Background(), func(context.Context) error { return nil })
	}()
	waitFor(t, func() bool { return e.QueueDepth() == 1 })

	// Worker busy, queue full: admission must fail fast.
	if err := e.Do(context.Background(), func(context.Context) error { return nil }); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Do on full queue = %v, want ErrOverloaded", err)
	}

	close(release)
	if err := <-queued; err != nil {
		t.Fatalf("queued task failed after release: %v", err)
	}
	wg.Wait()
}

func TestExecutorSkipsCanceledQueuedTask(t *testing.T) {
	e := NewExecutor(1, 1)
	defer e.Close()
	release := make(chan struct{})
	wg := blockWorker(t, e, release)

	ctx, cancel := context.WithCancel(context.Background())
	ran := false
	queued := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		queued <- e.Do(ctx, func(context.Context) error { ran = true; return nil })
	}()
	waitFor(t, func() bool { return e.QueueDepth() == 1 })

	cancel()
	close(release)
	if err := <-queued; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled queued task = %v, want context.Canceled", err)
	}
	wg.Wait()
	if ran {
		t.Fatal("worker ran a task whose context died in the queue")
	}
}

func TestExecutorRecoversPanic(t *testing.T) {
	e := NewExecutor(1, 1)
	defer e.Close()
	err := e.Do(context.Background(), func(context.Context) error { panic("boom") })
	if err == nil || !strings.Contains(err.Error(), "query panicked: boom") {
		t.Fatalf("panicking task = %v, want panic error", err)
	}
	// The worker survived the panic.
	if err := e.Do(context.Background(), func(context.Context) error { return nil }); err != nil {
		t.Fatalf("pool dead after panic: %v", err)
	}
}

func TestExecutorClose(t *testing.T) {
	e := NewExecutor(2, 2)
	e.Close()
	e.Close() // idempotent
	if err := e.Do(context.Background(), func(context.Context) error { return nil }); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Do after Close = %v, want ErrShuttingDown", err)
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
