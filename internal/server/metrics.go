package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"whatifolap/internal/chunk"
	"whatifolap/internal/core"
	"whatifolap/internal/trace"
)

// latencyBucketsMs are the upper bounds (milliseconds) of the latency
// histogram's exponential buckets; the final implicit bucket is +Inf.
var latencyBucketsMs = []float64{
	0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500,
	1000, 2000, 5000, 10000, 30000,
}

// spanBucketsMs bound the trace-derived duration histograms (merge-
// group scan spans, spill fault-ins): these are intra-query stages, so
// the range starts well below a millisecond.
var spanBucketsMs = []float64{
	0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100, 500,
}

// chunksReadBuckets bound the per-query chunk-read count histogram.
var chunksReadBuckets = []float64{
	1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
}

// histogram is a fixed-bucket histogram with atomic counters, in the
// style of expvar: cheap to update from many goroutines, read by
// snapshotting. Buckets are cumulative only at exposition time; counts
// here are per-bucket. The sum is kept in micro-units so it stays a
// single atomic integer.
type histogram struct {
	bounds   []float64
	counts   []atomic.Int64 // len(bounds)+1; the last bucket is +Inf
	sumMicro atomic.Int64
	count    atomic.Int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// observe records one value (milliseconds for duration histograms).
func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sumMicro.Add(int64(v * 1e6))
	h.count.Add(1)
}

// observeDuration records one duration in milliseconds.
func (h *histogram) observeDuration(d time.Duration) {
	h.observe(float64(d) / float64(time.Millisecond))
}

func (h *histogram) sum() float64 { return float64(h.sumMicro.Load()) / 1e6 }

// quantile estimates the q-th quantile over the histogram's lifetime
// counts. Exposition-time only; the per-read snapshot allocation is
// off the query path.
func (h *histogram) quantile(q float64) float64 {
	return quantileCounts(h.bounds, h.countsSnapshot(), q)
}

// countsSnapshot copies the per-bucket counts (len(bounds)+1, last is
// +Inf). The collector differences two such snapshots to compute
// interval quantiles.
func (h *histogram) countsSnapshot() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// quantileCounts estimates the q-th quantile (0 < q < 1) from
// per-bucket counts (len(bounds)+1, the last bucket +Inf) with linear
// interpolation inside the winning bucket (the Prometheus
// histogram_quantile convention): the estimate moves smoothly with the
// rank instead of jumping between bucket bounds. The first bucket
// interpolates from 0; a rank landing in the +Inf bucket clamps to the
// largest finite bound, since no upper edge exists to interpolate
// toward. Zero total — an empty recorder, or an interval delta with no
// observations — returns 0. It is the shared quantile kernel: lifetime
// quantiles pass a histogram's counts, the history collector passes
// the bucket deltas of one sampling interval.
func quantileCounts(bounds []float64, counts []int64, q float64) float64 {
	if len(bounds) == 0 {
		return 0
	}
	var total int64
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i := range counts {
		n := float64(counts[i])
		if cum+n >= rank {
			if i >= len(bounds) {
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			return lo + (bounds[i]-lo)*(rank-cum)/n
		}
		cum += n
	}
	return bounds[len(bounds)-1]
}

// LatencySnapshot summarizes the latency histogram.
type LatencySnapshot struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// Metrics is the serving layer's observability surface: expvar-style
// counters, latency and trace-derived histograms, and gauges sampled at
// snapshot time. All update paths are atomic; one Metrics is shared by
// the executor, cache and HTTP handlers. Exposed as JSON (Snapshot) and
// Prometheus text format (WriteProm).
type Metrics struct {
	start time.Time

	QueriesServed atomic.Int64 // queries answered successfully (incl. cache hits)
	QueryErrors   atomic.Int64 // parse/eval failures
	Overloaded    atomic.Int64 // admissions rejected by the full queue
	Canceled      atomic.Int64 // queries abandoned by client cancellation
	TimedOut      atomic.Int64 // queries abandoned by deadline
	CacheHits     atomic.Int64
	CacheMisses   atomic.Int64
	SlowQueries   atomic.Int64 // queries recorded in the slow-query log

	// CellsScanned / CellsReturned feed the scan-amplification ratio:
	// source cells visited by chunk scans vs. result-grid cells
	// returned to clients (cache hits return without scanning).
	CellsScanned  atomic.Int64
	CellsReturned atomic.Int64

	latency *histogram

	// Trace-derived histograms, fed by ObserveTrace from each query's
	// span tree: chunk reads per query, per-merge-group scan span
	// durations, spill fault-in durations, and the subset of faults
	// served by the durable segment tier (real storage reads).
	chunksRead    *histogram
	groupSpanMs   *histogram
	spillFaultMs  *histogram
	segmentReadMs *histogram

	// Per-stage pipeline time accumulators (microseconds) plus the
	// sample count, fed by ObserveStages after engine-backed queries.
	stagePlanUs    atomic.Int64
	stageScanUs    atomic.Int64
	stageMergeUs   atomic.Int64
	stageProjectUs atomic.Int64
	stageCount     atomic.Int64

	mu    sync.Mutex
	bySem map[string]int64
	// byScenario attributes scenario-path queries: count and cumulative
	// latency per scenario id. A counter pair, not a labeled histogram —
	// scenario ids are unbounded, so per-id buckets would blow up the
	// exposition cardinality.
	byScenario map[string]*scenarioStat

	// queueDepth, cacheBytes, writebackPending and poolStats are
	// sampled at snapshot time. writebackPending is nil unless a
	// persister is attached (whatifd -data-dir); poolStats sums the
	// buffer pools of the catalog's current cube versions.
	queueDepth       func() int
	cacheBytes       func() int
	writebackPending func() int64
	poolStats        func() chunk.SpillStats
}

// scenarioStat accumulates one scenario's query attribution.
type scenarioStat struct {
	count     int64
	latencyUs int64
}

// ScenarioSnapshot reports one scenario's served queries and mean
// latency at snapshot time.
type ScenarioSnapshot struct {
	Queries       int64   `json:"queries"`
	LatencySumMs  float64 `json:"latency_sum_ms"`
	LatencyMeanMs float64 `json:"latency_mean_ms"`
}

// NewMetrics creates an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{
		start:         time.Now(),
		bySem:         make(map[string]int64),
		byScenario:    make(map[string]*scenarioStat),
		latency:       newHistogram(latencyBucketsMs),
		chunksRead:    newHistogram(chunksReadBuckets),
		groupSpanMs:   newHistogram(spanBucketsMs),
		spillFaultMs:  newHistogram(spanBucketsMs),
		segmentReadMs: newHistogram(spanBucketsMs),
	}
}

// ObserveLatency records one successful query execution time.
func (m *Metrics) ObserveLatency(d time.Duration) { m.latency.observeDuration(d) }

// ObserveCells records one query's scan amplification inputs: source
// cells the engine visited and result cells returned to the client.
func (m *Metrics) ObserveCells(scanned, returned int64) {
	m.CellsScanned.Add(scanned)
	m.CellsReturned.Add(returned)
}

// ObserveStages records one query's staged-pipeline timings
// (plan / scan / merge / project) from the engine stats.
func (m *Metrics) ObserveStages(s core.Stats) {
	m.stagePlanUs.Add(int64(s.PlanMs * 1000))
	m.stageScanUs.Add(int64(s.ScanMs * 1000))
	m.stageMergeUs.Add(int64(s.MergeMs * 1000))
	m.stageProjectUs.Add(int64(s.ProjectMs * 1000))
	m.stageCount.Add(1)
}

// ObserveTrace folds one finished query's span tree into the
// trace-derived histograms: "scan" spans contribute the query's chunk
// reads, each "group" span its merge-group scan duration, each "fault"
// span its fault-in duration — faults flagged durable (served by the
// segment tier, not the scratch spill file) also feed the
// segment-read histogram. Call after the traced execution has returned
// (snapshotting must not race recording).
func (m *Metrics) ObserveTrace(spans []trace.Span) {
	var chunks int64
	sawScan := false
	for _, s := range spans {
		switch s.Name {
		case "scan":
			sawScan = true
			if v, ok := s.Attr("chunks_read"); ok {
				chunks += v
			}
		case "group":
			m.groupSpanMs.observe(s.Ms())
		case "fault":
			m.spillFaultMs.observe(s.Ms())
			if v, ok := s.Attr("durable"); ok && v > 0 {
				m.segmentReadMs.observe(s.Ms())
			}
		}
	}
	if sawScan {
		m.chunksRead.observe(float64(chunks))
	}
}

// CountSemantics bumps the per-semantics query breakdown.
func (m *Metrics) CountSemantics(sem string) {
	m.mu.Lock()
	m.bySem[sem]++
	m.mu.Unlock()
}

// ObserveScenario attributes one served scenario-path query to its
// scenario id.
func (m *Metrics) ObserveScenario(id string, d time.Duration) {
	m.mu.Lock()
	st := m.byScenario[id]
	if st == nil {
		st = &scenarioStat{}
		m.byScenario[id] = st
	}
	st.count++
	st.latencyUs += int64(d / time.Microsecond)
	m.mu.Unlock()
}

// StageSnapshot reports the mean per-stage pipeline time, in
// milliseconds, over the queries observed so far.
type StageSnapshot struct {
	Count     int64   `json:"count"`
	PlanMs    float64 `json:"plan_ms"`
	ScanMs    float64 `json:"scan_ms"`
	MergeMs   float64 `json:"merge_ms"`
	ProjectMs float64 `json:"project_ms"`
}

// MetricsSnapshot is the JSON shape served at /metrics.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	QueriesServed int64   `json:"queries_served"`
	QueryErrors   int64   `json:"query_errors"`
	Overloaded    int64   `json:"overloaded"`
	Canceled      int64   `json:"canceled"`
	TimedOut      int64   `json:"timed_out"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	CacheBytes    int     `json:"cache_bytes"`
	QueueDepth    int     `json:"queue_depth"`
	SlowQueries   int64   `json:"slow_queries"`
	// CellsScanned/CellsReturned are lifetime totals;
	// ScanAmplification their ratio (0 until something was returned).
	CellsScanned      int64   `json:"cells_scanned"`
	CellsReturned     int64   `json:"cells_returned"`
	ScanAmplification float64 `json:"scan_amplification"`
	// WritebackPending counts segment write-backs queued or in flight;
	// always 0 without a data directory.
	WritebackPending int64 `json:"writeback_pending"`
	// Pool aggregates buffer-pool state over the catalog's current
	// cube versions.
	Pool PoolSnapshot `json:"pool"`
	// SegmentRead summarizes durable segment fault-in latency.
	SegmentRead LatencySnapshot  `json:"segment_read_ms"`
	Latency     LatencySnapshot  `json:"latency"`
	Stages      StageSnapshot    `json:"stage_ms"`
	BySemantics map[string]int64 `json:"by_semantics"`
	// ByScenario attributes scenario-path queries per scenario id;
	// absent when no scenario query has been served.
	ByScenario map[string]ScenarioSnapshot `json:"by_scenario,omitempty"`
}

// PoolSnapshot is the buffer-pool aggregate in MetricsSnapshot:
// chunk.SpillStats summed across cubes, with JSON names.
type PoolSnapshot struct {
	ResidentChunks int `json:"resident_chunks"`
	SpilledChunks  int `json:"spilled_chunks"`
	Faults         int `json:"faults"`
	Evictions      int `json:"evictions"`
	Pinned         int `json:"pinned"`
	ResidentBytes  int `json:"resident_bytes"`
}

// Snapshot captures the current metric values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		QueriesServed: m.QueriesServed.Load(),
		QueryErrors:   m.QueryErrors.Load(),
		Overloaded:    m.Overloaded.Load(),
		Canceled:      m.Canceled.Load(),
		TimedOut:      m.TimedOut.Load(),
		CacheHits:     m.CacheHits.Load(),
		CacheMisses:   m.CacheMisses.Load(),
		SlowQueries:   m.SlowQueries.Load(),
		CellsScanned:  m.CellsScanned.Load(),
		CellsReturned: m.CellsReturned.Load(),
		BySemantics:   make(map[string]int64),
	}
	if lookups := s.CacheHits + s.CacheMisses; lookups > 0 {
		s.CacheHitRatio = float64(s.CacheHits) / float64(lookups)
	}
	if s.CellsReturned > 0 {
		s.ScanAmplification = float64(s.CellsScanned) / float64(s.CellsReturned)
	}
	if n := m.latency.count.Load(); n > 0 {
		s.Latency = LatencySnapshot{
			Count:  n,
			MeanMs: m.latency.sum() / float64(n),
			P50Ms:  m.latency.quantile(0.50),
			P95Ms:  m.latency.quantile(0.95),
			P99Ms:  m.latency.quantile(0.99),
		}
	}
	if n := m.segmentReadMs.count.Load(); n > 0 {
		s.SegmentRead = LatencySnapshot{
			Count:  n,
			MeanMs: m.segmentReadMs.sum() / float64(n),
			P50Ms:  m.segmentReadMs.quantile(0.50),
			P95Ms:  m.segmentReadMs.quantile(0.95),
			P99Ms:  m.segmentReadMs.quantile(0.99),
		}
	}
	if n := m.stageCount.Load(); n > 0 {
		s.Stages = StageSnapshot{
			Count:     n,
			PlanMs:    float64(m.stagePlanUs.Load()) / 1000 / float64(n),
			ScanMs:    float64(m.stageScanUs.Load()) / 1000 / float64(n),
			MergeMs:   float64(m.stageMergeUs.Load()) / 1000 / float64(n),
			ProjectMs: float64(m.stageProjectUs.Load()) / 1000 / float64(n),
		}
	}
	m.mu.Lock()
	for k, v := range m.bySem {
		s.BySemantics[k] = v
	}
	if len(m.byScenario) > 0 {
		s.ByScenario = make(map[string]ScenarioSnapshot, len(m.byScenario))
		for id, st := range m.byScenario {
			snap := ScenarioSnapshot{
				Queries:      st.count,
				LatencySumMs: float64(st.latencyUs) / 1000,
			}
			if st.count > 0 {
				snap.LatencyMeanMs = snap.LatencySumMs / float64(st.count)
			}
			s.ByScenario[id] = snap
		}
	}
	m.mu.Unlock()
	if m.queueDepth != nil {
		s.QueueDepth = m.queueDepth()
	}
	if m.cacheBytes != nil {
		s.CacheBytes = m.cacheBytes()
	}
	if m.writebackPending != nil {
		s.WritebackPending = m.writebackPending()
	}
	if m.poolStats != nil {
		ps := m.poolStats()
		s.Pool = PoolSnapshot{
			ResidentChunks: ps.Resident,
			SpilledChunks:  ps.Spilled,
			Faults:         ps.Faults,
			Evictions:      ps.Evictions,
			Pinned:         ps.Pinned,
			ResidentBytes:  ps.ResidentBytes,
		}
	}
	return s
}
