package server

import (
	"sync"
	"time"
)

// SlowQueryRecord is one slow-query log entry: the normalized query,
// how long it took, and the rendered span tree captured while it ran.
type SlowQueryRecord struct {
	Time time.Time `json:"time"`
	Cube string    `json:"cube"`
	// Scenario is the scenario id for scenario-path queries, empty for
	// plain cube queries; ScenarioRev is the workspace revision the
	// query ran against, so an operator can line a slow query up with
	// the edit batch that made it slow.
	Scenario    string  `json:"scenario,omitempty"`
	ScenarioRev int64   `json:"scenario_revision,omitempty"`
	Query       string  `json:"query"`
	LatencyMs   float64 `json:"latency_ms"`
	Trace       string  `json:"trace,omitempty"`
	// TraceID addresses the retained span tree at /debug/trace/{id}
	// while it survives tail-sampling eviction.
	TraceID string `json:"trace_id,omitempty"`
}

// slowlog is a fixed-capacity ring buffer of the most recent slow
// queries. Writes overwrite the oldest entry once full; reads return a
// newest-first copy. A mutex (not atomics) is fine here: the log is
// only touched for queries that already took SlowQueryMs, so contention
// is negligible by construction.
type slowlog struct {
	mu    sync.Mutex
	buf   []SlowQueryRecord
	next  int   // ring write position
	total int64 // records ever written (>= len when wrapped)
}

func newSlowlog(capacity int) *slowlog {
	if capacity <= 0 {
		capacity = defaultSlowlogCap
	}
	return &slowlog{buf: make([]SlowQueryRecord, 0, capacity)}
}

func (l *slowlog) record(r SlowQueryRecord) {
	l.mu.Lock()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, r)
	} else {
		l.buf[l.next] = r
	}
	l.next = (l.next + 1) % cap(l.buf)
	l.total++
	l.mu.Unlock()
}

// snapshot returns the retained records, newest first, plus the count
// of records ever logged (so readers can tell how many were evicted).
func (l *slowlog) snapshot() ([]SlowQueryRecord, int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQueryRecord, 0, len(l.buf))
	// Entries [next-1, next-2, ...] wrapping backwards are newest first.
	for i := 0; i < len(l.buf); i++ {
		out = append(out, l.buf[(l.next-1-i+len(l.buf))%len(l.buf)])
	}
	return out, l.total
}
