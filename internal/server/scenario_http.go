package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"whatifolap/internal/core"
	"whatifolap/internal/mdx"
	"whatifolap/internal/result"
	"whatifolap/internal/scenario"
	"whatifolap/internal/trace"
)

// Scenarios returns the server's scenario manager (tests and embedders).
func (s *Server) Scenarios() *scenario.Manager { return s.scenarios }

// scenarioCreateRequest is the POST /scenarios body.
type scenarioCreateRequest struct {
	// Name labels the workspace (default: its id).
	Name string `json:"name"`
	// Cube names the catalog cube to pin; may be omitted when the
	// catalog holds exactly one cube.
	Cube string `json:"cube"`
}

func (s *Server) handleScenarioCreate(w http.ResponseWriter, r *http.Request) {
	var req scenarioCreateRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad request body: " + err.Error()})
		return
	}
	if req.Cube == "" {
		if names := s.catalog.Names(); len(names) == 1 {
			req.Cube = names[0]
		} else {
			writeJSON(w, http.StatusBadRequest, errorResponse{
				fmt.Sprintf("no cube named and catalog holds %d cubes", len(s.catalog.Names()))})
			return
		}
	}
	// The snapshot pins the current published version; the scenario
	// keeps the (immutable) cube value beyond the lease.
	snap, err := s.catalog.Acquire(req.Cube)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{err.Error()})
		return
	}
	sc, err := s.scenarios.Create(req.Name, snap.Name, snap.Version, snap.Cube)
	snap.Release()
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{err.Error()})
		return
	}
	s.events.Log("scenario_create", map[string]string{
		"scenario":     sc.ID(),
		"cube":         sc.CubeName(),
		"base_version": fmt.Sprint(sc.BaseVersion()),
	})
	writeJSON(w, http.StatusCreated, sc.Info())
}

func (s *Server) handleScenarioList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Scenarios []scenario.Info `json:"scenarios"`
	}{s.scenarios.List()})
}

// scenarioEditRequest is the POST /scenarios/{id}/edit body: one
// atomic batch of edits.
type scenarioEditRequest struct {
	Edits []scenario.Edit `json:"edits"`
}

func (s *Server) handleScenarioEdit(w http.ResponseWriter, r *http.Request) {
	sc, ok := s.scenarios.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown scenario " + r.PathValue("id")})
		return
	}
	var req scenarioEditRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad request body: " + err.Error()})
		return
	}
	if _, err := sc.Apply(req.Edits); err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{err.Error()})
		return
	}
	// The revision in the cache key already isolates the new state;
	// dropping the superseded entries reclaims their bytes eagerly.
	s.cache.InvalidateScenario(sc.ID())
	writeJSON(w, http.StatusOK, sc.Info())
}

// scenarioForkRequest is the POST /scenarios/{id}/fork body.
type scenarioForkRequest struct {
	Name string `json:"name"`
}

func (s *Server) handleScenarioFork(w http.ResponseWriter, r *http.Request) {
	var req scenarioForkRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	// An empty body means default naming.
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad request body: " + err.Error()})
		return
	}
	child, err := s.scenarios.Fork(r.PathValue("id"), req.Name)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, child.Info())
}

// scenarioQueryResponse is the POST /scenarios/{id}/query success
// body: the plain query shape plus the scenario coordinates the answer
// was computed at.
type scenarioQueryResponse struct {
	Cube             string       `json:"cube"`
	Version          int64        `json:"version"`
	Scenario         string       `json:"scenario"`
	ScenarioRevision int64        `json:"scenario_revision"`
	Columns          []string     `json:"columns"`
	Rows             []string     `json:"rows"`
	PropNames        []string     `json:"prop_names,omitempty"`
	RowProps         [][]string   `json:"row_props,omitempty"`
	Values           [][]*float64 `json:"values"`
	Stats            queryStats   `json:"stats"`
}

func (s *Server) handleScenarioQuery(w http.ResponseWriter, r *http.Request) {
	sc, ok := s.scenarios.Get(r.PathValue("id"))
	if !ok {
		s.metrics.QueryErrors.Add(1)
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown scenario " + r.PathValue("id")})
		return
	}
	var req queryRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.metrics.QueryErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad request body: " + err.Error()})
		return
	}
	norm, err := mdx.Normalize(req.Query)
	if err != nil {
		s.metrics.QueryErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}

	// The view is an immutable snapshot: later edits build new layers
	// and bump the revision, so both the evaluation and the cache entry
	// below stay consistent even while the scenario is edited.
	view, rev, err := sc.View()
	if err != nil {
		s.metrics.QueryErrors.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{err.Error()})
		return
	}
	info := sc.Info()

	started := time.Now()
	key := cacheKey{
		Cube: sc.CubeName(), Version: sc.BaseVersion(), Query: norm,
		Scenario: sc.ID(), ScenarioRev: rev,
	}
	if body, ok := s.cache.Get(key); ok {
		s.metrics.CacheHits.Add(1)
		s.metrics.QueriesServed.Add(1)
		elapsed := time.Since(started)
		s.metrics.ObserveLatency(elapsed)
		s.metrics.ObserveScenario(sc.ID(), elapsed)
		writeCached(w, sc.BaseVersion(), body, true)
		return
	}
	s.metrics.CacheMisses.Add(1)

	q, err := mdx.Parse(req.Query)
	if err != nil {
		s.metrics.QueryErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	if q.Explain {
		s.metrics.QueryErrors.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{"EXPLAIN is not supported on the scenario path"})
		return
	}
	s.metrics.CountSemantics(classify(q))

	ctx := r.Context()
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	tr := s.tracePool.Get().(*trace.Trace)
	defer func() {
		tr.Reset()
		s.tracePool.Put(tr)
	}()

	var grid *result.Grid
	var stats core.Stats
	err = s.exec.Do(ctx, func(ctx context.Context) error {
		var runErr error
		root := tr.Start(trace.SpanRef{}, "eval")
		root.Int("scenario_layers", int64(info.Layers))
		root.Int("cells_overridden", int64(info.CellsOverridden))
		defer root.End()
		ctx = trace.WithSpan(trace.NewContext(ctx, tr), root)
		rc := mdx.RunContext{Ctx: ctx, Workers: s.cfg.ScanWorkers}
		grid, stats, runErr = mdx.EvaluateScenario(rc, view, q)
		return runErr
	})
	if err != nil {
		if id := s.retainTrace(tr, sc.CubeName(), sc.ID(), rev, norm, time.Since(started), err); id != "" {
			w.Header().Set("X-Trace-Id", id)
		}
		s.writeQueryError(w, err)
		return
	}
	s.metrics.ObserveStages(stats)
	s.metrics.ObserveTrace(tr.Spans())
	s.metrics.ObserveCells(int64(stats.CellsScanned), gridCells(grid))
	traceID := s.retainTrace(tr, sc.CubeName(), sc.ID(), rev, norm, time.Since(started), nil)
	s.observeSlow(sc.CubeName(), sc.ID(), rev, norm, time.Since(started), tr, traceID)

	body, err := json.Marshal(scenarioQueryResponse{
		Cube:             sc.CubeName(),
		Version:          sc.BaseVersion(),
		Scenario:         sc.ID(),
		ScenarioRevision: rev,
		Columns:          grid.ColLabels,
		Rows:             grid.RowLabels,
		PropNames:        grid.PropNames,
		RowProps:         grid.RowProps,
		Values:           gridValues(grid),
		Stats: queryStats{
			MembersInScope: stats.MembersInScope,
			ChunksRead:     stats.ChunksRead,
			CellsRelocated: stats.CellsRelocated,
			MergeEdges:     stats.MergeEdges,
			MergeGroups:    stats.MergeGroups,
			ScanWorkers:    stats.ScanWorkers,
		},
	})
	if err != nil {
		s.metrics.QueryErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
		return
	}
	s.cache.Put(key, body)
	s.metrics.QueriesServed.Add(1)
	elapsed := time.Since(started)
	s.metrics.ObserveLatency(elapsed)
	s.metrics.ObserveScenario(sc.ID(), elapsed)
	if traceID != "" {
		w.Header().Set("X-Trace-Id", traceID)
	}
	writeCached(w, sc.BaseVersion(), body, false)
}

// gridValues converts a grid's NaN cells to JSON nulls.
func gridValues(g *result.Grid) [][]*float64 {
	values := make([][]*float64, len(g.Values))
	for i, row := range g.Values {
		values[i] = make([]*float64, len(row))
		for j, v := range row {
			if !math.IsNaN(v) {
				v := v
				values[i][j] = &v
			}
		}
	}
	return values
}

// scenarioDiffResponse is the GET /scenarios/{id}/diff body.
type scenarioDiffResponse struct {
	A     string              `json:"a"`
	B     string              `json:"b"`
	Count int                 `json:"count"`
	Cells []scenario.CellDiff `json:"cells"`
}

func (s *Server) handleScenarioDiff(w http.ResponseWriter, r *http.Request) {
	a, ok := s.scenarios.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown scenario " + r.PathValue("id")})
		return
	}
	against := r.URL.Query().Get("against")
	if against == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{"missing ?against={scenario id}"})
		return
	}
	b, ok := s.scenarios.Get(against)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown scenario " + against})
		return
	}
	cells, err := scenario.Diff(a, b)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{err.Error()})
		return
	}
	if cells == nil {
		cells = []scenario.CellDiff{}
	}
	writeJSON(w, http.StatusOK, scenarioDiffResponse{
		A: a.ID(), B: b.ID(), Count: len(cells), Cells: cells,
	})
}

// scenarioCommitResponse is the POST /scenarios/{id}/commit body.
type scenarioCommitResponse struct {
	Scenario string `json:"scenario"`
	Cube     string `json:"cube"`
	Version  int64  `json:"version"`
}

func (s *Server) handleScenarioCommit(w http.ResponseWriter, r *http.Request) {
	sc, ok := s.scenarios.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown scenario " + r.PathValue("id")})
		return
	}
	next, err := sc.Materialize()
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{err.Error()})
		return
	}
	// Optimistic publish: refuse when the cube moved past the pinned
	// base version, so a stale scenario cannot clobber newer updates.
	v, err := s.catalog.Publish(sc.CubeName(), sc.BaseVersion(), next)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, ErrVersionConflict) {
			status = http.StatusConflict
			s.events.Log("scenario_conflict", map[string]string{
				"scenario":     sc.ID(),
				"cube":         sc.CubeName(),
				"base_version": fmt.Sprint(sc.BaseVersion()),
			})
		}
		writeJSON(w, status, errorResponse{err.Error()})
		return
	}
	sc.MarkCommitted(v)
	s.cache.InvalidateCube(sc.CubeName())
	s.cache.InvalidateScenario(sc.ID())
	s.events.Log("scenario_commit", map[string]string{
		"scenario": sc.ID(),
		"cube":     sc.CubeName(),
		"version":  fmt.Sprint(v),
	})
	writeJSON(w, http.StatusOK, scenarioCommitResponse{
		Scenario: sc.ID(), Cube: sc.CubeName(), Version: v,
	})
}

func (s *Server) handleScenarioDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.scenarios.Delete(id) {
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown scenario " + id})
		return
	}
	s.cache.InvalidateScenario(id)
	s.events.Log("scenario_delete", map[string]string{"scenario": id})
	writeJSON(w, http.StatusOK, struct {
		Deleted string `json:"deleted"`
	}{id})
}
