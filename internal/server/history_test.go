package server

// Tests for the continuous-observability surface: interval quantiles,
// /metrics/history sampling, tail-sampled trace retention end to end,
// slowlog linkage, and lifecycle events.

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"whatifolap/internal/chunk"
)

func TestHistogramQuantileEdgeCases(t *testing.T) {
	// Empty recorder: every quantile is 0.
	h := newHistogram([]float64{10, 20})
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got := h.quantile(q); got != 0 {
			t.Fatalf("empty quantile(%v) = %v, want 0", q, got)
		}
	}

	// No bounds at all: quantileCounts must not panic.
	if got := quantileCounts(nil, nil, 0.5); got != 0 {
		t.Fatalf("quantile of boundless histogram = %v, want 0", got)
	}

	// Single finite bucket: everything interpolates within (0, 10].
	h1 := newHistogram([]float64{10})
	h1.observe(3)
	h1.observe(7)
	for _, q := range []float64{0.5, 0.99} {
		if got := h1.quantile(q); got <= 0 || got > 10 {
			t.Fatalf("single-bucket quantile(%v) = %v, want within (0,10]", q, got)
		}
	}

	// All samples beyond the last finite bound land in +Inf: the
	// estimate clamps to the last finite bound instead of inventing an
	// upper edge.
	h2 := newHistogram([]float64{10, 20})
	for i := 0; i < 5; i++ {
		h2.observe(1e6)
	}
	for _, q := range []float64{0.5, 0.99} {
		if got := h2.quantile(q); got != 20 {
			t.Fatalf("+Inf-bucket quantile(%v) = %v, want clamp to 20", q, got)
		}
	}

	// Interval deltas: a second snapshot minus the first isolates the
	// new observations, and the shared kernel prices only those.
	h3 := newHistogram([]float64{10, 20})
	h3.observe(5)
	before := h3.countsSnapshot()
	h3.observe(15)
	h3.observe(15)
	after := h3.countsSnapshot()
	delta := make([]int64, len(after))
	for i := range after {
		delta[i] = after[i] - before[i]
	}
	if got := quantileCounts(h3.bounds, delta, 0.5); got <= 10 || got > 20 {
		t.Fatalf("interval quantile = %v, want within (10,20] (delta %v)", got, delta)
	}
}

func TestMetricsHistoryEndpoint(t *testing.T) {
	// Collector disabled: the test drives sampling deterministically.
	s := newPaperServer(t, Config{CacheBytes: 1 << 20, ObsInterval: -1})
	h := s.Handler()

	// One miss, one hit of the same query.
	for i := 0; i < 2; i++ {
		if rec := postQuery(t, h, queryRequest{Query: paperQuery}); rec.Code != http.StatusOK {
			t.Fatalf("query = %d: %s", rec.Code, rec.Body)
		}
	}
	s.sampler.sample()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics/history", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics/history = %d: %s", rec.Code, rec.Body)
	}
	var hist HistoryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hist); err != nil {
		t.Fatal(err)
	}
	if hist.Total != 1 || len(hist.Samples) != 1 {
		t.Fatalf("history = total %d, %d samples; want 1", hist.Total, len(hist.Samples))
	}
	sm := hist.Samples[0]
	if sm.Queries != 2 || sm.CacheHits != 1 || sm.CacheMisses != 1 {
		t.Fatalf("sample flow = %+v, want 2 queries, 1 hit, 1 miss", sm)
	}
	if math.Abs(sm.CacheHitRatio-0.5) > 1e-9 {
		t.Fatalf("cache hit ratio = %v, want 0.5", sm.CacheHitRatio)
	}
	if sm.CellsScanned <= 0 || sm.CellsReturned <= 0 {
		t.Fatalf("cells scanned/returned = %d/%d, want positive", sm.CellsScanned, sm.CellsReturned)
	}
	if want := float64(sm.CellsScanned) / float64(sm.CellsReturned); math.Abs(sm.ScanAmplification-want) > 1e-9 {
		t.Fatalf("scan amplification = %v, want %v", sm.ScanAmplification, want)
	}
	if sm.P50Ms <= 0 || sm.P99Ms < sm.P50Ms {
		t.Fatalf("interval quantiles p50=%v p99=%v", sm.P50Ms, sm.P99Ms)
	}
	if sm.QPS <= 0 || sm.IntervalMs <= 0 {
		t.Fatalf("qps=%v interval=%vms, want positive", sm.QPS, sm.IntervalMs)
	}
	if sm.PoolResidentChunks <= 0 {
		t.Fatalf("pool resident chunks = %d, want positive (chunked cube)", sm.PoolResidentChunks)
	}

	// A quiet second interval: deltas zero, ratios use the -1 sentinel
	// so "no traffic" is distinguishable from "all misses".
	s.sampler.sample()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics/history", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist.Samples) != 2 {
		t.Fatalf("history has %d samples, want 2", len(hist.Samples))
	}
	quiet := hist.Samples[1]
	if quiet.Queries != 0 || quiet.CacheHitRatio != -1 || quiet.ScanAmplification != -1 {
		t.Fatalf("quiet sample = %+v, want zero flow and -1 ratios", quiet)
	}
}

func TestRetainedTraceEndToEnd(t *testing.T) {
	// Threshold so low every query is slow, hence always retained.
	s := newPaperServer(t, Config{SlowQueryMs: 0.000001})
	h := s.Handler()

	rec := postQuery(t, h, queryRequest{Query: paperQuery})
	if rec.Code != http.StatusOK {
		t.Fatalf("query = %d: %s", rec.Code, rec.Body)
	}
	id := rec.Header().Get("X-Trace-Id")
	if id == "" {
		t.Fatal("slow query response lacks X-Trace-Id")
	}
	var qresp queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &qresp); err != nil {
		t.Fatal(err)
	}

	// The ID resolves to the full span tree.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/trace/"+id, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/trace/%s = %d: %s", id, rec.Code, rec.Body)
	}
	var tresp TraceResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tresp); err != nil {
		t.Fatal(err)
	}
	if tresp.ID != id || tresp.Reason != "slow" || tresp.Cube != "paper" {
		t.Fatalf("trace = %+v, want id %s, reason slow", tresp, id)
	}
	if tresp.LatencyMs <= 0 || len(tresp.Spans) == 0 {
		t.Fatalf("trace lacks substance: latency %v, %d spans", tresp.LatencyMs, len(tresp.Spans))
	}
	// The retained spans reconcile with the query's own stats: the scan
	// span recorded the same chunk reads the response reported.
	var sawScan bool
	for _, sp := range tresp.Spans {
		if sp.Name != "scan" {
			continue
		}
		sawScan = true
		if got := sp.Attrs["chunks_read"]; got != int64(qresp.Stats.ChunksRead) {
			t.Fatalf("scan span chunks_read = %d, response stats = %d", got, qresp.Stats.ChunksRead)
		}
		if sp.Attrs["cells_scanned"] <= 0 {
			t.Fatalf("scan span cells_scanned = %d, want positive", sp.Attrs["cells_scanned"])
		}
	}
	if !sawScan {
		t.Fatalf("no scan span among %d retained spans", len(tresp.Spans))
	}
	for _, name := range []string{"eval", "scan"} {
		if !strings.Contains(tresp.Rendered, name) {
			t.Fatalf("rendered tree missing %q:\n%s", name, tresp.Rendered)
		}
	}

	// The listing shows it; an unknown ID 404s.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/trace", nil))
	var list traceListResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Stats.Count != 1 || len(list.Traces) != 1 || list.Traces[0].ID != id {
		t.Fatalf("trace list = %+v, want exactly %s", list, id)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/trace/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("/debug/trace/nope = %d, want 404", rec.Code)
	}

	// Retention disabled: no header, nothing resolvable.
	s2 := newPaperServer(t, Config{SlowQueryMs: 0.000001, RetainTraceBytes: -1})
	h2 := s2.Handler()
	rec = postQuery(t, h2, queryRequest{Query: paperQuery})
	if rec.Code != http.StatusOK {
		t.Fatalf("query = %d", rec.Code)
	}
	if got := rec.Header().Get("X-Trace-Id"); got != "" {
		t.Fatalf("retention disabled but X-Trace-Id = %q", got)
	}
}

func TestSlowlogTraceIDAndRevision(t *testing.T) {
	s, _ := newWorkforceServer(t, Config{SlowQueryMs: 0.000001})
	h := s.Handler()

	var sc scenarioInfoJSON
	decode(t, do(t, h, "POST", "/scenarios", map[string]string{"name": "slow"}), http.StatusCreated, &sc)
	decode(t, do(t, h, "POST", "/scenarios/"+sc.ID+"/edit", map[string]interface{}{
		"edits": []map[string]interface{}{
			{"op": "new_member", "dim": "Account", "parent": "AllAccounts", "name": "Bonus"},
			{"op": "set", "cell": map[string]string{"Department": "Emp00010", "Period": "Jan", "Account": "Bonus"}, "value": 500},
		},
	}), http.StatusOK, nil)

	rec := do(t, h, "POST", "/scenarios/"+sc.ID+"/query", queryRequest{Query: rollupQuery})
	if rec.Code != http.StatusOK {
		t.Fatalf("scenario query = %d: %s", rec.Code, rec.Body)
	}
	headerID := rec.Header().Get("X-Trace-Id")
	if headerID == "" {
		t.Fatal("slow scenario query lacks X-Trace-Id")
	}

	records, total := s.slowlog.snapshot()
	if total != 1 || len(records) != 1 {
		t.Fatalf("slowlog = %d records, want 1", total)
	}
	r := records[0]
	if r.Scenario != sc.ID || r.ScenarioRev != 1 {
		t.Fatalf("slowlog record = %+v, want scenario %s at revision 1", r, sc.ID)
	}
	if r.TraceID != headerID {
		t.Fatalf("slowlog trace id %q != response header %q", r.TraceID, headerID)
	}

	// The linked trace carries the same scenario coordinates.
	var tresp TraceResponse
	decode(t, do(t, h, "GET", "/debug/trace/"+r.TraceID, nil), http.StatusOK, &tresp)
	if tresp.Scenario != sc.ID || tresp.ScenarioRev != 1 {
		t.Fatalf("retained trace = %+v, want scenario %s rev 1", tresp, sc.ID)
	}
}

func TestEventLogLifecycleEvents(t *testing.T) {
	s, _ := newWorkforceServer(t, Config{})
	h := s.Handler()

	var a, b scenarioInfoJSON
	decode(t, do(t, h, "POST", "/scenarios", map[string]string{"name": "a"}), http.StatusCreated, &a)
	decode(t, do(t, h, "POST", "/scenarios", map[string]string{"name": "b"}), http.StatusCreated, &b)
	decode(t, do(t, h, "POST", "/scenarios/"+a.ID+"/edit", map[string]interface{}{
		"edits": []map[string]interface{}{
			{"op": "new_member", "dim": "Account", "parent": "AllAccounts", "name": "Bonus"},
			{"op": "set", "cell": map[string]string{"Department": "Emp00010", "Period": "Jan", "Account": "Bonus"}, "value": 500},
		},
	}), http.StatusOK, nil)
	decode(t, do(t, h, "POST", "/scenarios/"+a.ID+"/commit", nil), http.StatusOK, nil)
	// b pinned the pre-commit version: its commit must conflict.
	decode(t, do(t, h, "POST", "/scenarios/"+b.ID+"/commit", nil), http.StatusConflict, nil)
	decode(t, do(t, h, "DELETE", "/scenarios/"+b.ID, nil), http.StatusOK, nil)

	rec := do(t, h, "GET", "/debug/events", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/events = %d", rec.Code)
	}
	var resp eventsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	byType := map[string]int{}
	for _, e := range resp.Events {
		byType[e.Type]++
	}
	if byType["scenario_create"] != 2 {
		t.Fatalf("scenario_create events = %d, want 2 (%v)", byType["scenario_create"], byType)
	}
	for _, typ := range []string{"scenario_commit", "scenario_conflict", "scenario_delete"} {
		if byType[typ] != 1 {
			t.Fatalf("%s events = %d, want 1 (%v)", typ, byType[typ], byType)
		}
	}
	// Events carry their coordinates.
	for _, e := range resp.Events {
		if e.Type == "scenario_commit" && (e.Fields["scenario"] != a.ID || e.Fields["cube"] != "wf") {
			t.Fatalf("scenario_commit fields = %v", e.Fields)
		}
	}
}

func TestHistoryEvictionPressureEvents(t *testing.T) {
	s := newPaperServer(t, Config{ObsInterval: -1})

	// Substitute a synthetic pool so the test controls eviction deltas.
	evictions := 0
	s.metrics.poolStats = func() chunk.SpillStats {
		return chunk.SpillStats{Evictions: evictions, ResidentBytes: 1 << 20}
	}
	s.sampler.prime()

	count := func(typ string) int {
		events, _ := s.events.Snapshot()
		n := 0
		for _, e := range events {
			if e.Type == typ {
				n++
			}
		}
		return n
	}

	evictions = 5
	s.sampler.sample() // delta 5 > 0: pressure starts
	evictions = 9
	s.sampler.sample() // still evicting: no second event (edge-triggered)
	if got := count("eviction_pressure"); got != 1 {
		t.Fatalf("eviction_pressure events = %d, want 1", got)
	}
	if got := count("eviction_pressure_cleared"); got != 0 {
		t.Fatalf("premature eviction_pressure_cleared (%d)", got)
	}

	s.sampler.sample() // delta 0: pressure clears
	s.sampler.sample() // stays clear: no second event
	if got := count("eviction_pressure_cleared"); got != 1 {
		t.Fatalf("eviction_pressure_cleared events = %d, want 1", got)
	}
	if got := count("eviction_pressure"); got != 1 {
		t.Fatalf("eviction_pressure re-fired without an edge (%d)", got)
	}

	// The samples themselves carry the per-interval eviction deltas.
	samples := s.history.Snapshot()
	if len(samples) != 4 {
		t.Fatalf("history has %d samples, want 4", len(samples))
	}
	wantDeltas := []int64{5, 4, 0, 0}
	for i, want := range wantDeltas {
		if samples[i].PoolEvictions != want {
			t.Fatalf("sample %d eviction delta = %d, want %d", i, samples[i].PoolEvictions, want)
		}
	}
}
