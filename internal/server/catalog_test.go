package server

import (
	"fmt"
	"testing"

	"whatifolap/internal/cube"
	"whatifolap/internal/paperdata"
)

func TestCatalogRegisterAcquireRelease(t *testing.T) {
	c := NewCatalog()
	if err := c.Register("paper", paperdata.ChunkedWarehouse(nil)); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("paper", paperdata.ChunkedWarehouse(nil)); err == nil {
		t.Fatal("duplicate Register accepted")
	}
	if _, err := c.Acquire("nope"); err == nil {
		t.Fatal("Acquire of unknown cube succeeded")
	}

	snap, err := c.Acquire("paper")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 1 || snap.Cube == nil {
		t.Fatalf("snapshot = v%d, cube %v", snap.Version, snap.Cube)
	}
	infos := c.List()
	if len(infos) != 1 || infos[0].InFlight != 1 {
		t.Fatalf("List = %+v, want one entry with in_flight 1", infos)
	}
	snap.Release()
	snap.Release() // idempotent
	if got := c.List()[0].InFlight; got != 0 {
		t.Fatalf("in_flight after release = %d, want 0", got)
	}
}

func TestCatalogUpdateCopyOnWrite(t *testing.T) {
	c := NewCatalog()
	if err := c.Register("paper", paperdata.ChunkedWarehouse(nil)); err != nil {
		t.Fatal(err)
	}
	old, err := c.Acquire("paper")
	if err != nil {
		t.Fatal(err)
	}
	defer old.Release()
	addr := make([]int, old.Cube.NumDims())
	before := old.Cube.Leaf(addr)

	v, err := c.Update("paper", func(cl *cube.Cube) (*cube.Cube, error) {
		cl.SetLeaf(addr, before+1000)
		return cl, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("Update version = %d, want 2", v)
	}
	// The in-flight snapshot still reads the old value; a fresh acquire
	// sees the new version and the new value.
	if got := old.Cube.Leaf(addr); got != before {
		t.Fatalf("acquired snapshot changed under update: %v -> %v", before, got)
	}
	fresh, err := c.Acquire("paper")
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Release()
	if fresh.Version != 2 {
		t.Fatalf("fresh version = %d, want 2", fresh.Version)
	}
	if got := fresh.Cube.Leaf(addr); got != before+1000 {
		t.Fatalf("fresh value = %v, want %v", got, before+1000)
	}

	if _, err := c.Update("paper", func(cl *cube.Cube) (*cube.Cube, error) {
		return nil, fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("failing mutate did not propagate its error")
	}
	if got := c.List()[0].Version; got != 2 {
		t.Fatalf("failed update bumped the version to %d", got)
	}
}
