package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"whatifolap/internal/workload"
)

var benchOnce struct {
	sync.Once
	w   *workload.Workforce
	err error
}

func benchWorkforce(b *testing.B) *workload.Workforce {
	b.Helper()
	benchOnce.Do(func() {
		benchOnce.w, benchOnce.err = workload.NewWorkforce(workload.ConfigTiny())
	})
	if benchOnce.err != nil {
		b.Fatal(benchOnce.err)
	}
	return benchOnce.w
}

// BenchmarkServerThroughput measures end-to-end POST /query throughput
// across worker-pool sizes, cold (cache off: every request evaluates)
// and warm (cache on: requests mostly hit after the first evaluation
// per query shape).
func BenchmarkServerThroughput(b *testing.B) {
	w := benchWorkforce(b)
	queries := workforceQueries(b, w)
	bodies := make([][]byte, len(queries))
	for i, q := range queries {
		body, err := json.Marshal(queryRequest{Cube: "wf", Query: q})
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = body
	}

	for _, workers := range []int{1, 4, 16} {
		for _, cache := range []struct {
			name  string
			bytes int
		}{{"cold", 0}, {"warm", DefaultCacheBytes}} {
			b.Run(fmt.Sprintf("workers=%d/cache=%s", workers, cache.name), func(b *testing.B) {
				cat := NewCatalog()
				if err := cat.Register("wf", w.Cube); err != nil {
					b.Fatal(err)
				}
				s := New(cat, Config{Workers: workers, QueueCap: 1024, CacheBytes: cache.bytes})
				defer s.Close()
				h := s.Handler()

				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := 0
					for pb.Next() {
						rec := httptest.NewRecorder()
						h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/query",
							bytes.NewReader(bodies[i%len(bodies)])))
						if rec.Code != http.StatusOK {
							b.Fatalf("status %d: %s", rec.Code, rec.Body)
						}
						i++
					}
				})
			})
		}
	}
}
