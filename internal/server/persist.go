package server

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"whatifolap/internal/chunk"
	"whatifolap/internal/cube"
	"whatifolap/internal/obs"
	"whatifolap/internal/segment"
	"whatifolap/internal/workload"
)

// Persister is the catalog's durable storage hook: every published cube
// version is written back to a data directory as one segment file
// (internal/segment) and recorded in the directory's manifest, so a
// restarted daemon restores its catalog — versions included — without
// re-ingesting workload dumps.
//
// Write-back is asynchronous: Publish/Update/Register return as soon as
// the new version is visible to queries; a background goroutine encodes
// the segment and commits the manifest. Queries never wait on storage,
// and a crash before write-back completes simply loses the not-yet-
// durable version — the manifest commit protocol guarantees the
// directory never names a torn segment as current. Pending() exposes
// the in-flight write-back count (the /metrics writeback_pending
// gauge); Flush blocks until the queue drains.
type Persister struct {
	dir  string
	mmap bool

	// mu serializes manifest mutation + commit across write-backs.
	mu  sync.Mutex
	man *segment.Manifest

	// recovered reports that LoadManifest fell back to the previous
	// manifest (a torn live manifest from a crashed commit).
	recovered bool

	pending atomic.Int64
	wg      sync.WaitGroup

	// errMu guards lastErr, the most recent write-back failure.
	errMu   sync.Mutex
	lastErr error

	// events, when set, receives writeback / writeback_error lifecycle
	// events. Set once at startup via SetEventLog; nil-safe to log to.
	events *obs.EventLog
}

// DefaultResidentBudget is the buffer-pool byte budget for cubes
// restored from segment files — the paper's 256 MB cube cache.
const DefaultResidentBudget = 256 << 20

// OpenPersister opens (creating if needed) a data directory and loads
// its manifest, recovering from a torn manifest when possible.
func OpenPersister(dir string, mmap bool) (*Persister, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: data dir: %w", err)
	}
	man, recovered, err := segment.LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	return &Persister{dir: dir, mmap: mmap, man: man, recovered: recovered}, nil
}

// Dir returns the data directory path.
func (p *Persister) Dir() string { return p.dir }

// SetEventLog attaches the structured event log. Call before serving
// (server.New does); write-backs completed earlier are not replayed.
func (p *Persister) SetEventLog(l *obs.EventLog) { p.events = l }

// Recovered reports that opening fell back to the previous manifest.
func (p *Persister) Recovered() bool { return p.recovered }

// Pending returns the number of write-backs queued or in flight.
func (p *Persister) Pending() int64 { return p.pending.Load() }

// Err returns the most recent write-back failure, if any.
func (p *Persister) Err() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.lastErr
}

// Flush blocks until all queued write-backs have committed, then
// reports the most recent failure, if any.
func (p *Persister) Flush() error {
	p.wg.Wait()
	return p.Err()
}

// Restore loads every cube named in the manifest into the catalog at
// its newest restorable version, returning the restored names.
//
// Recovery is per version, fail-closed per file: a segment that fails
// verification (bad header, bad checksum, truncation) is skipped and
// the next-older version tried — a corrupt newest version degrades to
// the last durable one rather than serving wrong cells. Only when a
// cube has versions on record and none opens does Restore fail: the
// directory claims data it cannot vouch for, and guessing is worse
// than refusing to start.
func (p *Persister) Restore(c *Catalog) ([]string, error) {
	p.mu.Lock()
	names := p.man.Names()
	versions := make(map[string][]segment.CubeVersion, len(names))
	for _, name := range names {
		versions[name] = p.man.Versions(name)
	}
	p.mu.Unlock()

	var restored []string
	for _, name := range names {
		vs := versions[name]
		var lastErr error
		ok := false
		for i := len(vs) - 1; i >= 0; i-- {
			cb, err := p.openVersion(vs[i])
			if err != nil {
				lastErr = err
				continue
			}
			if err := c.RegisterVersion(name, int64(vs[i].Version), cb); err != nil {
				return restored, err
			}
			restored = append(restored, name)
			ok = true
			break
		}
		if !ok && len(vs) > 0 {
			return restored, fmt.Errorf("server: no restorable version of cube %q: %w", name, lastErr)
		}
	}
	sort.Strings(restored)
	return restored, nil
}

// openVersion opens one manifest entry's segment file as a tier-backed
// cube: the schema decodes from the segment's meta blob, the cells stay
// in the file behind the buffer pool.
func (p *Persister) openVersion(v segment.CubeVersion) (*cube.Cube, error) {
	sf, err := segment.Open(filepath.Join(p.dir, v.File), segment.OpenOptions{Mmap: p.mmap})
	if err != nil {
		return nil, err
	}
	cb, err := workload.LoadSchema(bytes.NewReader(sf.Meta()))
	if err != nil {
		sf.Close()
		return nil, fmt.Errorf("server: segment %s schema: %w", v.File, err)
	}
	st, ok := cb.Store().(*chunk.Store)
	if !ok {
		sf.Close()
		return nil, fmt.Errorf("server: segment %s decoded to %T, want chunk store", v.File, cb.Store())
	}
	if err := st.AttachTier(sf, DefaultResidentBudget); err != nil {
		sf.Close()
		return nil, err
	}
	return cb, nil
}

// Enqueue schedules an asynchronous write-back of one published cube
// version. Cubes without chunk-backed storage are skipped — only the
// engine-capable representation has a segment encoding. The cube must
// be published (immutable): the write-back reads it concurrently with
// queries.
func (p *Persister) Enqueue(name string, version int64, cb *cube.Cube) {
	st, ok := cb.Store().(*chunk.Store)
	if !ok {
		return
	}
	p.pending.Add(1)
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer p.pending.Add(-1)
		if err := p.writeback(name, version, cb, st); err != nil {
			p.errMu.Lock()
			p.lastErr = fmt.Errorf("server: write-back %s v%d: %w", name, version, err)
			p.errMu.Unlock()
			p.events.Log("writeback_error", map[string]string{
				"cube":    name,
				"version": fmt.Sprint(version),
				"error":   err.Error(),
			})
			return
		}
		p.events.Log("writeback", map[string]string{
			"cube":    name,
			"version": fmt.Sprint(version),
			"cells":   fmt.Sprint(cb.NumCells()),
		})
	}()
}

// writeback encodes one cube version into a segment file and commits
// the manifest entry. The segment create is atomic (temp + rename), so
// a crash mid-write leaves no partially visible version.
func (p *Persister) writeback(name string, version int64, cb *cube.Cube, st *chunk.Store) error {
	var meta bytes.Buffer
	if err := workload.SaveSchema(cb, &meta); err != nil {
		return err
	}
	file := fmt.Sprintf("%s-v%06d.seg", sanitizeName(name), version)
	path := filepath.Join(p.dir, file)
	err := segment.Create(path, st.Geometry().ChunkCap(), meta.Bytes(), st.ChunkIDs(),
		func(id int) *chunk.Chunk { return st.PeekChunk(id) })
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.man.Add(name, segment.CubeVersion{Version: int(version), File: file, Cells: cb.NumCells()})
	return p.man.Commit(p.dir)
}

// sanitizeName maps a cube name to a filesystem-safe segment file stem.
// Names that needed rewriting get a hash suffix so distinct cube names
// cannot collide on the same file.
func sanitizeName(name string) string {
	out := make([]byte, 0, len(name))
	changed := false
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			out = append(out, c)
		default:
			out = append(out, '_')
			changed = true
		}
	}
	if len(out) == 0 || changed {
		h := fnv.New32a()
		h.Write([]byte(name))
		return fmt.Sprintf("%s-%08x", out, h.Sum32())
	}
	return string(out)
}
