package server

// Continuous observability, server side: the sampler closure the
// obs.Collector drives (counter differencing lives here, next to the
// counters), the tail-sampling retention hook the query handlers call,
// and the HTTP handlers for /metrics/history, /debug/trace[/{id}] and
// /debug/events. The mechanisms (rings, ticker, budget accounting)
// live in internal/obs; this file is the policy glue.

import (
	"net/http"
	"strconv"
	"time"

	"whatifolap/internal/obs"
	"whatifolap/internal/trace"
)

// obsSampler holds the previous tick's counter state so each
// obs.Sample reports interval deltas, not lifetime totals. sample runs
// on the collector goroutine only (or, in tests, called directly with
// the collector disabled), so the prev fields need no locking.
type obsSampler struct {
	s *Server

	prevTime time.Time

	prevQueries     int64
	prevErrors      int64
	prevSlow        int64
	prevCacheHits   int64
	prevCacheMisses int64
	prevScanned     int64
	prevReturned    int64

	// prevLat are the latency histogram's per-bucket counts at the last
	// tick; differencing two snapshots gives the interval's bucket
	// counts, which quantileCounts turns into interval quantiles.
	prevLat []int64

	// prevSegSumMicro/prevSegCount difference the segment-read
	// histogram's sum and count into an interval mean.
	prevSegSumMicro int64
	prevSegCount    int64

	prevEvictions int64
	prevFaults    int64

	// underPressure is the eviction-pressure edge detector: a tick with
	// evictions starts pressure, a tick without ends it. Edge-triggered
	// events, not one per tick — sustained pressure is one event pair.
	underPressure bool
}

// newObsSampler primes the baseline so the first tick reports a full
// interval of deltas from server start.
func newObsSampler(s *Server) *obsSampler {
	sm := &obsSampler{s: s}
	sm.prime()
	return sm
}

func (sm *obsSampler) prime() {
	m := sm.s.metrics
	sm.prevTime = time.Now()
	sm.prevQueries = m.QueriesServed.Load()
	sm.prevErrors = m.QueryErrors.Load()
	sm.prevSlow = m.SlowQueries.Load()
	sm.prevCacheHits = m.CacheHits.Load()
	sm.prevCacheMisses = m.CacheMisses.Load()
	sm.prevScanned = m.CellsScanned.Load()
	sm.prevReturned = m.CellsReturned.Load()
	sm.prevLat = m.latency.countsSnapshot()
	sm.prevSegSumMicro = m.segmentReadMs.sumMicro.Load()
	sm.prevSegCount = m.segmentReadMs.count.Load()
	if m.poolStats != nil {
		ps := m.poolStats()
		sm.prevEvictions = int64(ps.Evictions)
		sm.prevFaults = int64(ps.Faults)
	}
}

// sample reads the counters, differences them against the previous
// tick, pushes one obs.Sample into the history ring, and emits
// eviction-pressure edge events.
func (sm *obsSampler) sample() {
	m := sm.s.metrics
	now := time.Now()
	interval := now.Sub(sm.prevTime)

	out := obs.Sample{
		UnixMs:     now.UnixMilli(),
		IntervalMs: float64(interval) / float64(time.Millisecond),
	}

	queries := m.QueriesServed.Load()
	errors := m.QueryErrors.Load()
	slow := m.SlowQueries.Load()
	hits := m.CacheHits.Load()
	misses := m.CacheMisses.Load()
	scanned := m.CellsScanned.Load()
	returned := m.CellsReturned.Load()

	out.Queries = queries - sm.prevQueries
	out.Errors = errors - sm.prevErrors
	out.SlowQueries = slow - sm.prevSlow
	out.CacheHits = hits - sm.prevCacheHits
	out.CacheMisses = misses - sm.prevCacheMisses
	out.CellsScanned = scanned - sm.prevScanned
	out.CellsReturned = returned - sm.prevReturned
	if interval > 0 {
		out.QPS = float64(out.Queries) / interval.Seconds()
	}
	if lookups := out.CacheHits + out.CacheMisses; lookups > 0 {
		out.CacheHitRatio = float64(out.CacheHits) / float64(lookups)
	} else {
		out.CacheHitRatio = -1
	}
	if out.CellsReturned > 0 {
		out.ScanAmplification = float64(out.CellsScanned) / float64(out.CellsReturned)
	} else {
		out.ScanAmplification = -1
	}

	lat := m.latency.countsSnapshot()
	delta := make([]int64, len(lat))
	for i := range lat {
		delta[i] = lat[i]
		if i < len(sm.prevLat) {
			delta[i] -= sm.prevLat[i]
		}
	}
	out.P50Ms = quantileCounts(m.latency.bounds, delta, 0.50)
	out.P95Ms = quantileCounts(m.latency.bounds, delta, 0.95)
	out.P99Ms = quantileCounts(m.latency.bounds, delta, 0.99)

	segSum := m.segmentReadMs.sumMicro.Load()
	segCount := m.segmentReadMs.count.Load()
	if dn := segCount - sm.prevSegCount; dn > 0 {
		out.SegmentReadMs = float64(segSum-sm.prevSegSumMicro) / 1e6 / float64(dn)
	}

	if m.queueDepth != nil {
		out.QueueDepth = m.queueDepth()
	}
	if m.cacheBytes != nil {
		out.CacheBytes = m.cacheBytes()
	}
	if m.writebackPending != nil {
		out.WritebackPending = m.writebackPending()
	}

	var evictions, faults int64
	if m.poolStats != nil {
		ps := m.poolStats()
		out.PoolResidentBytes = ps.ResidentBytes
		out.PoolResidentChunks = ps.Resident
		out.PoolSpilledChunks = ps.Spilled
		out.PoolPinned = ps.Pinned
		evictions = int64(ps.Evictions)
		faults = int64(ps.Faults)
		out.PoolEvictions = evictions - sm.prevEvictions
		out.PoolFaults = faults - sm.prevFaults
	}

	rs := sm.s.traces.Stats()
	out.RetainedTraces = rs.Count
	out.RetainedTraceBytes = rs.Bytes

	sm.s.history.Add(out)

	// Eviction-pressure edges: the pool started (or stopped) evicting
	// this interval.
	if out.PoolEvictions > 0 && !sm.underPressure {
		sm.underPressure = true
		sm.s.events.Log("eviction_pressure", map[string]string{
			"evictions":      strconv.FormatInt(out.PoolEvictions, 10),
			"resident_bytes": strconv.Itoa(out.PoolResidentBytes),
		})
	} else if out.PoolEvictions == 0 && sm.underPressure {
		sm.underPressure = false
		sm.s.events.Log("eviction_pressure_cleared", map[string]string{
			"resident_bytes": strconv.Itoa(out.PoolResidentBytes),
		})
	}

	sm.prevTime = now
	sm.prevQueries = queries
	sm.prevErrors = errors
	sm.prevSlow = slow
	sm.prevCacheHits = hits
	sm.prevCacheMisses = misses
	sm.prevScanned = scanned
	sm.prevReturned = returned
	sm.prevLat = lat
	sm.prevSegSumMicro = segSum
	sm.prevSegCount = segCount
	sm.prevEvictions = evictions
	sm.prevFaults = faults
}

// retainTrace applies the tail-sampling policy to one finished query:
// it packages the outcome into an obs.TraceMeta (computing the Slow
// flag from the server's slowlog threshold — one policy, two
// consumers) and hands it to the ring. Returns the retained trace ID,
// or "" (retention disabled, or the query was not sampled).
func (s *Server) retainTrace(tr *trace.Trace, cubeName, scenarioID string, rev int64, norm string, elapsed time.Duration, qerr error) string {
	if s.traces == nil {
		return ""
	}
	ms := float64(elapsed) / float64(time.Millisecond)
	m := obs.TraceMeta{
		Time:        time.Now(),
		Cube:        cubeName,
		Scenario:    scenarioID,
		ScenarioRev: rev,
		Query:       norm,
		LatencyMs:   ms,
		Slow:        s.cfg.SlowQueryMs >= 0 && ms >= s.cfg.SlowQueryMs,
	}
	if qerr != nil {
		m.Err = qerr.Error()
	}
	return s.traces.MaybeRetain(m, tr.Spans)
}

// HistoryResponse is the GET /metrics/history body. Exported so the
// whatif -top client can decode it.
type HistoryResponse struct {
	// IntervalMs is the configured collector cadence (0 when the
	// collector is disabled); each sample carries its measured interval.
	IntervalMs float64      `json:"interval_ms"`
	Cap        int          `json:"cap"`
	Total      int64        `json:"total"`
	Samples    []obs.Sample `json:"samples"`
}

func (s *Server) handleMetricsHistory(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HistoryResponse{
		IntervalMs: float64(s.collector.Interval()) / float64(time.Millisecond),
		Cap:        s.history.Cap(),
		Total:      s.history.Total(),
		Samples:    s.history.Snapshot(),
	})
}

// TraceSpan is the wire shape of one retained span.
type TraceSpan struct {
	ID      int              `json:"id"`
	Parent  int              `json:"parent"`
	Name    string           `json:"name"`
	StartMs float64          `json:"start_ms"`
	EndMs   float64          `json:"end_ms"`
	Attrs   map[string]int64 `json:"attrs,omitempty"`
}

// TraceResponse is the GET /debug/trace/{id} body: the query's
// identity, outcome, raw spans, and the rendered tree for humans.
type TraceResponse struct {
	ID          string      `json:"id"`
	Time        time.Time   `json:"time"`
	Cube        string      `json:"cube"`
	Scenario    string      `json:"scenario,omitempty"`
	ScenarioRev int64       `json:"scenario_revision,omitempty"`
	Query       string      `json:"query"`
	LatencyMs   float64     `json:"latency_ms"`
	Reason      string      `json:"reason"`
	Error       string      `json:"error,omitempty"`
	Spans       []TraceSpan `json:"spans"`
	Rendered    string      `json:"rendered"`
}

func toTraceResponse(rt *obs.RetainedTrace) TraceResponse {
	resp := TraceResponse{
		ID:          rt.ID,
		Time:        rt.Meta.Time,
		Cube:        rt.Meta.Cube,
		Scenario:    rt.Meta.Scenario,
		ScenarioRev: rt.Meta.ScenarioRev,
		Query:       rt.Meta.Query,
		LatencyMs:   rt.Meta.LatencyMs,
		Reason:      rt.Reason,
		Error:       rt.Meta.Err,
		Spans:       make([]TraceSpan, len(rt.Spans)),
		Rendered:    trace.RenderSpans(rt.Spans),
	}
	for i, sp := range rt.Spans {
		ts := TraceSpan{
			ID:      sp.ID,
			Parent:  sp.Parent,
			Name:    sp.Name,
			StartMs: float64(sp.Start) / float64(time.Millisecond),
			EndMs:   float64(sp.End) / float64(time.Millisecond),
		}
		if len(sp.Attrs) > 0 {
			ts.Attrs = make(map[string]int64, len(sp.Attrs))
			for _, a := range sp.Attrs {
				ts.Attrs[a.Key] = a.Val
			}
		}
		resp.Spans[i] = ts
	}
	return resp
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rt, ok := s.traces.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{"no retained trace " + id + " (evicted, or retention disabled)"})
		return
	}
	writeJSON(w, http.StatusOK, toTraceResponse(rt))
}

// traceSummary is one entry of the GET /debug/trace listing.
type traceSummary struct {
	ID          string    `json:"id"`
	Time        time.Time `json:"time"`
	Cube        string    `json:"cube"`
	Scenario    string    `json:"scenario,omitempty"`
	ScenarioRev int64     `json:"scenario_revision,omitempty"`
	Query       string    `json:"query"`
	LatencyMs   float64   `json:"latency_ms"`
	Reason      string    `json:"reason"`
	Error       string    `json:"error,omitempty"`
	Spans       int       `json:"spans"`
}

// traceListResponse is the GET /debug/trace body.
type traceListResponse struct {
	Stats  obs.RetainStats `json:"stats"`
	Traces []traceSummary  `json:"traces"`
}

func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	retained := s.traces.List()
	resp := traceListResponse{
		Stats:  s.traces.Stats(),
		Traces: make([]traceSummary, len(retained)),
	}
	for i, rt := range retained {
		resp.Traces[i] = traceSummary{
			ID:          rt.ID,
			Time:        rt.Meta.Time,
			Cube:        rt.Meta.Cube,
			Scenario:    rt.Meta.Scenario,
			ScenarioRev: rt.Meta.ScenarioRev,
			Query:       rt.Meta.Query,
			LatencyMs:   rt.Meta.LatencyMs,
			Reason:      rt.Reason,
			Error:       rt.Meta.Err,
			Spans:       len(rt.Spans),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// eventsResponse is the GET /debug/events body.
type eventsResponse struct {
	Total  int64       `json:"total"`
	Events []obs.Event `json:"events"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	events, total := s.events.Snapshot()
	writeJSON(w, http.StatusOK, eventsResponse{Total: total, Events: events})
}
