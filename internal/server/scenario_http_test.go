package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"whatifolap/internal/workload"
)

// newWorkforceServer registers the tiny workforce cube as "wf" and
// returns the server plus the generated dataset.
func newWorkforceServer(t testing.TB, cfg Config) (*Server, *workload.Workforce) {
	t.Helper()
	w, err := workload.NewWorkforce(workload.ConfigTiny())
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog()
	if err := cat.Register("wf", w.Cube); err != nil {
		t.Fatal(err)
	}
	s := New(cat, cfg)
	t.Cleanup(s.Close)
	return s, w
}

// do issues one JSON request against the handler.
func do(t testing.TB, h http.Handler, method, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, path, rd))
	return rec
}

// decode unmarshals a response body, failing on unexpected status.
func decode(t testing.TB, rec *httptest.ResponseRecorder, wantStatus int, v interface{}) {
	t.Helper()
	if rec.Code != wantStatus {
		t.Fatalf("status = %d, want %d: %s", rec.Code, wantStatus, rec.Body)
	}
	if v != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
			t.Fatalf("bad response body %q: %v", rec.Body, err)
		}
	}
}

// scenarioInfoJSON mirrors scenario.Info's wire shape.
type scenarioInfoJSON struct {
	ID               string `json:"id"`
	Name             string `json:"name"`
	Cube             string `json:"cube"`
	BaseVersion      int64  `json:"base_version"`
	Parent           string `json:"parent"`
	Revision         int64  `json:"revision"`
	Layers           int    `json:"layers"`
	CellsOverridden  int    `json:"cells_overridden"`
	NewMembers       int    `json:"new_members"`
	CommittedVersion int64  `json:"committed_version"`
}

type scenarioGridJSON struct {
	Cube             string       `json:"cube"`
	Version          int64        `json:"version"`
	Scenario         string       `json:"scenario"`
	ScenarioRevision int64        `json:"scenario_revision"`
	Columns          []string     `json:"columns"`
	Rows             []string     `json:"rows"`
	Values           [][]*float64 `json:"values"`
}

type diffJSON struct {
	A     string `json:"a"`
	B     string `json:"b"`
	Count int    `json:"count"`
	Cells []struct {
		Cell []string `json:"cell"`
		A    *float64 `json:"a"`
		B    *float64 `json:"b"`
	} `json:"cells"`
}

// rollupQuery asks for one employee's AllAccounts total in January.
const rollupQuery = `
SELECT {[Account].[AllAccounts]} ON COLUMNS, {[Emp00010]} ON ROWS
FROM [App].[Db]
WHERE ([Period].[Jan], [Scenario].[Current], [Currency].[Local], [Version].[BU Version_1], [ValueType].[HSP_InputValue])`

// cellValue extracts the single data cell of a 1×1 response.
func cellValue(t testing.TB, g scenarioGridJSON) float64 {
	t.Helper()
	if len(g.Values) != 1 || len(g.Values[0]) != 1 || g.Values[0][0] == nil {
		t.Fatalf("expected a 1×1 non-null grid, got %+v", g.Values)
	}
	return *g.Values[0][0]
}

// TestScenarioRESTEndToEnd is the acceptance flow: create a scenario
// on the workforce cube, introduce a hypothetical member, edit cells
// under it, fork, diff (exactly the divergent cells), commit, and
// query the committed version through the plain path.
func TestScenarioRESTEndToEnd(t *testing.T) {
	s, _ := newWorkforceServer(t, Config{Workers: 2, CacheBytes: 1 << 20})
	h := s.Handler()

	// Create.
	var created scenarioInfoJSON
	decode(t, do(t, h, "POST", "/scenarios", map[string]string{"name": "hiring-plan"}), http.StatusCreated, &created)
	if created.ID == "" || created.Cube != "wf" || created.BaseVersion != 1 {
		t.Fatalf("created = %+v", created)
	}

	// Baseline answer on the untouched scenario equals the plain path.
	var base scenarioGridJSON
	decode(t, do(t, h, "POST", "/scenarios/"+created.ID+"/query", queryRequest{Query: rollupQuery}), http.StatusOK, &base)
	baseTotal := cellValue(t, base)

	// Introduce a hypothetical account and edit cells under it.
	var edited scenarioInfoJSON
	decode(t, do(t, h, "POST", "/scenarios/"+created.ID+"/edit", map[string]interface{}{
		"edits": []map[string]interface{}{
			{"op": "new_member", "dim": "Account", "parent": "AllAccounts", "name": "Bonus"},
			{"op": "set", "cell": map[string]string{"Department": "Emp00010", "Period": "Jan", "Account": "Bonus"}, "value": 500},
			{"op": "set", "cell": map[string]string{"Department": "Emp00011", "Period": "Feb", "Account": "Bonus"}, "value": 750},
		},
	}), http.StatusOK, &edited)
	if edited.Revision != 1 || edited.NewMembers != 1 || edited.CellsOverridden != 2 {
		t.Fatalf("after edit: %+v", edited)
	}

	var after scenarioGridJSON
	decode(t, do(t, h, "POST", "/scenarios/"+created.ID+"/query", queryRequest{Query: rollupQuery}), http.StatusOK, &after)
	if got, want := cellValue(t, after), baseTotal+500; got != want {
		t.Fatalf("rollup with hypothetical member = %v, want %v", got, want)
	}

	// Fork, then diverge the fork by one cell.
	var fork scenarioInfoJSON
	decode(t, do(t, h, "POST", "/scenarios/"+created.ID+"/fork", map[string]string{"name": "hiring-plan-b"}), http.StatusCreated, &fork)
	if fork.Parent != created.ID || fork.Layers != 1 {
		t.Fatalf("fork = %+v", fork)
	}
	var empty diffJSON
	decode(t, do(t, h, "GET", "/scenarios/"+created.ID+"/diff?against="+fork.ID, nil), http.StatusOK, &empty)
	if empty.Count != 0 {
		t.Fatalf("pre-divergence diff = %+v, want empty", empty)
	}
	decode(t, do(t, h, "POST", "/scenarios/"+fork.ID+"/edit", map[string]interface{}{
		"edits": []map[string]interface{}{
			{"op": "set", "cell": map[string]string{"Department": "Emp00010", "Period": "Jan", "Account": "Bonus"}, "value": 900},
		},
	}), http.StatusOK, nil)

	var d diffJSON
	decode(t, do(t, h, "GET", "/scenarios/"+created.ID+"/diff?against="+fork.ID, nil), http.StatusOK, &d)
	if d.Count != 1 || len(d.Cells) != 1 {
		t.Fatalf("diff = %+v, want exactly the divergent cell", d)
	}
	if d.Cells[0].A == nil || *d.Cells[0].A != 500 || d.Cells[0].B == nil || *d.Cells[0].B != 900 {
		t.Fatalf("diff cell = %+v, want A=500 B=900", d.Cells[0])
	}
	joined := strings.Join(d.Cells[0].Cell, "|")
	if !strings.Contains(joined, "AllAccounts/Bonus") || !strings.Contains(joined, "Emp00010") {
		t.Fatalf("diff cell paths = %v", d.Cells[0].Cell)
	}

	// List shows both workspaces.
	var list struct {
		Scenarios []scenarioInfoJSON `json:"scenarios"`
	}
	decode(t, do(t, h, "GET", "/scenarios", nil), http.StatusOK, &list)
	if len(list.Scenarios) != 2 {
		t.Fatalf("list = %+v, want 2 scenarios", list.Scenarios)
	}

	// Commit the parent: the catalog gains version 2 with the
	// hypothetical member's cells baked in.
	var committed struct {
		Scenario string `json:"scenario"`
		Cube     string `json:"cube"`
		Version  int64  `json:"version"`
	}
	decode(t, do(t, h, "POST", "/scenarios/"+created.ID+"/commit", nil), http.StatusOK, &committed)
	if committed.Version != 2 {
		t.Fatalf("commit = %+v, want version 2", committed)
	}
	rec := postQuery(t, h, queryRequest{Cube: "wf", Query: rollupQuery})
	var plain scenarioGridJSON
	decode(t, rec, http.StatusOK, &plain)
	if plain.Version != 2 {
		t.Fatalf("plain query version = %d, want 2 after commit", plain.Version)
	}
	if got, want := cellValue(t, plain), baseTotal+500; got != want {
		t.Fatalf("committed rollup = %v, want %v", got, want)
	}

	// The fork still diffs against its (pre-commit) base; committing the
	// parent again conflicts, since the cube moved to version 2.
	decode(t, do(t, h, "POST", "/scenarios/"+fork.ID+"/commit", nil), http.StatusConflict, nil)

	// Discard the fork.
	decode(t, do(t, h, "DELETE", "/scenarios/"+fork.ID, nil), http.StatusOK, nil)
	decode(t, do(t, h, "POST", "/scenarios/"+fork.ID+"/query", queryRequest{Query: rollupQuery}), http.StatusNotFound, nil)
}

// TestScenarioCacheStalenessImpossible is the cache regression test:
// with caching on, an edit must make the previously cached answer
// unreachable — the next query recomputes and reflects the edit.
func TestScenarioCacheStalenessImpossible(t *testing.T) {
	s, _ := newWorkforceServer(t, Config{Workers: 2, CacheBytes: 1 << 20})
	h := s.Handler()

	var sc scenarioInfoJSON
	decode(t, do(t, h, "POST", "/scenarios", map[string]string{}), http.StatusCreated, &sc)

	// Miss, then hit.
	rec := do(t, h, "POST", "/scenarios/"+sc.ID+"/query", queryRequest{Query: rollupQuery})
	var g1 scenarioGridJSON
	decode(t, rec, http.StatusOK, &g1)
	if got := rec.Header().Get("X-Cache"); got != "MISS" {
		t.Fatalf("first query X-Cache = %q, want MISS", got)
	}
	rec = do(t, h, "POST", "/scenarios/"+sc.ID+"/query", queryRequest{Query: rollupQuery})
	if got := rec.Header().Get("X-Cache"); got != "HIT" {
		t.Fatalf("second query X-Cache = %q, want HIT", got)
	}

	// Edit a cell the query covers.
	decode(t, do(t, h, "POST", "/scenarios/"+sc.ID+"/edit", map[string]interface{}{
		"edits": []map[string]interface{}{
			{"op": "set", "cell": map[string]string{"Department": "Emp00010", "Period": "Jan", "Account": "Acct000"}, "value": 99999},
		},
	}), http.StatusOK, nil)
	if n := s.cache.Len(); n != 0 {
		t.Fatalf("cache entries after scenario edit = %d, want 0 (invalidated)", n)
	}

	rec = do(t, h, "POST", "/scenarios/"+sc.ID+"/query", queryRequest{Query: rollupQuery})
	var g2 scenarioGridJSON
	decode(t, rec, http.StatusOK, &g2)
	if got := rec.Header().Get("X-Cache"); got != "MISS" {
		t.Fatalf("post-edit query X-Cache = %q, want MISS (stale hit!)", got)
	}
	if cellValue(t, g2) == cellValue(t, g1) {
		t.Fatal("post-edit answer identical to pre-edit answer: stale result served")
	}
	if g2.ScenarioRevision != 1 {
		t.Fatalf("post-edit revision = %d, want 1", g2.ScenarioRevision)
	}

	// A plain cube query is unaffected by scenario edits and caches
	// under its own key.
	rec = postQuery(t, h, queryRequest{Cube: "wf", Query: rollupQuery})
	var plain scenarioGridJSON
	decode(t, rec, http.StatusOK, &plain)
	if cellValue(t, plain) != cellValue(t, g1) {
		t.Fatal("plain cube query drifted after scenario edit")
	}
}

// TestScenarioObservability checks the scenario id lands in the
// slow-query log, the metrics snapshot, and the Prometheus exposition —
// and stays empty for plain-path queries.
func TestScenarioObservability(t *testing.T) {
	// Threshold 0.000001ms: everything is slow.
	s, w := newWorkforceServer(t, Config{Workers: 2, SlowQueryMs: 0.000001})
	h := s.Handler()

	var sc scenarioInfoJSON
	decode(t, do(t, h, "POST", "/scenarios", map[string]string{"name": "obs"}), http.StatusCreated, &sc)
	decode(t, do(t, h, "POST", "/scenarios/"+sc.ID+"/edit", map[string]interface{}{
		"edits": []map[string]interface{}{
			{"op": "set", "cell": map[string]string{"Department": "Emp00012", "Period": "Mar", "Account": "Acct000"}, "value": 1},
		},
	}), http.StatusOK, nil)

	dept := w.Cube.DimByName(workload.DimDepartment)
	b := w.Cube.BindingFor(workload.DimDepartment)
	inst := dept.Path(b.InstanceAt(w.Changing[0], 0))
	persp := fmt.Sprintf(`
WITH PERSPECTIVE {(Jan), (Apr)} FOR Department DYNAMIC FORWARD
SELECT {[Account].Levels(0).Members} ON COLUMNS, {[%s]} ON ROWS
FROM [App].[Db]
WHERE ([Scenario].[Current], [Currency].[Local], [Version].[BU Version_1], [ValueType].[HSP_InputValue])`, inst)
	decode(t, do(t, h, "POST", "/scenarios/"+sc.ID+"/query", queryRequest{Query: persp}), http.StatusOK, nil)
	if rec := postQuery(t, h, queryRequest{Cube: "wf", Query: persp}); rec.Code != http.StatusOK {
		t.Fatalf("plain query failed: %s", rec.Body)
	}

	// Slowlog: the scenario-path record carries the id, the plain one
	// does not; the scenario record's trace carries the layer attrs.
	records, _ := s.slowlog.snapshot()
	if len(records) < 2 {
		t.Fatalf("slowlog records = %d, want ≥ 2", len(records))
	}
	var sawScenario, sawPlain bool
	for _, r := range records {
		if r.Scenario == sc.ID {
			sawScenario = true
			if !strings.Contains(r.Trace, "scenario_layers=1") || !strings.Contains(r.Trace, "cells_overridden=1") {
				t.Fatalf("scenario trace missing layer attrs:\n%s", r.Trace)
			}
		}
		if r.Scenario == "" {
			sawPlain = true
		}
	}
	if !sawScenario || !sawPlain {
		t.Fatalf("slowlog attribution: scenario=%v plain=%v", sawScenario, sawPlain)
	}

	// Metrics snapshot and Prometheus exposition.
	m := s.Metrics().Snapshot()
	st, ok := m.ByScenario[sc.ID]
	if !ok || st.Queries != 1 {
		t.Fatalf("by_scenario = %+v, want 1 query for %s", m.ByScenario, sc.ID)
	}
	var prom strings.Builder
	s.Metrics().WriteProm(&prom)
	text := prom.String()
	if !strings.Contains(text, fmt.Sprintf("whatif_scenario_queries_total{scenario=%q} 1", sc.ID)) {
		t.Fatalf("prom exposition missing scenario counter:\n%s", text)
	}
	if !strings.Contains(text, "whatif_scenario_latency_ms_total{scenario=") {
		t.Fatal("prom exposition missing scenario latency counter")
	}
}
