package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"whatifolap/internal/cube"
	"whatifolap/internal/paperdata"
	"whatifolap/internal/segment"
)

// persistedCatalog builds a catalog writing through a persister in dir.
func persistedCatalog(t *testing.T, dir string) (*Catalog, *Persister) {
	t.Helper()
	p, err := OpenPersister(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCatalog()
	c.SetPersister(p)
	return c, p
}

func TestPersisterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cat, p := persistedCatalog(t, dir)
	orig := paperdata.ChunkedWarehouse(nil)
	if err := cat.Register("paper", orig); err != nil {
		t.Fatal(err)
	}
	// An update publishes version 2; both versions become durable.
	if _, err := cat.Update("paper", func(c *cube.Cube) (*cube.Cube, error) {
		return c, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if p.Pending() != 0 {
		t.Fatalf("pending = %d after flush", p.Pending())
	}

	// A fresh process: restore from the directory alone.
	cat2, p2 := persistedCatalog(t, dir)
	names, err := p2.Restore(cat2)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "paper" {
		t.Fatalf("restored %v", names)
	}
	snap, err := cat2.Acquire("paper")
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	if snap.Version != 2 {
		t.Fatalf("restored version %d, want 2", snap.Version)
	}
	if snap.Cube.NumCells() != orig.NumCells() {
		t.Fatalf("cells %d, want %d", snap.Cube.NumCells(), orig.NumCells())
	}
	// Every cell identical to the original, through the segment tier.
	orig.Store().NonNull(func(addr []int, v float64) bool {
		if got := snap.Cube.Leaf(addr); got != v {
			t.Fatalf("cell %v = %v, want %v", addr, got, v)
		}
		return true
	})
	// Restored cubes must not be re-persisted: still exactly 2 versions.
	if err := p2.Flush(); err != nil {
		t.Fatal(err)
	}
	man, _, err := segment.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if vs := man.Versions("paper"); len(vs) != 2 {
		t.Fatalf("manifest versions = %+v", vs)
	}
}

func TestPersisterRestoreFallsBackOnCorruptSegment(t *testing.T) {
	dir := t.TempDir()
	cat, p := persistedCatalog(t, dir)
	if err := cat.Register("paper", paperdata.ChunkedWarehouse(nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Update("paper", func(c *cube.Cube) (*cube.Cube, error) {
		return c, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	man, _, err := segment.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	v2, ok := man.Latest("paper")
	if !ok || v2.Version != 2 {
		t.Fatalf("latest = %+v %v", v2, ok)
	}
	// Truncate the newest segment: restore must fall back to version 1.
	path := filepath.Join(dir, v2.File)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	cat2, p2 := persistedCatalog(t, dir)
	if _, err := p2.Restore(cat2); err != nil {
		t.Fatal(err)
	}
	snap, err := cat2.Acquire("paper")
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	if snap.Version != 1 {
		t.Fatalf("restored version %d, want fallback to 1", snap.Version)
	}

	// Corrupt the remaining version too: restore now fails closed.
	v1 := man.Versions("paper")[0]
	if err := os.WriteFile(filepath.Join(dir, v1.File), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	cat3, p3 := persistedCatalog(t, dir)
	if _, err := p3.Restore(cat3); err == nil {
		t.Fatal("restore with every version corrupt should fail")
	}
}

func TestPersisterSkipsNonChunkCubes(t *testing.T) {
	dir := t.TempDir()
	cat, p := persistedCatalog(t, dir)
	// The MemStore-backed warehouse has no segment encoding: registering
	// it must not enqueue a write-back.
	if err := cat.Register("mem", paperdata.Warehouse()); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	man, _, err := segment.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Cubes) != 0 {
		t.Fatalf("manifest should be empty, got %+v", man.Cubes)
	}
}

// TestWritebackConcurrentPublishes exercises the write-back queue under
// concurrent catalog publishes across cubes (the -race subset for the
// persistence layer).
func TestWritebackConcurrentPublishes(t *testing.T) {
	dir := t.TempDir()
	cat, p := persistedCatalog(t, dir)
	const cubes = 4
	for i := 0; i < cubes; i++ {
		if err := cat.Register(fmt.Sprintf("c%d", i), paperdata.ChunkedWarehouse(nil)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < cubes; i++ {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for v := 0; v < 3; v++ {
				if _, err := cat.Update(name, func(c *cube.Cube) (*cube.Cube, error) {
					c.SetLeaf([]int{0, 0, 0, 0}, float64(v))
					return c, nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(fmt.Sprintf("c%d", i))
	}
	// Sample the pending gauge concurrently with the publishes.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			if n := p.Pending(); n < 0 {
				t.Error("negative pending")
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	man, _, err := segment.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cubes; i++ {
		vs := man.Versions(fmt.Sprintf("c%d", i))
		if len(vs) != 4 {
			t.Fatalf("cube c%d has %d durable versions, want 4", i, len(vs))
		}
		if vs[len(vs)-1].Version != 4 {
			t.Fatalf("cube c%d newest = %+v", i, vs[len(vs)-1])
		}
	}
	// The final durable state round-trips.
	cat2, p2 := persistedCatalog(t, dir)
	if _, err := p2.Restore(cat2); err != nil {
		t.Fatal(err)
	}
	snap, err := cat2.Acquire("c0")
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	if got := snap.Cube.Leaf([]int{0, 0, 0, 0}); got != 2 {
		t.Fatalf("restored leaf = %v, want 2", got)
	}
}
