package server

import (
	"container/list"
	"sync"
)

// cacheKey identifies one cached query result. The cube version is part
// of the key, so a copy-on-write catalog update (version bump) makes
// every prior entry unreachable; InvalidateCube reclaims their bytes
// eagerly.
type cacheKey struct {
	Cube    string
	Version int64
	// Query is the normalized source (mdx.Normalize), so formatting and
	// keyword-case variants of one query share an entry.
	Query string
	// Scenario and ScenarioRev scope scenario-path queries: the revision
	// bumps on every edit batch, so an edited scenario can never serve a
	// stale body even before InvalidateScenario reclaims the old entries.
	// Both are zero for plain cube queries.
	Scenario    string
	ScenarioRev int64
}

// entryOverhead approximates the bookkeeping bytes per cache entry
// (list element, map bucket share, key struct).
const entryOverhead = 160

// cacheEntry is one LRU slot.
type cacheEntry struct {
	key  cacheKey
	body []byte
}

func (e *cacheEntry) cost() int {
	return len(e.body) + len(e.key.Query) + len(e.key.Cube) + entryOverhead
}

// resultCache is an LRU result cache bounded by a byte budget rather
// than an entry count: grids vary from a single cell to thousands, so
// counting entries would make memory use unpredictable. A non-positive
// budget disables caching entirely.
type resultCache struct {
	mu     sync.Mutex
	budget int
	bytes  int
	ll     *list.List // front = most recently used
	items  map[cacheKey]*list.Element
}

// newResultCache creates a cache with the given byte budget.
func newResultCache(budgetBytes int) *resultCache {
	return &resultCache{
		budget: budgetBytes,
		ll:     list.New(),
		items:  make(map[cacheKey]*list.Element),
	}
}

// Get returns the cached body for the key, marking it recently used.
func (c *resultCache) Get(key cacheKey) ([]byte, bool) {
	if c.budget <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put inserts (or refreshes) an entry, evicting least-recently-used
// entries until the budget holds. A body larger than the whole budget
// is not cached.
func (c *resultCache) Put(key cacheKey, body []byte) {
	if c.budget <= 0 {
		return
	}
	e := &cacheEntry{key: key, body: body}
	if e.cost() > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		old := el.Value.(*cacheEntry)
		c.bytes += e.cost() - old.cost()
		el.Value = e
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(e)
		c.bytes += e.cost()
	}
	for c.bytes > c.budget {
		c.evictOldest()
	}
}

// evictOldest removes the least-recently-used entry. Caller holds mu.
func (c *resultCache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := c.ll.Remove(el).(*cacheEntry)
	delete(c.items, e.key)
	c.bytes -= e.cost()
}

// InvalidateCube drops every entry for the named cube regardless of
// version, returning the number removed. Called on catalog updates so
// superseded results free their bytes immediately instead of aging out.
func (c *resultCache) InvalidateCube(cube string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*cacheEntry)
		if e.key.Cube == cube {
			c.ll.Remove(el)
			delete(c.items, e.key)
			c.bytes -= e.cost()
			n++
		}
		el = next
	}
	return n
}

// InvalidateScenario drops every entry for the scenario id, returning
// the number removed. Called on scenario edit, commit and discard:
// revision-keyed entries are already unreachable after an edit, so this
// is byte reclamation, not correctness.
func (c *resultCache) InvalidateScenario(id string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*cacheEntry)
		if e.key.Scenario == id {
			c.ll.Remove(el)
			delete(c.items, e.key)
			c.bytes -= e.cost()
			n++
		}
		el = next
	}
	return n
}

// Len returns the number of cached entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the accounted size of the cache.
func (c *resultCache) Bytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
